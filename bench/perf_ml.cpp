// Performance micro-benchmarks of the ML layer: forest fit dominates the
// LOOCV evaluation harness. The perf_ml/ suite is the strict zone of the
// CI perf gate (perf_compare --strict-prefix perf_ml/), so keep existing
// benchmark names stable — renames read as missing+added, not regressions.
#include <algorithm>
#include <memory>

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/hybrid_model.hpp"
#include "core/workload.hpp"
#include "ml/forest.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"
#include "sim/device_spec.hpp"

namespace {

using namespace dsem;

std::pair<ml::Matrix, std::vector<double>> make_data(std::size_t n,
                                                     std::size_t k) {
  Rng rng(7);
  ml::Matrix x(n, k);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.uniform(0.0, 10.0);
      acc += (j + 1.0) * x(i, j);
    }
    y[i] = acc + std::sin(acc) + rng.normal(0.0, 0.1);
  }
  return {std::move(x), std::move(y)};
}

void BM_ForestFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  ml::ForestParams params;
  params.n_estimators = 100;
  for (auto _ : state) {
    ml::RandomForestRegressor forest(params);
    forest.fit(x, y);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto [x, y] = make_data(5000, 4);
  ml::RandomForestRegressor forest;
  forest.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_one(x.row(i++ % x.rows())));
  }
}
BENCHMARK(BM_ForestPredict);

// Single tree on the full dataset: isolates split finding from the
// bootstrap/ensemble machinery that dominates BM_ForestFit.
void BM_TreeFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  ml::TreeParams params;
  for (auto _ : state) {
    ml::DecisionTreeRegressor tree(params);
    tree.fit(x, y);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_ForestPredictBatch(benchmark::State& state) {
  const auto [x, y] = make_data(5000, 4);
  ml::RandomForestRegressor forest;
  forest.fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_many(x));
  }
}
BENCHMARK(BM_ForestPredictBatch)->Unit(benchmark::kMillisecond);

// Hybrid-family fixture sized like the serving path's real training job:
// the six-grid Cronos training set swept over a 25-step frequency
// schedule, with a smooth synthetic (time, energy) surface standing in
// for the device sweep (the sweep itself is perf_advisor's subject).
struct HybridBenchData {
  std::vector<std::unique_ptr<core::Workload>> workloads;
  core::Dataset dataset;
  sim::DeviceSpec spec = sim::v100();
  std::vector<double> freqs;
  double default_freq = 1400.0;
};

const HybridBenchData& hybrid_bench_data() {
  static const HybridBenchData* data = [] {
    auto* d = new HybridBenchData;
    for (double f = 600.0; f <= 1400.0; f += 800.0 / 24.0) {
      d->freqs.push_back(f);
    }
    Rng rng(11);
    std::size_t r = 0;
    for (const int n : {10, 20, 40, 80, 120, 160}) {
      const int side = std::max(4, n * 2 / 5);
      d->workloads.push_back(std::make_unique<core::CronosWorkload>(
          cronos::GridDims{n, side, side}, 10));
    }
    d->dataset.x = ml::Matrix(d->workloads.size() * d->freqs.size(), 4);
    for (std::size_t g = 0; g < d->workloads.size(); ++g) {
      const std::vector<double> features = d->workloads[g]->domain_features();
      const double work =
          1.0 + features[0] * features[1] * features[2] * 1e-3;
      for (const double freq : d->freqs) {
        auto row = d->dataset.x.row(r);
        std::copy(features.begin(), features.end(), row.begin());
        row[features.size()] = freq;
        const double slowdown = d->default_freq / freq;
        d->dataset.time_s.push_back(work * std::pow(slowdown, 0.8) *
                                    (1.0 + 0.02 * rng.uniform()));
        d->dataset.energy_j.push_back(
            work * std::pow(freq / d->default_freq, 1.6) *
            (50.0 + 5.0 * rng.uniform()));
        d->dataset.groups.push_back(static_cast<int>(g));
        ++r;
      }
      d->dataset.group_names.push_back(d->workloads[g]->name());
      d->dataset.group_default.push_back({work, work * 52.0});
      d->dataset.default_freq_mhz.push_back(d->default_freq);
    }
    return d;
  }();
  return *data;
}

// Full hybrid training: fused feature extraction for every group plus two
// paper-default forests (time and energy) over the 13 + domain + clock
// input columns.
void BM_HybridFit(benchmark::State& state) {
  const HybridBenchData& d = hybrid_bench_data();
  for (auto _ : state) {
    core::HybridModel model;
    model.train(d.dataset, d.workloads, d.spec);
    benchmark::DoNotOptimize(model.input_width());
  }
}
BENCHMARK(BM_HybridFit)->Unit(benchmark::kMillisecond);

// Serving-shaped prediction: one full frequency curve per workload, with
// the fused feature block re-extracted per call as the advisor does.
void BM_HybridPredictBatch(benchmark::State& state) {
  const HybridBenchData& d = hybrid_bench_data();
  core::HybridModel model;
  model.train(d.dataset, d.workloads, d.spec);
  for (auto _ : state) {
    for (const auto& workload : d.workloads) {
      benchmark::DoNotOptimize(
          model.predict(*workload, d.spec, d.freqs, d.default_freq));
    }
  }
}
BENCHMARK(BM_HybridPredictBatch)->Unit(benchmark::kMillisecond);

void BM_SvrFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    ml::SvrRbf svr(100.0, 0.01, 1.0, 100);
    svr.fit(x, y);
    benchmark::DoNotOptimize(svr.support_vector_count());
  }
}
BENCHMARK(BM_SvrFit)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_SvrPredict(benchmark::State& state) {
  const auto [x, y] = make_data(800, 4);
  ml::SvrRbf svr(100.0, 0.01, 1.0, 100);
  svr.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svr.predict_one(x.row(i++ % x.rows())));
  }
}
BENCHMARK(BM_SvrPredict);

} // namespace

BENCHMARK_MAIN();
