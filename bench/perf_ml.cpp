// Performance micro-benchmarks of the ML layer: forest fit dominates the
// LOOCV evaluation harness. The perf_ml/ suite is the strict zone of the
// CI perf gate (perf_compare --strict-prefix perf_ml/), so keep existing
// benchmark names stable — renames read as missing+added, not regressions.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/forest.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"

namespace {

using namespace dsem;

std::pair<ml::Matrix, std::vector<double>> make_data(std::size_t n,
                                                     std::size_t k) {
  Rng rng(7);
  ml::Matrix x(n, k);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.uniform(0.0, 10.0);
      acc += (j + 1.0) * x(i, j);
    }
    y[i] = acc + std::sin(acc) + rng.normal(0.0, 0.1);
  }
  return {std::move(x), std::move(y)};
}

void BM_ForestFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  ml::ForestParams params;
  params.n_estimators = 100;
  for (auto _ : state) {
    ml::RandomForestRegressor forest(params);
    forest.fit(x, y);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto [x, y] = make_data(5000, 4);
  ml::RandomForestRegressor forest;
  forest.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_one(x.row(i++ % x.rows())));
  }
}
BENCHMARK(BM_ForestPredict);

// Single tree on the full dataset: isolates split finding from the
// bootstrap/ensemble machinery that dominates BM_ForestFit.
void BM_TreeFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  ml::TreeParams params;
  for (auto _ : state) {
    ml::DecisionTreeRegressor tree(params);
    tree.fit(x, y);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_ForestPredictBatch(benchmark::State& state) {
  const auto [x, y] = make_data(5000, 4);
  ml::RandomForestRegressor forest;
  forest.fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_many(x));
  }
}
BENCHMARK(BM_ForestPredictBatch)->Unit(benchmark::kMillisecond);

void BM_SvrFit(benchmark::State& state) {
  const auto [x, y] = make_data(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    ml::SvrRbf svr(100.0, 0.01, 1.0, 100);
    svr.fit(x, y);
    benchmark::DoNotOptimize(svr.support_vector_count());
  }
}
BENCHMARK(BM_SvrFit)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_SvrPredict(benchmark::State& state) {
  const auto [x, y] = make_data(800, 4);
  ml::SvrRbf svr(100.0, 0.01, 1.0, 100);
  svr.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svr.predict_one(x.row(i++ % x.rows())));
  }
}
BENCHMARK(BM_SvrPredict);

} // namespace

BENCHMARK_MAIN();
