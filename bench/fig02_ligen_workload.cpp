// Figure 2: LiGen Pareto structure flips with workload size — a tiny
// input (2 ligands x 89 atoms x 8 fragments) gains speed from boosting
// but saves nothing by down-clocking, while a large input (10000 x 89 x
// 20) saves energy at modest speed loss.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  const core::LigenWorkload small(2, 89, 8);
  bench::print_characterization(
      std::cout, "Fig. 2a — LiGen small input (2 lig x 89 at x 8 frag), V100",
      core::characterize(rig.v100, small));

  const core::LigenWorkload large(10000, 89, 20);
  bench::print_characterization(
      std::cout,
      "Fig. 2b — LiGen large input (10000 lig x 89 at x 20 frag), V100",
      core::characterize(rig.v100, large));
  return 0;
}
