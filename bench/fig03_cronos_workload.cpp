// Figure 3: Cronos Pareto structure vs workload size — 20x8x8 is nearly
// frequency-insensitive, 160x64x64 saves ~20% energy by down-clocking at
// ~1% speedup loss.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  bench::print_characterization(
      std::cout, "Fig. 3a — Cronos small input (20x8x8), V100",
      core::characterize(rig.v100, core::CronosWorkload({20, 8, 8}, 10)));

  bench::print_characterization(
      std::cout, "Fig. 3b — Cronos large input (160x64x64), V100",
      core::characterize(rig.v100, core::CronosWorkload({160, 64, 64}, 10)));
  return 0;
}
