// Figure 13 (headline result): prediction accuracy of the domain-specific
// models vs the general-purpose baseline, as MAPE of the speedup and
// normalized-energy curves over all V100 frequencies, leave-one-input-out
// cross-validated.
//
// Protocol (paper §5): the GP model trains once on the 106-kernel
// micro-benchmark suite; each DS model trains on the application's input
// sweep with the reported input held out; both predict the full frequency
// curve of the held-out input and are scored against the measured curve.
#include "bench_util.hpp"
#include "microbench/suite.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  std::cout << "training the general-purpose model on "
            << microbench::kSuiteSize << " micro-benchmarks...\n";
  core::GeneralPurposeModel gp;
  gp.train(rig.v100, microbench::make_suite(), 3, 4);

  {
    std::cout << "building the Cronos dataset (grid sweep x 196 freqs x 5 "
                 "reps)...\n";
    const auto workloads = bench::cronos_workloads();
    const core::Dataset dataset = core::build_dataset(rig.v100, workloads, 5);
    const auto reported = bench::cronos_reported();
    const auto report =
        core::evaluate_accuracy(dataset, workloads, gp, reported);
    bench::print_accuracy_report(
        std::cout, "Fig. 13a/b — Cronos speedup & normalized-energy MAPE",
        report);
  }

  {
    std::cout << "\nbuilding the LiGen dataset (96 input tuples x 196 freqs "
                 "x 5 reps)...\n";
    const auto workloads = bench::ligen_workloads();
    const core::Dataset dataset = core::build_dataset(rig.v100, workloads, 5);
    const auto reported = bench::ligen_reported();
    const auto report =
        core::evaluate_accuracy(dataset, workloads, gp, reported);
    bench::print_accuracy_report(
        std::cout, "Fig. 13c/d — LiGen speedup & normalized-energy MAPE",
        report);
  }
  return 0;
}
