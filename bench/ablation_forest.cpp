// Ablation: Random Forest hyperparameter landscape for the domain-specific
// energy model (the paper's §5.2.1 grid-search dimensions: n_estimators,
// max_depth, max_features).
#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "ml/forest.hpp"

namespace {

using namespace dsem;

double loocv_energy_mape(
    const core::Dataset& dataset,
    std::span<const std::unique_ptr<core::Workload>> workloads,
    const ml::ForestParams& params) {
  double acc = 0.0;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < dataset.rows(); ++i) {
      if (dataset.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model{ml::RandomForestRegressor(params)};
    model.train(dataset, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(dataset, static_cast<int>(g));
    const auto pred = model.predict(workloads[g]->domain_features(),
                                    truth.freqs_mhz,
                                    dataset.default_freq_mhz[g]);
    acc += stats::mape(truth.norm_energy, pred.norm_energy);
  }
  return acc / static_cast<double>(dataset.num_groups());
}

} // namespace

int main() {
  using namespace dsem;
  bench::Rig rig;
  const auto workloads = bench::cronos_workloads(5);
  std::vector<double> freqs;
  const auto all = rig.v100.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(rig.v100, workloads, 5, freqs);

  print_banner(std::cout,
               "Forest hyperparameter ablation — Cronos normalized-energy "
               "LOOCV MAPE (0 = library default / unlimited)");
  Table table({"n_estimators", "max_depth", "max_features",
               "norm_energy_mape"});
  for (int trees : {5, 25, 100}) {
    for (int depth : {3, 8, 0}) {
      for (int feats : {2, 0}) {
        ml::ForestParams params;
        params.n_estimators = trees;
        params.max_depth = depth;
        params.max_features = feats;
        params.seed = 0xF0;
        const double mape = loocv_energy_mape(dataset, workloads, params);
        table.add_row({fmt(static_cast<long long>(trees)),
                       fmt(static_cast<long long>(depth)),
                       fmt(static_cast<long long>(feats)), fmt(mape, 4)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nThe defaults (unlimited depth, all features, 100 trees) "
               "sit at or near the optimum — matching the paper's grid "
               "search outcome.\n";
  return 0;
}
