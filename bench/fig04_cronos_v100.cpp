// Figure 4: Cronos grid-size scalability on the NVIDIA V100 — raising the
// clock wastes up to ~40% energy with no speedup; larger grids offer
// free-lunch energy savings by down-clocking.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  bench::print_characterization(
      std::cout, "Fig. 4a — Cronos 10x4x4 grid, NVIDIA V100",
      core::characterize(rig.v100, core::CronosWorkload({10, 4, 4}, 10)));

  bench::print_characterization(
      std::cout, "Fig. 4b — Cronos 160x64x64 grid, NVIDIA V100",
      core::characterize(rig.v100, core::CronosWorkload({160, 64, 64}, 10)));
  return 0;
}
