#include "bench_util.hpp"

#include <algorithm>

namespace dsem::bench {

Rig::Rig()
    : v100_sim(sim::v100(), sim::NoiseConfig{}, 0x51CA),
      mi100_sim(sim::mi100(), sim::NoiseConfig{}, 0x51CB),
      v100(v100_sim), mi100(mi100_sim) {}

void print_characterization(std::ostream& os, const std::string& title,
                            const core::Characterization& c) {
  print_banner(os, title);
  if (!c.baseline_ok || c.points.empty()) {
    os << "characterization unavailable: "
       << (c.baseline_ok ? "every frequency point"
                         : "the default-clock baseline")
       << " exhausted its retries (" << fmt(c.failed_freqs.size())
       << " frequencies lost)\n";
    return;
  }
  os << "default: " << fmt(c.default_freq_mhz, 0) << " MHz, "
     << fmt(c.default_time_s, 4) << " s, " << fmt(c.default_energy_j, 2)
     << " J\n\n";

  Table table({"freq_mhz", "time_s", "energy_j", "speedup", "norm_energy",
               "pareto"});
  for (const auto& p : c.points) {
    table.add_row({fmt(p.freq_mhz, 1), fmt(p.time_s, 6), fmt(p.energy_j, 3),
                   fmt(p.speedup, 4), fmt(p.norm_energy, 4),
                   p.pareto ? "*" : ""});
  }
  table.print_csv(os);
  if (!c.failed_freqs.empty()) {
    os << "\n(" << fmt(c.failed_freqs.size())
       << " frequencies lost to exhausted retries)\n";
  }

  const auto& top = c.points.back();
  os << "\nsummary: max-clock speedup " << fmt_percent(top.speedup - 1.0)
     << " at energy " << fmt_percent(top.norm_energy - 1.0)
     << "; best saving " << fmt_percent(c.best_energy_saving(0.02))
     << " at <=2% loss, " << fmt_percent(c.best_energy_saving(0.15))
     << " at <=15% loss; Pareto set size "
     << fmt(c.pareto_indices().size()) << "\n";
}

EnergyTimeSeries sweep_series(synergy::Device& device,
                              const core::Workload& workload,
                              const std::string& label, int repetitions) {
  EnergyTimeSeries out;
  out.label = label;
  const auto sweep = core::sweep_frequencies(device, workload, repetitions);
  for (const auto& sp : sweep) {
    out.freqs_mhz.push_back(sp.freq_mhz);
    out.time_s.push_back(sp.m.time_s);
    out.energy_j.push_back(sp.m.energy_j);
  }
  return out;
}

void print_energy_time(std::ostream& os, const std::string& title,
                       std::span<const EnergyTimeSeries> series) {
  print_banner(os, title);
  Table table({"series", "freq_mhz", "time_s", "energy_kj"});
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.freqs_mhz.size(); ++i) {
      table.add_row({s.label, fmt(s.freqs_mhz[i], 1), fmt(s.time_s[i], 4),
                     fmt(s.energy_j[i] / 1000.0, 4)});
    }
  }
  table.print_csv(os);
  os << "\nsummary (at the device default/auto clock):\n";
  for (const auto& s : series) {
    // Default sits mid-schedule; report the last point as the max-clock
    // anchor and min/max across the sweep.
    const auto [tmin, tmax] =
        std::minmax_element(s.time_s.begin(), s.time_s.end());
    const auto [emin, emax] =
        std::minmax_element(s.energy_j.begin(), s.energy_j.end());
    os << "  " << s.label << ": time " << fmt(*tmin, 3) << ".."
       << fmt(*tmax, 3) << " s, energy " << fmt(*emin / 1000.0, 3) << ".."
       << fmt(*emax / 1000.0, 3) << " kJ\n";
  }
}

void print_accuracy_report(std::ostream& os, const std::string& title,
                           const core::AccuracyReport& report) {
  print_banner(os, title);
  Table table({"input", "gp_speedup_mape", "ds_speedup_mape",
               "gp_energy_mape", "ds_energy_mape", "speedup_gain",
               "energy_gain"});
  for (const auto& row : report.rows) {
    table.add_row({row.input, fmt(row.gp_speedup_mape, 4),
                   fmt(row.ds_speedup_mape, 4), fmt(row.gp_energy_mape, 4),
                   fmt(row.ds_energy_mape, 4),
                   fmt(row.gp_speedup_mape /
                           std::max(row.ds_speedup_mape, 1e-12),
                       1) + "x",
                   fmt(row.gp_energy_mape /
                           std::max(row.ds_energy_mape, 1e-12),
                       1) + "x"});
  }
  table.print(os);
  os << "\nworst-case accuracy gain of the domain-specific model: speedup "
     << fmt(report.worst_speedup_gain(), 1) << "x, energy "
     << fmt(report.worst_energy_gain(), 1) << "x\n";
}

void print_pareto_evaluation(std::ostream& os, const std::string& title,
                             const core::ParetoEvaluation& eval) {
  print_banner(os, title);
  const auto contains = [](std::span<const std::size_t> set, std::size_t i) {
    return std::find(set.begin(), set.end(), i) != set.end();
  };
  Table table({"freq_mhz", "speedup", "norm_energy", "true_pareto",
               "gp_predicted", "ds_predicted"});
  for (std::size_t i = 0; i < eval.truth.freqs_mhz.size(); ++i) {
    const bool any = contains(eval.true_front, i) ||
                     contains(eval.gp_front, i) || contains(eval.ds_front, i);
    if (!any) {
      continue;
    }
    table.add_row({fmt(eval.truth.freqs_mhz[i], 1),
                   fmt(eval.truth.speedup[i], 4),
                   fmt(eval.truth.norm_energy[i], 4),
                   contains(eval.true_front, i) ? "*" : "",
                   contains(eval.gp_front, i) ? "*" : "",
                   contains(eval.ds_front, i) ? "*" : ""});
  }
  table.print(os);
  os << "\ntrue Pareto set: " << fmt(eval.true_front.size())
     << " configs\n  general-purpose: " << fmt(eval.gp_front.size())
     << " predicted, " << fmt(eval.gp_cmp.exact_matches)
     << " exact matches, distance " << fmt(eval.gp_cmp.generational_distance, 4)
     << "\n  domain-specific: " << fmt(eval.ds_front.size()) << " predicted, "
     << fmt(eval.ds_cmp.exact_matches) << " exact matches, distance "
     << fmt(eval.ds_cmp.generational_distance, 4) << "\n";
}

void print_three_way_accuracy(std::ostream& os, const std::string& title,
                              const core::ThreeWayAccuracyReport& report) {
  print_banner(os, title);
  Table table({"input", "gp_speedup_mape", "ds_speedup_mape",
               "hy_speedup_mape", "gp_energy_mape", "ds_energy_mape",
               "hy_energy_mape"});
  for (const auto& row : report.rows) {
    table.add_row({row.input, fmt(row.gp_speedup_mape, 4),
                   fmt(row.ds_speedup_mape, 4), fmt(row.hy_speedup_mape, 4),
                   fmt(row.gp_energy_mape, 4), fmt(row.ds_energy_mape, 4),
                   fmt(row.hy_energy_mape, 4)});
  }
  table.print(os);
  const core::ThreeWayMeans m = report.means();
  os << "\nmean speedup MAPE: gp " << fmt(m.gp_speedup, 4) << ", ds "
     << fmt(m.ds_speedup, 4) << ", hybrid " << fmt(m.hy_speedup, 4)
     << "\nmean energy MAPE:  gp " << fmt(m.gp_energy, 4) << ", ds "
     << fmt(m.ds_energy, 4) << ", hybrid " << fmt(m.hy_energy, 4) << "\n";
}

void print_three_way_pareto(std::ostream& os, const std::string& title,
                            const core::ThreeWayParetoEvaluation& eval) {
  print_banner(os, title);
  const auto contains = [](std::span<const std::size_t> set, std::size_t i) {
    return std::find(set.begin(), set.end(), i) != set.end();
  };
  Table table({"freq_mhz", "speedup", "norm_energy", "true_pareto",
               "gp_predicted", "ds_predicted", "hy_predicted"});
  for (std::size_t i = 0; i < eval.truth.freqs_mhz.size(); ++i) {
    const bool any = contains(eval.true_front, i) ||
                     contains(eval.gp_front, i) ||
                     contains(eval.ds_front, i) || contains(eval.hy_front, i);
    if (!any) {
      continue;
    }
    table.add_row({fmt(eval.truth.freqs_mhz[i], 1),
                   fmt(eval.truth.speedup[i], 4),
                   fmt(eval.truth.norm_energy[i], 4),
                   contains(eval.true_front, i) ? "*" : "",
                   contains(eval.gp_front, i) ? "*" : "",
                   contains(eval.ds_front, i) ? "*" : "",
                   contains(eval.hy_front, i) ? "*" : ""});
  }
  table.print(os);
  os << "\ntrue Pareto set: " << fmt(eval.true_front.size())
     << " configs\n  general-purpose: " << fmt(eval.gp_front.size())
     << " predicted, " << fmt(eval.gp_cmp.exact_matches)
     << " exact matches, distance " << fmt(eval.gp_cmp.generational_distance, 4)
     << "\n  domain-specific: " << fmt(eval.ds_front.size()) << " predicted, "
     << fmt(eval.ds_cmp.exact_matches) << " exact matches, distance "
     << fmt(eval.ds_cmp.generational_distance, 4) << "\n  hybrid:          "
     << fmt(eval.hy_front.size()) << " predicted, "
     << fmt(eval.hy_cmp.exact_matches) << " exact matches, distance "
     << fmt(eval.hy_cmp.generational_distance, 4) << "\n";
}

void print_extrapolation(std::ostream& os, const std::string& title,
                         const core::ExtrapolationReport& report) {
  print_three_way_accuracy(os, title, report.accuracy);
  os << "held-out (largest) inputs:";
  for (const std::string& name : report.held_out) {
    os << " " << name;
  }
  os << "\n";
}

std::vector<std::unique_ptr<core::Workload>> cronos_workloads(int steps) {
  std::vector<std::unique_ptr<core::Workload>> out;
  for (int n : {10, 20, 30, 40, 60, 80, 120, 160}) {
    const int side = std::max(4, n * 2 / 5);
    out.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{n, side, side}, steps));
  }
  return out;
}

std::vector<std::string> cronos_reported() {
  return {"10x4x4", "20x8x8", "40x16x16", "80x32x32", "160x64x64"};
}

std::vector<std::unique_ptr<core::Workload>> ligen_workloads() {
  // The paper's §5.1 ligand counts plus intermediates (128..512) bracketing
  // the device's occupancy transition, so every (atoms, fragments) branch
  // of the tuple grid samples that regime densely enough for LOOCV folds
  // to interpolate (EXPERIMENTS.md records this as experimental design).
  std::vector<std::unique_ptr<core::Workload>> out;
  for (int ligands : {2, 16, 128, 192, 256, 384, 512, 1024, 4096, 10000}) {
    for (int atoms : {31, 63, 74, 89}) {
      for (int frags : {4, 8, 16, 20}) {
        out.push_back(
            std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
      }
    }
  }
  return out;
}

std::vector<std::string> ligen_reported() {
  std::vector<std::string> out;
  for (int atoms : {31, 89}) {
    for (int frags : {4, 20}) {
      for (int ligands : {256, 4096, 10000}) {
        out.push_back(core::LigenWorkload(ligands, atoms, frags).name());
      }
    }
  }
  return out;
}

} // namespace dsem::bench
