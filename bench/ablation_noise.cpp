// Ablation: sensitivity of the domain-specific model to measurement noise
// and to the number of repetitions averaged per configuration (the paper
// uses 5 repetitions, §5.1).
#include "bench_util.hpp"
#include "common/statistics.hpp"

namespace {

using namespace dsem;

double loocv_energy_mape(synergy::Device& device,
                         std::span<const std::unique_ptr<core::Workload>>
                             workloads,
                         int repetitions) {
  std::vector<double> freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    freqs.push_back(all[i]);
  }
  const core::Dataset noisy_ds =
      core::build_dataset(device, workloads, repetitions, freqs);

  // Truth from a noise-free twin of the same device model.
  sim::Device clean_sim(device.spec(), sim::NoiseConfig::none());
  synergy::Device clean(clean_sim);
  const core::Dataset truth_ds =
      core::build_dataset(clean, workloads, 1, freqs);

  double acc = 0.0;
  for (std::size_t g = 0; g < noisy_ds.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < noisy_ds.rows(); ++i) {
      if (noisy_ds.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model;
    model.train(noisy_ds, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(truth_ds, static_cast<int>(g));
    const auto pred = model.predict(workloads[g]->domain_features(),
                                    truth.freqs_mhz,
                                    truth_ds.default_freq_mhz[g]);
    acc += stats::mape(truth.norm_energy, pred.norm_energy);
  }
  return acc / static_cast<double>(noisy_ds.num_groups());
}

} // namespace

int main() {
  using namespace dsem;
  const auto workloads = bench::cronos_workloads(5);

  print_banner(std::cout,
               "Noise ablation — Cronos on V100, held-out normalized-energy "
               "MAPE vs measurement noise and repetitions");
  Table table({"noise_sigma", "repetitions", "norm_energy_mape"});
  for (double sigma : {0.0, 0.005, 0.015, 0.03, 0.06}) {
    for (int reps : {1, 5}) {
      sim::Device noisy_sim(sim::v100(), sim::NoiseConfig{sigma, sigma},
                            0xA01 + static_cast<std::uint64_t>(reps));
      synergy::Device device(noisy_sim);
      const double mape = loocv_energy_mape(device, workloads, reps);
      table.add_row({fmt(sigma, 3), fmt(static_cast<long long>(reps)),
                     fmt(mape, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe LOOCV error is dominated by interpolation across "
               "inputs rather than by measurement noise for sigma <= 6%; "
               "repetition averaging (the paper's 5x) keeps it that way.\n";
  return 0;
}
