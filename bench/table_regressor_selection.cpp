// §5.2.1 — regression-algorithm selection: Linear, Lasso, SVR-RBF, and
// Random Forest cross-validated (leave-one-input-out) on both applications'
// datasets, plus the Random Forest hyperparameter grid search showing the
// library defaults win.
#include <map>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "ml/lasso.hpp"
#include "ml/linear.hpp"
#include "ml/model_selection.hpp"
#include "ml/svr.hpp"

namespace {

using namespace dsem;

/// LOOCV MAPE of a DS model built from `proto`, averaged over held-out
/// speedup and normalized-energy curves of all groups.
std::pair<double, double>
loocv_mape(const core::Dataset& dataset,
           std::span<const std::unique_ptr<core::Workload>> workloads,
           const ml::Regressor& proto) {
  double speedup_acc = 0.0;
  double energy_acc = 0.0;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < dataset.rows(); ++i) {
      if (dataset.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model(proto);
    model.train(dataset, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(dataset, static_cast<int>(g));
    const auto pred = model.predict(workloads[g]->domain_features(),
                                    truth.freqs_mhz,
                                    dataset.default_freq_mhz[g]);
    speedup_acc += stats::mape(truth.speedup, pred.speedup);
    energy_acc += stats::mape(truth.norm_energy, pred.norm_energy);
  }
  const auto n = static_cast<double>(dataset.num_groups());
  return {speedup_acc / n, energy_acc / n};
}

void run_for_app(const std::string& app, synergy::Device& device,
                 std::vector<std::unique_ptr<core::Workload>> workloads) {
  std::vector<double> freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(device, workloads, 5, freqs);

  print_banner(std::cout, "Regressor selection — " + app);
  Table table({"algorithm", "speedup_mape", "norm_energy_mape"});
  const auto row = [&](const ml::Regressor& proto) {
    const auto [s, e] = loocv_mape(dataset, workloads, proto);
    table.add_row({proto.name(), fmt(s, 4), fmt(e, 4)});
  };
  row(ml::LinearRegressor{});
  row(ml::LassoRegressor{0.001});
  row(ml::SvrRbf{100.0, 0.01, 1.0, 200});
  ml::ForestParams fp;
  fp.seed = 0x5e1ec7;
  row(ml::RandomForestRegressor{fp});
  table.print(std::cout);

  // Hyperparameter grid search on the Random Forest (paper: default
  // parameters perform best). Scored on log-time LOOCV folds.
  std::vector<double> y(dataset.rows());
  for (std::size_t i = 0; i < dataset.rows(); ++i) {
    y[i] = std::log(dataset.time_s[i]);
  }
  const auto splits = ml::leave_one_group_out(dataset.groups);
  const std::map<std::string, std::vector<double>> grid = {
      {"n_estimators", {25.0, 100.0}},
      {"max_depth", {4.0, 0.0}},       // 0 = unlimited (the default)
      {"max_features", {2.0, 0.0}},    // 0 = all features (the default)
  };
  const auto result = ml::grid_search(
      grid,
      [](const std::map<std::string, double>& params) {
        ml::ForestParams p;
        p.n_estimators = static_cast<int>(params.at("n_estimators"));
        p.max_depth = static_cast<int>(params.at("max_depth"));
        p.max_features = static_cast<int>(params.at("max_features"));
        return std::make_unique<ml::RandomForestRegressor>(p);
      },
      dataset.x, y, splits,
      [](std::span<const double> truth, std::span<const double> pred) {
        return stats::mae(truth, pred);
      });
  std::cout << "\nRandom Forest grid search (" << result.evaluated
            << " combinations): best = { ";
  for (const auto& [name, value] : result.best_params) {
    std::cout << name << "=" << fmt(value, 0) << " ";
  }
  std::cout << "} (0 means library default / unlimited)\n";
}

} // namespace

int main() {
  bench::Rig rig;
  {
    auto workloads = bench::cronos_workloads();
    run_for_app("Cronos", rig.v100, std::move(workloads));
  }
  {
    // Reduced LiGen grid keeps the SVR kernel matrix tractable.
    std::vector<std::unique_ptr<core::Workload>> workloads;
    for (int ligands : {2, 256, 4096, 10000}) {
      for (int atoms : {31, 89}) {
        for (int frags : {4, 20}) {
          workloads.push_back(
              std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
        }
      }
    }
    run_for_app("LiGen", rig.v100, std::move(workloads));
  }
  return 0;
}
