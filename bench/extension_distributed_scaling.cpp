// Extension: Cronos on a Celerity-style cluster (the paper's §6 notes the
// solver was ported to Celerity for distributed-memory machines).
//
// Strong scaling of the 160x64x64 MHD problem over 1..16 simulated V100
// nodes, at the default clock and at the single-GPU energy-optimal clock
// the paper's analysis recommends — the memory-bound down-clock saving
// carries over to the cluster, and the energy-optimal node count is not
// the fastest one (static power multiplies with nodes).
#include "bench_util.hpp"
#include "celerity/distributed.hpp"

int main() {
  using namespace dsem;
  const cronos::GridDims global{160, 64, 64};
  constexpr int kSteps = 10;

  print_banner(std::cout,
               "Distributed Cronos strong scaling — 160x64x64, 10 steps, "
               "simulated V100 nodes, 100 Gb/s interconnect");

  Table table({"nodes", "clock", "makespan_s", "comm_share", "speedup",
               "efficiency", "energy_j", "energy_vs_1node"});
  double base_time = 0.0;
  double base_energy = 0.0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    for (const bool downclock : {false, true}) {
      celerity::Cluster cluster(sim::v100(),
                                celerity::ClusterConfig{nodes, {}},
                                sim::NoiseConfig{}, 0xD157);
      if (downclock) {
        cluster.set_frequency_all(795.0); // single-GPU energy-optimal
      }
      const auto stats =
          celerity::run_distributed_cronos(cluster, global, 8, kSteps);
      if (nodes == 1 && !downclock) {
        base_time = stats.makespan_s;
        base_energy = stats.total_energy_j();
      }
      table.add_row(
          {fmt(static_cast<long long>(nodes)),
           downclock ? "795 MHz" : "default",
           fmt(stats.makespan_s, 5),
           fmt_percent(stats.comm_time_s / stats.makespan_s),
           fmt(base_time / stats.makespan_s, 2) + "x",
           fmt_percent(base_time / stats.makespan_s / nodes),
           fmt(stats.total_energy_j(), 2),
           fmt_percent(stats.total_energy_j() / base_energy - 1.0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nDown-clocking the whole cluster keeps the paper's "
               "single-GPU saving at every scale; communication and static "
               "power erode strong-scaling efficiency.\n";
  return 0;
}
