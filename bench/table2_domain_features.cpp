// Table 2: the domain-specific model features of each application, shown
// with concrete extracted vectors for representative inputs.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  print_banner(std::cout, "Table 2 — Domain-specific model features");

  Table legend({"application", "features"});
  legend.add_row({"Cronos", "f_grid_x, f_grid_y, f_grid_z"});
  legend.add_row({"LiGen", "f_ligands, f_fragments, f_atoms"});
  legend.print(std::cout);

  std::cout << "\nExtracted domain feature vectors:\n\n";
  Table table({"application", "input", "features"});
  const auto add = [&](const core::Workload& w) {
    std::string fstr;
    const auto names = w.feature_names();
    const auto values = w.domain_features();
    for (std::size_t i = 0; i < names.size(); ++i) {
      fstr += names[i] + "=" + fmt(values[i], 0) +
              (i + 1 < names.size() ? ", " : "");
    }
    table.add_row({w.application(), w.name(), fstr});
  };
  add(core::CronosWorkload({10, 4, 4}));
  add(core::CronosWorkload({160, 64, 64}));
  add(core::LigenWorkload(256, 31, 4));
  add(core::LigenWorkload(10000, 89, 20));
  table.print(std::cout);
  return 0;
}
