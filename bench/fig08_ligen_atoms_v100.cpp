// Figure 8: LiGen raw energy-vs-time on the NVIDIA V100, scaling the
// number of atoms (31, 63, 74, 89) at fixed fragment counts (4 and 20),
// 100000 ligands.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  for (int frags : {4, 20}) {
    std::vector<bench::EnergyTimeSeries> series;
    for (int atoms : {31, 63, 74, 89}) {
      const core::LigenWorkload w(100000, atoms, frags);
      series.push_back(bench::sweep_series(
          rig.v100, w, std::to_string(atoms) + " atoms"));
    }
    bench::print_energy_time(std::cout,
                      "Fig. 8 — LiGen on V100, " + std::to_string(frags) +
                          " fragments, 100000 ligands, atom sweep",
                      series);
  }
  return 0;
}
