// Serving-path performance benchmarks: the full advisor loop over a
// mixed LiGen/Cronos Poisson stream, the batched-inference hot path, and
// the traffic generator itself.
//
// BM_ServeMixed reports the paper-scale serving run (10^5 requests) and
// exports its simulated latency percentiles as user counters ending in
// _ns — perf_report lifts those into standalone BENCH entries
// (perf_advisor/BM_ServeMixed:p50_latency_ns, ...). The percentiles are
// deterministic (simulated time), so they gate answer-quality drift
// exactly; wall-clock throughput lives in the benchmark's own real_time.
#include <benchmark/benchmark.h>

#include "serve/loop.hpp"
#include "serve/train.hpp"
#include "sim/device.hpp"
#include "synergy/device.hpp"

namespace {

using namespace dsem;

/// Trained once per process: both applications on the simulated V100,
/// the example's full training grids at 2 repetitions.
const serve::ModelRegistry& shared_registry() {
  static serve::ModelRegistry* registry = [] {
    sim::Device sim_dev(sim::v100(), sim::NoiseConfig{}, 0xAD51);
    synergy::Device device(sim_dev);
    serve::TrainConfig config;
    config.sweep.repetitions = 2;
    config.origin = "perf_advisor";
    auto* r = new serve::ModelRegistry;
    r->put(serve::train_domain_specific(device, {"cronos", "v100"}, config));
    r->put(serve::train_domain_specific(device, {"ligen", "v100"}, config));
    return r;
  }();
  return *registry;
}

serve::TrafficConfig traffic_config(std::size_t requests,
                                    std::size_t population) {
  serve::TrafficConfig traffic;
  traffic.requests = requests;
  traffic.arrival_rate_hz = 2000.0;
  traffic.population = population;
  return traffic;
}

void BM_ServeMixed(benchmark::State& state) {
  const auto& registry = shared_registry();
  const auto trace = serve::generate_trace(
      traffic_config(static_cast<std::size_t>(state.range(0)), 512));
  serve::ServeStats stats;
  for (auto _ : state) {
    serve::ServeLoop loop(registry, serve::ServeConfig{});
    benchmark::DoNotOptimize(loop.run(trace));
    stats = loop.stats();
  }
  state.counters["p50_latency_ns"] = stats.p50_latency_s * 1e9;
  state.counters["p99_latency_ns"] = stats.p99_latency_s * 1e9;
  state.counters["max_latency_ns"] = stats.max_latency_s * 1e9;
  state.counters["throughput_rps"] = stats.throughput_rps();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["shed"] = static_cast<double>(stats.shed);
  // Deterministic (simulated accounting) but intentionally not _ns: the
  // energy of the advised answers is a quality signal for eyeballs and
  // dsem_inspect cross-checks, not a perf gate.
  state.counters["predicted_energy_j"] = stats.predicted_energy_j;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ServeMixed)->Arg(100000)->Unit(benchmark::kMillisecond);

/// Hit-dominated regime: a small population makes almost every request a
/// cache hit, isolating the loop/cache overhead from model inference.
void BM_ServeCacheHot(benchmark::State& state) {
  const auto& registry = shared_registry();
  const auto trace = serve::generate_trace(traffic_config(100000, 16));
  for (auto _ : state) {
    serve::ServeLoop loop(registry, serve::ServeConfig{});
    benchmark::DoNotOptimize(loop.run(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_ServeCacheHot)->Unit(benchmark::kMillisecond);

/// The batched-inference hot path alone: one advise_batch over the
/// frequency grid, no cache, no queueing.
void BM_AdviseBatch(benchmark::State& state) {
  const auto& registry = shared_registry();
  const auto artifact =
      registry.require(serve::ModelKey{"cronos", "v100"});
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  // Over-generate, keep the cronos half, trim to the target batch size.
  const auto trace = serve::generate_trace(traffic_config(4 * batch, 64));
  std::vector<serve::AdviseRequest> requests;
  for (const serve::TimedRequest& timed : trace) {
    if (timed.request.application == "cronos" && requests.size() < batch) {
      requests.push_back(timed.request);
    }
  }
  const serve::Advisor advisor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.advise_batch(*artifact, requests));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_AdviseBatch)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GenerateTrace(benchmark::State& state) {
  const auto config =
      traffic_config(static_cast<std::size_t>(state.range(0)), 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::generate_trace(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateTrace)->Arg(100000)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
