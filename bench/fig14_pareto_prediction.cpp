// Figure 14: Pareto-optimal frequency configurations predicted by the
// general-purpose and domain-specific models for the largest inputs of
// each application (LiGen 10000x89x20, Cronos 160x64x64), evaluated at
// the objectives those frequencies actually achieve, against the true
// Pareto set.
#include "bench_util.hpp"
#include "microbench/suite.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  core::GeneralPurposeModel gp;
  gp.train(rig.v100, microbench::make_suite(), 3, 4);

  {
    const auto workloads = bench::ligen_workloads();
    const core::Dataset dataset = core::build_dataset(rig.v100, workloads, 5);
    const auto eval = core::evaluate_pareto(
        dataset, workloads, core::LigenWorkload(10000, 89, 20).name(), gp);
    bench::print_pareto_evaluation(
        std::cout, "Fig. 14a — LiGen (10000 x 89 x 20) predicted Pareto sets",
        eval);
  }

  {
    const auto workloads = bench::cronos_workloads();
    const core::Dataset dataset = core::build_dataset(rig.v100, workloads, 5);
    const auto eval =
        core::evaluate_pareto(dataset, workloads, "160x64x64", gp);
    bench::print_pareto_evaluation(
        std::cout, "Fig. 14b — Cronos (160x64x64) predicted Pareto sets",
        eval);
  }
  return 0;
}
