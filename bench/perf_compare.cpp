// Regression gate over two BENCH_*.json perf reports.
//
// perf_compare <baseline> <current> diffs every shared benchmark entry on
// real time and exits 1 when any entry regressed beyond --tolerance
// (fractional; 0.25 flags >25 % slower). --warn-only reports the same
// analysis but always exits 0 — the CI starting posture until baselines
// from dedicated hardware exist. --strict-prefix <name/> carves out a
// strict zone inside --warn-only: regressions whose name starts with the
// prefix fail the gate even under --warn-only, so curated benchmarks
// (perf_ml/) hard-fail while noisier suites keep warning.
#include <cstdio>
#include <iostream>

#include "common/bench_report.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("perf_compare",
                "Compare two BENCH_*.json files: perf_compare <baseline> "
                "<current>");
  cli.add_option("tolerance",
                 "fractional real-time slowdown tolerated before flagging",
                 "0.25");
  cli.add_option("min-time-ns",
                 "ignore entries with baseline real time below this", "100");
  cli.add_option("strict-prefix",
                 "benchmark name prefix whose regressions fail even under "
                 "--warn-only (e.g. perf_ml/)",
                 "");
  cli.add_flag("warn-only", "report regressions but exit 0");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  if (cli.positional().size() != 2) {
    cli.print_usage(std::cerr);
    std::fprintf(stderr, "expected exactly two positional arguments\n");
    return 2;
  }

  benchreport::CompareOptions options;
  options.tolerance = cli.option_double("tolerance");
  options.min_time_ns = cli.option_double("min-time-ns");
  const std::string strict_prefix = cli.option("strict-prefix");

  const json::Value baseline = benchreport::load_file(cli.positional()[0]);
  const json::Value current = benchreport::load_file(cli.positional()[1]);
  if (baseline.at("mode").as_string() != current.at("mode").as_string()) {
    std::fprintf(stderr,
                 "warning: comparing different modes (%s vs %s); timings are "
                 "not like-for-like\n",
                 baseline.at("mode").as_string().c_str(),
                 current.at("mode").as_string().c_str());
  }

  const benchreport::CompareResult result =
      benchreport::compare(baseline, current, options);
  benchreport::print_compare(std::cout, result, options);

  const std::vector<benchreport::Delta> strict =
      benchreport::match_prefix(result.regressions, strict_prefix);
  if (!strict.empty()) {
    std::cout << "strict zone '" << strict_prefix << "': " << strict.size()
              << " regression(s) — failing regardless of --warn-only\n";
    return 1;
  }
  if (!result.ok() && cli.flag("warn-only")) {
    std::cout << "(--warn-only: exiting 0 despite regressions)\n";
    return 0;
  }
  return result.ok() ? 0 : 1;
}
