// Table 1: the general-purpose model's static code features, demonstrated
// on the extracted feature vectors of both applications' kernels and a
// few micro-benchmarks.
#include "bench_util.hpp"
#include "core/features.hpp"
#include "cronos/kernels.hpp"
#include "ligen/kernels.hpp"
#include "microbench/suite.hpp"

int main() {
  using namespace dsem;
  print_banner(std::cout, "Table 1 — General-purpose model features");

  Table legend({"feature", "description"});
  legend.add_row({"int_add", "integer additions and subtractions"});
  legend.add_row({"int_mul", "integer multiplications"});
  legend.add_row({"int_div", "integer divisions"});
  legend.add_row({"int_bw", "integer bitwise operations"});
  legend.add_row({"float_add", "floating point additions and subtractions"});
  legend.add_row({"float_mul", "floating point multiplications"});
  legend.add_row({"float_div", "floating point divisions"});
  legend.add_row({"sf", "special functions"});
  legend.add_row({"gl_access", "global memory accesses"});
  legend.add_row({"loc_access", "local memory accesses"});
  legend.print(std::cout);

  std::cout << "\nExtracted (normalized) static feature vectors:\n\n";
  std::vector<std::string> header = {"kernel"};
  for (const auto& name : core::static_feature_names()) {
    header.push_back(name);
  }
  Table table(header);

  const auto add = [&](const sim::KernelProfile& profile) {
    std::vector<std::string> row = {profile.name};
    for (double v : core::static_feature_vector(profile)) {
      row.push_back(fmt(v, 4));
    }
    table.add_row(row);
  };
  add(cronos::compute_changes_profile(8));
  add(cronos::cfl_reduce_profile());
  add(cronos::integrate_time_profile(8));
  add(ligen::dock_profile(89, 20, {}));
  add(ligen::score_profile(89, {}));
  const auto suite = microbench::make_suite();
  for (std::size_t i : {0u, 40u, 60u, 105u}) {
    add(suite[i].profile);
  }
  table.print(std::cout);
  return 0;
}
