// Extension (paper §7 future work): per-kernel frequency scaling.
//
// Compares, for both applications, the energy/time of (a) the default
// clock, (b) the best single whole-application frequency under a slowdown
// budget, and (c) a per-kernel plan that retargets the clock before each
// kernel (frequency-switch penalties included). Per-kernel DVFS can save
// more than any single frequency when an application mixes memory-bound
// and compute-bound kernels.
#include "bench_util.hpp"
#include "core/kernel_planner.hpp"

namespace {

using namespace dsem;

void run(const std::string& title, synergy::Device& device,
         const core::Workload& workload, double max_slowdown) {
  print_banner(std::cout, title);

  const core::Measurement def = core::measure_default(device, workload, 5);

  // Best single frequency under the budget.
  const auto c = core::characterize(device, workload, 5);
  double best_single_freq = c.default_freq_mhz;
  double best_single_energy = def.energy_j;
  double best_single_time = def.time_s;
  for (const auto& p : c.points) {
    if (1.0 - p.speedup <= max_slowdown &&
        p.energy_j < best_single_energy) {
      best_single_freq = p.freq_mhz;
      best_single_energy = p.energy_j;
      best_single_time = p.time_s;
    }
  }

  const core::KernelPlan plan =
      core::plan_kernel_frequencies(device, workload, max_slowdown, 5);
  const core::Measurement planned =
      core::measure_with_plan(device, workload, plan, 5);

  Table table({"policy", "time_s", "energy_j", "vs_default"});
  table.add_row({"default clock", fmt(def.time_s, 4), fmt(def.energy_j, 2),
                 "+0.0%"});
  table.add_row({"best single freq (" + fmt(best_single_freq, 0) + " MHz)",
                 fmt(best_single_time, 4), fmt(best_single_energy, 2),
                 fmt_percent(best_single_energy / def.energy_j - 1.0)});
  table.add_row({"per-kernel plan", fmt(planned.time_s, 4),
                 fmt(planned.energy_j, 2),
                 fmt_percent(planned.energy_j / def.energy_j - 1.0)});
  table.print(std::cout);

  std::cout << "\nper-kernel assignments (budget: "
            << fmt_percent(max_slowdown) << " slowdown per kernel):\n";
  Table assignments({"kernel", "freq_mhz", "planned_saving"});
  for (const auto& [name, freq] : plan.freq_by_kernel) {
    assignments.add_row({name, fmt(freq, 0),
                         fmt_percent(plan.predicted_saving.at(name))});
  }
  assignments.print(std::cout);
}

} // namespace

int main() {
  bench::Rig rig;
  run("Per-kernel DVFS — Cronos 160x64x64 on V100 (<=2% slowdown)",
      rig.v100, core::CronosWorkload({160, 64, 64}, 10), 0.02);
  run("Per-kernel DVFS — Cronos 160x64x64 on V100 (<=15% slowdown)",
      rig.v100, core::CronosWorkload({160, 64, 64}, 10), 0.15);
  run("Per-kernel DVFS — LiGen 10000x89x20 on V100 (<=15% slowdown)",
      rig.v100, core::LigenWorkload(10000, 89, 20), 0.15);
  return 0;
}
