// Cluster-scheduler performance benchmarks: the full deadline-aware
// scheduling pipeline over a 10^4-job deadline-tagged trace, plus the
// precompute-free baseline path.
//
// BM_ScheduleStream exports the deterministic simulated outcomes as user
// counters ending in _ns — perf_report lifts those into standalone,
// gated BENCH entries (perf_sched/BM_ScheduleStream:p50_turnaround_ns,
// ...), so scheduling-quality drift fails the perf gate exactly like a
// wall-clock regression. Wall time lives in the benchmark's real_time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "sched/scheduler.hpp"
#include "serve/train.hpp"
#include "sim/device.hpp"
#include "synergy/device.hpp"

namespace {

using namespace dsem;

/// Trained once per process: both applications on the simulated V100,
/// the example's full training grids at 2 repetitions.
const serve::ModelRegistry& shared_registry() {
  static serve::ModelRegistry* registry = [] {
    sim::Device sim_dev(sim::v100(), sim::NoiseConfig{}, 0xAD51);
    synergy::Device device(sim_dev);
    serve::TrainConfig config;
    config.sweep.repetitions = 2;
    config.origin = "perf_sched";
    auto* r = new serve::ModelRegistry;
    r->put(serve::train_domain_specific(device, {"cronos", "v100"}, config));
    r->put(serve::train_domain_specific(device, {"ligen", "v100"}, config));
    return r;
  }();
  return *registry;
}

const std::vector<serve::TimedJob>& shared_trace() {
  static const std::vector<serve::TimedJob> trace = [] {
    serve::TrafficConfig traffic;
    traffic.requests = 10000;
    traffic.arrival_rate_hz = 4.0;
    traffic.population = 64;
    traffic.deadline_slacks = {1.5, 2.0, 3.0, 4.0};
    return serve::generate_job_trace(traffic);
  }();
  return trace;
}

/// Deterministic p50/p99 over the completed jobs' turnaround times.
void turnaround_counters(benchmark::State& state,
                         const std::vector<sched::JobOutcome>& outcomes,
                         const std::vector<serve::TimedJob>& jobs) {
  std::vector<double> turnaround;
  turnaround.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].rejected) {
      turnaround.push_back(outcomes[i].finish_s - jobs[i].arrival_s);
    }
  }
  std::sort(turnaround.begin(), turnaround.end());
  const auto at = [&](double q) {
    return turnaround.empty()
               ? 0.0
               : turnaround[static_cast<std::size_t>(
                     q * static_cast<double>(turnaround.size() - 1))];
  };
  state.counters["p50_turnaround_ns"] = at(0.50) * 1e9;
  state.counters["p99_turnaround_ns"] = at(0.99) * 1e9;
}

void BM_ScheduleStream(benchmark::State& state) {
  const auto& registry = shared_registry();
  const auto& jobs = shared_trace();
  std::vector<sched::JobOutcome> outcomes;
  sched::SchedStats stats;
  for (auto _ : state) {
    celerity::ClusterConfig cluster_config;
    cluster_config.nodes = 4;
    celerity::Cluster cluster(sim::v100(), cluster_config);
    sched::SchedConfig config;
    config.frequency = sched::FrequencyPolicy::kModel;
    config.margin = 3.0;
    sched::ClusterScheduler scheduler(cluster, registry, config);
    outcomes = scheduler.run(jobs);
    benchmark::DoNotOptimize(outcomes);
    stats = scheduler.stats();
  }
  turnaround_counters(state, outcomes, jobs);
  state.counters["cluster_energy_j"] = stats.energy_j;
  state.counters["misses"] = static_cast<double>(stats.misses);
  state.counters["infeasible"] = static_cast<double>(stats.infeasible);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_ScheduleStream)->Unit(benchmark::kMillisecond);

/// The baseline path: no predictions, no precompute beyond deadlines —
/// isolates the placement/execution loop from model inference.
void BM_ScheduleMaxClock(benchmark::State& state) {
  const auto& registry = shared_registry();
  const auto& jobs = shared_trace();
  for (auto _ : state) {
    celerity::ClusterConfig cluster_config;
    cluster_config.nodes = 4;
    celerity::Cluster cluster(sim::v100(), cluster_config);
    sched::SchedConfig config;
    config.frequency = sched::FrequencyPolicy::kMaxClock;
    sched::ClusterScheduler scheduler(cluster, registry, config);
    benchmark::DoNotOptimize(scheduler.run(jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_ScheduleMaxClock)->Unit(benchmark::kMillisecond);

/// Deadline-tagged trace generation alone (features + slack sampling).
void BM_GenerateJobTrace(benchmark::State& state) {
  serve::TrafficConfig traffic;
  traffic.requests = 10000;
  traffic.arrival_rate_hz = 4.0;
  traffic.population = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::generate_job_trace(traffic));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_GenerateJobTrace)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
