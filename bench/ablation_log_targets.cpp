// Ablation: raw vs log-transformed regression targets in the
// domain-specific model. Log targets make ensemble blending geometric, so
// magnitude differences between neighbouring inputs cancel in the
// speedup / normalized-energy ratios (see ds_model.hpp).
#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "ml/forest.hpp"

namespace {

using namespace dsem;

std::pair<double, double> loocv_mape(
    const core::Dataset& dataset,
    std::span<const std::unique_ptr<core::Workload>> workloads,
    bool log_targets) {
  double worst = 0.0;
  double mean = 0.0;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < dataset.rows(); ++i) {
      if (dataset.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model{ml::RandomForestRegressor{}, log_targets};
    model.train(dataset, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(dataset, static_cast<int>(g));
    const auto pred = model.predict(workloads[g]->domain_features(),
                                    truth.freqs_mhz,
                                    dataset.default_freq_mhz[g]);
    const double mape = stats::mape(truth.norm_energy, pred.norm_energy);
    worst = std::max(worst, mape);
    mean += mape;
  }
  return {mean / static_cast<double>(dataset.num_groups()), worst};
}

} // namespace

int main() {
  using namespace dsem;
  bench::Rig rig;

  // LiGen spans 4 orders of magnitude in ligand count: the regime where
  // target scaling matters.
  std::vector<std::unique_ptr<core::Workload>> workloads;
  for (int ligands : {2, 256, 4096, 10000}) {
    for (int atoms : {31, 89}) {
      for (int frags : {4, 20}) {
        workloads.push_back(
            std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
      }
    }
  }
  std::vector<double> freqs;
  const auto all = rig.v100.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(rig.v100, workloads, 5, freqs);

  print_banner(std::cout,
               "Target-transform ablation — LiGen normalized-energy LOOCV "
               "MAPE, raw vs log targets");
  Table table({"targets", "mean_mape", "worst_mape"});
  for (bool log_targets : {false, true}) {
    const auto [mean, worst] = loocv_mape(dataset, workloads, log_targets);
    table.add_row({log_targets ? "log(time), log(energy)" : "raw",
                   fmt(mean, 4), fmt(worst, 4)});
  }
  table.print(std::cout);
  return 0;
}
