// Ablation: how many frequency configurations must the training sweep
// actually sample? MAPE of the held-out prediction (evaluated on ALL
// frequencies) as a function of the training-frequency stride — §4.2.2
// notes each input is executed "for each (or a part) of" the schedule.
#include "bench_util.hpp"
#include "common/statistics.hpp"

namespace {

using namespace dsem;

double loocv_energy_mape_with_stride(
    synergy::Device& device,
    std::span<const std::unique_ptr<core::Workload>> workloads,
    std::size_t stride) {
  const auto all = device.supported_frequencies();
  std::vector<double> train_freqs;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    train_freqs.push_back(all[i]);
  }
  const core::Dataset train_ds =
      core::build_dataset(device, workloads, 3, train_freqs);
  const core::Dataset full_ds = core::build_dataset(device, workloads, 3);

  double acc = 0.0;
  for (std::size_t g = 0; g < train_ds.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < train_ds.rows(); ++i) {
      if (train_ds.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model;
    model.train(train_ds, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(full_ds, static_cast<int>(g));
    const auto pred = model.predict(workloads[g]->domain_features(),
                                    truth.freqs_mhz,
                                    full_ds.default_freq_mhz[g]);
    acc += stats::mape(truth.norm_energy, pred.norm_energy);
  }
  return acc / static_cast<double>(train_ds.num_groups());
}

} // namespace

int main() {
  using namespace dsem;
  bench::Rig rig;
  const auto workloads = bench::cronos_workloads(5);

  print_banner(std::cout,
               "Training-sweep ablation — Cronos on V100, held-out "
               "normalized-energy MAPE vs training-frequency stride");
  Table table({"stride", "train_freqs", "norm_energy_mape"});
  for (std::size_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double mape =
        loocv_energy_mape_with_stride(rig.v100, workloads, stride);
    table.add_row({fmt(stride), fmt((196 + stride - 1) / stride),
                   fmt(mape, 4)});
  }
  table.print(std::cout);
  std::cout << "\nA handful of training frequencies already recover the "
               "full-sweep accuracy — the tuning phase can be cheap.\n";
  return 0;
}
