// Performance micro-benchmarks of the LiGen docking host numerics.
#include <benchmark/benchmark.h>

#include "ligen/screening.hpp"

namespace {

using namespace dsem;

void BM_DockSingleLigand(benchmark::State& state) {
  const auto protein = ligen::Protein::generate_pocket(0xBE);
  const ligen::DockingEngine engine(protein);
  Rng rng(1);
  const auto ligand =
      ligen::generate_ligand(static_cast<int>(state.range(0)), 8, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dock(ligand, seed++));
  }
}
BENCHMARK(BM_DockSingleLigand)->Arg(31)->Arg(89)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeScore(benchmark::State& state) {
  const auto protein = ligen::Protein::generate_pocket(0xBF);
  const ligen::DockingEngine engine(protein);
  Rng rng(2);
  const auto ligand = ligen::generate_ligand(89, 8, rng);
  const auto poses = engine.dock(ligand, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_score(poses.front(), ligand));
  }
}
BENCHMARK(BM_ComputeScore);

void BM_ScreenLibraryParallel(benchmark::State& state) {
  const auto protein = ligen::Protein::generate_pocket(0xC0);
  const auto library = ligen::generate_library(
      static_cast<int>(state.range(0)), 31, 4, 0x11);
  const ligen::VirtualScreen screen(protein);
  for (auto _ : state) {
    benchmark::DoNotOptimize(screen.run_host(library));
  }
  state.SetItemsProcessed(state.iterations() * library.size());
}
BENCHMARK(BM_ScreenLibraryParallel)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_LigandGeneration(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ligen::generate_ligand(89, 20, rng));
  }
}
BENCHMARK(BM_LigandGeneration);

} // namespace

BENCHMARK_MAIN();
