// Perf harness driver: one BENCH_<date>.json per invocation.
//
// Runs the perf_* Google Benchmark binaries (siblings of this executable,
// or --bench-dir) with JSON output, runs the fig01 characterization
// pipeline in-process with metrics enabled, and merges everything into a
// single "dsem-bench-v1" report (see src/common/bench_report.hpp for the
// schema). --smoke caps each micro-benchmark at --benchmark_min_time=0.01
// so CI can afford the run; the mode is recorded in the report so
// baselines are only compared like-for-like.
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "common/bench_report.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "core/sweep_report.hpp"

namespace {

using namespace dsem;

std::string today() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_buf);
  return buf;
}

std::string dir_of(const std::string& argv0) {
  const std::size_t slash = argv0.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : argv0.substr(0, slash);
}

void run_micro_benchmark(json::Value& report, const std::string& bench_dir,
                         const std::string& name, bool smoke) {
  const std::string tmp = name + ".gbench.json";
  std::string cmd = bench_dir + "/" + name + " --benchmark_out=" + tmp +
                    " --benchmark_out_format=json";
  if (smoke) {
    cmd += " --benchmark_min_time=0.01";
  }
  std::printf("[perf_report] %s\n", cmd.c_str());
  std::fflush(stdout);
  const int rc = std::system(cmd.c_str());
  DSEM_ENSURE(rc == 0, name + " failed with status " + std::to_string(rc));
  const std::size_t merged =
      benchreport::merge_google_benchmark(report, name,
                                          benchreport::load_file(tmp));
  DSEM_ENSURE(merged > 0, name + " produced no benchmark entries");
  std::remove(tmp.c_str());
}

/// The fig01 characterization pipeline (LiGen + Cronos on the V100) as the
/// end-to-end entry: micro-benchmarks bound single launches, this bounds
/// the figure-scale sweep the paper's results hang off. Smoke mode shrinks
/// the workloads, not the code path.
double run_pipeline(bool smoke, core::SweepReport& sweep_report) {
  const auto start = std::chrono::steady_clock::now();
  bench::Rig rig;
  sim::ProfileCache cache;
  core::SweepOptions options;
  options.cache = &cache;
  options.report = &sweep_report;
  if (smoke) {
    const core::LigenWorkload ligen(256, 31, 4);
    core::characterize(rig.v100, ligen, options);
    const core::CronosWorkload cronos({12, 6, 6}, 2);
    core::characterize(rig.v100, cronos, options);
  } else {
    const core::LigenWorkload ligen(4096, 89, 8);
    core::characterize(rig.v100, ligen, options);
    const core::CronosWorkload cronos({80, 32, 32}, 10);
    core::characterize(rig.v100, cronos, options);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  sweep_report.add_phase("characterization", wall_s);
  return wall_s;
}

} // namespace

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("perf_report",
                "Run the perf_* micro-benchmarks plus an instrumented fig01 "
                "pipeline and merge them into one BENCH_<date>.json");
  cli.add_flag("smoke", "fast mode for CI (--benchmark_min_time=0.01, "
                        "shrunken pipeline workloads)");
  cli.add_option("out", "output path (default: BENCH_<date>.json)", "");
  cli.add_option("bench-dir",
                 "directory holding the perf_* binaries (default: this "
                 "executable's directory)",
                 "");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = cli.flag("smoke");
  const std::string date = today();
  const std::string out =
      cli.option("out").empty() ? "BENCH_" + date + ".json" : cli.option("out");
  const std::string bench_dir = cli.option("bench-dir").empty()
                                    ? dir_of(argv[0])
                                    : cli.option("bench-dir");

  json::Value report =
      benchreport::make_report(date, smoke ? "smoke" : "full");
  for (const char* name : {"perf_sim", "perf_ml", "perf_cronos",
                           "perf_ligen", "perf_advisor", "perf_sched"}) {
    run_micro_benchmark(report, bench_dir, name, smoke);
  }

  std::printf("[perf_report] fig01 pipeline (%s)\n", smoke ? "smoke" : "full");
  std::fflush(stdout);
  metrics::set_enabled(true);
  metrics::Registry::global().clear();
  core::SweepReport sweep_report;
  const double wall_s = run_pipeline(smoke, sweep_report);
  benchreport::set_pipeline(
      report, "fig01", wall_s,
      core::run_manifest("perf_report/fig01", &sweep_report));
  metrics::set_enabled(false);

  benchreport::validate(report);
  benchreport::write_file(out, report);
  std::printf("[perf_report] %zu entries -> %s\n",
              report.at("benchmarks").as_array().size(), out.c_str());
  return 0;
}
