// Figure 5: Cronos grid-size scalability on the AMD MI100 — no fixed
// default clock; the "auto" performance level is the speedup baseline and
// sits at the top of the range, with deep down-clock energy savings
// (~35% small grid, ~5% less on the large grid) at ~10% speedup loss.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  bench::print_characterization(
      std::cout, "Fig. 5a — Cronos 10x4x4 grid, AMD MI100 (auto baseline)",
      core::characterize(rig.mi100, core::CronosWorkload({10, 4, 4}, 10)));

  bench::print_characterization(
      std::cout, "Fig. 5b — Cronos 160x64x64 grid, AMD MI100 (auto baseline)",
      core::characterize(rig.mi100, core::CronosWorkload({160, 64, 64}, 10)));
  return 0;
}
