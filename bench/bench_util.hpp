// Shared plumbing for the figure/table reproduction benches: device
// construction, standard table renderings of characterizations and
// accuracy reports, and the paper's workload grids.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/characterization.hpp"
#include "core/evaluation.hpp"
#include "core/workload.hpp"
#include "sim/device.hpp"

namespace dsem::bench {

/// Simulated devices used throughout (seeded measurement noise as §5.1).
struct Rig {
  Rig();
  sim::Device v100_sim;
  sim::Device mi100_sim;
  synergy::Device v100;
  synergy::Device mi100;
};

/// Prints a characterization as the data behind one scatter plot: CSV
/// series (freq, time, energy, speedup, norm_energy, pareto) followed by a
/// human-readable summary of the extremes.
void print_characterization(std::ostream& os, const std::string& title,
                            const core::Characterization& c);

/// Prints raw energy-vs-time series (Figs. 6-9 style).
struct EnergyTimeSeries {
  std::string label;
  std::vector<double> freqs_mhz;
  std::vector<double> time_s;
  std::vector<double> energy_j;
};
void print_energy_time(std::ostream& os, const std::string& title,
                       std::span<const EnergyTimeSeries> series);

/// Sweeps a workload and packages the raw series.
EnergyTimeSeries sweep_series(synergy::Device& device,
                              const core::Workload& workload,
                              const std::string& label, int repetitions = 5);

/// Prints a Fig. 13-style MAPE comparison table.
void print_accuracy_report(std::ostream& os, const std::string& title,
                           const core::AccuracyReport& report);

/// Prints a Fig. 14-style Pareto comparison.
void print_pareto_evaluation(std::ostream& os, const std::string& title,
                             const core::ParetoEvaluation& eval);

/// Prints the three-way (GP vs DS vs hybrid) MAPE comparison table.
void print_three_way_accuracy(std::ostream& os, const std::string& title,
                              const core::ThreeWayAccuracyReport& report);

/// Prints the three-way predicted-Pareto comparison for one input.
void print_three_way_pareto(std::ostream& os, const std::string& title,
                            const core::ThreeWayParetoEvaluation& eval);

/// Prints the extrapolation split (largest inputs held out) results.
void print_extrapolation(std::ostream& os, const std::string& title,
                         const core::ExtrapolationReport& report);

/// The paper's Cronos grids (§5.1) plus interpolation-support grids.
std::vector<std::unique_ptr<core::Workload>> cronos_workloads(int steps = 10);
/// Names of the five canonical grids reported in Fig. 13a/b.
std::vector<std::string> cronos_reported();

/// The paper's LiGen tuple grid (§5.1): (l, a, f) in
/// {2,16,256,1024,4096,10000} x {31,63,74,89} x {4,8,16,20}.
std::vector<std::unique_ptr<core::Workload>> ligen_workloads();
/// The twelve inputs reported in Fig. 13c/d.
std::vector<std::string> ligen_reported();

} // namespace dsem::bench
