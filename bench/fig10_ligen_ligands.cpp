// Figure 10: LiGen characterization scaling the ligand batch — small
// (256 x 31 atoms x 4 frags) vs large (10000 x 89 x 20) on both GPUs.
// On AMD the auto performance level is the baseline and always performs
// best; small inputs leave more room for energy-saving down-clocks.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  const core::LigenWorkload small(256, 31, 4);
  const core::LigenWorkload large(10000, 89, 20);

  bench::print_characterization(std::cout,
                         "Fig. 10a — LiGen small input, NVIDIA V100",
                         core::characterize(rig.v100, small));
  bench::print_characterization(std::cout,
                         "Fig. 10b — LiGen large input, NVIDIA V100",
                         core::characterize(rig.v100, large));
  bench::print_characterization(std::cout,
                         "Fig. 10c — LiGen small input, AMD MI100",
                         core::characterize(rig.mi100, small));
  bench::print_characterization(std::cout,
                         "Fig. 10d — LiGen large input, AMD MI100",
                         core::characterize(rig.mi100, large));
  return 0;
}
