// Figure 6: LiGen raw energy-vs-time on the NVIDIA V100, scaling the
// number of fragments (4, 8, 16, 20) at fixed atom counts (31 and 89),
// 100000 ligands. Both energy and time grow with fragments, more markedly
// at the larger atom count.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  for (int atoms : {31, 89}) {
    std::vector<bench::EnergyTimeSeries> series;
    for (int frags : {4, 8, 16, 20}) {
      const core::LigenWorkload w(100000, atoms, frags);
      series.push_back(bench::sweep_series(
          rig.v100, w, std::to_string(frags) + " frags"));
    }
    bench::print_energy_time(std::cout,
                      "Fig. 6 — LiGen on V100, " + std::to_string(atoms) +
                          " atoms, 100000 ligands, fragment sweep",
                      series);
  }
  return 0;
}
