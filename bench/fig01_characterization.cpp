// Figure 1: LiGen and Cronos multi-objective characterization on the
// NVIDIA V100 — speedup vs normalized energy across all 196 core
// frequencies, with the Pareto-optimal configurations flagged.
//
// Accepts the shared fault-injection knobs (--fault-rate, --help for the
// rest): with a nonzero rate the sweep retries transient device faults,
// drops the grid points that exhaust their attempts, and appends the
// recovery accounting to the output.
#include "bench_util.hpp"

#include <chrono>

#include "common/cli.hpp"
#include "core/sweep_report.hpp"

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("fig01_characterization",
                "Fig. 1 — LiGen/Cronos characterization on the V100");
  core::add_fault_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  bench::Rig rig;
  rig.v100_sim.set_fault_config(core::fault_config_from_cli(cli));

  sim::ProfileCache cache;
  core::SweepReport report;
  core::SweepOptions options;
  options.cache = &cache;
  options.retry = core::retry_policy_from_cli(cli);
  options.report = &report;

  const auto start = std::chrono::steady_clock::now();
  const core::LigenWorkload ligen(4096, 89, 8);
  bench::print_characterization(std::cout, "Fig. 1a — LiGen on NVIDIA V100",
                         core::characterize(rig.v100, ligen, options));

  const core::CronosWorkload cronos({80, 32, 32}, 10);
  bench::print_characterization(std::cout, "Fig. 1b — Cronos on NVIDIA V100",
                         core::characterize(rig.v100, cronos, options));
  report.add_phase(
      "characterization",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  std::cout << "\n";
  core::print_sweep_report(std::cout, report);
  return 0;
}
