// Figure 1: LiGen and Cronos multi-objective characterization on the
// NVIDIA V100 — speedup vs normalized energy across all 196 core
// frequencies, with the Pareto-optimal configurations flagged.
//
// Accepts the shared fault-injection knobs (--fault-rate, --help for the
// rest): with a nonzero rate the sweep retries transient device faults,
// drops the grid points that exhaust their attempts, and appends the
// recovery accounting to the output.
#include "bench_util.hpp"

#include <chrono>

#include "common/cli.hpp"
#include "common/statistics.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/sweep_report.hpp"

namespace {

using namespace dsem;

// Repackages an already-measured characterization curve as a one-group
// training dataset — no extra sweeping.
core::Dataset dataset_from(const core::Workload& workload,
                           const core::Characterization& c) {
  const std::vector<double> features = workload.domain_features();
  core::Dataset d;
  d.x = ml::Matrix(c.points.size(), features.size() + 1);
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    auto row = d.x.row(i);
    std::copy(features.begin(), features.end(), row.begin());
    row[features.size()] = c.points[i].freq_mhz;
    d.time_s.push_back(c.points[i].time_s);
    d.energy_j.push_back(c.points[i].energy_j);
    d.groups.push_back(0);
  }
  d.group_names.push_back(workload.name());
  d.group_default.push_back({c.default_time_s, c.default_energy_j});
  d.default_freq_mhz.push_back(c.default_freq_mhz);
  return d;
}

// Trains the domain-specific model on the measured curve and reports the
// in-sample fit — a cheap self-consistency check on the model plumbing
// (and the source of the train.ds spans in the trace).
void print_model_self_fit(std::ostream& os, const core::Workload& workload,
                          const core::Characterization& c) {
  if (!c.baseline_ok || c.points.empty()) {
    os << "model self-fit: skipped (degraded characterization)\n";
    return;
  }
  const core::Dataset d = dataset_from(workload, c);
  core::DomainSpecificModel model;
  model.train(d);
  std::vector<double> freqs;
  std::vector<double> speedup;
  std::vector<double> norm_energy;
  for (const core::CharacterizationPoint& p : c.points) {
    freqs.push_back(p.freq_mhz);
    speedup.push_back(p.speedup);
    norm_energy.push_back(p.norm_energy);
  }
  const core::Prediction pred =
      model.predict(workload.domain_features(), freqs, c.default_freq_mhz);
  os << "model self-fit (in-sample): speedup MAPE "
     << fmt_percent(stats::mape(speedup, pred.speedup)) << ", energy MAPE "
     << fmt_percent(stats::mape(norm_energy, pred.norm_energy)) << "\n";
}

} // namespace

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("fig01_characterization",
                "Fig. 1 — LiGen/Cronos characterization on the V100");
  core::add_fault_cli_options(cli);
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);

  bench::Rig rig;
  rig.v100_sim.set_fault_config(core::fault_config_from_cli(cli));

  sim::ProfileCache cache;
  core::SweepReport report;
  core::SweepOptions options;
  options.cache = &cache;
  options.retry = core::retry_policy_from_cli(cli);
  options.report = &report;

  const auto start = std::chrono::steady_clock::now();
  const core::LigenWorkload ligen(4096, 89, 8);
  const core::Characterization ligen_c =
      core::characterize(rig.v100, ligen, options);
  bench::print_characterization(std::cout, "Fig. 1a — LiGen on NVIDIA V100",
                                ligen_c);
  print_model_self_fit(std::cout, ligen, ligen_c);

  const core::CronosWorkload cronos({80, 32, 32}, 10);
  const core::Characterization cronos_c =
      core::characterize(rig.v100, cronos, options);
  bench::print_characterization(std::cout, "Fig. 1b — Cronos on NVIDIA V100",
                                cronos_c);
  print_model_self_fit(std::cout, cronos, cronos_c);
  report.add_phase(
      "characterization",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  std::cout << "\n";
  core::print_sweep_report(std::cout, report);
  core::write_observability_outputs(std::cout, cli, "fig01_characterization",
                                    &report);
  return 0;
}
