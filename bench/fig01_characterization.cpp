// Figure 1: LiGen and Cronos multi-objective characterization on the
// NVIDIA V100 — speedup vs normalized energy across all 196 core
// frequencies, with the Pareto-optimal configurations flagged.
//
// Accepts the shared fault-injection knobs (--fault-rate, --help for the
// rest): with a nonzero rate the sweep retries transient device faults,
// drops the grid points that exhaust their attempts, and appends the
// recovery accounting to the output.
#include "bench_util.hpp"

#include <chrono>

#include "common/cli.hpp"
#include "common/statistics.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/evaluation.hpp"
#include "core/sweep_report.hpp"
#include "microbench/suite.hpp"

namespace {

using namespace dsem;

// Repackages an already-measured characterization curve as a one-group
// training dataset — no extra sweeping.
core::Dataset dataset_from(const core::Workload& workload,
                           const core::Characterization& c) {
  const std::vector<double> features = workload.domain_features();
  core::Dataset d;
  d.x = ml::Matrix(c.points.size(), features.size() + 1);
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    auto row = d.x.row(i);
    std::copy(features.begin(), features.end(), row.begin());
    row[features.size()] = c.points[i].freq_mhz;
    d.time_s.push_back(c.points[i].time_s);
    d.energy_j.push_back(c.points[i].energy_j);
    d.groups.push_back(0);
  }
  d.group_names.push_back(workload.name());
  d.group_default.push_back({c.default_time_s, c.default_energy_j});
  d.default_freq_mhz.push_back(c.default_freq_mhz);
  return d;
}

// Trains the domain-specific model on the measured curve and reports the
// in-sample fit — a cheap self-consistency check on the model plumbing
// (and the source of the train.ds spans in the trace).
void print_model_self_fit(std::ostream& os, const core::Workload& workload,
                          const core::Characterization& c) {
  if (!c.baseline_ok || c.points.empty()) {
    os << "model self-fit: skipped (degraded characterization)\n";
    return;
  }
  const core::Dataset d = dataset_from(workload, c);
  core::DomainSpecificModel model;
  model.train(d);
  std::vector<double> freqs;
  std::vector<double> speedup;
  std::vector<double> norm_energy;
  for (const core::CharacterizationPoint& p : c.points) {
    freqs.push_back(p.freq_mhz);
    speedup.push_back(p.speedup);
    norm_energy.push_back(p.norm_energy);
  }
  const core::Prediction pred =
      model.predict(workload.domain_features(), freqs, c.default_freq_mhz);
  os << "model self-fit (in-sample): speedup MAPE "
     << fmt_percent(stats::mape(speedup, pred.speedup)) << ", energy MAPE "
     << fmt_percent(stats::mape(norm_energy, pred.norm_energy)) << "\n";
}

// Three-way model-family comparison (GP vs DS vs hybrid) on a compact
// Cronos grid: leave-one-input-out accuracy, predicted-Pareto quality for
// the Fig. 1b input, and the extrapolation split that holds out the
// largest grid — where the hybrid family's execution-model features are
// designed to beat the input-size-blind GP baseline.
void print_three_way_section(std::ostream& os, bench::Rig& rig,
                             const core::SweepOptions& options) {
  std::vector<std::unique_ptr<core::Workload>> workloads;
  for (const int n : {10, 20, 40, 80, 120, 160}) {
    const int side = std::max(4, n * 2 / 5);
    workloads.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{n, side, side}, 10));
  }
  const std::vector<double> all = rig.v100.supported_frequencies();
  std::vector<double> freqs;
  for (std::size_t i = 0; i < all.size(); i += 8) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(rig.v100, workloads, options, freqs);

  core::GeneralPurposeModel gp;
  gp.train(rig.v100, microbench::make_suite(), options, 16);
  const sim::DeviceSpec& spec = rig.v100.spec();

  const core::ThreeWayAccuracyReport accuracy =
      core::evaluate_accuracy_three_way(dataset, workloads, spec, gp);
  bench::print_three_way_accuracy(
      os, "Model families — LOOCV accuracy (GP vs DS vs hybrid), Cronos on "
          "V100",
      accuracy);

  const core::ThreeWayParetoEvaluation pareto =
      core::evaluate_pareto_three_way(dataset, workloads, spec, "80x32x32",
                                      gp);
  bench::print_three_way_pareto(
      os, "Model families — predicted Pareto fronts for 80x32x32", pareto);

  const core::ExtrapolationReport extrapolation =
      core::evaluate_extrapolation(dataset, workloads, spec, gp);
  bench::print_extrapolation(
      os, "Model families — extrapolation split (largest grid held out)",
      extrapolation);
}

} // namespace

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("fig01_characterization",
                "Fig. 1 — LiGen/Cronos characterization on the V100");
  core::add_fault_cli_options(cli);
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);

  bench::Rig rig;
  rig.v100_sim.set_fault_config(core::fault_config_from_cli(cli));

  sim::ProfileCache cache;
  core::SweepReport report;
  core::SweepOptions options;
  options.cache = &cache;
  options.retry = core::retry_policy_from_cli(cli);
  options.report = &report;

  const auto start = std::chrono::steady_clock::now();
  const core::LigenWorkload ligen(4096, 89, 8);
  const core::Characterization ligen_c =
      core::characterize(rig.v100, ligen, options);
  bench::print_characterization(std::cout, "Fig. 1a — LiGen on NVIDIA V100",
                                ligen_c);
  print_model_self_fit(std::cout, ligen, ligen_c);

  const core::CronosWorkload cronos({80, 32, 32}, 10);
  const core::Characterization cronos_c =
      core::characterize(rig.v100, cronos, options);
  bench::print_characterization(std::cout, "Fig. 1b — Cronos on NVIDIA V100",
                                cronos_c);
  print_model_self_fit(std::cout, cronos, cronos_c);
  print_three_way_section(std::cout, rig, options);
  report.add_phase(
      "characterization",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  std::cout << "\n";
  core::print_sweep_report(std::cout, report);
  core::write_observability_outputs(std::cout, cli, "fig01_characterization",
                                    &report);
  return 0;
}
