// Figure 1: LiGen and Cronos multi-objective characterization on the
// NVIDIA V100 — speedup vs normalized energy across all 196 core
// frequencies, with the Pareto-optimal configurations flagged.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  const core::LigenWorkload ligen(4096, 89, 8);
  bench::print_characterization(std::cout, "Fig. 1a — LiGen on NVIDIA V100",
                         core::characterize(rig.v100, ligen));

  const core::CronosWorkload cronos({80, 32, 32}, 10);
  bench::print_characterization(std::cout, "Fig. 1b — Cronos on NVIDIA V100",
                         core::characterize(rig.v100, cronos));
  return 0;
}
