// Performance micro-benchmarks of the device simulator: launch cost is
// what bounds the frequency sweeps (hundreds of thousands of launches per
// figure), so it must stay sub-microsecond.
#include <benchmark/benchmark.h>

#include "core/measurement.hpp"
#include "core/workload.hpp"
#include "sim/device.hpp"

namespace {

using namespace dsem;

void BM_DeviceLaunch(benchmark::State& state) {
  sim::Device device(sim::v100(), sim::NoiseConfig{});
  sim::KernelProfile kernel;
  kernel.float_add = 128.0;
  kernel.float_mul = 128.0;
  kernel.global_bytes = 64.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(kernel, 1 << 20));
  }
}
BENCHMARK(BM_DeviceLaunch);

void BM_DeviceLaunchNoiseless(benchmark::State& state) {
  sim::Device device(sim::v100(), sim::NoiseConfig::none());
  sim::KernelProfile kernel;
  kernel.float_add = 256.0;
  kernel.global_bytes = 32.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(kernel, 4096));
  }
}
BENCHMARK(BM_DeviceLaunchNoiseless);

void BM_CronosWorkloadSubmit(benchmark::State& state) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{});
  synergy::Device device(sim_dev);
  const core::CronosWorkload workload(
      {static_cast<int>(state.range(0)),
       static_cast<int>(state.range(0) * 2 / 5),
       static_cast<int>(state.range(0) * 2 / 5)},
      10);
  for (auto _ : state) {
    synergy::Queue queue(device);
    workload.submit(queue);
    benchmark::DoNotOptimize(queue.total_energy_j());
  }
}
BENCHMARK(BM_CronosWorkloadSubmit)->Arg(40)->Arg(160);

void BM_FullCharacterizationSweep(benchmark::State& state) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{});
  synergy::Device device(sim_dev);
  const core::LigenWorkload workload(10000, 89, 20);
  for (auto _ : state) {
    const auto sweep = core::sweep_frequencies(device, workload, 1);
    benchmark::DoNotOptimize(sweep.size());
  }
}
BENCHMARK(BM_FullCharacterizationSweep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
