// Figure 9: as Figure 8, on the AMD MI100.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  for (int frags : {4, 20}) {
    std::vector<bench::EnergyTimeSeries> series;
    for (int atoms : {31, 63, 74, 89}) {
      const core::LigenWorkload w(100000, atoms, frags);
      series.push_back(bench::sweep_series(
          rig.mi100, w, std::to_string(atoms) + " atoms"));
    }
    bench::print_energy_time(std::cout,
                      "Fig. 9 — LiGen on MI100, " + std::to_string(frags) +
                          " fragments, 100000 ligands, atom sweep",
                      series);
  }
  return 0;
}
