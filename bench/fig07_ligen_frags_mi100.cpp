// Figure 7: as Figure 6, on the AMD MI100 — same fragment scaling, with
// higher absolute time and energy than the V100 and larger energy spread
// at the big atom count.
#include "bench_util.hpp"

int main() {
  using namespace dsem;
  bench::Rig rig;

  for (int atoms : {31, 89}) {
    std::vector<bench::EnergyTimeSeries> series;
    for (int frags : {4, 8, 16, 20}) {
      const core::LigenWorkload w(100000, atoms, frags);
      series.push_back(bench::sweep_series(
          rig.mi100, w, std::to_string(frags) + " frags"));
    }
    bench::print_energy_time(std::cout,
                      "Fig. 7 — LiGen on MI100, " + std::to_string(atoms) +
                          " atoms, 100000 ligands, fragment sweep",
                      series);
  }
  return 0;
}
