// Performance micro-benchmarks of the Cronos solver host numerics
// (cell-update throughput of the 13-point stencil).
#include <benchmark/benchmark.h>

#include <memory>

#include "cronos/problems.hpp"
#include "cronos/solver.hpp"

namespace {

using namespace dsem;

void BM_ComputeChangesMhd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cronos::SolverConfig config;
  config.dims = {n, n, n};
  cronos::Solver solver(std::make_shared<cronos::IdealMhdLaw>(5.0 / 3.0),
                        config);
  solver.initialize(cronos::mhd_turbulence_ic(5.0 / 3.0));
  cronos::State dudt(config.dims, 8);
  cronos::Field3D cfl(config.dims);
  for (auto _ : state) {
    solver.compute_changes(solver.state(), dudt, cfl);
    benchmark::DoNotOptimize(cfl.interior_max_abs());
  }
  state.SetItemsProcessed(state.iterations() * config.dims.cell_count());
}
BENCHMARK(BM_ComputeChangesMhd)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_FullStepEuler(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue queue(device, synergy::ExecMode::kValidate);
  cronos::SolverConfig config;
  config.dims = {n, n, n};
  cronos::Solver solver(std::make_shared<cronos::EulerLaw>(1.4), config);
  solver.initialize(cronos::euler_uniform(1.0, {0.3, 0.2, 0.1}, 1.0, 1.4));
  for (auto _ : state) {
    solver.step(queue);
  }
  state.SetItemsProcessed(state.iterations() * config.dims.cell_count());
}
BENCHMARK(BM_FullStepEuler)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_CflReduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cronos::SolverConfig config;
  config.dims = {n, n, n};
  cronos::Solver solver(std::make_shared<cronos::BurgersLaw>(), config);
  solver.initialize(cronos::burgers_sine(1.0, 2.0));
  cronos::State dudt(config.dims, 1);
  cronos::Field3D cfl(config.dims);
  solver.compute_changes(solver.state(), dudt, cfl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.reduce_max_rate(cfl));
  }
  state.SetItemsProcessed(state.iterations() * config.dims.cell_count());
}
BENCHMARK(BM_CflReduce)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
