// Ablation: drop one domain feature at a time and measure the LOOCV MAPE
// degradation of the domain-specific models — validates the Table 2
// feature selections.
#include "bench_util.hpp"
#include "common/statistics.hpp"

namespace {

using namespace dsem;

/// Dataset copy with one feature column zeroed (the forest then cannot
/// split on it, equivalent to dropping it).
core::Dataset drop_feature(const core::Dataset& dataset, std::size_t col) {
  core::Dataset out = dataset;
  for (std::size_t r = 0; r < out.x.rows(); ++r) {
    out.x(r, col) = 0.0;
  }
  return out;
}

struct AblationScore {
  double norm_energy_mape = 0.0; ///< ratio-curve accuracy
  double abs_time_mape = 0.0;    ///< absolute runtime accuracy
};

AblationScore loocv_scores(
    const core::Dataset& dataset,
    std::span<const std::unique_ptr<core::Workload>> workloads,
    std::size_t dropped_col) {
  AblationScore score;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    std::vector<std::size_t> train_rows;
    for (std::size_t i = 0; i < dataset.rows(); ++i) {
      if (dataset.groups[i] != static_cast<int>(g)) {
        train_rows.push_back(i);
      }
    }
    core::DomainSpecificModel model;
    model.train(dataset, train_rows);
    const core::TruthCurves truth =
        core::truth_curves(dataset, static_cast<int>(g));
    auto features = workloads[g]->domain_features();
    if (dropped_col < features.size()) {
      features[dropped_col] = 0.0;
    }
    const auto pred = model.predict(features, truth.freqs_mhz,
                                    dataset.default_freq_mhz[g]);
    score.norm_energy_mape += stats::mape(truth.norm_energy, pred.norm_energy);
    score.abs_time_mape += stats::mape(truth.time_s, pred.time_s);
  }
  const auto n = static_cast<double>(dataset.num_groups());
  score.norm_energy_mape /= n;
  score.abs_time_mape /= n;
  return score;
}

void run(const std::string& app, synergy::Device& device,
         std::vector<std::unique_ptr<core::Workload>> workloads) {
  std::vector<double> freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(device, workloads, 5, freqs);
  const auto names = workloads.front()->feature_names();

  print_banner(std::cout, "Feature ablation — " + app);
  Table table({"configuration", "norm_energy_mape", "abs_time_mape"});
  const AblationScore full = loocv_scores(dataset, workloads, names.size());
  table.add_row({"all features", fmt(full.norm_energy_mape, 4),
                 fmt(full.abs_time_mape, 4)});
  for (std::size_t col = 0; col < names.size(); ++col) {
    const core::Dataset reduced = drop_feature(dataset, col);
    const AblationScore s = loocv_scores(reduced, workloads, col);
    table.add_row({"without " + names[col], fmt(s.norm_energy_mape, 4),
                   fmt(s.abs_time_mape, 4)});
  }
  table.print(std::cout);
  std::cout << "\nRatio curves (normalized energy) hinge on the "
               "utilization-setting feature; absolute runtime needs the "
               "full Table 2 feature set.\n";
}

} // namespace

int main() {
  bench::Rig rig;
  {
    // The canonical grids are aspect-locked (every axis scales together),
    // which makes single axes redundant; anisotropic grids are added so
    // the ablation can actually distinguish them.
    auto workloads = bench::cronos_workloads();
    for (auto dims : {cronos::GridDims{160, 16, 16},
                      cronos::GridDims{16, 128, 32},
                      cronos::GridDims{32, 16, 128},
                      cronos::GridDims{120, 8, 48}}) {
      workloads.push_back(std::make_unique<core::CronosWorkload>(dims, 10));
    }
    run("Cronos", rig.v100, std::move(workloads));
  }
  {
    std::vector<std::unique_ptr<core::Workload>> workloads;
    for (int ligands : {2, 256, 4096, 10000}) {
      for (int atoms : {31, 89}) {
        for (int frags : {4, 20}) {
          workloads.push_back(
              std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
        }
      }
    }
    run("LiGen", rig.v100, std::move(workloads));
  }
  return 0;
}
