// Drug-discovery example: an end-to-end LiGen virtual screening campaign.
//
// Generates a synthetic target pocket and a mixed chemical library, docks
// and scores every ligand (real numerics on the host, device cost
// simulated through the SYnergy queue), prints the candidate ranking, and
// shows the energy bill of running the campaign at the default clock vs a
// Pareto-chosen energy-saving frequency.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "core/sweep_report.hpp"
#include "ligen/screening.hpp"

int main(int argc, char** argv) {
  using namespace dsem;
  CliParser cli("virtual_screening_campaign",
                "LiGen-style virtual screening with energy profiling");
  cli.add_option("ligands", "library size (real docking runs on the host)",
                 "48");
  cli.add_option("atoms", "atoms per ligand", "31");
  cli.add_option("fragments", "fragments per ligand", "4");
  cli.add_option("seed", "campaign seed", "20230801");
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);
  const int ligand_count = static_cast<int>(cli.option_int("ligands"));
  const int atoms = static_cast<int>(cli.option_int("atoms"));
  const int fragments = static_cast<int>(cli.option_int("fragments"));
  const auto seed = static_cast<std::uint64_t>(cli.option_int("seed"));

  std::cout << "generating target pocket and a library of " << ligand_count
            << " ligands (" << atoms << " atoms, " << fragments
            << " fragments each)...\n";
  const auto protein = ligen::Protein::generate_pocket(seed);
  const auto library =
      ligen::generate_library(ligand_count, atoms, fragments, seed + 1);

  sim::Device v100_sim(sim::v100(), sim::NoiseConfig{}, seed + 2);
  synergy::Device device(v100_sim);
  synergy::Queue queue(device, synergy::ExecMode::kValidate);

  ligen::VirtualScreen screen(protein);
  const auto result = screen.run(library, queue, seed + 3);

  std::cout << "\ntop candidates:\n";
  Table table({"rank", "ligand", "score"});
  const auto ranking = result.ranking();
  for (std::size_t r = 0; r < std::min<std::size_t>(10, ranking.size());
       ++r) {
    table.add_row({fmt(r + 1), library[ranking[r]].name(),
                   fmt(result.scores[ranking[r]], 4)});
  }
  table.print(std::cout);

  std::cout << "\nper-kernel device profile (simulated V100):\n";
  Table profile({"kernel", "launches", "time_s", "energy_j"});
  for (const auto& s : queue.kernel_summaries()) {
    profile.add_row(
        {s.name, fmt(s.launches), fmt(s.time_s, 5), fmt(s.energy_j, 3)});
  }
  profile.print(std::cout);

  // Frequency advice for a production-scale campaign of the same ligand
  // structure: characterize a 100k-ligand batch in sim-only mode.
  const core::LigenWorkload production(100000, atoms, fragments);
  const auto c = core::characterize(device, production, 5);
  const auto front = c.pareto_indices();
  std::size_t pick = front.back();
  for (std::size_t i : front) {
    if (1.0 - c.points[i].speedup <= 0.05 &&
        c.points[i].norm_energy < c.points[pick].norm_energy) {
      pick = i;
    }
  }
  const auto& p = c.points[pick];
  std::cout << "\nproduction-scale advice (100000 ligands): run at "
            << fmt(p.freq_mhz, 0) << " MHz instead of "
            << fmt(c.default_freq_mhz, 0) << " MHz -> "
            << fmt_percent(1.0 - p.norm_energy) << " energy saving at "
            << fmt_percent(1.0 - p.speedup) << " slowdown\n";
  core::write_observability_outputs(std::cout, cli,
                                    "virtual_screening_campaign",
                                    /*report=*/nullptr);
  return 0;
}
