// Magnetohydrodynamics example: a real Cronos run — the Orszag-Tang
// vortex, the classic 2-D ideal-MHD benchmark — solved with the
// finite-volume solver while the SYnergy queue meters the simulated
// device. Prints physics diagnostics per interval and the energy bill.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/sweep_report.hpp"
#include "cronos/problems.hpp"
#include "cronos/solver.hpp"

namespace {

using namespace dsem;

struct Diagnostics {
  double mass = 0.0;
  double kinetic = 0.0;
  double magnetic = 0.0;
  double max_mach = 0.0;
};

Diagnostics diagnose(const cronos::Solver& solver) {
  const auto& dims = solver.config().dims;
  const cronos::IdealMhdLaw& law =
      dynamic_cast<const cronos::IdealMhdLaw&>(solver.law());
  Diagnostics d;
  std::array<double, 8> u{};
  for (int z = 0; z < dims.nz; ++z) {
    for (int y = 0; y < dims.ny; ++y) {
      for (int x = 0; x < dims.nx; ++x) {
        solver.state().cell(z, y, x, u);
        d.mass += u[0];
        const double ke =
            0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
        const double me = 0.5 * (u[5] * u[5] + u[6] * u[6] + u[7] * u[7]);
        d.kinetic += ke;
        d.magnetic += me;
        const double v = std::sqrt(2.0 * ke / u[0]);
        const double cs =
            std::sqrt(law.gamma() * law.gas_pressure(u) / u[0]);
        d.max_mach = std::max(d.max_mach, v / cs);
      }
    }
  }
  return d;
}

} // namespace

int main(int argc, char** argv) {
  CliParser cli("mhd_simulation",
                "Orszag-Tang vortex with energy profiling");
  cli.add_option("resolution", "grid cells per side", "64");
  cli.add_option("end-time", "simulation end time", "0.25");
  cli.add_option("frequency", "core clock in MHz (0 = device default)", "0");
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);
  const int n = static_cast<int>(cli.option_int("resolution"));
  const double end_time = cli.option_double("end-time");
  const double freq = cli.option_double("frequency");

  sim::Device v100_sim(sim::v100(), sim::NoiseConfig{}, 0x0527A6);
  synergy::Device device(v100_sim);
  synergy::Queue queue(device, synergy::ExecMode::kValidate);
  if (freq > 0.0) {
    queue.set_target_frequency(freq);
  }

  const double gamma = 5.0 / 3.0;
  cronos::SolverConfig config;
  config.dims = {n, n, 1};
  config.cfl_number = 0.4;
  cronos::Solver solver(std::make_shared<cronos::IdealMhdLaw>(gamma), config);
  solver.initialize(cronos::orszag_tang(gamma));

  std::cout << "Orszag-Tang vortex, " << n << "x" << n
            << " grid, ideal MHD (gamma = 5/3), end time " << end_time
            << ", core clock " << fmt(device.current_frequency(), 0)
            << " MHz\n\n";

  Table table({"t", "dt", "mass", "kinetic_E", "magnetic_E", "max_mach"});
  const int intervals = 5;
  for (int k = 1; k <= intervals; ++k) {
    solver.run_until(queue, end_time * k / intervals);
    const Diagnostics d = diagnose(solver);
    table.add_row({fmt(solver.time(), 3), fmt(solver.dt(), 5),
                   fmt(d.mass, 2), fmt(d.kinetic, 2), fmt(d.magnetic, 2),
                   fmt(d.max_mach, 3)});
  }
  table.print(std::cout);

  std::cout << "\nsimulated-device energy bill:\n";
  Table bill({"kernel", "launches", "time_s", "energy_j"});
  for (const auto& s : queue.kernel_summaries()) {
    bill.add_row(
        {s.name, fmt(s.launches), fmt(s.time_s, 5), fmt(s.energy_j, 3)});
  }
  bill.print(std::cout);
  std::cout << "total: " << fmt(queue.total_time_s(), 4) << " s GPU busy, "
            << fmt(queue.total_energy_j(), 2) << " J\n";
  core::write_observability_outputs(std::cout, cli, "mhd_simulation",
                                    /*report=*/nullptr);
  return 0;
}
