// Cluster scheduler demo: schedule a deadline-tagged job stream (LiGen
// screens + Cronos runs) over a simulated multi-rank cluster and compare
// the model-driven frequency policy against the naive baselines.
//
// For each --margins entry the model policy runs once (higher margins
// hedge against model optimism: fewer deadline misses, more energy), then
// the max-clock and static-governor baselines run on the same trace. The
// summary table reports cluster energy, deadline misses, and makespan per
// policy, marks the (energy, misses) Pareto front, and states whether a
// model-driven point dominates the max-clock baseline — the paper's
// cluster-level payoff: model knowledge converts directly into energy
// saved at equal or better deadline compliance.
//
// Models are trained in process on a compact sweep by default (seconds);
// pass --full-train for the full training grids or --model-in to load
// "dsem-model-v1" artifacts. --fault-rate arms fault injection on the
// cluster ranks, which the max-clock baseline surfaces as clock
// rejections (rejected ranks run, and are accounted, at their real
// clock).
#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pareto.hpp"
#include "core/sweep_report.hpp"
#include "sched/scheduler.hpp"
#include "serve/train.hpp"

namespace {

using namespace dsem;

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

std::vector<double> split_doubles(const std::string& list) {
  std::vector<double> out;
  for (const std::string& item : split_list(list)) {
    out.push_back(std::stod(item));
  }
  return out;
}

struct PolicyResult {
  std::string name;
  sched::SchedStats stats;
};

} // namespace

int main(int argc, char** argv) {
  CliParser cli("cluster_scheduler",
                "schedule a deadline-tagged job stream across a simulated "
                "cluster and compare frequency policies");
  cli.add_option("jobs", "number of jobs in the trace", "2000");
  cli.add_option("nodes", "cluster ranks", "4");
  cli.add_option("arrival-rate", "mean job arrival rate, jobs/s", "4");
  cli.add_option("ligen-fraction", "fraction of ligen jobs", "0.5");
  cli.add_option("population", "distinct inputs per app", "64");
  cli.add_option("traffic-seed", "trace RNG seed", "0x5EedF00d");
  cli.add_option("slacks",
                 "deadline slack multipliers sampled per job "
                 "(comma-separated, relative to the unloaded default-clock "
                 "runtime)",
                 "1.5,2,3,4");
  cli.add_option("margins",
                 "model-policy safety margins on predicted time, one "
                 "scheduler run each (comma-separated)",
                 "1,1.5,3");
  cli.add_option("device", "v100 | mi100", "v100");
  cli.add_option("freq-stride",
                 "plan over every n-th schedule frequency (max always "
                 "kept)",
                 "4");
  cli.add_option("placement", "first-fit | energy-greedy", "first-fit");
  cli.add_option("fallback",
                 "when no clock meets the deadline: run-at-max | reject",
                 "run-at-max");
  cli.add_option("model-in",
                 "comma-separated dsem-model-v1 artifacts to load "
                 "(skips training for their (app, device) keys)",
                 "");
  cli.add_flag("full-train",
               "train on the full grids instead of the compact sweep");
  core::add_fault_cli_options(cli);
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);

  const std::string device_name = cli.option("device");
  const sim::DeviceSpec spec =
      device_name == "mi100" ? sim::mi100() : sim::v100();

  // Models: load what was given, train the rest on a clean device.
  serve::ModelRegistry registry;
  for (const std::string& path : split_list(cli.option("model-in"))) {
    serve::ModelArtifact artifact = serve::ModelArtifact::load_file(path);
    DSEM_ENSURE(artifact.key.device == device_name,
                "artifact " + path + " was trained for device \"" +
                    artifact.key.device + "\", not \"" + device_name + "\"");
    std::cout << "loaded " << artifact.key.to_string() << " from " << path
              << "\n";
    registry.put(std::move(artifact));
  }
  core::SweepReport report;
  sim::ProfileCache train_cache;
  const double ligen_fraction = cli.option_double("ligen-fraction");
  std::vector<std::string> apps;
  if (ligen_fraction < 1.0) {
    apps.push_back("cronos");
  }
  if (ligen_fraction > 0.0) {
    apps.push_back("ligen");
  }
  for (const std::string& app : apps) {
    const serve::ModelKey key{app, device_name};
    if (registry.get(key) != nullptr) {
      continue;
    }
    sim::Device train_dev(spec, sim::NoiseConfig{}, 0xAD51);
    synergy::Device train_synergy(train_dev);
    serve::TrainConfig train;
    train.compact = !cli.flag("full-train");
    if (train.compact) {
      train.freq_stride = 8;
      train.sweep.repetitions = 2;
    }
    train.sweep.cache = &train_cache;
    train.sweep.report = &report;
    train.origin = "cluster_scheduler";
    std::cout << "training " << key.to_string() << " ("
              << (train.compact ? "compact" : "full") << " sweep)...\n";
    registry.put(serve::train_domain_specific(train_synergy, key, train));
  }

  // The deadline-tagged job trace.
  serve::TrafficConfig traffic;
  traffic.requests = static_cast<std::size_t>(cli.option_int("jobs"));
  traffic.arrival_rate_hz = cli.option_double("arrival-rate");
  traffic.ligen_fraction = ligen_fraction;
  traffic.population = static_cast<std::size_t>(cli.option_int("population"));
  traffic.seed = std::stoull(cli.option("traffic-seed"), nullptr, 0);
  traffic.deadline_slacks = split_doubles(cli.option("slacks"));
  std::cout << "generating " << traffic.requests << " jobs ("
            << fmt_percent(traffic.ligen_fraction) << " ligen, "
            << fmt_g(traffic.arrival_rate_hz, 3) << " jobs/s)...\n";
  const auto jobs = serve::generate_job_trace(traffic);

  // One cluster for all policies; --fault-rate arms its ranks.
  celerity::ClusterConfig cluster_config;
  cluster_config.nodes = cli.option_int("nodes");
  celerity::Cluster cluster(spec, cluster_config);
  const sim::FaultConfig faults = core::fault_config_from_cli(cli);
  for (int rank = 0; rank < cluster.size(); ++rank) {
    cluster.device(rank).simulated().set_fault_config(faults);
  }

  sched::SchedConfig base;
  base.device = device_name;
  base.freq_stride =
      static_cast<std::size_t>(cli.option_int("freq-stride"));
  const std::string placement = cli.option("placement");
  DSEM_ENSURE(placement == "first-fit" || placement == "energy-greedy",
              "unknown placement: " + placement);
  base.placement = placement == "energy-greedy"
                       ? sched::Placement::kEnergyGreedy
                       : sched::Placement::kFirstFit;
  const std::string fallback = cli.option("fallback");
  DSEM_ENSURE(fallback == "run-at-max" || fallback == "reject",
              "unknown fallback: " + fallback);
  base.fallback = fallback == "reject" ? sched::Fallback::kReject
                                       : sched::Fallback::kRunAtMax;

  std::vector<PolicyResult> results;
  const auto run_policy = [&](const std::string& name,
                              const sched::SchedConfig& config) {
    std::cout << "scheduling under " << name << "...\n";
    sched::ClusterScheduler scheduler(cluster, registry, config);
    scheduler.run(jobs);
    results.push_back({name, scheduler.stats()});
  };
  for (const double margin : split_doubles(cli.option("margins"))) {
    sched::SchedConfig config = base;
    config.frequency = sched::FrequencyPolicy::kModel;
    config.margin = margin;
    run_policy("model m=" + fmt_g(margin, 3), config);
  }
  sched::SchedConfig max_clock = base;
  max_clock.frequency = sched::FrequencyPolicy::kMaxClock;
  run_policy("max-clock", max_clock);
  sched::SchedConfig static_default = base;
  static_default.frequency = sched::FrequencyPolicy::kStaticDefault;
  run_policy("static-default", static_default);

  // The (energy, misses) Pareto front, both minimized. pareto_front's
  // convention is (maximize, minimize), so negated misses take the
  // maximize slot and energy the minimize slot.
  std::vector<double> neg_misses;
  std::vector<double> energy;
  for (const PolicyResult& result : results) {
    neg_misses.push_back(-static_cast<double>(result.stats.misses));
    energy.push_back(result.stats.energy_j);
  }
  const std::vector<std::size_t> front =
      core::pareto_front(neg_misses, energy);
  const auto on_front = [&](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };

  print_banner(std::cout, "policy comparison (" +
                              std::to_string(jobs.size()) + " jobs, " +
                              std::to_string(cluster.size()) + " ranks)");
  Table table({"policy", "energy [J]", "misses", "miss rate", "rejected",
               "infeasible", "clock rej", "makespan [s]", "pareto"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sched::SchedStats& stats = results[i].stats;
    table.add_row({results[i].name, fmt(stats.energy_j, 1),
                   fmt(stats.misses), fmt_percent(stats.miss_rate()),
                   fmt(stats.rejected), fmt(stats.infeasible),
                   fmt(stats.clock_rejections), fmt(stats.makespan_s, 2),
                   on_front(i) ? "*" : ""});
  }
  table.print(std::cout);

  const sched::SchedStats& baseline = results[results.size() - 2].stats;
  bool dominates = false;
  double best_saving = 0.0;
  for (const PolicyResult& result : results) {
    if (result.name.rfind("model", 0) == 0 &&
        result.stats.energy_j < baseline.energy_j &&
        result.stats.misses <= baseline.misses) {
      dominates = true;
      best_saving = std::max(
          best_saving, 1.0 - result.stats.energy_j / baseline.energy_j);
    }
  }
  std::cout << "\nmodel dominates max-clock: " << (dominates ? "yes" : "no");
  if (dominates) {
    std::cout << " (" << fmt_percent(best_saving)
              << " cluster energy saved at equal or fewer misses)";
  }
  std::cout << "\n";

  core::write_observability_outputs(std::cout, cli, "cluster_scheduler",
                                    &report);
  return 0;
}
