// Frequency advisor: the paper's future-work integration — given an
// application, an input, and an energy/performance policy, train the
// domain-specific model on a quick input sweep and recommend a core
// frequency (what SYnergy's per-kernel frequency selection would consume).
//
// Doubles as the fault-injection demo: --fault-rate (and the per-kind
// flags, see --help) make the simulated device fail transiently; the
// pipeline retries, records exhausted grid points as failed, and prints
// the recovery accounting at the end.
#include <chrono>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/sweep_report.hpp"

namespace {

using namespace dsem;

std::vector<std::unique_ptr<core::Workload>> training_set(
    const std::string& app) {
  std::vector<std::unique_ptr<core::Workload>> out;
  if (app == "cronos") {
    for (int n : {10, 20, 40, 80, 120, 160}) {
      const int side = std::max(4, n * 2 / 5);
      out.push_back(std::make_unique<core::CronosWorkload>(
          cronos::GridDims{n, side, side}, 10));
    }
  } else {
    for (int ligands : {16, 256, 1024, 4096, 10000}) {
      for (int atoms : {31, 63, 89}) {
        for (int frags : {4, 8, 20}) {
          out.push_back(
              std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
        }
      }
    }
  }
  return out;
}

std::unique_ptr<core::Workload> parse_target(const std::string& app,
                                             const std::string& input) {
  // Input format: AxBxC — grid dims for cronos, atoms x frags x ligands
  // for ligen (the paper's naming convention).
  int a = 0;
  int b = 0;
  int c = 0;
  DSEM_ENSURE(std::sscanf(input.c_str(), "%dx%dx%d", &a, &b, &c) == 3,
              "input must look like 120x48x48 (cronos) or 89x8x2048 (ligen)");
  if (app == "cronos") {
    return std::make_unique<core::CronosWorkload>(cronos::GridDims{a, b, c},
                                                  10);
  }
  return std::make_unique<core::LigenWorkload>(/*ligands=*/c, /*atoms=*/a,
                                               /*fragments=*/b);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

int main(int argc, char** argv) {
  CliParser cli("frequency_advisor",
                "recommend a Pareto-optimal core frequency for an input");
  cli.add_option("app", "cronos | ligen", "cronos");
  cli.add_option("input",
                 "target input: grid (cronos, e.g. 120x48x48) or "
                 "atoms x fragments x ligands (ligen, e.g. 89x8x2048)",
                 "120x48x48");
  cli.add_option("max-slowdown", "acceptable performance loss, fraction",
                 "0.03");
  cli.add_option("device", "v100 | mi100", "v100");
  core::add_fault_cli_options(cli);
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);
  const std::string app = cli.option("app");
  DSEM_ENSURE(app == "cronos" || app == "ligen", "unknown app: " + app);
  const double max_slowdown = cli.option_double("max-slowdown");
  const sim::FaultConfig faults = core::fault_config_from_cli(cli);
  const core::RetryPolicy retry = core::retry_policy_from_cli(cli);

  sim::Device sim_dev(cli.option("device") == "mi100" ? sim::mi100()
                                                      : sim::v100(),
                      sim::NoiseConfig{}, 0xAD51);
  sim_dev.set_fault_config(faults);
  synergy::Device device(sim_dev);

  std::cout << "profiling " << app << " training sweep on " << device.name()
            << "...\n";
  const auto workloads = training_set(app);
  std::vector<double> train_freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 4) {
    train_freqs.push_back(all[i]);
  }
  core::SweepReport report;
  sim::ProfileCache cache;
  core::SweepOptions sweep_options;
  sweep_options.repetitions = 5;
  sweep_options.cache = &cache;
  sweep_options.retry = retry;
  sweep_options.report = &report;
  const auto sweep_start = std::chrono::steady_clock::now();
  const core::Dataset dataset =
      core::build_dataset(device, workloads, sweep_options, train_freqs);
  report.add_phase("training sweep", seconds_since(sweep_start));

  const auto train_start = std::chrono::steady_clock::now();
  core::DomainSpecificModel model;
  model.train(dataset);
  report.add_phase("model training", seconds_since(train_start));

  const auto target = parse_target(app, cli.option("input"));
  const core::Prediction pred = model.predict(
      target->domain_features(), all, device.default_frequency());

  const auto front = pred.pareto_indices();
  std::size_t pick = front.back();
  bool found = false;
  for (std::size_t i : front) {
    if (1.0 - pred.speedup[i] <= max_slowdown &&
        (!found || pred.norm_energy[i] < pred.norm_energy[pick])) {
      pick = i;
      found = true;
    }
  }

  std::cout << "\ntarget " << target->name() << " on " << device.name()
            << " (policy: <= " << fmt_percent(max_slowdown)
            << " slowdown)\n";
  std::cout << "recommended core frequency: " << fmt(pred.freqs_mhz[pick], 0)
            << " MHz\n  predicted energy  " << fmt_percent(
                   pred.norm_energy[pick] - 1.0)
            << "\n  predicted runtime " << fmt_percent(
                   1.0 / std::max(pred.speedup[pick], 1e-9) - 1.0)
            << "\n";

  const auto verify_start = std::chrono::steady_clock::now();
  const core::Measurement def =
      core::measure_default(device, *target, 5, &cache, retry, &report.retry);
  const core::Measurement at = core::measure(
      device, *target, pred.freqs_mhz[pick], 5, &cache, retry, &report.retry);
  report.add_phase("verification", seconds_since(verify_start));
  std::cout << "verification against measurement:\n  measured energy  "
            << fmt_percent(at.energy_j / def.energy_j - 1.0)
            << "\n  measured runtime " << fmt_percent(
                   at.time_s / def.time_s - 1.0)
            << "\n\n";
  core::print_sweep_report(std::cout, report);
  core::write_observability_outputs(std::cout, cli, "frequency_advisor",
                                    &report);
  return 0;
}
