// Frequency advisor: the paper's future-work integration — given an
// application, an input, and an energy/performance policy, train the
// domain-specific model on a quick input sweep and recommend a core
// frequency (what SYnergy's per-kernel frequency selection would consume).
//
// Three modes:
//  - one-shot (default): train (or load, --model-in) a model, answer one
//    query, verify the answer against measurement.
//  - --train-out PATH: additionally save the trained model as a
//    "dsem-model-v1" artifact; later runs pass --model-in PATH to skip
//    the training sweep entirely (train once, load anywhere).
//    --model-kind picks the family (ds | hybrid) and --dataset-out
//    exports the training sweep as a "dsem-dataset-v1" document.
//  - --serve: replay a deterministic Poisson request stream (LiGen +
//    Cronos mix) through the serve:: loop — batched inference, LRU
//    answer cache, admission control — and report latency percentiles,
//    throughput, and hit/shed rates.
//
// Doubles as the fault-injection demo: --fault-rate (and the per-kind
// flags, see --help) make the simulated device fail transiently; the
// pipeline retries, records exhausted grid points as failed, and prints
// the recovery accounting at the end.
#include <chrono>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/sweep_report.hpp"
#include "serve/loop.hpp"
#include "serve/train.hpp"

namespace {

using namespace dsem;

std::unique_ptr<core::Workload> parse_target(const std::string& app,
                                             const std::string& input) {
  // Input format: AxBxC — grid dims for cronos, atoms x frags x ligands
  // for ligen (the paper's naming convention).
  int a = 0;
  int b = 0;
  int c = 0;
  DSEM_ENSURE(std::sscanf(input.c_str(), "%dx%dx%d", &a, &b, &c) == 3,
              "input must look like 120x48x48 (cronos) or 89x8x2048 (ligen)");
  if (app == "cronos") {
    return std::make_unique<core::CronosWorkload>(cronos::GridDims{a, b, c},
                                                  10);
  }
  return std::make_unique<core::LigenWorkload>(/*ligands=*/c, /*atoms=*/a,
                                               /*fragments=*/b);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::string> split_paths(const std::string& list) {
  std::vector<std::string> out;
  std::istringstream stream(list);
  std::string path;
  while (std::getline(stream, path, ',')) {
    if (!path.empty()) {
      out.push_back(path);
    }
  }
  return out;
}

/// Returns the artifact for (app, device_name), loading preferred over
/// training: --model-in artifacts were registered up front, so a hit
/// here skips the training sweep entirely. `kind` picks the trained
/// family: "ds" (domain-specific) or "hybrid".
std::shared_ptr<const serve::ModelArtifact>
obtain_model(serve::ModelRegistry& registry, const std::string& app,
             const std::string& device_name, synergy::Device& device,
             const core::SweepOptions& sweep, core::SweepReport& report,
             const std::string& kind = "ds") {
  const serve::ModelKey key{app, device_name};
  if (auto loaded = registry.get(key)) {
    std::cout << "using loaded model " << key.to_string() << " ("
              << loaded->origin << ")\n";
    return loaded;
  }
  DSEM_ENSURE(kind == "ds" || kind == "hybrid",
              "unknown model kind: " + kind);
  std::cout << "profiling " << app << " training sweep on " << device.name()
            << " (" << kind << " model)...\n";
  serve::TrainConfig train;
  train.sweep = sweep;
  train.origin = "frequency_advisor";
  const auto start = std::chrono::steady_clock::now();
  registry.put(kind == "hybrid"
                   ? serve::train_hybrid(device, key, train)
                   : serve::train_domain_specific(device, key, train));
  report.add_phase("train " + app, seconds_since(start));
  return registry.require(key);
}

/// --dataset-out: export the application's full training-grid sweep as a
/// "dsem-dataset-v1" document (the format the golden evaluation datasets
/// under tests/data/ are pinned in).
void export_dataset(const std::string& path, const std::string& app,
                    synergy::Device& device, const core::SweepOptions& sweep,
                    std::size_t stride, core::SweepReport& report) {
  DSEM_ENSURE(stride > 0, "dataset-stride must be > 0");
  const auto workloads = serve::training_set(app, /*compact=*/false);
  const std::vector<double> all = device.supported_frequencies();
  std::vector<double> freqs;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    freqs.push_back(all[i]);
  }
  const auto start = std::chrono::steady_clock::now();
  const core::Dataset dataset =
      core::build_dataset(device, workloads, sweep, freqs);
  report.add_phase("dataset export", seconds_since(start));
  core::save_dataset(dataset, path);
  std::cout << "saved " << app << " dataset (" << dataset.rows()
            << " rows, " << dataset.num_groups() << " inputs) to " << path
            << "\n";
}

void run_serve_mode(const CliParser& cli, serve::ModelRegistry& registry) {
  serve::TrafficConfig traffic;
  traffic.requests = static_cast<std::size_t>(cli.option_int("requests"));
  traffic.arrival_rate_hz = cli.option_double("arrival-rate");
  traffic.ligen_fraction = cli.option_double("ligen-fraction");
  traffic.population = static_cast<std::size_t>(cli.option_int("population"));
  traffic.seed = std::stoull(cli.option("traffic-seed"), nullptr, 0);

  serve::ServeConfig config;
  config.device = cli.option("device");
  config.batch_size = static_cast<std::size_t>(cli.option_int("batch-size"));
  config.admission_bound =
      static_cast<std::size_t>(cli.option_int("admission-bound"));
  config.cache_capacity =
      static_cast<std::size_t>(cli.option_int("cache-capacity"));
  config.cache_quant_step = cli.option_double("cache-quant");

  std::cout << "generating " << traffic.requests << " requests ("
            << fmt_percent(traffic.ligen_fraction) << " ligen, "
            << fmt(traffic.arrival_rate_hz, 0) << " req/s)...\n";
  const auto trace = serve::generate_trace(traffic);

  serve::ServeLoop loop(registry, config);
  loop.run(trace);
  const serve::ServeStats& stats = loop.stats();

  print_banner(std::cout, "serving summary");
  std::cout << "requests          " << stats.requests << "\n"
            << "served            " << stats.served << "\n"
            << "shed              " << stats.shed << " ("
            << fmt_percent(stats.shed_rate()) << ")\n"
            << "cache hit rate    " << fmt_percent(stats.hit_rate()) << " ("
            << stats.cache_hits << " hits, " << stats.cache_misses
            << " misses)\n"
            << "batches           " << stats.batches << "\n"
            << "latency p50       " << fmt_g(stats.p50_latency_s) << " s\n"
            << "latency p99       " << fmt_g(stats.p99_latency_s) << " s\n"
            << "latency max       " << fmt_g(stats.max_latency_s) << " s\n"
            << "predicted energy  " << fmt_g(stats.predicted_energy_j)
            << " J (advised answers, served requests)\n";
  for (const auto& [app, joules] : stats.energy_by_application) {
    std::cout << "  energy[" << app << "]  " << fmt_g(joules) << " J\n";
  }
  std::cout << "simulated span    " << fmt_g(stats.sim_duration_s) << " s\n"
            << "wall time         " << fmt_g(stats.wall_s) << " s\n"
            << "throughput        " << fmt(stats.throughput_rps(), 0)
            << " req/s (wall)\n";
}

} // namespace

int main(int argc, char** argv) {
  CliParser cli("frequency_advisor",
                "recommend a Pareto-optimal core frequency for an input");
  cli.add_option("app", "cronos | ligen", "cronos");
  cli.add_option("input",
                 "target input: grid (cronos, e.g. 120x48x48) or "
                 "atoms x fragments x ligands (ligen, e.g. 89x8x2048)",
                 "120x48x48");
  cli.add_option("max-slowdown", "acceptable performance loss, fraction",
                 "0.03");
  cli.add_option("device", "v100 | mi100", "v100");
  cli.add_option("model-in",
                 "comma-separated dsem-model-v1 artifacts to load "
                 "(skips training for their (app, device) keys)",
                 "");
  cli.add_option("train-out",
                 "save the target app's trained model artifact here", "");
  cli.add_option("model-kind",
                 "model family to train: ds (domain-specific) | hybrid",
                 "ds");
  cli.add_option("dataset-out",
                 "export the target app's training sweep as a "
                 "dsem-dataset-v1 document", "");
  cli.add_option("dataset-stride",
                 "dataset-out: train on every Nth supported frequency", "8");
  cli.add_flag("serve", "replay a synthetic request stream instead of "
                        "answering one query");
  cli.add_option("requests", "serve: number of requests", "100000");
  cli.add_option("arrival-rate", "serve: mean arrival rate, req/s", "2000");
  cli.add_option("ligen-fraction", "serve: fraction of ligen requests",
                 "0.5");
  cli.add_option("population", "serve: distinct inputs per app", "512");
  cli.add_option("traffic-seed", "serve: trace RNG seed", "0x5EedF00d");
  cli.add_option("batch-size", "serve: max requests per dispatch", "64");
  cli.add_option("admission-bound",
                 "serve: waiting-queue bound (0 = unbounded)", "1024");
  cli.add_option("cache-capacity", "serve: LRU answer-cache capacity "
                                   "(0 = disabled)",
                 "4096");
  cli.add_option("cache-quant", "serve: cache-key feature quantization step",
                 "1.0");
  core::add_fault_cli_options(cli);
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);
  const std::string app = cli.option("app");
  DSEM_ENSURE(app == "cronos" || app == "ligen", "unknown app: " + app);
  const std::string device_name = cli.option("device");
  const double max_slowdown = cli.option_double("max-slowdown");
  const sim::FaultConfig faults = core::fault_config_from_cli(cli);
  const core::RetryPolicy retry = core::retry_policy_from_cli(cli);

  sim::Device sim_dev(device_name == "mi100" ? sim::mi100() : sim::v100(),
                      sim::NoiseConfig{}, 0xAD51);
  sim_dev.set_fault_config(faults);
  synergy::Device device(sim_dev);

  core::SweepReport report;
  sim::ProfileCache cache;
  core::SweepOptions sweep_options;
  sweep_options.repetitions = 5;
  sweep_options.cache = &cache;
  sweep_options.retry = retry;
  sweep_options.report = &report;

  serve::ModelRegistry registry;
  for (const std::string& path : split_paths(cli.option("model-in"))) {
    serve::ModelArtifact artifact = serve::ModelArtifact::load_file(path);
    DSEM_ENSURE(artifact.key.device == device_name,
                "artifact " + path + " was trained for device \"" +
                    artifact.key.device + "\", not \"" + device_name + "\"");
    std::cout << "loaded " << artifact.key.to_string() << " from " << path
              << "\n";
    registry.put(std::move(artifact));
  }

  const std::string model_kind = cli.option("model-kind");

  if (cli.flag("serve")) {
    // Mixed traffic needs a model per application in the mix.
    const double ligen_fraction = cli.option_double("ligen-fraction");
    if (ligen_fraction < 1.0) {
      obtain_model(registry, "cronos", device_name, device, sweep_options,
                   report, model_kind);
    }
    if (ligen_fraction > 0.0) {
      obtain_model(registry, "ligen", device_name, device, sweep_options,
                   report, model_kind);
    }
    if (const std::string out = cli.option("train-out"); !out.empty()) {
      registry.require({app, device_name})->save_file(out);
      std::cout << "saved " << app << "/" << device_name << " model to "
                << out << "\n";
    }
    run_serve_mode(cli, registry);
    core::print_sweep_report(std::cout, report);
    core::write_observability_outputs(std::cout, cli, "frequency_advisor",
                                      &report);
    return 0;
  }

  if (const std::string out = cli.option("dataset-out"); !out.empty()) {
    export_dataset(out, app, device, sweep_options,
                   static_cast<std::size_t>(cli.option_int("dataset-stride")),
                   report);
  }

  const auto artifact = obtain_model(registry, app, device_name, device,
                                     sweep_options, report, model_kind);
  if (const std::string out = cli.option("train-out"); !out.empty()) {
    artifact->save_file(out);
    std::cout << "saved " << app << "/" << device_name << " model to " << out
              << "\n";
  }

  const auto target = parse_target(app, cli.option("input"));
  serve::AdviseRequest request;
  request.application = app;
  request.features = target->domain_features();
  request.max_slowdown = max_slowdown;
  const serve::AdviseAnswer answer =
      serve::Advisor{}.advise(*artifact, request);

  std::cout << "\ntarget " << target->name() << " on " << device.name()
            << " (policy: <= " << fmt_percent(max_slowdown)
            << " slowdown)\n";
  std::cout << "recommended core frequency: " << fmt(answer.freq_mhz, 0)
            << " MHz\n  predicted energy  " << fmt_percent(
                   answer.predicted_norm_energy - 1.0)
            << "\n  predicted runtime " << fmt_percent(
                   1.0 / std::max(answer.predicted_speedup, 1e-9) - 1.0)
            << "\n";

  const auto verify_start = std::chrono::steady_clock::now();
  const core::Measurement def =
      core::measure_default(device, *target, 5, &cache, retry, &report.retry);
  const core::Measurement at = core::measure(
      device, *target, answer.freq_mhz, 5, &cache, retry, &report.retry);
  report.add_phase("verification", seconds_since(verify_start));
  std::cout << "verification against measurement:\n  measured energy  "
            << fmt_percent(at.energy_j / def.energy_j - 1.0)
            << "\n  measured runtime " << fmt_percent(
                   at.time_s / def.time_s - 1.0)
            << "\n\n";
  core::print_sweep_report(std::cout, report);
  core::write_observability_outputs(std::cout, cli, "frequency_advisor",
                                    &report);
  return 0;
}
