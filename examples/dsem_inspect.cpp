// Ledger inspector: drill into a "dsem-ledger-v1" attribution ledger
// (frequency_advisor --serve --ledger-out, cluster_scheduler
// --ledger-out, or the DSEM_LEDGER environment variable) and answer the
// operational questions the aggregate tables cannot: where did the
// energy go, why did deadlines miss, and which model artifacts are
// drifting.
//
//   dsem_inspect LEDGER.json [--metrics RUN.json] [--top N]
//
// Sections printed:
//  - stream summaries (requests and jobs: counts, energy totals);
//  - miss-cause breakdown (obs/ledger.hpp taxonomy: shed / infeasible /
//    model_error / placement);
//  - top-N energy consumers, per application always, per record when the
//    ledger carries the full record arrays (summary-view ledgers — the
//    committed goldens — omit them; their digest still pins the bytes);
//  - per-artifact prediction-residual tables with the windowed drift
//    flag;
//  - SLO burn rates (latency objective over requests, deadline objective
//    over jobs).
//
// --metrics additionally accepts a "dsem-metrics-v1" snapshot or a
// "dsem-run-v1" manifest (--metrics-out) and prints its counters and
// gauges next to the ledger view.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "obs/ledger.hpp"

namespace {

using namespace dsem;

json::Value load_json(const std::string& path) {
  std::ifstream in(path);
  DSEM_ENSURE(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json::Value::parse(buffer.str());
}

double num(const json::Value& object, std::string_view key) {
  return object.at(key).as_number();
}

/// Unsigned share rendering (fmt_percent's sign reads wrong for shares).
std::string share(double fraction) {
  return fmt(fraction * 100.0, 1) + "%";
}

void print_stream_summary(const json::Value& summary) {
  const json::Value& requests = summary.at("requests");
  const json::Value& jobs = summary.at("jobs");
  Table table({"stream", "count", "completed", "dropped", "cache hits",
               "energy (J)"});
  table.add_row({"requests", fmt_g(num(requests, "count")),
                 fmt_g(num(requests, "served")), fmt_g(num(requests, "shed")),
                 fmt_g(num(requests, "cache_hits")),
                 fmt_g(num(requests, "predicted_energy_j"))});
  table.add_row({"jobs", fmt_g(num(jobs, "count")),
                 fmt_g(num(jobs, "completed")), fmt_g(num(jobs, "rejected")),
                 "", fmt_g(num(jobs, "true_energy_j"))});
  table.print(std::cout);
}

void print_miss_causes(const json::Value& summary) {
  print_banner(std::cout, "miss-cause breakdown");
  Table table({"stream", "cause", "count", "share"});
  for (const char* stream : {"requests", "jobs"}) {
    const json::Value& section = summary.at(stream);
    const double count = num(section, "count");
    for (const auto& [cause, value] : section.at("miss_causes").as_object()) {
      if (cause == "none") {
        continue;
      }
      const double n = value.as_number();
      table.add_row({stream, cause, fmt_g(n),
                     count > 0 ? share(n / count) : share(0.0)});
    }
  }
  table.print(std::cout);
}

void print_top_applications(const json::Value& summary, std::size_t top) {
  print_banner(std::cout, "top energy consumers by application");
  Table table({"stream", "application", "energy (J)", "share"});
  const auto add_stream = [&](const char* stream, const char* total_key) {
    const json::Value& section = summary.at(stream);
    const double total = num(section, total_key);
    std::vector<std::pair<std::string, double>> apps;
    for (const auto& [app, joules] :
         section.at("energy_by_application").as_object()) {
      apps.emplace_back(app, joules.as_number());
    }
    std::stable_sort(apps.begin(), apps.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (apps.size() > top) {
      apps.resize(top);
    }
    for (const auto& [app, joules] : apps) {
      table.add_row({stream, app, fmt_g(joules),
                     total > 0.0 ? share(joules / total)
                                 : share(0.0)});
    }
  };
  add_stream("requests", "predicted_energy_j");
  add_stream("jobs", "true_energy_j");
  table.print(std::cout);
}

/// Top-N records by energy; only possible on full ledgers (the
/// summary-view goldens drop the record arrays).
void print_top_records(const json::Value& doc, std::size_t top) {
  const json::Value* requests = doc.find("requests");
  const json::Value* jobs = doc.find("jobs");
  if (requests == nullptr && jobs == nullptr) {
    std::cout << "\n(summary-view ledger: record arrays not stored; "
                 "per-record top-" << top << " skipped)\n";
    return;
  }
  print_banner(std::cout, "top energy consumers by record");
  Table table({"id", "application", "energy (J)", "latency/turnaround (s)",
               "cause"});
  const auto add_records = [&](const json::Value* records,
                               const char* energy_key,
                               const char* latency_key) {
    if (records == nullptr) {
      return;
    }
    std::vector<const json::Value*> sorted;
    for (const json::Value& record : records->as_array()) {
      sorted.push_back(&record);
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const json::Value* a, const json::Value* b) {
                       return num(*a, energy_key) > num(*b, energy_key);
                     });
    if (sorted.size() > top) {
      sorted.resize(top);
    }
    for (const json::Value* record : sorted) {
      table.add_row({record->at("id").as_string(),
                     record->at("application").as_string(),
                     fmt_g(num(*record, energy_key)),
                     fmt_g(num(*record, latency_key)),
                     record->at("cause").as_string()});
    }
  };
  add_records(requests, "predicted_energy_j", "latency_s");
  add_records(jobs, "true_energy_j", "true_time_s");
  table.print(std::cout);
}

void print_drift(const json::Value& summary) {
  print_banner(std::cout, "per-artifact prediction residuals");
  const json::Value& artifacts = summary.at("drift");
  if (artifacts.as_array().empty()) {
    std::cout << "(no model-attributed job records in this ledger)\n";
    return;
  }
  Table table({"model", "samples", "time p50", "time p90", "energy p50",
               "energy p90", "window time q", "window energy q", "drifted"});
  for (const json::Value& artifact : artifacts.as_array()) {
    const json::Value& time = artifact.at("time_residual");
    const json::Value& energy = artifact.at("energy_residual");
    table.add_row({artifact.at("model").as_string(),
                   fmt_g(num(artifact, "samples")),
                   share(num(time, "p50")),
                   share(num(time, "p90")),
                   share(num(energy, "p50")),
                   share(num(energy, "p90")),
                   share(num(artifact, "window_time_quantile")),
                   share(num(artifact, "window_energy_quantile")),
                   artifact.at("drifted").as_bool() ? "YES" : "no"});
  }
  table.print(std::cout);
}

void print_slo(const json::Value& summary) {
  print_banner(std::cout, "SLO burn");
  Table table({"objective", "events", "violations", "budget", "total burn",
               "peak window burn", "exhausted"});
  const auto add_slo = [&](const char* stream, const char* objective) {
    const json::Value& slo = summary.at(stream).at("slo");
    table.add_row({objective, fmt_g(num(slo, "events")),
                   fmt_g(num(slo, "violations")),
                   share(num(slo, "budget")),
                   fmt(num(slo, "total_burn"), 2) + "x",
                   fmt(num(slo, "peak_burn"), 2) + "x",
                   slo.at("exhausted").as_bool() ? "YES" : "no"});
  };
  add_slo("requests", "request latency");
  add_slo("jobs", "job deadlines");
  table.print(std::cout);
}

void print_metrics(const std::string& path) {
  json::Value doc = load_json(path);
  // Accept either the snapshot itself or a dsem-run-v1 manifest wrapping
  // one under "metrics".
  const json::Value* snapshot = &doc;
  if (const json::Value* schema = doc.find("schema");
      schema != nullptr && schema->as_string() == "dsem-run-v1") {
    snapshot = &doc.at("metrics");
  }
  DSEM_ENSURE(snapshot->at("schema").as_string() ==
                  std::string(metrics::kMetricsSchema),
              "dsem_inspect: " + path + " is not a metrics snapshot or "
              "run manifest");
  print_banner(std::cout, "metrics snapshot (" + path + ")");
  Table table({"kind", "name", "value"});
  for (const json::Value& counter : snapshot->at("counters").as_array()) {
    table.add_row({"counter", counter.at("name").as_string(),
                   fmt_g(num(counter, "total"))});
  }
  for (const json::Value& gauge : snapshot->at("gauges").as_array()) {
    table.add_row({"gauge", gauge.at("name").as_string(),
                   fmt_g(num(gauge, "value"))});
  }
  table.print(std::cout);
}

} // namespace

int main(int argc, char** argv) {
  CliParser cli("dsem_inspect",
                "Inspect a dsem-ledger-v1 attribution ledger: energy "
                "attribution, miss causes, model drift, and SLO burn.");
  cli.add_option("metrics",
                 "also print a dsem-metrics-v1 snapshot or dsem-run-v1 "
                 "manifest from this path",
                 "");
  cli.add_option("top", "rows in the top-energy tables", "10");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  try {
    DSEM_ENSURE(cli.positional().size() == 1,
                "usage: dsem_inspect LEDGER.json [--metrics RUN.json] "
                "[--top N]");
    const json::Value doc = load_json(cli.positional().front());
    DSEM_ENSURE(doc.at("schema").as_string() ==
                    std::string(obs::kLedgerSchema),
                "dsem_inspect: not a dsem-ledger-v1 document");
    const std::size_t top =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, cli.option_int("top")));

    print_banner(std::cout, "ledger: " + cli.positional().front());
    std::cout << "program: " << doc.at("program").as_string() << "\n\n";
    const json::Value& summary = doc.at("summary");
    print_stream_summary(summary);
    print_miss_causes(summary);
    print_top_applications(summary, top);
    print_top_records(doc, top);
    print_drift(summary);
    print_slo(summary);
    std::cout << "\nrecords digest: "
              << summary.at("records_digest").as_string() << "\n";

    const std::string metrics_path = cli.option("metrics");
    if (!metrics_path.empty()) {
      print_metrics(metrics_path);
    }
  } catch (const std::exception& error) {
    std::cerr << "dsem_inspect: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
