// Quickstart: the full domain-specific energy-modeling workflow of the
// paper (Figs. 11 & 12) in one narrated run.
//
//   1. set up a simulated V100 behind the portable SYnergy-style API
//   2. sweep a few Cronos inputs across frequencies -> training dataset
//   3. train the domain-specific time & energy models (Random Forest)
//   4. predict the speedup / normalized-energy curve of an *unseen* input
//   5. extract the predicted Pareto-optimal frequencies and verify one
//      against a real measurement
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/evaluation.hpp"
#include "core/sweep_report.hpp"

int main(int argc, char** argv) {
  using namespace dsem;

  CliParser cli("quickstart",
                "the paper's energy-modeling workflow in one narrated run");
  core::add_observability_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  core::enable_observability_from_cli(cli);

  // --- 1. device ----------------------------------------------------------
  sim::Device v100_sim(sim::v100(), sim::NoiseConfig{}, /*seed=*/0x9015);
  synergy::Device device(v100_sim);
  std::cout << "device: " << device.name() << " via " << device.vendor_api()
            << ", " << device.supported_frequencies().size()
            << " core frequencies, default "
            << fmt(device.default_frequency(), 0) << " MHz\n";

  // --- 2. training sweep ---------------------------------------------------
  std::vector<std::unique_ptr<core::Workload>> workloads;
  for (int n : {10, 20, 40, 80, 120, 160}) {
    const int side = std::max(4, n * 2 / 5);
    workloads.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{n, side, side}, /*steps=*/10));
  }
  // Sample every 4th frequency during training; predict over all of them.
  std::vector<double> train_freqs;
  const auto all_freqs = device.supported_frequencies();
  for (std::size_t i = 0; i < all_freqs.size(); i += 4) {
    train_freqs.push_back(all_freqs[i]);
  }
  std::cout << "\nmeasuring " << workloads.size() << " Cronos inputs x "
            << train_freqs.size() << " frequencies x 5 repetitions...\n";
  const core::Dataset dataset =
      core::build_dataset(device, workloads, 5, train_freqs);
  std::cout << "dataset: " << dataset.rows() << " samples (f, c, t, e)\n";

  // --- 3. train ------------------------------------------------------------
  core::DomainSpecificModel model;
  model.train(dataset);
  std::cout << "trained time and energy Random Forests\n";

  // --- 4. predict an unseen input -------------------------------------------
  const core::CronosWorkload target({100, 40, 40}, 10);
  std::cout << "\npredicting for unseen input " << target.name() << "...\n";
  const core::Prediction pred = model.predict(
      target.domain_features(), all_freqs, device.default_frequency());

  // --- 5. Pareto-optimal frequencies ----------------------------------------
  const auto front = pred.pareto_indices();
  std::cout << "predicted Pareto-optimal configurations ("
            << front.size() << " of " << all_freqs.size() << "):\n";
  Table table({"freq_mhz", "pred_speedup", "pred_norm_energy"});
  for (std::size_t k = 0; k < front.size(); k += std::max<std::size_t>(
           1, front.size() / 8)) {
    const std::size_t i = front[k];
    table.add_row({fmt(pred.freqs_mhz[i], 1), fmt(pred.speedup[i], 4),
                   fmt(pred.norm_energy[i], 4)});
  }
  table.print(std::cout);

  // Pick the Pareto config with the best energy at <= 2% predicted loss.
  std::size_t best = front.back();
  for (std::size_t i : front) {
    if (1.0 - pred.speedup[i] <= 0.02 &&
        pred.norm_energy[i] < pred.norm_energy[best]) {
      best = i;
    }
  }
  std::cout << "\nrecommended frequency: " << fmt(pred.freqs_mhz[best], 0)
            << " MHz (predicted " << fmt_percent(1.0 - pred.norm_energy[best])
            << " energy saving at " << fmt_percent(1.0 - pred.speedup[best])
            << " slowdown)\n";

  // Verify against real measurements.
  const core::Measurement def = core::measure_default(device, target, 5);
  const core::Measurement at =
      core::measure(device, target, pred.freqs_mhz[best], 5);
  const double measured_saving = 1.0 - at.energy_j / def.energy_j;
  const double measured_loss = 1.0 - def.time_s / at.time_s;
  std::cout << "measured:  " << fmt_percent(measured_saving)
            << " energy saving at " << fmt_percent(measured_loss)
            << " slowdown\n";
  core::write_observability_outputs(std::cout, cli, "quickstart",
                                    /*report=*/nullptr);
  return 0;
}
