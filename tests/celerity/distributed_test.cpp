#include "celerity/distributed.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::celerity {
namespace {

Cluster make_cluster(int nodes) {
  return Cluster(sim::v100(), ClusterConfig{nodes, {}},
                 sim::NoiseConfig::none());
}

TEST(PartitionZ, EvenSplit) {
  const Partition p = partition_z(64, 4);
  ASSERT_EQ(p.ranks(), 4);
  for (int z : p.z_cells) {
    EXPECT_EQ(z, 16);
  }
}

TEST(PartitionZ, RemainderSpreadsOverLeadingRanks) {
  const Partition p = partition_z(10, 3);
  EXPECT_EQ(p.z_cells, (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(std::accumulate(p.z_cells.begin(), p.z_cells.end(), 0), 10);
}

TEST(PartitionZ, Validation) {
  EXPECT_THROW(partition_z(4, 8), dsem::contract_error);
  EXPECT_THROW(partition_z(0, 1), dsem::contract_error);
}

TEST(HaloBytes, InteriorRankSendsBothFaces) {
  const cronos::GridDims g{160, 64, 64};
  const double one_face = 2.0 * 160.0 * 64.0 * 8.0 * 8.0; // 2-deep, 8 vars
  EXPECT_DOUBLE_EQ(halo_bytes_per_exchange(g, 8, true, true), 2.0 * one_face);
  EXPECT_DOUBLE_EQ(halo_bytes_per_exchange(g, 8, true, false), one_face);
  EXPECT_DOUBLE_EQ(halo_bytes_per_exchange(g, 8, false, false), 0.0);
}

TEST(DistributedCronos, SingleNodeHasNoCommunication) {
  Cluster cluster = make_cluster(1);
  const auto stats =
      run_distributed_cronos(cluster, {160, 64, 64}, 8, 3);
  EXPECT_EQ(stats.steps, 3);
  EXPECT_DOUBLE_EQ(stats.comm_time_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.network_energy_j, 0.0);
  EXPECT_GT(stats.compute_time_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.makespan_s, stats.compute_time_s);
}

TEST(DistributedCronos, StrongScalingReducesMakespan) {
  const cronos::GridDims g{160, 64, 64};
  Cluster c1 = make_cluster(1);
  Cluster c4 = make_cluster(4);
  const auto s1 = run_distributed_cronos(c1, g, 8, 3);
  const auto s4 = run_distributed_cronos(c4, g, 8, 3);
  EXPECT_LT(s4.makespan_s, s1.makespan_s);
  // But not super-linearly: at most 4x.
  EXPECT_GT(s4.makespan_s, s1.makespan_s / 4.5);
}

TEST(DistributedCronos, CommunicationGrowsWithRanks) {
  const cronos::GridDims g{160, 64, 64};
  Cluster c2 = make_cluster(2);
  Cluster c8 = make_cluster(8);
  const auto s2 = run_distributed_cronos(c2, g, 8, 3);
  const auto s8 = run_distributed_cronos(c8, g, 8, 3);
  // Per-step halo time is identical (same face sizes) but the reduce tree
  // deepens and energy scales with participating NICs.
  EXPECT_GE(s8.comm_time_s, s2.comm_time_s);
  EXPECT_GT(s8.network_energy_j, s2.network_energy_j);
}

TEST(DistributedCronos, ClusterEnergyExceedsSingleNode) {
  // Static/clock power on more devices costs energy even at equal work.
  const cronos::GridDims g{80, 32, 32};
  Cluster c1 = make_cluster(1);
  Cluster c8 = make_cluster(8);
  const auto s1 = run_distributed_cronos(c1, g, 8, 5);
  const auto s8 = run_distributed_cronos(c8, g, 8, 5);
  EXPECT_GT(s8.total_energy_j(), s1.total_energy_j());
}

TEST(DistributedCronos, DeviceEnergyMatchesClusterCounters) {
  Cluster cluster = make_cluster(4);
  const double before = cluster.total_device_energy_j();
  const auto stats = run_distributed_cronos(cluster, {40, 16, 16}, 8, 2);
  EXPECT_NEAR(stats.device_energy_j,
              cluster.total_device_energy_j() - before, 1e-9);
}

TEST(DistributedCronos, DownclockingTheClusterSavesEnergy) {
  // The paper's single-GPU result carries over to the cluster: the large
  // grid is memory-bound, so a cluster-wide down-clock saves energy at
  // nearly no makespan cost.
  const cronos::GridDims g{160, 64, 64};
  Cluster def = make_cluster(4);
  const auto s_def = run_distributed_cronos(def, g, 8, 3);

  Cluster slow = make_cluster(4);
  slow.set_frequency_all(800.0);
  const auto s_slow = run_distributed_cronos(slow, g, 8, 3);

  EXPECT_LT(s_slow.device_energy_j, s_def.device_energy_j * 0.95);
  EXPECT_LT(s_slow.makespan_s, s_def.makespan_s * 1.05);
}

TEST(DistributedCronos, ValidatesArguments) {
  Cluster cluster = make_cluster(2);
  EXPECT_THROW(run_distributed_cronos(cluster, {8, 8, 1}, 8, 3),
               dsem::contract_error); // fewer Z planes than ranks
  EXPECT_THROW(run_distributed_cronos(cluster, {8, 8, 8}, 8, 0),
               dsem::contract_error);
}

} // namespace
} // namespace dsem::celerity
