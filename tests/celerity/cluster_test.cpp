#include "celerity/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synergy/queue.hpp"

namespace dsem::celerity {
namespace {

sim::KernelProfile work_kernel() {
  sim::KernelProfile p;
  p.name = "work";
  p.float_add = 256.0;
  p.global_bytes = 64.0;
  return p;
}

TEST(TransferTime, LatencyPlusBandwidth) {
  InterconnectSpec net;
  net.bandwidth_gbs = 10.0;
  net.latency_us = 5.0;
  EXPECT_DOUBLE_EQ(transfer_time_s(net, 0.0), 0.0);
  EXPECT_NEAR(transfer_time_s(net, 1e9), 5e-6 + 0.1, 1e-12);
  // Small messages are latency-dominated.
  EXPECT_NEAR(transfer_time_s(net, 8.0), 5e-6, 1e-8);
}

TEST(Cluster, BuildsRequestedRanks) {
  Cluster cluster(sim::v100(), ClusterConfig{4, {}});
  EXPECT_EQ(cluster.size(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.device(r).vendor_api(), "NVML");
  }
}

TEST(Cluster, RanksAreIndependentDevices) {
  Cluster cluster(sim::v100(), ClusterConfig{2, {}},
                  sim::NoiseConfig::none());
  synergy::Queue q0(cluster.device(0));
  // Enough work that the NVML millijoule counter registers it.
  q0.submit({work_kernel(), 1'000'000, {}});
  EXPECT_GT(cluster.device(0).energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.device(1).energy_joules(), 0.0);
}

TEST(Cluster, BroadcastFrequencyControl) {
  Cluster cluster(sim::v100(), ClusterConfig{3, {}});
  cluster.set_frequency_all(700.0);
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(cluster.device(r).current_frequency(), 700.0, 8.0);
  }
  cluster.reset_frequency_all();
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(cluster.device(r).current_frequency(),
                cluster.device(r).default_frequency(), 8.0);
  }
}

TEST(Cluster, BroadcastSurfacesPerRankClockRejections) {
  Cluster cluster(sim::v100(), ClusterConfig{8, {}});
  sim::FaultConfig faults;
  faults.set_frequency_rate = 0.5;
  for (int r = 0; r < cluster.size(); ++r) {
    cluster.device(r).simulated().set_fault_config(faults);
  }

  const auto results = cluster.set_frequency_all(700.0);
  ASSERT_EQ(results.size(), 8u);
  std::size_t rejected = 0;
  for (int r = 0; r < cluster.size(); ++r) {
    const auto& result = results[static_cast<std::size_t>(r)];
    EXPECT_EQ(result.rank, r);
    // Every rank reports the clock it actually runs at, rejection or not.
    EXPECT_DOUBLE_EQ(result.actual_mhz,
                     cluster.device(r).current_frequency());
    if (result.ok) {
      EXPECT_TRUE(result.error.empty());
      EXPECT_NEAR(result.actual_mhz, 700.0, 8.0);
    } else {
      ++rejected;
      EXPECT_FALSE(result.error.empty());
      // A rejected rank keeps its previous (default) clock.
      EXPECT_NEAR(result.actual_mhz, cluster.device(r).default_frequency(),
                  8.0);
    }
  }
  // At a 50% fault rate over 8 ranks, the deterministic fault schedule
  // rejects at least one rank (pinned: all-pass would hide the bug this
  // API exists to surface).
  EXPECT_GT(rejected, 0u);

  // reset_frequency never throws, so the reset broadcast reports all-ok.
  for (const auto& result : cluster.reset_frequency_all()) {
    EXPECT_TRUE(result.ok);
  }
}

TEST(Cluster, TotalEnergySumsRanks) {
  Cluster cluster(sim::v100(), ClusterConfig{3, {}},
                  sim::NoiseConfig::none());
  double expected = 0.0;
  for (int r = 0; r < 3; ++r) {
    synergy::Queue queue(cluster.device(r));
    queue.submit({work_kernel(), 10000, {}});
    expected += cluster.device(r).energy_joules();
  }
  EXPECT_NEAR(cluster.total_device_energy_j(), expected, 1e-9);
}

TEST(Cluster, PerRankNoiseStreamsDiffer) {
  Cluster cluster(sim::v100(), ClusterConfig{2, {}},
                  sim::NoiseConfig{0.05, 0.05});
  synergy::Queue q0(cluster.device(0));
  synergy::Queue q1(cluster.device(1));
  const auto a = q0.submit({work_kernel(), 10000, {}});
  const auto b = q1.submit({work_kernel(), 10000, {}});
  EXPECT_NE(a.time_s, b.time_s);
}

TEST(Cluster, ValidatesConfig) {
  EXPECT_THROW(Cluster(sim::v100(), ClusterConfig{0, {}}), contract_error);
  ClusterConfig bad{2, {}};
  bad.network.bandwidth_gbs = 0.0;
  EXPECT_THROW(Cluster(sim::v100(), bad), contract_error);
  Cluster ok(sim::v100(), ClusterConfig{2, {}});
  EXPECT_THROW(ok.device(2), contract_error);
  EXPECT_THROW(ok.device(-1), contract_error);
}

} // namespace
} // namespace dsem::celerity
