// dsem::trace contract tests.
//
//  - Off by default, and the disabled path stays cheap enough to leave in
//    hot loops (overhead regression test with a CI-generous threshold).
//  - Spans / counters / gauges / instants record with correct content.
//  - The Chrome trace_event export is structurally valid JSON.
//  - Golden-trace determinism: a tiny faulty sweep records an identical
//    logical event sequence (names, args, values, counters) for thread
//    pools of size 1, 2 and 8 — the in-process equivalent of running with
//    DSEM_THREADS ∈ {1, 2, 8}, which sizes the global pool the same way.
#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/characterization.hpp"

namespace dsem::trace {
namespace {

/// Every test runs against the process-global tracer: start from a clean,
/// enabled state and always leave it disabled and empty for the next test.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(false);
    Tracer::global().clear();
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndRecordsNothing) {
  EXPECT_FALSE(enabled());
  {
    Span span("off.span", cat::kMeasure);
    span.value(1.0);
    counter("off.counter", 1.0);
    gauge("off.gauge", 2.0);
    instant("off.instant", cat::kMeasure);
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, RecordsAllEventKindsWhenEnabled) {
  set_enabled(true);
  {
    Span span("on.span", cat::kSweep);
    span.arg("payload");
    span.value(42.0);
    counter("on.counter", 3.0);
    gauge("on.gauge", 7.5);
    instant("on.instant", cat::kMeasure, Reliability::kStable, "mark");
  }
  const std::vector<Event> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 4u);

  bool saw_span = false;
  for (const Event& e : events) {
    if (e.kind == EventKind::kSpan) {
      saw_span = true;
      EXPECT_STREQ(e.name, "on.span");
      EXPECT_STREQ(e.category, cat::kSweep);
      EXPECT_EQ(e.arg, "payload");
      EXPECT_TRUE(e.has_value);
      EXPECT_EQ(e.value, 42.0);
      EXPECT_GE(e.dur_ns, 0);
    }
  }
  EXPECT_TRUE(saw_span);

  // All four were recorded serially on this thread outside any scope:
  // stable, path 0, consecutive sequence numbers. The span takes its seq
  // at construction, before the three free-function events.
  const auto logical = Tracer::global().logical_events();
  ASSERT_EQ(logical.size(), 4u);
  for (std::size_t i = 0; i < logical.size(); ++i) {
    EXPECT_EQ(logical[i].path, 0u) << i;
    EXPECT_EQ(logical[i].seq, i) << i;
  }
  EXPECT_EQ(logical[0].name, "on.span");
  EXPECT_EQ(logical[1].name, "on.counter");
  EXPECT_EQ(logical[1].value, 3.0);
  EXPECT_EQ(logical[2].name, "on.gauge");
  EXPECT_EQ(logical[3].name, "on.instant");
  EXPECT_EQ(logical[3].arg, "mark");
}

TEST_F(TraceTest, ClearResetsEventsAndSequence) {
  set_enabled(true);
  counter("reset.probe", 1.0);
  const auto first = Tracer::global().logical_events();
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  counter("reset.probe", 1.0);
  EXPECT_EQ(Tracer::global().logical_events(), first);
}

TEST_F(TraceTest, RootSpanScopesNestedEvents) {
  set_enabled(true);
  {
    Span root("scope.root", cat::kSweep, /*logical_index=*/7);
    counter("scope.inner", 1.0);
    Span nested("scope.nested", cat::kMeasure);
  }
  counter("scope.outer", 1.0);

  const auto logical = Tracer::global().logical_events();
  ASSERT_EQ(logical.size(), 4u);
  // Canonical order sorts path 0 (the thread root) first.
  EXPECT_EQ(logical[0].name, "scope.outer");
  EXPECT_EQ(logical[0].path, 0u);

  // Root + its two children share a nonzero path with consecutive seqs.
  const std::uint64_t path = logical[1].path;
  EXPECT_NE(path, 0u);
  EXPECT_EQ(logical[1].name, "scope.root");
  EXPECT_EQ(logical[1].seq, 0u);
  EXPECT_EQ(logical[2].name, "scope.inner");
  EXPECT_EQ(logical[2].path, path);
  EXPECT_EQ(logical[2].seq, 1u);
  EXPECT_EQ(logical[3].name, "scope.nested");
  EXPECT_EQ(logical[3].path, path);
  EXPECT_EQ(logical[3].seq, 2u);
}

TEST_F(TraceTest, RootSpanPathDependsOnlyOnNameAndIndex) {
  set_enabled(true);
  { Span a("path.probe", cat::kSweep, 3); }
  { Span b("path.probe", cat::kSweep, 3); }
  { Span c("path.probe", cat::kSweep, 4); }
  const auto logical = Tracer::global().logical_events();
  ASSERT_EQ(logical.size(), 3u);
  std::vector<std::uint64_t> paths;
  for (const auto& e : logical) {
    paths.push_back(e.path);
  }
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths[0], paths[1]); // same (name, index) -> same path
  EXPECT_NE(paths[1], paths[2]); // different index -> different path
}

TEST_F(TraceTest, TimingDependentEventsExcludedFromLogicalView) {
  set_enabled(true);
  counter("td.counter", 1.0, Reliability::kTimingDependent);
  gauge("td.gauge", 1.0, Reliability::kTimingDependent);
  { Span span("td.span", cat::kPool, Reliability::kTimingDependent); }
  EXPECT_EQ(Tracer::global().event_count(), 3u);
  EXPECT_TRUE(Tracer::global().logical_events().empty());
}

TEST_F(TraceTest, ScopelessStableEventsInPoolTasksAreDowngraded) {
  set_enabled(true);
  ThreadPool pool(2);
  // A stable-site counter inside a pool task but outside any root scope:
  // its thread placement is a scheduling accident, so it must not reach
  // the logical view. With a root scope it must.
  pool.submit([] { counter("pool.unscoped", 1.0); }).get();
  pool.submit([] {
        Span root("pool.scoped_root", cat::kSweep, 0);
        counter("pool.scoped", 1.0);
      })
      .get();
  // Count by name rather than asserting a global total: idle workers may
  // record a nondeterministic number of pool.idle spans while tracing is on.
  std::size_t unscoped = 0;
  for (const auto& e : Tracer::global().events()) {
    if (std::string_view(e.name) == "pool.unscoped") {
      ++unscoped;
      EXPECT_FALSE(e.stable); // recorded, but downgraded out of the logical view
    }
  }
  EXPECT_EQ(unscoped, 1u);

  const auto logical = Tracer::global().logical_events();
  ASSERT_EQ(logical.size(), 2u);
  EXPECT_EQ(logical[0].name, "pool.scoped_root");
  EXPECT_EQ(logical[1].name, "pool.scoped");
}

// --- Chrome export ---------------------------------------------------------

/// Minimal structural JSON check: balanced containers outside strings,
/// valid escape usage, single top-level value. Not a full parser, but it
/// catches every quoting/nesting mistake an exporter can make.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false; // control characters must be escaped
      }
      continue;
    }
    switch (c) {
    case '"':
      in_string = true;
      break;
    case '{':
    case '[':
      stack.push_back(c);
      break;
    case '}':
      if (stack.empty() || stack.back() != '{') {
        return false;
      }
      stack.pop_back();
      break;
    case ']':
      if (stack.empty() || stack.back() != '[') {
        return false;
      }
      stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, ChromeExportIsWellFormedJson) {
  set_enabled(true);
  {
    Span span("json.span", cat::kSweep, 0);
    span.arg("quote \" backslash \\ newline \n tab \t");
    span.value(1.25);
    counter("json.counter", 2.0);
    counter("json.counter", 3.0);
    gauge("json.gauge", 4.0, Reliability::kStable, "g");
    instant("json.instant", cat::kMeasure);
  }
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  const std::string text = os.str();

  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos); // span
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos); // counter
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos); // instant
  EXPECT_NE(text.find("json.span"), std::string::npos);
  // Counter samples carry the running total, not the delta.
  EXPECT_NE(text.find("\"value\":5"), std::string::npos);
  // The raw control characters must not survive into the output.
  EXPECT_EQ(text.find('\n'), text.size() - 1);
}

TEST_F(TraceTest, EmptyTraceExportsValidJson) {
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  EXPECT_TRUE(json_well_formed(os.str()));
}

TEST_F(TraceTest, SummaryTableListsEveryInstrumentName) {
  set_enabled(true);
  { Span span("sum.span", cat::kSweep); }
  counter("sum.counter", 2.5);
  gauge("sum.gauge", 9.0);
  std::ostringstream os;
  Tracer::global().write_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("sum.span"), std::string::npos);
  EXPECT_NE(text.find("sum.counter"), std::string::npos);
  EXPECT_NE(text.find("sum.gauge"), std::string::npos);
  EXPECT_NE(text.find("trace summary"), std::string::npos);
}

// --- Golden-trace determinism ---------------------------------------------

std::vector<double> strided_freqs(const synergy::Device& device,
                                  std::size_t stride) {
  const auto all = device.supported_frequencies();
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    out.push_back(all[i]);
  }
  return out;
}

/// Runs a tiny faulty characterization sweep on a pool of `threads`
/// workers and returns the logical trace it recorded. Faults make the
/// retry/backoff instrumentation fire; the per-point replica devices make
/// the fault pattern a pure function of the grid.
std::vector<LogicalEvent> traced_sweep(std::size_t threads) {
  Tracer::global().clear();
  set_enabled(true);
  {
    sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.015, 0.015}, 0x077);
    sim::FaultConfig faults;
    faults.set_frequency_rate = 0.2;
    faults.energy_read_drop_rate = 0.1;
    sim_dev.set_fault_config(faults);
    synergy::Device device(sim_dev);
    const core::CronosWorkload workload(cronos::GridDims{12, 6, 6}, 2);

    ThreadPool pool(threads);
    sim::ProfileCache cache;
    core::SweepOptions options;
    options.repetitions = 2;
    options.pool = &pool;
    options.cache = &cache;
    options.retry = core::RetryPolicy{4, 0.01, 2.0};
    core::characterize(device, workload, options, strided_freqs(device, 16));
  }
  auto out = Tracer::global().logical_events();
  set_enabled(false);
  Tracer::global().clear();
  return out;
}

TEST_F(TraceTest, GoldenTraceIdenticalAcrossPoolSizes) {
  const std::vector<LogicalEvent> serial = traced_sweep(1);
  ASSERT_FALSE(serial.empty());

  // Sanity on the schema before comparing: the logical view must contain
  // the grid-point spans, the retry counters the faults triggered, and
  // the whole-grid tallies — and none of the timing-dependent names.
  std::size_t points = 0;
  std::size_t attempts = 0;
  bool saw_retry = false;
  for (const LogicalEvent& e : serial) {
    if (e.name == "sweep.point") {
      ++points;
    }
    if (e.name == "retry.attempts") {
      ++attempts;
    }
    if (e.name == "retry.retries" || e.name == "retry.backoff_s") {
      saw_retry = true;
    }
    EXPECT_NE(e.name, "cache.hits");
    EXPECT_NE(e.name, "cache.misses");
    EXPECT_NE(e.name, "pool.task");
    EXPECT_NE(e.name, "pool.steal");
    EXPECT_NE(e.name, "pool.idle");
  }
  // 13 swept frequencies (stride 16 over 196 plus the last partial step)
  // + the default-clock baseline; count the grid instead of hardcoding.
  EXPECT_GT(points, 1u);
  EXPECT_GT(attempts, points); // faults forced extra attempts
  EXPECT_TRUE(saw_retry);

  for (std::size_t threads : {2u, 8u}) {
    const std::vector<LogicalEvent> parallel = traced_sweep(threads);
    ASSERT_EQ(serial.size(), parallel.size()) << "pool size " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "pool size " << threads << ", event " << i << ": "
          << serial[i].name << " vs " << parallel[i].name;
    }
  }
}

TEST_F(TraceTest, GoldenTraceStableAcrossRepeatedRuns) {
  // Same pool size twice: clear() must fully reset the logical state.
  const auto a = traced_sweep(4);
  const auto b = traced_sweep(4);
  EXPECT_EQ(a, b);
}

// --- Disabled-path overhead ------------------------------------------------

TEST_F(TraceTest, DisabledTracerOverheadStaysNegligible) {
  ASSERT_FALSE(enabled());
  // The disabled fast path is one relaxed atomic load + branch per call
  // site (a few ns). The bound is two orders of magnitude above that so
  // CI noise, sanitizers, or debug builds cannot trip it — it exists to
  // catch a regression that puts real work (locking, allocation, clock
  // reads) on the disabled path, which would cost microseconds, not
  // nanoseconds.
  constexpr int kIters = 200'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    Span span("overhead.span", cat::kMeasure);
    span.value(static_cast<double>(i));
    counter("overhead.counter", 1.0);
    instant("overhead.instant", cat::kMeasure);
  }
  const double elapsed_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  const double ns_per_iter = elapsed_ns / kIters;
  EXPECT_LT(ns_per_iter, 1000.0) << "disabled-path cost regressed";
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

} // namespace
} // namespace dsem::trace
