#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), contract_error);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(Table, CsvOutputHasCommaSeparatedCells) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"text"});
  t.add_row({"hello, world"});
  t.add_row({"quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, ColumnsAlignedToWidestCell) {
  Table t({"h", "i"});
  t.add_row({"wide-cell-content", "x"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header_line;
  std::getline(is, header_line);
  // The second column header must start after the widest first-column cell.
  EXPECT_GE(header_line.find('i'), std::string("wide-cell-content").size());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(42LL), "42");
  EXPECT_EQ(fmt(std::size_t{7}), "7");
  EXPECT_EQ(fmt(-13LL), "-13");
}

TEST(Fmt, PercentCarriesSign) {
  EXPECT_EQ(fmt_percent(0.123, 1), "+12.3%");
  EXPECT_EQ(fmt_percent(-0.05, 1), "-5.0%");
  EXPECT_EQ(fmt_percent(0.0, 1), "+0.0%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Experiment 1");
  EXPECT_NE(os.str().find("Experiment 1"), std::string::npos);
}

} // namespace
} // namespace dsem
