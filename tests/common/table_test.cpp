#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), contract_error);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(Table, CsvOutputHasCommaSeparatedCells) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"text"});
  t.add_row({"hello, world"});
  t.add_row({"quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, ColumnsAlignedToWidestCell) {
  Table t({"h", "i"});
  t.add_row({"wide-cell-content", "x"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header_line;
  std::getline(is, header_line);
  // The second column header must start after the widest first-column cell.
  EXPECT_GE(header_line.find('i'), std::string("wide-cell-content").size());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(42LL), "42");
  EXPECT_EQ(fmt(std::size_t{7}), "7");
  EXPECT_EQ(fmt(-13LL), "-13");
}

TEST(Fmt, PercentCarriesSign) {
  EXPECT_EQ(fmt_percent(0.123, 1), "+12.3%");
  EXPECT_EQ(fmt_percent(-0.05, 1), "-5.0%");
  EXPECT_EQ(fmt_percent(0.0, 1), "+0.0%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Experiment 1");
  EXPECT_NE(os.str().find("Experiment 1"), std::string::npos);
}

TEST(FmtG, SignificantDigits) {
  EXPECT_EQ(fmt_g(0.25), "0.25");
  EXPECT_EQ(fmt_g(1234567.0), "1.23457e+06");
  EXPECT_EQ(fmt_g(1234567.0, 9), "1234567");
  EXPECT_EQ(fmt_g(0.000123456789, 3), "0.000123");
  EXPECT_EQ(fmt_g(0.0), "0");
}

// InstrumentTable is the one layout both exporters share (trace summaries
// and metrics snapshots). Its output must be byte-identical to building
// the equivalent Table by hand — that equivalence is what keeps the trace
// summary byte-stable after the refactor onto the shared helper.

TEST(InstrumentTable, MatchesHandBuiltTableByteForByte) {
  InstrumentTable it;
  it.add_distribution("span", "sweep.point", 28, "12.5", "0.446", "0.21",
                      "1.8");
  it.add_value("counter", "retry.attempts", 31, "35");
  it.add_value("gauge", "pool.queue_depth", 9, "3");
  std::ostringstream actual;
  it.print(actual);

  Table expected({"kind", "name", "count", "total", "mean", "min", "max"});
  expected.add_row({"span", "sweep.point", "28", "12.5", "0.446", "0.21",
                    "1.8"});
  expected.add_row({"counter", "retry.attempts", "31", "35", "", "", ""});
  expected.add_row({"gauge", "pool.queue_depth", "9", "3", "", "", ""});
  std::ostringstream want;
  expected.print(want);

  EXPECT_EQ(actual.str(), want.str());
}

TEST(InstrumentTable, ExtraColumnsExtendHeaderAndPadValueRows) {
  InstrumentTable it({"p50", "p99"});
  it.add_distribution("histogram", "measure.time_s", 4, "1", "0.25", "0.2",
                      "0.3", {"0.24", "0.3"});
  it.add_value("counter", "sim.launches", 4, "4");
  EXPECT_EQ(it.table().column_count(), 9u);

  std::ostringstream os;
  it.print(os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("p50"), std::string::npos);
  EXPECT_NE(header.find("p99"), std::string::npos);

  // A value row padded with blanks stays rectangular with the header.
  Table expected({"kind", "name", "count", "total", "mean", "min", "max",
                  "p50", "p99"});
  expected.add_row({"histogram", "measure.time_s", "4", "1", "0.25", "0.2",
                    "0.3", "0.24", "0.3"});
  expected.add_row({"counter", "sim.launches", "4", "4", "", "", "", "", ""});
  std::ostringstream want;
  expected.print(want);
  EXPECT_EQ(os.str(), want.str());
}

TEST(InstrumentTable, RejectsMoreExtrasThanDeclared) {
  InstrumentTable it({"p50"});
  EXPECT_THROW(it.add_distribution("histogram", "h", 1, "1", "1", "1", "1",
                                   {"a", "b"}),
               contract_error);
}

} // namespace
} // namespace dsem
