// dsem::json contract tests.
//
// The writer's determinism is load-bearing (golden metrics snapshots and
// BENCH reports are compared as strings), so these tests pin the exact
// serialized bytes: insertion-ordered object keys, integral numbers
// without a decimal point, %.17g for everything else, and a stable escape
// set. The parser must round-trip everything the writer emits and reject
// malformed input with a position-carrying contract_error.
#include "common/json.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::json {
namespace {

TEST(JsonValue, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value(std::uint64_t{7}).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value::array().is_array());
  EXPECT_TRUE(Value::object().is_object());

  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_THROW(Value(1.0).as_string(), contract_error);
  EXPECT_THROW(Value("x").as_number(), contract_error);
  EXPECT_THROW(Value().as_array(), contract_error);
}

TEST(JsonValue, ObjectSetOverwritesInPlaceAndKeepsOrder) {
  auto obj = Value::object();
  obj.set("b", 1);
  obj.set("a", 2);
  obj.set("b", 3); // overwrite must not move "b" to the end
  EXPECT_EQ(obj.dump(), R"({"b":3,"a":2})");

  EXPECT_EQ(obj.at("a").as_number(), 2.0);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), contract_error);

  // Non-const lookup writes through.
  obj.at("a") = Value("patched");
  EXPECT_EQ(obj.at("a").as_string(), "patched");
}

TEST(JsonValue, ArrayPushBack) {
  auto arr = Value::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Value::object());
  EXPECT_EQ(arr.as_array().size(), 3u);
  EXPECT_EQ(arr.dump(), R"([1,"two",{}])");
  EXPECT_THROW(Value(1.0).push_back(2), contract_error);
}

TEST(JsonWriter, NumberFormattingIsDeterministic) {
  // Integral doubles inside the 2^53 exact range print without a decimal
  // point — counters and bucket counts must look like integers.
  EXPECT_EQ(Value(0).dump(), "0");
  EXPECT_EQ(Value(-42).dump(), "-42");
  EXPECT_EQ(Value(9007199254740992.0).dump(), "9007199254740992");
  // Non-integral values use %.17g: round-trip exact and byte-stable.
  EXPECT_EQ(Value(0.5).dump(), "0.5");
  EXPECT_EQ(Value(0.1).dump(), "0.10000000000000001");
  // Above 2^53 integrality is not representable, so %.17g takes over
  // (1e300 itself is not exactly representable; the digits are stable).
  EXPECT_EQ(Value(1e300).dump(), "1.0000000000000001e+300");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(Value("q\"b\\n\nt\tu\x01").dump(),
            R"("q\"b\\n\nt\tu\u0001")");
  std::ostringstream os;
  escape(os, "plain");
  EXPECT_EQ(os.str(), "plain");
}

TEST(JsonWriter, PrettyPrintIndentsNestedContainers) {
  auto root = Value::object();
  root.set("a", 1);
  auto arr = Value::array();
  arr.push_back(true);
  root.set("b", std::move(arr));
  root.set("c", Value::object());
  EXPECT_EQ(root.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ],\n  \"c\": {}\n}");
}

TEST(JsonParser, RoundTripsEveryType) {
  const std::string text =
      R"({"null":null,"bool":false,"int":-3,"float":0.25,)"
      R"("str":"a\u0041b","arr":[1,[2],{"k":"v"}],"obj":{"nested":true}})";
  const Value v = Value::parse(text);
  EXPECT_TRUE(v.at("null").is_null());
  EXPECT_EQ(v.at("bool").as_bool(), false);
  EXPECT_EQ(v.at("int").as_number(), -3.0);
  EXPECT_EQ(v.at("float").as_number(), 0.25);
  EXPECT_EQ(v.at("str").as_string(), "aAb");
  EXPECT_EQ(v.at("arr").as_array().size(), 3u);
  EXPECT_EQ(v.at("obj").at("nested").as_bool(), true);

  // Writer output parses back to an equal document.
  EXPECT_EQ(Value::parse(v.dump()), v);
  EXPECT_EQ(Value::parse(v.dump(2)), v);
}

TEST(JsonParser, DecodesSurrogatePairsToUtf8) {
  // U+1F600 as a surrogate pair; must decode to the 4-byte UTF-8 form.
  const Value v = Value::parse(R"("\ud83d\ude00")");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParser, AcceptsScientificNotationAndWhitespace) {
  EXPECT_EQ(Value::parse(" \n\t 1.5e3 ").as_number(), 1500.0);
  EXPECT_EQ(Value::parse("-2E-2").as_number(), -0.02);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",             // empty input
           "{",            // unterminated object
           "[1,]",         // trailing comma
           "{\"a\" 1}",    // missing colon
           "\"unterminated", // unterminated string
           "tru",          // truncated keyword
           "1 2",          // trailing content
           "{\"a\":1,}",   // trailing comma in object
           "\"\\x\"",      // unknown escape
       }) {
    EXPECT_THROW(Value::parse(bad), contract_error) << bad;
  }
  // Errors carry the offset so malformed BENCH files are diagnosable.
  try {
    Value::parse("[1, x]");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParser, WriteToStreamMatchesDump) {
  const Value v = Value::parse(R"({"k":[1,2.5,"s"]})");
  std::ostringstream os;
  v.write(os);
  EXPECT_EQ(os.str(), v.dump());
}

} // namespace
} // namespace dsem::json
