#include "common/rng.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dsem {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(rng());
  }
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    acc += rng.uniform();
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(1), 0u);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.split();
  // Child stream should not reproduce the parent's outputs.
  Rng parent2(13);
  parent2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

} // namespace
} // namespace dsem
