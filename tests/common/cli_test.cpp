#include "common/cli.hpp"

#include <array>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem {
namespace {

CliParser make_parser() {
  CliParser cli("test", "test program");
  cli.add_flag("verbose", "enable verbose output");
  cli.add_option("count", "number of things", "10");
  cli.add_option("rate", "a rate", "1.5");
  cli.add_option("name", "a name", "default");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  CliParser cli = make_parser();
  const std::array argv = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.option_int("count"), 10);
  EXPECT_DOUBLE_EQ(cli.option_double("rate"), 1.5);
  EXPECT_EQ(cli.option("name"), "default");
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--count=42", "--name=zap"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.option_int("count"), 42);
  EXPECT_EQ(cli.option("name"), "zap");
}

TEST(Cli, ParsesSpaceForm) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--count", "7"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.option_int("count"), 7);
}

TEST(Cli, FlagSetsTrue) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               contract_error);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--count"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               contract_error);
}

TEST(Cli, FlagWithValueThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--verbose=yes"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               contract_error);
}

TEST(Cli, NonNumericIntThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--count=abc"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.option_int("count"), contract_error);
}

TEST(Cli, NonNumericDoubleThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--rate=fast"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.option_double("rate"), contract_error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  const std::array argv = {"prog", "input.txt", "--count=3", "extra"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "extra");
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser cli("p", "d");
  cli.add_flag("x", "x");
  EXPECT_THROW(cli.add_option("x", "x", "1"), contract_error);
}

TEST(Cli, QueryingWrongKindThrows) {
  CliParser cli = make_parser();
  const std::array argv = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_THROW(cli.flag("count"), contract_error);
  EXPECT_THROW(cli.option("verbose"), contract_error);
}

} // namespace
} // namespace dsem
