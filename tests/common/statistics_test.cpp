#include "common/statistics.hpp"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::stats {
namespace {

TEST(Statistics, SumAndMean) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Statistics, SumOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
}

TEST(Statistics, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), contract_error);
}

TEST(Statistics, KahanSummationStaysAccurate) {
  std::vector<double> xs(1000000, 0.1);
  EXPECT_NEAR(sum(xs), 100000.0, 1e-6);
}

TEST(Statistics, VarianceAndStddev) {
  const std::array<double, 5> xs = {2.0, 4.0, 4.0, 4.0, 6.0};
  // Sample variance: sum sq dev = 8, / 4 = 2.
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Statistics, VarianceOfSingletonIsZero) {
  const std::array<double, 1> xs = {5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Statistics, MinMax) {
  const std::array<double, 4> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Statistics, MedianOddAndEven) {
  const std::array<double, 5> odd = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::array<double, 4> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Statistics, QuantileEndpoints) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Statistics, QuantileInterpolates) {
  const std::array<double, 2> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Statistics, QuantileRejectsOutOfRange) {
  const std::array<double, 2> xs = {0.0, 1.0};
  EXPECT_THROW(quantile(xs, 1.5), contract_error);
  EXPECT_THROW(quantile(xs, -0.1), contract_error);
}

// The metrics histograms (common/metrics) promise "common/statistics
// quantile semantics"; these edge cases pin the semantics they rely on.

TEST(Statistics, QuantileSingleElementIsConstantInQ) {
  const std::array<double, 1> xs = {7.0};
  for (double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(xs, q), 7.0) << q;
  }
}

TEST(Statistics, QuantileEndpointsAreExactExtremesUnsorted) {
  // q = 0 / q = 1 must return the true min/max with no interpolation,
  // regardless of input order.
  const std::array<double, 5> xs = {3.0, -2.0, 9.0, 0.5, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Statistics, QuantileTiesCollapseToTiedValue) {
  // Interpolating between equal neighbors must return the tied value
  // exactly, not drift from the arithmetic.
  const std::array<double, 5> xs = {2.0, 2.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.7), 2.0); // rank 2.8: both neighbors tied
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  const std::array<double, 4> all_tied = {3.0, 3.0, 3.0, 3.0};
  for (double q : {0.0, 0.33, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(all_tied, q), 3.0) << q;
  }
}

TEST(Statistics, QuantileEmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), contract_error);
}

TEST(Statistics, MaeRmse) {
  const std::array<double, 3> truth = {1.0, 2.0, 3.0};
  const std::array<double, 3> pred = {1.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(mae(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(rmse(truth, pred), std::sqrt((0.0 + 1.0 + 4.0) / 3.0));
}

TEST(Statistics, MapeBasic) {
  const std::array<double, 2> truth = {100.0, 200.0};
  const std::array<double, 2> pred = {110.0, 180.0};
  EXPECT_NEAR(mape(truth, pred), 0.1, 1e-12);
}

TEST(Statistics, MapeSkipsNearZeroTruth) {
  const std::array<double, 3> truth = {0.0, 100.0, 100.0};
  const std::array<double, 3> pred = {50.0, 110.0, 90.0};
  EXPECT_NEAR(mape(truth, pred), 0.1, 1e-12);
}

TEST(Statistics, MapeAllZeroTruthThrows) {
  const std::array<double, 2> truth = {0.0, 0.0};
  const std::array<double, 2> pred = {1.0, 1.0};
  EXPECT_THROW(mape(truth, pred), contract_error);
}

TEST(Statistics, R2PerfectPrediction) {
  const std::array<double, 4> truth = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);
}

TEST(Statistics, R2MeanPredictionIsZero) {
  const std::array<double, 4> truth = {1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r2(truth, pred), 0.0, 1e-12);
}

TEST(Statistics, PearsonPerfectCorrelation) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::array<double, 4> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Statistics, SizeMismatchThrows) {
  const std::array<double, 2> a = {1.0, 2.0};
  const std::array<double, 3> b = {1.0, 2.0, 3.0};
  EXPECT_THROW(mae(a, b), contract_error);
  EXPECT_THROW(rmse(a, b), contract_error);
  EXPECT_THROW(mape(a, b), contract_error);
}

TEST(Accumulator, TracksMomentsAndExtremes) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 6.0}) {
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(Accumulator, MatchesBatchStatistics) {
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i * 0.37) * 13.0 + 5.0;
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-9);
}

} // namespace
} // namespace dsem::stats
