// dsem::benchreport contract tests: BENCH_*.json construction, Google
// Benchmark JSON merging, and the regression-comparison logic behind
// bench/perf_compare (whose exit code gates CI).
#include "common/bench_report.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::benchreport {
namespace {

std::string data_path(const std::string& name) {
  return std::string(DSEM_TEST_DATA_DIR) + "/" + name;
}

TEST(BenchReport, MakeReportProducesValidSkeleton) {
  json::Value report = make_report("2026-08-05", "smoke");
  validate(report);
  EXPECT_EQ(report.at("schema").as_string(), kBenchSchema);
  EXPECT_EQ(report.at("date").as_string(), "2026-08-05");
  EXPECT_EQ(report.at("mode").as_string(), "smoke");
  EXPECT_TRUE(report.at("benchmarks").as_array().empty());
  EXPECT_TRUE(report.at("pipeline").is_null());
}

TEST(BenchReport, ValidateRejectsMalformedDocuments) {
  // Wrong schema tag.
  json::Value wrong = make_report("2026-08-05", "smoke");
  wrong.set("schema", "dsem-bench-v0");
  EXPECT_THROW(validate(wrong), contract_error);

  // Benchmark entry missing a required field.
  json::Value bad_entry = make_report("2026-08-05", "smoke");
  auto entry = json::Value::object();
  entry.set("name", "x");
  bad_entry.at("benchmarks").push_back(std::move(entry));
  EXPECT_THROW(validate(bad_entry), contract_error);

  // Not an object at all.
  EXPECT_THROW(validate(json::Value::array()), contract_error);
}

TEST(BenchReport, AddEntryRejectsDuplicateNames) {
  json::Value report = make_report("2026-08-05", "smoke");
  add_entry(report, "perf_sim/BM_X", 100.0, 90.0, 1000.0);
  EXPECT_THROW(add_entry(report, "perf_sim/BM_X", 1.0, 1.0, 1.0),
               contract_error);
  validate(report);
}

TEST(BenchReport, MergeGoogleBenchmarkSkipsAggregatesAndNormalizesUnits) {
  json::Value report = make_report("2026-08-05", "smoke");
  const json::Value gbench = json::Value::parse(R"({
    "context": {"host_name": "ci"},
    "benchmarks": [
      {"name": "BM_Fast", "run_type": "iteration", "real_time": 250.0,
       "cpu_time": 240.0, "time_unit": "ns", "iterations": 1000},
      {"name": "BM_Slow", "run_type": "iteration", "real_time": 1.5,
       "cpu_time": 1.25, "time_unit": "ms", "iterations": 10},
      {"name": "BM_Slow_mean", "run_type": "aggregate", "real_time": 1.5,
       "cpu_time": 1.25, "time_unit": "ms", "iterations": 10}
    ]
  })");
  EXPECT_EQ(merge_google_benchmark(report, "perf_sim", gbench), 2u);
  validate(report);

  const auto& entries = report.at("benchmarks").as_array();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].at("name").as_string(), "perf_sim/BM_Fast");
  EXPECT_EQ(entries[0].at("real_time_ns").as_number(), 250.0);
  // ms entries are normalized to nanoseconds.
  EXPECT_EQ(entries[1].at("name").as_string(), "perf_sim/BM_Slow");
  EXPECT_EQ(entries[1].at("real_time_ns").as_number(), 1.5e6);
  EXPECT_EQ(entries[1].at("cpu_time_ns").as_number(), 1.25e6);
}

TEST(BenchReport, MergeLiftsNanosecondUserCounters) {
  json::Value report = make_report("2026-08-05", "smoke");
  const json::Value gbench = json::Value::parse(R"({
    "benchmarks": [
      {"name": "BM_Serve", "run_type": "iteration", "real_time": 2.0,
       "cpu_time": 2.0, "time_unit": "ms", "iterations": 5,
       "p50_latency_ns": 1234.0, "p99_latency_ns": 56789.0,
       "throughput_rps": 4000.0, "hit_rate": 0.8}
    ]
  })");
  // One iteration row plus the two _ns counters; throughput_rps and
  // hit_rate are not latencies and must stay out of the report.
  EXPECT_EQ(merge_google_benchmark(report, "perf_advisor", gbench), 3u);
  validate(report);

  const auto& entries = report.at("benchmarks").as_array();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].at("name").as_string(), "perf_advisor/BM_Serve");
  EXPECT_EQ(entries[1].at("name").as_string(),
            "perf_advisor/BM_Serve:p50_latency_ns");
  EXPECT_EQ(entries[1].at("real_time_ns").as_number(), 1234.0);
  EXPECT_EQ(entries[1].at("cpu_time_ns").as_number(), 1234.0);
  EXPECT_EQ(entries[2].at("name").as_string(),
            "perf_advisor/BM_Serve:p99_latency_ns");
  EXPECT_EQ(entries[2].at("real_time_ns").as_number(), 56789.0);
}

TEST(BenchReport, MergeRejectsUnknownTimeUnit) {
  json::Value report = make_report("2026-08-05", "smoke");
  const json::Value gbench = json::Value::parse(R"({
    "benchmarks": [
      {"name": "BM_X", "run_type": "iteration", "real_time": 1.0,
       "cpu_time": 1.0, "time_unit": "fortnights", "iterations": 1}
    ]
  })");
  EXPECT_THROW(merge_google_benchmark(report, "perf_sim", gbench),
               contract_error);
}

TEST(BenchReport, SetPipelineRecordsObjectAndBenchmarkEntry) {
  json::Value report = make_report("2026-08-05", "smoke");
  auto manifest = json::Value::object();
  manifest.set("schema", "dsem-run-v1");
  set_pipeline(report, "fig01", 2.5, std::move(manifest));
  validate(report);

  EXPECT_EQ(report.at("pipeline").at("name").as_string(), "fig01");
  EXPECT_EQ(report.at("pipeline").at("wall_s").as_number(), 2.5);
  EXPECT_EQ(report.at("pipeline").at("run_manifest").at("schema").as_string(),
            "dsem-run-v1");
  // ...and the same run is visible to the compare tool as a benchmark.
  const auto& entries = report.at("benchmarks").as_array();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].at("name").as_string(), "pipeline/fig01");
  EXPECT_EQ(entries[0].at("real_time_ns").as_number(), 2.5e9);
}

// --- compare ---------------------------------------------------------------

json::Value report_with(
    const std::vector<std::pair<std::string, double>>& entries) {
  json::Value report = make_report("2026-08-05", "smoke");
  for (const auto& [name, ns] : entries) {
    add_entry(report, name, ns, ns, 100.0);
  }
  return report;
}

TEST(BenchCompare, FlagsRegressionsBeyondTolerance) {
  const json::Value baseline = report_with(
      {{"a/stable", 1000.0}, {"a/regressed", 1000.0}, {"a/improved", 1000.0}});
  const json::Value current = report_with(
      {{"a/stable", 1100.0}, {"a/regressed", 1500.0}, {"a/improved", 600.0}});

  const CompareResult result = compare(baseline, current); // tolerance 0.25
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].name, "a/regressed");
  EXPECT_EQ(result.regressions[0].ratio, 1.5);
  ASSERT_EQ(result.improvements.size(), 1u);
  EXPECT_EQ(result.improvements[0].name, "a/improved");
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.added.empty());
}

TEST(BenchCompare, IgnoresEntriesFasterThanMinTime) {
  // 10 ns baseline is below the 100 ns floor: a 40x blowup on a too-fast
  // benchmark is noise, not a regression.
  const json::Value baseline = report_with({{"a/tiny", 10.0}});
  const json::Value current = report_with({{"a/tiny", 400.0}});
  EXPECT_TRUE(compare(baseline, current).ok());

  CompareOptions strict;
  strict.min_time_ns = 1.0;
  EXPECT_FALSE(compare(baseline, current, strict).ok());
}

TEST(BenchCompare, TracksMissingAndAddedEntries) {
  const json::Value baseline = report_with({{"a/kept", 1000.0},
                                            {"a/removed", 1000.0}});
  const json::Value current = report_with({{"a/kept", 1000.0},
                                           {"a/new", 1000.0}});
  const CompareResult result = compare(baseline, current);
  EXPECT_TRUE(result.ok()); // renames warn, they do not gate
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "a/removed");
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "a/new");
}

TEST(BenchCompare, PrintSummarizesVerdict) {
  const json::Value baseline = report_with({{"a/regressed", 1000.0}});
  const json::Value current = report_with({{"a/regressed", 2000.0}});
  const CompareResult result = compare(baseline, current);
  std::ostringstream os;
  print_compare(os, result);
  const std::string text = os.str();
  EXPECT_NE(text.find("a/regressed"), std::string::npos) << text;
  EXPECT_NE(text.find("REGRESSED"), std::string::npos) << text;
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;

  std::ostringstream ok_os;
  print_compare(ok_os, compare(baseline, baseline));
  EXPECT_NE(ok_os.str().find("PASS"), std::string::npos) << ok_os.str();
}

TEST(BenchCompare, MatchPrefixSelectsStrictZone) {
  const std::vector<Delta> deltas = {
      {"perf_ml/BM_ForestFit/20000", 100.0, 200.0, 2.0},
      {"perf_sim/BM_DeviceLaunch", 100.0, 200.0, 2.0},
      {"perf_ml/BM_SvrFit/800", 100.0, 200.0, 2.0},
  };
  const std::vector<Delta> strict = match_prefix(deltas, "perf_ml/");
  ASSERT_EQ(strict.size(), 2u);
  EXPECT_EQ(strict[0].name, "perf_ml/BM_ForestFit/20000");
  EXPECT_EQ(strict[1].name, "perf_ml/BM_SvrFit/800");

  EXPECT_TRUE(match_prefix(deltas, "perf_cronos/").empty());
  // A prefix must be a *prefix*, not a substring.
  EXPECT_TRUE(match_prefix(deltas, "BM_ForestFit").empty());
  // An empty prefix matches nothing: otherwise a misconfigured gate would
  // silently strict-fail every benchmark.
  EXPECT_TRUE(match_prefix(deltas, "").empty());
}

// --- file fixtures (the same ones the ctest exit-code tests use) -----------

TEST(BenchReportFiles, CommittedFixturesValidateAndCompare) {
  const json::Value baseline = load_file(data_path("bench_baseline_sample.json"));
  const json::Value regressed =
      load_file(data_path("bench_regressed_sample.json"));
  validate(baseline);
  validate(regressed);

  // Self-comparison is clean.
  EXPECT_TRUE(compare(baseline, baseline).ok());

  // The regressed fixture trips exactly the entry built to regress, and
  // the too-fast entry stays ignored despite its 40x blowup.
  const CompareResult result = compare(baseline, regressed);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].name, "perf_sim/BM_DeviceLaunch");
}

TEST(BenchReportFiles, MlRegressionFixtureHitsTheStrictZone) {
  const json::Value baseline = load_file(data_path("bench_baseline_sample.json"));
  const json::Value regressed =
      load_file(data_path("bench_regressed_ml_sample.json"));
  validate(regressed);

  const CompareResult result = compare(baseline, regressed);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].name, "perf_ml/BM_ForestFit");
  EXPECT_EQ(match_prefix(result.regressions, "perf_ml/").size(), 1u);

  // The sim-only regression fixture must NOT trip the strict zone — that
  // pair is the "warns elsewhere" ctest fixture.
  const CompareResult sim_only =
      compare(baseline, load_file(data_path("bench_regressed_sample.json")));
  EXPECT_FALSE(sim_only.ok());
  EXPECT_TRUE(match_prefix(sim_only.regressions, "perf_ml/").empty());
}

TEST(BenchReportFiles, LoadFileThrowsOnMissingPath) {
  EXPECT_THROW(load_file(data_path("does_not_exist.json")), contract_error);
}

} // namespace
} // namespace dsem::benchreport
