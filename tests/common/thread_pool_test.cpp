#include "common/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExplicitThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 13) {
                                throw std::runtime_error("unlucky");
                              }
                            },
                            /*grain=*/1),
               std::runtime_error);
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { ++calls; }, 100);
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelForChunks, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunks(pool, 0, 97,
                      [&](std::size_t lo, std::size_t hi) {
                        std::lock_guard lock(m);
                        chunks.emplace_back(lo, hi);
                      },
                      10);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 97u);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const double sum = parallel_reduce(
      pool, 1, 1001, 0.0,
      [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(sum, 500500.0);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  std::vector<double> values(500);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 7919) % 499);
  }
  const double expected = *std::max_element(values.begin(), values.end());
  const double got = parallel_reduce(
      pool, 0, values.size(), 0.0,
      [&](std::size_t i) { return values[i]; },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const double got = parallel_reduce(
      pool, 3, 3, 42.0, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  pool.stop();
  EXPECT_THROW(pool.submit([] {}), contract_error);
}

TEST(ThreadPool, StopDrainsQueueAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.stop();
  EXPECT_EQ(counter.load(), 50);
  pool.stop(); // second stop must be a no-op, not a crash
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TryRunOneStealsQueuedTask) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::atomic<bool> started{false};
  auto blocked = pool.submit([&] {
    started = true;
    gate.get_future().wait();
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::atomic<bool> ran{false};
  auto queued = pool.submit([&ran] { ran = true; });
  // The only worker is parked on the gate, so the queued task can only run
  // if the calling thread steals it.
  EXPECT_TRUE(pool.try_run_one());
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(pool.try_run_one()); // queue is empty again
  gate.set_value();
  blocked.get();
  queued.get();
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A two-worker pool (single-worker pools run parallel_for inline) with
  // more chunks than workers forces the blocked outer chunks to execute
  // the inner chunks themselves (help-while-waiting); without work
  // stealing this test would hang.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(
      pool, 0, 4,
      [&](std::size_t) {
        parallel_for(pool, 0, 4, [&](std::size_t) { ++count; }, 1);
      },
      1);
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelReduce, SingleElementRange) {
  ThreadPool pool(4);
  const double got = parallel_reduce(
      pool, 9, 10, 0.0,
      [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 9.0);
}

TEST(ParallelReduce, MoreThreadsThanElements) {
  ThreadPool pool(8);
  const double got = parallel_reduce(
      pool, 0, 3, 0.0,
      [](std::size_t i) { return static_cast<double>(i + 1); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 6.0);
}

TEST(ThreadPool, HelpWhileWaitingExecutesNestedSubmissions) {
  // The waited-on task submits children and waits on them in turn. On a
  // single-worker pool the outer wait can only complete if
  // help_while_waiting keeps draining the queue on the calling thread —
  // including tasks submitted AFTER the wait began.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  auto outer = pool.submit([&] {
    std::vector<std::future<void>> children;
    for (int i = 0; i < 8; ++i) {
      children.push_back(pool.submit([&done] { ++done; }));
    }
    for (auto& c : children) {
      pool.help_while_waiting(c);
      c.get();
    }
  });
  pool.help_while_waiting(outer);
  outer.get();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, NestedSubmissionUnderContention) {
  // Many concurrent callers each spawn a two-level task tree on a pool
  // smaller than the caller count: every wait must help. Exercises the
  // steal path from multiple threads at once (the ASan/UBSan shard runs
  // this to catch races in the queue handoff).
  ThreadPool pool(2);
  constexpr int kCallers = 6;
  constexpr int kChildren = 16;
  std::atomic<int> executed{0};
  std::vector<std::jthread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      auto root = pool.submit([&] {
        std::vector<std::future<int>> grandchildren;
        for (int i = 0; i < kChildren; ++i) {
          grandchildren.push_back(pool.submit([&executed, i] {
            ++executed;
            return i;
          }));
        }
        int sum = 0;
        for (auto& g : grandchildren) {
          pool.help_while_waiting(g);
          sum += g.get();
        }
        return sum;
      });
      pool.help_while_waiting(root);
      EXPECT_EQ(root.get(), kChildren * (kChildren - 1) / 2);
    });
  }
  callers.clear();
  EXPECT_EQ(executed.load(), kCallers * kChildren);
}

TEST(ThreadPool, DeepNestedParallelForCompletes) {
  // Three levels of nesting on one worker: only help-while-waiting keeps
  // this from deadlocking, and every index must still run exactly once.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(27);
  parallel_for(
      pool, 0, 3,
      [&](std::size_t i) {
        parallel_for(
            pool, 0, 3,
            [&](std::size_t j) {
              parallel_for(
                  pool, 0, 3,
                  [&](std::size_t k) { ++hits[i * 9 + j * 3 + k]; },
                  /*grain=*/1);
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

} // namespace
} // namespace dsem
