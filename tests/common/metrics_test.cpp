// dsem::metrics contract tests.
//
//  - Off by default, and the disabled path stays cheap enough to leave in
//    hot loops (same regression bar as the disabled tracer).
//  - Counters / gauges / histograms record and merge across shards into
//    one name-sorted snapshot.
//  - Histogram quantiles follow common/statistics semantics to within one
//    log-bucket of relative error.
//  - Golden-snapshot determinism: the deterministic JSON view of a tiny
//    faulty sweep is bit-identical for pools of 1, 2 and 8 workers (the
//    in-process equivalent of DSEM_THREADS ∈ {1, 2, 8}).
#include "common/metrics.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/thread_pool.hpp"
#include "core/characterization.hpp"

namespace dsem::metrics {
namespace {

/// Every test runs against the process-global registry: start from a
/// clean, disabled state and always leave it that way for the next test.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(false);
    Registry::global().clear();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().clear();
  }
};

TEST_F(MetricsTest, DisabledByDefaultAndRecordsNothing) {
  EXPECT_FALSE(enabled());
  counter("off.counter");
  gauge("off.gauge", 1.0);
  histogram("off.histogram", 2.0);
  { ScopedTimer timer("off.timer_s"); }
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

TEST_F(MetricsTest, RecordsAllInstrumentKindsWhenEnabled) {
  set_enabled(true);
  counter("on.counter", 2);
  counter("on.counter", 3);
  gauge("on.gauge", 1.5);
  gauge("on.gauge", 2.5);
  histogram("on.histogram", 1.0);
  histogram("on.histogram", 4.0);

  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "on.counter");
  EXPECT_EQ(snap.counters[0].count, 2u);
  EXPECT_EQ(snap.counters[0].total, 5u);

  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "on.gauge");
  EXPECT_EQ(snap.gauges[0].updates, 2u);
  EXPECT_EQ(snap.gauges[0].value, 2.5); // last write wins

  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "on.histogram");
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_EQ(snap.histograms[0].min, 1.0);
  EXPECT_EQ(snap.histograms[0].max, 4.0);
  EXPECT_EQ(snap.histograms[0].sum, 5.0);
}

TEST_F(MetricsTest, ClearResetsEveryShard) {
  set_enabled(true);
  counter("reset.counter");
  Registry::global().clear();
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  set_enabled(true);
  counter("z.last");
  counter("a.first");
  counter("m.middle");
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.middle");
  EXPECT_EQ(snap.counters[2].name, "z.last");
}

TEST_F(MetricsTest, InstrumentKindMismatchThrows) {
  set_enabled(true);
  counter("kind.clash");
  EXPECT_THROW(histogram("kind.clash", 1.0), contract_error);
}

TEST_F(MetricsTest, BucketGeometryBoundsEveryValue) {
  // Every positive value lands in a bucket whose upper boundary is >= the
  // value and within one bucket width (2^(1/8)) of it.
  const double kWidth = std::exp2(1.0 / kBucketsPerOctave);
  for (double v : {1e-9, 3.7e-6, 0.5, 1.0, 42.0, 1e6, 7.7e13}) {
    const std::size_t idx = bucket_index(v);
    EXPECT_GE(bucket_upper_bound(idx), v) << v;
    EXPECT_LT(bucket_upper_bound(idx) / v, kWidth * (1.0 + 1e-12)) << v;
  }
  // Degenerate values all land in the underflow bucket.
  EXPECT_EQ(bucket_index(0.0), 0u);
  EXPECT_EQ(bucket_index(-5.0), 0u);
  EXPECT_EQ(bucket_index(kHistogramMin), 0u);
  // Overflow clamps to the last bucket instead of indexing out of range.
  EXPECT_EQ(bucket_index(1e300), kHistogramBuckets - 1);
}

TEST_F(MetricsTest, SingleSampleHistogramIsExactAtAllQuantiles) {
  set_enabled(true);
  histogram("single.sample", 0.125);
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  // One sample: rank interpolation collapses and the clamp to the
  // observed [min, max] makes every quantile exact.
  EXPECT_EQ(h.quantile(0.0), 0.125);
  EXPECT_EQ(h.quantile(0.5), 0.125);
  EXPECT_EQ(h.quantile(1.0), 0.125);
}

TEST_F(MetricsTest, HistogramQuantilesMatchStatsQuantileWithinBucketError) {
  set_enabled(true);
  std::vector<double> samples;
  double x = 1e-4;
  for (int i = 0; i < 500; ++i) {
    x *= 1.013; // spans about two decades
    samples.push_back(x);
    histogram("quantile.samples", x);
  }
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  // The histogram only remembers bucket boundaries: agreement with the
  // exact sample quantile is bounded by one bucket width (~9 % relative).
  const double kWidth = std::exp2(1.0 / kBucketsPerOctave);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double exact = stats::quantile(samples, q);
    const double approx = h.quantile(q);
    EXPECT_GT(approx, exact / kWidth) << "q=" << q;
    EXPECT_LT(approx, exact * kWidth) << "q=" << q;
  }
  // The top extreme is clamped to the observed max, hence exact; the
  // bottom rank is attributed its bucket's upper bound like any sample.
  EXPECT_EQ(h.quantile(1.0), samples.back());
  EXPECT_THROW(h.quantile(-0.1), contract_error);
  EXPECT_THROW(h.quantile(1.1), contract_error);
}

TEST_F(MetricsTest, ShardsMergeAcrossThreads) {
  set_enabled(true);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter("merge.counter");
        histogram("merge.histogram", static_cast<double>(i + 1));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].total, kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].min, 1.0);
  EXPECT_EQ(snap.histograms[0].max, static_cast<double>(kPerThread));
}

TEST_F(MetricsTest, JsonViewsFilterWallClockContent) {
  set_enabled(true);
  counter("det.counter", 3);
  counter("wall.counter", 1, Reliability::kWallClock);
  gauge("wall.gauge", 2.0);
  histogram("det.histogram", 0.5);

  const Snapshot snap = Registry::global().snapshot();
  const json::Value full = snap.to_json(/*deterministic_only=*/false);
  EXPECT_EQ(full.at("schema").as_string(), kMetricsSchema);
  EXPECT_EQ(full.at("view").as_string(), "full");
  EXPECT_EQ(full.at("counters").as_array().size(), 2u);
  EXPECT_EQ(full.at("gauges").as_array().size(), 1u);
  // The full view carries the order-dependent aggregates...
  const json::Value& full_hist = full.at("histograms").as_array()[0];
  EXPECT_NE(full_hist.find("sum"), nullptr);
  EXPECT_NE(full_hist.find("mean"), nullptr);

  // ...the deterministic view drops them along with kWallClock rows.
  const json::Value det = snap.to_json(/*deterministic_only=*/true);
  EXPECT_EQ(det.at("view").as_string(), "deterministic");
  ASSERT_EQ(det.at("counters").as_array().size(), 1u);
  EXPECT_EQ(det.at("counters").as_array()[0].at("name").as_string(),
            "det.counter");
  EXPECT_TRUE(det.at("gauges").as_array().empty());
  const json::Value& det_hist = det.at("histograms").as_array()[0];
  EXPECT_EQ(det_hist.find("sum"), nullptr);
  EXPECT_EQ(det_hist.find("mean"), nullptr);
}

/// Runs the trace test's tiny faulty characterization sweep on a pool of
/// `threads` workers and returns the deterministic metrics JSON it
/// recorded. Faults make the retry instrumentation fire; per-point
/// replica devices make everything a pure function of the grid.
std::string metered_sweep(std::size_t threads) {
  Registry::global().clear();
  set_enabled(true);
  {
    sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.015, 0.015}, 0x077);
    sim::FaultConfig faults;
    faults.set_frequency_rate = 0.2;
    faults.energy_read_drop_rate = 0.1;
    sim_dev.set_fault_config(faults);
    synergy::Device device(sim_dev);
    const core::CronosWorkload workload(cronos::GridDims{12, 6, 6}, 2);

    ThreadPool pool(threads);
    sim::ProfileCache cache;
    core::SweepOptions options;
    options.repetitions = 2;
    options.pool = &pool;
    options.cache = &cache;
    options.retry = core::RetryPolicy{4, 0.01, 2.0};
    const auto all = device.supported_frequencies();
    std::vector<double> freqs;
    for (std::size_t i = 0; i < all.size(); i += 16) {
      freqs.push_back(all[i]);
    }
    core::characterize(device, workload, options, freqs);
  }
  const std::string out =
      Registry::global().snapshot().to_json(/*deterministic_only=*/true).dump(
          2);
  set_enabled(false);
  Registry::global().clear();
  return out;
}

TEST_F(MetricsTest, GoldenDeterministicJsonIdenticalAcrossPoolSizes) {
  const std::string serial = metered_sweep(1);

  // Sanity on the content before comparing: the deterministic view must
  // carry the sweep tallies, retry accounting, and simulated launch
  // histograms — and none of the scheduling-dependent instruments.
  EXPECT_NE(serial.find("sweep.grid_points"), std::string::npos);
  EXPECT_NE(serial.find("retry.attempts"), std::string::npos);
  EXPECT_NE(serial.find("retry.backoff_s"), std::string::npos);
  EXPECT_NE(serial.find("sim.launch_energy_j"), std::string::npos);
  EXPECT_NE(serial.find("queue.launch_time_s"), std::string::npos);
  EXPECT_EQ(serial.find("cache."), std::string::npos);
  EXPECT_EQ(serial.find("pool."), std::string::npos);

  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, metered_sweep(threads)) << "pool size " << threads;
  }
}

TEST_F(MetricsTest, GoldenSnapshotStableAcrossRepeatedRuns) {
  // Same pool size twice: clear() must fully reset the shard state.
  EXPECT_EQ(metered_sweep(4), metered_sweep(4));
}

TEST_F(MetricsTest, SnapshotTableListsEveryInstrument) {
  set_enabled(true);
  histogram("render.hist_s", 0.25);
  counter("render.counter", 28);
  counter("render.tasks", 1, Reliability::kWallClock);
  gauge("render.gauge", 3.0, Reliability::kDeterministic);

  std::ostringstream os;
  Registry::global().snapshot().write_table(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("metrics snapshot (4 instruments"), std::string::npos)
      << text;
  EXPECT_NE(text.find("render.hist_s"), std::string::npos);
  EXPECT_NE(text.find("render.counter"), std::string::npos);
  EXPECT_NE(text.find("render.gauge"), std::string::npos);
  // Wall-clock instruments carry the report-only marker on their kind.
  EXPECT_NE(text.find("counter~"), std::string::npos) << text;
  // Histogram rows expose the quantile columns declared by the helper.
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST_F(MetricsTest, DisabledMetricsOverheadStaysNegligible) {
  ASSERT_FALSE(enabled());
  // Same bar as the disabled-tracer test: the fast path is one relaxed
  // atomic load + branch per call site. The bound is two orders of
  // magnitude above that so CI noise or sanitizers cannot trip it — it
  // exists to catch a regression that puts real work (locking, shard
  // lookup, log2) on the disabled path.
  constexpr int kIters = 200'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    counter("overhead.counter");
    gauge("overhead.gauge", static_cast<double>(i));
    histogram("overhead.histogram", static_cast<double>(i));
    ScopedTimer timer("overhead.timer_s");
  }
  const double elapsed_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  const double ns_per_iter = elapsed_ns / kIters;
  EXPECT_LT(ns_per_iter, 1000.0) << "disabled-path cost regressed";
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

TEST_F(MetricsTest, StandaloneObserveMatchesRegistryRecording) {
  // HistogramSnapshot::observe must accumulate exactly like recording
  // through the registry: same count/min/max/sum, same bucket counts,
  // same quantiles (the obs:: drift monitor depends on this).
  const std::vector<double> samples = {1e-6, 3.4e-3, 3.5e-3, 0.12,
                                       7.0,  0.0,    -2.0};
  set_enabled(true);
  for (const double s : samples) {
    histogram("merge.reference", s);
  }
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& reference = snap.histograms.front();

  HistogramSnapshot standalone;
  for (const double s : samples) {
    standalone.observe(s);
  }
  EXPECT_EQ(standalone.count, reference.count);
  EXPECT_EQ(standalone.sum, reference.sum);
  EXPECT_EQ(standalone.min, reference.min);
  EXPECT_EQ(standalone.max, reference.max);
  EXPECT_EQ(standalone.buckets, reference.buckets);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(standalone.quantile(q), reference.quantile(q)) << q;
  }
}

TEST_F(MetricsTest, MergeAcrossRegistrySnapshotsEqualsOneCombinedRun) {
  // Two registry generations (snapshot + clear between them, i.e. two
  // independent registries' views) merged with HistogramSnapshot::merge
  // must equal one registry that saw every sample.
  const std::vector<double> first = {2e-6, 0.5, 0.03};
  const std::vector<double> second = {9.0, 1e-9, 0.031};

  set_enabled(true);
  for (const double s : first) {
    histogram("merge.split", s);
  }
  Snapshot gen1 = Registry::global().snapshot();
  Registry::global().clear();
  for (const double s : second) {
    histogram("merge.split", s);
  }
  Snapshot gen2 = Registry::global().snapshot();
  Registry::global().clear();

  for (const double s : first) {
    histogram("merge.split", s);
  }
  for (const double s : second) {
    histogram("merge.split", s);
  }
  const Snapshot combined = Registry::global().snapshot();

  ASSERT_EQ(gen1.histograms.size(), 1u);
  ASSERT_EQ(gen2.histograms.size(), 1u);
  ASSERT_EQ(combined.histograms.size(), 1u);
  HistogramSnapshot merged = gen1.histograms.front();
  merged.merge(gen2.histograms.front());
  const HistogramSnapshot& reference = combined.histograms.front();
  EXPECT_EQ(merged.name, reference.name);
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.min, reference.min);
  EXPECT_EQ(merged.max, reference.max);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (const double q : {0.0, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(merged.quantile(q), reference.quantile(q)) << q;
  }
}

TEST_F(MetricsTest, MergeWithEmptySideAdoptsOrKeepsTheOther) {
  HistogramSnapshot filled;
  filled.name = "merge.adopt";
  filled.observe(1.0);
  filled.observe(2.0);

  HistogramSnapshot empty;
  empty.merge(filled); // empty adopts the filled side wholesale
  EXPECT_EQ(empty.count, 2u);
  EXPECT_EQ(empty.name, "merge.adopt");
  EXPECT_EQ(empty.buckets, filled.buckets);

  HistogramSnapshot unchanged = filled;
  unchanged.merge(HistogramSnapshot{}); // merging in empty is a no-op
  EXPECT_EQ(unchanged.count, filled.count);
  EXPECT_EQ(unchanged.min, filled.min);
  EXPECT_EQ(unchanged.max, filled.max);
  EXPECT_EQ(unchanged.buckets, filled.buckets);
}

TEST_F(MetricsTest, MergeRejectsMismatchedNames) {
  HistogramSnapshot a;
  a.name = "merge.a";
  a.observe(1.0);
  HistogramSnapshot b;
  b.name = "merge.b";
  b.observe(2.0);
  EXPECT_THROW(a.merge(b), contract_error);
}

} // namespace
} // namespace dsem::metrics
