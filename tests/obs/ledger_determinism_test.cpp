// Golden ledger determinism (grouped suite, heavy tier): the attribution
// ledgers written by a 10^4-request serve run and a 10^4-job scheduler
// run are bit-identical JSON for thread pools of 1, 2, and 8 workers,
// their summaries match committed goldens byte for byte (the summary's
// records_digest extends that pin to every record), their totals
// reconcile exactly with ServeStats / SchedStats, and every record obeys
// the miss-cause taxonomy.
//
// To regenerate the goldens after a conscious behavior change:
//   DSEM_WRITE_GOLDEN=1 ./dsem_obs_tests --gtest_filter=LedgerDeterminism.*
// then commit the rewritten tests/data/golden_ledger_*.json.
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/ledger.hpp"
#include "sched/scheduler.hpp"
#include "serve/loop.hpp"
#include "../serve/serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::ModelRegistry;
using serve::TimedJob;
using serve::TimedRequest;
using serve::TrafficConfig;

// Trained once, shared by every test in the grouped suite.
const ModelRegistry& shared_registry() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry;
    r->put(serve_test::train_compact_artifact("cronos"));
    r->put(serve_test::train_compact_artifact("ligen"));
    return r;
  }();
  return *registry;
}

// Same traces as the ServeDeterminism / SchedDeterminism suites, so the
// ledger pins the exact runs those suites already guard.
const std::vector<TimedRequest>& shared_request_trace() {
  static const std::vector<TimedRequest> trace = [] {
    TrafficConfig traffic;
    traffic.requests = 10000;
    traffic.arrival_rate_hz = 5000.0; // fast enough to force batching
    traffic.population = 64;
    return serve::generate_trace(traffic);
  }();
  return trace;
}

const std::vector<TimedJob>& shared_job_trace() {
  static const std::vector<TimedJob> trace = [] {
    TrafficConfig traffic;
    traffic.requests = 10000;
    traffic.arrival_rate_hz = 4.0; // a moderately loaded 4-rank cluster
    traffic.population = 64;
    traffic.deadline_slacks = {1.5, 2.0, 3.0, 4.0};
    return serve::generate_job_trace(traffic);
  }();
  return trace;
}

struct ServeLedgerRun {
  std::vector<obs::RequestRecord> records;
  serve::ServeStats stats;
  std::string full_json;    ///< to_json(false): summary + record arrays
  std::string summary_json; ///< to_json(true): the committed golden view
};

const ServeLedgerRun& serve_run(std::size_t threads) {
  static std::map<std::size_t, ServeLedgerRun>* cache =
      new std::map<std::size_t, ServeLedgerRun>;
  const auto found = cache->find(threads);
  if (found != cache->end()) {
    return found->second;
  }
  ThreadPool pool(threads);
  serve::ServeConfig config;
  config.batch_size = 32;
  config.admission_bound = 256;
  config.cache_capacity = 512;
  config.pool = &pool;
  obs::Ledger ledger;
  config.ledger = &ledger;
  serve::ServeLoop loop(shared_registry(), config);
  loop.run(shared_request_trace());
  ServeLedgerRun run;
  run.records = ledger.requests();
  run.stats = loop.stats();
  run.full_json = ledger.to_json(false).dump(2);
  run.summary_json = ledger.to_json(true).dump(2);
  return (*cache)[threads] = std::move(run);
}

struct SchedLedgerRun {
  std::vector<obs::JobRecord> records;
  sched::SchedStats stats;
  std::string full_json;
  std::string summary_json;
};

const SchedLedgerRun& sched_run(std::size_t threads) {
  static std::map<std::size_t, SchedLedgerRun>* cache =
      new std::map<std::size_t, SchedLedgerRun>;
  const auto found = cache->find(threads);
  if (found != cache->end()) {
    return found->second;
  }
  ThreadPool pool(threads);
  celerity::ClusterConfig cluster_config;
  cluster_config.nodes = 4;
  celerity::Cluster cluster(sim::v100(), cluster_config);
  sched::SchedConfig config;
  config.frequency = sched::FrequencyPolicy::kModel;
  config.margin = 6.0;
  config.pool = &pool;
  obs::Ledger ledger;
  config.ledger = &ledger;
  sched::ClusterScheduler scheduler(cluster, shared_registry(), config);
  scheduler.run(shared_job_trace());
  SchedLedgerRun run;
  run.records = ledger.jobs();
  run.stats = scheduler.stats();
  run.full_json = ledger.to_json(false).dump(2);
  run.summary_json = ledger.to_json(true).dump(2);
  return (*cache)[threads] = std::move(run);
}

std::string golden_path(const std::string& filename) {
  return std::string(DSEM_TEST_DATA_DIR) + "/" + filename;
}

void expect_matches_golden(const std::string& filename,
                           const std::string& summary_json) {
  const std::string path = golden_path(filename);
  if (std::getenv("DSEM_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden: " << path;
    out << summary_json << "\n";
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " (regenerate with DSEM_WRITE_GOLDEN=1 and commit it)";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), summary_json + "\n")
      << "ledger summary diverged from " << filename
      << "; if the change is intentional, regenerate with "
         "DSEM_WRITE_GOLDEN=1";
}

TEST(LedgerDeterminism, ServeLedgerBitIdenticalForPools1_2_8) {
  const ServeLedgerRun& serial = serve_run(1);
  const ServeLedgerRun& two = serve_run(2);
  const ServeLedgerRun& eight = serve_run(8);
  ASSERT_EQ(serial.records.size(), 10000u);
  // The full dump carries every per-request record: queue waits,
  // service times, batches, energies — all simulated-time quantities.
  EXPECT_EQ(serial.full_json, two.full_json);
  EXPECT_EQ(serial.full_json, eight.full_json);
  EXPECT_EQ(serial.records, two.records);
  EXPECT_EQ(serial.records, eight.records);
}

TEST(LedgerDeterminism, SchedLedgerBitIdenticalForPools1_2_8) {
  const SchedLedgerRun& serial = sched_run(1);
  const SchedLedgerRun& two = sched_run(2);
  const SchedLedgerRun& eight = sched_run(8);
  ASSERT_EQ(serial.records.size(), 10000u);
  EXPECT_EQ(serial.full_json, two.full_json);
  EXPECT_EQ(serial.full_json, eight.full_json);
  EXPECT_EQ(serial.records, two.records);
  EXPECT_EQ(serial.records, eight.records);
}

TEST(LedgerDeterminism, ServeSummaryMatchesCommittedGolden) {
  expect_matches_golden("golden_ledger_serve_v100.json",
                        serve_run(8).summary_json);
}

TEST(LedgerDeterminism, SchedSummaryMatchesCommittedGolden) {
  expect_matches_golden("golden_ledger_sched_v100.json",
                        sched_run(8).summary_json);
}

TEST(LedgerDeterminism, ServeLedgerReconcilesWithServeStats) {
  const ServeLedgerRun& run = serve_run(8);
  std::uint64_t served = 0, shed = 0, hits = 0, misses = 0;
  double energy = 0.0;
  std::map<std::string, double> by_app;
  for (const obs::RequestRecord& r : run.records) {
    if (r.shed) {
      ++shed;
      continue;
    }
    ++served;
    (r.cache_hit ? hits : misses) += 1;
    energy += r.predicted_energy_j;
    by_app[r.application] += r.predicted_energy_j;
  }
  EXPECT_EQ(served, run.stats.served);
  EXPECT_EQ(shed, run.stats.shed);
  EXPECT_EQ(served + shed, run.stats.requests);
  EXPECT_EQ(hits, run.stats.cache_hits);
  EXPECT_EQ(misses, run.stats.cache_misses);
  // Exact double equality: the ledger accumulates in the same order as
  // ServeStats, so the sums are bit-identical, not merely close.
  EXPECT_EQ(energy, run.stats.predicted_energy_j);
  EXPECT_EQ(by_app, run.stats.energy_by_application);
}

TEST(LedgerDeterminism, SchedLedgerReconcilesWithSchedStats) {
  const SchedLedgerRun& run = sched_run(8);
  std::uint64_t completed = 0, rejected = 0, missed = 0, infeasible = 0;
  double busy_energy = 0.0;
  for (const obs::JobRecord& j : run.records) {
    if (j.rejected) {
      ++rejected;
    } else {
      ++completed;
      busy_energy += j.true_energy_j;
    }
    if (j.missed) {
      ++missed;
    }
    if (j.infeasible) {
      ++infeasible;
    }
  }
  EXPECT_EQ(completed, run.stats.completed);
  EXPECT_EQ(rejected, run.stats.rejected);
  EXPECT_EQ(completed + rejected, run.stats.jobs);
  EXPECT_EQ(missed, run.stats.misses);
  EXPECT_EQ(infeasible, run.stats.infeasible);
  EXPECT_EQ(busy_energy, run.stats.busy_energy_j);
}

TEST(LedgerDeterminism, RecordsObeyTheMissCauseTaxonomy) {
  for (const obs::RequestRecord& r : serve_run(8).records) {
    // Requests: shed <=> cause "shed"; served requests carry no cause.
    EXPECT_EQ(r.shed, r.cause == obs::MissCause::kShed) << r.index;
    if (r.shed) {
      EXPECT_EQ(r.batch, 0u) << r.index;
      EXPECT_EQ(r.model, "") << r.index;
      EXPECT_EQ(r.service_s, 0.0) << r.index;
    } else {
      EXPECT_GE(r.batch, 1u) << r.index;
      // latency = completion - arrival and queue_wait + service differ
      // only by one rounding step, so near — not necessarily bit — equal.
      EXPECT_DOUBLE_EQ(r.latency_s, r.queue_wait_s + r.service_s) << r.index;
    }
    EXPECT_EQ(r.id, obs::derive_record_id("req", r.index)) << r.index;
  }
  for (const obs::JobRecord& j : sched_run(8).records) {
    // Jobs: missed <=> an attributed cause; rejection implies a miss.
    EXPECT_EQ(j.missed, j.cause != obs::MissCause::kNone) << j.index;
    if (j.rejected) {
      EXPECT_TRUE(j.missed) << j.index;
      EXPECT_EQ(j.rank, -1) << j.index;
    } else {
      EXPECT_EQ(j.finish_s, j.start_s + j.true_time_s) << j.index;
      EXPECT_EQ(j.missed, j.finish_s > j.deadline_s) << j.index;
    }
    EXPECT_EQ(j.id, obs::derive_record_id("job", j.index)) << j.index;
  }
}

} // namespace
