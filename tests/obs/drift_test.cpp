// Drift monitor unit tests: per-artifact residual folding, the sliding
// window, and the drift flag's threshold / min-samples gating.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/drift.hpp"

namespace dsem::obs {
namespace {

DriftConfig small_config() {
  DriftConfig config;
  config.window = 4;
  config.quantile = 1.0; // windowed max: easiest to hand-compute
  config.threshold = 0.25;
  config.min_samples = 2;
  return config;
}

TEST(DriftTest, FlagsWhenWindowedQuantileExceedsThreshold) {
  DriftMonitor monitor(small_config());
  monitor.observe("m", 0.10, 0.05);
  monitor.observe("m", 0.10, 0.05);
  ASSERT_EQ(monitor.report().size(), 1u);
  EXPECT_FALSE(monitor.report().front().drifted); // 0.10 < 0.25

  monitor.observe("m", 0.50, 0.05); // time residual breaches
  const ArtifactDrift drifted = monitor.report().front();
  EXPECT_EQ(drifted.window_time_quantile, 0.50);
  EXPECT_TRUE(drifted.drifted);
}

TEST(DriftTest, EitherResidualStreamCanTripTheFlag) {
  DriftMonitor monitor(small_config());
  monitor.observe("m", 0.05, 0.10);
  monitor.observe("m", 0.05, 0.60); // energy residual breaches
  const ArtifactDrift drift = monitor.report().front();
  EXPECT_LT(drift.window_time_quantile, 0.25);
  EXPECT_EQ(drift.window_energy_quantile, 0.60);
  EXPECT_TRUE(drift.drifted);
}

TEST(DriftTest, SlidingWindowEvictsOldResiduals) {
  // A breach four observations ago has left the window (size 4): the
  // flag clears even though the all-time histogram remembers it.
  DriftMonitor monitor(small_config());
  monitor.observe("m", 0.90, 0.90);
  monitor.observe("m", 0.01, 0.01);
  EXPECT_TRUE(monitor.report().front().drifted);
  for (int i = 0; i < 3; ++i) {
    monitor.observe("m", 0.01, 0.01);
  }
  const ArtifactDrift drift = monitor.report().front();
  EXPECT_FALSE(drift.drifted);
  EXPECT_EQ(drift.window_time_quantile, 0.01);
  EXPECT_EQ(drift.samples, 5u);             // all-time count
  EXPECT_EQ(drift.time_residual.max, 0.90); // histogram keeps the breach
}

TEST(DriftTest, MinSamplesGatesEarlyTraffic) {
  DriftConfig config = small_config();
  config.min_samples = 3;
  DriftMonitor monitor(config);
  monitor.observe("m", 0.90, 0.90);
  monitor.observe("m", 0.90, 0.90);
  EXPECT_FALSE(monitor.report().front().drifted); // 2 < min_samples
  monitor.observe("m", 0.90, 0.90);
  EXPECT_TRUE(monitor.report().front().drifted);
}

TEST(DriftTest, ReportsPerArtifactSortedByModel) {
  DriftMonitor monitor(small_config());
  monitor.observe("zeta/v100@x", 0.1, 0.1);
  monitor.observe("alpha/v100@x", 0.2, 0.2);
  const std::vector<ArtifactDrift> report = monitor.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].model, "alpha/v100@x");
  EXPECT_EQ(report[1].model, "zeta/v100@x");
  EXPECT_EQ(report[0].samples, 1u);
}

TEST(DriftTest, JsonFragmentCarriesResidualQuantilesAndFlag) {
  DriftMonitor monitor(small_config());
  monitor.observe("m", 0.50, 0.10);
  monitor.observe("m", 0.50, 0.10);
  const json::Value artifacts = monitor.to_json();
  ASSERT_EQ(artifacts.as_array().size(), 1u);
  const json::Value& entry = artifacts.as_array().front();
  EXPECT_EQ(entry.at("model").as_string(), "m");
  EXPECT_EQ(entry.at("samples").as_number(), 2.0);
  EXPECT_EQ(entry.at("window_time_quantile").as_number(), 0.50);
  EXPECT_TRUE(entry.at("drifted").as_bool());
  EXPECT_EQ(entry.at("time_residual").at("count").as_number(), 2.0);
  // Histogram quantiles carry bucket granularity (~9%), so p50 is near —
  // not exactly — the exact windowed value.
  EXPECT_NEAR(entry.at("time_residual").at("p50").as_number(), 0.50,
              0.50 * 0.1);
}

TEST(DriftTest, RejectsInvalidConfigAndEmptyModel) {
  DriftConfig zero_window = small_config();
  zero_window.window = 0;
  EXPECT_THROW(DriftMonitor{zero_window}, contract_error);

  DriftConfig bad_quantile = small_config();
  bad_quantile.quantile = 1.5;
  EXPECT_THROW(DriftMonitor{bad_quantile}, contract_error);

  DriftMonitor monitor(small_config());
  EXPECT_THROW(monitor.observe("", 0.1, 0.1), contract_error);
}

} // namespace
} // namespace dsem::obs
