// SLO tracker unit tests: hand-computed total and sliding-window burn
// rates over small event streams.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/slo.hpp"

namespace dsem::obs {
namespace {

TEST(SloTest, EmptyTrackerReportsZeroBurn) {
  const SloTracker tracker(0.1, 2.0);
  const SloReport report = tracker.report();
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.total_burn, 0.0);
  EXPECT_EQ(report.peak_burn, 0.0);
  EXPECT_FALSE(report.exhausted);
}

TEST(SloTest, HandComputedTotalAndPeakWindowBurn) {
  // Budget 10%, trailing window 2 s. Ten events at t = 0..9, violations
  // at t = 2 and t = 3:
  //  - violation rate = 2/10 = 0.2 -> total burn 2.0 (budget exhausted);
  //  - the worst trailing window is (1, 3]: events {2, 3}, both
  //    violations -> peak window rate 1.0, peak burn 10, ending at t = 3.
  SloTracker tracker(0.1, 2.0);
  for (int t = 0; t < 10; ++t) {
    tracker.add(static_cast<double>(t), t == 2 || t == 3);
  }
  const SloReport report = tracker.report();
  EXPECT_EQ(report.events, 10u);
  EXPECT_EQ(report.violations, 2u);
  EXPECT_EQ(report.violation_rate, 0.2);
  EXPECT_EQ(report.total_burn, 2.0);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.peak_window_rate, 1.0);
  EXPECT_EQ(report.peak_burn, 10.0);
  EXPECT_EQ(report.peak_window_end_s, 3.0);
}

TEST(SloTest, WithinBudgetIsNotExhausted) {
  // 1 violation in 100 events against a 5% budget: burn 0.2.
  SloTracker tracker(0.05, 1000.0);
  for (int t = 0; t < 100; ++t) {
    tracker.add(static_cast<double>(t), t == 42);
  }
  const SloReport report = tracker.report();
  EXPECT_EQ(report.violation_rate, 0.01);
  EXPECT_EQ(report.total_burn, 0.01 / 0.05);
  EXPECT_FALSE(report.exhausted);
}

TEST(SloTest, ReportIsInsertionOrderInsensitive) {
  // The report sorts by time, so adding the same events in any order
  // produces the same burn rates.
  SloTracker forward(0.1, 2.0);
  SloTracker backward(0.1, 2.0);
  for (int t = 0; t < 10; ++t) {
    forward.add(static_cast<double>(t), t >= 8);
    backward.add(static_cast<double>(9 - t), (9 - t) >= 8);
  }
  const SloReport a = forward.report();
  const SloReport b = backward.report();
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_burn, b.total_burn);
  EXPECT_EQ(a.peak_window_rate, b.peak_window_rate);
  EXPECT_EQ(a.peak_window_end_s, b.peak_window_end_s);
}

TEST(SloTest, WindowBoundaryIsHalfOpen) {
  // Window (end - w, end]: an event exactly w seconds before the window
  // end has fallen out.
  SloTracker tracker(0.5, 1.0);
  tracker.add(0.0, true);
  tracker.add(1.0, true); // t=0 is outside (0, 1]
  const SloReport report = tracker.report();
  // Every single-event trailing window is all-violation anyway; check
  // the two-event window never formed: peak rate 1.0 from windows of
  // size one, and total rate 1.0.
  EXPECT_EQ(report.peak_window_rate, 1.0);

  SloTracker mixed(0.5, 1.0);
  mixed.add(0.0, true);
  mixed.add(1.0, false); // window ending at t=1 holds only the non-violation
  const SloReport mixed_report = mixed.report();
  EXPECT_EQ(mixed_report.peak_window_rate, 1.0); // the t=0 window
  EXPECT_EQ(mixed_report.peak_window_end_s, 0.0);
}

TEST(SloTest, JsonCarriesEveryField) {
  SloTracker tracker(0.1, 2.0);
  tracker.add(1.0, true);
  const json::Value json = tracker.report().to_json();
  EXPECT_EQ(json.at("events").as_number(), 1.0);
  EXPECT_EQ(json.at("violations").as_number(), 1.0);
  EXPECT_EQ(json.at("budget").as_number(), 0.1);
  EXPECT_EQ(json.at("total_burn").as_number(), 10.0);
  EXPECT_EQ(json.at("peak_burn").as_number(), 10.0);
  EXPECT_TRUE(json.at("exhausted").as_bool());
}

TEST(SloTest, RejectsInvalidConfig) {
  EXPECT_THROW(SloTracker(0.0, 1.0), contract_error);
  EXPECT_THROW(SloTracker(1.5, 1.0), contract_error);
  EXPECT_THROW(SloTracker(0.1, 0.0), contract_error);
}

} // namespace
} // namespace dsem::obs
