// Attribution-ledger unit tests: stable id derivation, hand-computed
// request attribution through a real ServeLoop, shed-request
// reconciliation, summary accounting over hand-built job records, and
// the disabled-path overhead regression.
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "obs/ledger.hpp"
#include "serve/loop.hpp"
#include "../serve/serve_test_util.hpp"

namespace dsem::obs {
namespace {

constexpr double kHitCost = 1e-3;
constexpr double kMissCost = 1e-2;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

serve::TimedRequest make_request(double arrival_s) {
  serve::TimedRequest timed;
  timed.arrival_s = arrival_s;
  timed.request.application = "cronos";
  timed.request.features = {40.0, 10.0, 500.0};
  timed.request.max_slowdown = 0.05;
  return timed;
}

const serve::ModelRegistry& test_registry() {
  static serve::ModelRegistry* registry = [] {
    auto* r = new serve::ModelRegistry;
    r->put(serve_test::synthetic_artifact(0xBEEF, "cronos"));
    return r;
  }();
  return *registry;
}

serve::ServeConfig ledger_config(Ledger* ledger) {
  serve::ServeConfig config;
  config.batch_size = 1; // one request per dispatch: hand-computable
  config.admission_bound = 0;
  config.cache_capacity = 8;
  config.hit_cost_s = kHitCost;
  config.miss_cost_s = kMissCost;
  config.ledger = ledger;
  return config;
}

TEST(LedgerTest, RecordIdsAreStablePureFunctions) {
  // id = "<kind>-" + 16 hex digits of derive_seed(fnv1a64(kind), index):
  // the same trace position maps to the same id in every run.
  char expected[32];
  std::snprintf(expected, sizeof expected, "req-%016llx",
                static_cast<unsigned long long>(
                    derive_seed(fnv1a64("req"), 5)));
  EXPECT_EQ(derive_record_id("req", 5), expected);
  EXPECT_EQ(derive_record_id("req", 5), derive_record_id("req", 5));
  EXPECT_NE(derive_record_id("req", 5), derive_record_id("req", 6));
  EXPECT_NE(derive_record_id("req", 5), derive_record_id("job", 5));
}

TEST(LedgerTest, ServeAttributionHandComputed) {
  // Three identical requests at t = 0 through a batch-size-1 loop:
  // request 0 misses the cold cache (10 ms service), requests 1 and 2
  // hit (1 ms each) and spend the earlier services' time queued.
  Ledger ledger;
  serve::ServeLoop loop(test_registry(), ledger_config(&ledger));
  const std::vector<serve::TimedRequest> trace = {
      make_request(0.0), make_request(0.0), make_request(0.0)};
  const auto responses = loop.run(trace);

  ASSERT_EQ(ledger.requests().size(), 3u);
  ASSERT_TRUE(ledger.jobs().empty());
  const double t1 = kMissCost;      // request 0 completes
  const double t2 = t1 + kHitCost;  // request 1 completes
  const double t3 = t2 + kHitCost;  // request 2 completes

  const RequestRecord& first = ledger.requests()[0];
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.id, derive_record_id("req", 0));
  EXPECT_EQ(first.application, "cronos");
  EXPECT_EQ(first.model, "cronos/v100@synthetic-test");
  EXPECT_EQ(first.arrival_s, 0.0);
  EXPECT_EQ(first.queue_wait_s, 0.0);
  EXPECT_EQ(first.service_s, kMissCost);
  EXPECT_EQ(first.completion_s, t1);
  EXPECT_EQ(first.latency_s, t1);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.shed);
  EXPECT_EQ(first.batch, 1u);
  EXPECT_EQ(first.cause, MissCause::kNone);
  EXPECT_EQ(first.max_slowdown, 0.05);
  EXPECT_EQ(first.freq_mhz, responses[0].answer.freq_mhz);
  EXPECT_EQ(first.predicted_energy_j, responses[0].answer.predicted_energy_j);
  EXPECT_GT(first.predicted_energy_j, 0.0);

  const RequestRecord& second = ledger.requests()[1];
  EXPECT_EQ(second.queue_wait_s, t1);
  EXPECT_EQ(second.service_s, t2 - t1); // completion minus service start
  EXPECT_EQ(second.completion_s, t2);
  EXPECT_EQ(second.latency_s, t2);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.batch, 2u);

  const RequestRecord& third = ledger.requests()[2];
  EXPECT_EQ(third.queue_wait_s, t2);
  EXPECT_EQ(third.completion_s, t3);
  EXPECT_EQ(third.batch, 3u);

  // Identical requests served from the cache carry the cached answer:
  // the attribution (queue/service split) differs, the advice does not.
  EXPECT_EQ(second.freq_mhz, first.freq_mhz);
  EXPECT_EQ(second.predicted_energy_j, first.predicted_energy_j);
}

TEST(LedgerTest, ShedRequestsAreRecordedAndTotalsReconcile) {
  // admission_bound 1 with three near-simultaneous arrivals: request 1
  // is shed-oldest when request 2 lands. The ledger must carry it with
  // cause "shed" — otherwise its totals cannot reconcile with
  // ServeStats.
  Ledger ledger;
  serve::ServeConfig config = ledger_config(&ledger);
  config.admission_bound = 1;
  serve::ServeLoop loop(test_registry(), config);
  const std::vector<serve::TimedRequest> trace = {
      make_request(0.0), make_request(1e-6), make_request(2e-6)};
  loop.run(trace);
  const serve::ServeStats& stats = loop.stats();

  ASSERT_EQ(stats.shed, 1u);
  ASSERT_EQ(ledger.requests().size(), 3u);
  const RequestRecord& dropped = ledger.requests()[1];
  EXPECT_EQ(dropped.index, 1u);
  EXPECT_TRUE(dropped.shed);
  EXPECT_EQ(dropped.cause, MissCause::kShed);
  EXPECT_EQ(dropped.model, "");
  EXPECT_EQ(dropped.batch, 0u);
  EXPECT_EQ(dropped.completion_s, 2e-6); // shed when request 2 arrived
  EXPECT_EQ(dropped.latency_s, 1e-6);
  EXPECT_EQ(dropped.queue_wait_s, dropped.latency_s); // all of it waiting
  EXPECT_EQ(dropped.service_s, 0.0);
  EXPECT_EQ(dropped.predicted_energy_j, 0.0);

  // Exact reconciliation, counts and energy: ledger vs ServeStats vs the
  // summary JSON.
  std::uint64_t served = 0, shed = 0;
  double energy = 0.0;
  for (const RequestRecord& record : ledger.requests()) {
    (record.shed ? shed : served) += 1;
    if (!record.shed) {
      energy += record.predicted_energy_j;
    }
  }
  EXPECT_EQ(served, stats.served);
  EXPECT_EQ(shed, stats.shed);
  EXPECT_EQ(served + shed, stats.requests);
  EXPECT_EQ(energy, stats.predicted_energy_j);

  const json::Value summary = ledger.to_json(true).at("summary");
  EXPECT_EQ(summary.at("requests").at("count").as_number(), 3.0);
  EXPECT_EQ(summary.at("requests").at("served").as_number(),
            static_cast<double>(stats.served));
  EXPECT_EQ(summary.at("requests").at("shed").as_number(), 1.0);
  EXPECT_EQ(summary.at("requests").at("miss_causes").at("shed").as_number(),
            1.0);
  EXPECT_EQ(summary.at("requests").at("predicted_energy_j").as_number(),
            stats.predicted_energy_j);
  EXPECT_EQ(summary.at("requests")
                .at("energy_by_application")
                .at("cronos")
                .as_number(),
            stats.energy_by_application.at("cronos"));
}

JobRecord completed_job(std::uint64_t index, double energy,
                        bool missed = false,
                        MissCause cause = MissCause::kNone) {
  JobRecord job;
  job.index = index;
  job.id = derive_record_id("job", index);
  job.application = "ligen";
  job.model = "ligen/v100@test";
  job.rank = 0;
  job.arrival_s = static_cast<double>(index);
  job.start_s = job.arrival_s;
  job.true_time_s = 1.0;
  job.true_energy_j = energy;
  job.predicted_time_s = 1.1;
  job.predicted_energy_j = energy * 0.9;
  job.time_residual = 0.1;
  job.energy_residual = 0.1;
  job.finish_s = job.start_s + job.true_time_s;
  job.deadline_s = job.arrival_s + 2.0;
  job.slack_consumed = 0.5;
  job.missed = missed;
  job.cause = cause;
  return job;
}

TEST(LedgerTest, JobSummaryAccountingOverHandBuiltRecords) {
  Ledger ledger;
  ledger.add(completed_job(0, 100.0));
  ledger.add(completed_job(1, 50.0, /*missed=*/true,
                           MissCause::kPlacement));
  JobRecord rejected;
  rejected.index = 2;
  rejected.id = derive_record_id("job", 2);
  rejected.application = "ligen";
  rejected.model = "ligen/v100@test";
  rejected.rejected = true;
  rejected.infeasible = true;
  rejected.missed = true;
  rejected.cause = MissCause::kInfeasible;
  ledger.add(rejected);

  const json::Value summary = ledger.to_json(true).at("summary");
  const json::Value& jobs = summary.at("jobs");
  EXPECT_EQ(jobs.at("count").as_number(), 3.0);
  EXPECT_EQ(jobs.at("completed").as_number(), 2.0);
  EXPECT_EQ(jobs.at("rejected").as_number(), 1.0);
  EXPECT_EQ(jobs.at("infeasible").as_number(), 1.0);
  EXPECT_EQ(jobs.at("missed").as_number(), 2.0); // late + rejected
  EXPECT_EQ(jobs.at("true_energy_j").as_number(), 150.0);
  EXPECT_EQ(jobs.at("energy_by_application").at("ligen").as_number(), 150.0);
  EXPECT_EQ(jobs.at("miss_causes").at("placement").as_number(), 1.0);
  EXPECT_EQ(jobs.at("miss_causes").at("infeasible").as_number(), 1.0);
  EXPECT_EQ(jobs.at("miss_causes").at("none").as_number(), 1.0);
  // Rejected jobs never executed: the drift fold sees only the two
  // completed records.
  EXPECT_EQ(summary.at("drift").as_array().size(), 1u);
  EXPECT_EQ(summary.at("drift").as_array()[0].at("samples").as_number(),
            2.0);
  // The deadline SLO sees every job; 2 of 3 violate.
  EXPECT_EQ(jobs.at("slo").at("events").as_number(), 3.0);
  EXPECT_EQ(jobs.at("slo").at("violations").as_number(), 2.0);
}

TEST(LedgerTest, SummaryDigestPinsEveryRecordByte) {
  Ledger a;
  Ledger b;
  a.add(completed_job(0, 100.0));
  b.add(completed_job(0, 100.0));
  const auto digest = [](const Ledger& ledger) {
    return ledger.to_json(true)
        .at("summary")
        .at("records_digest")
        .as_string();
  };
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_EQ(a.to_json(true).dump(2), b.to_json(true).dump(2));

  Ledger c;
  JobRecord tweaked = completed_job(0, 100.0);
  tweaked.true_energy_j += 1e-9; // any field change moves the digest
  c.add(tweaked);
  EXPECT_NE(digest(a), digest(c));

  // The summary view drops the record arrays; the full view keeps them.
  EXPECT_EQ(a.to_json(true).find("jobs"), nullptr);
  ASSERT_NE(a.to_json(false).find("jobs"), nullptr);
  EXPECT_EQ(a.to_json(false).at("jobs").as_array().size(), 1u);
}

TEST(LedgerTest, GlobalRecordRespectsEnableSwitch) {
  set_enabled(false);
  Ledger::global().clear();
  record(RequestRecord{});
  EXPECT_TRUE(Ledger::global().requests().empty());

  set_enabled(true);
  RequestRecord on;
  on.index = 7;
  record(on);
  set_enabled(false);
  ASSERT_EQ(Ledger::global().requests().size(), 1u);
  EXPECT_EQ(Ledger::global().requests().front().index, 7u);
  Ledger::global().clear();
  EXPECT_TRUE(Ledger::global().requests().empty());
}

TEST(LedgerTest, DisabledLedgerOverheadStaysNegligible) {
  ASSERT_FALSE(enabled());
  Ledger::global().clear();
  // The disabled fast path is one relaxed atomic load + branch per call
  // site (a few ns). The bound is two orders of magnitude above that so
  // CI noise, sanitizers, or debug builds cannot trip it — it catches a
  // regression that puts real work (locking, allocation, serialization)
  // on the disabled path.
  constexpr int kIters = 200'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    RequestRecord request;
    request.index = static_cast<std::uint64_t>(i);
    record(std::move(request));
    JobRecord job;
    job.index = static_cast<std::uint64_t>(i);
    record(std::move(job));
  }
  const double elapsed_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  const double ns_per_iter = elapsed_ns / kIters;
  EXPECT_LT(ns_per_iter, 1000.0) << "disabled-path cost regressed";
  EXPECT_TRUE(Ledger::global().requests().empty());
  EXPECT_TRUE(Ledger::global().jobs().empty());
}

} // namespace
} // namespace dsem::obs
