#include "ligen/protein.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::ligen {
namespace {

TEST(PotentialGrid, ExactAtLatticePoints) {
  PotentialGrid grid({0, 0, 0}, 1.0, 3, 3, 3);
  grid.at(1, 2, 0) = 7.5;
  EXPECT_DOUBLE_EQ(grid.sample({1.0, 2.0, 0.0}), 7.5);
}

TEST(PotentialGrid, TrilinearInterpolationIsLinearAlongAxes) {
  PotentialGrid grid({0, 0, 0}, 1.0, 2, 2, 2);
  grid.at(0, 0, 0) = 0.0;
  grid.at(1, 0, 0) = 10.0;
  EXPECT_NEAR(grid.sample({0.25, 0.0, 0.0}), 2.5, 1e-12);
  EXPECT_NEAR(grid.sample({0.5, 0.0, 0.0}), 5.0, 1e-12);
}

TEST(PotentialGrid, ClampsOutsideBox) {
  PotentialGrid grid({0, 0, 0}, 1.0, 2, 2, 2);
  grid.at(0, 0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(grid.sample({-100.0, -100.0, -100.0}), 3.0);
}

TEST(PotentialGrid, RejectsDegenerate) {
  EXPECT_THROW(PotentialGrid({0, 0, 0}, 0.0, 2, 2, 2), contract_error);
  EXPECT_THROW(PotentialGrid({0, 0, 0}, 1.0, 1, 2, 2), contract_error);
}

TEST(Protein, GeneratedPocketHasRequestedShape) {
  const Protein p = Protein::generate_pocket(1, 120, 7.0);
  EXPECT_EQ(p.atoms().size(), 120u);
  EXPECT_DOUBLE_EQ(p.pocket_radius(), 7.0);
  for (const ProteinAtom& atom : p.atoms()) {
    const double r = distance(atom.position, p.pocket_center());
    EXPECT_GT(r, 7.0 * 0.9);
    EXPECT_LT(r, 7.0 * 1.2);
  }
}

TEST(Protein, DeterministicPerSeed) {
  const Protein a = Protein::generate_pocket(42);
  const Protein b = Protein::generate_pocket(42);
  EXPECT_DOUBLE_EQ(a.atoms()[10].position.x, b.atoms()[10].position.x);
  EXPECT_DOUBLE_EQ(a.steric({1.0, 2.0, 3.0}), b.steric({1.0, 2.0, 3.0}));
}

TEST(Protein, CavityCenterIsStericallyFavourable) {
  const Protein p = Protein::generate_pocket(7);
  // The centre of the cavity is attractive (negative), while a point on
  // top of a lining atom is strongly repulsive.
  EXPECT_LT(p.steric(p.pocket_center()), 0.0);
  EXPECT_GT(p.steric(p.atoms().front().position), 5.0);
}

TEST(Protein, StericRisesTowardTheLining) {
  const Protein p = Protein::generate_pocket(8);
  const Vec3 center = p.pocket_center();
  const Vec3 toward = p.atoms().front().position;
  const Vec3 dir = (toward - center).normalized();
  const double near_atom =
      p.steric(toward - dir * 0.5); // half an angstrom inside the atom shell
  EXPECT_GT(near_atom, p.steric(center));
}

TEST(Protein, ElectrostaticFieldIsBounded) {
  const Protein p = Protein::generate_pocket(9);
  for (double x = -6.0; x <= 6.0; x += 2.0) {
    const double e = p.electrostatic({x, 0.0, 0.0});
    EXPECT_LT(std::abs(e), 10.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST(Protein, ValidationOfParameters) {
  EXPECT_THROW(Protein::generate_pocket(1, 4), contract_error);
  EXPECT_THROW(Protein::generate_pocket(1, 100, 1.0), contract_error);
}

} // namespace
} // namespace dsem::ligen
