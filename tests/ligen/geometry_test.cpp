#include "ligen/geometry.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

namespace dsem::ligen {
namespace {

constexpr double kEps = 1e-10;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5.0);
  EXPECT_DOUBLE_EQ((a - b).y, -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).z, 6.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossProductOrthogonal) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  const Vec3 z = x.cross(y);
  EXPECT_NEAR(z.z, 1.0, kEps);
  EXPECT_NEAR(z.dot(x), 0.0, kEps);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, kEps);
}

TEST(Vec3, NormalizeZeroVectorFallsBack) {
  const Vec3 zero{};
  EXPECT_NEAR(zero.normalized().norm(), 1.0, kEps);
}

TEST(RotateAboutAxis, QuarterTurnAboutZ) {
  const Vec3 p{1.0, 0.0, 0.0};
  const Vec3 r = rotate_about_axis(p, {0, 0, 0}, {0, 0, 1},
                                   std::numbers::pi / 2.0);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
}

TEST(RotateAboutAxis, PreservesDistanceToAxis) {
  const Vec3 origin{1.0, 2.0, 3.0};
  const Vec3 axis = Vec3{1.0, 1.0, 0.0}.normalized();
  const Vec3 p{4.0, -1.0, 2.0};
  for (double angle : {0.3, 1.2, 2.9}) {
    const Vec3 r = rotate_about_axis(p, origin, axis, angle);
    const Vec3 d0 = p - origin;
    const Vec3 d1 = r - origin;
    EXPECT_NEAR(d0.norm(), d1.norm(), kEps);
    EXPECT_NEAR(d0.dot(axis), d1.dot(axis), kEps);
  }
}

TEST(RotateAboutAxis, FullTurnIsIdentity) {
  const Vec3 p{0.5, -0.7, 1.1};
  const Vec3 r = rotate_about_axis(p, {1, 1, 1}, {0, 1, 0},
                                   2.0 * std::numbers::pi);
  EXPECT_NEAR(r.x, p.x, kEps);
  EXPECT_NEAR(r.y, p.y, kEps);
  EXPECT_NEAR(r.z, p.z, kEps);
}

TEST(Centroid, AveragesPoints) {
  const std::vector<Vec3> pts = {{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}};
  const Vec3 c = centroid(pts);
  EXPECT_NEAR(c.x, 0.5, kEps);
  EXPECT_NEAR(c.y, 0.5, kEps);
  EXPECT_NEAR(c.z, 0.5, kEps);
}

TEST(Covariance, DiagonalForAxisAlignedSpread) {
  std::vector<Vec3> pts;
  for (int i = -5; i <= 5; ++i) {
    pts.push_back({static_cast<double>(i), 0.0, 0.0});
  }
  const Mat3 m = covariance(pts);
  EXPECT_GT(m[0][0], 1.0);
  EXPECT_NEAR(m[1][1], 0.0, kEps);
  EXPECT_NEAR(m[0][1], 0.0, kEps);
}

TEST(EigenSymmetric, RecoversKnownEigenvalues) {
  // diag(3, 2, 1) has trivially known decomposition.
  const Mat3 m = {{{3, 0, 0}, {0, 2, 0}, {0, 0, 1}}};
  const EigenResult e = eigen_symmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-9);
  EXPECT_NEAR(e.values[1], 2.0, 1e-9);
  EXPECT_NEAR(e.values[2], 1.0, 1e-9);
  EXPECT_NEAR(std::abs(e.vectors[0].x), 1.0, 1e-9);
}

TEST(EigenSymmetric, OffDiagonalCase) {
  // [[2,1],[1,2]] block: eigenvalues 3 and 1.
  const Mat3 m = {{{2, 1, 0}, {1, 2, 0}, {0, 0, 5}}};
  const EigenResult e = eigen_symmetric(m);
  EXPECT_NEAR(e.values[0], 5.0, 1e-9);
  EXPECT_NEAR(e.values[1], 3.0, 1e-9);
  EXPECT_NEAR(e.values[2], 1.0, 1e-9);
}

TEST(EigenSymmetric, VectorsAreOrthonormal) {
  const Mat3 m = {{{4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}}};
  const EigenResult e = eigen_symmetric(m);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(e.vectors[static_cast<std::size_t>(i)].norm(), 1.0, 1e-9);
    for (int j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(e.vectors[static_cast<std::size_t>(i)].dot(
                      e.vectors[static_cast<std::size_t>(j)]),
                  0.0, 1e-9);
    }
  }
}

TEST(RotateAlign, MapsFromOntoTo) {
  const Vec3 from{1.0, 0.0, 0.0};
  const Vec3 to = Vec3{1.0, 1.0, 1.0}.normalized();
  const Vec3 r = rotate_align(from, {0, 0, 0}, from, to);
  EXPECT_NEAR(r.x, to.x, 1e-9);
  EXPECT_NEAR(r.y, to.y, 1e-9);
  EXPECT_NEAR(r.z, to.z, 1e-9);
}

TEST(RotateAlign, ParallelVectorsNoop) {
  const Vec3 p{2.0, 3.0, 4.0};
  const Vec3 r = rotate_align(p, {0, 0, 0}, {0, 0, 1}, {0, 0, 1});
  EXPECT_NEAR(r.x, p.x, kEps);
}

TEST(RotateAlign, AntiparallelVectorsReverse) {
  const Vec3 p{0.0, 0.0, 1.0};
  const Vec3 r = rotate_align(p, {0, 0, 0}, {0, 0, 1}, {0, 0, -1});
  EXPECT_NEAR(r.z, -1.0, 1e-9);
}

} // namespace
} // namespace dsem::ligen
