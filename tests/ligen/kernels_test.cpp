#include "ligen/kernels.hpp"

#include <gtest/gtest.h>

namespace dsem::ligen {
namespace {

TEST(LigenKernels, ProfilesAreValid) {
  for (int atoms : {31, 89}) {
    for (int frags : {4, 20}) {
      EXPECT_NO_THROW(sim::validate(dock_profile(atoms, frags, {})));
    }
    EXPECT_NO_THROW(sim::validate(score_profile(atoms, {})));
  }
}

TEST(LigenKernels, DockIsComputeBoundOnV100) {
  // The defining property of the LiGen workload in the paper.
  const auto spec = sim::v100();
  const auto profile = dock_profile(89, 20, {});
  const auto b = sim::execute(spec, profile, 10000, 1312.0);
  EXPECT_GT(b.compute_s, 10.0 * b.mem_s);
}

TEST(LigenKernels, CostScalesLinearlyInFragments) {
  const double f4 = dock_profile(89, 4, {}).flops();
  const double f8 = dock_profile(89, 8, {}).flops();
  const double f16 = dock_profile(89, 16, {}).flops();
  EXPECT_NEAR(f8 / f4, 2.0, 0.1);
  EXPECT_NEAR(f16 / f8, 2.0, 0.1);
}

TEST(LigenKernels, CostScalesLinearlyInAtoms) {
  const double a31 = dock_profile(31, 8, {}).flops();
  const double a62 = dock_profile(62, 8, {}).flops();
  EXPECT_NEAR(a62 / a31, 2.0, 0.1);
}

TEST(LigenKernels, CostScalesWithDockingParams) {
  DockingParams heavy;
  heavy.num_restart = 16;
  const double base = dock_profile(31, 4, {}).flops();
  const double doubled = dock_profile(31, 4, heavy).flops();
  EXPECT_GT(doubled, base * 1.8);
}

TEST(LigenKernels, IntraItemParallelismScalesWithAtoms) {
  const auto small = dock_profile(10, 2, {});
  const auto large = dock_profile(80, 2, {});
  EXPECT_GT(large.intra_item_parallelism, small.intra_item_parallelism * 4.0);
  EXPECT_GE(small.intra_item_parallelism, 1.0);
}

TEST(LigenKernels, SubmitBatchesCoversAllLigands) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue queue(device);
  submit_screening_kernels(queue, 10000, 31, 4, {}, 4096);
  // ceil(10000/4096) = 3 batches x 2 kernels.
  ASSERT_EQ(queue.records().size(), 6u);
  std::size_t docked = 0;
  for (const auto& r : queue.records()) {
    if (r.kernel_name == "ligen::dock") {
      docked += r.work_items;
    }
  }
  EXPECT_EQ(docked, 10000u);
}

TEST(LigenKernels, MoreLigandsCostMoreEnergy) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue q_small(device);
  submit_screening_kernels(q_small, 256, 31, 4, {});
  synergy::Queue q_large(device);
  submit_screening_kernels(q_large, 10000, 31, 4, {});
  EXPECT_GT(q_large.total_energy_j(), q_small.total_energy_j() * 5.0);
}

} // namespace
} // namespace dsem::ligen
