#include "ligen/dock.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::ligen {
namespace {

class DockTest : public ::testing::Test {
protected:
  DockTest()
      : protein_(Protein::generate_pocket(0xBEEF)), engine_(protein_) {}

  Ligand make_ligand(int atoms = 31, int frags = 4, std::uint64_t seed = 1) {
    Rng rng(seed);
    return generate_ligand(atoms, frags, rng);
  }

  Protein protein_;
  DockingEngine engine_;
};

TEST_F(DockTest, ParamsValidated) {
  DockingParams bad;
  bad.num_restart = 0;
  EXPECT_THROW(validate(bad), contract_error);
  bad = DockingParams{};
  bad.angle_steps = 1;
  EXPECT_THROW(validate(bad), contract_error);
}

TEST_F(DockTest, InitializePoseIsRigid) {
  const Ligand lig = make_ligand();
  const Pose pose = engine_.initialize_pose(lig, 0, 123);
  ASSERT_EQ(pose.positions.size(), lig.atoms().size());
  // Rigid transform: all pairwise distances preserved.
  const auto orig = lig.positions();
  for (std::size_t i = 0; i < orig.size(); i += 7) {
    for (std::size_t j = i + 1; j < orig.size(); j += 5) {
      EXPECT_NEAR(distance(pose.positions[i], pose.positions[j]),
                  distance(orig[i], orig[j]), 1e-9);
    }
  }
}

TEST_F(DockTest, InitializePoseDeterministicPerRestart) {
  const Ligand lig = make_ligand();
  const Pose a = engine_.initialize_pose(lig, 3, 55);
  const Pose b = engine_.initialize_pose(lig, 3, 55);
  EXPECT_DOUBLE_EQ(a.positions[10].x, b.positions[10].x);
  const Pose c = engine_.initialize_pose(lig, 4, 55);
  EXPECT_NE(a.positions[10].x, c.positions[10].x);
}

TEST_F(DockTest, AlignCentersLigandInPocket) {
  const Ligand lig = make_ligand();
  Pose pose = engine_.initialize_pose(lig, 0, 9);
  engine_.align(pose);
  const Vec3 c = centroid(pose.positions);
  const Vec3 target =
      protein_.pocket_center() - protein_.pocket_axis() * 1.0;
  EXPECT_NEAR(distance(c, target), 0.0, 1e-9);
}

TEST_F(DockTest, AlignIsRigid) {
  const Ligand lig = make_ligand();
  Pose pose = engine_.initialize_pose(lig, 0, 10);
  const double d_before = distance(pose.positions[0], pose.positions[20]);
  engine_.align(pose);
  EXPECT_NEAR(distance(pose.positions[0], pose.positions[20]), d_before,
              1e-9);
}

TEST_F(DockTest, OptimizeFragmentPreservesBondGeometry) {
  const Ligand lig = make_ligand(40, 8, 3);
  Pose pose = engine_.initialize_pose(lig, 0, 11);
  engine_.align(pose);
  engine_.optimize_fragment(pose, lig, lig.rotamers()[0]);
  // Every bond length survives the fragment rotation.
  for (const Bond& b : lig.bonds()) {
    const double d = distance(pose.positions[static_cast<std::size_t>(b.a)],
                              pose.positions[static_cast<std::size_t>(b.b)]);
    EXPECT_NEAR(d, 1.5, 1e-9) << "bond " << b.a << "-" << b.b;
  }
}

TEST_F(DockTest, OptimizeFragmentOnlyMovesMovingSet) {
  const Ligand lig = make_ligand(40, 8, 4);
  Pose pose = engine_.initialize_pose(lig, 0, 12);
  engine_.align(pose);
  const Pose before = pose;
  const Rotamer& rot = lig.rotamers()[0];
  engine_.optimize_fragment(pose, lig, rot);
  std::set<int> moving(rot.moving_atoms.begin(), rot.moving_atoms.end());
  for (std::size_t i = 0; i < pose.positions.size(); ++i) {
    if (!moving.contains(static_cast<int>(i))) {
      EXPECT_DOUBLE_EQ(pose.positions[i].x, before.positions[i].x)
          << "static atom " << i << " moved";
    }
  }
}

TEST_F(DockTest, OptimizeFragmentNeverWorsensFragmentScore) {
  const Ligand lig = make_ligand(50, 10, 5);
  Pose pose = engine_.initialize_pose(lig, 0, 13);
  engine_.align(pose);
  for (const Rotamer& rot : lig.rotamers()) {
    const double before = engine_.evaluate(pose);
    Pose trial = pose;
    engine_.optimize_fragment(trial, lig, rot);
    // Whole-pose evaluate can only improve or stay: only the fragment's
    // steric contribution changes and the optimizer includes angle 0.
    EXPECT_GE(engine_.evaluate(trial), before - 1e-9);
    pose = trial;
  }
}

TEST_F(DockTest, DockReturnsSortedClippedPoses) {
  const Ligand lig = make_ligand();
  const auto poses = engine_.dock(lig, 77);
  ASSERT_LE(poses.size(),
            static_cast<std::size_t>(engine_.params().max_num_poses));
  ASSERT_GE(poses.size(), 1u);
  for (std::size_t i = 1; i < poses.size(); ++i) {
    EXPECT_GE(poses[i - 1].score, poses[i].score);
  }
}

TEST_F(DockTest, DockedPosesBeatRandomPlacement) {
  const Ligand lig = make_ligand();
  const auto poses = engine_.dock(lig, 88);
  // A pose left far outside the pocket scores poorly.
  Pose outside;
  outside.positions = lig.positions();
  for (Vec3& p : outside.positions) {
    p += Vec3{30.0, 30.0, 30.0};
  }
  EXPECT_GT(poses.front().score, engine_.evaluate(outside));
}

TEST_F(DockTest, ScorePicksBestPose) {
  const Ligand lig = make_ligand();
  const auto poses = engine_.dock(lig, 99);
  const double best = engine_.score(lig, poses);
  for (const Pose& pose : poses) {
    EXPECT_GE(best, engine_.compute_score(pose, lig) - 1e-12);
  }
}

TEST_F(DockTest, DockAndScoreDeterministic) {
  const Ligand lig = make_ligand();
  EXPECT_DOUBLE_EQ(engine_.dock_and_score(lig, 123),
                   engine_.dock_and_score(lig, 123));
}

TEST_F(DockTest, DifferentSeedsExploreDifferentPoses) {
  const Ligand lig = make_ligand();
  EXPECT_NE(engine_.dock_and_score(lig, 1), engine_.dock_and_score(lig, 2));
}

TEST_F(DockTest, ClashPenaltyReducesRefinedScore) {
  const Ligand lig = make_ligand(20, 1, 6);
  Pose folded;
  folded.positions = lig.positions();
  // Collapse all atoms near one point: heavy intra-ligand clash.
  for (std::size_t i = 0; i < folded.positions.size(); ++i) {
    folded.positions[i] = Vec3{0.05 * static_cast<double>(i), 0.0, 0.0};
  }
  Pose spread;
  spread.positions = lig.positions();
  EXPECT_LT(engine_.compute_score(folded, lig),
            engine_.compute_score(spread, lig));
}

TEST_F(DockTest, ScoreWithNoPosesThrows) {
  const Ligand lig = make_ligand();
  EXPECT_THROW(engine_.score(lig, {}), contract_error);
}

} // namespace
} // namespace dsem::ligen
