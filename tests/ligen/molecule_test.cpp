#include "ligen/molecule.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::ligen {
namespace {

TEST(GenerateLigand, HasRequestedStructure) {
  Rng rng(1);
  const Ligand lig = generate_ligand(31, 4, rng);
  EXPECT_EQ(lig.num_atoms(), 31);
  EXPECT_EQ(lig.num_fragments(), 4);
  EXPECT_EQ(lig.rotamers().size(), 3u);
  EXPECT_EQ(lig.bonds().size(), 30u);
}

TEST(GenerateLigand, PaperSizesAllGeneratable) {
  // Every (atoms, fragments) combination of the paper's experiment grid.
  for (int atoms : {31, 63, 71, 74, 89}) {
    for (int frags : {4, 8, 16, 20}) {
      Rng rng(static_cast<std::uint64_t>(atoms * 100 + frags));
      EXPECT_NO_THROW({
        const Ligand lig = generate_ligand(atoms, frags, rng);
        validate(lig);
      }) << atoms << "x" << frags;
    }
  }
}

TEST(GenerateLigand, BondLengthsArePhysical) {
  Rng rng(2);
  const Ligand lig = generate_ligand(40, 6, rng);
  for (const Bond& b : lig.bonds()) {
    const double d = distance(lig.atoms()[static_cast<std::size_t>(b.a)].position,
                              lig.atoms()[static_cast<std::size_t>(b.b)].position);
    EXPECT_NEAR(d, 1.5, 1e-9);
  }
}

TEST(GenerateLigand, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  const Ligand la = generate_ligand(25, 3, a);
  const Ligand lb = generate_ligand(25, 3, b);
  for (int i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(la.atoms()[static_cast<std::size_t>(i)].position.x,
                     lb.atoms()[static_cast<std::size_t>(i)].position.x);
  }
}

TEST(GenerateLigand, RotamerMovingSetsAreProperSubsets) {
  Rng rng(3);
  const Ligand lig = generate_ligand(50, 8, rng);
  for (const Rotamer& rot : lig.rotamers()) {
    EXPECT_GE(rot.moving_atoms.size(), 1u);
    EXPECT_LT(rot.moving_atoms.size(), static_cast<std::size_t>(50));
    // Moving set excludes the bond's base atom.
    const Bond& bond = lig.bonds()[static_cast<std::size_t>(rot.bond)];
    EXPECT_EQ(std::count(rot.moving_atoms.begin(), rot.moving_atoms.end(),
                         bond.a),
              0);
    EXPECT_EQ(std::count(rot.moving_atoms.begin(), rot.moving_atoms.end(),
                         bond.b),
              1);
  }
}

TEST(GenerateLigand, SingleFragmentHasNoRotamers) {
  Rng rng(4);
  const Ligand lig = generate_ligand(10, 1, rng);
  EXPECT_TRUE(lig.rotamers().empty());
}

TEST(GenerateLigand, TooManyFragmentsThrows) {
  Rng rng(5);
  EXPECT_THROW(generate_ligand(4, 10, rng), contract_error);
}

TEST(GenerateLigand, MinimumSizeValidation) {
  Rng rng(6);
  EXPECT_THROW(generate_ligand(1, 1, rng), contract_error);
  EXPECT_THROW(generate_ligand(10, 0, rng), contract_error);
}

TEST(GenerateLibrary, CountAndUniformStructure) {
  const auto lib = generate_library(20, 31, 4, 99);
  ASSERT_EQ(lib.size(), 20u);
  for (const Ligand& lig : lib) {
    EXPECT_EQ(lig.num_atoms(), 31);
    EXPECT_EQ(lig.num_fragments(), 4);
  }
}

TEST(GenerateLibrary, LigandsAreIndividuallyVaried) {
  const auto lib = generate_library(5, 20, 3, 7);
  bool any_diff = false;
  for (std::size_t i = 1; i < lib.size() && !any_diff; ++i) {
    any_diff = lib[i].atoms()[5].position.x != lib[0].atoms()[5].position.x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateLibrary, DeterministicPerSeed) {
  const auto a = generate_library(3, 15, 2, 11);
  const auto b = generate_library(3, 15, 2, 11);
  EXPECT_DOUBLE_EQ(a[2].atoms()[7].position.y, b[2].atoms()[7].position.y);
}

TEST(ValidateLigand, DetectsBrokenRotamer) {
  Rng rng(8);
  Ligand good = generate_ligand(12, 3, rng);
  auto atoms = good.atoms();
  auto bonds = good.bonds();
  auto rotamers = good.rotamers();
  rotamers[0].moving_atoms.pop_back(); // corrupt the split
  EXPECT_THROW(Ligand("bad", atoms, bonds, rotamers), contract_error);
}

TEST(ValidateLigand, DetectsNonTreeBonds) {
  std::vector<Atom> atoms(3);
  atoms[0].position = {0, 0, 0};
  atoms[1].position = {1.5, 0, 0};
  atoms[2].position = {3.0, 0, 0};
  // Only one bond for three atoms: disconnected.
  EXPECT_THROW(Ligand("bad", atoms, {{0, 1}}, {}), contract_error);
}

TEST(Elements, RadiiAreChemical) {
  EXPECT_GT(vdw_radius(Element::kS), vdw_radius(Element::kO));
  EXPECT_GT(vdw_radius(Element::kC), vdw_radius(Element::kH));
  EXPECT_EQ(to_string(Element::kC), "C");
  EXPECT_EQ(to_string(Element::kN), "N");
}

} // namespace
} // namespace dsem::ligen
