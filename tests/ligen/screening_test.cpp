#include "ligen/screening.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ligen/kernels.hpp"

namespace dsem::ligen {
namespace {

class ScreeningTest : public ::testing::Test {
protected:
  ScreeningTest()
      : protein_(Protein::generate_pocket(0xF00D)),
        sim_dev_(sim::v100(), sim::NoiseConfig::none()), device_(sim_dev_) {}

  Protein protein_;
  sim::Device sim_dev_;
  synergy::Device device_;
};

TEST_F(ScreeningTest, HostRunScoresEveryLigand) {
  const auto lib = generate_library(12, 20, 3, 5);
  VirtualScreen screen(protein_);
  const auto result = screen.run_host(lib);
  ASSERT_EQ(result.scores.size(), 12u);
  for (double s : result.scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_F(ScreeningTest, HostRunDeterministic) {
  const auto lib = generate_library(6, 20, 3, 6);
  VirtualScreen screen(protein_);
  const auto a = screen.run_host(lib, 42);
  const auto b = screen.run_host(lib, 42);
  EXPECT_EQ(a.scores, b.scores);
}

TEST_F(ScreeningTest, RankingSortsByScoreDescending) {
  ScreeningResult result;
  result.scores = {0.5, 2.0, -1.0, 1.0};
  const auto order = result.ranking();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 2u);
}

TEST_F(ScreeningTest, ValidateModeProducesSameScoresAsHostRun) {
  const auto lib = generate_library(8, 20, 3, 7);
  VirtualScreen screen(protein_);
  synergy::Queue queue(device_, synergy::ExecMode::kValidate);
  const auto via_queue = screen.run(lib, queue, 42);
  const auto direct = screen.run_host(lib, 42);
  ASSERT_EQ(via_queue.scores.size(), direct.scores.size());
  for (std::size_t i = 0; i < direct.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_queue.scores[i], direct.scores[i]);
  }
}

TEST_F(ScreeningTest, SimOnlyLeavesScoresNaNButChargesDevice) {
  const auto lib = generate_library(4, 20, 3, 8);
  VirtualScreen screen(protein_);
  synergy::Queue queue(device_, synergy::ExecMode::kSimOnly);
  const auto result = screen.run(lib, queue);
  for (double s : result.scores) {
    EXPECT_TRUE(std::isnan(s));
  }
  EXPECT_GT(queue.total_energy_j(), 0.0);
}

TEST_F(ScreeningTest, SubmitsDockAndScorePerBatch) {
  const auto lib = generate_library(10, 20, 3, 9);
  VirtualScreen screen(protein_, {}, /*batch_size=*/4);
  synergy::Queue queue(device_, synergy::ExecMode::kSimOnly);
  screen.run(lib, queue);
  // ceil(10/4) = 3 batches x 2 kernels.
  ASSERT_EQ(queue.records().size(), 6u);
  EXPECT_EQ(queue.records()[0].kernel_name, "ligen::dock");
  EXPECT_EQ(queue.records()[1].kernel_name, "ligen::score");
  EXPECT_EQ(queue.records()[0].work_items, 4u);
  EXPECT_EQ(queue.records()[4].work_items, 2u); // final partial batch
}

TEST_F(ScreeningTest, FastPathMatchesVirtualScreenSubmission) {
  const auto lib = generate_library(10, 20, 3, 10);
  VirtualScreen screen(protein_, {}, /*batch_size=*/4);
  synergy::Queue real_queue(device_, synergy::ExecMode::kSimOnly);
  screen.run(lib, real_queue);

  synergy::Queue fast_queue(device_, synergy::ExecMode::kSimOnly);
  submit_screening_kernels(fast_queue, 10, 20, 3, {}, 4);

  ASSERT_EQ(real_queue.records().size(), fast_queue.records().size());
  for (std::size_t i = 0; i < fast_queue.records().size(); ++i) {
    EXPECT_EQ(real_queue.records()[i].kernel_name,
              fast_queue.records()[i].kernel_name);
    EXPECT_EQ(real_queue.records()[i].work_items,
              fast_queue.records()[i].work_items);
  }
}

TEST_F(ScreeningTest, PlantedBinderRanksHighly) {
  // A compact ligand pre-seated in the pocket should outrank a library of
  // bulky, hard-to-fit ligands. Build the library with mixed sizes: small
  // ligands fit the cavity better than oversized ones.
  auto small = generate_library(3, 12, 2, 11);
  auto large = generate_library(3, 80, 2, 12);
  std::vector<Ligand> lib;
  lib.insert(lib.end(), small.begin(), small.end());
  lib.insert(lib.end(), large.begin(), large.end());
  VirtualScreen screen(protein_);
  const auto result = screen.run_host(lib, 13);
  // Best-scoring ligand should be one of the small ones.
  EXPECT_LT(result.ranking().front(), 3u);
}

TEST_F(ScreeningTest, EmptyLibraryThrows) {
  VirtualScreen screen(protein_);
  synergy::Queue queue(device_, synergy::ExecMode::kSimOnly);
  EXPECT_THROW(screen.run({}, queue), contract_error);
  EXPECT_THROW(screen.run_host({}), contract_error);
}

} // namespace
} // namespace dsem::ligen
