// Split-finder equivalence and determinism for the pre-sorted training
// path (DESIGN.md §7.10).
//
// `ReferenceTree` below is the seed algorithm verbatim — per-node copies
// of (value, target) pairs, std::sort, sequential candidate chain — kept
// here as the executable specification. The production tree must emit a
// bit-identical node array (features, thresholds, leaf means as exact
// doubles) on data engineered to stress the rewrite: heavy value ties,
// constant features, duplicated rows, feature subsampling, min-leaf
// boundaries.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/forest.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"

namespace dsem::ml {
namespace {

// --- Reference implementation (the seed's fit, verbatim) --------------------

class ReferenceTree {
public:
  explicit ReferenceTree(TreeParams params) : params_(params) {}

  void fit(const Matrix& x, std::span<const double> y) {
    nodes_.clear();
    depth_ = 0;
    std::vector<std::size_t> indices(x.rows());
    std::iota(indices.begin(), indices.end(), 0);
    Rng rng(params_.seed);
    build(x, y, indices, 0, indices.size(), 0, rng);
  }

  std::span<const TreeNode> nodes() const { return nodes_; }
  int depth() const { return depth_; }

private:
  std::int32_t build(const Matrix& x, std::span<const double> y,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth, Rng& rng) {
    depth_ = std::max(depth_, depth);
    const std::size_t n = end - begin;

    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double v = y[indices[i]];
      sum += v;
      sum_sq += v * v;
    }
    const double mean = sum / static_cast<double>(n);
    const double sse = sum_sq - sum * mean;

    const auto make_leaf = [&] {
      nodes_.push_back(TreeNode{-1, 0.0, -1, -1, mean});
      return static_cast<std::int32_t>(nodes_.size() - 1);
    };

    const bool depth_capped =
        params_.max_depth > 0 && depth >= params_.max_depth;
    if (n < static_cast<std::size_t>(params_.min_samples_split) ||
        depth_capped || sse <= 1e-12) {
      return make_leaf();
    }

    const std::size_t k = x.cols();
    std::vector<std::size_t> features(k);
    std::iota(features.begin(), features.end(), 0);
    std::size_t tries = k;
    if (params_.max_features > 0 &&
        static_cast<std::size_t>(params_.max_features) < k) {
      tries = static_cast<std::size_t>(params_.max_features);
      for (std::size_t i = 0; i < tries; ++i) {
        const std::size_t j = i + rng.uniform_int(k - i);
        std::swap(features[i], features[j]);
      }
    }

    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = sse;
    const auto min_leaf = static_cast<std::size_t>(params_.min_samples_leaf);

    std::vector<std::pair<double, double>> column(n);
    for (std::size_t fi = 0; fi < tries; ++fi) {
      const std::size_t f = features[fi];
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = indices[begin + i];
        column[i] = {x(idx, f), y[idx]};
      }
      std::sort(column.begin(), column.end());
      if (column.front().first == column.back().first) {
        continue;
      }
      double left_sum = 0.0;
      double left_sq = 0.0;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left_sum += column[i].second;
        left_sq += column[i].second * column[i].second;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < min_leaf || nr < min_leaf) {
          continue;
        }
        if (column[i].first == column[i + 1].first) {
          continue;
        }
        const double right_sum = sum - left_sum;
        const double right_sq = sum_sq - left_sq;
        const double sse_left =
            left_sq - left_sum * left_sum / static_cast<double>(nl);
        const double sse_right =
            right_sq - right_sum * right_sum / static_cast<double>(nr);
        const double score = sse_left + sse_right;
        if (score < best_score - 1e-12) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }

    if (best_feature < 0) {
      return make_leaf();
    }

    const auto mid_it =
        std::partition(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                       indices.begin() + static_cast<std::ptrdiff_t>(end),
                       [&](std::size_t idx) {
                         return x(idx, static_cast<std::size_t>(
                                           best_feature)) <= best_threshold;
                       });
    const auto mid = static_cast<std::size_t>(mid_it - indices.begin());

    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(TreeNode{best_feature, best_threshold, -1, -1, mean});
    const std::int32_t left = build(x, y, indices, begin, mid, depth + 1, rng);
    const std::int32_t right = build(x, y, indices, mid, end, depth + 1, rng);
    nodes_[static_cast<std::size_t>(node_id)].left = left;
    nodes_[static_cast<std::size_t>(node_id)].right = right;
    return node_id;
  }

  TreeParams params_;
  std::vector<TreeNode> nodes_;
  int depth_ = 0;
};

// Random dataset with engineered pathologies: values snapped to a coarse
// grid (ties within and across rows), one constant feature, one feature
// duplicating another, and occasional duplicated targets.
std::pair<Matrix, std::vector<double>> tricky_data(std::size_t n,
                                                   std::size_t k,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, k);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      // ~8 distinct values per feature: plenty of exact ties.
      x(i, j) = std::floor(rng.uniform(0.0, 8.0));
    }
    if (k >= 2) {
      x(i, k - 2) = 3.5; // constant feature
    }
    if (k >= 3) {
      x(i, k - 1) = x(i, 0); // duplicate of feature 0
    }
    y[i] = x(i, 0) * 2.0 - x(i, 1 % k) + std::floor(rng.uniform(0.0, 4.0));
  }
  return {std::move(x), std::move(y)};
}

void expect_identical_trees(const ReferenceTree& ref,
                            const DecisionTreeRegressor& tree,
                            std::uint64_t seed) {
  ASSERT_EQ(ref.nodes().size(), tree.node_count()) << "seed " << seed;
  EXPECT_EQ(ref.depth(), tree.depth()) << "seed " << seed;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const TreeNode& a = ref.nodes()[i];
    const TreeNode& b = tree.nodes()[i];
    ASSERT_EQ(a.feature, b.feature) << "node " << i << " seed " << seed;
    ASSERT_EQ(a.left, b.left) << "node " << i << " seed " << seed;
    ASSERT_EQ(a.right, b.right) << "node " << i << " seed " << seed;
    // Bitwise: thresholds and leaf means must be the exact same doubles.
    ASSERT_EQ(a.threshold, b.threshold) << "node " << i << " seed " << seed;
    ASSERT_EQ(a.value, b.value) << "node " << i << " seed " << seed;
  }
}

// --- Equivalence property tests ---------------------------------------------

TEST(TreePresort, MatchesReferenceOnRandomTrickyData) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::size_t n = 20 + static_cast<std::size_t>(seed % 7) * 33;
    const std::size_t k = 3 + seed % 3;

    TreeParams params;
    params.seed = seed * 17;
    if (seed % 3 == 1) {
      params.min_samples_leaf = 3;
    }
    if (seed % 4 == 2) {
      params.max_depth = 4;
    }
    if (seed % 5 == 3) {
      params.max_features = 2; // exercises the RNG subsampling path
    }

    const auto [x, y] = tricky_data(n, k, seed);
    ReferenceTree ref(params);
    ref.fit(x, y);
    DecisionTreeRegressor tree(params);
    tree.fit(x, y);
    expect_identical_trees(ref, tree, seed);

    // Same traversal, same leaves: predictions are bit-identical too.
    for (std::size_t r = 0; r < x.rows(); ++r) {
      double out = 0.0;
      std::size_t node = 0;
      for (;;) {
        const TreeNode& nd = ref.nodes()[node];
        if (nd.feature < 0) {
          out = nd.value;
          break;
        }
        node = static_cast<std::size_t>(
            x(r, static_cast<std::size_t>(nd.feature)) <= nd.threshold
                ? nd.left
                : nd.right);
      }
      ASSERT_EQ(out, tree.predict_one(x.row(r))) << "row " << r;
    }
  }
}

TEST(TreePresort, MatchesReferenceOnContinuousData) {
  // No ties at all: the pure fast path.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    const std::size_t n = 200;
    Matrix x(n, 4);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        x(i, j) = rng.uniform(-10.0, 10.0);
      }
      y[i] = std::sin(x(i, 0)) + 0.2 * x(i, 1) * x(i, 2) +
             rng.normal(0.0, 0.05);
    }
    TreeParams params;
    params.seed = seed;
    ReferenceTree ref(params);
    ref.fit(x, y);
    DecisionTreeRegressor tree(params);
    tree.fit(x, y);
    expect_identical_trees(ref, tree, seed);
  }
}

TEST(TreePresort, BootstrapExpansionMatchesGatheredFit) {
  // fit_presorted(ps, y, sample) must equal fit() on the materialized
  // resample — the forest fast path vs the seed's gather_rows route.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto [x, y] = tricky_data(120, 4, seed);
    Rng rng(seed * 31);
    std::vector<std::size_t> sample(x.rows());
    for (auto& idx : sample) {
      idx = rng.uniform_int(x.rows());
    }

    TreeParams params;
    params.seed = seed;
    const auto ps = detail::Presorted::build(x, y, nullptr);
    DecisionTreeRegressor fast(params);
    fast.fit_presorted(ps, y, sample);

    const Matrix xb = x.gather_rows(sample);
    std::vector<double> yb(sample.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      yb[i] = y[sample[i]];
    }
    DecisionTreeRegressor direct(params);
    direct.fit(xb, yb);

    ASSERT_EQ(direct.node_count(), fast.node_count()) << "seed " << seed;
    for (std::size_t i = 0; i < fast.node_count(); ++i) {
      const TreeNode& a = direct.nodes()[i];
      const TreeNode& b = fast.nodes()[i];
      ASSERT_EQ(a.feature, b.feature) << "node " << i;
      ASSERT_EQ(a.threshold, b.threshold) << "node " << i;
      ASSERT_EQ(a.value, b.value) << "node " << i;
      ASSERT_EQ(a.left, b.left) << "node " << i;
      ASSERT_EQ(a.right, b.right) << "node " << i;
    }
  }
}

// --- Pool-size determinism --------------------------------------------------

// Big enough that nodes cross kParallelNodeMinSamples and the candidate
// scan actually fans out.
std::pair<Matrix, std::vector<double>> big_data(std::size_t n) {
  Rng rng(7);
  Matrix x(n, 4);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      x(i, j) = rng.uniform(0.0, 10.0);
      acc += (j + 1.0) * x(i, j);
    }
    y[i] = acc + std::sin(acc) + rng.normal(0.0, 0.1);
  }
  return {std::move(x), std::move(y)};
}

TEST(TreePresort, ForestIsIdenticalForPools1_2_8) {
  const auto [x, y] = big_data(6000);
  std::vector<std::vector<double>> outputs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ForestParams params;
    params.n_estimators = 5;
    params.pool = &pool;
    RandomForestRegressor forest(params);
    forest.fit(x, y);
    outputs.push_back(forest.predict_many(x));
  }
  ASSERT_EQ(outputs[0].size(), x.rows());
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(TreePresort, SvrIsIdenticalForPools1_2_8) {
  const auto [x, y] = big_data(300);
  std::vector<std::vector<double>> outputs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SvrRbf svr(100.0, 0.01, 1.0, 50, 1e-5, &pool);
    svr.fit(x, y);
    outputs.push_back(svr.predict(x));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

// --- Batch prediction -------------------------------------------------------

TEST(PredictMany, MatchesPredictOneBitwise) {
  const auto [x, y] = big_data(600);
  ForestParams params;
  params.n_estimators = 8;
  RandomForestRegressor forest(params);
  forest.fit(x, y);

  const std::vector<double> batch = forest.predict_many(x);
  ASSERT_EQ(batch.size(), x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    ASSERT_EQ(batch[r], forest.predict_one(x.row(r))) << "row " << r;
  }

  SvrRbf svr(100.0, 0.01, 1.0, 50);
  svr.fit(x, y);
  const std::vector<double> svr_batch = svr.predict_many(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    ASSERT_EQ(svr_batch[r], svr.predict_one(x.row(r))) << "row " << r;
  }
}

} // namespace
} // namespace dsem::ml
