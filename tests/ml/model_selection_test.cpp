#include "ml/model_selection.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "ml/forest.hpp"
#include "ml/linear.hpp"

namespace dsem::ml {
namespace {

double mape_score(std::span<const double> truth, std::span<const double> pred) {
  return stats::mape(truth, pred);
}

TEST(KFold, PartitionsAllSamples) {
  const auto splits = kfold(100, 5, 42);
  ASSERT_EQ(splits.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& s : splits) {
    EXPECT_EQ(s.train.size() + s.test.size(), 100u);
    for (std::size_t i : s.test) {
      EXPECT_TRUE(seen.insert(i).second) << "index tested twice";
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(KFold, TrainAndTestDisjoint) {
  const auto splits = kfold(50, 5, 1);
  for (const auto& s : splits) {
    for (std::size_t i : s.test) {
      EXPECT_EQ(std::count(s.train.begin(), s.train.end(), i), 0);
    }
  }
}

TEST(KFold, DeterministicPerSeed) {
  const auto a = kfold(30, 3, 7);
  const auto b = kfold(30, 3, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].test, b[i].test);
  }
}

TEST(KFold, RejectsDegenerate) {
  EXPECT_THROW(kfold(5, 1, 0), contract_error);
  EXPECT_THROW(kfold(3, 5, 0), contract_error);
}

TEST(LeaveOneGroupOut, OneSplitPerGroup) {
  const std::vector<int> groups = {0, 0, 1, 1, 2, 2, 2};
  const auto splits = leave_one_group_out(groups);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0].test, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(splits[2].test, (std::vector<std::size_t>{4, 5, 6}));
  EXPECT_EQ(splits[1].train.size(), 5u);
}

TEST(LeaveOneGroupOut, NonContiguousLabels) {
  const std::vector<int> groups = {7, 3, 7, 3};
  const auto splits = leave_one_group_out(groups);
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0].test, (std::vector<std::size_t>{1, 3})); // group 3
}

TEST(LeaveOneGroupOut, SingleGroupThrows) {
  const std::vector<int> groups = {1, 1, 1};
  EXPECT_THROW(leave_one_group_out(groups), contract_error);
}

TEST(CrossValScore, PerfectModelScoresZero) {
  // Exactly linear data: linear regression cross-validates to ~0 MAPE.
  Rng rng(3);
  Matrix x(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(1.0, 10.0);
    y[i] = 2.0 * x(i, 0) + 1.0;
  }
  const auto splits = kfold(60, 5, 0);
  const double score =
      cross_val_score(LinearRegressor(), x, y, splits, mape_score);
  EXPECT_LT(score, 1e-6);
}

TEST(CrossValScore, DetectsOverfittingModelsViaHeldOutError) {
  // Noisy constant target: a deep tree memorizes noise, so its held-out
  // error exceeds a linear fit's.
  Rng rng(4);
  Matrix x(120, 1);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    y[i] = 5.0 + rng.normal(0.0, 1.0);
  }
  const auto splits = kfold(120, 4, 0);
  const double linear =
      cross_val_score(LinearRegressor(), x, y, splits, mape_score);
  ForestParams deep;
  deep.n_estimators = 1;
  const double tree = cross_val_score(RandomForestRegressor(deep), x, y,
                                      splits, mape_score);
  EXPECT_LT(linear, tree);
}

TEST(GridSearch, FindsBestParameterCombination) {
  // Target depends only on x0; trees need enough depth to capture it.
  Rng rng(5);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(0.0, 10.0);
    y[i] = x(i, 0) * x(i, 0);
  }
  const auto splits = kfold(200, 4, 0);
  const std::map<std::string, std::vector<double>> grid = {
      {"max_depth", {1.0, 8.0}},
      {"n_estimators", {5.0, 20.0}},
  };
  const auto result = grid_search(
      grid,
      [](const std::map<std::string, double>& params) {
        ForestParams fp;
        fp.max_depth = static_cast<int>(params.at("max_depth"));
        fp.n_estimators = static_cast<int>(params.at("n_estimators"));
        return std::make_unique<RandomForestRegressor>(fp);
      },
      x, y, splits, mape_score);
  EXPECT_EQ(result.evaluated, 4u);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 8.0);
}

TEST(GridSearch, RejectsEmptyGrid) {
  Matrix x(4, 1);
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const auto splits = kfold(4, 2, 0);
  EXPECT_THROW(grid_search(
                   {}, [](const auto&) { return nullptr; }, x, y, splits,
                   mape_score),
               contract_error);
  const std::map<std::string, std::vector<double>> empty_values = {
      {"p", {}}};
  EXPECT_THROW(grid_search(
                   empty_values,
                   [](const auto&) {
                     return std::make_unique<LinearRegressor>();
                   },
                   x, y, splits, mape_score),
               contract_error);
}

} // namespace
} // namespace dsem::ml
