// Behavioural tests for all four regression algorithms on synthetic data
// with known structure, plus the StandardScaler.
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "ml/forest.hpp"
#include "ml/lasso.hpp"
#include "ml/linear.hpp"
#include "ml/svr.hpp"

namespace dsem::ml {
namespace {

/// y = 3 x0 - 2 x1 + 5 (+ optional noise).
std::pair<Matrix, std::vector<double>> linear_data(std::size_t n,
                                                   double noise_sigma,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    x(i, 1) = rng.uniform(-5.0, 5.0);
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 5.0 +
           (noise_sigma > 0.0 ? rng.normal(0.0, noise_sigma) : 0.0);
  }
  return {std::move(x), std::move(y)};
}

/// y = sin(2 x0) + 0.5 x1 (nonlinear).
std::pair<Matrix, std::vector<double>> nonlinear_data(std::size_t n,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = std::sin(2.0 * x(i, 0)) + 0.5 * x(i, 1);
  }
  return {std::move(x), std::move(y)};
}

// --- StandardScaler ----------------------------------------------------------

TEST(StandardScaler, ZeroMeanUnitVariance) {
  const auto [x, y] = linear_data(500, 0.0, 1);
  StandardScaler scaler;
  scaler.fit(x);
  const Matrix xs = scaler.transform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < xs.rows(); ++i) {
      mean += xs(i, j);
    }
    mean /= static_cast<double>(xs.rows());
    EXPECT_NEAR(mean, 0.0, 1e-10);
    double var = 0.0;
    for (std::size_t i = 0; i < xs.rows(); ++i) {
      var += xs(i, j) * xs(i, j);
    }
    var /= static_cast<double>(xs.rows());
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(StandardScaler, ConstantFeaturePassesThrough) {
  Matrix x = Matrix::from_rows({{1.0, 7.0}, {2.0, 7.0}, {3.0, 7.0}});
  StandardScaler scaler;
  scaler.fit(x);
  const auto t = scaler.transform_one(std::vector<double>{2.0, 7.0});
  EXPECT_NEAR(t[1], 0.0, 1e-12); // (7 - 7) / 1
}

TEST(StandardScaler, UseBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform_one(std::vector<double>{1.0}),
               dsem::contract_error);
}

// --- Linear -------------------------------------------------------------------

TEST(LinearRegressor, RecoversExactCoefficients) {
  const auto [x, y] = linear_data(100, 0.0, 2);
  LinearRegressor model;
  model.fit(x, y);
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-6);
}

TEST(LinearRegressor, RobustToNoise) {
  const auto [x, y] = linear_data(2000, 0.5, 3);
  LinearRegressor model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 0.05);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 0.05);
}

TEST(LinearRegressor, PredictBeforeFitThrows) {
  LinearRegressor model;
  EXPECT_THROW(model.predict_one(std::vector<double>{1.0}),
               dsem::contract_error);
}

TEST(LinearRegressor, PredictMatchesFitDimensions) {
  const auto [x, y] = linear_data(50, 0.0, 4);
  LinearRegressor model;
  model.fit(x, y);
  EXPECT_THROW(model.predict_one(std::vector<double>{1.0}),
               dsem::contract_error);
}

TEST(LinearRegressor, CloneIsUnfittedWithSameParams) {
  const auto [x, y] = linear_data(50, 0.0, 5);
  LinearRegressor model;
  model.fit(x, y);
  auto clone = model.clone();
  EXPECT_EQ(clone->name(), "Linear");
  EXPECT_THROW(clone->predict_one(std::vector<double>{1.0, 2.0}),
               dsem::contract_error);
}

// --- Lasso --------------------------------------------------------------------

TEST(LassoRegressor, ZeroAlphaMatchesLeastSquares) {
  const auto [x, y] = linear_data(200, 0.0, 6);
  LassoRegressor model(0.0);
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-3);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-3);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-2);
}

TEST(LassoRegressor, StrongPenaltyShrinksToIntercept) {
  const auto [x, y] = linear_data(200, 0.0, 7);
  LassoRegressor model(1e6);
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 0.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], 0.0, 1e-9);
  EXPECT_NEAR(model.intercept(), stats::mean(y), 1e-9);
}

TEST(LassoRegressor, SelectsInformativeFeature) {
  // x1 is pure noise; moderate alpha should zero it while keeping x0.
  Rng rng(8);
  Matrix x(300, 2);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    x(i, 1) = rng.uniform(-5.0, 5.0);
    y[i] = 4.0 * x(i, 0) + rng.normal(0.0, 0.1);
  }
  LassoRegressor model(0.5);
  model.fit(x, y);
  EXPECT_GT(std::abs(model.coefficients()[0]), 3.0);
  EXPECT_NEAR(model.coefficients()[1], 0.0, 0.05);
}

TEST(LassoRegressor, RejectsNegativeAlpha) {
  EXPECT_THROW(LassoRegressor(-1.0), dsem::contract_error);
}

// --- SVR ----------------------------------------------------------------------

TEST(SvrRbf, FitsNonlinearFunction) {
  const auto [x, y] = nonlinear_data(400, 9);
  SvrRbf model(100.0, 0.01, 1.0, 400);
  model.fit(x, y);
  const auto pred = model.predict(x);
  EXPECT_LT(stats::rmse(y, pred), 0.08);
}

TEST(SvrRbf, EpsilonTubeLimitsSupportVectors) {
  const auto [x, y] = linear_data(200, 0.0, 10);
  SvrRbf tight(10.0, 1e-4, 0.5, 200);
  SvrRbf loose(10.0, 5.0, 0.5, 200);
  tight.fit(x, y);
  loose.fit(x, y);
  EXPECT_LT(loose.support_vector_count(), tight.support_vector_count());
}

TEST(SvrRbf, InterpolatesBetweenTrainingPoints) {
  const auto [x, y] = nonlinear_data(500, 11);
  SvrRbf model(100.0, 0.01, 1.0, 400);
  model.fit(x, y);
  Rng rng(12);
  double err = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const std::vector<double> q = {rng.uniform(-1.5, 1.5),
                                   rng.uniform(-1.5, 1.5)};
    const double truth = std::sin(2.0 * q[0]) + 0.5 * q[1];
    err += std::abs(model.predict_one(q) - truth);
  }
  EXPECT_LT(err / n, 0.1);
}

TEST(SvrRbf, RejectsBadHyperparameters) {
  EXPECT_THROW(SvrRbf(-1.0), dsem::contract_error);
  EXPECT_THROW(SvrRbf(1.0, -0.1), dsem::contract_error);
  EXPECT_THROW(SvrRbf(1.0, 0.1, 0.0), dsem::contract_error);
}

// --- Decision tree --------------------------------------------------------------

TEST(DecisionTree, FitsPiecewiseConstantExactly) {
  // Step function: perfectly representable by one split.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 50 ? 1.0 : 9.0;
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{10.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{90.0}), 9.0);
}

TEST(DecisionTree, MaxDepthBoundsTreeDepth) {
  const auto [x, y] = nonlinear_data(500, 13);
  TreeParams params;
  params.max_depth = 3;
  DecisionTreeRegressor tree(params);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const auto [x, y] = nonlinear_data(100, 14);
  TreeParams params;
  params.min_samples_leaf = 20;
  DecisionTreeRegressor tree(params);
  tree.fit(x, y);
  // With >= 20 samples per leaf, at most 5 leaves -> at most 9 nodes.
  EXPECT_LE(tree.node_count(), 9u);
}

TEST(DecisionTree, ConstantTargetYieldsSingleLeaf) {
  Matrix x(50, 2);
  std::vector<double> y(50, 3.14);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{0.0, 0.0}), 3.14, 1e-12);
}

TEST(DecisionTree, DeepTreeMemorizesTrainingData) {
  const auto [x, y] = nonlinear_data(200, 15);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  const auto pred = tree.predict(x);
  EXPECT_LT(stats::rmse(y, pred), 1e-9);
}

TEST(DecisionTree, RejectsBadParams) {
  TreeParams params;
  params.min_samples_split = 1;
  EXPECT_THROW(DecisionTreeRegressor tree(params), dsem::contract_error);
}

// --- Random forest ---------------------------------------------------------------

TEST(RandomForest, FitsNonlinearFunctionWell) {
  const auto [x, y] = nonlinear_data(600, 16);
  ForestParams params;
  params.n_estimators = 50;
  RandomForestRegressor forest(params);
  forest.fit(x, y);
  const auto pred = forest.predict(x);
  EXPECT_LT(stats::rmse(y, pred), 0.1);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const auto [x, y] = nonlinear_data(200, 17);
  ForestParams params;
  params.n_estimators = 20;
  params.seed = 77;
  RandomForestRegressor a(params);
  RandomForestRegressor b(params);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 20; ++i) {
    const std::vector<double> q = {static_cast<double>(i) * 0.1 - 1.0, 0.3};
    EXPECT_DOUBLE_EQ(a.predict_one(q), b.predict_one(q));
  }
}

TEST(RandomForest, DifferentSeedsGiveDifferentForests) {
  const auto [x, y] = nonlinear_data(200, 18);
  ForestParams pa;
  pa.n_estimators = 10;
  pa.seed = 1;
  ForestParams pb = pa;
  pb.seed = 2;
  RandomForestRegressor a(pa);
  RandomForestRegressor b(pb);
  a.fit(x, y);
  b.fit(x, y);
  bool any_diff = false;
  for (int i = 0; i < 20 && !any_diff; ++i) {
    const std::vector<double> q = {i * 0.15 - 1.5, -0.4};
    any_diff = a.predict_one(q) != b.predict_one(q);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, SmoothsComparedToSingleTree) {
  // Forest generalizes better than one fully-grown tree on noisy data.
  Rng rng(19);
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = std::sin(x(i, 0)) + rng.normal(0.0, 0.3);
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  ForestParams params;
  params.n_estimators = 60;
  RandomForestRegressor forest(params);
  forest.fit(x, y);

  double tree_err = 0.0;
  double forest_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> q = {rng.uniform(-3.0, 3.0)};
    const double truth = std::sin(q[0]);
    tree_err += std::abs(tree.predict_one(q) - truth);
    forest_err += std::abs(forest.predict_one(q) - truth);
  }
  EXPECT_LT(forest_err, tree_err);
}

TEST(RandomForest, TreeCountMatchesParams) {
  const auto [x, y] = nonlinear_data(50, 20);
  ForestParams params;
  params.n_estimators = 7;
  RandomForestRegressor forest(params);
  forest.fit(x, y);
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForestRegressor forest;
  EXPECT_THROW(forest.predict_one(std::vector<double>{1.0}),
               dsem::contract_error);
}

TEST(RandomForest, WithoutBootstrapAndAllFeaturesTreesAgree) {
  const auto [x, y] = nonlinear_data(100, 21);
  ForestParams params;
  params.n_estimators = 5;
  params.bootstrap = false;
  params.max_features = 0;
  RandomForestRegressor forest(params);
  forest.fit(x, y);
  // All trees see identical data and all features: identical predictions.
  const std::vector<double> q = {0.5, -0.5};
  const double p0 = forest.tree(0).predict_one(q);
  for (std::size_t t = 1; t < forest.tree_count(); ++t) {
    EXPECT_DOUBLE_EQ(forest.tree(t).predict_one(q), p0);
  }
}

} // namespace
} // namespace dsem::ml
