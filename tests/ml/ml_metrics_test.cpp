// Metrics contract of the ML training instrumentation (ISSUE 6 satellite):
// tree node/depth histograms and the SVR support-vector gauge record what
// the fit actually produced, and the deterministic JSON view of a metered
// forest + SVR fit is bit-identical for pools of 1, 2 and 8 workers — the
// counts are properties of the fitted models, not of scheduling. Timers
// and the gauge are kWallClock and must stay out of that view.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/forest.hpp"
#include "ml/svr.hpp"

namespace dsem::ml {
namespace {

class MlMetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    metrics::set_enabled(false);
    metrics::Registry::global().clear();
  }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::Registry::global().clear();
  }
};

std::pair<Matrix, std::vector<double>> training_data(std::size_t n) {
  Rng rng(11);
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.uniform(0.0, 5.0);
    }
    y[i] = x(i, 0) - 2.0 * x(i, 1) + 0.5 * x(i, 2) * x(i, 2);
  }
  return {std::move(x), std::move(y)};
}

/// Fits a small forest and SVR on a pool of `threads` workers and returns
/// the deterministic metrics JSON they recorded.
std::string metered_fit(std::size_t threads) {
  metrics::Registry::global().clear();
  metrics::set_enabled(true);
  {
    const auto [x, y] = training_data(400);
    ThreadPool pool(threads);

    ForestParams fp;
    fp.n_estimators = 12;
    fp.pool = &pool;
    RandomForestRegressor forest(fp);
    forest.fit(x, y);

    SvrRbf svr(100.0, 0.01, 1.0, 50, 1e-5, &pool);
    svr.fit(x, y);
  }
  const std::string out = metrics::Registry::global()
                              .snapshot()
                              .to_json(/*deterministic_only=*/true)
                              .dump(2);
  metrics::set_enabled(false);
  metrics::Registry::global().clear();
  return out;
}

TEST_F(MlMetricsTest, GoldenDeterministicJsonIdenticalAcrossPoolSizes) {
  const std::string serial = metered_fit(1);

  // The deterministic view carries the per-tree shape histograms...
  EXPECT_NE(serial.find("ml.tree.nodes"), std::string::npos) << serial;
  EXPECT_NE(serial.find("ml.tree.depth"), std::string::npos) << serial;
  // ...and none of the wall-clock instruments (timers, sv gauge, pool).
  EXPECT_EQ(serial.find("ml.forest.fit_s"), std::string::npos) << serial;
  EXPECT_EQ(serial.find("ml.svr.fit_s"), std::string::npos) << serial;
  EXPECT_EQ(serial.find("ml.svr.support_vectors"), std::string::npos)
      << serial;
  EXPECT_EQ(serial.find("pool."), std::string::npos) << serial;

  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, metered_fit(threads)) << "pool size " << threads;
  }
}

TEST_F(MlMetricsTest, FitTimersAndGaugeAppearInFullView) {
  metrics::set_enabled(true);
  const auto [x, y] = training_data(200);

  ForestParams fp;
  fp.n_estimators = 4;
  RandomForestRegressor forest(fp);
  forest.fit(x, y);
  SvrRbf svr(100.0, 0.01, 1.0, 50);
  svr.fit(x, y);

  const std::string full = metrics::Registry::global()
                               .snapshot()
                               .to_json(/*deterministic_only=*/false)
                               .dump(2);
  EXPECT_NE(full.find("ml.forest.fit_s"), std::string::npos);
  EXPECT_NE(full.find("ml.svr.fit_s"), std::string::npos);
  EXPECT_NE(full.find("ml.svr.support_vectors"), std::string::npos);
}

TEST_F(MlMetricsTest, TreeHistogramsCountEveryTree) {
  metrics::set_enabled(true);
  const auto [x, y] = training_data(200);
  ForestParams fp;
  fp.n_estimators = 7;
  RandomForestRegressor forest(fp);
  forest.fit(x, y);

  const auto snap = metrics::Registry::global().snapshot();
  const std::string json =
      snap.to_json(/*deterministic_only=*/true).dump(2);
  // One ml.tree.nodes sample per fitted tree.
  EXPECT_NE(json.find("\"name\": \"ml.tree.nodes\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 7"), std::string::npos) << json;
}

} // namespace
} // namespace dsem::ml
