#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), contract_error);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(1, 2), 0.0);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 2);
  m.row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, GatherRowsWithDuplicates) {
  const Matrix m = Matrix::from_rows({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  const std::vector<std::size_t> idx = {2, 0, 2};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 3.0);
}

TEST(Matrix, GatherRowsRejectsOutOfRange) {
  const Matrix m = Matrix::from_rows({{1.0}});
  const std::vector<std::size_t> idx = {1};
  EXPECT_THROW(m.gather_rows(idx), contract_error);
}

TEST(Matrix, Transposed) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matmul, BasicProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, DimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), contract_error);
}

TEST(Gram, MatchesAtTimesA) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const Matrix g = gram(a);
  const Matrix expected = matmul(a.transposed(), a);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(AtY, MatchesTransposeProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const std::vector<double> y = {1.0, 1.0};
  const auto aty = at_y(a, y);
  EXPECT_DOUBLE_EQ(aty[0], 4.0);
  EXPECT_DOUBLE_EQ(aty[1], 6.0);
}

TEST(SolveSpd, SolvesWellConditionedSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
  Matrix a = Matrix::from_rows({{4.0, 1.0}, {1.0, 3.0}});
  const auto x = solve_spd(a, {1.0, 2.0});
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(SolveSpd, IdentityReturnsRhs) {
  const auto x = solve_spd(Matrix::identity(4), {1.0, 2.0, 3.0, 4.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], static_cast<double>(i + 1), 1e-14);
  }
}

TEST(SolveSpd, JitterRescuesSemiDefinite) {
  // Rank-deficient: jitter must make it solvable without throwing.
  Matrix a = Matrix::from_rows({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_NO_THROW(solve_spd(a, {2.0, 2.0}));
}

TEST(SolveSpd, RejectsNonSquare) {
  EXPECT_THROW(solve_spd(Matrix(2, 3), {1.0, 2.0}), contract_error);
}

TEST(Dot, BasicAndMismatch) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const std::vector<double> c = {1.0};
  EXPECT_THROW(dot(a, c), contract_error);
}

} // namespace
} // namespace dsem::ml
