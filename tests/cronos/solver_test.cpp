// Physics validation of the finite-volume solver: analytic advection,
// conservation, free-stream preservation, shock tubes, boundaries, CFL.
#include "cronos/solver.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cronos/problems.hpp"

namespace dsem::cronos {
namespace {

struct Harness {
  Harness() : sim_dev(sim::v100(), sim::NoiseConfig::none()),
              device(sim_dev), queue(device, synergy::ExecMode::kValidate) {}
  sim::Device sim_dev;
  synergy::Device device;
  synergy::Queue queue;
};

double advection_l1_error(int n, double end_time) {
  Harness h;
  const std::array<double, 3> vel = {1.0, 0.0, 0.0};
  const std::array<double, 3> center = {0.5, 0.5, 0.5};
  const double width = 0.08;

  SolverConfig config;
  config.dims = {n, 1, 1};
  config.cfl_number = 0.4;
  Solver solver(std::make_shared<AdvectionLaw>(vel), config);
  solver.initialize(advection_gaussian(center, width, 1.0, 0.1));
  solver.run_until(h.queue, end_time);

  double err = 0.0;
  for (int x = 0; x < n; ++x) {
    const auto c = solver.cell_center(0, 0, x);
    const double expected = advected_gaussian_value(
        c, center, width, 1.0, 0.1, vel, end_time, {1.0, 1.0, 1.0});
    err += std::abs(solver.state().var(0).at(0, 0, x) - expected);
  }
  return err / n;
}

TEST(SolverAdvection, GaussianTranslatesWithSmallError) {
  EXPECT_LT(advection_l1_error(128, 0.5), 0.01);
}

TEST(SolverAdvection, ErrorShrinksWithResolution) {
  const double coarse = advection_l1_error(32, 0.25);
  const double fine = advection_l1_error(64, 0.25);
  EXPECT_LT(fine, coarse * 0.6); // better than first order
}

TEST(SolverAdvection, MassConservedUnderPeriodicBoundaries) {
  Harness h;
  SolverConfig config;
  config.dims = {32, 4, 4};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.5, 0.25}),
                config);
  solver.initialize(advection_gaussian({0.5, 0.5, 0.5}, 0.15, 1.0, 0.2));
  const double mass0 = solver.state().var(0).interior_sum();
  solver.run(h.queue, 20);
  EXPECT_NEAR(solver.state().var(0).interior_sum(), mass0,
              std::abs(mass0) * 1e-12);
}

TEST(SolverEuler, UniformFlowIsExactlyPreserved) {
  Harness h;
  SolverConfig config;
  config.dims = {16, 8, 4};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  solver.initialize(euler_uniform(1.3, {0.4, -0.2, 0.1}, 0.8, gamma));
  solver.run(h.queue, 10);
  const auto expected = EulerLaw::conserved(1.3, {0.4, -0.2, 0.1}, 0.8, gamma);
  for (int v = 0; v < 5; ++v) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_NEAR(solver.state().var(v).at(2, 3, x), expected[v], 1e-11)
          << "var " << v << " cell " << x;
    }
  }
}

TEST(SolverEuler, ConservesMassMomentumEnergyPeriodic) {
  Harness h;
  SolverConfig config;
  config.dims = {32, 8, 1};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  // Smooth density/pressure wave.
  solver.initialize([gamma](double x, double y, double, std::span<double> u) {
    const double rho = 1.0 + 0.2 * std::sin(2.0 * M_PI * (x + y));
    const auto s = EulerLaw::conserved(rho, {0.3, 0.1, 0.0}, 1.0, gamma);
    std::copy(s.begin(), s.end(), u.begin());
  });
  std::array<double, 5> before{};
  for (int v = 0; v < 5; ++v) {
    before[static_cast<std::size_t>(v)] =
        solver.state().var(v).interior_sum();
  }
  solver.run(h.queue, 25);
  for (int v = 0; v < 5; ++v) {
    const double after = solver.state().var(v).interior_sum();
    EXPECT_NEAR(after, before[static_cast<std::size_t>(v)],
                std::max(1e-10, std::abs(before[static_cast<std::size_t>(v)]) *
                                    1e-11))
        << "conserved variable " << v;
  }
}

TEST(SolverEuler, SodShockTubeProducesPhysicalProfile) {
  Harness h;
  SolverConfig config;
  config.dims = {200, 1, 1};
  config.boundaries = {BoundaryKind::kOutflow, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  solver.initialize(sod_shock_tube(gamma));
  solver.run_until(h.queue, 0.2);

  EulerLaw law(gamma);
  std::array<double, 5> cell{};
  double min_rho = 1e9;
  double max_rho = -1e9;
  for (int x = 0; x < 200; ++x) {
    solver.state().cell(0, 0, x, cell);
    EXPECT_NO_THROW(law.validate_state(cell)) << "cell " << x;
    min_rho = std::min(min_rho, cell[0]);
    max_rho = std::max(max_rho, cell[0]);
  }
  // Density bounded by the initial extremes (no over/undershoot blowup).
  EXPECT_GT(min_rho, 0.12);
  EXPECT_LT(max_rho, 1.01);
  // Left state undisturbed, right state undisturbed.
  solver.state().cell(0, 0, 3, cell);
  EXPECT_NEAR(cell[0], 1.0, 1e-6);
  solver.state().cell(0, 0, 196, cell);
  EXPECT_NEAR(cell[0], 0.125, 1e-6);
  // Contact/shock plateau: density near x ~ 0.65 should sit between the
  // classic Sod star-region values (~0.26 and ~0.43).
  solver.state().cell(0, 0, 130, cell);
  EXPECT_GT(cell[0], 0.2);
  EXPECT_LT(cell[0], 0.5);
}

TEST(SolverMhd, BrioWuRunsStablyAndConserves) {
  Harness h;
  SolverConfig config;
  config.dims = {128, 1, 1};
  config.boundaries = {BoundaryKind::kOutflow, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  const double gamma = 2.0;
  Solver solver(std::make_shared<IdealMhdLaw>(gamma), config);
  solver.initialize(brio_wu(gamma));
  solver.run_until(h.queue, 0.1);

  IdealMhdLaw law(gamma);
  std::array<double, 8> cell{};
  for (int x = 0; x < 128; ++x) {
    solver.state().cell(0, 0, x, cell);
    EXPECT_NO_THROW(law.validate_state(cell)) << "cell " << x;
  }
  // Bx is constant in the 1-D problem and must stay so.
  for (int x = 0; x < 128; ++x) {
    EXPECT_NEAR(solver.state().var(5).at(0, 0, x), 0.75, 1e-9);
  }
}

TEST(SolverMhd, OrszagTangShortRunStable) {
  Harness h;
  SolverConfig config;
  config.dims = {32, 32, 1};
  const double gamma = 5.0 / 3.0;
  Solver solver(std::make_shared<IdealMhdLaw>(gamma), config);
  solver.initialize(orszag_tang(gamma));
  const double mass0 = solver.state().var(0).interior_sum();
  solver.run_until(h.queue, 0.05);
  EXPECT_NEAR(solver.state().var(0).interior_sum(), mass0,
              std::abs(mass0) * 1e-11);
  IdealMhdLaw law(gamma);
  std::array<double, 8> cell{};
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      solver.state().cell(0, y, x, cell);
      EXPECT_NO_THROW(law.validate_state(cell));
    }
  }
}

TEST(SolverCfl, ReduceMatchesSerialMax) {
  Harness h;
  SolverConfig config;
  config.dims = {17, 5, 3};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{2.0, 0.0, 0.0}),
                config);
  solver.initialize(advection_gaussian({0.3, 0.5, 0.5}, 0.1, 1.0));
  Field3D cfl(config.dims);
  State dudt(config.dims, 1);
  solver.compute_changes(solver.state(), dudt, cfl);
  double serial = 0.0;
  for (int z = 0; z < 3; ++z) {
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 17; ++x) {
        serial = std::max(serial, cfl.at(z, y, x));
      }
    }
  }
  EXPECT_DOUBLE_EQ(solver.reduce_max_rate(cfl), serial);
}

TEST(SolverCfl, TimestepRespectsCflNumber) {
  Harness h;
  SolverConfig config;
  config.dims = {64, 1, 1};
  config.cfl_number = 0.4;
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize(advection_gaussian({0.5, 0.5, 0.5}, 0.1, 1.0));
  // rate = speed / dx = 1 / (1/64) = 64 -> dt = 0.4 / 64.
  EXPECT_NEAR(solver.dt(), 0.4 / 64.0, 1e-12);
}

TEST(SolverBoundary, PeriodicWrapsState) {
  Harness h;
  SolverConfig config;
  config.dims = {8, 1, 1};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize([](double x, double, double, std::span<double> u) {
    u[0] = x; // distinct per cell
  });
  const auto& field = solver.state().var(0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, -1), field.at(0, 0, 7));
  EXPECT_DOUBLE_EQ(field.at(0, 0, -2), field.at(0, 0, 6));
  EXPECT_DOUBLE_EQ(field.at(0, 0, 8), field.at(0, 0, 0));
  EXPECT_DOUBLE_EQ(field.at(0, 0, 9), field.at(0, 0, 1));
}

TEST(SolverBoundary, OutflowCopiesEdgeCell) {
  Harness h;
  SolverConfig config;
  config.dims = {8, 1, 1};
  config.boundaries = {BoundaryKind::kOutflow, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize([](double x, double, double, std::span<double> u) {
    u[0] = x;
  });
  const auto& field = solver.state().var(0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, -1), field.at(0, 0, 0));
  EXPECT_DOUBLE_EQ(field.at(0, 0, -2), field.at(0, 0, 0));
  EXPECT_DOUBLE_EQ(field.at(0, 0, 9), field.at(0, 0, 7));
}

TEST(SolverBoundary, ReflectingMirrorsAndFlipsMomentum) {
  Harness h;
  SolverConfig config;
  config.dims = {8, 1, 1};
  config.boundaries = {BoundaryKind::kReflecting, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  solver.initialize(euler_uniform(1.0, {0.5, 0.0, 0.0}, 1.0, gamma));
  const auto& rho = solver.state().var(0);
  const auto& mx = solver.state().var(1);
  EXPECT_DOUBLE_EQ(rho.at(0, 0, -1), rho.at(0, 0, 0));
  EXPECT_DOUBLE_EQ(mx.at(0, 0, -1), -mx.at(0, 0, 0));
  EXPECT_DOUBLE_EQ(mx.at(0, 0, -2), -mx.at(0, 0, 1));
  EXPECT_DOUBLE_EQ(mx.at(0, 0, 8), -mx.at(0, 0, 7));
}

TEST(SolverQueue, StepSubmitsTwelveKernelsPerStep) {
  Harness h;
  SolverConfig config;
  config.dims = {8, 4, 2};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize(advection_gaussian({0.5, 0.5, 0.5}, 0.1, 1.0));
  solver.step(h.queue);
  EXPECT_EQ(h.queue.records().size(), 12u); // 3 substeps x 4 kernels
}

TEST(SolverQueue, RunUntilReachesEndTimeExactly) {
  Harness h;
  SolverConfig config;
  config.dims = {32, 1, 1};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize(advection_gaussian({0.5, 0.5, 0.5}, 0.1, 1.0));
  const auto stats = solver.run_until(h.queue, 0.3);
  EXPECT_NEAR(solver.time(), 0.3, 1e-12);
  EXPECT_GT(stats.steps, 0);
}

TEST(SolverQueue, RunUntilRequiresValidateMode) {
  Harness h;
  synergy::Queue sim_only(h.device, synergy::ExecMode::kSimOnly);
  SolverConfig config;
  config.dims = {8, 1, 1};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  solver.initialize(advection_gaussian({0.5, 0.5, 0.5}, 0.1, 1.0));
  EXPECT_THROW(solver.run_until(sim_only, 0.1), dsem::contract_error);
}

TEST(SolverQueue, StepBeforeInitializeThrows) {
  Harness h;
  SolverConfig config;
  config.dims = {8, 1, 1};
  Solver solver(std::make_shared<AdvectionLaw>(std::array{1.0, 0.0, 0.0}),
                config);
  EXPECT_THROW(solver.step(h.queue), dsem::contract_error);
}

TEST(SolverConfigValidation, RejectsBadParameters) {
  EXPECT_THROW(Solver(nullptr, SolverConfig{}), dsem::contract_error);
  SolverConfig config;
  config.cfl_number = 1.5;
  EXPECT_THROW(Solver(std::make_shared<BurgersLaw>(), config),
               dsem::contract_error);
  config = SolverConfig{};
  config.domain_size = {0.0, 1.0, 1.0};
  EXPECT_THROW(Solver(std::make_shared<BurgersLaw>(), config),
               dsem::contract_error);
}

TEST(SolverBurgers, SineSteepensWithoutBlowup) {
  Harness h;
  SolverConfig config;
  config.dims = {128, 1, 1};
  Solver solver(std::make_shared<BurgersLaw>(), config);
  solver.initialize(burgers_sine(1.0, 2.0)); // mean 2 keeps speeds positive
  const double mass0 = solver.state().var(0).interior_sum();
  solver.run_until(h.queue, 0.3);
  EXPECT_NEAR(solver.state().var(0).interior_sum(), mass0,
              std::abs(mass0) * 1e-11);
  // Total variation must not grow (TVD-ish scheme on scalar law).
  double tv = 0.0;
  for (int x = 0; x < 127; ++x) {
    tv += std::abs(solver.state().var(0).at(0, 0, x + 1) -
                   solver.state().var(0).at(0, 0, x));
  }
  EXPECT_LT(tv, 4.0 * 1.0 + 0.1); // initial TV of sine = 4*amplitude
}

} // namespace
} // namespace dsem::cronos
