#include "cronos/kernels.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "cronos/problems.hpp"
#include "cronos/solver.hpp"

namespace dsem::cronos {
namespace {

TEST(CronosKernels, ProfilesAreValid) {
  for (int nv : {1, 5, 8}) {
    EXPECT_NO_THROW(sim::validate(compute_changes_profile(nv)));
    EXPECT_NO_THROW(sim::validate(integrate_time_profile(nv)));
    EXPECT_NO_THROW(sim::validate(apply_boundary_profile(nv)));
  }
  EXPECT_NO_THROW(sim::validate(cfl_reduce_profile()));
}

TEST(CronosKernels, ComputeChangesIsMemoryBoundOnV100) {
  // The defining property of the Cronos workload in the paper: the stencil
  // kernel sits left of the V100 roofline ridge at the default clock.
  const auto spec = sim::v100();
  const auto profile = compute_changes_profile(8);
  const auto b = sim::execute(spec, profile, 160 * 64 * 64, 1312.0);
  EXPECT_GT(b.mem_s, b.compute_s);
}

TEST(CronosKernels, CostScalesWithVariableCount) {
  const auto small = compute_changes_profile(1);
  const auto large = compute_changes_profile(8);
  EXPECT_GT(large.flops(), small.flops() * 4.0);
  EXPECT_GT(large.global_bytes, small.global_bytes * 4.0);
}

TEST(CronosKernels, GhostCellCountMatchesGeometry) {
  const GridDims dims{8, 4, 2};
  EXPECT_EQ(ghost_cell_count(dims),
            static_cast<std::size_t>((8 + 4) * (4 + 4) * (2 + 4) - 8 * 4 * 2));
}

TEST(CronosKernels, SimOnlySubmissionMatchesSolverStepSequence) {
  // The fast sweep path must submit exactly what Solver::step submits:
  // same kernel names, same work-item counts, same order.
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);

  SolverConfig config;
  config.dims = {10, 4, 4};
  Solver solver(std::make_shared<IdealMhdLaw>(5.0 / 3.0), config);
  synergy::Queue solver_queue(device, synergy::ExecMode::kValidate);
  solver.initialize(mhd_turbulence_ic(5.0 / 3.0));
  solver.step(solver_queue);

  synergy::Queue fast_queue(device, synergy::ExecMode::kSimOnly);
  submit_step_kernels(fast_queue, config.dims, 8, 1);

  ASSERT_EQ(solver_queue.records().size(), fast_queue.records().size());
  for (std::size_t i = 0; i < fast_queue.records().size(); ++i) {
    EXPECT_EQ(solver_queue.records()[i].kernel_name,
              fast_queue.records()[i].kernel_name)
        << "kernel " << i;
    EXPECT_EQ(solver_queue.records()[i].work_items,
              fast_queue.records()[i].work_items)
        << "kernel " << i;
  }
}

TEST(CronosKernels, MultiStepSubmissionScalesLinearly) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue queue(device);
  submit_step_kernels(queue, {20, 8, 8}, 8, 5);
  EXPECT_EQ(queue.records().size(), 5u * 12u);
}

TEST(CronosKernels, LargerGridCostsMoreTimeAndEnergy) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue q_small(device);
  submit_step_kernels(q_small, {10, 4, 4}, 8, 1);
  synergy::Queue q_large(device);
  submit_step_kernels(q_large, {160, 64, 64}, 8, 1);
  EXPECT_GT(q_large.total_time_s(), q_small.total_time_s());
  EXPECT_GT(q_large.total_energy_j(), q_small.total_energy_j());
}

} // namespace
} // namespace dsem::cronos
