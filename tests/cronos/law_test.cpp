#include "cronos/law.hpp"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::cronos {
namespace {

TEST(AdvectionLaw, FluxIsVelocityTimesState) {
  AdvectionLaw law({2.0, -1.0, 0.5});
  const std::array<double, 1> u = {3.0};
  std::array<double, 1> f{};
  law.flux(Axis::kX, u, f);
  EXPECT_DOUBLE_EQ(f[0], 6.0);
  law.flux(Axis::kY, u, f);
  EXPECT_DOUBLE_EQ(f[0], -3.0);
  law.flux(Axis::kZ, u, f);
  EXPECT_DOUBLE_EQ(f[0], 1.5);
}

TEST(AdvectionLaw, WavespeedIsAbsVelocity) {
  AdvectionLaw law({2.0, -3.0, 0.0});
  const std::array<double, 1> u = {1.0};
  EXPECT_DOUBLE_EQ(law.max_wavespeed(Axis::kX, u), 2.0);
  EXPECT_DOUBLE_EQ(law.max_wavespeed(Axis::kY, u), 3.0);
  EXPECT_DOUBLE_EQ(law.max_wavespeed(Axis::kZ, u), 0.0);
}

TEST(BurgersLaw, FluxAndSpeed) {
  BurgersLaw law;
  const std::array<double, 1> u = {-4.0};
  std::array<double, 1> f{};
  law.flux(Axis::kX, u, f);
  EXPECT_DOUBLE_EQ(f[0], 8.0);
  EXPECT_DOUBLE_EQ(law.max_wavespeed(Axis::kZ, u), 4.0);
}

TEST(EulerLaw, ConservedPrimitiveRoundTrip) {
  EulerLaw law(1.4);
  const auto u = EulerLaw::conserved(1.2, {3.0, -1.0, 0.5}, 2.5, 1.4);
  EXPECT_DOUBLE_EQ(u[0], 1.2);
  EXPECT_DOUBLE_EQ(u[1], 3.6);
  EXPECT_NEAR(law.pressure(u), 2.5, 1e-12);
}

TEST(EulerLaw, SoundSpeedMatchesFormula) {
  EulerLaw law(1.4);
  const auto u = EulerLaw::conserved(1.0, {0.0, 0.0, 0.0}, 1.0, 1.4);
  EXPECT_NEAR(law.sound_speed(u), std::sqrt(1.4), 1e-12);
}

TEST(EulerLaw, FluxOfStaticStateIsPurePressure) {
  EulerLaw law(1.4);
  const auto u = EulerLaw::conserved(1.0, {0.0, 0.0, 0.0}, 2.0, 1.4);
  std::array<double, 5> f{};
  law.flux(Axis::kX, u, f);
  EXPECT_DOUBLE_EQ(f[0], 0.0); // no mass flux
  EXPECT_DOUBLE_EQ(f[1], 2.0); // pressure in the momentum component
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_DOUBLE_EQ(f[4], 0.0); // no energy flux
}

TEST(EulerLaw, GalileanMassFlux) {
  EulerLaw law(1.4);
  const auto u = EulerLaw::conserved(2.0, {3.0, 0.0, 0.0}, 1.0, 1.4);
  std::array<double, 5> f{};
  law.flux(Axis::kX, u, f);
  EXPECT_DOUBLE_EQ(f[0], 6.0); // rho * v
}

TEST(EulerLaw, WavespeedIsSpeedPlusSound) {
  EulerLaw law(1.4);
  const auto u = EulerLaw::conserved(1.0, {2.0, 0.0, 0.0}, 1.0, 1.4);
  EXPECT_NEAR(law.max_wavespeed(Axis::kX, u), 2.0 + std::sqrt(1.4), 1e-12);
  EXPECT_NEAR(law.max_wavespeed(Axis::kY, u), std::sqrt(1.4), 1e-12);
}

TEST(EulerLaw, ValidateRejectsUnphysical) {
  EulerLaw law(1.4);
  std::array<double, 5> u = {-1.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_THROW(law.validate_state(u), contract_error);
  u = {1.0, 0.0, 0.0, 0.0, -1.0};
  EXPECT_THROW(law.validate_state(u), contract_error);
}

TEST(EulerLaw, ReflectFlipsNormalMomentumOnly) {
  EulerLaw law(1.4);
  std::array<double, 5> u = {1.0, 2.0, 3.0, 4.0, 10.0};
  law.reflect(Axis::kY, u);
  EXPECT_DOUBLE_EQ(u[1], 2.0);
  EXPECT_DOUBLE_EQ(u[2], -3.0);
  EXPECT_DOUBLE_EQ(u[3], 4.0);
}

TEST(IdealMhdLaw, ReducesToEulerWithoutField) {
  IdealMhdLaw mhd(1.4);
  EulerLaw euler(1.4);
  const auto um = IdealMhdLaw::conserved(1.3, {0.7, -0.2, 0.1}, 0.9,
                                         {0.0, 0.0, 0.0}, 1.4);
  const auto ue = EulerLaw::conserved(1.3, {0.7, -0.2, 0.1}, 0.9, 1.4);
  std::array<double, 8> fm{};
  std::array<double, 5> fe{};
  mhd.flux(Axis::kX, um, fm);
  euler.flux(Axis::kX, ue, fe);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(fm[i], fe[i], 1e-12);
  }
  EXPECT_NEAR(mhd.max_wavespeed(Axis::kX, um),
              euler.max_wavespeed(Axis::kX, ue), 1e-12);
}

TEST(IdealMhdLaw, GasPressureSubtractsMagneticEnergy) {
  IdealMhdLaw law(2.0);
  const auto u =
      IdealMhdLaw::conserved(1.0, {0.0, 0.0, 0.0}, 0.5, {1.0, 0.0, 0.0}, 2.0);
  EXPECT_NEAR(law.gas_pressure(u), 0.5, 1e-12);
}

TEST(IdealMhdLaw, FastSpeedExceedsSoundAndAlfven) {
  IdealMhdLaw law(5.0 / 3.0);
  const auto u =
      IdealMhdLaw::conserved(1.0, {0.0, 0.0, 0.0}, 1.0, {0.5, 0.5, 0.0},
                             5.0 / 3.0);
  const double a = std::sqrt(5.0 / 3.0);
  const double alfven_x = 0.5;
  EXPECT_GE(law.fast_speed(Axis::kX, u), a - 1e-12);
  EXPECT_GE(law.fast_speed(Axis::kX, u), alfven_x);
}

TEST(IdealMhdLaw, NormalFieldHasZeroFlux) {
  IdealMhdLaw law(5.0 / 3.0);
  const auto u = IdealMhdLaw::conserved(1.0, {1.0, 2.0, 3.0}, 1.0,
                                        {0.4, 0.5, 0.6}, 5.0 / 3.0);
  std::array<double, 8> f{};
  law.flux(Axis::kY, u, f);
  EXPECT_DOUBLE_EQ(f[6], 0.0); // d/dy of By vanishes in ideal MHD flux
}

TEST(IdealMhdLaw, ReflectFlipsNormalMomentumAndField) {
  IdealMhdLaw law(5.0 / 3.0);
  std::array<double, 8> u = {1.0, 1.0, 2.0, 3.0, 10.0, 0.1, 0.2, 0.3};
  law.reflect(Axis::kZ, u);
  EXPECT_DOUBLE_EQ(u[3], -3.0);
  EXPECT_DOUBLE_EQ(u[7], -0.3);
  EXPECT_DOUBLE_EQ(u[1], 1.0);
  EXPECT_DOUBLE_EQ(u[5], 0.1);
}

TEST(Laws, GammaValidation) {
  EXPECT_THROW(EulerLaw law(1.0), contract_error);
  EXPECT_THROW(IdealMhdLaw law(0.9), contract_error);
}

TEST(Laws, NonFiniteStateRejected) {
  AdvectionLaw law({1.0, 0.0, 0.0});
  const std::array<double, 1> u = {std::nan("")};
  EXPECT_THROW(law.validate_state(u), contract_error);
}

} // namespace
} // namespace dsem::cronos
