#include "cronos/problems.hpp"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "cronos/law.hpp"

namespace dsem::cronos {
namespace {

TEST(AdvectionGaussian, PeaksAtCenter) {
  const auto ic = advection_gaussian({0.5, 0.5, 0.5}, 0.1, 2.0, 0.5);
  std::array<double, 1> at_center{};
  std::array<double, 1> off_center{};
  ic(0.5, 0.5, 0.5, at_center);
  ic(0.8, 0.5, 0.5, off_center);
  EXPECT_NEAR(at_center[0], 2.5, 1e-12);
  EXPECT_LT(off_center[0], at_center[0]);
  EXPECT_GT(off_center[0], 0.5); // background floor
}

TEST(AdvectedGaussianValue, MatchesInitialConditionAtTimeZero) {
  // Only where no periodic image is closer than the direct distance (the
  // IC is the plain bump; the analytic solution lives on the torus).
  const std::array<double, 3> center = {0.3, 0.6, 0.5};
  const auto ic = advection_gaussian(center, 0.12, 1.5, 0.2);
  for (double x : {0.1, 0.4, 0.6}) {
    std::array<double, 1> u{};
    ic(x, 0.5, 0.5, u);
    const double expected = advected_gaussian_value(
        {x, 0.5, 0.5}, center, 0.12, 1.5, 0.2, {1.0, 0.0, 0.0}, 0.0,
        {1.0, 1.0, 1.0});
    EXPECT_NEAR(u[0], expected, 1e-12);
  }
}

TEST(AdvectedGaussianValue, WrapsAroundPeriodicDomain) {
  const std::array<double, 3> center = {0.9, 0.5, 0.5};
  // After t = 0.2 at velocity 1, the centre is at 1.1 -> wraps to 0.1.
  const double v = advected_gaussian_value({0.1, 0.5, 0.5}, center, 0.1, 1.0,
                                           0.0, {1.0, 0.0, 0.0}, 0.2,
                                           {1.0, 1.0, 1.0});
  EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(AdvectedGaussianValue, MinimumImageDistanceUsed) {
  // Point at 0.05 and centre at 0.95: distance through the boundary is
  // 0.1, not 0.9.
  const double near = advected_gaussian_value(
      {0.05, 0.5, 0.5}, {0.95, 0.5, 0.5}, 0.1, 1.0, 0.0, {0.0, 0.0, 0.0},
      0.0, {1.0, 1.0, 1.0});
  const double far = advected_gaussian_value(
      {0.45, 0.5, 0.5}, {0.95, 0.5, 0.5}, 0.1, 1.0, 0.0, {0.0, 0.0, 0.0},
      0.0, {1.0, 1.0, 1.0});
  EXPECT_GT(near, far);
}

TEST(BurgersSine, MeanAndAmplitude) {
  const auto ic = burgers_sine(0.5, 2.0);
  std::array<double, 1> u{};
  ic(0.25, 0.0, 0.0, u);
  EXPECT_NEAR(u[0], 2.5, 1e-12);
  ic(0.75, 0.0, 0.0, u);
  EXPECT_NEAR(u[0], 1.5, 1e-12);
}

TEST(SodShockTube, LeftRightStates) {
  const double gamma = 1.4;
  const auto ic = sod_shock_tube(gamma);
  EulerLaw law(gamma);
  std::array<double, 5> left{};
  std::array<double, 5> right{};
  ic(0.25, 0.5, 0.5, left);
  ic(0.75, 0.5, 0.5, right);
  EXPECT_DOUBLE_EQ(left[0], 1.0);
  EXPECT_DOUBLE_EQ(right[0], 0.125);
  EXPECT_NEAR(law.pressure(left), 1.0, 1e-12);
  EXPECT_NEAR(law.pressure(right), 0.1, 1e-12);
  // At rest on both sides.
  EXPECT_DOUBLE_EQ(left[1], 0.0);
  EXPECT_DOUBLE_EQ(right[1], 0.0);
}

TEST(BrioWu, FieldConfiguration) {
  const double gamma = 2.0;
  const auto ic = brio_wu(gamma);
  std::array<double, 8> left{};
  std::array<double, 8> right{};
  ic(0.25, 0.5, 0.5, left);
  ic(0.75, 0.5, 0.5, right);
  EXPECT_DOUBLE_EQ(left[5], 0.75);  // Bx continuous
  EXPECT_DOUBLE_EQ(right[5], 0.75);
  EXPECT_DOUBLE_EQ(left[6], 1.0);   // By flips sign
  EXPECT_DOUBLE_EQ(right[6], -1.0);
}

TEST(OrszagTang, ValidStateEverywhere) {
  const double gamma = 5.0 / 3.0;
  const auto ic = orszag_tang(gamma);
  IdealMhdLaw law(gamma);
  std::array<double, 8> u{};
  for (double x = 0.05; x < 1.0; x += 0.25) {
    for (double y = 0.05; y < 1.0; y += 0.25) {
      ic(x, y, 0.5, u);
      EXPECT_NO_THROW(law.validate_state(u));
      EXPECT_NEAR(u[0], gamma * gamma, 1e-12); // uniform density
    }
  }
}

TEST(OrszagTang, VelocityFieldIsDivergenceFreeAnalytically) {
  // v = (-sin 2*pi*y, sin 2*pi*x, 0): d(vx)/dx + d(vy)/dy = 0. Spot-check
  // via central differences of the IC.
  const auto ic = orszag_tang(5.0 / 3.0);
  const double h = 1e-5;
  std::array<double, 8> up{};
  std::array<double, 8> um{};
  for (double x : {0.2, 0.6}) {
    for (double y : {0.3, 0.8}) {
      ic(x + h, y, 0.0, up);
      ic(x - h, y, 0.0, um);
      const double dvx_dx = (up[1] / up[0] - um[1] / um[0]) / (2.0 * h);
      ic(x, y + h, 0.0, up);
      ic(x, y - h, 0.0, um);
      const double dvy_dy = (up[2] / up[0] - um[2] / um[0]) / (2.0 * h);
      EXPECT_NEAR(dvx_dx + dvy_dy, 0.0, 1e-6);
    }
  }
}

TEST(MhdTurbulence, MachNumberRespected) {
  const double gamma = 5.0 / 3.0;
  const double mach = 0.3;
  const auto ic = mhd_turbulence_ic(gamma, mach);
  IdealMhdLaw law(gamma);
  std::array<double, 8> u{};
  double max_v = 0.0;
  for (double x = 0.0; x < 1.0; x += 0.1) {
    for (double y = 0.0; y < 1.0; y += 0.1) {
      ic(x, y, 0.35, u);
      EXPECT_NO_THROW(law.validate_state(u));
      const double v = std::sqrt(u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) /
                       u[0];
      max_v = std::max(max_v, v);
    }
  }
  const double cs = std::sqrt(gamma); // rho = p = 1
  EXPECT_LE(max_v, mach * cs * 1.01);
  EXPECT_GT(max_v, 0.2 * mach * cs); // actually perturbed
}

} // namespace
} // namespace dsem::cronos
