#include "cronos/grid.hpp"

#include <gtest/gtest.h>

namespace dsem::cronos {
namespace {

TEST(GridDims, CellCountAndName) {
  const GridDims dims{160, 64, 64};
  EXPECT_EQ(dims.cell_count(), 160u * 64u * 64u);
  EXPECT_EQ(dims.to_string(), "160x64x64");
}

TEST(Field3D, FillAndIndex) {
  Field3D f(GridDims{4, 3, 2}, 1.0);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0), 1.0);
  f.at(1, 2, 3) = 9.0;
  EXPECT_DOUBLE_EQ(f.at(1, 2, 3), 9.0);
}

TEST(Field3D, HaloCellsAddressable) {
  Field3D f(GridDims{2, 2, 2});
  f.at(-kGhost, -kGhost, -kGhost) = 1.0;
  f.at(2 + kGhost - 1, 2 + kGhost - 1, 2 + kGhost - 1) = 2.0;
  EXPECT_DOUBLE_EQ(f.at(-2, -2, -2), 1.0);
  EXPECT_DOUBLE_EQ(f.at(3, 3, 3), 2.0);
}

TEST(Field3D, DistinctCellsDoNotAlias) {
  const GridDims dims{5, 4, 3};
  Field3D f(dims);
  double v = 0.0;
  for (int z = -kGhost; z < dims.nz + kGhost; ++z) {
    for (int y = -kGhost; y < dims.ny + kGhost; ++y) {
      for (int x = -kGhost; x < dims.nx + kGhost; ++x) {
        f.at(z, y, x) = v++;
      }
    }
  }
  v = 0.0;
  for (int z = -kGhost; z < dims.nz + kGhost; ++z) {
    for (int y = -kGhost; y < dims.ny + kGhost; ++y) {
      for (int x = -kGhost; x < dims.nx + kGhost; ++x) {
        EXPECT_DOUBLE_EQ(f.at(z, y, x), v++);
      }
    }
  }
}

TEST(Field3D, InteriorSumIgnoresHalo) {
  Field3D f(GridDims{2, 2, 2}, 0.0);
  f.at(-1, 0, 0) = 100.0; // halo
  f.at(0, 0, 0) = 1.0;
  f.at(1, 1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(f.interior_sum(), 3.0);
}

TEST(Field3D, InteriorMaxAbs) {
  Field3D f(GridDims{2, 2, 2}, 0.5);
  f.at(1, 0, 1) = -7.0;
  f.at(-2, -2, -2) = 100.0; // halo, ignored
  EXPECT_DOUBLE_EQ(f.interior_max_abs(), 7.0);
}

TEST(Field3D, RejectsDegenerateDims) {
  EXPECT_THROW(Field3D(GridDims{0, 1, 1}), dsem::contract_error);
}

TEST(State, CellGatherScatterRoundTrip) {
  State s(GridDims{3, 3, 3}, 5);
  const std::vector<double> in = {1.0, 2.0, 3.0, 4.0, 5.0};
  s.set_cell(1, 2, 0, in);
  std::vector<double> out(5);
  s.cell(1, 2, 0, out);
  EXPECT_EQ(in, out);
}

TEST(State, VariablesAreIndependentFields) {
  State s(GridDims{2, 2, 2}, 2);
  s.var(0).at(0, 0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(s.var(1).at(0, 0, 0), 0.0);
}

} // namespace
} // namespace dsem::cronos
