// Additional physics validation: reflecting-wall conservation, Euler
// acoustic consistency, and multi-dimensional advection.
#include "cronos/solver.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cronos/problems.hpp"

namespace dsem::cronos {
namespace {

struct Harness {
  Harness() : sim_dev(sim::v100(), sim::NoiseConfig::none()),
              device(sim_dev), queue(device, synergy::ExecMode::kValidate) {}
  sim::Device sim_dev;
  synergy::Device device;
  synergy::Queue queue;
};

TEST(SolverPhysics, ReflectingBoxConservesMassAndEnergy) {
  Harness h;
  SolverConfig config;
  config.dims = {48, 1, 1};
  config.boundaries = {BoundaryKind::kReflecting, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  // A pressure pulse sloshing in a closed box.
  solver.initialize([gamma](double x, double, double, std::span<double> u) {
    const double p = 1.0 + 0.5 * std::exp(-80.0 * (x - 0.5) * (x - 0.5));
    const auto s = EulerLaw::conserved(1.0, {0.0, 0.0, 0.0}, p, gamma);
    std::copy(s.begin(), s.end(), u.begin());
  });
  const double mass0 = solver.state().var(0).interior_sum();
  const double energy0 = solver.state().var(4).interior_sum();
  solver.run_until(h.queue, 0.5);
  // Mass is exactly conserved; total energy too (no flux through walls).
  EXPECT_NEAR(solver.state().var(0).interior_sum(), mass0, mass0 * 1e-10);
  EXPECT_NEAR(solver.state().var(4).interior_sum(), energy0,
              energy0 * 1e-8);
}

TEST(SolverPhysics, ReflectedPulseReturnsMomentumToZero) {
  Harness h;
  SolverConfig config;
  config.dims = {48, 1, 1};
  config.boundaries = {BoundaryKind::kReflecting, BoundaryKind::kPeriodic,
                       BoundaryKind::kPeriodic};
  const double gamma = 1.4;
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  // A symmetric pulse: net momentum stays ~0 through reflections.
  solver.initialize([gamma](double x, double, double, std::span<double> u) {
    const double p = 1.0 + 0.5 * std::exp(-80.0 * (x - 0.5) * (x - 0.5));
    const auto s = EulerLaw::conserved(1.0, {0.0, 0.0, 0.0}, p, gamma);
    std::copy(s.begin(), s.end(), u.begin());
  });
  solver.run_until(h.queue, 0.4);
  const double mx = solver.state().var(1).interior_sum();
  EXPECT_NEAR(mx, 0.0, 1e-8);
}

TEST(SolverPhysics, AcousticWaveSpeedMatchesSoundSpeed) {
  // A small right-going acoustic pulse travels at ~c_s = sqrt(gamma p/rho).
  Harness h;
  SolverConfig config;
  config.dims = {256, 1, 1};
  const double gamma = 1.4;
  const double cs = std::sqrt(gamma);
  Solver solver(std::make_shared<EulerLaw>(gamma), config);
  const double eps = 1e-3;
  solver.initialize([&](double x, double, double, std::span<double> u) {
    const double bump = eps * std::exp(-300.0 * (x - 0.3) * (x - 0.3));
    // Right-moving simple wave linearization.
    const double rho = 1.0 + bump;
    const double v = cs * bump;
    const double p = 1.0 + gamma * bump;
    const auto s = EulerLaw::conserved(rho, {v, 0.0, 0.0}, p, gamma);
    std::copy(s.begin(), s.end(), u.begin());
  });
  const double t_end = 0.25;
  solver.run_until(h.queue, t_end);
  // Locate the density maximum: should have moved ~cs * t.
  int best = 0;
  double best_v = -1e9;
  for (int x = 0; x < 256; ++x) {
    const double v = solver.state().var(0).at(0, 0, x);
    if (v > best_v) {
      best_v = v;
      best = x;
    }
  }
  const double moved = (best + 0.5) / 256.0 - 0.3;
  EXPECT_NEAR(moved, cs * t_end, 0.04);
}

TEST(SolverPhysics, DiagonalAdvectionMatchesAnalytic) {
  Harness h;
  const std::array<double, 3> vel = {1.0, 1.0, 0.0};
  SolverConfig config;
  config.dims = {64, 64, 1};
  Solver solver(std::make_shared<AdvectionLaw>(vel), config);
  const std::array<double, 3> center = {0.5, 0.5, 0.5};
  solver.initialize(advection_gaussian(center, 0.1, 1.0));
  solver.run_until(h.queue, 0.5);
  double err = 0.0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const auto c = solver.cell_center(0, y, x);
      const double expected = advected_gaussian_value(
          c, center, 0.1, 1.0, 0.0, vel, 0.5, {1.0, 1.0, 1.0});
      err += std::abs(solver.state().var(0).at(0, y, x) - expected);
    }
  }
  EXPECT_LT(err / (64.0 * 64.0), 0.01);
}

TEST(SolverPhysics, MhdTurbulenceEnergyBudgetClosed) {
  Harness h;
  SolverConfig config;
  config.dims = {16, 16, 16};
  const double gamma = 5.0 / 3.0;
  Solver solver(std::make_shared<IdealMhdLaw>(gamma), config);
  solver.initialize(mhd_turbulence_ic(gamma));
  const double total0 = solver.state().var(4).interior_sum();
  solver.run(h.queue, 8);
  // Total (gas + kinetic + magnetic) energy conserved under periodic BCs.
  EXPECT_NEAR(solver.state().var(4).interior_sum(), total0,
              std::abs(total0) * 1e-10);
}

} // namespace
} // namespace dsem::cronos
