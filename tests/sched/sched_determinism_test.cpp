// Golden scheduler determinism (grouped suite, heavy tier): scheduling a
// 10^4-job deadline-tagged trace over a 4-rank cluster with really
// trained models produces bit-identical outcomes, stats, and
// deterministic metrics snapshots for thread pools of 1, 2, and 8
// workers — and the model-driven policy dominates the max-clock baseline
// on cluster energy at equal or fewer deadline misses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "sched/scheduler.hpp"
#include "../serve/serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::ModelRegistry;
using serve::TimedJob;
using serve::TrafficConfig;

// Trained once, shared by every test in the grouped suite.
const ModelRegistry& shared_registry() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry;
    r->put(serve_test::train_compact_artifact("cronos"));
    r->put(serve_test::train_compact_artifact("ligen"));
    return r;
  }();
  return *registry;
}

const std::vector<TimedJob>& shared_trace() {
  static const std::vector<TimedJob> trace = [] {
    TrafficConfig traffic;
    traffic.requests = 10000;
    traffic.arrival_rate_hz = 4.0; // a moderately loaded 4-rank cluster
    traffic.population = 64;
    traffic.deadline_slacks = {1.5, 2.0, 3.0, 4.0};
    return serve::generate_job_trace(traffic);
  }();
  return trace;
}

struct SchedRun {
  std::vector<sched::JobOutcome> outcomes;
  sched::SchedStats stats;
  std::string metrics_json; ///< deterministic-only snapshot
};

SchedRun run_policy(sched::FrequencyPolicy policy, ThreadPool* pool) {
  celerity::ClusterConfig config;
  config.nodes = 4;
  celerity::Cluster cluster(sim::v100(), config);
  sched::SchedConfig sched_config;
  sched_config.frequency = policy;
  sched_config.margin = policy == sched::FrequencyPolicy::kModel ? 6.0 : 1.0;
  sched_config.pool = pool;

  metrics::Registry::global().clear();
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  sched::ClusterScheduler scheduler(cluster, shared_registry(),
                                    sched_config);
  SchedRun run;
  run.outcomes = scheduler.run(shared_trace());
  run.stats = scheduler.stats();
  run.metrics_json =
      metrics::Registry::global().snapshot().to_json(true).dump(2);
  metrics::set_enabled(was_enabled);
  metrics::Registry::global().clear();
  return run;
}

SchedRun run_model_with_pool(std::size_t threads) {
  ThreadPool pool(threads);
  return run_policy(sched::FrequencyPolicy::kModel, &pool);
}

TEST(SchedDeterminism, OutcomesIdenticalForPools1_2_8) {
  const SchedRun serial = run_model_with_pool(1);
  const SchedRun two = run_model_with_pool(2);
  const SchedRun eight = run_model_with_pool(8);
  ASSERT_EQ(serial.outcomes.size(), 10000u);
  // Full JobOutcome equality: placements, clocks, every simulated
  // timestamp and energy, bit for bit.
  EXPECT_EQ(serial.outcomes, two.outcomes);
  EXPECT_EQ(serial.outcomes, eight.outcomes);
}

TEST(SchedDeterminism, StatsAndMetricsSnapshotsIdenticalForPools1_2_8) {
  const SchedRun serial = run_model_with_pool(1);
  const SchedRun two = run_model_with_pool(2);
  const SchedRun eight = run_model_with_pool(8);

  for (const SchedRun* other : {&two, &eight}) {
    EXPECT_EQ(serial.stats.completed, other->stats.completed);
    EXPECT_EQ(serial.stats.rejected, other->stats.rejected);
    EXPECT_EQ(serial.stats.misses, other->stats.misses);
    EXPECT_EQ(serial.stats.infeasible, other->stats.infeasible);
    EXPECT_EQ(serial.stats.energy_j, other->stats.energy_j);
    EXPECT_EQ(serial.stats.busy_energy_j, other->stats.busy_energy_j);
    EXPECT_EQ(serial.stats.idle_energy_j, other->stats.idle_energy_j);
    EXPECT_EQ(serial.stats.makespan_s, other->stats.makespan_s);
    EXPECT_EQ(serial.metrics_json, other->metrics_json);
  }
  EXPECT_FALSE(serial.metrics_json.empty());
}

TEST(SchedDeterminism, ModelPolicyDominatesMaxClockBaseline) {
  const SchedRun model = run_model_with_pool(8);
  const SchedRun max_clock =
      run_policy(sched::FrequencyPolicy::kMaxClock, nullptr);
  ASSERT_EQ(model.stats.jobs, max_clock.stats.jobs);
  // Strictly less cluster energy at equal or fewer deadline misses: the
  // model's per-job clock picks convert prediction into energy savings
  // the naive always-max policy cannot see.
  EXPECT_LT(model.stats.energy_j, max_clock.stats.energy_j);
  EXPECT_LE(model.stats.misses, max_clock.stats.misses);
}

} // namespace
