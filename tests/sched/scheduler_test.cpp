// Unit tests for the deadline-aware cluster scheduler: hand-computed
// frequency picks and placements, a 2-rank / 3-job toy schedule, and the
// graceful-fallback paths (run-at-max vs reject).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/scheduler.hpp"
#include "serve/registry.hpp"
#include "sim/device_spec.hpp"
#include "../serve/serve_test_util.hpp"

namespace {

using namespace dsem;
using sched::ClusterScheduler;
using sched::Fallback;
using sched::FrequencyPick;
using sched::FrequencyPolicy;
using sched::Placement;
using sched::SchedConfig;
using serve::TimedJob;

// Candidate curves for the hand-computed cases: four clocks, ascending;
// faster clocks cost more energy.
const std::vector<double> kTimes = {4.0, 3.0, 2.0, 1.0};
const std::vector<double> kEnergies = {10.0, 12.0, 16.0, 25.0};

TEST(SchedulerUnit, PicksCheapestFeasibleFrequency) {
  // Deadline 3.5 from start 0: clocks 1..3 are feasible; 12 J is the
  // cheapest of {12, 16, 25}.
  const FrequencyPick pick =
      sched::pick_deadline_frequency(kTimes, kEnergies, 0.0, 3.5, 1.0);
  EXPECT_EQ(pick, (FrequencyPick{1, true}));
}

TEST(SchedulerUnit, MarginShrinksTheFeasibleSet) {
  // margin 1.5: need 1.5 * t <= 3.5, so only t in {2, 1} qualify.
  const FrequencyPick pick =
      sched::pick_deadline_frequency(kTimes, kEnergies, 0.0, 3.5, 1.5);
  EXPECT_EQ(pick, (FrequencyPick{2, true}));
}

TEST(SchedulerUnit, LateStartShrinksTheFeasibleSet) {
  // Same deadline but starting at 1.0: need t <= 2.5.
  const FrequencyPick pick =
      sched::pick_deadline_frequency(kTimes, kEnergies, 1.0, 3.5, 1.0);
  EXPECT_EQ(pick, (FrequencyPick{2, true}));
}

TEST(SchedulerUnit, InfeasibleFallsBackToMaxFrequency) {
  // Even the fastest clock (1 s) cannot meet a 0.5 s deadline.
  const FrequencyPick pick =
      sched::pick_deadline_frequency(kTimes, kEnergies, 0.0, 0.5, 1.0);
  EXPECT_EQ(pick, (FrequencyPick{3, false}));
}

TEST(SchedulerUnit, EnergyTiesPickTheLowerFrequency) {
  const std::vector<double> times = {2.0, 1.0};
  const std::vector<double> energies = {10.0, 10.0};
  const FrequencyPick pick =
      sched::pick_deadline_frequency(times, energies, 0.0, 100.0, 1.0);
  EXPECT_EQ(pick, (FrequencyPick{0, true}));
}

TEST(SchedulerUnit, FirstFitPicksEarliestRankLowestOnTies) {
  const std::vector<double> free_s = {3.0, 1.0, 2.0};
  EXPECT_EQ(sched::place_first_fit(free_s), 1);
  const std::vector<double> ties = {2.0, 2.0, 2.0};
  EXPECT_EQ(sched::place_first_fit(ties), 0);
  const std::vector<double> one = {5.0};
  EXPECT_EQ(sched::place_first_fit(one), 0);
}

// --- toy schedules on a real (noise-free) 2-rank cluster ---------------

celerity::Cluster make_cluster(int nodes) {
  celerity::ClusterConfig config;
  config.nodes = nodes;
  return celerity::Cluster(sim::v100(), config, sim::NoiseConfig::none());
}

TimedJob cronos_job(double arrival_s, double slack) {
  TimedJob job;
  job.arrival_s = arrival_s;
  job.deadline_slack = slack;
  job.spec.application = "cronos";
  job.spec.dims = {16, 16, 16};
  job.spec.steps = 2;
  // Features match the synthetic 3-feature artifacts of serve_test_util.
  job.request.application = "cronos";
  job.request.features = {16.0, 8.0, 100.0};
  return job;
}

TEST(SchedulerToy, TwoRanksThreeJobsPlaceAsComputedByHand) {
  // Three simultaneous arrivals on two idle, identical, noise-free ranks:
  // first fit sends job 0 to rank 0 and job 1 to rank 1; both finish at
  // the same instant (identical work, noise-free), so job 2 ties back to
  // rank 0 and starts exactly at job 0's finish.
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry; // baselines never consult it
  SchedConfig config;
  config.frequency = FrequencyPolicy::kStaticDefault;
  ClusterScheduler scheduler(cluster, registry, config);

  const std::vector<TimedJob> jobs = {cronos_job(0.0, 10.0),
                                      cronos_job(0.0, 10.0),
                                      cronos_job(0.0, 10.0)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].rank, 0);
  EXPECT_EQ(outcomes[1].rank, 1);
  EXPECT_EQ(outcomes[2].rank, 0);
  EXPECT_DOUBLE_EQ(outcomes[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(outcomes[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(outcomes[0].finish_s, outcomes[1].finish_s);
  EXPECT_DOUBLE_EQ(outcomes[2].start_s, outcomes[0].finish_s);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.missed);
    EXPECT_GT(outcome.true_time_s, 0.0);
    EXPECT_GT(outcome.true_energy_j, 0.0);
  }
  const auto& stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.makespan_s, outcomes[2].finish_s);
  EXPECT_GT(stats.idle_energy_j, 0.0); // rank 1 idles while job 2 runs
  EXPECT_DOUBLE_EQ(stats.energy_j,
                   stats.busy_energy_j + stats.idle_energy_j);
}

TEST(SchedulerToy, ModelPolicyPicksTheFrequencyComputedByHand) {
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(11));
  SchedConfig config;
  config.frequency = FrequencyPolicy::kModel;
  config.freq_stride = 1; // plan over the full {600..1400} schedule
  ClusterScheduler scheduler(cluster, registry, config);

  // Slack 5 with anchored predictions (times = ref / speedup, speedup
  // well above 1/5 everywhere) keeps every candidate feasible.
  const std::vector<TimedJob> jobs = {cronos_job(0.0, 5.0)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 1u);
  const auto& outcome = outcomes[0];
  ASSERT_FALSE(outcome.infeasible);

  // Recompute the pick by hand: the scheduler anchors the model's
  // speedup / normalized-energy shape at the job's noise-free
  // default-clock reference run, then takes the cheapest candidate
  // meeting the deadline.
  sim::Device ref_device(sim::v100(), sim::NoiseConfig::none(), 0);
  synergy::Device ref_synergy(ref_device);
  synergy::Queue ref_queue(ref_synergy);
  serve::make_workload(jobs[0].spec)->submit(ref_queue);
  const double ref_time_s = ref_queue.total_time_s();
  const double ref_energy_j = ref_queue.total_energy_j();

  const auto artifact =
      registry.require(serve::ModelKey{"cronos", "v100"});
  const core::Prediction pred =
      artifact->ds->predict(jobs[0].request.features, serve_test::kFreqs,
                            serve_test::kDefaultFreq);
  std::vector<double> times;
  std::vector<double> energies;
  for (std::size_t k = 0; k < pred.speedup.size(); ++k) {
    times.push_back(ref_time_s / pred.speedup[k]);
    energies.push_back(ref_energy_j * pred.norm_energy[k]);
  }
  const sched::FrequencyPick pick = sched::pick_deadline_frequency(
      times, energies, 0.0, outcome.deadline_s, 1.0);
  EXPECT_TRUE(pick.feasible);
  EXPECT_DOUBLE_EQ(outcome.freq_mhz, serve_test::kFreqs[pick.index]);
  EXPECT_DOUBLE_EQ(outcome.predicted_time_s, times[pick.index]);
  EXPECT_DOUBLE_EQ(outcome.predicted_energy_j, energies[pick.index]);
}

TEST(SchedulerToy, InfeasibleJobRunsAtMaxUnderRunAtMaxFallback) {
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(11));
  SchedConfig config;
  config.frequency = FrequencyPolicy::kModel;
  ClusterScheduler scheduler(cluster, registry, config);

  // Slack so small no clock can make the deadline.
  const std::vector<TimedJob> jobs = {cronos_job(0.0, 1e-9)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].infeasible);
  EXPECT_FALSE(outcomes[0].rejected);
  EXPECT_TRUE(outcomes[0].missed); // ran, but past the deadline
  EXPECT_DOUBLE_EQ(outcomes[0].freq_mhz, serve_test::kFreqs.back());
  EXPECT_EQ(scheduler.stats().infeasible, 1u);
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST(SchedulerToy, InfeasibleJobIsDroppedUnderRejectFallback) {
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(11));
  SchedConfig config;
  config.frequency = FrequencyPolicy::kModel;
  config.fallback = Fallback::kReject;
  ClusterScheduler scheduler(cluster, registry, config);

  const std::vector<TimedJob> jobs = {cronos_job(0.0, 1e-9),
                                      cronos_job(0.0, 5.0)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].rejected);
  EXPECT_TRUE(outcomes[0].missed);
  EXPECT_EQ(outcomes[0].rank, -1);
  EXPECT_DOUBLE_EQ(outcomes[0].true_energy_j, 0.0);
  EXPECT_FALSE(outcomes[1].rejected);
  const auto& stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(SchedulerToy, MaxClockBaselinePinsEveryRankToTheTopClock) {
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry;
  SchedConfig config;
  config.frequency = FrequencyPolicy::kMaxClock;
  ClusterScheduler scheduler(cluster, registry, config);

  const auto supported = cluster.device(0).supported_frequencies();
  const double max_mhz =
      *std::max_element(supported.begin(), supported.end());
  const std::vector<TimedJob> jobs = {cronos_job(0.0, 10.0)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(outcomes[0].freq_mhz, max_mhz);
  EXPECT_EQ(scheduler.stats().clock_rejections, 0u);
  // The broadcast is undone after the run.
  EXPECT_DOUBLE_EQ(cluster.device(0).current_frequency(),
                   cluster.device(0).default_frequency());
}

TEST(SchedulerToy, EnergyGreedyMatchesFirstFitOnIdenticalIdleRanks) {
  // With both ranks idle and identical curves everywhere, greedy has no
  // energy gradient to exploit and must resolve ties to the lower rank.
  auto cluster = make_cluster(2);
  serve::ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(11));
  SchedConfig config;
  config.frequency = FrequencyPolicy::kModel;
  config.placement = Placement::kEnergyGreedy;
  ClusterScheduler scheduler(cluster, registry, config);

  const std::vector<TimedJob> jobs = {cronos_job(0.0, 5.0)};
  const auto outcomes = scheduler.run(jobs);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].rank, 0);
}

} // namespace
