#include "microbench/suite.hpp"

#include <set>

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "sim/device.hpp"

namespace dsem::microbench {
namespace {

TEST(Suite, Has106Kernels) {
  const auto suite = make_suite();
  EXPECT_EQ(suite.size(), kSuiteSize);
  EXPECT_EQ(suite.size(), 106u); // Fan et al.'s corpus size
}

TEST(Suite, AllProfilesValidAndNamed) {
  std::set<std::string> names;
  for (const auto& mb : make_suite()) {
    EXPECT_NO_THROW(sim::validate(mb.profile));
    EXPECT_GT(mb.work_items, 0u);
    EXPECT_TRUE(names.insert(mb.profile.name).second)
        << "duplicate name " << mb.profile.name;
  }
}

TEST(Suite, DeterministicAcrossCalls) {
  const auto a = make_suite();
  const auto b = make_suite();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].profile.name, b[i].profile.name);
    EXPECT_DOUBLE_EQ(a[i].profile.float_add, b[i].profile.float_add);
    EXPECT_EQ(a[i].work_items, b[i].work_items);
  }
}

TEST(Suite, EveryStaticFeatureIsStressedSomewhere) {
  // For each Table 1 feature, at least one kernel must make it the
  // dominant fraction of its feature vector.
  const auto suite = make_suite();
  for (std::size_t f = 0; f < sim::kNumStaticFeatures; ++f) {
    bool dominant = false;
    for (const auto& mb : suite) {
      const auto vec = core::static_feature_vector(mb.profile);
      if (vec[f] > 0.5) {
        dominant = true;
        break;
      }
    }
    EXPECT_TRUE(dominant) << "feature " << sim::kStaticFeatureNames[f]
                          << " never dominates any kernel";
  }
}

TEST(Suite, CoversMemoryAndComputeBoundRegimes) {
  const auto spec = sim::v100();
  int mem_bound = 0;
  int compute_bound = 0;
  for (const auto& mb : make_suite()) {
    const auto b = sim::execute(spec, mb.profile, mb.work_items, 1312.0);
    if (b.mem_s > b.compute_s) {
      ++mem_bound;
    } else {
      ++compute_bound;
    }
  }
  EXPECT_GT(mem_bound, 10);
  EXPECT_GT(compute_bound, 10);
}

TEST(Suite, CoversUtilizationRegimes) {
  std::set<std::size_t> sizes;
  for (const auto& mb : make_suite()) {
    sizes.insert(mb.work_items);
  }
  EXPECT_GE(sizes.size(), 3u);
}

TEST(Suite, KernelsRunOnBothDevices) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  for (const auto& mb : make_suite()) {
    const auto rn = nv.launch(mb.profile, mb.work_items);
    const auto ra = amd.launch(mb.profile, mb.work_items);
    EXPECT_GT(rn.time_s, 0.0);
    EXPECT_GT(ra.energy_j, 0.0);
  }
}

} // namespace
} // namespace dsem::microbench
