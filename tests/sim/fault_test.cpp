#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include "sim/device.hpp"

namespace dsem::sim {
namespace {

KernelProfile work_kernel() {
  KernelProfile p;
  p.name = "work";
  p.float_add = 100.0;
  p.float_mul = 100.0;
  p.global_bytes = 64.0;
  return p;
}

TEST(FaultConfig, DefaultIsInert) {
  const FaultConfig config;
  EXPECT_FALSE(config.any());
  FaultInjector injector(config, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_fail_set_frequency());
    EXPECT_FALSE(injector.should_fail_launch());
    EXPECT_EQ(injector.energy_read_fault(), FaultInjector::EnergyFault::kNone);
  }
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultConfig, UniformSetsEveryRate) {
  const FaultConfig config = FaultConfig::uniform(0.2);
  EXPECT_TRUE(config.any());
  EXPECT_DOUBLE_EQ(config.set_frequency_rate, 0.2);
  EXPECT_DOUBLE_EQ(config.energy_read_drop_rate, 0.2);
  EXPECT_DOUBLE_EQ(config.energy_read_garbage_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.launch_rate, 0.2);
}

TEST(FaultInjector, ScheduleIsAPureFunctionOfSeed) {
  const FaultConfig config = FaultConfig::uniform(0.3);
  FaultInjector a(config, 1234);
  FaultInjector b(config, 1234);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.should_fail_set_frequency(), b.should_fail_set_frequency());
    EXPECT_EQ(a.should_fail_launch(), b.should_fail_launch());
    EXPECT_EQ(a.energy_read_fault(), b.energy_read_fault());
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);
}

TEST(FaultInjector, RatesActuallyBiteAtRoughlyTheConfiguredRate) {
  FaultConfig config;
  config.launch_rate = 0.25;
  FaultInjector injector(config, 7);
  int fired = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    fired += injector.should_fail_launch() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.25, 0.03);
}

TEST(FaultInjector, GarbageEnergyIsAlwaysNegative) {
  FaultInjector injector(FaultConfig::uniform(0.5), 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(injector.garbage_energy(12.5), 0.0);
    EXPECT_LT(injector.garbage_energy(0.0), 0.0);
  }
}

TEST(TransientFaultTest, CarriesKindAndMessage) {
  const TransientFault fault(FaultKind::kEnergyRead, "boom");
  EXPECT_EQ(fault.kind(), FaultKind::kEnergyRead);
  EXPECT_STREQ(fault.what(), "boom");
  EXPECT_STREQ(to_string(FaultKind::kSetFrequency), "set-frequency");
  EXPECT_STREQ(to_string(FaultKind::kEnergyRead), "energy-read");
  EXPECT_STREQ(to_string(FaultKind::kKernelLaunch), "kernel-launch");
}

TEST(DeviceFaults, ZeroRateDeviceIsBitIdenticalToUnfaultedDevice) {
  Device plain(v100(), NoiseConfig{}, 0xABCD);
  Device faulted(v100(), NoiseConfig{}, 0xABCD);
  faulted.set_fault_config(FaultConfig{}); // all-zero rates
  const KernelProfile kernel = work_kernel();
  for (int i = 0; i < 50; ++i) {
    const LaunchResult a = plain.launch(kernel, 1 << 16);
    const LaunchResult b = faulted.launch(kernel, 1 << 16);
    EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  }
}

TEST(DeviceFaults, EnablingFaultsDoesNotPerturbTheNoiseStream) {
  // The injector draws from its own salted stream: launches that survive
  // injection must observe exactly the noise an unfaulted device draws.
  Device plain(v100(), NoiseConfig{}, 0x77);
  Device faulted(v100(), NoiseConfig{}, 0x77);
  FaultConfig config;
  config.launch_rate = 0.3; // only aborted launches; no read corruption
  faulted.set_fault_config(config);
  const KernelProfile kernel = work_kernel();
  for (int i = 0; i < 100; ++i) {
    const LaunchResult a = plain.launch(kernel, 1 << 16);
    for (;;) {
      try {
        const LaunchResult b = faulted.launch(kernel, 1 << 16);
        EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
        EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
        break;
      } catch (const TransientFault&) {
        // Aborted before the noise draw; retry reaches the same draw.
      }
    }
  }
  EXPECT_GT(faulted.faults_injected(), 0u);
}

TEST(DeviceFaults, SetFrequencyRejectionsAreRetryable) {
  Device dev(v100(), NoiseConfig::none(), 0x1111);
  FaultConfig config;
  config.set_frequency_rate = 0.5;
  dev.set_fault_config(config);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      dev.set_core_frequency(900.0);
    } catch (const TransientFault& fault) {
      EXPECT_EQ(fault.kind(), FaultKind::kSetFrequency);
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 200);
  // reset_frequency is the recovery path and never injects.
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(dev.reset_frequency());
  }
}

TEST(DeviceFaults, CountersAccumulateTrueValuesThroughBadReads) {
  Device clean(v100(), NoiseConfig::none(), 0x2222);
  Device dirty(v100(), NoiseConfig::none(), 0x2222);
  FaultConfig config;
  config.energy_read_drop_rate = 0.3;
  config.energy_read_garbage_rate = 0.3;
  dirty.set_fault_config(config);
  const KernelProfile kernel = work_kernel();

  int dropped = 0;
  int garbage = 0;
  for (int i = 0; i < 200; ++i) {
    const LaunchResult truth = clean.launch(kernel, 1 << 14);
    try {
      const LaunchResult seen = dirty.launch(kernel, 1 << 14);
      if (seen.energy_j < 0.0) {
        ++garbage;
      } else {
        EXPECT_DOUBLE_EQ(seen.energy_j, truth.energy_j);
      }
    } catch (const TransientFault& fault) {
      EXPECT_EQ(fault.kind(), FaultKind::kEnergyRead);
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(garbage, 0);
  // The hardware consumed the energy whether or not the read succeeded.
  EXPECT_DOUBLE_EQ(dirty.energy_joules(), clean.energy_joules());
  EXPECT_EQ(dirty.launch_count(), clean.launch_count());
}

TEST(DeviceFaults, ReplicaInheritsConfigWithItsOwnSchedule) {
  Device base(v100(), NoiseConfig{}, 0x3333);
  const FaultConfig config = FaultConfig::uniform(0.2);
  base.set_fault_config(config);

  Device rep_a = base.replica(derive_seed(base.seed(), 5));
  Device rep_b = base.replica(derive_seed(base.seed(), 5));
  EXPECT_EQ(rep_a.fault_config(), config);

  // Same replica seed -> identical schedule; observed as identical
  // outcomes over a run of launches.
  const KernelProfile kernel = work_kernel();
  for (int i = 0; i < 100; ++i) {
    double ea = -1.0;
    double eb = -1.0;
    bool threw_a = false;
    bool threw_b = false;
    try {
      ea = rep_a.launch(kernel, 1 << 14).energy_j;
    } catch (const TransientFault&) {
      threw_a = true;
    }
    try {
      eb = rep_b.launch(kernel, 1 << 14).energy_j;
    } catch (const TransientFault&) {
      threw_b = true;
    }
    EXPECT_EQ(threw_a, threw_b);
    EXPECT_DOUBLE_EQ(ea, eb);
  }
}

} // namespace
} // namespace dsem::sim
