#include "sim/kernel_ir.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/device.hpp"

namespace dsem::sim {
namespace {

TEST(KernelIr, AnalyzeMapsOpsToTable1Classes) {
  KernelIr ir("k");
  ir.iadd(3).imul(2).idiv(1).bitwise(4);
  ir.fadd(5).fmul(6).fdiv(7).special(8);
  ir.load_global(16.0, 2).store_global(8.0, 1);
  ir.load_local(4.0, 10);
  const KernelProfile p = analyze(ir);
  EXPECT_DOUBLE_EQ(p.int_add, 3.0);
  EXPECT_DOUBLE_EQ(p.int_mul, 2.0);
  EXPECT_DOUBLE_EQ(p.int_div, 1.0);
  EXPECT_DOUBLE_EQ(p.int_bw, 4.0);
  EXPECT_DOUBLE_EQ(p.float_add, 5.0);
  EXPECT_DOUBLE_EQ(p.float_mul, 6.0);
  EXPECT_DOUBLE_EQ(p.float_div, 7.0);
  EXPECT_DOUBLE_EQ(p.special_fn, 8.0);
  EXPECT_DOUBLE_EQ(p.global_bytes, 40.0);
  EXPECT_DOUBLE_EQ(p.local_bytes, 40.0);
  EXPECT_EQ(p.name, "k");
}

TEST(KernelIr, FmaCountsAsMulPlusAdd) {
  KernelIr ir("fma");
  ir.fma(10);
  const KernelProfile p = analyze(ir);
  EXPECT_DOUBLE_EQ(p.float_mul, 10.0);
  EXPECT_DOUBLE_EQ(p.float_add, 10.0);
}

TEST(KernelIr, SubtractionCountsAsAddition) {
  KernelIr ir("sub");
  ir.emit(Op::kISub, 4).emit(Op::kFSub, 6);
  const KernelProfile p = analyze(ir);
  EXPECT_DOUBLE_EQ(p.int_add, 4.0);
  EXPECT_DOUBLE_EQ(p.float_add, 6.0);
}

TEST(KernelIr, AllBitwiseOpsFoldTogether) {
  KernelIr ir("bits");
  ir.emit(Op::kAnd).emit(Op::kOr).emit(Op::kXor).emit(Op::kShl).emit(
      Op::kShr);
  EXPECT_DOUBLE_EQ(analyze(ir).int_bw, 5.0);
}

TEST(KernelIr, AllSpecialFunctionsFoldTogether) {
  KernelIr ir("sf");
  for (Op op : {Op::kSin, Op::kCos, Op::kTan, Op::kExp, Op::kLog, Op::kSqrt,
                Op::kRsqrt, Op::kPow}) {
    ir.emit(op, 2);
  }
  EXPECT_DOUBLE_EQ(analyze(ir).special_fn, 16.0);
}

TEST(KernelIr, ParallelismPropagates) {
  KernelIr ir("par");
  ir.fadd(100).parallelism(64.0);
  EXPECT_DOUBLE_EQ(analyze(ir).intra_item_parallelism, 64.0);
}

TEST(KernelIr, LoopTripCountsFoldIntoCounts) {
  // A loop body executed 32 times: express via counts, the way a static
  // pass folds trip counts.
  KernelIr ir("loop");
  constexpr double kTrips = 32.0;
  ir.fma(4.0 * kTrips).load_global(8.0, kTrips);
  const KernelProfile p = analyze(ir);
  EXPECT_DOUBLE_EQ(p.float_mul, 128.0);
  EXPECT_DOUBLE_EQ(p.global_bytes, 256.0);
}

TEST(KernelIr, ValidationRejectsMisuse) {
  KernelIr ir("bad");
  EXPECT_THROW(ir.emit(Op::kLoadGlobal, 1), contract_error);
  EXPECT_THROW(ir.emit_memory(Op::kFAdd, 8.0), contract_error);
  EXPECT_THROW(ir.emit_memory(Op::kLoadGlobal, 0.0), contract_error);
  EXPECT_THROW(ir.emit(Op::kFAdd, -1.0), contract_error);
  EXPECT_THROW(ir.parallelism(0.5), contract_error);
  EXPECT_THROW(KernelIr(""), contract_error);
}

TEST(KernelIr, EmptyKernelRejectedByAnalyze) {
  KernelIr ir("empty");
  // analyze() validates the resulting profile; an empty kernel has no work
  // but is still structurally valid (all-zero profile passes validate).
  EXPECT_NO_THROW(analyze(ir));
}

TEST(KernelIr, OpNamesAreStable) {
  EXPECT_EQ(to_string(Op::kFma), "fma");
  EXPECT_EQ(to_string(Op::kLoadGlobal), "ld.global");
  EXPECT_TRUE(is_memory_op(Op::kStoreLocal));
  EXPECT_FALSE(is_memory_op(Op::kFAdd));
}

TEST(KernelIr, AnalyzedKernelRunsOnDevice) {
  KernelIr ir("runnable");
  ir.fma(256).load_global(64.0).parallelism(4.0);
  Device device(v100(), NoiseConfig::none());
  const auto result = device.launch(analyze(ir), 100000);
  EXPECT_GT(result.time_s, 0.0);
  EXPECT_GT(result.energy_j, 0.0);
}

} // namespace
} // namespace dsem::sim
