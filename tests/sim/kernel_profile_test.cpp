#include "sim/kernel_profile.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::sim {
namespace {

KernelProfile sample_profile() {
  KernelProfile p;
  p.name = "sample";
  p.int_add = 1.0;
  p.int_mul = 2.0;
  p.int_div = 3.0;
  p.int_bw = 4.0;
  p.float_add = 5.0;
  p.float_mul = 6.0;
  p.float_div = 7.0;
  p.special_fn = 8.0;
  p.global_bytes = 40.0;
  p.local_bytes = 80.0;
  return p;
}

TEST(KernelProfile, StaticFeaturesFollowTable1Order) {
  const auto f = sample_profile().static_features();
  ASSERT_EQ(f.size(), kNumStaticFeatures);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // int_add
  EXPECT_DOUBLE_EQ(f[4], 5.0);  // float_add
  EXPECT_DOUBLE_EQ(f[7], 8.0);  // sf
  EXPECT_DOUBLE_EQ(f[8], 10.0); // gl_access = bytes / 4
  EXPECT_DOUBLE_EQ(f[9], 20.0); // loc_access = bytes / 4
}

TEST(KernelProfile, TotalOpsAndFlops) {
  const auto p = sample_profile();
  EXPECT_DOUBLE_EQ(p.total_ops(), 36.0);
  EXPECT_DOUBLE_EQ(p.flops(), 26.0);
}

TEST(KernelProfile, ArithmeticIntensity) {
  const auto p = sample_profile();
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 26.0 / 40.0);
}

TEST(KernelProfile, IntensityInfiniteWithoutGlobalTraffic) {
  KernelProfile p;
  p.float_add = 10.0;
  EXPECT_TRUE(std::isinf(p.arithmetic_intensity()));
}

TEST(KernelProfile, AccumulateIsWeightedElementwise) {
  KernelProfile acc;
  acc.accumulate(sample_profile(), 2.0);
  EXPECT_DOUBLE_EQ(acc.int_add, 2.0);
  EXPECT_DOUBLE_EQ(acc.float_div, 14.0);
  EXPECT_DOUBLE_EQ(acc.global_bytes, 80.0);
  acc.accumulate(sample_profile());
  EXPECT_DOUBLE_EQ(acc.int_add, 3.0);
}

TEST(KernelProfile, ScaledMultipliesEverything) {
  const auto s = sample_profile().scaled(10.0);
  EXPECT_DOUBLE_EQ(s.int_mul, 20.0);
  EXPECT_DOUBLE_EQ(s.local_bytes, 800.0);
  EXPECT_EQ(s.name, "sample");
}

TEST(KernelProfile, ValidateAcceptsSane) {
  EXPECT_NO_THROW(validate(sample_profile()));
}

TEST(KernelProfile, ValidateRejectsNegative) {
  auto p = sample_profile();
  p.float_add = -1.0;
  EXPECT_THROW(validate(p), contract_error);
}

TEST(KernelProfile, ValidateRejectsNonFinite) {
  auto p = sample_profile();
  p.global_bytes = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate(p), contract_error);
}

TEST(KernelProfile, ValidateRejectsSubUnitParallelism) {
  auto p = sample_profile();
  p.intra_item_parallelism = 0.5;
  EXPECT_THROW(validate(p), contract_error);
}

TEST(KernelProfile, FeatureNamesMatchCount) {
  EXPECT_EQ(kStaticFeatureNames.size(), kNumStaticFeatures);
  EXPECT_STREQ(kStaticFeatureNames[0], "int_add");
  EXPECT_STREQ(kStaticFeatureNames[9], "loc_access");
}

} // namespace
} // namespace dsem::sim
