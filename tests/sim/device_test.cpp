#include "sim/device.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::sim {
namespace {

KernelProfile work_kernel() {
  KernelProfile p;
  p.name = "work";
  p.float_add = 100.0;
  p.float_mul = 100.0;
  p.global_bytes = 64.0;
  return p;
}

TEST(DeviceSpecPresets, V100MatchesPaperSetup) {
  const DeviceSpec spec = v100();
  EXPECT_EQ(spec.vendor, Vendor::kNvidia);
  EXPECT_EQ(spec.core_frequencies.size(), 196u); // paper §5.1
  EXPECT_DOUBLE_EQ(spec.core_frequencies.min(), 135.0);
  EXPECT_DOUBLE_EQ(spec.core_frequencies.max(), 1597.0);
  EXPECT_DOUBLE_EQ(spec.mem_frequency_mhz, 1107.0); // single memory freq
  EXPECT_TRUE(spec.has_fixed_default());
  EXPECT_EQ(spec.total_lanes(), 80 * 64);
  // Peak FP32 ~15.7 TFLOP/s at boost clock.
  EXPECT_NEAR(spec.peak_gflops(1530.0), 15667.0, 100.0);
}

TEST(DeviceSpecPresets, Mi100HasAutoGovernorNoFixedDefault) {
  const DeviceSpec spec = mi100();
  EXPECT_EQ(spec.vendor, Vendor::kAmd);
  EXPECT_FALSE(spec.has_fixed_default());
  EXPECT_GT(spec.auto_frequency_mhz, 0.0);
  EXPECT_EQ(spec.total_lanes(), 120 * 64);
  // Peak FP32 ~23.1 TFLOP/s.
  EXPECT_NEAR(spec.peak_gflops(1502.0), 23071.0, 100.0);
}

TEST(DeviceSpecPresets, ValidateCatchesBrokenSpec) {
  DeviceSpec spec = v100();
  spec.compute_units = 0;
  EXPECT_THROW(validate(spec), contract_error);
  spec = v100();
  spec.compute_efficiency = 1.5;
  EXPECT_THROW(validate(spec), contract_error);
  spec = mi100();
  spec.auto_frequency_mhz = 0.0;
  EXPECT_THROW(validate(spec), contract_error);
}

TEST(Device, DefaultsToDefaultApplicationClock) {
  Device dev(v100(), NoiseConfig::none());
  EXPECT_FALSE(dev.is_auto());
  EXPECT_NEAR(dev.current_frequency(), 1312.0, 8.0);
  EXPECT_DOUBLE_EQ(dev.current_frequency(), dev.default_frequency());
}

TEST(Device, AmdDefaultsToAutoGovernor) {
  Device dev(mi100(), NoiseConfig::none());
  EXPECT_TRUE(dev.is_auto());
  EXPECT_NEAR(dev.current_frequency(), 1502.0, 10.0);
}

TEST(Device, SetFrequencySnapsToSchedule) {
  Device dev(v100(), NoiseConfig::none());
  const double snapped = dev.set_core_frequency(1000.3);
  EXPECT_TRUE(dev.spec().core_frequencies.contains(snapped));
  EXPECT_DOUBLE_EQ(dev.current_frequency(), snapped);
}

TEST(Device, ResetRestoresVendorBehaviour) {
  Device nv(v100(), NoiseConfig::none());
  nv.set_core_frequency(500.0);
  nv.reset_frequency();
  EXPECT_NEAR(nv.current_frequency(), 1312.0, 8.0);

  Device amd(mi100(), NoiseConfig::none());
  amd.set_core_frequency(500.0);
  EXPECT_FALSE(amd.is_auto());
  amd.reset_frequency();
  EXPECT_TRUE(amd.is_auto());
}

TEST(Device, SetAutoOnNvidiaThrows) {
  Device dev(v100(), NoiseConfig::none());
  EXPECT_THROW(dev.set_auto_frequency(), contract_error);
}

TEST(Device, LaunchAccumulatesCounters) {
  Device dev(v100(), NoiseConfig::none());
  const auto r1 = dev.launch(work_kernel(), 100000);
  const auto r2 = dev.launch(work_kernel(), 100000);
  EXPECT_EQ(dev.launch_count(), 2u);
  EXPECT_NEAR(dev.energy_joules(), r1.energy_j + r2.energy_j, 1e-9);
  EXPECT_NEAR(dev.busy_seconds(), r1.time_s + r2.time_s, 1e-12);
}

TEST(Device, ResetCountersZeroes) {
  Device dev(v100(), NoiseConfig::none());
  dev.launch(work_kernel(), 1000);
  dev.reset_counters();
  EXPECT_EQ(dev.launch_count(), 0u);
  EXPECT_DOUBLE_EQ(dev.energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(dev.busy_seconds(), 0.0);
}

TEST(Device, NoiselessLaunchesAreDeterministic) {
  Device a(v100(), NoiseConfig::none());
  Device b(v100(), NoiseConfig::none());
  const auto ra = a.launch(work_kernel(), 12345);
  const auto rb = b.launch(work_kernel(), 12345);
  EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
}

TEST(Device, NoiseIsSeededAndReproducible) {
  Device a(v100(), NoiseConfig{0.05, 0.05}, 99);
  Device b(v100(), NoiseConfig{0.05, 0.05}, 99);
  for (int i = 0; i < 10; ++i) {
    const auto ra = a.launch(work_kernel(), 100000);
    const auto rb = b.launch(work_kernel(), 100000);
    EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
    EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  }
}

TEST(Device, NoisePerturbsWithinClampedRange) {
  Device noisy(v100(), NoiseConfig{0.02, 0.02}, 7);
  Device clean(v100(), NoiseConfig::none());
  const auto truth = clean.launch(work_kernel(), 100000);
  for (int i = 0; i < 200; ++i) {
    const auto r = noisy.launch(work_kernel(), 100000);
    EXPECT_GT(r.time_s, truth.time_s * (1.0 - 0.09));
    EXPECT_LT(r.time_s, truth.time_s * (1.0 + 0.09));
    EXPECT_GT(r.energy_j, 0.0);
  }
}

TEST(Device, NoiseAveragesOut) {
  Device noisy(v100(), NoiseConfig{0.03, 0.03}, 21);
  Device clean(v100(), NoiseConfig::none());
  const auto truth = clean.launch(work_kernel(), 100000);
  double acc = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    acc += noisy.launch(work_kernel(), 100000).time_s;
  }
  EXPECT_NEAR(acc / n / truth.time_s, 1.0, 0.01);
}

TEST(Device, LaunchUsesPinnedFrequency) {
  Device dev(v100(), NoiseConfig::none());
  dev.set_core_frequency(700.0);
  const auto r = dev.launch(work_kernel(), 1000);
  EXPECT_NEAR(r.frequency_mhz, 700.0, 8.0);
}

TEST(Device, AnalyzeMatchesLaunchTimingWithoutNoise) {
  Device dev(v100(), NoiseConfig::none());
  const auto breakdown = dev.analyze(work_kernel(), 50000);
  const auto r = dev.launch(work_kernel(), 50000);
  EXPECT_DOUBLE_EQ(r.time_s, breakdown.total_s);
}

TEST(Device, ReseedRealignsNoiseStreams) {
  Device a(v100(), NoiseConfig{0.05, 0.05}, 1);
  Device b(v100(), NoiseConfig{0.05, 0.05}, 2);
  b.reseed(1);
  const auto ra = a.launch(work_kernel(), 1000);
  const auto rb = b.launch(work_kernel(), 1000);
  EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
}

} // namespace
} // namespace dsem::sim
