#include "sim/execution_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/device_spec.hpp"

namespace dsem::sim {
namespace {

KernelProfile compute_kernel(double flops = 1000.0) {
  KernelProfile p;
  p.name = "compute";
  p.float_add = flops / 2.0;
  p.float_mul = flops / 2.0;
  p.global_bytes = 8.0;
  return p;
}

KernelProfile memory_kernel(double bytes = 1024.0) {
  KernelProfile p;
  p.name = "memory";
  p.float_add = 4.0;
  p.global_bytes = bytes;
  return p;
}

class ExecutionModelTest : public ::testing::Test {
protected:
  DeviceSpec spec_ = v100();
};

TEST_F(ExecutionModelTest, CyclesPerItemWeighsOpCosts) {
  KernelProfile p;
  p.int_div = 2.0;   // cost 20 each
  p.float_div = 1.0; // cost 8
  p.special_fn = 1.0; // cost 4
  p.local_bytes = 8.0; // 0.25 cycles/byte
  EXPECT_DOUBLE_EQ(cycles_per_item(spec_, p), 40.0 + 8.0 + 4.0 + 2.0);
}

TEST_F(ExecutionModelTest, ComputeBoundTimeScalesInverselyWithFrequency) {
  const auto kernel = compute_kernel();
  const std::size_t w = 10'000'000;
  const auto lo = execute(spec_, kernel, w, 800.0);
  const auto hi = execute(spec_, kernel, w, 1600.0);
  EXPECT_NEAR(lo.exec_s / hi.exec_s, 2.0, 0.01);
}

TEST_F(ExecutionModelTest, MemoryBoundTimeInsensitiveToFrequency) {
  const auto kernel = memory_kernel(4096.0);
  const std::size_t w = 10'000'000;
  const auto lo = execute(spec_, kernel, w, 1000.0);
  const auto hi = execute(spec_, kernel, w, 1597.0);
  EXPECT_NEAR(lo.exec_s / hi.exec_s, 1.0, 1e-9);
}

TEST_F(ExecutionModelTest, MemoryBoundBecomesComputeBoundAtLowFrequency) {
  // Intensity chosen so the roofline crossover falls inside the schedule.
  KernelProfile kernel;
  kernel.float_add = 256.0;
  kernel.global_bytes = 64.0;
  const std::size_t w = 10'000'000;
  const auto hi = execute(spec_, kernel, w, 1597.0);
  EXPECT_GT(hi.mem_s, hi.compute_s); // memory-bound at top clock
  const auto lo = execute(spec_, kernel, w, 200.0);
  EXPECT_GT(lo.compute_s, lo.mem_s); // compute-bound at bottom clock
  EXPECT_GT(lo.exec_s, hi.exec_s);
}

TEST_F(ExecutionModelTest, ThroughputTimeMatchesHandComputation) {
  const auto kernel = compute_kernel(1000.0);
  const std::size_t w = 1'000'000;
  const double f_hz = 1000.0 * 1e6;
  const auto b = execute(spec_, kernel, w, 1000.0);
  const double lanes_eff = spec_.total_lanes() * spec_.compute_efficiency;
  const double expected =
      static_cast<double>(w) * cycles_per_item(spec_, kernel) /
      (lanes_eff * f_hz);
  EXPECT_NEAR(b.compute_tp_s, expected, expected * 1e-12);
}

TEST_F(ExecutionModelTest, MemoryBandwidthTimeMatchesHandComputation) {
  const auto kernel = memory_kernel(1000.0);
  const std::size_t w = 1'000'000;
  const auto b = execute(spec_, kernel, w, 1000.0);
  EXPECT_NEAR(b.mem_bw_s, 1e9 / (900.0 * 1e9), 1e-15);
}

TEST_F(ExecutionModelTest, SmallLaunchHitsLatencyFloor) {
  const auto kernel = compute_kernel(1000.0);
  const auto b = execute(spec_, kernel, 1, 1000.0);
  const double floor =
      cycles_per_item(spec_, kernel) * spec_.latency_factor / 1e9;
  // Smooth-max blend: within a whisker of the floor when it dominates.
  EXPECT_NEAR(b.compute_s, floor, floor * 1e-6);
  EXPECT_GT(b.compute_s, b.compute_tp_s);
}

TEST_F(ExecutionModelTest, IntraItemParallelismShortensLatencyFloor) {
  auto kernel = compute_kernel(1000.0);
  const auto serial = execute(spec_, kernel, 1, 1000.0);
  kernel.intra_item_parallelism = 10.0;
  const auto parallel = execute(spec_, kernel, 1, 1000.0);
  EXPECT_NEAR(serial.compute_s / parallel.compute_s, 10.0, 0.01);
}

TEST_F(ExecutionModelTest, LatencyFloorIrrelevantWhenSaturated) {
  const auto kernel = compute_kernel(1000.0);
  const std::size_t w = 100'000'000;
  const auto b = execute(spec_, kernel, w, 1000.0);
  EXPECT_NEAR(b.compute_s, b.compute_tp_s, b.compute_tp_s * 1e-6);
}

TEST_F(ExecutionModelTest, ComputeTimeContinuousAcrossOccupancyTransition) {
  // The throughput/latency blend must be smooth in the work-item count:
  // consecutive sizes around the crossover change time gradually.
  const auto kernel = compute_kernel(1000.0);
  double prev = execute(spec_, kernel, 1000, 1000.0).compute_s;
  for (std::size_t w = 1100; w <= 200000; w = w * 11 / 10) {
    const double cur = execute(spec_, kernel, w, 1000.0).compute_s;
    EXPECT_LT(cur / prev, 1.25) << "jump at w=" << w;
    EXPECT_GE(cur, prev * 0.999);
    prev = cur;
  }
}

TEST_F(ExecutionModelTest, MemoryLatencyFloorApplies) {
  const auto kernel = memory_kernel(64.0);
  const auto b = execute(spec_, kernel, 4, 1000.0);
  EXPECT_DOUBLE_EQ(b.mem_s, spec_.mem_latency_us * 1e-6);
}

TEST_F(ExecutionModelTest, LaunchOverheadAlwaysCharged) {
  const auto kernel = compute_kernel(10.0);
  const auto b = execute(spec_, kernel, 1, 1597.0);
  EXPECT_DOUBLE_EQ(b.launch_s, spec_.launch_overhead_us * 1e-6);
  EXPECT_DOUBLE_EQ(b.total_s, b.launch_s + b.exec_s);
}

TEST_F(ExecutionModelTest, ComputeAndMemoryOverlap) {
  KernelProfile p;
  p.float_add = 100.0;
  p.global_bytes = 100.0;
  const auto b = execute(spec_, p, 1'000'000, 1000.0);
  EXPECT_DOUBLE_EQ(b.exec_s, std::max(b.compute_s, b.mem_s));
}

TEST_F(ExecutionModelTest, UtilizationsAreBoundedFractions) {
  const auto b = execute(spec_, compute_kernel(), 100'000, 1000.0);
  EXPECT_GE(b.compute_utilization(), 0.0);
  EXPECT_LE(b.compute_utilization(), 1.0);
  EXPECT_GE(b.memory_utilization(), 0.0);
  EXPECT_LE(b.memory_utilization(), 1.0);
}

TEST_F(ExecutionModelTest, PureMemoryKernelHasZeroComputeTime) {
  KernelProfile p;
  p.global_bytes = 128.0;
  const auto b = execute(spec_, p, 1'000'000, 1000.0);
  EXPECT_DOUBLE_EQ(b.compute_s, 0.0);
  EXPECT_GT(b.mem_s, 0.0);
}

TEST_F(ExecutionModelTest, RejectsDegenerateLaunches) {
  EXPECT_THROW(execute(spec_, compute_kernel(), 0, 1000.0), contract_error);
  EXPECT_THROW(execute(spec_, compute_kernel(), 10, 0.0), contract_error);
  EXPECT_THROW(execute(spec_, compute_kernel(), 10, -5.0), contract_error);
}

TEST_F(ExecutionModelTest, MoreWorkNeverFaster) {
  const auto kernel = compute_kernel();
  double prev = 0.0;
  for (std::size_t w : {1u, 100u, 10000u, 1000000u, 100000000u}) {
    const auto b = execute(spec_, kernel, w, 1312.0);
    EXPECT_GE(b.total_s, prev);
    prev = b.total_s;
  }
}

} // namespace
} // namespace dsem::sim
