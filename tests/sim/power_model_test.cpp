#include "sim/power_model.hpp"

#include <gtest/gtest.h>

#include "sim/execution_model.hpp"

namespace dsem::sim {
namespace {

class PowerModelTest : public ::testing::Test {
protected:
  DeviceSpec spec_ = v100();
};

TEST_F(PowerModelTest, VoltageFlatBelowKnee) {
  const auto& curve = spec_.power.voltage;
  const double f_max = spec_.core_frequencies.max();
  EXPECT_DOUBLE_EQ(voltage(curve, 135.0, f_max), curve.v_min);
  EXPECT_DOUBLE_EQ(voltage(curve, curve.knee_mhz, f_max), curve.v_min);
}

TEST_F(PowerModelTest, VoltageReachesVmaxAtFmax) {
  const auto& curve = spec_.power.voltage;
  const double f_max = spec_.core_frequencies.max();
  EXPECT_DOUBLE_EQ(voltage(curve, f_max, f_max), curve.v_max);
}

TEST_F(PowerModelTest, VoltageMonotonicallyNonDecreasing) {
  const auto& curve = spec_.power.voltage;
  const double f_max = spec_.core_frequencies.max();
  double prev = 0.0;
  for (double f = 135.0; f <= f_max; f += 10.0) {
    const double v = voltage(curve, f, f_max);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_F(PowerModelTest, VoltageClampsAboveRange) {
  const auto& curve = spec_.power.voltage;
  EXPECT_DOUBLE_EQ(voltage(curve, 99999.0, 1597.0), curve.v_max);
}

TEST_F(PowerModelTest, EnergyComponentsSumToTotal) {
  KernelProfile kernel;
  kernel.float_add = 100.0;
  kernel.global_bytes = 100.0;
  const auto exec = execute(spec_, kernel, 1'000'000, 1312.0);
  const auto e = energy(spec_, exec, 1312.0);
  EXPECT_NEAR(e.total_j, e.static_j + e.clock_j + e.compute_j + e.mem_j,
              1e-12);
  EXPECT_GT(e.total_j, 0.0);
}

TEST_F(PowerModelTest, StaticEnergyProportionalToTime) {
  KernelProfile kernel;
  kernel.float_add = 100.0;
  const auto exec = execute(spec_, kernel, 1'000'000, 1000.0);
  const auto e = energy(spec_, exec, 1000.0);
  EXPECT_NEAR(e.static_j, spec_.power.static_w * exec.total_s, 1e-12);
}

TEST_F(PowerModelTest, PerOpComputeEnergyScalesWithVoltageSquaredOnly) {
  // For a fully compute-bound kernel the compute energy per unit of work
  // is ~ V(f)^2: it must *decrease* when down-clocking below the knee has
  // no voltage headroom left... i.e. stay constant below the knee.
  KernelProfile kernel;
  kernel.float_mul = 1000.0;
  const std::size_t w = 50'000'000;
  const auto e_400 =
      energy(spec_, execute(spec_, kernel, w, 400.0), 400.0);
  const auto e_800 =
      energy(spec_, execute(spec_, kernel, w, 800.0), 800.0);
  // Both below/at the knee: same voltage, so identical compute energy.
  EXPECT_NEAR(e_400.compute_j / e_800.compute_j, 1.0, 1e-9);
  // Above the knee the voltage rises, so per-op energy rises.
  const double f_max = spec_.core_frequencies.max();
  const auto e_max =
      energy(spec_, execute(spec_, kernel, w, f_max), f_max);
  EXPECT_GT(e_max.compute_j, e_800.compute_j * 1.5);
}

TEST_F(PowerModelTest, MemoryEnergyIndependentOfCoreClock) {
  KernelProfile kernel;
  kernel.global_bytes = 1024.0;
  kernel.float_add = 1.0;
  const std::size_t w = 10'000'000;
  const auto lo = energy(spec_, execute(spec_, kernel, w, 500.0), 500.0);
  const auto hi = energy(spec_, execute(spec_, kernel, w, 1597.0), 1597.0);
  EXPECT_NEAR(lo.mem_j, hi.mem_j, 1e-12);
}

TEST_F(PowerModelTest, ClockEnergyRisesWithFrequencyAtFixedTime) {
  // Memory-bound kernel: wall time constant, clock power ~ f V^2.
  KernelProfile kernel;
  kernel.global_bytes = 4096.0;
  kernel.float_add = 4.0;
  const std::size_t w = 10'000'000;
  const auto lo = energy(spec_, execute(spec_, kernel, w, 1000.0), 1000.0);
  const auto hi = energy(spec_, execute(spec_, kernel, w, 1597.0), 1597.0);
  EXPECT_GT(hi.clock_j, lo.clock_j * 1.3);
}

TEST_F(PowerModelTest, AveragePowerWithinPhysicalEnvelope) {
  // A fully loaded device should draw between idle and ~TDP-ish power.
  KernelProfile kernel;
  kernel.float_add = 500.0;
  kernel.float_mul = 500.0;
  kernel.global_bytes = 120.0;
  const auto exec = execute(spec_, kernel, 100'000'000, 1597.0);
  const auto e = energy(spec_, exec, 1597.0);
  EXPECT_GT(e.avg_power_w, 100.0);
  EXPECT_LT(e.avg_power_w, 330.0);
}

TEST_F(PowerModelTest, IdlePowerIncreasesWithFrequency) {
  EXPECT_GT(idle_power_w(spec_, 1597.0), idle_power_w(spec_, 500.0));
  EXPECT_GE(idle_power_w(spec_, 135.0), spec_.power.static_w);
}

TEST_F(PowerModelTest, UnderutilizedLaunchDrawsLessPower) {
  KernelProfile kernel;
  kernel.float_add = 1000.0;
  const auto busy = execute(spec_, kernel, 100'000'000, 1312.0);
  const auto idle = execute(spec_, kernel, 8, 1312.0);
  const auto e_busy = energy(spec_, busy, 1312.0);
  const auto e_idle = energy(spec_, idle, 1312.0);
  EXPECT_LT(e_idle.avg_power_w, e_busy.avg_power_w * 0.6);
}

TEST_F(PowerModelTest, EnergyCurveOfComputeBoundKernelIsUShaped) {
  // Total energy vs frequency for a compute-bound kernel: static term
  // dominates at low f, voltage term at high f, minimum in between.
  KernelProfile kernel;
  kernel.float_add = 500.0;
  kernel.float_mul = 500.0;
  kernel.global_bytes = 8.0;
  const std::size_t w = 50'000'000;
  const auto e_at = [&](double f) {
    return energy(spec_, execute(spec_, kernel, w, f), f).total_j;
  };
  const double e_lo = e_at(200.0);
  const double e_mid = e_at(900.0);
  const double e_hi = e_at(1597.0);
  EXPECT_LT(e_mid, e_lo);
  EXPECT_LT(e_mid, e_hi);
}

} // namespace
} // namespace dsem::sim
