// Concurrency contract of ProfileCache: one cache shared by every replica
// device of a parallel sweep, hammered with identical lookups from many
// threads. Run under the ASan+UBSan CI shard — a data race here corrupts
// every sweep measurement downstream.
#include "sim/profile_cache.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/device_spec.hpp"

namespace dsem::sim {
namespace {

KernelProfile test_kernel() {
  KernelProfile p;
  p.name = "cache_race";
  p.float_add = 512.0;
  p.float_mul = 512.0;
  p.global_bytes = 96.0;
  p.local_bytes = 16.0;
  return p;
}

TEST(ProfileCacheConcurrency, ParallelIdenticalLookupsComputeOneEntry) {
  ProfileCache cache;
  const DeviceSpec spec = v100();
  const KernelProfile kernel = test_kernel();
  constexpr std::size_t kThreads = 16;

  std::vector<ProfileCache::Cost> results(kThreads);
  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[t] = cache.lookup(spec, kernel, 1 << 20, 1200.0);
      });
    }
  }

  // Concurrent first lookups may each run the execution model (compute
  // happens outside the lock), but the arithmetic is pure so every result
  // is bit-identical and exactly one entry survives in the cache.
  EXPECT_EQ(cache.size(), 1u);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].time_s, results[0].time_s) << "thread " << t;
    EXPECT_EQ(results[t].energy_j, results[0].energy_j) << "thread " << t;
  }
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads);

  // Once the entry exists, a second identical wave is all hits: the value
  // is computed once and served from memory thereafter.
  const std::uint64_t hits_before = cache.hits();
  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        const auto cost = cache.lookup(spec, kernel, 1 << 20, 1200.0);
        EXPECT_EQ(cost.time_s, results[0].time_s);
      });
    }
  }
  EXPECT_EQ(cache.hits(), hits_before + kThreads);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProfileCacheConcurrency, DistinctKeysDoNotCollideUnderContention) {
  ProfileCache cache;
  const DeviceSpec spec = v100();
  const KernelProfile kernel = test_kernel();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kFreqs = 24;

  // Every thread walks the same frequency list; each (kernel, freq) pair
  // is one key, looked up kThreads times in total.
  std::vector<std::vector<double>> per_thread(kThreads);
  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t f = 0; f < kFreqs; ++f) {
          const double mhz = 800.0 + 25.0 * static_cast<double>(f);
          per_thread[t].push_back(
              cache.lookup(spec, kernel, 1 << 18, mhz).energy_j);
        }
      });
    }
  }

  EXPECT_EQ(cache.size(), kFreqs);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kFreqs);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], per_thread[0]) << "thread " << t;
  }
}

} // namespace
} // namespace dsem::sim
