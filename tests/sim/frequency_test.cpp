#include "sim/frequency.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::sim {
namespace {

TEST(FrequencySchedule, LinearSpansRangeInclusive) {
  const auto sched = FrequencySchedule::linear(100.0, 200.0, 11);
  EXPECT_EQ(sched.size(), 11u);
  EXPECT_DOUBLE_EQ(sched.min(), 100.0);
  EXPECT_DOUBLE_EQ(sched.max(), 200.0);
  EXPECT_DOUBLE_EQ(sched.frequencies()[5], 150.0);
}

TEST(FrequencySchedule, V100ScheduleHas196Frequencies) {
  const auto sched = FrequencySchedule::linear(135.0, 1597.0, 196);
  EXPECT_EQ(sched.size(), 196u);
  EXPECT_DOUBLE_EQ(sched.min(), 135.0);
  EXPECT_DOUBLE_EQ(sched.max(), 1597.0);
}

TEST(FrequencySchedule, ConstructorSortsAndDeduplicates) {
  FrequencySchedule sched({300.0, 100.0, 200.0, 100.0});
  EXPECT_EQ(sched.size(), 3u);
  EXPECT_DOUBLE_EQ(sched.frequencies()[0], 100.0);
  EXPECT_DOUBLE_EQ(sched.frequencies()[2], 300.0);
}

TEST(FrequencySchedule, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(FrequencySchedule(std::vector<double>{}), contract_error);
  EXPECT_THROW(FrequencySchedule({100.0, -5.0}), contract_error);
  EXPECT_THROW(FrequencySchedule::linear(0.0, 100.0, 5), contract_error);
  EXPECT_THROW(FrequencySchedule::linear(100.0, 50.0, 5), contract_error);
  EXPECT_THROW(FrequencySchedule::linear(10.0, 100.0, 1), contract_error);
}

TEST(FrequencySchedule, SnapPicksNearest) {
  FrequencySchedule sched({100.0, 200.0, 300.0});
  EXPECT_DOUBLE_EQ(sched.snap(95.0), 100.0);
  EXPECT_DOUBLE_EQ(sched.snap(140.0), 100.0);
  EXPECT_DOUBLE_EQ(sched.snap(160.0), 200.0);
  EXPECT_DOUBLE_EQ(sched.snap(1000.0), 300.0);
  EXPECT_DOUBLE_EQ(sched.snap(1.0), 100.0);
}

TEST(FrequencySchedule, SnapTiesResolveDownward) {
  FrequencySchedule sched({100.0, 200.0});
  EXPECT_DOUBLE_EQ(sched.snap(150.0), 100.0);
}

TEST(FrequencySchedule, SnapExactValueIsIdentity) {
  FrequencySchedule sched({100.0, 200.0, 300.0});
  for (double f : sched.frequencies()) {
    EXPECT_DOUBLE_EQ(sched.snap(f), f);
  }
}

TEST(FrequencySchedule, IndexOfMatchesSnapNeighborhood) {
  FrequencySchedule sched({100.0, 200.0, 300.0});
  EXPECT_EQ(sched.index_of(100.0), 0u);
  EXPECT_EQ(sched.index_of(210.0), 1u);
  EXPECT_EQ(sched.index_of(9999.0), 2u);
}

TEST(FrequencySchedule, Contains) {
  FrequencySchedule sched({100.0, 200.0});
  EXPECT_TRUE(sched.contains(100.0));
  EXPECT_FALSE(sched.contains(150.0));
  EXPECT_TRUE(sched.contains(100.0 + 1e-12));
}

} // namespace
} // namespace dsem::sim
