// Intel preset + Level Zero backend (the SYnergy layer's third vendor).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synergy/queue.hpp"

namespace dsem {
namespace {

sim::KernelProfile work_kernel() {
  sim::KernelProfile p;
  p.name = "work";
  p.float_add = 128.0;
  p.float_mul = 128.0;
  p.global_bytes = 64.0;
  return p;
}

TEST(IntelPreset, MatchesDatasheetShape) {
  const sim::DeviceSpec spec = sim::intel_max1100();
  EXPECT_EQ(spec.vendor, sim::Vendor::kIntel);
  EXPECT_EQ(spec.total_lanes(), 56 * 128);
  EXPECT_TRUE(spec.has_fixed_default());
  EXPECT_DOUBLE_EQ(spec.core_frequencies.min(), 300.0);
  EXPECT_DOUBLE_EQ(spec.core_frequencies.max(), 1550.0);
  // Peak FP32 ~22 TFLOP/s at max clock.
  EXPECT_NEAR(spec.peak_gflops(1550.0), 22221.0, 100.0);
}

TEST(LevelZeroBackend, SelectedForIntelDevices) {
  sim::Device dev(sim::intel_max1100(), sim::NoiseConfig::none());
  const auto backend = synergy::make_backend(dev);
  EXPECT_EQ(backend->api_name(), "Level Zero");
}

TEST(LevelZeroBackend, RejectsWrongVendor) {
  sim::Device dev(sim::v100(), sim::NoiseConfig::none());
  EXPECT_THROW(synergy::LevelZeroBackend backend(dev), contract_error);
}

TEST(LevelZeroBackend, MicrojouleEnergyCounter) {
  sim::Device dev(sim::intel_max1100(), sim::NoiseConfig::none());
  synergy::LevelZeroBackend backend(dev);
  backend.launch(work_kernel(), 100000, nullptr);
  EXPECT_DOUBLE_EQ(backend.energy_unit_joules(), 1e-6);
  EXPECT_NEAR(static_cast<double>(backend.energy_counter()) * 1e-6,
              dev.energy_joules(), 1e-5);
}

TEST(LevelZeroBackend, FrequencyControlRoundTrip) {
  sim::Device dev(sim::intel_max1100(), sim::NoiseConfig::none());
  synergy::Device device(dev);
  device.set_frequency(600.0);
  EXPECT_NEAR(device.current_frequency(), 600.0, 10.0);
  device.reset_frequency();
  EXPECT_NEAR(device.current_frequency(), 900.0, 10.0);
}

TEST(IntelDevice, WorksThroughTheFullPortableStack) {
  sim::Device dev(sim::intel_max1100(), sim::NoiseConfig::none());
  synergy::Device device(dev);
  synergy::Queue queue(device);
  queue.set_target_frequency(1200.0);
  const auto rec = queue.submit({work_kernel(), 1 << 20, {}});
  EXPECT_NEAR(rec.frequency_mhz, 1200.0, 10.0);
  EXPECT_GT(rec.energy_j, 0.0);
}

TEST(IntelDevice, ComputeBoundKernelScalesWithClock) {
  sim::Device dev(sim::intel_max1100(), sim::NoiseConfig::none());
  sim::KernelProfile heavy;
  heavy.float_mul = 2048.0;
  heavy.global_bytes = 8.0;
  dev.set_core_frequency(600.0);
  const auto slow = dev.launch(heavy, 10'000'000);
  dev.set_core_frequency(1500.0);
  const auto fast = dev.launch(heavy, 10'000'000);
  EXPECT_NEAR(slow.time_s / fast.time_s, 1500.0 / 600.0, 0.1);
}

} // namespace
} // namespace dsem
