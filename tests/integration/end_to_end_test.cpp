// Full-pipeline integration tests: real numerics -> SYnergy profiling ->
// dataset -> models -> Pareto prediction, at reduced scale. These exercise
// the exact workflow of the paper's Figs. 11-14 in one process.
#include <memory>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "cronos/problems.hpp"
#include "cronos/solver.hpp"
#include "ligen/screening.hpp"
#include "microbench/suite.hpp"

namespace dsem {
namespace {

TEST(EndToEnd, CronosValidatedRunChargesDeviceWhileSolvingMhd) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue queue(device, synergy::ExecMode::kValidate);

  cronos::SolverConfig config;
  config.dims = {16, 16, 4};
  const double gamma = 5.0 / 3.0;
  cronos::Solver solver(std::make_shared<cronos::IdealMhdLaw>(gamma), config);
  solver.initialize(cronos::mhd_turbulence_ic(gamma));
  const double mass0 = solver.state().var(0).interior_sum();
  const auto stats = solver.run(queue, 5);

  EXPECT_EQ(stats.steps, 5);
  EXPECT_GT(stats.simulated_time, 0.0);
  EXPECT_NEAR(solver.state().var(0).interior_sum(), mass0,
              std::abs(mass0) * 1e-11);
  EXPECT_EQ(queue.records().size(), 5u * 12u);
  EXPECT_GT(device.energy_joules(), 0.0);
}

TEST(EndToEnd, LigenScreeningRanksLibraryAndChargesDevice) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  synergy::Queue queue(device, synergy::ExecMode::kValidate);

  const auto protein = ligen::Protein::generate_pocket(0xCAFE);
  const auto library = ligen::generate_library(16, 24, 3, 0xD06);
  ligen::VirtualScreen screen(protein, {}, /*batch_size=*/8);
  const auto result = screen.run(library, queue, 0x5EED);

  ASSERT_EQ(result.scores.size(), 16u);
  const auto ranking = result.ranking();
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(result.scores[ranking[i - 1]], result.scores[ranking[i]]);
  }
  EXPECT_EQ(queue.records().size(), 4u); // 2 batches x (dock + score)
  EXPECT_GT(queue.total_energy_j(), 0.0);
}

TEST(EndToEnd, FrequencyScalingChangesMeasuredEnergyOfRealRun) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);

  const auto run_at = [&](double freq) {
    synergy::Queue queue(device, synergy::ExecMode::kValidate);
    queue.set_target_frequency(freq);
    cronos::SolverConfig config;
    config.dims = {32, 8, 8};
    cronos::Solver solver(std::make_shared<cronos::EulerLaw>(1.4), config);
    solver.initialize(cronos::euler_uniform(1.0, {0.3, 0.0, 0.0}, 1.0, 1.4));
    solver.run(queue, 3);
    return std::pair{queue.total_time_s(), queue.total_energy_j()};
  };
  const auto [t_max, e_max] = run_at(1597.0);
  const auto [t_mid, e_mid] = run_at(900.0);
  EXPECT_GT(e_max, e_mid); // memory/overhead-bound: boost wastes energy
  (void)t_max;
  (void)t_mid;
}

TEST(EndToEnd, MiniFig13PipelineDsBeatsGp) {
  // Reduced Fig. 13: LiGen inputs, strided frequencies, LOOCV.
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.015, 0.015}, 47);
  synergy::Device device(sim_dev);

  // 3-D tuple grid as in the paper's §5.1: held-out tuples then have
  // same-regime neighbours along the fragment axis, which is what lets
  // LOOCV interpolate curve shapes.
  std::vector<std::unique_ptr<core::Workload>> workloads;
  for (int ligands : {2, 256, 4096, 10000}) {
    for (int atoms : {31, 89}) {
      for (int frags : {4, 8, 20}) {
        workloads.push_back(
            std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
      }
    }
  }
  std::vector<double> freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 10) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(device, workloads, 5, freqs);

  core::GeneralPurposeModel gp;
  gp.train(device, microbench::make_suite(), 1, 16);

  // Report the Fig. 13c/d input set (ligand counts 256/4096/10000).
  std::vector<std::string> reported;
  for (int atoms : {31, 89}) {
    for (int ligands : {256, 4096, 10000}) {
      reported.push_back(core::LigenWorkload(ligands, atoms, 8).name());
    }
  }
  const auto report = core::evaluate_accuracy(dataset, workloads, gp, reported);
  ASSERT_EQ(report.rows.size(), reported.size());
  double ds_worst = 0.0;
  for (const auto& row : report.rows) {
    EXPECT_LT(row.ds_energy_mape, row.gp_energy_mape) << row.input;
    ds_worst = std::max(ds_worst, row.ds_energy_mape);
  }
  EXPECT_LT(ds_worst, 0.05);
}

TEST(EndToEnd, MiniFig14PipelinePredictsUsableParetoSet) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.015, 0.015}, 43);
  synergy::Device device(sim_dev);

  std::vector<std::unique_ptr<core::Workload>> workloads;
  for (int n : {10, 20, 40, 80, 160}) {
    workloads.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{n, std::max(4, n * 2 / 5), std::max(4, n * 2 / 5)},
        2));
  }
  std::vector<double> freqs;
  const auto all = device.supported_frequencies();
  for (std::size_t i = 0; i < all.size(); i += 10) {
    freqs.push_back(all[i]);
  }
  const core::Dataset dataset =
      core::build_dataset(device, workloads, 5, freqs);
  core::GeneralPurposeModel gp;
  gp.train(device, microbench::make_suite(), 1, 16);

  const auto eval =
      core::evaluate_pareto(dataset, workloads, "160x64x64", gp);
  // The DS-predicted front must land close to the true front. The
  // generational distance is range-normalized over the true front, so
  // its unit is "true-front extents": a couple of extents of a front
  // that is nearly flat in speedup is still a tight prediction, while
  // the GP baseline lands tens of extents away on this input.
  EXPECT_LT(eval.ds_cmp.generational_distance, 2.0);
  EXPECT_LT(eval.ds_cmp.generational_distance,
            0.25 * eval.gp_cmp.generational_distance);
  // And it should recover a meaningful share of the achievable saving.
  double best_true = 0.0;
  double best_ds = 0.0;
  for (std::size_t idx : eval.true_front) {
    best_true = std::max(best_true, 1.0 - eval.truth.norm_energy[idx]);
  }
  for (std::size_t idx : eval.ds_front) {
    best_ds = std::max(best_ds, 1.0 - eval.truth.norm_energy[idx]);
  }
  EXPECT_GT(best_ds, 0.5 * best_true);
}

} // namespace
} // namespace dsem
