// Golden serving determinism (grouped suite, heavy tier): the full
// pipeline — trained models, traffic, admission, cache, batched
// inference — produces bit-identical response streams and deterministic
// metrics snapshots for thread pools of 1, 2, and 8 workers.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "serve/loop.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::AdviseResponse;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::ServeLoop;
using serve::TimedRequest;
using serve::TrafficConfig;

// Trained once, shared by every test in the grouped suite.
const ModelRegistry& shared_registry() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry;
    r->put(serve_test::train_compact_artifact("cronos"));
    r->put(serve_test::train_compact_artifact("ligen"));
    return r;
  }();
  return *registry;
}

const std::vector<TimedRequest>& shared_trace() {
  static const std::vector<TimedRequest> trace = [] {
    TrafficConfig traffic;
    traffic.requests = 10000;
    traffic.arrival_rate_hz = 5000.0; // fast enough to force batching
    traffic.population = 64;
    return serve::generate_trace(traffic);
  }();
  return trace;
}

ServeConfig config_for(ThreadPool* pool) {
  ServeConfig config;
  config.batch_size = 32;
  config.admission_bound = 256;
  config.cache_capacity = 512;
  config.pool = pool;
  return config;
}

struct ServeRun {
  std::vector<AdviseResponse> responses;
  serve::ServeStats stats;
  std::string metrics_json; ///< deterministic-only snapshot
};

ServeRun run_with_pool(std::size_t threads) {
  ThreadPool pool(threads);
  metrics::Registry::global().clear();
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  ServeLoop loop(shared_registry(), config_for(&pool));
  ServeRun run;
  run.responses = loop.run(shared_trace());
  run.stats = loop.stats();
  run.metrics_json =
      metrics::Registry::global().snapshot().to_json(true).dump(2);
  metrics::set_enabled(was_enabled);
  metrics::Registry::global().clear();
  return run;
}

TEST(ServeDeterminism, ResponsesIdenticalForPools1_2_8) {
  const ServeRun serial = run_with_pool(1);
  const ServeRun two = run_with_pool(2);
  const ServeRun eight = run_with_pool(8);
  ASSERT_EQ(serial.responses.size(), 10000u);
  // Full AdviseResponse equality: answers, hit/shed flags, provenance,
  // and every simulated timestamp, bit for bit.
  EXPECT_EQ(serial.responses, two.responses);
  EXPECT_EQ(serial.responses, eight.responses);
}

TEST(ServeDeterminism, StatsAndMetricsSnapshotsIdenticalForPools1_2_8) {
  const ServeRun serial = run_with_pool(1);
  const ServeRun two = run_with_pool(2);
  const ServeRun eight = run_with_pool(8);

  for (const ServeRun* other : {&two, &eight}) {
    EXPECT_EQ(serial.stats.served, other->stats.served);
    EXPECT_EQ(serial.stats.shed, other->stats.shed);
    EXPECT_EQ(serial.stats.cache_hits, other->stats.cache_hits);
    EXPECT_EQ(serial.stats.cache_misses, other->stats.cache_misses);
    EXPECT_EQ(serial.stats.batches, other->stats.batches);
    EXPECT_EQ(serial.stats.p50_latency_s, other->stats.p50_latency_s);
    EXPECT_EQ(serial.stats.p99_latency_s, other->stats.p99_latency_s);
    EXPECT_EQ(serial.stats.max_latency_s, other->stats.max_latency_s);
    EXPECT_EQ(serial.stats.sim_duration_s, other->stats.sim_duration_s);
  }
  // The deterministic metrics view is a single comparable string.
  EXPECT_EQ(serial.metrics_json, two.metrics_json);
  EXPECT_EQ(serial.metrics_json, eight.metrics_json);
  EXPECT_NE(serial.metrics_json.find("serve.latency_s"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("serve.cache.hits"),
            std::string::npos);
}

TEST(ServeDeterminism, TraceExercisesTheWholeSurface) {
  // The shared trace must actually cover hits, misses, batching, and both
  // applications — otherwise the identity checks above are vacuous.
  const ServeRun run = run_with_pool(4);
  EXPECT_GT(run.stats.cache_hits, 0u);
  EXPECT_GT(run.stats.cache_misses, 0u);
  EXPECT_LT(run.stats.batches, run.stats.served); // real batching happened
  bool saw_ligen = false;
  bool saw_cronos = false;
  for (const AdviseResponse& response : run.responses) {
    if (response.shed) {
      continue;
    }
    saw_ligen |= response.model.find("ligen/") == 0;
    saw_cronos |= response.model.find("cronos/") == 0;
    EXPECT_GT(response.answer.freq_mhz, 0.0);
  }
  EXPECT_TRUE(saw_ligen);
  EXPECT_TRUE(saw_cronos);
}

TEST(ServeDeterminism, BatchSizeChangesScheduleButNeverAnswers) {
  // Advice is a pure function of the request and the model; batch size
  // (and therefore cache hit patterns and latencies) must not leak into
  // the advised frequencies.
  ThreadPool pool(4);
  ServeConfig one = config_for(&pool);
  one.batch_size = 1;
  ServeConfig wide = config_for(&pool);
  wide.batch_size = 64;
  ServeLoop loop_one(shared_registry(), one);
  ServeLoop loop_wide(shared_registry(), wide);
  const auto responses_one = loop_one.run(shared_trace());
  const auto responses_wide = loop_wide.run(shared_trace());
  for (std::size_t i = 0; i < responses_one.size(); ++i) {
    if (!responses_one[i].shed && !responses_wide[i].shed) {
      EXPECT_EQ(responses_one[i].answer, responses_wide[i].answer) << i;
    }
  }
}

} // namespace
