// Shared fixtures for the serve tests: cheap synthetic trained artifacts
// (no device sweep — a hand-built dataset and a small forest) and the
// compact really-trained artifacts the determinism/integration suites
// share.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/hybrid_model.hpp"
#include "core/workload.hpp"
#include "ml/forest.hpp"
#include "serve/artifact.hpp"
#include "serve/train.hpp"
#include "sim/device.hpp"
#include "sim/device_spec.hpp"
#include "synergy/device.hpp"

namespace dsem::serve_test {

inline const std::vector<double> kFreqs = {600, 800, 1000, 1200, 1400};
inline constexpr double kDefaultFreq = 1400.0;

/// A smooth synthetic (time, energy) surface over 3 features + frequency,
/// with seeded jitter so different seeds give different models.
inline core::Dataset synthetic_dataset(std::uint64_t seed,
                                       std::size_t inputs = 8) {
  Rng rng(seed);
  core::Dataset dataset;
  const std::size_t rows = inputs * kFreqs.size();
  dataset.x = ml::Matrix(rows, 4);
  std::size_t r = 0;
  for (std::size_t i = 0; i < inputs; ++i) {
    const double a = rng.uniform(8.0, 160.0);
    const double b = rng.uniform(2.0, 24.0);
    const double c = rng.uniform(16.0, 10000.0);
    for (const double freq : kFreqs) {
      dataset.x(r, 0) = a;
      dataset.x(r, 1) = b;
      dataset.x(r, 2) = c;
      dataset.x(r, 3) = freq;
      const double work = 1.0 + a * b * 1e-2 + c * 1e-3;
      const double slowdown = kDefaultFreq / freq;
      dataset.time_s.push_back(work * std::pow(slowdown, 0.8) *
                               (1.0 + 0.02 * rng.uniform()));
      dataset.energy_j.push_back(work * std::pow(freq / kDefaultFreq, 1.6) *
                                 (50.0 + 5.0 * rng.uniform()));
      dataset.groups.push_back(static_cast<int>(i));
      ++r;
    }
  }
  return dataset;
}

/// A small trained Random Forest (8 trees, depth 6) to keep per-seed
/// property tests fast.
inline ml::ForestParams small_forest_params(std::uint64_t seed) {
  ml::ForestParams params;
  params.n_estimators = 8;
  params.max_depth = 6;
  params.seed = seed;
  return params;
}

/// Trains a domain-specific artifact on synthetic data — no device, no
/// sweep; milliseconds per call.
inline serve::ModelArtifact synthetic_artifact(
    std::uint64_t seed, const std::string& app = "cronos",
    const std::string& device = "v100") {
  auto model = std::make_shared<core::DomainSpecificModel>(
      ml::RandomForestRegressor(small_forest_params(seed)));
  model->train(synthetic_dataset(derive_seed(seed, 7)));

  serve::ModelArtifact artifact;
  artifact.key = {app, device};
  artifact.origin = "synthetic-test";
  artifact.feature_names = {"a", "b", "c"};
  artifact.freqs_mhz = kFreqs;
  artifact.default_freq_mhz = kDefaultFreq;
  artifact.ds = std::move(model);
  return artifact;
}

/// The fixed Cronos grids behind the synthetic hybrid fixtures: real
/// workloads (the hybrid extractor needs kernel launch lists) over a
/// synthetic measurement surface (no device sweep).
inline const std::vector<std::unique_ptr<core::Workload>>&
hybrid_test_workloads() {
  static const std::vector<std::unique_ptr<core::Workload>> workloads = [] {
    std::vector<std::unique_ptr<core::Workload>> out;
    for (const int n : {10, 20, 40, 80}) {
      const int side = std::max(4, n * 2 / 5);
      out.push_back(std::make_unique<core::CronosWorkload>(
          cronos::GridDims{n, side, side}, 10));
    }
    return out;
  }();
  return workloads;
}

/// Like synthetic_dataset, but grouped over hybrid_test_workloads() with
/// the group metadata (names, baselines, default clock) the hybrid
/// trainer requires.
inline core::Dataset synthetic_hybrid_dataset(std::uint64_t seed) {
  Rng rng(seed);
  const auto& workloads = hybrid_test_workloads();
  core::Dataset dataset;
  dataset.x = ml::Matrix(workloads.size() * kFreqs.size(), 4);
  std::size_t r = 0;
  for (std::size_t g = 0; g < workloads.size(); ++g) {
    const std::vector<double> features = workloads[g]->domain_features();
    const double work = 1.0 + features[0] * features[1] * features[2] * 1e-3;
    for (const double freq : kFreqs) {
      auto row = dataset.x.row(r);
      std::copy(features.begin(), features.end(), row.begin());
      row[features.size()] = freq;
      const double slowdown = kDefaultFreq / freq;
      dataset.time_s.push_back(work * std::pow(slowdown, 0.8) *
                               (1.0 + 0.02 * rng.uniform()));
      dataset.energy_j.push_back(work * std::pow(freq / kDefaultFreq, 1.6) *
                                 (50.0 + 5.0 * rng.uniform()));
      dataset.groups.push_back(static_cast<int>(g));
      ++r;
    }
    dataset.group_names.push_back(workloads[g]->name());
    dataset.group_default.push_back({work, work * 52.0});
    dataset.default_freq_mhz.push_back(kDefaultFreq);
  }
  return dataset;
}

/// Trains a hybrid artifact on the synthetic surface — fused features come
/// from the real kernel launch lists on the (noise-free) V100 spec, so
/// this is milliseconds per call like synthetic_artifact.
inline serve::ModelArtifact synthetic_hybrid_artifact(std::uint64_t seed) {
  auto model = std::make_shared<core::HybridModel>(
      ml::RandomForestRegressor(small_forest_params(seed)));
  model->train(synthetic_hybrid_dataset(derive_seed(seed, 11)),
               hybrid_test_workloads(), sim::v100());

  serve::ModelArtifact artifact;
  artifact.key = {"cronos", "v100"};
  artifact.origin = "synthetic-test";
  artifact.feature_names = {"grid_x", "grid_y", "grid_z"};
  artifact.freqs_mhz = kFreqs;
  artifact.default_freq_mhz = kDefaultFreq;
  artifact.hybrid = std::move(model);
  return artifact;
}

/// A really-trained (device sweep + fit) compact artifact for the
/// grouped suites: small forest, strided frequencies, 2 repetitions —
/// fractions of a second instead of the example's full sweep.
inline serve::ModelArtifact train_compact_artifact(const std::string& app) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{}, 0xAD51);
  synergy::Device device(sim_dev);
  ml::ForestParams params;
  params.n_estimators = 16;
  params.max_depth = 8;
  const ml::RandomForestRegressor prototype(params);

  serve::TrainConfig config;
  config.compact = true;
  config.freq_stride = 8;
  config.sweep.repetitions = 2;
  config.prototype = &prototype;
  config.origin = "test-train";
  return serve::train_domain_specific(device, {app, "v100"}, config);
}

} // namespace dsem::serve_test
