// Golden tests for the serving answer cache: eviction order is a pure
// function of the get/put sequence, pinned here by hand.
#include <gtest/gtest.h>

#include "serve/lru_cache.hpp"

namespace {

using dsem::serve::AdviseAnswer;
using dsem::serve::LruCache;

AdviseAnswer answer(double freq) {
  AdviseAnswer a;
  a.freq_mhz = freq;
  return a;
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.put("a", answer(1));
  cache.put("b", answer(2));
  AdviseAnswer out;
  ASSERT_TRUE(cache.get("a", out)); // refreshes a: order is now a, b
  cache.put("c", answer(3));        // evicts b

  EXPECT_TRUE(cache.get("a", out));
  EXPECT_FALSE(cache.get("b", out));
  EXPECT_TRUE(cache.get("c", out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, GoldenEvictionOrder) {
  // Hand-computed MRU order after every operation, capacity 3.
  LruCache cache(3);
  AdviseAnswer out;
  using Keys = std::vector<std::string>;

  cache.put("a", answer(1));
  EXPECT_EQ(cache.keys_mru(), (Keys{"a"}));
  cache.put("b", answer(2));
  EXPECT_EQ(cache.keys_mru(), (Keys{"b", "a"}));
  cache.put("c", answer(3));
  EXPECT_EQ(cache.keys_mru(), (Keys{"c", "b", "a"}));
  EXPECT_TRUE(cache.get("a", out)); // refresh a
  EXPECT_EQ(cache.keys_mru(), (Keys{"a", "c", "b"}));
  cache.put("d", answer(4)); // full: evicts b (LRU)
  EXPECT_EQ(cache.keys_mru(), (Keys{"d", "a", "c"}));
  cache.put("c", answer(5)); // refresh + update, no eviction
  EXPECT_EQ(cache.keys_mru(), (Keys{"c", "d", "a"}));
  EXPECT_TRUE(cache.get("c", out));
  EXPECT_EQ(out.freq_mhz, 5.0); // refreshed value, not the original
  EXPECT_FALSE(cache.get("b", out));
  cache.put("e", answer(6)); // evicts a
  EXPECT_EQ(cache.keys_mru(), (Keys{"e", "c", "d"}));
}

TEST(LruCacheTest, MissDoesNotDisturbOrder) {
  LruCache cache(2);
  cache.put("a", answer(1));
  cache.put("b", answer(2));
  AdviseAnswer out;
  EXPECT_FALSE(cache.get("nope", out));
  EXPECT_EQ(cache.keys_mru(), (std::vector<std::string>{"b", "a"}));
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache cache(0);
  cache.put("a", answer(1));
  AdviseAnswer out;
  EXPECT_FALSE(cache.get("a", out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.keys_mru().empty());
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(4);
  cache.put("a", answer(1));
  cache.put("b", answer(2));
  cache.clear();
  AdviseAnswer out;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("a", out));
  cache.put("c", answer(3));
  EXPECT_EQ(cache.keys_mru(), (std::vector<std::string>{"c"}));
}

} // namespace
