// The advisor's pick policy, cache-key quantization, and single-vs-batch
// bit-identity.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/advisor.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::AdviseAnswer;
using serve::AdviseRequest;
using serve::Advisor;
using serve::cache_key;
using serve::ModelKey;
using serve::pick_within_slowdown;
using serve_test::synthetic_artifact;

// A hand-built prediction where every point is Pareto-optimal: speedup
// ascends while normalized energy ascends too.
core::Prediction pareto_prediction() {
  core::Prediction pred;
  pred.freqs_mhz = {600, 800, 1000, 1400};
  pred.time_s = {4.0, 3.0, 2.0, 1.0};
  pred.energy_j = {50, 60, 80, 100};
  pred.speedup = {0.90, 0.95, 0.99, 1.00};
  pred.norm_energy = {0.50, 0.60, 0.80, 1.00};
  return pred;
}

TEST(AdvisorTest, PickTakesCheapestPointWithinBudget) {
  const core::Prediction pred = pareto_prediction();
  // 3% budget admits speedups 0.99 and 1.00; 0.99 is cheaper.
  EXPECT_EQ(pick_within_slowdown(pred, 0.03), 2u);
  // 10% admits everything; 0.90 is cheapest.
  EXPECT_EQ(pick_within_slowdown(pred, 0.10), 0u);
  // 0% admits only the baseline point.
  EXPECT_EQ(pick_within_slowdown(pred, 0.0), 3u);
}

TEST(AdvisorTest, PickFallsBackToFastestWhenNothingQualifies) {
  core::Prediction pred = pareto_prediction();
  for (double& s : pred.speedup) {
    s -= 0.5; // every point violates any sane budget
  }
  EXPECT_EQ(pick_within_slowdown(pred, 0.0), 3u);
}

TEST(AdvisorTest, PickReportsBudgetInfeasibility) {
  bool infeasible = true;
  EXPECT_EQ(pick_within_slowdown(pareto_prediction(), 0.03, &infeasible),
            2u);
  EXPECT_FALSE(infeasible);

  core::Prediction shifted = pareto_prediction();
  for (double& s : shifted.speedup) {
    s -= 0.5; // front slowdowns become {0.60, 0.55, 0.51, 0.50}
  }
  // A 30% budget admits nothing: the answer falls back to the fastest
  // front point (index 3) with the flag raised.
  EXPECT_EQ(pick_within_slowdown(shifted, 0.30, &infeasible), 3u);
  EXPECT_TRUE(infeasible);
  // 55% re-admits slowdowns {0.55, 0.51, 0.50}; the cheapest of their
  // energies {0.60, 0.80, 1.00} is index 1.
  EXPECT_EQ(pick_within_slowdown(shifted, 0.55, &infeasible), 1u);
  EXPECT_FALSE(infeasible);
}

TEST(AdvisorTest, AdviseFlagsInfeasibleBudget) {
  // Serving over a clock range capped below the baseline: every
  // predicted speedup is < 1, so a 0% budget admits no front point.
  serve::ModelArtifact artifact = synthetic_artifact(3);
  artifact.freqs_mhz = {600, 800, 1000};

  AdviseRequest request;
  request.application = "cronos";
  request.features = {16, 8, 100};
  request.max_slowdown = 0.0;
  const AdviseAnswer tight = Advisor{}.advise(artifact, request);
  EXPECT_TRUE(tight.budget_infeasible);
  // The fallback is the fastest front point, not the cheapest.
  EXPECT_DOUBLE_EQ(tight.freq_mhz, 1000.0);

  request.max_slowdown = 0.9; // loose enough for every point
  const AdviseAnswer loose = Advisor{}.advise(artifact, request);
  EXPECT_FALSE(loose.budget_infeasible);
}

TEST(AdvisorTest, CacheKeyGolden) {
  AdviseRequest request;
  request.application = "cronos";
  request.features = {120, 48, 48};
  request.max_slowdown = 0.03;
  EXPECT_EQ(cache_key(ModelKey{"cronos", "v100"}, request, 1.0),
            "cronos/v100|b0.029999999999999999|q1|120|48|48");
}

TEST(AdvisorTest, CacheKeyQuantizesFeatures) {
  AdviseRequest a;
  a.application = "ligen";
  a.features = {119.6, 48.4};
  AdviseRequest b = a;
  b.features = {120.2, 47.6};
  const ModelKey key{"ligen", "v100"};
  // Both quantize to (120, 48) at step 1.
  EXPECT_EQ(cache_key(key, a, 1.0), cache_key(key, b, 1.0));
  // A finer step separates them again.
  EXPECT_NE(cache_key(key, a, 0.25), cache_key(key, b, 0.25));
}

TEST(AdvisorTest, CacheKeyKeepsBudgetExact) {
  AdviseRequest a;
  a.application = "ligen";
  a.features = {100};
  a.max_slowdown = 0.03;
  AdviseRequest b = a;
  b.max_slowdown = 0.030000001; // must NOT share an answer
  const ModelKey key{"ligen", "v100"};
  EXPECT_NE(cache_key(key, a, 1.0), cache_key(key, b, 1.0));
}

TEST(AdvisorTest, BatchMatchesSingleBitForBit) {
  const serve::ModelArtifact artifact = synthetic_artifact(11);
  Rng rng(123);
  std::vector<AdviseRequest> requests;
  for (int i = 0; i < 20; ++i) {
    AdviseRequest request;
    request.application = "cronos";
    request.features = {rng.uniform(8.0, 160.0), rng.uniform(2.0, 24.0),
                        rng.uniform(16.0, 10000.0)};
    request.max_slowdown = rng.uniform(0.0, 0.2);
    requests.push_back(std::move(request));
  }

  const Advisor advisor;
  const std::vector<AdviseAnswer> batched =
      advisor.advise_batch(artifact, requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], advisor.advise(artifact, requests[i])) << i;
  }
}

TEST(AdvisorTest, BatchIsPoolSizeInvariant) {
  const serve::ModelArtifact artifact = synthetic_artifact(12);
  std::vector<AdviseRequest> requests;
  for (int i = 0; i < 32; ++i) {
    AdviseRequest request;
    request.application = "cronos";
    request.features = {10.0 + i, 4.0, 100.0 * (i + 1)};
    requests.push_back(std::move(request));
  }
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial = Advisor(&pool1).advise_batch(artifact, requests);
  const auto wide = Advisor(&pool8).advise_batch(artifact, requests);
  EXPECT_EQ(serial, wide);
}

TEST(AdvisorTest, RejectsMalformedRequests) {
  const serve::ModelArtifact artifact = synthetic_artifact(13);
  const Advisor advisor;

  AdviseRequest wrong_app;
  wrong_app.application = "ligen";
  wrong_app.features = {1, 2, 3};
  EXPECT_THROW(advisor.advise(artifact, wrong_app), contract_error);

  AdviseRequest wrong_arity;
  wrong_arity.application = "cronos";
  wrong_arity.features = {1, 2};
  EXPECT_THROW(advisor.advise(artifact, wrong_arity), contract_error);

  AdviseRequest negative_budget;
  negative_budget.application = "cronos";
  negative_budget.features = {1, 2, 3};
  negative_budget.max_slowdown = -0.1;
  EXPECT_THROW(advisor.advise(artifact, negative_budget), contract_error);
}

} // namespace
