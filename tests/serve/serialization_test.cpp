// Property tests for the dsem-model-v1 artifact serialization: byte-
// stable round trips across many seeds, bit-identical predictions after
// a round trip, and clean contract_error rejection of malformed input.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::ModelArtifact;
using serve_test::kDefaultFreq;
using serve_test::kFreqs;
using serve_test::synthetic_artifact;

TEST(SerializationTest, RoundTripIsByteIdenticalAcrossFiftySeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ModelArtifact artifact = synthetic_artifact(seed);
    const std::string first = artifact.to_json().dump(2);
    const ModelArtifact reloaded =
        ModelArtifact::from_json(json::Value::parse(first));
    const std::string second = reloaded.to_json().dump(2);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(SerializationTest, RoundTripPredictsBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ModelArtifact artifact = synthetic_artifact(seed);
    const ModelArtifact reloaded =
        ModelArtifact::from_json(json::Value::parse(artifact.to_json().dump()));

    // Probe grid: inputs the training distribution covers, plus corners.
    Rng rng(derive_seed(seed, 99));
    for (int probe = 0; probe < 8; ++probe) {
      const std::vector<double> features = {rng.uniform(8.0, 160.0),
                                            rng.uniform(2.0, 24.0),
                                            rng.uniform(16.0, 10000.0)};
      const core::Prediction a =
          artifact.ds->predict(features, kFreqs, kDefaultFreq);
      const core::Prediction b =
          reloaded.ds->predict(features, kFreqs, kDefaultFreq);
      EXPECT_EQ(a.time_s, b.time_s) << "seed " << seed;
      EXPECT_EQ(a.energy_j, b.energy_j) << "seed " << seed;
      EXPECT_EQ(a.speedup, b.speedup) << "seed " << seed;
      EXPECT_EQ(a.norm_energy, b.norm_energy) << "seed " << seed;
    }
  }
}

TEST(SerializationTest, FileRoundTripIsByteIdentical) {
  const ModelArtifact artifact = synthetic_artifact(3);
  const std::string path_a = testing::TempDir() + "dsem_artifact_a.json";
  const std::string path_b = testing::TempDir() + "dsem_artifact_b.json";
  artifact.save_file(path_a);
  ModelArtifact::load_file(path_a).save_file(path_b);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string bytes_a = slurp(path_a);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SerializationTest, SchemaMismatchIsACleanError) {
  json::Value doc = synthetic_artifact(4).to_json();
  doc.set("schema", "dsem-model-v0");
  try {
    ModelArtifact::from_json(doc);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported schema"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dsem-model-v1"),
              std::string::npos);
  }
}

TEST(SerializationTest, MissingSchemaIsRejected) {
  auto doc = json::Value::object();
  doc.set("kind", "domain-specific");
  EXPECT_THROW(ModelArtifact::from_json(doc), contract_error);
  EXPECT_THROW(ModelArtifact::from_json(json::Value(1.0)), contract_error);
}

TEST(SerializationTest, TruncatedDocumentIsRejected) {
  const std::string full = synthetic_artifact(5).to_json().dump();
  // Any strict prefix either fails to parse or fails validation.
  for (const std::size_t cut : {full.size() / 4, full.size() / 2,
                                full.size() - 2}) {
    EXPECT_THROW(
        ModelArtifact::from_json(json::Value::parse(full.substr(0, cut))),
        contract_error)
        << "cut " << cut;
  }
}

TEST(SerializationTest, UnknownKindIsRejected) {
  json::Value doc = synthetic_artifact(6).to_json();
  doc.set("kind", "bayesian");
  EXPECT_THROW(ModelArtifact::from_json(doc), contract_error);
}

TEST(SerializationTest, TamperedForestIsRejected) {
  json::Value doc = synthetic_artifact(7).to_json();
  // Turn the root into a leaf: every other node becomes unreachable.
  json::Value& tree0 = doc.at("model").at("time").at("trees").as_array()[0];
  json::Value::Array& root = tree0.at("nodes").as_array()[0].as_array();
  root[2] = json::Value(-1);
  root[3] = json::Value(-1);
  EXPECT_THROW(ModelArtifact::from_json(doc), contract_error);
}

TEST(SerializationTest, EmptyFrequencyScheduleIsRejected) {
  json::Value doc = synthetic_artifact(8).to_json();
  doc.set("freqs_mhz", json::Value::array());
  EXPECT_THROW(ModelArtifact::from_json(doc), contract_error);
}

TEST(SerializationTest, UntrainedModelRefusesToSerialize) {
  const core::DomainSpecificModel untrained;
  EXPECT_THROW(untrained.to_json(), contract_error);
}

// The hybrid payload mirrors the domain-specific suites above: the same
// byte-stability, prediction-identity, and rejection contracts must hold
// for the third model family.

TEST(HybridSerializationTest, RoundTripIsByteIdenticalAcrossFiftySeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ModelArtifact artifact = serve_test::synthetic_hybrid_artifact(seed);
    const std::string first = artifact.to_json().dump(2);
    const ModelArtifact reloaded =
        ModelArtifact::from_json(json::Value::parse(first));
    ASSERT_TRUE(reloaded.is_hybrid()) << "seed " << seed;
    const std::string second = reloaded.to_json().dump(2);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(HybridSerializationTest, RoundTripPredictsBitIdentically) {
  const sim::DeviceSpec spec = sim::v100();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ModelArtifact artifact = serve_test::synthetic_hybrid_artifact(seed);
    const ModelArtifact reloaded =
        ModelArtifact::from_json(json::Value::parse(artifact.to_json().dump()));

    // Probe with training-grid workloads plus one off-grid size.
    std::vector<std::unique_ptr<core::Workload>> probes;
    probes.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{20, 8, 8}, 10));
    probes.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{60, 24, 24}, 10));
    for (const auto& probe : probes) {
      const core::Prediction a =
          artifact.hybrid->predict(*probe, spec, kFreqs, kDefaultFreq);
      const core::Prediction b =
          reloaded.hybrid->predict(*probe, spec, kFreqs, kDefaultFreq);
      EXPECT_EQ(a.time_s, b.time_s) << "seed " << seed;
      EXPECT_EQ(a.energy_j, b.energy_j) << "seed " << seed;
      EXPECT_EQ(a.speedup, b.speedup) << "seed " << seed;
      EXPECT_EQ(a.norm_energy, b.norm_energy) << "seed " << seed;
    }
  }
}

TEST(HybridSerializationTest, FileRoundTripIsByteIdentical) {
  const ModelArtifact artifact = serve_test::synthetic_hybrid_artifact(3);
  const std::string path_a = testing::TempDir() + "dsem_hybrid_a.json";
  const std::string path_b = testing::TempDir() + "dsem_hybrid_b.json";
  artifact.save_file(path_a);
  ModelArtifact::load_file(path_a).save_file(path_b);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string bytes_a = slurp(path_a);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(HybridSerializationTest, SchemaMismatchIsACleanError) {
  json::Value doc = serve_test::synthetic_hybrid_artifact(4).to_json();
  doc.set("schema", "dsem-model-v0");
  try {
    ModelArtifact::from_json(doc);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported schema"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dsem-model-v1"),
              std::string::npos);
  }
}

TEST(HybridSerializationTest, TruncatedDocumentIsRejected) {
  const std::string full = serve_test::synthetic_hybrid_artifact(5)
                               .to_json()
                               .dump();
  for (const std::size_t cut : {full.size() / 4, full.size() / 2,
                                full.size() - 2}) {
    EXPECT_THROW(
        ModelArtifact::from_json(json::Value::parse(full.substr(0, cut))),
        contract_error)
        << "cut " << cut;
  }
}

TEST(HybridSerializationTest, BadInputWidthIsRejected) {
  for (const double width : {0.0, 1.0, -3.0, 6.5}) {
    json::Value doc = serve_test::synthetic_hybrid_artifact(6).to_json();
    doc.at("model").set("input_width", width);
    EXPECT_THROW(ModelArtifact::from_json(doc), contract_error)
        << "width " << width;
  }
}

TEST(HybridSerializationTest, TamperedForestIsRejected) {
  json::Value doc = serve_test::synthetic_hybrid_artifact(7).to_json();
  // Turn the root into a leaf: every other node becomes unreachable.
  json::Value& tree0 = doc.at("model").at("time").at("trees").as_array()[0];
  json::Value::Array& root = tree0.at("nodes").as_array()[0].as_array();
  root[2] = json::Value(-1);
  root[3] = json::Value(-1);
  EXPECT_THROW(ModelArtifact::from_json(doc), contract_error);
}

TEST(HybridSerializationTest, UntrainedHybridRefusesToSerialize) {
  const core::HybridModel untrained;
  EXPECT_THROW(untrained.to_json(), contract_error);
}

} // namespace
