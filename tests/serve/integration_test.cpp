// Cross-component serving tests (grouped suite, heavy tier): the
// train-once / load-anywhere contract against really-trained models, a
// general-purpose artifact round trip, and an end-to-end serve run.
#include <array>
#include <cstdio>

#include <gtest/gtest.h>

#include "microbench/suite.hpp"
#include "serve/loop.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::AdviseRequest;
using serve::Advisor;
using serve::ModelArtifact;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::ServeLoop;

const ModelArtifact& shared_cronos_artifact() {
  static const ModelArtifact artifact =
      serve_test::train_compact_artifact("cronos");
  return artifact;
}

TEST(ServeIntegration, LoadedModelAnswersExactlyLikeTheTrainedOne) {
  const ModelArtifact& trained = shared_cronos_artifact();
  const std::string path = testing::TempDir() + "dsem_serve_cronos.json";
  trained.save_file(path);
  const ModelArtifact loaded = ModelArtifact::load_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.key, trained.key);
  EXPECT_EQ(loaded.feature_names, trained.feature_names);
  EXPECT_EQ(loaded.freqs_mhz, trained.freqs_mhz);
  EXPECT_EQ(loaded.default_freq_mhz, trained.default_freq_mhz);

  const Advisor advisor;
  // Probe across the training envelope, including the example's default
  // target (120x48x48 -> the cronos feature vector).
  for (const auto& dims : {std::array{120, 48, 48}, std::array{10, 4, 4},
                           std::array{160, 64, 64}, std::array{77, 31, 13}}) {
    const core::CronosWorkload workload(
        cronos::GridDims{dims[0], dims[1], dims[2]}, 10);
    for (const double budget : {0.0, 0.01, 0.03, 0.10}) {
      AdviseRequest request;
      request.application = "cronos";
      request.features = workload.domain_features();
      request.max_slowdown = budget;
      EXPECT_EQ(advisor.advise(trained, request),
                advisor.advise(loaded, request))
          << workload.name() << " @ " << budget;
    }
  }
}

TEST(ServeIntegration, GeneralPurposeArtifactRoundTripsBitIdentically) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{}, 0xAD51);
  synergy::Device device(sim_dev);
  // A thin slice of the micro-benchmark corpus keeps this fast; the
  // serialization path is identical regardless of suite size.
  auto suite = microbench::make_suite();
  suite.resize(8);
  auto gp = std::make_shared<core::GeneralPurposeModel>(
      ml::RandomForestRegressor(serve_test::small_forest_params(5)));
  gp->train(device, suite, /*repetitions=*/2, /*freq_stride=*/16);

  ModelArtifact artifact;
  artifact.key = {"cronos", "v100"};
  artifact.origin = "test-gp";
  artifact.feature_names = {};
  artifact.freqs_mhz = device.supported_frequencies();
  artifact.default_freq_mhz = device.default_frequency();
  artifact.gp = gp;

  const std::string first = artifact.to_json().dump(2);
  const ModelArtifact reloaded =
      ModelArtifact::from_json(json::Value::parse(first));
  EXPECT_EQ(first, reloaded.to_json().dump(2));
  ASSERT_NE(reloaded.gp, nullptr);
  EXPECT_TRUE(reloaded.gp->trained());
  EXPECT_EQ(reloaded.gp->training_rows(), gp->training_rows());

  const core::CronosWorkload probe(cronos::GridDims{40, 16, 16}, 10);
  const auto profile = probe.aggregate_profile();
  const core::Prediction a = gp->predict(profile, artifact.freqs_mhz,
                                         artifact.default_freq_mhz);
  const core::Prediction b = reloaded.gp->predict(
      profile, artifact.freqs_mhz, artifact.default_freq_mhz);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.norm_energy, b.norm_energy);
}

TEST(ServeIntegration, EndToEndServeRunHoldsItsInvariants) {
  ModelRegistry registry;
  registry.put(shared_cronos_artifact());
  registry.put(serve_test::train_compact_artifact("ligen"));

  serve::TrafficConfig traffic;
  traffic.requests = 2000;
  traffic.arrival_rate_hz = 3000.0;
  traffic.population = 48;
  const auto trace = serve::generate_trace(traffic);

  ServeConfig config;
  config.batch_size = 16;
  config.admission_bound = 64;
  config.cache_capacity = 256;
  ServeLoop loop(registry, config);
  const auto responses = loop.run(trace);
  const serve::ServeStats& stats = loop.stats();

  EXPECT_EQ(stats.requests, 2000u);
  EXPECT_EQ(stats.served + stats.shed, stats.requests);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.served);
  EXPECT_LE(stats.p50_latency_s, stats.p99_latency_s);
  EXPECT_LE(stats.p99_latency_s, stats.max_latency_s);
  EXPECT_GT(stats.sim_duration_s, 0.0);
  EXPECT_GT(stats.wall_s, 0.0);
  EXPECT_GT(stats.throughput_rps(), 0.0);

  for (const auto& response : responses) {
    if (response.shed) {
      EXPECT_TRUE(response.model.empty());
      continue;
    }
    EXPECT_GT(response.answer.freq_mhz, 0.0);
    EXPECT_GT(response.answer.predicted_speedup, 0.0);
    EXPECT_GE(response.completion_s, response.arrival_s);
    EXPECT_EQ(response.latency_s,
              response.completion_s - response.arrival_s);
    EXPECT_NE(response.model.find("@"), std::string::npos);
  }
}

} // namespace
