// Regression for the serve-loop staleness bug: re-registering a model
// under a live key must invalidate that model's cached answers, so the
// next request is answered by the NEW model instead of the old model's
// cached pick. Pre-fix, the loop resolved artifacts only for cache
// misses and never touched the cache on re-registration, so the second
// half of this trace kept serving seed-A answers forever.
#include <gtest/gtest.h>

#include <vector>

#include "serve/loop.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::AdviseResponse;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::ServeLoop;
using serve::TimedRequest;

/// The same cacheable request arriving over and over, widely spaced so
/// nothing queues or sheds.
std::vector<TimedRequest> repeated_trace(std::size_t count) {
  std::vector<TimedRequest> trace(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace[i].arrival_s = static_cast<double>(i);
    trace[i].request.application = "cronos";
    trace[i].request.features = {16.0, 8.0, 100.0};
    trace[i].request.max_slowdown = 0.05;
  }
  return trace;
}

TEST(ServeStaleness, ReRegistrationInvalidatesCachedAnswers) {
  ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(1));

  ServeConfig config;
  config.cache_capacity = 64;
  ServeLoop loop(registry, config);

  const auto trace = repeated_trace(8);
  const auto before = loop.run(trace);
  ASSERT_EQ(before.size(), 8u);
  EXPECT_FALSE(before[0].cache_hit);
  EXPECT_TRUE(before[7].cache_hit); // the cache is warm
  EXPECT_EQ(loop.stats().cache_invalidations, 0u);

  // Mid-trace re-registration under the same key: a different seed
  // trains a different forest, so the new model answers differently.
  registry.put(serve_test::synthetic_artifact(2));

  const auto after = loop.run(trace);
  ASSERT_EQ(after.size(), 8u);
  // The stale cached answers were dropped, not served: the first request
  // after the swap misses and is answered by the new model.
  EXPECT_FALSE(after[0].cache_hit);
  EXPECT_GT(loop.stats().cache_invalidations, 0u);
  EXPECT_NE(before[0].answer, after[0].answer);
  // Later requests hit again — on the NEW model's cached answers.
  EXPECT_TRUE(after[7].cache_hit);
  EXPECT_EQ(after[7].answer, after[0].answer);
}

TEST(ServeStaleness, UnchangedRegistrationKeepsTheCacheWarm) {
  ModelRegistry registry;
  registry.put(serve_test::synthetic_artifact(1));

  ServeConfig config;
  config.cache_capacity = 64;
  ServeLoop loop(registry, config);

  const auto trace = repeated_trace(4);
  loop.run(trace);
  // No re-registration between runs: every answer comes from the cache.
  const auto again = loop.run(trace);
  EXPECT_EQ(loop.stats().cache_invalidations, 0u);
  for (const AdviseResponse& response : again) {
    EXPECT_TRUE(response.cache_hit);
  }
}

} // namespace
