// The traffic generator's determinism and distribution contracts.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace dsem;
using serve::generate_trace;
using serve::TimedRequest;
using serve::TrafficConfig;

TrafficConfig small_config() {
  TrafficConfig config;
  config.requests = 2000;
  config.arrival_rate_hz = 1000.0;
  config.population = 32;
  return config;
}

TEST(TrafficTest, SameConfigSameTraceBitForBit) {
  const auto a = generate_trace(small_config());
  const auto b = generate_trace(small_config());
  EXPECT_EQ(a, b);
}

TEST(TrafficTest, DifferentSeedsDiffer) {
  TrafficConfig other = small_config();
  other.seed ^= 1;
  EXPECT_NE(generate_trace(small_config()), generate_trace(other));
}

TEST(TrafficTest, ArrivalsAscendAndStartPositive) {
  const auto trace = generate_trace(small_config());
  ASSERT_EQ(trace.size(), 2000u);
  double previous = 0.0;
  for (const TimedRequest& timed : trace) {
    EXPECT_GE(timed.arrival_s, previous);
    previous = timed.arrival_s;
  }
  EXPECT_GT(previous, 0.0);
}

TEST(TrafficTest, LigenFractionBoundsApplicationMix) {
  TrafficConfig all_cronos = small_config();
  all_cronos.ligen_fraction = 0.0;
  for (const TimedRequest& timed : generate_trace(all_cronos)) {
    EXPECT_EQ(timed.request.application, "cronos");
  }
  TrafficConfig all_ligen = small_config();
  all_ligen.ligen_fraction = 1.0;
  for (const TimedRequest& timed : generate_trace(all_ligen)) {
    EXPECT_EQ(timed.request.application, "ligen");
  }
}

TEST(TrafficTest, PopulationBoundsDistinctInputs) {
  const auto trace = generate_trace(small_config());
  std::set<std::vector<double>> ligen_inputs;
  std::set<std::vector<double>> cronos_inputs;
  for (const TimedRequest& timed : trace) {
    (timed.request.application == "ligen" ? ligen_inputs : cronos_inputs)
        .insert(timed.request.features);
  }
  EXPECT_LE(ligen_inputs.size(), 32u);
  EXPECT_LE(cronos_inputs.size(), 32u);
  EXPECT_GT(ligen_inputs.size(), 1u);
  EXPECT_GT(cronos_inputs.size(), 1u);
}

TEST(TrafficTest, BudgetsComeFromTheConfiguredSet) {
  TrafficConfig config = small_config();
  config.slowdown_budgets = {0.02, 0.07};
  for (const TimedRequest& timed : generate_trace(config)) {
    EXPECT_TRUE(timed.request.max_slowdown == 0.02 ||
                timed.request.max_slowdown == 0.07);
  }
}

TEST(TrafficTest, PopulationSizeDoesNotReshuffleArrivals) {
  // Arrival times draw from an independent stream: growing the population
  // must keep the arrival process identical.
  TrafficConfig big = small_config();
  big.population = 64;
  const auto small_trace = generate_trace(small_config());
  const auto big_trace = generate_trace(big);
  for (std::size_t i = 0; i < small_trace.size(); ++i) {
    EXPECT_EQ(small_trace[i].arrival_s, big_trace[i].arrival_s);
  }
}

TEST(TrafficTest, RejectsNonsenseConfigs) {
  TrafficConfig bad_rate = small_config();
  bad_rate.arrival_rate_hz = 0.0;
  EXPECT_THROW(generate_trace(bad_rate), contract_error);

  TrafficConfig bad_fraction = small_config();
  bad_fraction.ligen_fraction = 1.5;
  EXPECT_THROW(generate_trace(bad_fraction), contract_error);

  TrafficConfig no_budgets = small_config();
  no_budgets.slowdown_budgets.clear();
  EXPECT_THROW(generate_trace(no_budgets), contract_error);

  TrafficConfig no_population = small_config();
  no_population.population = 0;
  EXPECT_THROW(generate_trace(no_population), contract_error);
}

} // namespace
