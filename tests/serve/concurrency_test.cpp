// Robustness contracts: shed accounting under burst, registry reads
// racing registration, and cache-off bit-exactness.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "serve/loop.hpp"
#include "serve_test_util.hpp"

namespace {

using namespace dsem;
using serve::AdviseRequest;
using serve::AdviseResponse;
using serve::Advisor;
using serve::ModelKey;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::ServeLoop;
using serve::TimedRequest;
using serve_test::synthetic_artifact;

TimedRequest at(double arrival_s, double a, double b, double c,
                double budget = 0.03) {
  TimedRequest timed;
  timed.arrival_s = arrival_s;
  timed.request.application = "cronos";
  timed.request.features = {a, b, c};
  timed.request.max_slowdown = budget;
  return timed;
}

ServeConfig burst_config() {
  ServeConfig config;
  config.batch_size = 1;
  config.admission_bound = 1;
  config.cache_capacity = 0; // every request misses
  config.hit_cost_s = 0.001;
  config.miss_cost_s = 0.5;
  return config;
}

TEST(ConcurrencyTest, ShedAccountingUnderBurstIsExact) {
  ModelRegistry registry;
  registry.put(synthetic_artifact(21));

  // Hand-simulated: r0 dispatches alone at t=0 and serves until 0.5.
  // While it runs, r1 and r2 are each shed by the next arrival (queue
  // bound 1, shed-oldest), leaving r3 to dispatch at 0.5. r4 arrives at
  // exactly 1.0, when the server frees up.
  const std::vector<TimedRequest> trace = {
      at(0.00, 10, 4, 100), at(0.01, 20, 4, 100), at(0.02, 30, 4, 100),
      at(0.03, 40, 4, 100), at(1.00, 50, 4, 100),
  };
  ServeLoop loop(registry, burst_config());
  const std::vector<AdviseResponse> responses = loop.run(trace);

  ASSERT_EQ(responses.size(), 5u);
  EXPECT_FALSE(responses[0].shed);
  EXPECT_TRUE(responses[1].shed);
  EXPECT_TRUE(responses[2].shed);
  EXPECT_FALSE(responses[3].shed);
  EXPECT_FALSE(responses[4].shed);

  EXPECT_EQ(responses[0].completion_s, 0.5);
  EXPECT_EQ(responses[1].completion_s, 0.02); // shed when r2 arrived
  EXPECT_EQ(responses[2].completion_s, 0.03); // shed when r3 arrived
  EXPECT_EQ(responses[3].completion_s, 1.0);
  EXPECT_EQ(responses[3].latency_s, 1.0 - 0.03);
  EXPECT_EQ(responses[4].completion_s, 1.5);

  // Shed responses carry no answer or provenance.
  EXPECT_EQ(responses[1].answer, serve::AdviseAnswer{});
  EXPECT_TRUE(responses[1].model.empty());

  const serve::ServeStats& stats = loop.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.served + stats.shed, stats.requests);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.sim_duration_s, 1.5);
}

TEST(ConcurrencyTest, UnboundedQueueNeverSheds) {
  ModelRegistry registry;
  registry.put(synthetic_artifact(22));
  ServeConfig config = burst_config();
  config.admission_bound = 0; // unbounded
  std::vector<TimedRequest> trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(at(0.001 * i, 10.0 + i, 4, 100));
  }
  ServeLoop loop(registry, config);
  for (const AdviseResponse& response : loop.run(trace)) {
    EXPECT_FALSE(response.shed);
  }
  EXPECT_EQ(loop.stats().shed, 0u);
}

TEST(ConcurrencyTest, ZeroCapacityCacheMatchesDirectAdviceBitForBit) {
  ModelRegistry registry;
  registry.put(synthetic_artifact(23));
  const auto artifact = registry.require(ModelKey{"cronos", "v100"});

  // A trace with heavy repetition: with a cache these would mostly hit.
  std::vector<TimedRequest> trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back(at(0.001 * i, 10.0 + (i % 5), 4, 100));
  }

  ServeConfig no_cache;
  no_cache.cache_capacity = 0;
  no_cache.admission_bound = 0;
  ServeLoop loop(registry, no_cache);
  const std::vector<AdviseResponse> responses = loop.run(trace);

  EXPECT_EQ(loop.stats().cache_hits, 0u);
  EXPECT_EQ(loop.stats().cache_misses, 60u);
  const Advisor advisor;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_FALSE(responses[i].cache_hit);
    EXPECT_EQ(responses[i].answer,
              advisor.advise(*artifact, trace[i].request))
        << i;
  }

  // Turning the cache on changes hit flags and timing, never answers.
  ServeConfig cached = no_cache;
  cached.cache_capacity = 128;
  ServeLoop cached_loop(registry, cached);
  const std::vector<AdviseResponse> cached_responses =
      cached_loop.run(trace);
  EXPECT_GT(cached_loop.stats().cache_hits, 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(cached_responses[i].answer, responses[i].answer) << i;
  }
}

TEST(ConcurrencyTest, RegistryReadsNeverTearDuringRegistration) {
  ModelRegistry registry;
  registry.put(synthetic_artifact(31));
  const ModelKey key{"cronos", "v100"};

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (std::uint64_t round = 0; round < 200; ++round) {
      registry.put(synthetic_artifact(31 + (round % 2)));
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      const std::vector<double> probe = {40, 8, 500};
      while (!stop.load()) {
        const auto artifact = registry.require(key);
        // An artifact is immutable once registered: whichever version we
        // got must be fully formed and usable.
        if (!artifact->is_domain_specific() || !artifact->ds->trained() ||
            artifact->feature_names.size() != 3) {
          failures.fetch_add(1);
          break;
        }
        const core::Prediction pred = artifact->ds->predict(
            probe, artifact->freqs_mhz, artifact->default_freq_mhz);
        if (pred.speedup.size() != artifact->freqs_mhz.size()) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.keys(), (std::vector<ModelKey>{key}));
}

} // namespace
