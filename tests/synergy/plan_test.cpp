// Per-kernel frequency-plan behaviour of the queue (paper §7 extension).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synergy/queue.hpp"

namespace dsem::synergy {
namespace {

sim::KernelProfile kernel(const std::string& name) {
  sim::KernelProfile p;
  p.name = name;
  p.float_add = 256.0;
  p.global_bytes = 16.0;
  return p;
}

class PlanTest : public ::testing::Test {
protected:
  PlanTest() : sim_(sim::v100(), sim::NoiseConfig::none()), device_(sim_) {}
  sim::Device sim_;
  Device device_;
};

TEST_F(PlanTest, PlannedKernelRunsAtPlannedFrequency) {
  Queue queue(device_);
  queue.set_kernel_frequency_plan({{"a", 700.0}, {"b", 1400.0}});
  const auto ra = queue.submit({kernel("a"), 1000, {}});
  const auto rb = queue.submit({kernel("b"), 1000, {}});
  EXPECT_NEAR(ra.frequency_mhz, 700.0, 8.0);
  EXPECT_NEAR(rb.frequency_mhz, 1400.0, 8.0);
}

TEST_F(PlanTest, UnplannedKernelFallsBackToDefault) {
  Queue queue(device_);
  queue.set_kernel_frequency_plan({{"a", 700.0}});
  const auto r = queue.submit({kernel("other"), 1000, {}});
  EXPECT_NEAR(r.frequency_mhz, device_.default_frequency(), 8.0);
}

TEST_F(PlanTest, ExplicitFallbackFrequencyUsed) {
  Queue queue(device_);
  queue.set_kernel_frequency_plan({{"a", 700.0}}, /*fallback_mhz=*/900.0);
  const auto r = queue.submit({kernel("other"), 1000, {}});
  EXPECT_NEAR(r.frequency_mhz, 900.0, 8.0);
}

TEST_F(PlanTest, ClearPlanRestoresManualControl) {
  Queue queue(device_);
  queue.set_kernel_frequency_plan({{"a", 700.0}});
  queue.clear_kernel_frequency_plan();
  EXPECT_FALSE(queue.has_kernel_frequency_plan());
  queue.set_target_frequency(1100.0);
  const auto r = queue.submit({kernel("a"), 1000, {}});
  EXPECT_NEAR(r.frequency_mhz, 1100.0, 8.0);
}

TEST_F(PlanTest, RejectsInvalidPlans) {
  Queue queue(device_);
  EXPECT_THROW(queue.set_kernel_frequency_plan({}), dsem::contract_error);
  EXPECT_THROW(queue.set_kernel_frequency_plan({{"a", -1.0}}),
               dsem::contract_error);
}

TEST_F(PlanTest, SwitchPenaltyOnlyWhenFrequencyChanges) {
  Queue queue(device_);
  queue.set_target_frequency(1000.0);
  const auto first = queue.submit({kernel("a"), 100000, {}});
  const auto steady = queue.submit({kernel("a"), 100000, {}});
  // Same frequency: no switch penalty between the two.
  EXPECT_NEAR(first.time_s, steady.time_s, first.time_s * 1e-9);

  queue.set_target_frequency(1005.0); // adjacent schedule entry
  const auto switched = queue.submit({kernel("a"), 100000, {}});
  const double switch_s =
      device_.spec().freq_switch_overhead_us * 1e-6;
  EXPECT_GT(switched.time_s, steady.time_s);
  EXPECT_NEAR(switched.time_s - steady.time_s, switch_s,
              switch_s * 0.25 + steady.time_s * 0.01);
}

TEST_F(PlanTest, FirstLaunchOfQueuePaysNoSwitch) {
  // Large launch so constant overheads are negligible against compute.
  Queue q1(device_);
  q1.set_target_frequency(800.0);
  const auto a = q1.submit({kernel("a"), 10'000'000, {}});

  // A fresh queue at a different clock: its first launch is clean too.
  Queue q2(device_);
  q2.set_target_frequency(1400.0);
  const auto b = q2.submit({kernel("a"), 10'000'000, {}});
  // Both should match their pure-execution cost (ratio ~ freq ratio).
  EXPECT_NEAR(a.time_s / b.time_s, b.frequency_mhz / a.frequency_mhz, 0.03);
}

TEST_F(PlanTest, ResetClearsSwitchTracking) {
  Queue queue(device_);
  queue.set_target_frequency(800.0);
  queue.submit({kernel("a"), 100000, {}});
  queue.reset();
  queue.set_target_frequency(1400.0);
  const auto r = queue.submit({kernel("a"), 100000, {}});
  Queue fresh(device_);
  fresh.set_target_frequency(1400.0);
  const auto expected = fresh.submit({kernel("a"), 100000, {}});
  EXPECT_NEAR(r.time_s, expected.time_s, expected.time_s * 1e-9);
}

} // namespace
} // namespace dsem::synergy
