#include "synergy/backend.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synergy/queue.hpp"

namespace dsem::synergy {
namespace {

sim::KernelProfile work_kernel() {
  sim::KernelProfile p;
  p.name = "work";
  p.float_add = 64.0;
  p.global_bytes = 32.0;
  return p;
}

TEST(MakeBackend, PicksVendorBackend) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  EXPECT_EQ(make_backend(nv)->api_name(), "NVML");
  EXPECT_EQ(make_backend(amd)->api_name(), "ROCm SMI");
}

TEST(NvmlBackend, RejectsWrongVendor) {
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  EXPECT_THROW(NvmlBackend backend(amd), contract_error);
}

TEST(RocmSmiBackend, RejectsWrongVendor) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  EXPECT_THROW(RocmSmiBackend backend(nv), contract_error);
}

TEST(NvmlBackend, ExposesFullSchedule) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  NvmlBackend backend(nv);
  EXPECT_EQ(backend.supported_core_frequencies().size(), 196u);
  EXPECT_NEAR(backend.default_core_frequency(), 1312.0, 8.0);
}

TEST(NvmlBackend, EnergyCounterInMillijoules) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  NvmlBackend backend(nv);
  backend.launch(work_kernel(), 100000, nullptr);
  const double joules = nv.energy_joules();
  EXPECT_NEAR(static_cast<double>(backend.energy_counter()), joules * 1000.0,
              1.0);
  EXPECT_DOUBLE_EQ(backend.energy_unit_joules(), 1e-3);
}

TEST(RocmSmiBackend, EnergyCounterIn15MicrojouleUnits) {
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  RocmSmiBackend backend(amd);
  backend.launch(work_kernel(), 100000, nullptr);
  const double joules = amd.energy_joules();
  EXPECT_NEAR(static_cast<double>(backend.energy_counter()) * 15.3e-6, joules,
              joules * 1e-3 + 15.3e-6);
}

TEST(RocmSmiBackend, ResetReturnsToAutoGovernor) {
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  RocmSmiBackend backend(amd);
  backend.set_core_frequency(500.0);
  EXPECT_NEAR(backend.current_core_frequency(), 500.0, 10.0);
  backend.reset_core_frequency();
  EXPECT_TRUE(amd.is_auto());
  EXPECT_NEAR(backend.current_core_frequency(), 1502.0, 10.0);
}

TEST(SynergyDevice, PortableEnergyInJoules) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  Device device(nv);
  Queue queue(device);
  queue.submit({work_kernel(), 100000, {}});
  EXPECT_NEAR(device.energy_joules(), nv.energy_joules(), 1e-3);
}

TEST(SynergyDevice, SameApiAcrossVendors) {
  sim::Device nv(sim::v100(), sim::NoiseConfig::none());
  sim::Device amd(sim::mi100(), sim::NoiseConfig::none());
  std::vector<Device> devices;
  devices.emplace_back(nv);
  devices.emplace_back(amd);
  for (Device& device : devices) {
    EXPECT_FALSE(device.supported_frequencies().empty());
    EXPECT_GT(device.default_frequency(), 0.0);
    device.set_frequency(800.0);
    EXPECT_NEAR(device.current_frequency(), 800.0, 10.0);
    device.reset_frequency();
  }
}

} // namespace
} // namespace dsem::synergy
