#include "synergy/queue.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::synergy {
namespace {

sim::KernelProfile named_kernel(const std::string& name) {
  sim::KernelProfile p;
  p.name = name;
  p.float_add = 512.0; // compute-bound: runtime reacts to the core clock
  p.global_bytes = 8.0;
  return p;
}

class QueueTest : public ::testing::Test {
protected:
  QueueTest() : sim_(sim::v100(), sim::NoiseConfig::none()), device_(sim_) {}

  sim::Device sim_;
  Device device_;
};

TEST_F(QueueTest, SubmitRecordsLaunch) {
  Queue queue(device_);
  const auto& rec = queue.submit({named_kernel("k"), 1000, {}});
  EXPECT_EQ(rec.kernel_name, "k");
  EXPECT_EQ(rec.work_items, 1000u);
  EXPECT_GT(rec.time_s, 0.0);
  EXPECT_GT(rec.energy_j, 0.0);
  EXPECT_EQ(queue.records().size(), 1u);
}

TEST_F(QueueTest, TotalsAccumulate) {
  Queue queue(device_);
  double t = 0.0;
  double e = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto& rec = queue.submit({named_kernel("k"), 1000, {}});
    t += rec.time_s;
    e += rec.energy_j;
  }
  EXPECT_NEAR(queue.total_time_s(), t, 1e-15);
  EXPECT_NEAR(queue.total_energy_j(), e, 1e-12);
}

TEST_F(QueueTest, SimOnlySkipsHostImpl) {
  Queue queue(device_, ExecMode::kSimOnly);
  bool ran = false;
  queue.submit({named_kernel("k"), 10, [&] { ran = true; }});
  EXPECT_FALSE(ran);
}

TEST_F(QueueTest, ValidateRunsHostImpl) {
  Queue queue(device_, ExecMode::kValidate);
  bool ran = false;
  queue.submit({named_kernel("k"), 10, [&] { ran = true; }});
  EXPECT_TRUE(ran);
}

TEST_F(QueueTest, ValidateToleratesMissingHostImpl) {
  Queue queue(device_, ExecMode::kValidate);
  EXPECT_NO_THROW(queue.submit({named_kernel("k"), 10, {}}));
}

TEST_F(QueueTest, ZeroWorkItemsRejected) {
  Queue queue(device_);
  EXPECT_THROW(queue.submit({named_kernel("k"), 0, {}}), dsem::contract_error);
}

TEST_F(QueueTest, TargetFrequencyAffectsRecords) {
  Queue queue(device_);
  queue.set_target_frequency(500.0);
  const auto& slow = queue.submit({named_kernel("k"), 10'000'000, {}});
  queue.set_target_frequency(1597.0);
  const auto& fast = queue.submit({named_kernel("k"), 10'000'000, {}});
  EXPECT_NEAR(slow.frequency_mhz, 500.0, 10.0);
  EXPECT_NEAR(fast.frequency_mhz, 1597.0, 10.0);
  EXPECT_GT(slow.time_s, fast.time_s);
}

TEST_F(QueueTest, UseDefaultFrequencyRestoresBaseline) {
  Queue queue(device_);
  queue.set_target_frequency(500.0);
  queue.use_default_frequency();
  const auto& rec = queue.submit({named_kernel("k"), 10, {}});
  EXPECT_NEAR(rec.frequency_mhz, device_.default_frequency(), 8.0);
}

TEST_F(QueueTest, KernelSummariesAggregateByName) {
  Queue queue(device_);
  queue.submit({named_kernel("a"), 100, {}});
  queue.submit({named_kernel("b"), 100, {}});
  queue.submit({named_kernel("a"), 100, {}});
  const auto summaries = queue.kernel_summaries();
  ASSERT_EQ(summaries.size(), 2u);
  const auto& a = summaries[0].name == "a" ? summaries[0] : summaries[1];
  EXPECT_EQ(a.launches, 2u);
  EXPECT_GT(a.energy_j, 0.0);
}

TEST_F(QueueTest, ResetClearsEverything) {
  Queue queue(device_);
  queue.submit({named_kernel("k"), 100, {}});
  queue.reset();
  EXPECT_TRUE(queue.records().empty());
  EXPECT_DOUBLE_EQ(queue.total_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(queue.total_energy_j(), 0.0);
}

TEST_F(QueueTest, QueueTotalsMatchDeviceCounters) {
  sim_.reset_counters();
  Queue queue(device_);
  for (int i = 0; i < 3; ++i) {
    queue.submit({named_kernel("k"), 5000, {}});
  }
  EXPECT_NEAR(queue.total_energy_j(), sim_.energy_joules(), 1e-9);
  EXPECT_NEAR(queue.total_time_s(), sim_.busy_seconds(), 1e-12);
}

} // namespace
} // namespace dsem::synergy
