// Queue-level fault handling: the per-launch counter validation that
// keeps garbage vendor readings out of the measurement log.
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "synergy/queue.hpp"

namespace dsem::synergy {
namespace {

sim::KernelProfile work_kernel() {
  sim::KernelProfile p;
  p.name = "work";
  p.float_add = 100.0;
  p.float_mul = 100.0;
  p.global_bytes = 64.0;
  return p;
}

TEST(QueueFaults, GarbageEnergyReadingIsRejectedBeforeTotalsAdvance) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xBAD);
  sim::FaultConfig config;
  config.energy_read_garbage_rate = 1.0; // every read corrupts
  sim_dev.set_fault_config(config);
  Device device(sim_dev);
  Queue queue(device, ExecMode::kSimOnly);

  const sim::KernelProfile kernel = work_kernel();
  for (int i = 0; i < 10; ++i) {
    try {
      queue.submit({kernel, 1 << 14, {}});
      FAIL() << "garbage reading must not enter the log";
    } catch (const sim::TransientFault& fault) {
      EXPECT_EQ(fault.kind(), sim::FaultKind::kEnergyRead);
    }
  }
  EXPECT_TRUE(queue.records().empty());
  EXPECT_DOUBLE_EQ(queue.total_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(queue.total_energy_j(), 0.0);
  // The device itself still consumed the energy of every launch.
  EXPECT_GT(sim_dev.energy_joules(), 0.0);
  EXPECT_EQ(sim_dev.launch_count(), 10u);
}

TEST(QueueFaults, DroppedEnergyReadPropagatesAsTransientFault) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xBAD2);
  sim::FaultConfig config;
  config.energy_read_drop_rate = 1.0;
  sim_dev.set_fault_config(config);
  Device device(sim_dev);
  Queue queue(device, ExecMode::kSimOnly);

  EXPECT_THROW(queue.submit({work_kernel(), 1 << 14, {}}),
               sim::TransientFault);
  EXPECT_TRUE(queue.records().empty());
}

TEST(QueueFaults, CleanLaunchesAreUnaffectedByEnabledInjector) {
  sim::Device plain(sim::v100(), sim::NoiseConfig::none(), 0xC1EA);
  sim::Device faulted(sim::v100(), sim::NoiseConfig::none(), 0xC1EA);
  sim::FaultConfig config;
  config.set_frequency_rate = 0.5; // never exercised: no frequency changes
  faulted.set_fault_config(config);

  Device dev_plain(plain);
  Device dev_faulted(faulted);
  Queue q_plain(dev_plain, ExecMode::kSimOnly);
  Queue q_faulted(dev_faulted, ExecMode::kSimOnly);
  const sim::KernelProfile kernel = work_kernel();
  for (int i = 0; i < 5; ++i) {
    q_plain.submit({kernel, 1 << 14, {}});
    q_faulted.submit({kernel, 1 << 14, {}});
  }
  EXPECT_DOUBLE_EQ(q_plain.total_energy_j(), q_faulted.total_energy_j());
  EXPECT_DOUBLE_EQ(q_plain.total_time_s(), q_faulted.total_time_s());
}

} // namespace
} // namespace dsem::synergy
