#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "microbench/suite.hpp"

namespace dsem::core {
namespace {

// Building the dataset and training the GP model dominate this suite's
// wall-clock. The tests only read them, and the sweep engine never touches
// the shared device's RNG, so one lazily-built fixture serves every test.
struct EvalState {
  sim::Device sim_dev{sim::v100(), sim::NoiseConfig{0.01, 0.01}, 5};
  synergy::Device device{sim_dev};
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<double> freqs;
  Dataset dataset;
  GeneralPurposeModel gp;

  EvalState() {
    // Canonical grids plus intermediates (interpolating LOOCV folds).
    for (int n : {10, 20, 30, 40, 60, 80, 120, 160}) {
      workloads.push_back(std::make_unique<CronosWorkload>(
          cronos::GridDims{n, std::max(4, n * 2 / 5), std::max(4, n * 2 / 5)},
          2));
    }
    const auto all = device.supported_frequencies();
    for (std::size_t i = 0; i < all.size(); i += 8) {
      freqs.push_back(all[i]);
    }
    dataset = build_dataset(device, workloads, 2, freqs);
    gp.train(device, microbench::make_suite(), 1, 16);
  }

  static const EvalState& instance() {
    static const EvalState state;
    return state;
  }
};

class EvaluationTest : public ::testing::Test {
protected:
  EvaluationTest()
      : workloads_(EvalState::instance().workloads),
        freqs_(EvalState::instance().freqs),
        dataset_(EvalState::instance().dataset),
        gp_(EvalState::instance().gp) {}

  const std::vector<std::unique_ptr<Workload>>& workloads_;
  const std::vector<double>& freqs_;
  const Dataset& dataset_;
  const GeneralPurposeModel& gp_;
};

TEST_F(EvaluationTest, TruthCurvesNormalizeAtDefault) {
  const TruthCurves t = truth_curves(dataset_, 0);
  ASSERT_EQ(t.freqs_mhz.size(), freqs_.size());
  // The default frequency is not in the strided list, but the curve must
  // bracket speedup 1 around it.
  EXPECT_LT(t.speedup.front(), 1.0);
  EXPECT_GT(t.speedup.back(), 0.9);
}

TEST_F(EvaluationTest, AccuracyReportCoversAllGroupsByDefault) {
  const auto report = evaluate_accuracy(dataset_, workloads_, gp_);
  EXPECT_EQ(report.rows.size(), workloads_.size());
}

TEST_F(EvaluationTest, AccuracyReportHonoursSubset) {
  const std::vector<std::string> subset = {workloads_[1]->name()};
  const auto report = evaluate_accuracy(dataset_, workloads_, gp_, subset);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].input, workloads_[1]->name());
}

TEST_F(EvaluationTest, DomainSpecificBeatsGeneralPurpose) {
  // The paper's headline on a reduced sweep: DS MAPE < GP MAPE on every
  // reported (canonical) input.
  const std::vector<std::string> reported = {"10x4x4", "20x8x8", "40x16x16",
                                             "80x32x32", "160x64x64"};
  const auto report = evaluate_accuracy(dataset_, workloads_, gp_, reported);
  for (const auto& row : report.rows) {
    EXPECT_LT(row.ds_speedup_mape, row.gp_speedup_mape) << row.input;
    EXPECT_LT(row.ds_energy_mape, row.gp_energy_mape) << row.input;
    EXPECT_LT(row.ds_speedup_mape, 0.05) << row.input;
    EXPECT_LT(row.ds_energy_mape, 0.05) << row.input;
  }
  EXPECT_GT(report.worst_speedup_gain(), 1.0);
  EXPECT_GT(report.worst_energy_gain(), 1.0);
}

TEST_F(EvaluationTest, ParetoEvaluationProducesConsistentFronts) {
  const auto eval = evaluate_pareto(dataset_, workloads_,
                                    workloads_.back()->name(), gp_);
  EXPECT_FALSE(eval.true_front.empty());
  EXPECT_FALSE(eval.ds_front.empty());
  EXPECT_FALSE(eval.gp_front.empty());
  EXPECT_EQ(eval.ds_cmp.true_size, eval.true_front.size());
  EXPECT_EQ(eval.gp_cmp.true_size, eval.true_front.size());
  for (std::size_t idx : eval.ds_front) {
    EXPECT_LT(idx, eval.truth.freqs_mhz.size());
  }
}

TEST_F(EvaluationTest, DsParetoCloserToTruthThanGp) {
  const auto eval = evaluate_pareto(dataset_, workloads_,
                                    workloads_.back()->name(), gp_);
  // §5.2.2: the DS front approximates the true front at least as well.
  EXPECT_LE(eval.ds_cmp.generational_distance,
            eval.gp_cmp.generational_distance + 0.02);
}

TEST(AccuracyReport, WorstGainsOverEmptyReportThrow) {
  // Regression: these used to return *max_element of an empty range.
  const AccuracyReport report;
  EXPECT_THROW(report.worst_speedup_gain(), dsem::contract_error);
  EXPECT_THROW(report.worst_energy_gain(), dsem::contract_error);
}

TEST_F(EvaluationTest, MismatchedWorkloadListRejected) {
  std::vector<std::unique_ptr<Workload>> short_list;
  short_list.push_back(std::make_unique<CronosWorkload>(
      cronos::GridDims{10, 4, 4}, 2));
  EXPECT_THROW(evaluate_accuracy(dataset_, short_list, gp_),
               dsem::contract_error);
}

TEST_F(EvaluationTest, UnknownTargetInputRejected) {
  EXPECT_THROW(evaluate_pareto(dataset_, workloads_, "999x999x999", gp_),
               dsem::contract_error);
}

} // namespace
} // namespace dsem::core
