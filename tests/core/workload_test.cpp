#include "core/workload.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/features.hpp"

namespace dsem::core {
namespace {

class WorkloadTest : public ::testing::Test {
protected:
  WorkloadTest() : sim_dev_(sim::v100(), sim::NoiseConfig::none()),
                   device_(sim_dev_) {}
  sim::Device sim_dev_;
  synergy::Device device_;
};

TEST_F(WorkloadTest, CronosNameAndFeatures) {
  const CronosWorkload w({160, 64, 64}, 10);
  EXPECT_EQ(w.name(), "160x64x64");
  EXPECT_EQ(w.application(), "cronos");
  EXPECT_EQ(w.domain_features(), (std::vector<double>{160.0, 64.0, 64.0}));
  EXPECT_EQ(w.feature_names(),
            (std::vector<std::string>{"grid_x", "grid_y", "grid_z"}));
}

TEST_F(WorkloadTest, LigenNameAndFeatures) {
  const LigenWorkload w(10000, 89, 20);
  EXPECT_EQ(w.name(), "89x20x10000"); // paper's atoms x frags x ligands
  EXPECT_EQ(w.application(), "ligen");
  EXPECT_EQ(w.domain_features(),
            (std::vector<double>{10000.0, 20.0, 89.0}));
  EXPECT_EQ(w.feature_names(),
            (std::vector<std::string>{"ligands", "fragments", "atoms"}));
}

TEST_F(WorkloadTest, CronosSubmitsStepKernels) {
  const CronosWorkload w({20, 8, 8}, 4);
  synergy::Queue queue(device_);
  w.submit(queue);
  EXPECT_EQ(queue.records().size(), 4u * 12u);
}

TEST_F(WorkloadTest, LigenSubmitsBatchKernels) {
  const LigenWorkload w(5000, 31, 4);
  synergy::Queue queue(device_);
  w.submit(queue);
  EXPECT_EQ(queue.records().size(), 4u); // 2 batches x 2 kernels
}

TEST_F(WorkloadTest, AggregateProfilesAreValidAndNonTrivial) {
  const CronosWorkload cw({20, 8, 8});
  const LigenWorkload lw(1000, 31, 4);
  EXPECT_NO_THROW(sim::validate(cw.aggregate_profile()));
  EXPECT_NO_THROW(sim::validate(lw.aggregate_profile()));
  EXPECT_GT(cw.aggregate_profile().total_ops(), 0.0);
  EXPECT_GT(lw.aggregate_profile().total_ops(), 0.0);
}

TEST_F(WorkloadTest, AggregateStaticFeaturesIgnoreInputSize) {
  // The paper's crux: LiGen's static features are identical across input
  // sizes, so a static-feature model cannot distinguish them.
  const LigenWorkload small(2, 89, 8);
  const LigenWorkload large(100000, 89, 8);
  const auto fs = static_feature_vector(small.aggregate_profile());
  const auto fl = static_feature_vector(large.aggregate_profile());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_NEAR(fs[i], fl[i], 1e-12);
  }
}

TEST_F(WorkloadTest, CronosAggregateNearlyGridInvariant) {
  const CronosWorkload small({20, 8, 8});
  const CronosWorkload large({160, 64, 64});
  const auto fs = static_feature_vector(small.aggregate_profile());
  const auto fl = static_feature_vector(large.aggregate_profile());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_NEAR(fs[i], fl[i], 0.06); // only the ghost/interior ratio shifts
  }
}

TEST_F(WorkloadTest, DifferentAppsHaveDifferentMixes) {
  const CronosWorkload cw({40, 16, 16});
  const LigenWorkload lw(1000, 31, 4);
  const auto fc = static_feature_vector(cw.aggregate_profile());
  const auto fl = static_feature_vector(lw.aggregate_profile());
  double l1 = 0.0;
  for (std::size_t i = 0; i < fc.size(); ++i) {
    l1 += std::abs(fc[i] - fl[i]);
  }
  EXPECT_GT(l1, 0.2);
}

TEST_F(WorkloadTest, ValidationOfParameters) {
  EXPECT_THROW(CronosWorkload({8, 8, 8}, 0), contract_error);
  EXPECT_THROW(LigenWorkload(0, 31, 4), contract_error);
  EXPECT_THROW(LigenWorkload(10, 1, 1), contract_error);
}

} // namespace
} // namespace dsem::core
