// Paper-shape regression guard: pins the qualitative claims of the
// paper's characterization sections (§2, §3) to the simulated devices, so
// model-layer results keep standing on the behaviour they assume. Bands
// are deliberately loose — shapes, not absolute numbers (DESIGN.md §5).
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/workload.hpp"

namespace dsem::core {
namespace {

Characterization run(synergy::Device& device, const Workload& w) {
  return characterize(device, w, 1);
}

class CalibrationTest : public ::testing::Test {
protected:
  CalibrationTest()
      : v100_sim_(sim::v100(), sim::NoiseConfig::none()),
        mi100_sim_(sim::mi100(), sim::NoiseConfig::none()),
        v100_(v100_sim_), mi100_(mi100_sim_) {}

  sim::Device v100_sim_;
  sim::Device mi100_sim_;
  synergy::Device v100_;
  synergy::Device mi100_;
};

// --- Fig. 1a / Fig. 10b: LiGen on V100 ----------------------------------------

TEST_F(CalibrationTest, LigenLargeInputGainsSpeedFromUpclocking) {
  const LigenWorkload w(10000, 89, 20);
  const auto c = run(v100_, w);
  // Paper: up to ~25% speedup by raising the core frequency.
  EXPECT_GT(c.best_speedup_gain(), 0.15);
  EXPECT_LT(c.best_speedup_gain(), 0.35);
}

TEST_F(CalibrationTest, LigenLargeInputUpclockEnergyPremiumIsSuperlinear) {
  const LigenWorkload w(10000, 89, 20);
  const auto c = run(v100_, w);
  const auto& top = c.points.back();
  // Paper Fig. 10b: ~+22% speedup costs ~+60% energy.
  EXPECT_GT(top.norm_energy, 1.35);
  EXPECT_LT(top.norm_energy, 1.90);
  EXPECT_GT(top.norm_energy - 1.0, 1.8 * (top.speedup - 1.0));
}

TEST_F(CalibrationTest, LigenLargeInputDownclockSavesModestEnergy) {
  const LigenWorkload w(10000, 89, 20);
  const auto c = run(v100_, w);
  // Paper: up to ~10% energy saving at ~15% performance loss.
  const double saving = c.best_energy_saving(0.16);
  EXPECT_GT(saving, 0.05);
  EXPECT_LT(saving, 0.30);
}

// --- Fig. 2: LiGen workload dependence -----------------------------------------

TEST_F(CalibrationTest, LigenTinyInputDownclockSavesNothing) {
  const LigenWorkload w(2, 89, 8);
  const auto c = run(v100_, w);
  // Paper Fig. 2a: decreasing frequency provides no energy savings.
  EXPECT_LT(c.best_energy_saving(0.20), 0.03);
}

TEST_F(CalibrationTest, LigenEnergyBehaviourFlipsWithInputSize) {
  const LigenWorkload tiny(2, 89, 8);
  const LigenWorkload large(10000, 89, 20);
  const auto ct = run(v100_, tiny);
  const auto cl = run(v100_, large);
  EXPECT_GT(cl.best_energy_saving(0.16), ct.best_energy_saving(0.16) + 0.05);
}

// --- Fig. 3 / Fig. 4: Cronos on V100 --------------------------------------------

TEST_F(CalibrationTest, CronosLargeGridDownclockSavesEnergyForFree) {
  const CronosWorkload w({160, 64, 64}, 10);
  const auto c = run(v100_, w);
  // Paper: ~20% energy saving at near-zero speedup loss.
  const double saving = c.best_energy_saving(0.02);
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.35);
}

TEST_F(CalibrationTest, CronosUpclockWastesEnergyWithoutSpeedup) {
  const CronosWorkload w({160, 64, 64}, 10);
  const auto c = run(v100_, w);
  const auto& top = c.points.back();
  // Paper Fig. 4: up to ~40% more energy with no performance gain.
  EXPECT_LT(top.speedup, 1.02);
  EXPECT_GT(top.norm_energy, 1.20);
  EXPECT_LT(top.norm_energy, 1.70);
}

TEST_F(CalibrationTest, CronosSmallGridNearlyFrequencyInsensitive) {
  const CronosWorkload w({10, 4, 4}, 10);
  const auto c = run(v100_, w);
  // Paper Fig. 3a: ~3% speedup headroom, little energy saving.
  EXPECT_LT(c.best_speedup_gain(), 0.10);
  EXPECT_LT(c.best_energy_saving(0.02), 0.10);
}

TEST_F(CalibrationTest, CronosSavingGrowsWithGridSize) {
  const auto cs = run(v100_, CronosWorkload({10, 4, 4}, 10));
  const auto cl = run(v100_, CronosWorkload({160, 64, 64}, 10));
  EXPECT_GT(cl.best_energy_saving(0.02), cs.best_energy_saving(0.02));
}

// --- Fig. 5: Cronos on MI100 -----------------------------------------------------

TEST_F(CalibrationTest, Mi100AutoGovernorIsPerformanceOptimal) {
  const CronosWorkload w({160, 64, 64}, 10);
  const auto c = run(mi100_, w);
  for (const auto& p : c.points) {
    EXPECT_LE(p.speedup, 1.0 + 1e-9);
  }
}

TEST_F(CalibrationTest, Mi100CronosDeepDownclockSavings) {
  const CronosWorkload small({10, 4, 4}, 10);
  const CronosWorkload large({160, 64, 64}, 10);
  const auto cs = run(mi100_, small);
  const auto cl = run(mi100_, large);
  // Paper Fig. 5: ~35% (small) saving at ~10% loss; large saves ~5% less.
  EXPECT_GT(cs.best_energy_saving(0.12), 0.15);
  EXPECT_GT(cl.best_energy_saving(0.16), 0.15);
}

// --- Figs. 6-9: LiGen structure scaling ------------------------------------------

TEST_F(CalibrationTest, LigenTimeAndEnergyGrowWithFragments) {
  double prev_t = 0.0;
  double prev_e = 0.0;
  for (int frags : {4, 8, 16, 20}) {
    const LigenWorkload w(100000, 89, frags);
    const Measurement m = measure_default(v100_, w, 1);
    EXPECT_GT(m.time_s, prev_t);
    EXPECT_GT(m.energy_j, prev_e);
    prev_t = m.time_s;
    prev_e = m.energy_j;
  }
}

TEST_F(CalibrationTest, LigenTimeAndEnergyGrowWithAtoms) {
  double prev_t = 0.0;
  for (int atoms : {31, 63, 74, 89}) {
    const LigenWorkload w(100000, atoms, 4);
    const Measurement m = measure_default(v100_, w, 1);
    EXPECT_GT(m.time_s, prev_t);
    prev_t = m.time_s;
  }
}

TEST_F(CalibrationTest, Mi100SlowerAndHungrierThanV100OnLigen) {
  const LigenWorkload w(100000, 89, 20);
  const Measurement nv = measure_default(v100_, w, 1);
  const Measurement amd = measure_default(mi100_, w, 1);
  // Paper Figs. 6 vs 7: MI100 needs ~2-3x the time and more energy.
  EXPECT_GT(amd.time_s, nv.time_s * 1.5);
  EXPECT_LT(amd.time_s, nv.time_s * 5.0);
  EXPECT_GT(amd.energy_j, nv.energy_j);
}

TEST_F(CalibrationTest, LigenAbsoluteRuntimeInPaperBallpark) {
  // Paper Fig. 6b: 1e5 ligands x 89 atoms x 20 fragments runs tens of
  // seconds on the V100 across the frequency range.
  const LigenWorkload w(100000, 89, 20);
  const Measurement m = measure_default(v100_, w, 1);
  EXPECT_GT(m.time_s, 5.0);
  EXPECT_LT(m.time_s, 120.0);
  EXPECT_GT(m.energy_j, 500.0);    // paper: kJ scale
  EXPECT_LT(m.energy_j, 20000.0);
}

// --- Fig. 10: ligand-count scaling ------------------------------------------------

TEST_F(CalibrationTest, LigenSmallBatchSavesMoreEnergyThanLargeOnV100) {
  const LigenWorkload small(256, 31, 4);
  const LigenWorkload large(10000, 89, 20);
  const auto cs = run(v100_, small);
  const auto cl = run(v100_, large);
  // Paper: "on small input we have more chance of saving energy" — at a
  // tight 5-6% speedup-loss budget the small batch saves at least as much.
  EXPECT_GE(cs.best_energy_saving(0.06) + 0.02, cl.best_energy_saving(0.06));
  // And the large input pays more energy for its top-end speedup.
  EXPECT_GT(cl.points.back().norm_energy, cs.points.back().norm_energy - 0.05);
}

} // namespace
} // namespace dsem::core
