// Determinism contract of the parallel sweep engine (core/sweep.hpp):
// characterization, dataset collection, and the models trained on them
// must be BIT-identical for any thread-pool size — pool size 1 reproduces
// serial execution exactly, and a shared profile cache must not change a
// single bit either.
#include <memory>

#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"

namespace dsem::core {
namespace {

std::vector<double> strided_freqs(const synergy::Device& device,
                                  std::size_t stride) {
  const auto all = device.supported_frequencies();
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    out.push_back(all[i]);
  }
  return out;
}

std::vector<std::unique_ptr<Workload>> test_workloads() {
  std::vector<std::unique_ptr<Workload>> out;
  for (int n : {10, 20, 40}) {
    out.push_back(std::make_unique<CronosWorkload>(
        cronos::GridDims{n, std::max(4, n * 2 / 5), std::max(4, n * 2 / 5)},
        2));
  }
  out.push_back(std::make_unique<LigenWorkload>(256, 31, 8));
  return out;
}

Characterization characterize_with(std::size_t threads, bool use_cache) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.015, 0.015}, 0x077);
  synergy::Device device(sim_dev);
  const CronosWorkload workload(cronos::GridDims{20, 8, 8}, 2);

  ThreadPool pool(threads);
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = 3;
  options.pool = &pool;
  options.cache = use_cache ? &cache : nullptr;
  return characterize(device, workload, options, strided_freqs(device, 8));
}

void expect_identical(const Characterization& a, const Characterization& b) {
  EXPECT_EQ(a.default_freq_mhz, b.default_freq_mhz);
  EXPECT_EQ(a.default_time_s, b.default_time_s);
  EXPECT_EQ(a.default_energy_j, b.default_energy_j);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].freq_mhz, b.points[i].freq_mhz) << i;
    EXPECT_EQ(a.points[i].time_s, b.points[i].time_s) << i;
    EXPECT_EQ(a.points[i].energy_j, b.points[i].energy_j) << i;
    EXPECT_EQ(a.points[i].speedup, b.points[i].speedup) << i;
    EXPECT_EQ(a.points[i].norm_energy, b.points[i].norm_energy) << i;
    EXPECT_EQ(a.points[i].pareto, b.points[i].pareto) << i;
  }
  EXPECT_EQ(a.pareto_indices(), b.pareto_indices());
}

TEST(SweepDeterminism, CharacterizeBitIdenticalAcrossPoolSizes) {
  const Characterization serial = characterize_with(1, true);
  expect_identical(serial, characterize_with(2, true));
  expect_identical(serial, characterize_with(8, true));
}

TEST(SweepDeterminism, ProfileCacheDoesNotChangeResults) {
  expect_identical(characterize_with(4, true), characterize_with(4, false));
}

Dataset dataset_with(std::size_t threads) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.01, 0.01}, 0x0D5);
  synergy::Device device(sim_dev);
  const auto workloads = test_workloads();

  ThreadPool pool(threads);
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = 2;
  options.pool = &pool;
  options.cache = &cache;
  return build_dataset(device, workloads, options, strided_freqs(device, 16));
}

TEST(SweepDeterminism, DatasetBitIdenticalAcrossPoolSizes) {
  const Dataset serial = dataset_with(1);
  for (std::size_t threads : {2, 8}) {
    const Dataset parallel = dataset_with(threads);
    ASSERT_EQ(serial.rows(), parallel.rows());
    EXPECT_EQ(serial.time_s, parallel.time_s);
    EXPECT_EQ(serial.energy_j, parallel.energy_j);
    EXPECT_EQ(serial.groups, parallel.groups);
    EXPECT_EQ(serial.group_names, parallel.group_names);
    EXPECT_EQ(serial.default_freq_mhz, parallel.default_freq_mhz);
    ASSERT_EQ(serial.group_default.size(), parallel.group_default.size());
    for (std::size_t g = 0; g < serial.group_default.size(); ++g) {
      EXPECT_EQ(serial.group_default[g], parallel.group_default[g]) << g;
    }
    ASSERT_EQ(serial.x.rows(), parallel.x.rows());
    ASSERT_EQ(serial.x.cols(), parallel.x.cols());
    const auto sx = serial.x.data();
    const auto px = parallel.x.data();
    for (std::size_t i = 0; i < sx.size(); ++i) {
      ASSERT_EQ(sx[i], px[i]) << "matrix element " << i;
    }
  }
}

TEST(SweepDeterminism, TrainedModelPredictionsBitIdenticalAcrossPoolSizes) {
  // End of the chain: a model trained on a parallel-collected dataset must
  // predict exactly what a model trained on the serial dataset predicts.
  const Dataset serial = dataset_with(1);
  const Dataset parallel = dataset_with(8);

  DomainSpecificModel ds_serial;
  ds_serial.train(serial);
  DomainSpecificModel ds_parallel;
  ds_parallel.train(parallel);

  const std::vector<double> features =
      CronosWorkload(cronos::GridDims{20, 8, 8}, 2).domain_features();
  const std::vector<double> freqs = {300.0, 700.0, 1100.0, 1597.0};
  const Prediction a = ds_serial.predict(features, freqs, 1312.0);
  const Prediction b = ds_parallel.predict(features, freqs, 1312.0);
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.norm_energy, b.norm_energy);
  EXPECT_EQ(a.pareto_indices(), b.pareto_indices());
}

} // namespace
} // namespace dsem::core
