#include "core/measurement.hpp"

#include <gtest/gtest.h>

#include "core/characterization.hpp"

namespace dsem::core {
namespace {

class MeasurementTest : public ::testing::Test {
protected:
  MeasurementTest() : sim_dev_(sim::v100(), sim::NoiseConfig::none()),
                      device_(sim_dev_), workload_({20, 8, 8}, 3) {}
  sim::Device sim_dev_;
  synergy::Device device_;
  CronosWorkload workload_;
};

TEST_F(MeasurementTest, MeasureReturnsPositiveValues) {
  const Measurement m = measure(device_, workload_, 1000.0, 1);
  EXPECT_GT(m.time_s, 0.0);
  EXPECT_GT(m.energy_j, 0.0);
}

TEST_F(MeasurementTest, MeasureRestoresDefaultClock) {
  measure(device_, workload_, 500.0, 1);
  EXPECT_NEAR(device_.current_frequency(), device_.default_frequency(), 8.0);
}

TEST_F(MeasurementTest, RepetitionsAverageNoise) {
  sim::Device noisy_dev(sim::v100(), sim::NoiseConfig{0.05, 0.05}, 3);
  synergy::Device noisy(noisy_dev);
  const Measurement one = measure(noisy, workload_, 1000.0, 1);
  const Measurement many = measure(noisy, workload_, 1000.0, 50);
  const Measurement truth = measure(device_, workload_, 1000.0, 1);
  // 50-repetition average should be closer to the noise-free value than a
  // worst-case single draw bound.
  EXPECT_LT(std::abs(many.time_s - truth.time_s) / truth.time_s, 0.02);
  (void)one;
}

TEST_F(MeasurementTest, DefaultMeasurementUsesDefaultClock) {
  const Measurement def = measure_default(device_, workload_, 1);
  const Measurement pinned =
      measure(device_, workload_, device_.default_frequency(), 1);
  EXPECT_NEAR(def.time_s, pinned.time_s, def.time_s * 1e-12);
}

TEST_F(MeasurementTest, SweepCoversAllFrequenciesByDefault) {
  const auto sweep = sweep_frequencies(device_, workload_, 1);
  EXPECT_EQ(sweep.size(), 196u);
  EXPECT_NEAR(sweep.front().freq_mhz, 135.0, 1e-9);
  EXPECT_NEAR(sweep.back().freq_mhz, 1597.0, 1e-9);
}

TEST_F(MeasurementTest, SweepHonoursExplicitList) {
  const std::vector<double> freqs = {500.0, 1000.0, 1500.0};
  const auto sweep = sweep_frequencies(device_, workload_, 1, freqs);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[1].freq_mhz, 1000.0);
}

TEST_F(MeasurementTest, RejectsZeroRepetitions) {
  EXPECT_THROW(measure(device_, workload_, 1000.0, 0), dsem::contract_error);
}

class CharacterizationTest : public MeasurementTest {};

TEST_F(CharacterizationTest, BaselineNormalizesToUnity) {
  const auto c = characterize(device_, workload_, 1);
  const auto& at_default = c.at_freq(c.default_freq_mhz);
  EXPECT_NEAR(at_default.speedup, 1.0, 1e-9);
  EXPECT_NEAR(at_default.norm_energy, 1.0, 1e-9);
}

TEST_F(CharacterizationTest, PointsSortedByFrequency) {
  const auto c = characterize(device_, workload_, 1);
  for (std::size_t i = 1; i < c.points.size(); ++i) {
    EXPECT_GT(c.points[i].freq_mhz, c.points[i - 1].freq_mhz);
  }
}

TEST_F(CharacterizationTest, ParetoFlagsMatchFrontExtraction) {
  const auto c = characterize(device_, workload_, 1);
  const auto front = c.pareto_indices();
  std::size_t flagged = 0;
  for (const auto& p : c.points) {
    if (p.pareto) {
      ++flagged;
    }
  }
  EXPECT_EQ(flagged, front.size());
  for (std::size_t idx : front) {
    EXPECT_TRUE(c.points[idx].pareto);
  }
}

TEST_F(CharacterizationTest, SpeedupMonotoneNonDecreasingForComputeBound) {
  // LiGen is compute-bound: pinning higher clocks never slows it down.
  const LigenWorkload ligen(4096, 89, 20);
  const auto c = characterize(device_, ligen, 1);
  for (std::size_t i = 1; i < c.points.size(); ++i) {
    EXPECT_GE(c.points[i].speedup, c.points[i - 1].speedup * 0.999);
  }
}

TEST_F(CharacterizationTest, BestSavingHelpers) {
  const auto c = characterize(device_, workload_, 1);
  EXPECT_GE(c.best_energy_saving(1.0), c.best_energy_saving(0.02));
  EXPECT_GE(c.best_speedup_gain(), 0.0);
}

TEST_F(CharacterizationTest, AmdBaselineIsAutoGovernor) {
  sim::Device amd_sim(sim::mi100(), sim::NoiseConfig::none());
  synergy::Device amd(amd_sim);
  const auto c = characterize(amd, workload_, 1);
  EXPECT_NEAR(c.default_freq_mhz, 1502.0, 10.0);
  // Paper Fig. 10c/d: the auto frequency always performs best on AMD.
  for (const auto& p : c.points) {
    EXPECT_LE(p.speedup, 1.0 + 1e-9);
  }
}

} // namespace
} // namespace dsem::core
