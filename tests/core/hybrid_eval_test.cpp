// Grouped regression suite for the hybrid model family's evaluation
// pipeline, pinned against the golden Cronos/V100 training sweep under
// tests/data/ (exported with `frequency_advisor --dataset-out`, see
// EXPERIMENTS.md):
//   - the extrapolation split (largest grid held out) where the hybrid
//     model must beat the static-feature GP baseline on MAPE by a margin,
//   - a MiniFig-style three-way accuracy golden (GP vs DS vs hybrid),
//     bit-identical for thread pools of size 1, 2, and 8.
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/evaluation.hpp"
#include "microbench/suite.hpp"
#include "ml/forest.hpp"
#include "serve/train.hpp"
#include "sim/device.hpp"
#include "synergy/device.hpp"

namespace dsem::core {
namespace {

// Seeds matching the two families' library defaults, so the pinned values
// track what fig01 reports with default prototypes.
constexpr std::uint64_t kDsSeed = 0x05d5;
constexpr std::uint64_t kHybridSeed = 0x4b1d;

// Shared lazily-built fixture: the golden dataset, its workload grid, and
// a GP baseline trained on the microbenchmark suite (the expensive part).
struct EvalFixture {
  Dataset dataset;
  std::vector<std::unique_ptr<Workload>> workloads;
  sim::DeviceSpec spec;
  GeneralPurposeModel gp;
};

EvalFixture& fixture() {
  static EvalFixture* state = [] {
    auto* s = new EvalFixture;
    s->dataset = load_dataset(std::string(DSEM_TEST_DATA_DIR) +
                              "/golden_hybrid_cronos_v100.json");
    s->workloads = serve::training_set("cronos", /*compact=*/false);
    s->spec = sim::v100();
    sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
    synergy::Device device(sim_dev);
    sim::ProfileCache cache;
    SweepOptions options;
    options.cache = &cache;
    s->gp.train(device, microbench::make_suite(), options, 16);
    return s;
  }();
  return *state;
}

ml::RandomForestRegressor prototype(std::uint64_t seed, ThreadPool* pool) {
  ml::ForestParams params;
  params.seed = seed;
  params.pool = pool;
  return ml::RandomForestRegressor(params);
}

std::string render(const ThreeWayAccuracyReport& report) {
  std::ostringstream os;
  os.precision(17);
  for (const ThreeWayAccuracyRow& row : report.rows) {
    os << row.gp_speedup_mape << " " << row.ds_speedup_mape << " "
       << row.hy_speedup_mape << " " << row.gp_energy_mape << " "
       << row.ds_energy_mape << " " << row.hy_energy_mape << "\n";
  }
  return os.str();
}

TEST(HybridEvalTest, WorkloadGridMatchesTheGoldenDataset) {
  EvalFixture& f = fixture();
  ASSERT_EQ(f.workloads.size(), f.dataset.num_groups());
  for (std::size_t g = 0; g < f.workloads.size(); ++g) {
    EXPECT_EQ(f.workloads[g]->name(), f.dataset.group_names[g]);
    EXPECT_TRUE(f.dataset.group_ok(static_cast<int>(g)));
  }
}

TEST(HybridEvalTest, HybridBeatsGpOnTheExtrapolationSplit) {
  EvalFixture& f = fixture();
  const ExtrapolationReport report =
      evaluate_extrapolation(f.dataset, f.workloads, f.spec, f.gp);
  ASSERT_EQ(report.held_out.size(), 1u);
  EXPECT_EQ(report.held_out.front(), "160x64x64");

  const ThreeWayMeans m = report.accuracy.means();
  // The pinned margin: off the training grid, the fused static+dynamic
  // features must beat the input-size-blind GP baseline clearly, not
  // narrowly (fig01 shows ~12x on speedup, ~3x on energy).
  EXPECT_LT(m.hy_speedup, 0.5 * m.gp_speedup) << render(report.accuracy);
  EXPECT_LT(m.hy_energy, 0.75 * m.gp_energy) << render(report.accuracy);
  // And it must stay in the domain-specific family's accuracy class.
  EXPECT_LT(m.hy_speedup, 2.0 * m.ds_speedup) << render(report.accuracy);
  EXPECT_LT(m.hy_energy, 2.0 * m.ds_energy) << render(report.accuracy);
}

TEST(HybridEvalTest, ThreeWayAccuracyGoldenForPools128) {
  EvalFixture& f = fixture();
  std::vector<ThreeWayAccuracyReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ml::RandomForestRegressor ds_proto = prototype(kDsSeed, &pool);
    const ml::RandomForestRegressor hy_proto = prototype(kHybridSeed, &pool);
    reports.push_back(evaluate_accuracy_three_way(
        f.dataset, f.workloads, f.spec, f.gp, /*report=*/{}, &ds_proto,
        &hy_proto, &pool));
  }

  // Pool size must not leak into a single bit of the evaluation.
  ASSERT_EQ(reports[0].rows.size(), f.dataset.num_groups());
  for (std::size_t p = 1; p < reports.size(); ++p) {
    ASSERT_EQ(reports[p].rows.size(), reports[0].rows.size());
    for (std::size_t r = 0; r < reports[0].rows.size(); ++r) {
      const ThreeWayAccuracyRow& a = reports[0].rows[r];
      const ThreeWayAccuracyRow& b = reports[p].rows[r];
      EXPECT_EQ(a.input, b.input);
      EXPECT_EQ(a.gp_speedup_mape, b.gp_speedup_mape) << a.input;
      EXPECT_EQ(a.ds_speedup_mape, b.ds_speedup_mape) << a.input;
      EXPECT_EQ(a.hy_speedup_mape, b.hy_speedup_mape) << a.input;
      EXPECT_EQ(a.gp_energy_mape, b.gp_energy_mape) << a.input;
      EXPECT_EQ(a.ds_energy_mape, b.ds_energy_mape) << a.input;
      EXPECT_EQ(a.hy_energy_mape, b.hy_energy_mape) << a.input;
    }
  }

  // MiniFig golden: 6 MAPE columns per input, pinned under tests/data/.
  // Any change to the models, the feature extractor, or the evaluation
  // that moves these must be a conscious decision — update the golden
  // with the rendered values below if it is.
  const std::string path =
      std::string(DSEM_TEST_DATA_DIR) + "/golden_threeway_cronos_v100.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::vector<double> golden;
  double value = 0.0;
  while (in >> value) {
    golden.push_back(value);
  }
  const ThreeWayAccuracyReport& actual = reports[0];
  ASSERT_EQ(golden.size(), actual.rows.size() * 6)
      << "golden size changed; actual report:\n" << render(actual);
  for (std::size_t r = 0; r < actual.rows.size(); ++r) {
    const ThreeWayAccuracyRow& row = actual.rows[r];
    const double expected[6] = {row.gp_speedup_mape, row.ds_speedup_mape,
                                row.hy_speedup_mape, row.gp_energy_mape,
                                row.ds_energy_mape,  row.hy_energy_mape};
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(expected[c], golden[r * 6 + c], 1e-9)
          << "row " << r << " col " << c << "; actual report:\n"
          << render(actual);
    }
  }
}

} // namespace
} // namespace dsem::core
