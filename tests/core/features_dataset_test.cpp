#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/dataset.hpp"
#include "core/features.hpp"

namespace dsem::core {
namespace {

TEST(StaticFeatures, NormalizedToUnitSum) {
  sim::KernelProfile p;
  p.float_add = 30.0;
  p.int_add = 10.0;
  p.global_bytes = 40.0; // 10 accesses
  const auto v = static_feature_vector(p);
  ASSERT_EQ(v.size(), sim::kNumStaticFeatures);
  double sum = 0.0;
  for (double x : v) {
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(v[4], 0.6, 1e-12); // float_add fraction
  EXPECT_NEAR(v[8], 0.2, 1e-12); // gl_access fraction
}

TEST(StaticFeatures, ScaleInvariant) {
  sim::KernelProfile p;
  p.float_mul = 5.0;
  p.global_bytes = 20.0;
  const auto a = static_feature_vector(p);
  const auto b = static_feature_vector(p.scaled(1000.0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(StaticFeatures, ZeroWorkRejected) {
  EXPECT_THROW(static_feature_vector(sim::KernelProfile{}), contract_error);
}

TEST(StaticFeatures, NamesMatchTable1) {
  const auto names = static_feature_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names[0], "int_add");
  EXPECT_EQ(names[7], "sf");
  EXPECT_EQ(names[8], "gl_access");
}

TEST(WithFrequency, AppendsColumn) {
  const auto v = with_frequency({1.0, 2.0}, 1312.0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.back(), 1312.0);
}

class DatasetTest : public ::testing::Test {
protected:
  DatasetTest() : sim_dev_(sim::v100(), sim::NoiseConfig::none()),
                  device_(sim_dev_) {
    workloads_.push_back(std::make_unique<CronosWorkload>(
        cronos::GridDims{10, 4, 4}, 2));
    workloads_.push_back(std::make_unique<CronosWorkload>(
        cronos::GridDims{20, 8, 8}, 2));
    workloads_.push_back(std::make_unique<CronosWorkload>(
        cronos::GridDims{40, 16, 16}, 2));
  }
  sim::Device sim_dev_;
  synergy::Device device_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  std::vector<double> freqs_ = {400.0, 800.0, 1200.0, 1597.0};
};

TEST_F(DatasetTest, ShapeMatchesWorkloadsTimesFrequencies) {
  const Dataset ds = build_dataset(device_, workloads_, 1, freqs_);
  EXPECT_EQ(ds.rows(), 12u);
  EXPECT_EQ(ds.num_groups(), 3u);
  EXPECT_EQ(ds.x.rows(), 12u);
  EXPECT_EQ(ds.x.cols(), 4u); // 3 domain features + frequency
}

TEST_F(DatasetTest, RowsCarryDomainFeaturesAndFrequency) {
  const Dataset ds = build_dataset(device_, workloads_, 1, freqs_);
  // Second workload (20x8x8), third frequency.
  const std::size_t row = 1 * freqs_.size() + 2;
  EXPECT_DOUBLE_EQ(ds.x(row, 0), 20.0);
  EXPECT_DOUBLE_EQ(ds.x(row, 1), 8.0);
  EXPECT_DOUBLE_EQ(ds.x(row, 2), 8.0);
  EXPECT_DOUBLE_EQ(ds.x(row, 3), 1200.0);
  EXPECT_EQ(ds.groups[row], 1);
}

TEST_F(DatasetTest, GroupLookupAndRows) {
  const Dataset ds = build_dataset(device_, workloads_, 1, freqs_);
  EXPECT_EQ(ds.group_of("20x8x8"), 1);
  EXPECT_THROW(ds.group_of("nope"), contract_error);
  const auto rows = ds.rows_of_group(2);
  EXPECT_EQ(rows.size(), freqs_.size());
  for (std::size_t r : rows) {
    EXPECT_EQ(ds.groups[r], 2);
  }
}

TEST_F(DatasetTest, BaselinesRecordedPerGroup) {
  const Dataset ds = build_dataset(device_, workloads_, 1, freqs_);
  ASSERT_EQ(ds.group_default.size(), 3u);
  for (const auto& base : ds.group_default) {
    EXPECT_GT(base.time_s, 0.0);
    EXPECT_GT(base.energy_j, 0.0);
  }
  for (double f : ds.default_freq_mhz) {
    EXPECT_NEAR(f, 1312.0, 8.0);
  }
}

TEST_F(DatasetTest, LargerGridsTakeLongerAtEveryFrequency) {
  const Dataset ds = build_dataset(device_, workloads_, 1, freqs_);
  for (std::size_t f = 0; f < freqs_.size(); ++f) {
    const double small = ds.time_s[0 * freqs_.size() + f];
    const double large = ds.time_s[2 * freqs_.size() + f];
    EXPECT_GT(large, small);
  }
}

TEST_F(DatasetTest, EmptyWorkloadListRejected) {
  const std::vector<std::unique_ptr<Workload>> empty;
  EXPECT_THROW(build_dataset(device_, empty, 1, freqs_), contract_error);
}

} // namespace
} // namespace dsem::core
