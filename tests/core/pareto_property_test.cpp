// Property-style invariants of pareto_front over random point clouds.
//
// pareto_test.cpp pins hand-built examples; this file checks the
// properties that must hold for ANY input: the front is invariant under
// permutation of the points, no front member dominates another, points
// off the front are dominated by it, and duplicate points collapse to
// one representative.
#include "core/pareto.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dsem::core {
namespace {

struct Cloud {
  std::vector<double> speedup;
  std::vector<double> energy;
};

Cloud random_cloud(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Cloud c;
  for (std::size_t i = 0; i < n; ++i) {
    c.speedup.push_back(rng.uniform(0.5, 2.0));
    c.energy.push_back(rng.uniform(0.4, 1.6));
  }
  // Sprinkle exact duplicates so ties are always exercised.
  for (std::size_t i = 0; i + 1 < n && i < 5; ++i) {
    const std::size_t src = rng.uniform_int(n);
    const std::size_t dst = rng.uniform_int(n);
    c.speedup[dst] = c.speedup[src];
    c.energy[dst] = c.energy[src];
  }
  return c;
}

/// The set of (speedup, energy) values a front selects — the permutation
/// and duplicate properties compare value sets, not index sets.
std::vector<std::pair<double, double>> front_values(
    const Cloud& c, std::span<const std::size_t> front) {
  std::vector<std::pair<double, double>> values;
  for (std::size_t i : front) {
    values.emplace_back(c.speedup[i], c.energy[i]);
  }
  std::sort(values.begin(), values.end());
  return values;
}

constexpr int kSeeds = 50;

TEST(ParetoProperty, PermutationInvariance) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const Cloud c = random_cloud(derive_seed(0x9a12, seed), 64);
    const auto base = front_values(c, pareto_front(c.speedup, c.energy));

    Cloud shuffled = c;
    std::vector<std::size_t> perm(c.speedup.size());
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(derive_seed(0x51f3, seed));
    std::shuffle(perm.begin(), perm.end(), rng);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      shuffled.speedup[i] = c.speedup[perm[i]];
      shuffled.energy[i] = c.energy[perm[i]];
    }
    const auto permuted =
        front_values(shuffled, pareto_front(shuffled.speedup, shuffled.energy));
    EXPECT_EQ(base, permuted) << "seed " << seed;
  }
}

TEST(ParetoProperty, FrontMembersAreMutuallyNonDominating) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const Cloud c = random_cloud(derive_seed(0x2bd7, seed), 64);
    const auto front = pareto_front(c.speedup, c.energy);
    ASSERT_FALSE(front.empty()) << "seed " << seed;
    for (std::size_t a : front) {
      for (std::size_t b : front) {
        if (a == b) {
          continue;
        }
        const bool dominates = c.speedup[a] >= c.speedup[b] &&
                               c.energy[a] <= c.energy[b] &&
                               (c.speedup[a] > c.speedup[b] ||
                                c.energy[a] < c.energy[b]);
        EXPECT_FALSE(dominates)
            << "seed " << seed << ": front member " << a
            << " dominates front member " << b;
      }
    }
  }
}

TEST(ParetoProperty, OffFrontPointsAreDominated) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const Cloud c = random_cloud(derive_seed(0x77c1, seed), 64);
    const auto front = pareto_front(c.speedup, c.energy);
    std::vector<double> fs;
    std::vector<double> fe;
    for (std::size_t i : front) {
      fs.push_back(c.speedup[i]);
      fe.push_back(c.energy[i]);
    }
    for (std::size_t i = 0; i < c.speedup.size(); ++i) {
      if (std::find(front.begin(), front.end(), i) != front.end()) {
        continue;
      }
      // Duplicates of a front point are not strictly dominated; they are
      // off the front only because one representative was kept.
      const bool duplicate_of_front =
          std::any_of(front.begin(), front.end(), [&](std::size_t f) {
            return c.speedup[f] == c.speedup[i] && c.energy[f] == c.energy[i];
          });
      if (duplicate_of_front) {
        continue;
      }
      EXPECT_TRUE(is_dominated(c.speedup[i], c.energy[i], fs, fe))
          << "seed " << seed << ": point " << i;
    }
  }
}

TEST(ParetoProperty, DuplicatePointsCollapse) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const Cloud c = random_cloud(derive_seed(0xe04a, seed), 48);
    // Duplicate the whole cloud: the front's VALUE set must not change,
    // and no (speedup, energy) value may appear twice on the front.
    Cloud doubled = c;
    doubled.speedup.insert(doubled.speedup.end(), c.speedup.begin(),
                           c.speedup.end());
    doubled.energy.insert(doubled.energy.end(), c.energy.begin(),
                          c.energy.end());

    const auto base = front_values(c, pareto_front(c.speedup, c.energy));
    const auto front2 = pareto_front(doubled.speedup, doubled.energy);
    const auto dbl = front_values(doubled, front2);
    EXPECT_EQ(base, dbl) << "seed " << seed;

    auto unique_check = dbl;
    unique_check.erase(std::unique(unique_check.begin(), unique_check.end()),
                       unique_check.end());
    EXPECT_EQ(dbl.size(), unique_check.size())
        << "seed " << seed << ": duplicate value on the front";
  }
}

} // namespace
} // namespace dsem::core
