// Domain-specific and general-purpose model behaviour on small but real
// measurement datasets.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "core/ds_model.hpp"
#include "core/evaluation.hpp"
#include "core/gp_model.hpp"
#include "microbench/suite.hpp"
#include "ml/linear.hpp"

namespace dsem::core {
namespace {

std::vector<double> strided_freqs(const synergy::Device& device,
                                  std::size_t stride) {
  const auto all = device.supported_frequencies();
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    out.push_back(all[i]);
  }
  return out;
}

// Shared across the suite: the dataset build dominates runtime, every test
// only reads it, and the sweep engine leaves the device's RNG untouched.
struct ModelsState {
  sim::Device sim_dev{sim::v100(), sim::NoiseConfig{0.01, 0.01}, 1};
  synergy::Device device{sim_dev};
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<double> freqs;
  Dataset dataset;

  ModelsState() {
    // The paper's five canonical grids plus intermediate training grids so
    // leave-one-out folds interpolate instead of extrapolating.
    for (int n : {10, 20, 30, 40, 60, 80, 120, 160}) {
      workloads.push_back(std::make_unique<CronosWorkload>(
          cronos::GridDims{n, std::max(4, n * 2 / 5), std::max(4, n * 2 / 5)},
          2));
    }
    freqs = strided_freqs(device, 8); // 25 frequencies
    dataset = build_dataset(device, workloads, 2, freqs);
  }

  static const ModelsState& instance() {
    static const ModelsState state;
    return state;
  }
};

class ModelsTest : public ::testing::Test {
protected:
  ModelsTest()
      : workloads_(ModelsState::instance().workloads),
        freqs_(ModelsState::instance().freqs),
        dataset_(ModelsState::instance().dataset) {}

  const std::vector<std::unique_ptr<Workload>>& workloads_;
  const std::vector<double>& freqs_;
  const Dataset& dataset_;
};

TEST_F(ModelsTest, DsModelFitsTrainingInputsAccurately) {
  DomainSpecificModel model;
  model.train(dataset_);
  // In-sample prediction of the largest grid's raw time curve.
  const int g = dataset_.group_of(workloads_.back()->name());
  const TruthCurves truth = truth_curves(dataset_, g);
  const auto pred = model.predict(workloads_.back()->domain_features(),
                                  truth.freqs_mhz, 1312.0);
  EXPECT_LT(stats::mape(truth.time_s, pred.time_s), 0.05);
  EXPECT_LT(stats::mape(truth.energy_j, pred.energy_j), 0.05);
}

TEST_F(ModelsTest, DsModelSpeedupBaselinedOnPredictedDefault) {
  DomainSpecificModel model;
  model.train(dataset_);
  const auto pred = model.predict(workloads_[2]->domain_features(),
                                  std::vector<double>{1312.0}, 1312.0);
  EXPECT_NEAR(pred.speedup[0], 1.0, 1e-9);
  EXPECT_NEAR(pred.norm_energy[0], 1.0, 1e-9);
}

TEST_F(ModelsTest, DsModelLoocvGeneralizesToHeldOutInput) {
  const int g = dataset_.group_of("40x16x16");
  std::vector<std::size_t> train_rows;
  for (std::size_t i = 0; i < dataset_.rows(); ++i) {
    if (dataset_.groups[i] != g) {
      train_rows.push_back(i);
    }
  }
  DomainSpecificModel model;
  model.train(dataset_, train_rows);
  const TruthCurves truth = truth_curves(dataset_, g);
  const auto pred =
      model.predict(workloads_[static_cast<std::size_t>(3)]->domain_features(),
                    truth.freqs_mhz, 1312.0);
  // Ratio curves generalize well even when magnitudes interpolate.
  EXPECT_LT(stats::mape(truth.speedup, pred.speedup), 0.05);
  EXPECT_LT(stats::mape(truth.norm_energy, pred.norm_energy), 0.05);
}

TEST_F(ModelsTest, DsModelCustomRegressorPrototype) {
  DomainSpecificModel model(ml::LinearRegressor{});
  model.train(dataset_);
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.time_model().name(), "Linear");
}

TEST_F(ModelsTest, DsModelPredictBeforeTrainThrows) {
  DomainSpecificModel model;
  const std::vector<double> features = {10.0, 4.0, 4.0};
  EXPECT_THROW(model.predict(features, freqs_, 1312.0), contract_error);
}

TEST_F(ModelsTest, PredictionParetoIndicesAreValid) {
  DomainSpecificModel model;
  model.train(dataset_);
  const auto pred = model.predict(workloads_[4]->domain_features(), freqs_,
                                  1312.0);
  const auto front = pred.pareto_indices();
  EXPECT_FALSE(front.empty());
  for (std::size_t idx : front) {
    EXPECT_LT(idx, freqs_.size());
  }
}

// One trained GP model shared across the suite: gp.train() is the per-test
// cost, the trained model is immutable, and training through the sweep
// engine does not advance the shared device's RNG.
struct GpState {
  sim::Device sim_dev{sim::v100(), sim::NoiseConfig{0.01, 0.01}, 2};
  synergy::Device device{sim_dev};
  GeneralPurposeModel gp;

  GpState() { gp.train(device, microbench::make_suite(), 1, 16); }

  static GpState& instance() {
    static GpState state;
    return state;
  }
};

class GpModelTest : public ::testing::Test {
protected:
  GpModelTest()
      : device_(GpState::instance().device), gp_(GpState::instance().gp) {}
  synergy::Device& device_;
  const GeneralPurposeModel& gp_;
};

TEST_F(GpModelTest, TrainsOnMicrobenchSuite) {
  const auto suite = microbench::make_suite();
  EXPECT_TRUE(gp_.trained());
  EXPECT_EQ(gp_.training_rows(), suite.size() * (196 / 16 + 1));
}

TEST_F(GpModelTest, PredictsReasonableCurveForMicrobenchLikeKernel) {
  // A compute-heavy profile: speedup should increase with frequency.
  sim::KernelProfile p;
  p.float_add = 512.0;
  p.float_mul = 512.0;
  p.global_bytes = 16.0;
  const std::vector<double> freqs = {400.0, 800.0, 1200.0, 1597.0};
  const auto pred = gp_.predict(p, freqs, 1312.0);
  EXPECT_LT(pred.speedup.front(), 1.0);
  EXPECT_GT(pred.speedup.back(), 1.0);
}

TEST_F(GpModelTest, BaselineNormalizedToUnity) {
  sim::KernelProfile p;
  p.float_add = 64.0;
  p.global_bytes = 256.0;
  const auto pred = gp_.predict(p, std::vector<double>{1312.0}, 1312.0);
  EXPECT_NEAR(pred.speedup[0], 1.0, 1e-9);
  EXPECT_NEAR(pred.norm_energy[0], 1.0, 1e-9);
}

TEST_F(GpModelTest, SameMixSameCurveRegardlessOfInputSize) {
  // Structural blindness: the GP model cannot distinguish input sizes.
  const GeneralPurposeModel& gp = gp_;
  const LigenWorkload small(2, 89, 8);
  const LigenWorkload large(100000, 89, 8);
  const std::vector<double> freqs = {500.0, 1000.0, 1500.0};
  const auto ps = gp.predict(small.aggregate_profile(), freqs, 1312.0);
  const auto pl = gp.predict(large.aggregate_profile(), freqs, 1312.0);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(ps.speedup[i], pl.speedup[i], 1e-9);
    EXPECT_NEAR(ps.norm_energy[i], pl.norm_energy[i], 1e-9);
  }
}

TEST_F(GpModelTest, PredictBeforeTrainThrows) {
  GeneralPurposeModel gp;
  sim::KernelProfile p;
  p.float_add = 1.0;
  EXPECT_THROW(gp.predict(p, std::vector<double>{1000.0}, 1312.0),
               contract_error);
}

TEST_F(GpModelTest, ValidatesTrainingArguments) {
  GeneralPurposeModel gp;
  EXPECT_THROW(gp.train(device_, {}, 1, 4), contract_error);
  const auto suite = microbench::make_suite();
  EXPECT_THROW(gp.train(device_, suite, 0, 4), contract_error);
  EXPECT_THROW(gp.train(device_, suite, 1, 0), contract_error);
}

} // namespace
} // namespace dsem::core
