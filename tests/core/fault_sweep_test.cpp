// Resilient-sweep contract: transient device faults are retried under the
// RetryPolicy, grid points that exhaust their attempts degrade into failed
// records instead of aborting, the models train on what survived, and the
// whole faulty pipeline stays bit-identical for any thread-pool size.
#include <memory>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/characterization.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/evaluation.hpp"
#include "core/sweep_report.hpp"
#include "microbench/suite.hpp"

namespace dsem::core {
namespace {

std::vector<double> strided_freqs(const synergy::Device& device,
                                  std::size_t stride) {
  const auto all = device.supported_frequencies();
  std::vector<double> out;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    out.push_back(all[i]);
  }
  return out;
}

std::vector<std::unique_ptr<Workload>> test_workloads() {
  std::vector<std::unique_ptr<Workload>> out;
  for (int n : {10, 20, 40}) {
    out.push_back(std::make_unique<CronosWorkload>(
        cronos::GridDims{n, std::max(4, n * 2 / 5), std::max(4, n * 2 / 5)},
        2));
  }
  out.push_back(std::make_unique<LigenWorkload>(256, 31, 8));
  return out;
}

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  const RetryPolicy policy{3, 0.01, 2.0};
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 0.04);
}

TEST(RetryPolicyTest, StatsMergeSumsEveryField) {
  RetryStats a{3, 1, 2, 0.5};
  const RetryStats b{5, 2, 3, 0.25};
  a.merge(b);
  EXPECT_EQ(a.attempts, 8u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.faults, 5u);
  EXPECT_DOUBLE_EQ(a.simulated_backoff_s, 0.75);
}

TEST(RetryTest, SetFrequencyRetriesThenSucceeds) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0x5e7);
  sim::FaultConfig config;
  config.set_frequency_rate = 0.5;
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);

  RetryStats stats;
  const RetryPolicy policy{10, 0.01, 2.0};
  for (int i = 0; i < 50; ++i) {
    set_frequency_with_retry(device, 900.0, policy, &stats);
  }
  EXPECT_GT(stats.faults, 0u);
  EXPECT_EQ(stats.retries, stats.faults); // none exhausted the policy
  EXPECT_EQ(stats.attempts, 50u + stats.retries);
  EXPECT_GT(stats.simulated_backoff_s, 0.0);
}

TEST(RetryTest, SetFrequencyExhaustionThrowsMeasurementError) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0x5e8);
  sim::FaultConfig config;
  config.set_frequency_rate = 1.0; // always rejected
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);

  RetryStats stats;
  EXPECT_THROW(set_frequency_with_retry(device, 900.0, {3, 0.01, 2.0}, &stats),
               MeasurementError);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.faults, 3u);
  EXPECT_EQ(stats.retries, 2u); // the last attempt has no retry after it
}

TEST(RetryTest, MeasureRunRetriesTransientLaunchFaults) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xF00);
  sim::FaultConfig config;
  config.launch_rate = 0.05;
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);
  const CronosWorkload workload(cronos::GridDims{10, 4, 4}, 2);

  RetryStats stats;
  const Measurement m = measure_run(
      device, [&](synergy::Queue& q) { workload.submit(q); },
      /*repetitions=*/5, nullptr, RetryPolicy{20, 0.01, 2.0}, &stats);
  EXPECT_GT(m.time_s, 0.0);
  EXPECT_GT(m.energy_j, 0.0);
  EXPECT_GT(stats.faults, 0u);
  EXPECT_EQ(stats.attempts, 5u + stats.retries);
}

TEST(RetryTest, MeasureRunExhaustionThrowsMeasurementError) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xF01);
  sim::FaultConfig config;
  config.launch_rate = 1.0; // every launch aborts
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);
  const CronosWorkload workload(cronos::GridDims{10, 4, 4}, 2);

  EXPECT_THROW(measure_run(
                   device, [&](synergy::Queue& q) { workload.submit(q); },
                   /*repetitions=*/1, nullptr, RetryPolicy{3, 0.01, 2.0},
                   nullptr),
               MeasurementError);
}

TEST(FaultSweepTest, ExhaustedPointsAreRecordedNotFatal) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xABC);
  sim::FaultConfig config;
  config.set_frequency_rate = 1.0; // every pin rejected; baseline unaffected
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);
  const CronosWorkload workload(cronos::GridDims{10, 4, 4}, 2);
  const std::vector<double> freqs = {500.0, 900.0, 1300.0};

  SweepReport report;
  SweepOptions options;
  options.repetitions = 1;
  options.retry = {2, 0.01, 2.0};
  options.report = &report;
  const FrequencySweep sweep = sweep_workload(device, workload, freqs, options);

  // reset_frequency never injects: the baseline survives.
  EXPECT_TRUE(sweep.baseline_ok);
  EXPECT_GT(sweep.baseline.time_s, 0.0);
  ASSERT_EQ(sweep.points.size(), freqs.size());
  for (const SweepPoint& sp : sweep.points) {
    EXPECT_FALSE(sp.ok);
    EXPECT_EQ(sp.attempts, 2u);
    EXPECT_FALSE(sp.error.empty());
    EXPECT_EQ(sp.m, Measurement{});
  }
  EXPECT_EQ(report.grid_points, freqs.size() + 1);
  EXPECT_EQ(report.failed_points, freqs.size());
  ASSERT_EQ(report.failures.size(), freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_FALSE(report.failures[i].baseline);
    EXPECT_EQ(report.failures[i].freq_mhz, freqs[i]);
    EXPECT_EQ(report.failures[i].attempts, 2u);
  }

  // The characterization degrades the same way instead of throwing.
  const Characterization c = characterize(device, workload, options, freqs);
  EXPECT_TRUE(c.baseline_ok);
  EXPECT_TRUE(c.points.empty());
  EXPECT_EQ(c.failed_freqs, freqs);
  EXPECT_TRUE(c.pareto_indices().empty());
}

TEST(FaultSweepTest, FailedBaselinePoisonsOnlyItsGroup) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none(), 0xABD);
  sim::FaultConfig config;
  config.launch_rate = 1.0; // nothing survives
  sim_dev.set_fault_config(config);
  synergy::Device device(sim_dev);
  const CronosWorkload workload(cronos::GridDims{10, 4, 4}, 2);

  SweepOptions options;
  options.repetitions = 1;
  options.retry = {2, 0.01, 2.0};
  const std::vector<double> freqs = {500.0, 900.0};
  const Characterization c = characterize(device, workload, options, freqs);
  EXPECT_FALSE(c.baseline_ok);
  EXPECT_TRUE(c.points.empty());
  EXPECT_EQ(c.failed_freqs.size(), 2u);
}

// Shared scenario for the partial-dataset and determinism tests: rates and
// seed chosen so the grid loses a handful of points AND one whole group's
// baseline while most groups survive (56 points, 6 failed, 1 of 4 groups
// lost at these settings).
Dataset faulty_dataset(std::size_t threads, SweepReport* report,
                       double rate = 0.005) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.01, 0.01}, 0x3);
  sim_dev.set_fault_config(sim::FaultConfig::uniform(rate));
  synergy::Device device(sim_dev);
  const auto workloads = test_workloads();

  ThreadPool pool(threads);
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = 2;
  options.pool = &pool;
  options.cache = &cache;
  options.retry = {2, 0.01, 2.0};
  options.report = report;
  return build_dataset(device, workloads, options, strided_freqs(device, 16));
}

TEST(FaultSweepTest, PartialDatasetTrainsAndEvaluates) {
  SweepReport report;
  const Dataset dataset = faulty_dataset(4, &report);
  const auto workloads = test_workloads();

  EXPECT_GT(report.failed_points, 0u);
  EXPECT_LT(dataset.rows(), report.grid_points - workloads.size());
  EXPECT_GT(dataset.rows(), 0u);
  EXPECT_EQ(dataset.num_groups(), workloads.size()); // slots preserved

  std::size_t ok_groups = 0;
  std::size_t lost_groups = 0;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    if (dataset.group_ok(static_cast<int>(g))) {
      ++ok_groups;
    } else {
      ++lost_groups;
      EXPECT_TRUE(dataset.rows_of_group(static_cast<int>(g)).empty());
      EXPECT_EQ(dataset.group_default[g], Measurement{});
    }
  }
  EXPECT_GE(ok_groups, 2u);
  EXPECT_GE(lost_groups, 1u);

  // The DS model trains on what survived and still predicts sane curves.
  DomainSpecificModel model;
  model.train(dataset);
  const std::vector<double> pred_freqs = {500.0, 900.0, 1300.0};
  const Prediction pred = model.predict(workloads.front()->domain_features(),
                                        pred_freqs, 1312.0);
  for (double t : pred.time_s) {
    EXPECT_GT(t, 0.0);
  }

  // LOOCV defaults to the surviving groups only.
  sim::Device gp_sim(sim::v100(), sim::NoiseConfig::none(), 0x69);
  synergy::Device gp_device(gp_sim);
  GeneralPurposeModel gp;
  gp.train(gp_device, microbench::make_suite(), 1, 32);
  const AccuracyReport acc = evaluate_accuracy(dataset, workloads, gp);
  EXPECT_EQ(acc.rows.size(), ok_groups);
  for (const auto& row : acc.rows) {
    EXPECT_TRUE(dataset.group_ok(dataset.group_of(row.input)));
  }
}

TEST(FaultSweepTest, PipelineBitIdenticalAcrossPoolSizes) {
  SweepReport serial_report;
  const Dataset serial = faulty_dataset(1, &serial_report);
  for (std::size_t threads : {2, 8}) {
    SweepReport report;
    const Dataset parallel = faulty_dataset(threads, &report);

    // Deterministic report fields: everything except the cache hit/miss
    // split and phase wall times.
    EXPECT_EQ(report.grid_points, serial_report.grid_points);
    EXPECT_EQ(report.failed_points, serial_report.failed_points);
    EXPECT_EQ(report.retry.attempts, serial_report.retry.attempts);
    EXPECT_EQ(report.retry.retries, serial_report.retry.retries);
    EXPECT_EQ(report.retry.faults, serial_report.retry.faults);
    EXPECT_EQ(report.retry.simulated_backoff_s,
              serial_report.retry.simulated_backoff_s);
    ASSERT_EQ(report.failures.size(), serial_report.failures.size());
    for (std::size_t i = 0; i < report.failures.size(); ++i) {
      EXPECT_EQ(report.failures[i], serial_report.failures[i]) << i;
    }

    ASSERT_EQ(serial.rows(), parallel.rows());
    EXPECT_EQ(serial.time_s, parallel.time_s);
    EXPECT_EQ(serial.energy_j, parallel.energy_j);
    EXPECT_EQ(serial.groups, parallel.groups);
    for (std::size_t g = 0; g < serial.group_default.size(); ++g) {
      EXPECT_EQ(serial.group_default[g], parallel.group_default[g]) << g;
    }
  }

  // End of the chain: identical final predictions.
  const Dataset parallel = faulty_dataset(8, nullptr);
  DomainSpecificModel ds_serial;
  ds_serial.train(serial);
  DomainSpecificModel ds_parallel;
  ds_parallel.train(parallel);
  const std::vector<double> features =
      CronosWorkload(cronos::GridDims{20, 8, 8}, 2).domain_features();
  const std::vector<double> freqs = {300.0, 700.0, 1100.0, 1597.0};
  const Prediction a = ds_serial.predict(features, freqs, 1312.0);
  const Prediction b = ds_parallel.predict(features, freqs, 1312.0);
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.norm_energy, b.norm_energy);
}

TEST(FaultSweepTest, ZeroRateReproducesTheUnfaultedSweepExactly) {
  SweepReport report;
  const Dataset zero_rate = faulty_dataset(4, &report, /*rate=*/0.0);
  EXPECT_EQ(report.failed_points, 0u);
  EXPECT_EQ(report.retry.faults, 0u);
  EXPECT_EQ(report.retry.attempts,
            report.grid_points * 2u /* repetitions */ +
                report.grid_points - test_workloads().size() /* pins */);

  // Same device/seed with NO injector configured at all.
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig{0.01, 0.01}, 0x3);
  synergy::Device device(sim_dev);
  const auto workloads = test_workloads();
  ThreadPool pool(4);
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = 2;
  options.pool = &pool;
  options.cache = &cache;
  const Dataset plain =
      build_dataset(device, workloads, options, strided_freqs(device, 16));

  ASSERT_EQ(zero_rate.rows(), plain.rows());
  EXPECT_EQ(zero_rate.time_s, plain.time_s);
  EXPECT_EQ(zero_rate.energy_j, plain.energy_j);
  EXPECT_EQ(zero_rate.groups, plain.groups);
}

} // namespace
} // namespace dsem::core
