// The modeling workflow on the AMD device, where there is no fixed default
// clock: the baseline of speedup / normalized energy is the auto
// performance level's pick (paper §3.1, Fig. 5).
#include <gtest/gtest.h>

#include "common/statistics.hpp"
#include "core/evaluation.hpp"

namespace dsem::core {
namespace {

class Mi100WorkflowTest : public ::testing::Test {
protected:
  Mi100WorkflowTest()
      : sim_dev_(sim::mi100(), sim::NoiseConfig{0.01, 0.01}, 0xA3D),
        device_(sim_dev_) {
    for (int n : {10, 20, 30, 40, 60, 80, 120, 160}) {
      const int side = std::max(4, n * 2 / 5);
      workloads_.push_back(std::make_unique<CronosWorkload>(
          cronos::GridDims{n, side, side}, 2));
    }
    const auto all = device_.supported_frequencies();
    for (std::size_t i = 0; i < all.size(); i += 6) {
      freqs_.push_back(all[i]);
    }
    dataset_ = build_dataset(device_, workloads_, 2, freqs_);
  }

  sim::Device sim_dev_;
  synergy::Device device_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  std::vector<double> freqs_;
  Dataset dataset_;
};

TEST_F(Mi100WorkflowTest, BaselineIsAutoGovernorFrequency) {
  for (double f : dataset_.default_freq_mhz) {
    EXPECT_NEAR(f, 1502.0, 10.0);
  }
}

TEST_F(Mi100WorkflowTest, TruthSpeedupsNeverExceedAuto) {
  for (std::size_t g = 0; g < dataset_.num_groups(); ++g) {
    const TruthCurves truth = truth_curves(dataset_, static_cast<int>(g));
    for (double s : truth.speedup) {
      EXPECT_LE(s, 1.0 + 0.05); // noise margin
    }
  }
}

TEST_F(Mi100WorkflowTest, DsModelAccurateOnHeldOutInput) {
  const int g = dataset_.group_of("80x32x32");
  std::vector<std::size_t> train_rows;
  for (std::size_t i = 0; i < dataset_.rows(); ++i) {
    if (dataset_.groups[i] != g) {
      train_rows.push_back(i);
    }
  }
  DomainSpecificModel model;
  model.train(dataset_, train_rows);
  const TruthCurves truth = truth_curves(dataset_, g);
  const auto pred = model.predict(
      workloads_[static_cast<std::size_t>(g)]->domain_features(),
      truth.freqs_mhz, dataset_.default_freq_mhz[static_cast<std::size_t>(g)]);
  EXPECT_LT(stats::mape(truth.norm_energy, pred.norm_energy), 0.06);
  // The MI100 baseline is the max clock, so the speedup curve spans down
  // to ~0.13 at 200 MHz — relative errors at the tiny low-frequency truth
  // values dominate the MAPE; a looser band still rules out regressions.
  EXPECT_LT(stats::mape(truth.speedup, pred.speedup), 0.18);
}

TEST_F(Mi100WorkflowTest, PredictedParetoRecoversDeepSavings) {
  DomainSpecificModel model;
  model.train(dataset_);
  const auto all = device_.supported_frequencies();
  const auto pred = model.predict(workloads_.back()->domain_features(), all,
                                  device_.default_frequency());
  const auto front = pred.pareto_indices();
  ASSERT_FALSE(front.empty());
  // The MI100 characterization offers ~25-30% savings; the predicted
  // Pareto set must expose a config with at least 15% predicted saving.
  double best = 0.0;
  for (std::size_t i : front) {
    best = std::max(best, 1.0 - pred.norm_energy[i]);
  }
  EXPECT_GT(best, 0.15);
}

} // namespace
} // namespace dsem::core
