#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::core {
namespace {

TEST(ParetoFront, SinglePointIsTheFront) {
  const std::vector<double> s = {1.0};
  const std::vector<double> e = {1.0};
  EXPECT_EQ(pareto_front(s, e), (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, DominatedPointExcluded) {
  // Point 1 dominates point 0 (faster AND cheaper).
  const std::vector<double> s = {1.0, 1.2};
  const std::vector<double> e = {1.0, 0.9};
  EXPECT_EQ(pareto_front(s, e), (std::vector<std::size_t>{1}));
}

TEST(ParetoFront, TradeoffPointsAllKept) {
  const std::vector<double> s = {0.8, 1.0, 1.2};
  const std::vector<double> e = {0.7, 0.9, 1.3};
  const auto front = pareto_front(s, e);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, ReturnedSortedByAscendingSpeedup) {
  const std::vector<double> s = {1.2, 0.8, 1.0};
  const std::vector<double> e = {1.3, 0.7, 0.9};
  const auto front = pareto_front(s, e);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_LT(s[front[0]], s[front[1]]);
  EXPECT_LT(s[front[1]], s[front[2]]);
}

TEST(ParetoFront, EqualSpeedupKeepsCheapest) {
  const std::vector<double> s = {1.0, 1.0, 1.0};
  const std::vector<double> e = {0.9, 0.8, 1.0};
  EXPECT_EQ(pareto_front(s, e), (std::vector<std::size_t>{1}));
}

TEST(ParetoFront, FrontIsMutuallyNonDominating) {
  // Pseudo-random cloud; verify the front property directly.
  std::vector<double> s;
  std::vector<double> e;
  for (int i = 0; i < 100; ++i) {
    s.push_back(0.5 + 0.01 * ((i * 37) % 97));
    e.push_back(0.6 + 0.013 * ((i * 53) % 89));
  }
  const auto front = pareto_front(s, e);
  ASSERT_FALSE(front.empty());
  std::vector<double> fs;
  std::vector<double> fe;
  for (std::size_t idx : front) {
    fs.push_back(s[idx]);
    fe.push_back(e[idx]);
  }
  for (std::size_t idx : front) {
    EXPECT_FALSE(is_dominated(s[idx], e[idx], fs, fe));
  }
  // And everything off the front is dominated by it.
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::find(front.begin(), front.end(), i) == front.end()) {
      EXPECT_TRUE(is_dominated(s[i], e[i], fs, fe)) << "point " << i;
    }
  }
}

TEST(ParetoFront, RejectsEmptyAndMismatched) {
  EXPECT_THROW(pareto_front({}, {}), contract_error);
  const std::vector<double> s = {1.0};
  const std::vector<double> e = {1.0, 2.0};
  EXPECT_THROW(pareto_front(s, e), contract_error);
}

TEST(IsDominated, EqualPointNotDominated) {
  const std::vector<double> fs = {1.0};
  const std::vector<double> fe = {1.0};
  EXPECT_FALSE(is_dominated(1.0, 1.0, fs, fe));
  EXPECT_TRUE(is_dominated(0.9, 1.0, fs, fe));
  EXPECT_TRUE(is_dominated(1.0, 1.1, fs, fe));
  EXPECT_FALSE(is_dominated(1.1, 0.9, fs, fe));
}

TEST(ComparePareto, ExactMatchesCounted) {
  const std::vector<double> s = {0.8, 1.0, 1.2, 1.1};
  const std::vector<double> e = {0.7, 0.9, 1.3, 1.4};
  const auto truth = pareto_front(s, e); // {0, 1, 2}
  const std::vector<std::size_t> predicted = {0, 2, 3};
  const auto cmp = compare_pareto(s, e, truth, predicted);
  EXPECT_EQ(cmp.true_size, 3u);
  EXPECT_EQ(cmp.predicted_size, 3u);
  EXPECT_EQ(cmp.exact_matches, 2u);
  EXPECT_GT(cmp.generational_distance, 0.0);
}

TEST(ComparePareto, PerfectPredictionHasZeroDistance) {
  const std::vector<double> s = {0.8, 1.0, 1.2};
  const std::vector<double> e = {0.7, 0.9, 1.3};
  const auto truth = pareto_front(s, e);
  const auto cmp = compare_pareto(s, e, truth, truth);
  EXPECT_EQ(cmp.exact_matches, truth.size());
  EXPECT_DOUBLE_EQ(cmp.generational_distance, 0.0);
}

TEST(ComparePareto, EmptyPredictionIsSafe) {
  const std::vector<double> s = {1.0};
  const std::vector<double> e = {1.0};
  const auto truth = pareto_front(s, e);
  const auto cmp = compare_pareto(s, e, truth, {});
  EXPECT_EQ(cmp.predicted_size, 0u);
  EXPECT_EQ(cmp.exact_matches, 0u);
}

TEST(ComparePareto, GenerationalDistanceIsRangeNormalized) {
  // Hand-computed: truth front = {(1.0, 1.0), (2.0, 3.0)} (point 2 is
  // dominated by point 1), so s_range = 1 and e_range = 2. Predicted
  // point 2 = (1.5, 3.5):
  //   to point 0: sqrt((0.5/1)^2 + (2.5/2)^2) = sqrt(1.8125)
  //   to point 1: sqrt((0.5/1)^2 + (0.5/2)^2) = sqrt(0.3125)  <- nearest
  const std::vector<double> s = {1.0, 2.0, 1.5};
  const std::vector<double> e = {1.0, 3.0, 3.5};
  const auto truth = pareto_front(s, e);
  ASSERT_EQ(truth, (std::vector<std::size_t>{0, 1}));
  const std::vector<std::size_t> predicted = {2};
  const auto cmp = compare_pareto(s, e, truth, predicted);
  EXPECT_DOUBLE_EQ(cmp.generational_distance, 0.55901699437494745);
}

TEST(ComparePareto, DistanceInvariantUnderObjectiveRescaling) {
  // The normalization's point: stretching one objective's unit must not
  // change the metric. Energy scaled 10x gives the same distance.
  const std::vector<double> s = {1.0, 2.0, 1.5};
  const std::vector<double> e1 = {1.0, 3.0, 3.5};
  std::vector<double> e10;
  for (double v : e1) {
    e10.push_back(10.0 * v);
  }
  const auto truth = pareto_front(s, e1);
  const std::vector<std::size_t> predicted = {2};
  const auto a = compare_pareto(s, e1, truth, predicted);
  const auto b = compare_pareto(s, e10, truth, predicted);
  EXPECT_DOUBLE_EQ(a.generational_distance, b.generational_distance);
}

TEST(ComparePareto, DegenerateTrueFrontRangeFallsBackToRawDifferences) {
  // Single-point true front: both ranges are 0 and fall back to 1, i.e.
  // the raw Euclidean distance.
  const std::vector<double> s = {1.0, 1.3};
  const std::vector<double> e = {1.0, 1.4};
  const std::vector<std::size_t> truth = {0};
  const std::vector<std::size_t> predicted = {1};
  const auto cmp = compare_pareto(s, e, truth, predicted);
  EXPECT_DOUBLE_EQ(cmp.generational_distance, 0.5);
}

TEST(ComparePareto, EmptyTrueFrontWithPredictionsThrows) {
  const std::vector<double> s = {1.0};
  const std::vector<double> e = {1.0};
  const std::vector<std::size_t> predicted = {0};
  EXPECT_THROW(compare_pareto(s, e, {}, predicted), contract_error);
}

TEST(ComparePareto, OutOfRangeIndexThrows) {
  const std::vector<double> s = {1.0};
  const std::vector<double> e = {1.0};
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW(compare_pareto(s, e, {}, bad), contract_error);
}

} // namespace
} // namespace dsem::core
