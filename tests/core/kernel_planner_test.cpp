#include "core/kernel_planner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsem::core {
namespace {

class KernelPlannerTest : public ::testing::Test {
protected:
  KernelPlannerTest() : sim_dev_(sim::v100(), sim::NoiseConfig::none()),
                        device_(sim_dev_) {}
  sim::Device sim_dev_;
  synergy::Device device_;
};

TEST_F(KernelPlannerTest, PlanCoversEveryKernelOfTheWorkload) {
  const CronosWorkload w({40, 16, 16}, 5);
  const KernelPlan plan = plan_kernel_frequencies(device_, w, 0.05, 1);
  EXPECT_EQ(plan.freq_by_kernel.size(), 4u);
  EXPECT_TRUE(plan.freq_by_kernel.contains("cronos::computeChanges"));
  EXPECT_TRUE(plan.freq_by_kernel.contains("cronos::cflReduce"));
  EXPECT_TRUE(plan.freq_by_kernel.contains("cronos::integrateTime"));
  EXPECT_TRUE(plan.freq_by_kernel.contains("cronos::applyBoundary"));
}

TEST_F(KernelPlannerTest, PlannedFrequenciesAreSupported) {
  const CronosWorkload w({40, 16, 16}, 5);
  const KernelPlan plan = plan_kernel_frequencies(device_, w, 0.10, 1);
  for (const auto& [name, freq] : plan.freq_by_kernel) {
    EXPECT_TRUE(device_.spec().core_frequencies.contains(
        device_.spec().core_frequencies.snap(freq)))
        << name;
  }
}

TEST_F(KernelPlannerTest, MemoryBoundKernelDownclocked) {
  // computeChanges on a large grid is memory-bound: its planned frequency
  // must sit well below the default even at a tight slowdown budget.
  const CronosWorkload w({160, 64, 64}, 5);
  const KernelPlan plan = plan_kernel_frequencies(device_, w, 0.02, 1);
  EXPECT_LT(plan.freq_by_kernel.at("cronos::computeChanges"), 1100.0);
  EXPECT_GT(plan.predicted_saving.at("cronos::computeChanges"), 0.05);
}

TEST_F(KernelPlannerTest, ZeroBudgetKeepsDefault) {
  // With no slowdown allowed, a compute-bound kernel cannot move at all.
  const LigenWorkload w(10000, 89, 20);
  const KernelPlan plan = plan_kernel_frequencies(device_, w, 0.0, 1);
  EXPECT_NEAR(plan.freq_by_kernel.at("ligen::dock"),
              device_.default_frequency(), 30.0);
}

TEST_F(KernelPlannerTest, PlannedRunSavesEnergyWithinBudget) {
  const CronosWorkload w({160, 64, 64}, 5);
  const double budget = 0.05;
  const KernelPlan plan = plan_kernel_frequencies(device_, w, budget, 1);
  const Measurement def = measure_default(device_, w, 1);
  const Measurement planned = measure_with_plan(device_, w, plan, 1);
  EXPECT_LT(planned.energy_j, def.energy_j);
  // Whole-run slowdown stays near the per-kernel budget (plus switch
  // penalties, which are bounded by launches x switch overhead).
  EXPECT_LT(planned.time_s, def.time_s * (1.0 + budget + 0.05));
}

TEST_F(KernelPlannerTest, PerKernelBeatsOrMatchesSingleFrequency) {
  const CronosWorkload w({160, 64, 64}, 5);
  const double budget = 0.15;
  const KernelPlan plan = plan_kernel_frequencies(device_, w, budget, 1);
  const Measurement planned = measure_with_plan(device_, w, plan, 1);

  const Measurement def = measure_default(device_, w, 1);
  double best_single = def.energy_j;
  for (double f : device_.supported_frequencies()) {
    const Measurement m = measure(device_, w, f, 1);
    if (1.0 - def.time_s / m.time_s <= budget) {
      best_single = std::min(best_single, m.energy_j);
    }
  }
  EXPECT_LT(planned.energy_j, best_single * 1.03);
}

TEST_F(KernelPlannerTest, ValidatesArguments) {
  const CronosWorkload w({10, 4, 4}, 2);
  EXPECT_THROW(plan_kernel_frequencies(device_, w, -0.1, 1),
               contract_error);
  EXPECT_THROW(measure_with_plan(device_, w, KernelPlan{}, 1),
               contract_error);
}

TEST_F(KernelPlannerTest, FrequencySwitchPenaltyCharged) {
  // Two identical runs, one alternating frequencies per kernel: the
  // alternating one must be slower by the accumulated switch cost.
  const CronosWorkload w({20, 8, 8}, 5);
  synergy::Queue steady(device_, synergy::ExecMode::kSimOnly);
  steady.set_target_frequency(1000.0);
  w.submit(steady);

  device_.reset_frequency();
  synergy::Queue alternating(device_, synergy::ExecMode::kSimOnly);
  alternating.set_kernel_frequency_plan(
      {{"cronos::computeChanges", 1000.0},
       {"cronos::cflReduce", 1005.0},
       {"cronos::integrateTime", 1000.0},
       {"cronos::applyBoundary", 1005.0}});
  w.submit(alternating);
  // 1000 and 1005 snap to adjacent schedule entries -> real switches.
  EXPECT_GT(alternating.total_time_s(), steady.total_time_s());
}

} // namespace
} // namespace dsem::core
