// Golden-file regression tests pinning the Pareto-optimal frequency sets
// of the noise-free V100 characterization for one LiGen and one Cronos
// workload. These sets are the end product the paper's models are judged
// on (Fig. 14); any change to the execution model, power model, sweep
// engine, or Pareto logic that moves them must be a conscious decision —
// update tests/data/*.txt with the printed values if it is.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/characterization.hpp"

namespace dsem::core {
namespace {

std::vector<double> load_golden(const std::string& filename) {
  const std::string path = std::string(DSEM_TEST_DATA_DIR) + "/" + filename;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::vector<double> out;
  double value = 0.0;
  while (in >> value) {
    out.push_back(value);
  }
  return out;
}

std::vector<double> pareto_freqs(const Characterization& c) {
  std::vector<double> out;
  for (const auto& p : c.points) {
    if (p.pareto) {
      out.push_back(p.freq_mhz);
    }
  }
  return out;
}

std::string render(const std::vector<double>& freqs) {
  std::ostringstream os;
  os.precision(17);
  for (double f : freqs) {
    os << f << "\n";
  }
  return os.str();
}

void expect_matches_golden(const std::string& filename,
                           const std::vector<double>& actual) {
  const std::vector<double> golden = load_golden(filename);
  EXPECT_EQ(golden.size(), actual.size())
      << "Pareto set size changed; actual set:\n" << render(actual);
  for (std::size_t i = 0; i < std::min(golden.size(), actual.size()); ++i) {
    EXPECT_NEAR(actual[i], golden[i], 1e-6)
        << "index " << i << "; full actual set:\n" << render(actual);
  }
}

Characterization characterize_noise_free(const Workload& workload) {
  sim::Device sim_dev(sim::v100(), sim::NoiseConfig::none());
  synergy::Device device(sim_dev);
  // Noise-free: one repetition is exact; the full 196-frequency schedule.
  return characterize(device, workload, /*repetitions=*/1);
}

TEST(GoldenPareto, V100LigenScreeningFrequencySet) {
  const LigenWorkload workload(10000, 89, 20);
  expect_matches_golden("golden_pareto_v100_ligen_10000x89x20.txt",
                        pareto_freqs(characterize_noise_free(workload)));
}

TEST(GoldenPareto, V100CronosMhdFrequencySet) {
  const CronosWorkload workload(cronos::GridDims{160, 64, 64}, 2);
  expect_matches_golden("golden_pareto_v100_cronos_160x64x64.txt",
                        pareto_freqs(characterize_noise_free(workload)));
}

} // namespace
} // namespace dsem::core
