// Property tests for the fused static+dynamic feature extraction behind
// the hybrid model family (core/kernel_features.hpp): extraction is a
// pure function of its inputs, bit-identical under any permutation of the
// kernel launch list, finite for every workload in the LiGen/Cronos
// grids, and rejects malformed launch lists with contract errors.
#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/kernel_features.hpp"
#include "core/workload.hpp"
#include "sim/device_spec.hpp"

namespace {

using namespace dsem;

double profiling_freq(const sim::DeviceSpec& spec) {
  return spec.has_fixed_default() ? spec.default_core_frequency_mhz
                                  : spec.auto_frequency_mhz;
}

core::KernelLaunch random_launch(Rng& rng, int id) {
  core::KernelLaunch launch;
  launch.profile.name = "kernel_" + std::to_string(id);
  launch.profile.int_add = rng.uniform(0.0, 64.0);
  launch.profile.int_mul = rng.uniform(0.0, 32.0);
  launch.profile.int_div = rng.uniform(0.0, 4.0);
  launch.profile.int_bw = rng.uniform(0.0, 16.0);
  launch.profile.float_add = rng.uniform(0.0, 256.0);
  launch.profile.float_mul = rng.uniform(0.0, 256.0);
  launch.profile.float_div = rng.uniform(0.0, 8.0);
  launch.profile.special_fn = rng.uniform(0.0, 12.0);
  launch.profile.global_bytes = rng.uniform(0.0, 2048.0);
  launch.profile.local_bytes = rng.uniform(0.0, 512.0);
  launch.profile.intra_item_parallelism = rng.uniform(1.0, 64.0);
  launch.work_items = 1 + rng.uniform_int(2'000'000);
  launch.launches = 1.0 + static_cast<double>(rng.uniform_int(400));
  return launch;
}

std::vector<core::KernelLaunch> random_launch_list(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 1 + rng.uniform_int(12);
  std::vector<core::KernelLaunch> launches;
  for (std::size_t i = 0; i < n; ++i) {
    launches.push_back(random_launch(rng, static_cast<int>(i)));
  }
  return launches;
}

std::vector<std::unique_ptr<core::Workload>> grid_workloads() {
  std::vector<std::unique_ptr<core::Workload>> out;
  for (const int n : {10, 20, 30, 40, 60, 80, 120, 160}) {
    const int side = std::max(4, n * 2 / 5);
    out.push_back(std::make_unique<core::CronosWorkload>(
        cronos::GridDims{n, side, side}, 10));
  }
  for (const int ligands : {2, 16, 128, 256, 512, 1024, 4096, 10000}) {
    for (const int atoms : {31, 63, 89}) {
      for (const int frags : {4, 8, 20}) {
        out.push_back(
            std::make_unique<core::LigenWorkload>(ligands, atoms, frags));
      }
    }
  }
  return out;
}

TEST(KernelFeaturesTest, ExtractionIsPureAcrossFiftySeeds) {
  const sim::DeviceSpec spec = sim::v100();
  const double freq = profiling_freq(spec);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    // Two independently constructed copies of the same logical input must
    // yield the same vector, bit for bit.
    const std::vector<double> a =
        core::hybrid_feature_block(random_launch_list(seed), spec, freq);
    const std::vector<double> b =
        core::hybrid_feature_block(random_launch_list(seed), spec, freq);
    ASSERT_EQ(a.size(), core::hybrid_feature_names().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "seed " << seed << " feature " << i;
    }
  }
}

TEST(KernelFeaturesTest, BlockIsInvariantUnderLaunchPermutation) {
  const sim::DeviceSpec spec = sim::v100();
  const double freq = profiling_freq(spec);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::vector<core::KernelLaunch> launches = random_launch_list(seed);
    const std::vector<double> reference =
        core::hybrid_feature_block(launches, spec, freq);

    // A rotation plus a seeded Fisher-Yates shuffle: two unrelated
    // permutations per seed, both must reproduce the reference bits.
    std::vector<core::KernelLaunch> rotated = launches;
    std::rotate(rotated.begin(), rotated.begin() + rotated.size() / 2,
                rotated.end());
    std::vector<core::KernelLaunch> shuffled = launches;
    Rng rng(derive_seed(seed, 17));
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.uniform_int(i)]);
    }
    for (const auto& permuted : {rotated, shuffled}) {
      const std::vector<double> block =
          core::hybrid_feature_block(permuted, spec, freq);
      ASSERT_EQ(block.size(), reference.size()) << "seed " << seed;
      for (std::size_t i = 0; i < block.size(); ++i) {
        EXPECT_EQ(block[i], reference[i]) << "seed " << seed << " feature "
                                          << i;
      }
    }
  }
}

TEST(KernelFeaturesTest, EveryFeatureIsFiniteAcrossTheWorkloadGrids) {
  const auto workloads = grid_workloads();
  for (const sim::DeviceSpec& spec :
       {sim::v100(), sim::mi100(), sim::intel_max1100()}) {
    const double freq = profiling_freq(spec);
    for (const auto& workload : workloads) {
      const std::vector<double> fused =
          core::fused_feature_vector(*workload, spec, freq);
      ASSERT_EQ(fused.size(), core::fused_feature_names(*workload).size())
          << workload->name() << " on " << spec.name;
      for (std::size_t i = 0; i < fused.size(); ++i) {
        EXPECT_TRUE(std::isfinite(fused[i]))
            << workload->name() << " on " << spec.name << " feature " << i;
      }
    }
  }
}

TEST(KernelFeaturesTest, FusedVectorPrefixesDomainFeatures) {
  const sim::DeviceSpec spec = sim::v100();
  const core::CronosWorkload workload({40, 16, 16}, 10);
  const std::vector<double> domain = workload.domain_features();
  const std::vector<double> fused =
      core::fused_feature_vector(workload, spec, profiling_freq(spec));
  ASSERT_GT(fused.size(), domain.size());
  for (std::size_t i = 0; i < domain.size(); ++i) {
    EXPECT_EQ(fused[i], domain[i]) << "feature " << i;
  }
}

TEST(KernelFeaturesTest, MalformedLaunchListsAreRejected) {
  const sim::DeviceSpec spec = sim::v100();
  const double freq = profiling_freq(spec);
  EXPECT_THROW(core::hybrid_feature_block({}, spec, freq), contract_error);

  std::vector<core::KernelLaunch> launches = random_launch_list(1);
  EXPECT_THROW(core::hybrid_feature_block(launches, spec, 0.0),
               contract_error);
  EXPECT_THROW(core::hybrid_feature_block(launches, spec, -100.0),
               contract_error);

  auto no_items = launches;
  no_items.front().work_items = 0;
  EXPECT_THROW(core::hybrid_feature_block(no_items, spec, freq),
               contract_error);

  auto no_launches = launches;
  no_launches.front().launches = 0.0;
  EXPECT_THROW(core::hybrid_feature_block(no_launches, spec, freq),
               contract_error);

  auto bad_profile = launches;
  bad_profile.front().profile.float_add = -1.0;
  EXPECT_THROW(core::hybrid_feature_block(bad_profile, spec, freq),
               contract_error);
}

} // namespace
