#include "microbench/suite.hpp"

#include <array>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/kernel_ir.hpp"

namespace dsem::microbench {

namespace {

/// Every suite kernel is authored as kernel IR and passed through the
/// static analyzer — the same extraction path Fan et al. run on PTX.
MicroBenchmark finish(const sim::KernelIr& ir, std::size_t work_items) {
  MicroBenchmark mb;
  mb.profile = sim::analyze(ir);
  mb.work_items = work_items;
  return mb;
}

} // namespace

std::vector<MicroBenchmark> make_suite() {
  std::vector<MicroBenchmark> suite;
  suite.reserve(kSuiteSize);

  // Workload sizes cycle through under-, at-, and over-subscription so the
  // corpus also spans utilization regimes.
  constexpr std::array<std::size_t, 4> kSizes = {4096, 65536, 524288, 2097152};
  const auto size_for = [&](std::size_t i) { return kSizes[i % kSizes.size()]; };

  // 1) Pure-feature intensity sweeps: one family per arithmetic feature of
  //    Table 1, five intensities each (7 x 5 = 35 kernels). A small memory
  //    stream keeps every kernel physically plausible.
  constexpr std::array<double, 5> kIntensities = {32, 96, 256, 768, 2048};
  const auto arithmetic_family = [&](const std::string& name, sim::Op op) {
    for (std::size_t i = 0; i < kIntensities.size(); ++i) {
      sim::KernelIr ir("ub::" + name + "_" + std::to_string(i));
      ir.emit(op, kIntensities[i]);
      ir.load_global(16.0);
      suite.push_back(finish(ir, size_for(suite.size())));
    }
  };
  arithmetic_family("int_add", sim::Op::kIAdd);
  arithmetic_family("int_mul", sim::Op::kIMul);
  arithmetic_family("int_div", sim::Op::kIDiv);
  arithmetic_family("int_bw", sim::Op::kXor);
  arithmetic_family("float_add", sim::Op::kFAdd);
  arithmetic_family("float_mul", sim::Op::kFMul);
  arithmetic_family("float_div", sim::Op::kFDiv);

  // 2) Special-function sweep (5 kernels).
  for (std::size_t i = 0; i < kIntensities.size(); ++i) {
    sim::KernelIr ir("ub::sf_" + std::to_string(i));
    ir.special(kIntensities[i] / 4.0);
    ir.load_global(16.0);
    suite.push_back(finish(ir, size_for(suite.size())));
  }

  // 3) Global-memory streaming sweep (8 kernels): copy/scale-style kernels
  //    with rising bytes per item and token arithmetic.
  for (int i = 0; i < 8; ++i) {
    sim::KernelIr ir("ub::stream_" + std::to_string(i));
    ir.load_global(32.0 * static_cast<double>(1 << i));
    ir.fadd(8.0);
    ir.iadd(4.0);
    suite.push_back(finish(ir, size_for(suite.size())));
  }

  // 4) Shared/local-memory-heavy kernels (6).
  for (int i = 0; i < 6; ++i) {
    sim::KernelIr ir("ub::local_" + std::to_string(i));
    ir.load_local(64.0 * static_cast<double>(1 << i));
    ir.fadd(32.0);
    ir.fmul(32.0);
    ir.load_global(32.0);
    suite.push_back(finish(ir, size_for(suite.size())));
  }

  // 5) Roofline-ratio sweep (16): fixed memory traffic, geometrically
  //    rising FMA work — walks the kernel from memory- to compute-bound.
  for (int i = 0; i < 16; ++i) {
    sim::KernelIr ir("ub::roofline_" + std::to_string(i));
    const double flops = 8.0 * std::pow(1.8, i);
    ir.fadd(flops * 0.5);
    ir.fmul(flops * 0.5);
    ir.load_global(256.0);
    suite.push_back(finish(ir, size_for(suite.size())));
  }

  // 6) Deterministic random mixtures fill the corpus to 106 kernels,
  //    covering feature-interaction corners the sweeps miss.
  Rng rng(0xACDC);
  while (suite.size() < kSuiteSize) {
    sim::KernelIr ir("ub::mix_" + std::to_string(suite.size()));
    ir.iadd(rng.uniform(0.0, 256.0));
    ir.imul(rng.uniform(0.0, 128.0));
    ir.idiv(rng.uniform(0.0, 8.0));
    ir.bitwise(rng.uniform(0.0, 64.0));
    ir.fadd(rng.uniform(0.0, 512.0));
    ir.fmul(rng.uniform(0.0, 512.0));
    ir.fdiv(rng.uniform(0.0, 16.0));
    ir.special(rng.uniform(0.0, 32.0));
    ir.load_global(std::max(1e-9, rng.uniform(8.0, 2048.0)));
    const double local = rng.uniform(0.0, 256.0);
    if (local > 0.0) {
      ir.load_local(local);
    }
    suite.push_back(finish(ir, size_for(suite.size())));
  }

  DSEM_ENSURE(suite.size() == kSuiteSize, "suite must have 106 kernels");
  for (const MicroBenchmark& mb : suite) {
    sim::validate(mb.profile);
    DSEM_ENSURE(mb.work_items > 0, "micro-benchmark with no work");
  }
  return suite;
}

} // namespace dsem::microbench
