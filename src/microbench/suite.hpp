// Synthetic micro-benchmark suite for general-purpose model training.
//
// Fan et al. (the paper's general-purpose baseline) train on 106
// carefully designed micro-benchmarks, each stressing one or more of the
// static code features of Table 1. This suite regenerates that corpus:
// per-feature intensity sweeps, memory-streaming kernels, roofline-ratio
// sweeps, and deterministic random mixtures — 106 kernels total, each
// with its own workload size. Crucially, these kernels carry *static*
// features only; nothing in the corpus encodes application input size,
// which is the blind spot the domain-specific models fix.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/kernel_profile.hpp"

namespace dsem::microbench {

struct MicroBenchmark {
  sim::KernelProfile profile;
  std::size_t work_items = 0;
};

/// Number of kernels in the canonical suite.
inline constexpr std::size_t kSuiteSize = 106;

/// The deterministic 106-kernel suite.
std::vector<MicroBenchmark> make_suite();

} // namespace dsem::microbench
