// Dock & score (the paper's Algorithm 2).
//
// dock: multi-restart pose initialization, alignment into the pocket, and
// num_iterations sweeps of per-fragment rotational optimization about each
// rotamer axis; poses are evaluated, sorted, and clipped to max_num_poses.
// score: the clipped poses get the refined interaction score (steric +
// electrostatic + intra-ligand clash) and the best value is returned.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ligen/molecule.hpp"
#include "ligen/protein.hpp"

namespace dsem::ligen {

struct DockingParams {
  int num_restart = 8;     ///< independent starting orientations
  int num_iterations = 3;  ///< optimization sweeps over all fragments
  int max_num_poses = 4;   ///< poses kept after clipping for refined scoring
  int angle_steps = 12;    ///< rotational samples per fragment optimization
};

/// Throws dsem::contract_error on nonsensical parameters.
void validate(const DockingParams& params);

struct Pose {
  std::vector<Vec3> positions;
  double score = -std::numeric_limits<double>::infinity(); ///< higher = better
};

class DockingEngine {
public:
  DockingEngine(const Protein& protein, DockingParams params = {});

  const DockingParams& params() const noexcept { return params_; }
  const Protein& protein() const noexcept { return *protein_; }

  /// Full Algorithm 2: returns the best refined score for this ligand.
  double dock_and_score(const Ligand& ligand, std::uint64_t seed) const;

  /// The dock task alone: clipped, evaluated poses (sorted best-first).
  std::vector<Pose> dock(const Ligand& ligand, std::uint64_t seed) const;

  /// The score task alone: best refined score among the given poses.
  double score(const Ligand& ligand, std::span<const Pose> poses) const;

  // --- Algorithm 2 building blocks (public for unit testing) -------------

  /// Deterministic random rigid transform of the ligand (restart i).
  Pose initialize_pose(const Ligand& ligand, int restart,
                       std::uint64_t seed) const;

  /// Translate the pose centroid into the pocket and align its principal
  /// axis with the pocket axis.
  void align(Pose& pose) const;

  /// Rotate the rotamer's moving fragment about its bond axis to the
  /// steric-best of angle_steps samples.
  void optimize_fragment(Pose& pose, const Ligand& ligand,
                         const Rotamer& rotamer) const;

  /// Fast pose quality: negated mean steric potential over atoms.
  double evaluate(const Pose& pose) const;

  /// Refined interaction score: steric + electrostatic (charge-weighted)
  /// + intra-ligand clash penalty. Higher = stronger predicted binding.
  double compute_score(const Pose& pose, const Ligand& ligand) const;

private:
  const Protein* protein_; // non-owning; protein outlives the engine
  DockingParams params_;
};

} // namespace dsem::ligen
