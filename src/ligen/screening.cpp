#include "ligen/screening.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ligen/kernels.hpp"

namespace dsem::ligen {

std::vector<std::size_t> ScreeningResult::ranking() const {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

VirtualScreen::VirtualScreen(const Protein& protein, DockingParams params,
                             std::size_t batch_size)
    : engine_(protein, params), batch_size_(batch_size) {
  DSEM_ENSURE(batch_size >= 1, "batch_size must be >= 1");
}

ScreeningResult VirtualScreen::run(std::span<const Ligand> library,
                                   synergy::Queue& queue,
                                   std::uint64_t seed) const {
  DSEM_ENSURE(!library.empty(), "screening an empty library");
  ScreeningResult result;
  result.scores.assign(library.size(),
                       std::numeric_limits<double>::quiet_NaN());

  // Per-ligand pose buffers shared between a batch's dock and score
  // kernels; indices are disjoint across parallel tasks (no data race).
  std::vector<std::vector<Pose>> poses(library.size());

  for (std::size_t begin = 0; begin < library.size(); begin += batch_size_) {
    const std::size_t end = std::min(library.size(), begin + batch_size_);
    const std::size_t count = end - begin;

    // Batch kernels are characterized by the batch's (identical by
    // construction) ligand structure; mixed batches use the first ligand.
    const int atoms = library[begin].num_atoms();
    const int frags = library[begin].num_fragments();

    synergy::KernelLaunch dock_launch;
    dock_launch.profile = dock_profile(atoms, frags, engine_.params());
    dock_launch.work_items = count;
    dock_launch.host_impl = [this, &library, &poses, begin, end, seed] {
      parallel_for(begin, end, [&](std::size_t i) {
        poses[i] = engine_.dock(library[i], seed + i);
      });
    };
    queue.submit(dock_launch);

    synergy::KernelLaunch score_launch;
    score_launch.profile = score_profile(atoms, engine_.params());
    score_launch.work_items = count;
    score_launch.host_impl = [this, &library, &poses, &result, begin, end] {
      parallel_for(begin, end, [&](std::size_t i) {
        result.scores[i] = engine_.score(library[i], poses[i]);
      });
    };
    queue.submit(score_launch);
  }
  return result;
}

ScreeningResult VirtualScreen::run_host(std::span<const Ligand> library,
                                        std::uint64_t seed) const {
  DSEM_ENSURE(!library.empty(), "screening an empty library");
  ScreeningResult result;
  result.scores.assign(library.size(), 0.0);
  parallel_for(0, library.size(), [&](std::size_t i) {
    result.scores[i] = engine_.dock_and_score(library[i], seed + i);
  });
  return result;
}

} // namespace dsem::ligen
