// Small 3-D geometry toolkit for the docking engine: vectors, Rodrigues
// rotations, and a 3x3 symmetric eigensolver (for principal-axis
// alignment of ligands into the pocket).
#pragma once

#include <array>
#include <cmath>
#include <span>

namespace dsem::ligen {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm_sq() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm_sq()); }

  Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{1.0, 0.0, 0.0};
  }
};

inline double distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).norm();
}

/// Rotate `p` about the axis through `origin` with unit direction `axis`
/// by `angle` radians (Rodrigues' formula).
inline Vec3 rotate_about_axis(const Vec3& p, const Vec3& origin,
                              const Vec3& axis, double angle) noexcept {
  const Vec3 v = p - origin;
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const Vec3 rotated =
      v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c));
  return origin + rotated;
}

/// 3x3 symmetric matrix in row-major order (only used for covariance).
using Mat3 = std::array<std::array<double, 3>, 3>;

/// Covariance matrix of a point cloud about its centroid.
Mat3 covariance(std::span<const Vec3> points);

/// Centroid of a point cloud.
Vec3 centroid(std::span<const Vec3> points);

struct EigenResult {
  std::array<double, 3> values;  ///< descending
  std::array<Vec3, 3> vectors;   ///< matching unit eigenvectors
};

/// Jacobi eigen-decomposition of a symmetric 3x3 matrix.
EigenResult eigen_symmetric(const Mat3& m);

/// Rotation taking unit vector `from` onto unit vector `to`, applied to `p`
/// about `origin` (rotation about the mutual perpendicular).
Vec3 rotate_align(const Vec3& p, const Vec3& origin, const Vec3& from,
                  const Vec3& to) noexcept;

} // namespace dsem::ligen
