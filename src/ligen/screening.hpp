// Batched virtual screening over a ligand library.
//
// Ligand-protein evaluations are independent (embarrassingly parallel);
// the screen packs the library into GPU batches, submitting one dock and
// one score kernel per batch through the synergy queue. In Validate mode
// the real docking runs on the host thread pool and the returned scores
// rank the library; in SimOnly mode only the device cost is accounted
// (frequency sweeps).
#pragma once

#include <span>

#include "ligen/dock.hpp"
#include "synergy/queue.hpp"

namespace dsem::ligen {

struct ScreeningResult {
  std::vector<double> scores; ///< one per ligand, NaN in SimOnly mode

  /// Indices of the ligands sorted by descending score.
  std::vector<std::size_t> ranking() const;
};

class VirtualScreen {
public:
  VirtualScreen(const Protein& protein, DockingParams params = {},
                std::size_t batch_size = 4096);

  const DockingEngine& engine() const noexcept { return engine_; }
  std::size_t batch_size() const noexcept { return batch_size_; }

  /// Screens the library through the queue (kernel submission per batch).
  ScreeningResult run(std::span<const Ligand> library, synergy::Queue& queue,
                      std::uint64_t seed = 0x11c3) const;

  /// Host-only screening (no device accounting): tests and ranking demos.
  ScreeningResult run_host(std::span<const Ligand> library,
                           std::uint64_t seed = 0x11c3) const;

private:
  DockingEngine engine_;
  std::size_t batch_size_;
};

} // namespace dsem::ligen
