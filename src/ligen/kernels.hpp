// Static kernel profiles (Table 1 features) of the LiGen dock and score
// kernels, parameterized by ligand structure.
//
// Per-work-item cost scales with atoms x fragments (the asymptotic
// complexity the paper cites from [14, 42]) — a work-item is one ligand.
// The operation constants model production LiGen's full scoring pipeline
// (bump grids, multi-term scoring, pose bookkeeping), which is richer than
// the host mini-app's reduced inner loop; DESIGN.md records this fidelity
// scaling. The resulting profile is strongly compute-bound, matching the
// paper's LiGen characterization.
#pragma once

#include "ligen/dock.hpp"
#include "sim/kernel_profile.hpp"
#include "synergy/queue.hpp"

namespace dsem::ligen {

/// Docking kernel: per-ligand cost of Algorithm 2 lines 2-12.
sim::KernelProfile dock_profile(int num_atoms, int num_fragments,
                                const DockingParams& params);

/// Refined scoring kernel: per-ligand cost of Algorithm 2 lines 13-18.
sim::KernelProfile score_profile(int num_atoms, const DockingParams& params);

/// Submits the batched dock+score kernel sequence of a screening campaign
/// over `num_ligands` ligands of identical (atoms, fragments) structure,
/// without host-side numerics — the fast path for frequency sweeps. A unit
/// test pins this sequence against VirtualScreen::run's.
void submit_screening_kernels(synergy::Queue& queue, std::size_t num_ligands,
                              int num_atoms, int num_fragments,
                              const DockingParams& params,
                              std::size_t batch_size = 4096);

} // namespace dsem::ligen
