#include "ligen/protein.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dsem::ligen {

PotentialGrid::PotentialGrid(Vec3 origin, double spacing, int nx, int ny,
                             int nz)
    : origin_(origin), spacing_(spacing), nx_(nx), ny_(ny), nz_(nz),
      values_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
              static_cast<std::size_t>(nz)) {
  DSEM_ENSURE(spacing > 0.0, "grid spacing must be positive");
  DSEM_ENSURE(nx >= 2 && ny >= 2 && nz >= 2, "grid needs >= 2 points per axis");
}

double& PotentialGrid::at(int ix, int iy, int iz) noexcept {
  return values_[(static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny_) +
                  static_cast<std::size_t>(iy)) *
                     static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(ix)];
}

double PotentialGrid::at(int ix, int iy, int iz) const noexcept {
  return values_[(static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny_) +
                  static_cast<std::size_t>(iy)) *
                     static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(ix)];
}

double PotentialGrid::sample(const Vec3& p) const noexcept {
  const double fx =
      std::clamp((p.x - origin_.x) / spacing_, 0.0, static_cast<double>(nx_ - 1));
  const double fy =
      std::clamp((p.y - origin_.y) / spacing_, 0.0, static_cast<double>(ny_ - 1));
  const double fz =
      std::clamp((p.z - origin_.z) / spacing_, 0.0, static_cast<double>(nz_ - 1));
  const int ix = std::min(static_cast<int>(fx), nx_ - 2);
  const int iy = std::min(static_cast<int>(fy), ny_ - 2);
  const int iz = std::min(static_cast<int>(fz), nz_ - 2);
  const double tx = fx - ix;
  const double ty = fy - iy;
  const double tz = fz - iz;

  const auto lerp = [](double a, double b, double t) {
    return a + (b - a) * t;
  };
  const double c00 = lerp(at(ix, iy, iz), at(ix + 1, iy, iz), tx);
  const double c10 = lerp(at(ix, iy + 1, iz), at(ix + 1, iy + 1, iz), tx);
  const double c01 = lerp(at(ix, iy, iz + 1), at(ix + 1, iy, iz + 1), tx);
  const double c11 = lerp(at(ix, iy + 1, iz + 1), at(ix + 1, iy + 1, iz + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

Protein Protein::generate_pocket(std::uint64_t seed, int lining_atoms,
                                 double pocket_radius, double grid_spacing) {
  DSEM_ENSURE(lining_atoms >= 8, "pocket needs at least 8 lining atoms");
  DSEM_ENSURE(pocket_radius > 2.0, "pocket radius too small");

  Protein protein;
  protein.center_ = {0.0, 0.0, 0.0};
  protein.radius_ = pocket_radius;

  Rng rng(seed);
  protein.atoms_.reserve(static_cast<std::size_t>(lining_atoms));
  // Lining atoms on a spherical shell, leaving an opening around +z (the
  // pocket "mouth"), with slight radial jitter: a cavity with structure.
  for (int i = 0; i < lining_atoms; ++i) {
    double cos_theta = rng.uniform(-1.0, 0.85); // opening near cos=1
    const double theta = std::acos(cos_theta);
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double r = pocket_radius * rng.uniform(0.95, 1.15);
    ProteinAtom atom;
    atom.position = {r * std::sin(theta) * std::cos(phi),
                     r * std::sin(theta) * std::sin(phi),
                     r * std::cos(theta)};
    atom.radius = rng.uniform(1.5, 1.9);
    atom.charge = rng.uniform(-0.5, 0.5);
    protein.atoms_.push_back(atom);
  }
  protein.axis_ = {0.0, 0.0, 1.0}; // toward the opening

  // Precompute the grids over the pocket bounding box (+2 A margin).
  const double half = pocket_radius + 2.0;
  const int n = std::max(2, static_cast<int>(std::ceil(2.0 * half / grid_spacing)) + 1);
  const Vec3 origin = {-half, -half, -half};
  protein.steric_ = PotentialGrid(origin, grid_spacing, n, n, n);
  protein.electro_ = PotentialGrid(origin, grid_spacing, n, n, n);

  for (int iz = 0; iz < n; ++iz) {
    for (int iy = 0; iy < n; ++iy) {
      for (int ix = 0; ix < n; ++ix) {
        const Vec3 p = {origin.x + ix * grid_spacing,
                        origin.y + iy * grid_spacing,
                        origin.z + iz * grid_spacing};
        double steric = 0.0;
        double electro = 0.0;
        for (const ProteinAtom& atom : protein.atoms_) {
          const double d = std::max(distance(p, atom.position), 0.3);
          const double s = atom.radius / d;
          const double s6 = s * s * s * s * s * s;
          // 12-6 form, clamped so clashes are steep but finite.
          steric += std::min(s6 * s6 - 2.0 * s6, 50.0);
          electro += atom.charge * std::exp(-d / 4.0) / d; // screened Coulomb
        }
        protein.steric_.at(ix, iy, iz) = std::min(steric, 100.0);
        protein.electro_.at(ix, iy, iz) = electro;
      }
    }
  }
  return protein;
}

} // namespace dsem::ligen
