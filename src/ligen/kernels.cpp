#include "ligen/kernels.hpp"

#include <algorithm>

namespace dsem::ligen {

namespace {
// Modeled operations per (atom, rotational trial) of the full-fidelity
// docking inner loop: Rodrigues rotation, bump-grid lookup, multi-term
// partial scoring and pose bookkeeping. Calibrated so the simulated V100
// runtimes land in the range of the paper's Figs. 6/8 (seconds for 1e5
// ligands).
constexpr double kOpsPerAtomTrialMul = 1580.0;
constexpr double kOpsPerAtomTrialAdd = 1880.0;
constexpr double kOpsPerAtomTrialDiv = 59.0;
constexpr double kOpsPerAtomTrialSf = 92.0;   // sin/cos/exp/sqrt
constexpr double kOpsPerAtomTrialInt = 435.0; // index arithmetic
} // namespace

sim::KernelProfile dock_profile(int num_atoms, int num_fragments,
                                const DockingParams& params) {
  validate(params);
  const auto a = static_cast<double>(num_atoms);
  const auto f = static_cast<double>(num_fragments);
  // Rotational trials per ligand: every restart runs num_iterations sweeps
  // over (f - 1) rotamers (plus the rigid-pose evaluation, counted as one
  // extra fragment), each sampling angle_steps orientations of roughly half
  // the atoms.
  const double trials = params.num_restart * params.num_iterations * f *
                        params.angle_steps * (0.5 * a);
  const double init_ops =
      params.num_restart * a * 60.0; // initialize_pose + align per restart

  sim::KernelProfile p;
  p.name = "ligen::dock";
  p.float_mul = trials * kOpsPerAtomTrialMul + init_ops;
  p.float_add = trials * kOpsPerAtomTrialAdd + init_ops;
  p.float_div = trials * kOpsPerAtomTrialDiv;
  p.special_fn = trials * kOpsPerAtomTrialSf;
  p.int_add = trials * kOpsPerAtomTrialInt;
  p.int_mul = trials * kOpsPerAtomTrialInt * 0.4;
  // Ligand coordinates + topology stream once per restart; scoring grids
  // are cached on-chip (local), giving the kernel its high arithmetic
  // intensity.
  p.global_bytes = a * 32.0 * params.num_restart + 512.0;
  p.local_bytes = trials * 8.0;
  // One ligand fans out over its restarts and atoms on the device; only
  // the per-atom trial chain is sequential.
  p.intra_item_parallelism = params.num_restart * std::max(1.0, 0.5 * a);
  return p;
}

sim::KernelProfile score_profile(int num_atoms, const DockingParams& params) {
  validate(params);
  const auto a = static_cast<double>(num_atoms);
  const double pose_atoms = params.max_num_poses * a;
  // Refined scoring: grid sampling + pairwise clash test (O(a^2), bounded
  // by a neighbour cutoff in production, modeled as 24 a pairs).
  const double pair_ops = params.max_num_poses * 24.0 * a;

  sim::KernelProfile p;
  p.name = "ligen::score";
  p.float_mul = pose_atoms * 420.0 + pair_ops * 6.0;
  p.float_add = pose_atoms * 500.0 + pair_ops * 8.0;
  p.float_div = pose_atoms * 12.0;
  p.special_fn = pose_atoms * 30.0 + pair_ops; // exp/sqrt per pair
  p.int_add = pose_atoms * 90.0;
  p.global_bytes = pose_atoms * 24.0 + 256.0;
  p.local_bytes = pose_atoms * 16.0;
  p.intra_item_parallelism = std::max(1.0, pose_atoms);
  return p;
}

void submit_screening_kernels(synergy::Queue& queue, std::size_t num_ligands,
                              int num_atoms, int num_fragments,
                              const DockingParams& params,
                              std::size_t batch_size) {
  validate(params);
  const sim::KernelProfile dock = dock_profile(num_atoms, num_fragments, params);
  const sim::KernelProfile score = score_profile(num_atoms, params);
  for (std::size_t begin = 0; begin < num_ligands; begin += batch_size) {
    const std::size_t count = std::min(batch_size, num_ligands - begin);
    queue.submit({dock, count, {}});
    queue.submit({score, count, {}});
  }
}

} // namespace dsem::ligen
