#include "ligen/dock.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dsem::ligen {

void validate(const DockingParams& params) {
  DSEM_ENSURE(params.num_restart >= 1, "num_restart must be >= 1");
  DSEM_ENSURE(params.num_iterations >= 1, "num_iterations must be >= 1");
  DSEM_ENSURE(params.max_num_poses >= 1, "max_num_poses must be >= 1");
  DSEM_ENSURE(params.angle_steps >= 2, "angle_steps must be >= 2");
}

DockingEngine::DockingEngine(const Protein& protein, DockingParams params)
    : protein_(&protein), params_(params) {
  validate(params_);
}

Pose DockingEngine::initialize_pose(const Ligand& ligand, int restart,
                                    std::uint64_t seed) const {
  // Deterministic per (ligand seed, restart index).
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(restart + 1)));
  Pose pose;
  pose.positions = ligand.positions();

  const Vec3 c = centroid(pose.positions);
  const double theta = std::acos(rng.uniform(-1.0, 1.0));
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const Vec3 axis = {std::sin(theta) * std::cos(phi),
                     std::sin(theta) * std::sin(phi), std::cos(theta)};
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const Vec3 jitter = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                       rng.uniform(-1.0, 1.0)};
  for (Vec3& p : pose.positions) {
    p = rotate_about_axis(p, c, axis, angle) + jitter;
  }
  return pose;
}

void DockingEngine::align(Pose& pose) const {
  DSEM_ENSURE(!pose.positions.empty(), "align: empty pose");
  const Vec3 c = centroid(pose.positions);
  // Seat the ligand slightly below the pocket mouth.
  const Vec3 target =
      protein_->pocket_center() - protein_->pocket_axis() * 1.0;
  const Vec3 shift = target - c;
  for (Vec3& p : pose.positions) {
    p += shift;
  }
  if (pose.positions.size() >= 3) {
    const EigenResult eig = eigen_symmetric(covariance(pose.positions));
    const Vec3 principal = eig.vectors[0];
    for (Vec3& p : pose.positions) {
      p = rotate_align(p, target, principal, protein_->pocket_axis());
    }
  }
}

void DockingEngine::optimize_fragment(Pose& pose, const Ligand& ligand,
                                      const Rotamer& rotamer) const {
  const Bond& bond = ligand.bonds()[static_cast<std::size_t>(rotamer.bond)];
  const Vec3 origin = pose.positions[static_cast<std::size_t>(bond.a)];
  const Vec3 axis = (pose.positions[static_cast<std::size_t>(bond.b)] - origin)
                        .normalized();

  // Score only the moving fragment: the rest is invariant under this
  // rotation, so relative comparison is exact and cheaper.
  const auto fragment_score = [&](double angle) {
    double acc = 0.0;
    for (int idx : rotamer.moving_atoms) {
      const Vec3 p = rotate_about_axis(
          pose.positions[static_cast<std::size_t>(idx)], origin, axis, angle);
      acc -= protein_->steric(p);
    }
    return acc;
  };

  double best_angle = 0.0;
  double best = fragment_score(0.0);
  for (int k = 1; k < params_.angle_steps; ++k) {
    const double angle = 2.0 * std::numbers::pi * k /
                         static_cast<double>(params_.angle_steps);
    const double s = fragment_score(angle);
    if (s > best) {
      best = s;
      best_angle = angle;
    }
  }
  if (best_angle != 0.0) {
    for (int idx : rotamer.moving_atoms) {
      Vec3& p = pose.positions[static_cast<std::size_t>(idx)];
      p = rotate_about_axis(p, origin, axis, best_angle);
    }
  }
}

double DockingEngine::evaluate(const Pose& pose) const {
  DSEM_ENSURE(!pose.positions.empty(), "evaluate: empty pose");
  double acc = 0.0;
  for (const Vec3& p : pose.positions) {
    acc -= protein_->steric(p);
  }
  return acc / static_cast<double>(pose.positions.size());
}

double DockingEngine::compute_score(const Pose& pose,
                                    const Ligand& ligand) const {
  DSEM_ENSURE(pose.positions.size() == ligand.atoms().size(),
              "compute_score: pose/ligand size mismatch");
  const auto n = pose.positions.size();

  double steric = 0.0;
  double electro = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    steric -= protein_->steric(pose.positions[i]);
    electro -= ligand.atoms()[i].charge *
               protein_->electrostatic(pose.positions[i]);
  }

  // Intra-ligand clash: penalize non-bonded atom pairs closer than the sum
  // of their vdW radii (fragment rotations can fold a ligand onto itself).
  double clash = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) { // skip adjacent (bonded-ish)
      const double d = distance(pose.positions[i], pose.positions[j]);
      const double min_d = 0.7 * (vdw_radius(ligand.atoms()[i].element) +
                                  vdw_radius(ligand.atoms()[j].element));
      if (d < min_d) {
        clash += (min_d - d) * (min_d - d);
      }
    }
  }

  const double n_inv = 1.0 / static_cast<double>(n);
  return steric * n_inv + 2.0 * electro * n_inv - 5.0 * clash * n_inv;
}

std::vector<Pose> DockingEngine::dock(const Ligand& ligand,
                                      std::uint64_t seed) const {
  std::vector<Pose> poses;
  poses.reserve(static_cast<std::size_t>(params_.num_restart));
  for (int i = 0; i < params_.num_restart; ++i) {
    Pose pose = initialize_pose(ligand, i, seed);
    align(pose);
    for (int n = 0; n < params_.num_iterations; ++n) {
      for (const Rotamer& rotamer : ligand.rotamers()) {
        optimize_fragment(pose, ligand, rotamer);
      }
    }
    pose.score = evaluate(pose);
    poses.push_back(std::move(pose));
  }
  std::sort(poses.begin(), poses.end(),
            [](const Pose& a, const Pose& b) { return a.score > b.score; });
  if (poses.size() > static_cast<std::size_t>(params_.max_num_poses)) {
    poses.resize(static_cast<std::size_t>(params_.max_num_poses));
  }
  return poses;
}

double DockingEngine::score(const Ligand& ligand,
                            std::span<const Pose> poses) const {
  DSEM_ENSURE(!poses.empty(), "score: no poses");
  double best = -std::numeric_limits<double>::infinity();
  for (const Pose& pose : poses) {
    best = std::max(best, compute_score(pose, ligand));
  }
  return best;
}

double DockingEngine::dock_and_score(const Ligand& ligand,
                                     std::uint64_t seed) const {
  const std::vector<Pose> poses = dock(ligand, seed);
  return score(ligand, poses);
}

} // namespace dsem::ligen
