#include "ligen/geometry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dsem::ligen {

Vec3 centroid(std::span<const Vec3> points) {
  DSEM_ENSURE(!points.empty(), "centroid of empty point cloud");
  Vec3 acc;
  for (const Vec3& p : points) {
    acc += p;
  }
  return acc * (1.0 / static_cast<double>(points.size()));
}

Mat3 covariance(std::span<const Vec3> points) {
  DSEM_ENSURE(!points.empty(), "covariance of empty point cloud");
  const Vec3 c = centroid(points);
  Mat3 m{};
  for (const Vec3& p : points) {
    const Vec3 d = p - c;
    const std::array<double, 3> v = {d.x, d.y, d.z};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(points.size());
  for (auto& row : m) {
    for (double& v : row) {
      v *= inv_n;
    }
  }
  return m;
}

EigenResult eigen_symmetric(const Mat3& input) {
  // Cyclic Jacobi: a handful of sweeps is ample for 3x3.
  Mat3 a = input;
  Mat3 v = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};

  for (int sweep = 0; sweep < 32; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        off += a[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] *
               a[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)];
      }
    }
    if (off < 1e-24) {
      break;
    }
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        const auto up = static_cast<std::size_t>(p);
        const auto uq = static_cast<std::size_t>(q);
        if (std::abs(a[up][uq]) < 1e-30) {
          continue;
        }
        const double theta = (a[uq][uq] - a[up][up]) / (2.0 * a[up][uq]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < 3; ++k) {
          const auto uk = static_cast<std::size_t>(k);
          const double akp = a[uk][up];
          const double akq = a[uk][uq];
          a[uk][up] = c * akp - s * akq;
          a[uk][uq] = s * akp + c * akq;
        }
        for (int k = 0; k < 3; ++k) {
          const auto uk = static_cast<std::size_t>(k);
          const double apk = a[up][uk];
          const double aqk = a[uq][uk];
          a[up][uk] = c * apk - s * aqk;
          a[uq][uk] = s * apk + c * aqk;
        }
        for (int k = 0; k < 3; ++k) {
          const auto uk = static_cast<std::size_t>(k);
          const double vkp = v[uk][up];
          const double vkq = v[uk][uq];
          v[uk][up] = c * vkp - s * vkq;
          v[uk][uq] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::array<int, 3> order = {0, 1, 2};
  std::sort(order.begin(), order.end(), [&](int i, int j) {
    return a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] >
           a[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
  });

  EigenResult out;
  for (int i = 0; i < 3; ++i) {
    const auto src = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
    out.values[static_cast<std::size_t>(i)] = a[src][src];
    out.vectors[static_cast<std::size_t>(i)] =
        Vec3{v[0][src], v[1][src], v[2][src]}.normalized();
  }
  return out;
}

Vec3 rotate_align(const Vec3& p, const Vec3& origin, const Vec3& from,
                  const Vec3& to) noexcept {
  const Vec3 f = from.normalized();
  const Vec3 t = to.normalized();
  const double cos_angle = std::clamp(f.dot(t), -1.0, 1.0);
  Vec3 axis = f.cross(t);
  const double axis_norm = axis.norm();
  if (axis_norm < 1e-12) {
    if (cos_angle > 0.0) {
      return p; // already aligned
    }
    // Antiparallel: rotate pi about any perpendicular axis.
    Vec3 perp = f.cross(Vec3{1.0, 0.0, 0.0});
    if (perp.norm() < 1e-9) {
      perp = f.cross(Vec3{0.0, 1.0, 0.0});
    }
    return rotate_about_axis(p, origin, perp.normalized(), 3.14159265358979323846);
  }
  axis = axis * (1.0 / axis_norm);
  return rotate_about_axis(p, origin, axis, std::acos(cos_angle));
}

} // namespace dsem::ligen
