#include "ligen/molecule.hpp"

#include <algorithm>
#include <numbers>
#include <queue>

#include "common/error.hpp"

namespace dsem::ligen {

double vdw_radius(Element e) noexcept {
  switch (e) {
  case Element::kC:
    return 1.70;
  case Element::kN:
    return 1.55;
  case Element::kO:
    return 1.52;
  case Element::kS:
    return 1.80;
  case Element::kH:
    return 1.20;
  }
  return 1.70;
}

std::string to_string(Element e) {
  switch (e) {
  case Element::kC:
    return "C";
  case Element::kN:
    return "N";
  case Element::kO:
    return "O";
  case Element::kS:
    return "S";
  case Element::kH:
    return "H";
  }
  return "?";
}

Ligand::Ligand(std::string name, std::vector<Atom> atoms,
               std::vector<Bond> bonds, std::vector<Rotamer> rotamers)
    : name_(std::move(name)), atoms_(std::move(atoms)),
      bonds_(std::move(bonds)), rotamers_(std::move(rotamers)) {
  validate(*this);
}

std::vector<Vec3> Ligand::positions() const {
  std::vector<Vec3> out;
  out.reserve(atoms_.size());
  for (const Atom& a : atoms_) {
    out.push_back(a.position);
  }
  return out;
}

namespace {

/// Atoms on the `tip` side of bond (base, tip) in the bond tree.
std::vector<int> side_of_bond(const std::vector<std::vector<int>>& adjacency,
                              int base, int tip) {
  std::vector<int> side;
  std::vector<bool> seen(adjacency.size(), false);
  seen[static_cast<std::size_t>(base)] = true;
  std::queue<int> frontier;
  frontier.push(tip);
  seen[static_cast<std::size_t>(tip)] = true;
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop();
    side.push_back(cur);
    for (int next : adjacency[static_cast<std::size_t>(cur)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        frontier.push(next);
      }
    }
  }
  std::sort(side.begin(), side.end());
  return side;
}

} // namespace

Ligand generate_ligand(int num_atoms, int num_fragments, Rng& rng,
                       const std::string& name) {
  DSEM_ENSURE(num_atoms >= 2, "a ligand needs at least 2 atoms");
  DSEM_ENSURE(num_fragments >= 1, "a ligand has at least 1 fragment");

  constexpr double kBondLength = 1.5; // angstroms, typical C-C
  constexpr std::array<Element, 5> kPalette = {
      Element::kC, Element::kC, Element::kN, Element::kO, Element::kS};

  std::vector<Atom> atoms;
  atoms.reserve(static_cast<std::size_t>(num_atoms));
  std::vector<Bond> bonds;
  bonds.reserve(static_cast<std::size_t>(num_atoms) - 1);
  std::vector<std::vector<int>> adjacency(
      static_cast<std::size_t>(num_atoms));

  atoms.push_back(Atom{{0.0, 0.0, 0.0}, Element::kC, 0.0});
  for (int i = 1; i < num_atoms; ++i) {
    // Grow a branched tree: attach to a recent atom (chain-like with
    // occasional branches), placing the new atom at bond length in a
    // random direction that avoids immediate overlap.
    const int window = std::min(i, 4);
    const int parent = i - 1 - static_cast<int>(rng.uniform_int(
                                   static_cast<std::uint64_t>(window)));
    Vec3 pos;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const double theta = rng.uniform(0.0, std::numbers::pi);
      const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const Vec3 dir = {std::sin(theta) * std::cos(phi),
                        std::sin(theta) * std::sin(phi), std::cos(theta)};
      pos = atoms[static_cast<std::size_t>(parent)].position +
            dir * kBondLength;
      bool clear = true;
      for (const Atom& other : atoms) {
        if (distance(other.position, pos) < 1.0) {
          clear = false;
          break;
        }
      }
      if (clear) {
        break;
      }
    }
    const Element elem = kPalette[rng.uniform_int(kPalette.size())];
    const double charge = rng.uniform(-0.4, 0.4);
    atoms.push_back(Atom{pos, elem, charge});
    bonds.push_back(Bond{parent, i});
    adjacency[static_cast<std::size_t>(parent)].push_back(i);
    adjacency[static_cast<std::size_t>(i)].push_back(parent);
  }

  // Rotatable bonds: internal tree edges (both endpoints have degree >= 2),
  // i.e. rotating them moves a proper multi-atom fragment.
  std::vector<int> internal_bonds;
  for (std::size_t bi = 0; bi < bonds.size(); ++bi) {
    const Bond& bond = bonds[bi];
    if (adjacency[static_cast<std::size_t>(bond.a)].size() >= 2 &&
        adjacency[static_cast<std::size_t>(bond.b)].size() >= 2) {
      internal_bonds.push_back(static_cast<int>(bi));
    }
  }
  const int wanted_rotamers = num_fragments - 1;
  DSEM_ENSURE(static_cast<int>(internal_bonds.size()) >= wanted_rotamers,
              "topology cannot support " + std::to_string(num_fragments) +
                  " fragments with " + std::to_string(num_atoms) + " atoms");

  // Deterministic subsample of the internal bonds.
  for (std::size_t i = 0; i < static_cast<std::size_t>(wanted_rotamers); ++i) {
    const std::size_t j = i + rng.uniform_int(internal_bonds.size() - i);
    std::swap(internal_bonds[i], internal_bonds[j]);
  }
  internal_bonds.resize(static_cast<std::size_t>(wanted_rotamers));
  std::sort(internal_bonds.begin(), internal_bonds.end());

  std::vector<Rotamer> rotamers;
  rotamers.reserve(internal_bonds.size());
  for (int bi : internal_bonds) {
    const Bond& bond = bonds[static_cast<std::size_t>(bi)];
    Rotamer rot;
    rot.bond = bi;
    rot.moving_atoms = side_of_bond(adjacency, bond.a, bond.b);
    rotamers.push_back(std::move(rot));
  }

  return Ligand(name, std::move(atoms), std::move(bonds), std::move(rotamers));
}

std::vector<Ligand> generate_library(int count, int num_atoms,
                                     int num_fragments, std::uint64_t seed) {
  DSEM_ENSURE(count >= 1, "library needs at least one ligand");
  std::vector<Ligand> library;
  library.reserve(static_cast<std::size_t>(count));
  Rng master(seed);
  for (int i = 0; i < count; ++i) {
    Rng rng = master.split();
    library.push_back(generate_ligand(num_atoms, num_fragments, rng,
                                      "ligand_" + std::to_string(i)));
  }
  return library;
}

void validate(const Ligand& ligand) {
  const int n = ligand.num_atoms();
  DSEM_ENSURE(n >= 2, "ligand needs at least 2 atoms");
  DSEM_ENSURE(static_cast<int>(ligand.bonds().size()) == n - 1,
              "ligand bonds must form a tree");

  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
  for (const Bond& b : ligand.bonds()) {
    DSEM_ENSURE(b.a >= 0 && b.a < n && b.b >= 0 && b.b < n && b.a != b.b,
                "bond endpoints out of range");
    adjacency[static_cast<std::size_t>(b.a)].push_back(b.b);
    adjacency[static_cast<std::size_t>(b.b)].push_back(b.a);
  }
  // Connectivity.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<int> frontier;
  frontier.push(0);
  seen[0] = true;
  int visited = 0;
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop();
    ++visited;
    for (int next : adjacency[static_cast<std::size_t>(cur)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        frontier.push(next);
      }
    }
  }
  DSEM_ENSURE(visited == n, "ligand graph is disconnected");

  for (const Rotamer& rot : ligand.rotamers()) {
    DSEM_ENSURE(rot.bond >= 0 &&
                    rot.bond < static_cast<int>(ligand.bonds().size()),
                "rotamer bond index out of range");
    const Bond& bond = ligand.bonds()[static_cast<std::size_t>(rot.bond)];
    const std::vector<int> expected =
        side_of_bond(adjacency, bond.a, bond.b);
    DSEM_ENSURE(rot.moving_atoms == expected,
                "rotamer moving set does not match its bond split");
  }
}

} // namespace dsem::ligen
