// Ligand model: atoms, bonds, and rotamers.
//
// Following the paper (§3.2): a rotamer is a rotatable bond that splits
// the ligand's atoms into two disjoint sets which can rotate independently
// about the bond axis without changing physical/chemical properties; each
// such set is a *fragment*. The complexity of docking one ligand scales
// with its number of atoms and fragments — which is exactly why those two
// are the domain-specific model's features.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ligen/geometry.hpp"

namespace dsem::ligen {

enum class Element : std::uint8_t { kC, kN, kO, kS, kH };

/// Van-der-Waals radius in angstroms.
double vdw_radius(Element e) noexcept;
std::string to_string(Element e);

struct Atom {
  Vec3 position;      ///< angstroms
  Element element = Element::kC;
  double charge = 0.0; ///< partial charge, elementary units
};

struct Bond {
  int a = 0;
  int b = 0;
};

/// A rotatable bond plus the atom set that moves when it rotates.
struct Rotamer {
  int bond = 0;                  ///< index into Ligand::bonds
  std::vector<int> moving_atoms; ///< strictly one side of the bond
};

class Ligand {
public:
  Ligand() = default;
  Ligand(std::string name, std::vector<Atom> atoms, std::vector<Bond> bonds,
         std::vector<Rotamer> rotamers);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Atom>& atoms() const noexcept { return atoms_; }
  const std::vector<Bond>& bonds() const noexcept { return bonds_; }
  const std::vector<Rotamer>& rotamers() const noexcept { return rotamers_; }

  int num_atoms() const noexcept { return static_cast<int>(atoms_.size()); }
  /// Fragments = rotamers + 1 (each rotamer splits one set in two).
  int num_fragments() const noexcept {
    return static_cast<int>(rotamers_.size()) + 1;
  }

  /// Initial coordinates of all atoms (the conformer a pose starts from).
  std::vector<Vec3> positions() const;

private:
  std::string name_;
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<Rotamer> rotamers_;
};

/// Deterministically generates a synthetic but chemically plausible ligand:
/// a connected branched tree of `num_atoms` heavy atoms with ~1.5 A bonds,
/// and `num_fragments` fragments (num_fragments - 1 rotatable bonds chosen
/// among internal bonds). Throws if num_fragments exceeds what the
/// topology can support (needs at least one internal bond per rotamer).
Ligand generate_ligand(int num_atoms, int num_fragments, Rng& rng,
                       const std::string& name = "ligand");

/// A library of `count` ligands with identical (atoms, fragments) makeup,
/// individually varied by the RNG — the shape of the paper's experiments,
/// which sweep (#ligands, #atoms, #fragments) as a tuple.
std::vector<Ligand> generate_library(int count, int num_atoms,
                                     int num_fragments, std::uint64_t seed);

/// Throws dsem::contract_error when the topology is inconsistent
/// (disconnected atoms, rotamer sets not matching their bond split, ...).
void validate(const Ligand& ligand);

} // namespace dsem::ligen
