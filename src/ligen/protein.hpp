// Synthetic target protein with a grid-based scoring field.
//
// LiGen scores poses against precomputed potential grids of the target
// protein (the protein is constant per virtual-screening campaign). We
// generate a pocket — a roughly spherical cavity lined with protein atoms
// — and precompute two trilinearly-interpolated fields over its bounding
// box: a steric field (Lennard-Jones-like: attractive near the lining,
// strongly repulsive inside atoms) and an electrostatic field (screened
// Coulomb from the lining atoms' partial charges).
#pragma once

#include <cstdint>
#include <vector>

#include "ligen/geometry.hpp"

namespace dsem::ligen {

/// Trilinearly interpolated scalar field on a regular lattice.
class PotentialGrid {
public:
  PotentialGrid() = default;
  PotentialGrid(Vec3 origin, double spacing, int nx, int ny, int nz);

  double& at(int ix, int iy, int iz) noexcept;
  double at(int ix, int iy, int iz) const noexcept;

  /// Interpolated value; positions outside the box clamp to the boundary.
  double sample(const Vec3& p) const noexcept;

  Vec3 origin() const noexcept { return origin_; }
  double spacing() const noexcept { return spacing_; }
  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }

private:
  Vec3 origin_;
  double spacing_ = 1.0;
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<double> values_;
};

struct ProteinAtom {
  Vec3 position;
  double radius = 1.7;
  double charge = 0.0;
};

class Protein {
public:
  /// Generates a pocket of `lining_atoms` protein atoms on a spherical
  /// shell of `pocket_radius` angstroms and precomputes the scoring grids.
  static Protein generate_pocket(std::uint64_t seed, int lining_atoms = 180,
                                 double pocket_radius = 8.0,
                                 double grid_spacing = 0.5);

  Vec3 pocket_center() const noexcept { return center_; }
  double pocket_radius() const noexcept { return radius_; }

  /// Principal axis of the pocket opening (for pose alignment).
  Vec3 pocket_axis() const noexcept { return axis_; }

  const std::vector<ProteinAtom>& atoms() const noexcept { return atoms_; }

  /// Steric potential: negative (favourable) inside the cavity near the
  /// lining, sharply positive when clashing with protein atoms.
  double steric(const Vec3& p) const noexcept { return steric_.sample(p); }

  /// Electrostatic potential per unit charge.
  double electrostatic(const Vec3& p) const noexcept {
    return electro_.sample(p);
  }

  const PotentialGrid& steric_grid() const noexcept { return steric_; }
  const PotentialGrid& electro_grid() const noexcept { return electro_; }

private:
  Protein() = default;

  Vec3 center_;
  double radius_ = 0.0;
  Vec3 axis_{0.0, 0.0, 1.0};
  std::vector<ProteinAtom> atoms_;
  PotentialGrid steric_;
  PotentialGrid electro_;
};

} // namespace dsem::ligen
