// Simulated GPU device: clocking state, kernel launches, energy counters.
//
// This is the stand-in for the physical V100/MI100 of the paper. It is the
// *only* source of time and energy numbers in the system; everything above
// (SYnergy layer, applications, models) treats it as opaque hardware.
// Measurements carry seeded multiplicative Gaussian noise so the modelling
// layer faces realistic, repeatable measurement error.
//
// Not thread-safe by design: like real hardware counters, a device is
// driven from one submission context (a synergy::Queue serializes access).
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "sim/device_spec.hpp"
#include "sim/execution_model.hpp"
#include "sim/fault.hpp"
#include "sim/power_model.hpp"

namespace dsem::sim {

class ProfileCache;

struct NoiseConfig {
  double time_sigma = 0.015;   ///< relative std-dev of time measurements
  double energy_sigma = 0.015; ///< relative std-dev of energy measurements

  static NoiseConfig none() noexcept { return {0.0, 0.0}; }
};

struct LaunchResult {
  double time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double frequency_mhz = 0.0; ///< core clock the launch actually ran at
};

class Device {
public:
  explicit Device(DeviceSpec spec, NoiseConfig noise = {},
                  std::uint64_t seed = 0x5eed0001);

  const DeviceSpec& spec() const noexcept { return spec_; }
  NoiseConfig noise() const noexcept { return noise_; }

  /// Seed the device was constructed (or last reseeded) with.
  std::uint64_t seed() const noexcept { return seed_; }

  /// Fresh device with the same spec, noise model, and fault config but
  /// its own measurement-noise and fault streams: the building block of
  /// parallel sweeps, where every grid point measures on its own
  /// deterministic replica instead of racing on one device's RNG.
  Device replica(std::uint64_t seed) const {
    Device d(spec_, noise_, seed);
    d.set_fault_config(faults_.config());
    return d;
  }

  // --- fault injection ----------------------------------------------------

  /// Enables deterministic fault injection: the injector stream is
  /// derived from the device seed, so the schedule survives replica() and
  /// reseed(). All-zero rates (the default) are bit-identical to no
  /// injection at all.
  void set_fault_config(const FaultConfig& config) noexcept {
    faults_ = FaultInjector(config, derive_seed(seed_, kFaultStreamSalt));
  }

  const FaultConfig& fault_config() const noexcept {
    return faults_.config();
  }

  /// Transient faults fired on this device so far.
  std::uint64_t faults_injected() const noexcept {
    return faults_.faults_injected();
  }

  // --- clocking -----------------------------------------------------------

  /// Pins the core clock to the nearest supported frequency; returns it.
  double set_core_frequency(double mhz);

  /// Returns clock control to the governor (AMD "auto" performance level);
  /// only meaningful on devices without a fixed default.
  void set_auto_frequency();

  /// Resets to the device's default behaviour: the default application
  /// clock on NVIDIA, the auto governor on AMD.
  void reset_frequency();

  bool is_auto() const noexcept { return !pinned_mhz_.has_value(); }

  /// The core clock the next launch will run at.
  double current_frequency() const;

  /// Baseline clock used for speedup/normalized-energy: the fixed default
  /// (NVIDIA) or the governor's pick (AMD).
  double default_frequency() const;

  // --- execution ----------------------------------------------------------

  /// Simulates one kernel launch, advances the counters, and returns the
  /// (noisy) measured time and energy of this launch. With a cache, the
  /// noise-free launch cost is memoized across launches (and devices
  /// sharing the cache); results are bit-identical either way.
  ///
  /// With fault injection enabled, may throw TransientFault (aborted
  /// launch, dropped energy read) or return a garbage (negative) energy
  /// reading; the internal counters always accumulate the true value —
  /// a bad read corrupts the observation, not the hardware state.
  LaunchResult launch(const KernelProfile& kernel, std::size_t work_items,
                      ProfileCache* cache = nullptr);

  /// Noise-free timing breakdown at the current clock (for tests/analysis).
  ExecutionBreakdown analyze(const KernelProfile& kernel,
                             std::size_t work_items) const;

  // --- counters (what NVML/ROCm-SMI-style energy readouts expose) ---------

  double energy_joules() const noexcept { return energy_j_; }
  double busy_seconds() const noexcept { return busy_s_; }
  std::uint64_t launch_count() const noexcept { return launches_; }
  void reset_counters() noexcept;

  /// Reseed the measurement-noise and fault streams (e.g., per experiment
  /// repetition).
  void reseed(std::uint64_t seed) noexcept {
    seed_ = seed;
    rng_.reseed(seed);
    faults_.reseed(derive_seed(seed, kFaultStreamSalt));
  }

private:
  double apply_noise(double value, double sigma) noexcept;

  DeviceSpec spec_;
  NoiseConfig noise_;
  std::uint64_t seed_ = 0;
  Rng rng_;
  FaultInjector faults_;             ///< inert unless set_fault_config()
  std::optional<double> pinned_mhz_; ///< nullopt = auto/governed
  double energy_j_ = 0.0;
  double busy_s_ = 0.0;
  std::uint64_t launches_ = 0;
};

} // namespace dsem::sim
