#include "sim/kernel_profile.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dsem::sim {

std::array<double, kNumStaticFeatures>
KernelProfile::static_features() const noexcept {
  return {int_add,   int_mul,   int_div,           int_bw,
          float_add, float_mul, float_div,         special_fn,
          global_bytes / 4.0,   local_bytes / 4.0};
}

double KernelProfile::total_ops() const noexcept {
  return int_add + int_mul + int_div + int_bw + float_add + float_mul +
         float_div + special_fn;
}

double KernelProfile::flops() const noexcept {
  return float_add + float_mul + float_div + special_fn;
}

double KernelProfile::arithmetic_intensity() const noexcept {
  if (global_bytes <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return flops() / global_bytes;
}

KernelProfile& KernelProfile::accumulate(const KernelProfile& other,
                                         double weight) {
  int_add += weight * other.int_add;
  int_mul += weight * other.int_mul;
  int_div += weight * other.int_div;
  int_bw += weight * other.int_bw;
  float_add += weight * other.float_add;
  float_mul += weight * other.float_mul;
  float_div += weight * other.float_div;
  special_fn += weight * other.special_fn;
  global_bytes += weight * other.global_bytes;
  local_bytes += weight * other.local_bytes;
  return *this;
}

KernelProfile KernelProfile::scaled(double factor) const {
  KernelProfile out = *this;
  out.int_add *= factor;
  out.int_mul *= factor;
  out.int_div *= factor;
  out.int_bw *= factor;
  out.float_add *= factor;
  out.float_mul *= factor;
  out.float_div *= factor;
  out.special_fn *= factor;
  out.global_bytes *= factor;
  out.local_bytes *= factor;
  return out;
}

void validate(const KernelProfile& profile) {
  const auto check = [&](double v, const char* what) {
    DSEM_ENSURE(std::isfinite(v) && v >= 0.0,
                std::string("KernelProfile '") + profile.name + "': " + what +
                    " must be finite and non-negative");
  };
  check(profile.int_add, "int_add");
  check(profile.int_mul, "int_mul");
  check(profile.int_div, "int_div");
  check(profile.int_bw, "int_bw");
  check(profile.float_add, "float_add");
  check(profile.float_mul, "float_mul");
  check(profile.float_div, "float_div");
  check(profile.special_fn, "special_fn");
  check(profile.global_bytes, "global_bytes");
  check(profile.local_bytes, "local_bytes");
  DSEM_ENSURE(std::isfinite(profile.intra_item_parallelism) &&
                  profile.intra_item_parallelism >= 1.0,
              "KernelProfile '" + profile.name +
                  "': intra_item_parallelism must be >= 1");
}

} // namespace dsem::sim
