// Miniature kernel IR + static analyzer.
//
// Fan et al. derive their model features by *statically analyzing* device
// code (PTX), not by profiling. This module provides the analogous path in
// the simulator: kernels can be authored as an instruction-level IR, and
// analyze() performs the static feature extraction that yields exactly the
// Table 1 profile the rest of the system consumes. The micro-benchmark
// corpus is authored this way (microbench/suite.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_profile.hpp"

namespace dsem::sim {

enum class Op : std::uint8_t {
  // Integer arithmetic.
  kIAdd, kISub, kIMul, kIDiv,
  // Integer bitwise.
  kAnd, kOr, kXor, kShl, kShr,
  // Floating point.
  kFAdd, kFSub, kFMul, kFDiv,
  kFma, ///< counted as one multiply plus one add
  // Special function unit.
  kSin, kCos, kTan, kExp, kLog, kSqrt, kRsqrt, kPow,
  // Memory.
  kLoadGlobal, kStoreGlobal, kLoadLocal, kStoreLocal,
};

std::string to_string(Op op);
bool is_memory_op(Op op) noexcept;

struct Instruction {
  Op op = Op::kIAdd;
  /// Dynamic execution count per work-item (loop trip counts folded in).
  double count = 1.0;
  /// Bytes per execution; memory operations only (others must leave 0).
  double bytes = 0.0;
};

/// A kernel body as a flat instruction list with per-instruction counts —
/// the shape a PTX-level pass produces after loop analysis.
class KernelIr {
public:
  explicit KernelIr(std::string name);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Instruction>& body() const noexcept { return body_; }
  std::size_t size() const noexcept { return body_.size(); }

  /// Appends `count` executions of an arithmetic instruction.
  KernelIr& emit(Op op, double count = 1.0);
  /// Appends `count` executions of a memory instruction moving `bytes` each.
  KernelIr& emit_memory(Op op, double bytes, double count = 1.0);

  // Convenience builders (counts per work-item).
  KernelIr& iadd(double n = 1.0) { return emit(Op::kIAdd, n); }
  KernelIr& imul(double n = 1.0) { return emit(Op::kIMul, n); }
  KernelIr& idiv(double n = 1.0) { return emit(Op::kIDiv, n); }
  KernelIr& bitwise(double n = 1.0) { return emit(Op::kXor, n); }
  KernelIr& fadd(double n = 1.0) { return emit(Op::kFAdd, n); }
  KernelIr& fmul(double n = 1.0) { return emit(Op::kFMul, n); }
  KernelIr& fdiv(double n = 1.0) { return emit(Op::kFDiv, n); }
  KernelIr& fma(double n = 1.0) { return emit(Op::kFma, n); }
  KernelIr& special(double n = 1.0) { return emit(Op::kSqrt, n); }
  KernelIr& load_global(double bytes, double n = 1.0) {
    return emit_memory(Op::kLoadGlobal, bytes, n);
  }
  KernelIr& store_global(double bytes, double n = 1.0) {
    return emit_memory(Op::kStoreGlobal, bytes, n);
  }
  KernelIr& load_local(double bytes, double n = 1.0) {
    return emit_memory(Op::kLoadLocal, bytes, n);
  }
  KernelIr& store_local(double bytes, double n = 1.0) {
    return emit_memory(Op::kStoreLocal, bytes, n);
  }

  /// Declares the work-item's internal parallelism (see KernelProfile).
  KernelIr& parallelism(double intra_item);

private:
  std::string name_;
  std::vector<Instruction> body_;
  double intra_item_parallelism_ = 1.0;

  friend KernelProfile analyze(const KernelIr& ir);
};

/// Static feature extraction: folds the instruction stream into the
/// Table 1 profile (FMA contributes one float_mul and one float_add;
/// subtractions count as additions, exactly as the paper's feature set
/// defines them).
KernelProfile analyze(const KernelIr& ir);

} // namespace dsem::sim
