#include "sim/fault.hpp"

namespace dsem::sim {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
  case FaultKind::kSetFrequency:
    return "set-frequency";
  case FaultKind::kEnergyRead:
    return "energy-read";
  case FaultKind::kKernelLaunch:
    return "kernel-launch";
  }
  return "unknown";
}

} // namespace dsem::sim
