// Simulated device descriptions and datasheet-derived presets.
//
// The presets model the two GPUs of the paper (NVIDIA V100, AMD MI100)
// from public datasheet numbers (SM/CU count, peak FLOP/s, bandwidth,
// TDP, clock ranges). Efficiency factors account for achievable-vs-peak
// throughput of the SYCL software stack on each vendor; they are the only
// non-datasheet knobs and are documented per preset.
#pragma once

#include <string>

#include "sim/frequency.hpp"

namespace dsem::sim {

enum class Vendor { kNvidia, kAmd, kIntel };

std::string to_string(Vendor vendor);

/// Per-op-class issue cost in lane-cycles (per operation).
struct OpCosts {
  double int_add = 1.0;
  double int_mul = 1.0;
  double int_div = 20.0;
  double int_bw = 1.0;
  double float_add = 1.0;
  double float_mul = 1.0;
  double float_div = 8.0;
  double special_fn = 4.0;
  /// Lane-cycles per byte of local/shared-memory traffic.
  double local_byte = 0.25;
};

/// Piecewise voltage/frequency curve: flat at v_min below the knee, then a
/// power-law rise to v_max at f_max. GPUs at max boost sit far past the
/// efficiency knee, which is what makes up-clocking energy-expensive.
struct VoltageCurve {
  double v_min = 0.72;    ///< volts, held below the knee
  double v_max = 1.20;    ///< volts at f_max
  double knee_mhz = 900;  ///< frequency where voltage starts rising
  double exponent = 1.3;  ///< shape of the rise
};

struct PowerSpec {
  double static_w = 45.0;       ///< leakage + board, frequency-independent
  double clock_max_w = 45.0;    ///< clock tree at (f_max, v_max), always on
  double compute_max_w = 170.0; ///< all lanes busy at (f_max, v_max)
  double mem_max_w = 55.0;      ///< DRAM interface at full bandwidth
  VoltageCurve voltage;
};

struct DeviceSpec {
  std::string name;
  Vendor vendor = Vendor::kNvidia;

  // Compute organisation.
  int compute_units = 80;    ///< SMs (NVIDIA) / CUs (AMD)
  int lanes_per_cu = 64;     ///< FP32 lanes per compute unit
  double compute_efficiency = 0.75; ///< achievable fraction of peak issue
  OpCosts op_costs;

  // Memory system.
  double mem_bandwidth_gbs = 900.0; ///< peak DRAM bandwidth
  double mem_frequency_mhz = 1107.0;
  double mem_latency_us = 1.2; ///< f-independent DRAM round-trip floor

  // Launch/runtime behaviour.
  double launch_overhead_us = 8.0; ///< driver + runtime per kernel launch
  double latency_factor = 10.0;    ///< stall multiplier when undersubscribed
  /// Cost of retargeting the core clock (PLL relock + driver call); paid
  /// by the next launch after a frequency change (per-kernel DVFS).
  double freq_switch_overhead_us = 12.0;

  // Clocking.
  FrequencySchedule core_frequencies;
  double default_core_frequency_mhz = 0.0; ///< 0 = no fixed default (AMD)
  double auto_frequency_mhz = 0.0;         ///< governor pick when auto

  PowerSpec power;

  int total_lanes() const noexcept { return compute_units * lanes_per_cu; }

  /// Peak single-precision throughput at frequency f (GFLOP/s), counting
  /// FMA as two operations, before the efficiency derating.
  double peak_gflops(double core_mhz) const noexcept;

  bool has_fixed_default() const noexcept {
    return default_core_frequency_mhz > 0.0;
  }
};

/// Throws dsem::contract_error when a spec is internally inconsistent.
void validate(const DeviceSpec& spec);

/// NVIDIA V100 SXM2 32 GB: 80 SMs x 64 lanes, 900 GB/s HBM2 at 1107 MHz,
/// 196 core frequencies in [135, 1597] MHz, default application clock
/// 1312 MHz, 300 W TDP.
DeviceSpec v100();

/// AMD MI100: 120 CUs x 64 lanes, 1228 GB/s HBM2 at 1200 MHz, core clocks
/// [200, 1502] MHz, no fixed default — an "auto" performance level governs
/// the clock (modelled at 1402 MHz under load), 300 W TDP.
DeviceSpec mi100();

/// Intel Data Center GPU Max 1100 (Ponte Vecchio): 56 Xe cores x 128
/// lanes, 1229 GB/s HBM2e, core clocks [300, 1550] MHz with a 900 MHz
/// default, 300 W TDP. Not part of the paper's evaluation; included
/// because the SYnergy layer it models is a three-vendor API (§2.1).
DeviceSpec intel_max1100();

/// Preset lookup by short registry name: "v100", "mi100", "max1100".
/// These are the device ids used in serving-layer model keys, so a loaded
/// artifact can recover the spec its training run profiled against.
/// Throws dsem::contract_error for unknown names.
DeviceSpec preset_by_name(const std::string& name);

} // namespace dsem::sim
