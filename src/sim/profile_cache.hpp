// Memoized kernel launch costs for frequency sweeps.
//
// A sweep evaluates the same (device, kernel, work_items) triple at the
// same frequency over and over: every repetition of a run, every timestep
// of a Cronos run and every ligand batch of a LiGen run re-derives an
// identical noise-free (time, energy) pair through the execution and power
// models. The cache computes each distinct point once and serves all
// later launches from memory; only the per-launch measurement noise is
// drawn fresh. Cached and uncached launches are bit-identical — the same
// arithmetic runs either way, just not repeatedly.
//
// Thread-safe: one cache is shared by all replica devices of a parallel
// sweep. Keys compare every per-item quantity of the profile exactly, so
// two kernels that share a name but differ in content never collide.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/device_spec.hpp"
#include "sim/kernel_profile.hpp"

namespace dsem::sim {

class ProfileCache {
public:
  /// Noise-free cost of one launch: execution-model total time and
  /// power-model total energy.
  struct Cost {
    double time_s = 0.0;
    double energy_j = 0.0;
  };

  /// Returns the memoized cost of launching (kernel, work_items) on `spec`
  /// at `core_mhz`, computing it through the execution and power models on
  /// the first request.
  Cost lookup(const DeviceSpec& spec, const KernelProfile& kernel,
              std::size_t work_items, double core_mhz);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

private:
  struct Key {
    std::string name; ///< device spec name + kernel name
    std::array<double, 13> values; ///< profile fields, work_items, core_mhz

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, Cost, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

} // namespace dsem::sim
