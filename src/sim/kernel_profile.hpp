// Kernel workload descriptors.
//
// A KernelProfile records, per work-item, the instruction mix and memory
// traffic of a GPU kernel — exactly the static code features of Table 1 in
// the paper (Fan et al.'s feature set). The execution model consumes these
// to derive time; the general-purpose energy model consumes them (and only
// them) as its feature vector, which is the crux of the paper: static
// features carry no input-size information.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace dsem::sim {

/// Names of the static features, in the order of Table 1.
inline constexpr std::array<const char*, 10> kStaticFeatureNames = {
    "int_add",   "int_mul",   "int_div",  "int_bw",    "float_add",
    "float_mul", "float_div", "sf",       "gl_access", "loc_access",
};

inline constexpr std::size_t kNumStaticFeatures = kStaticFeatureNames.size();

struct KernelProfile {
  std::string name;

  // Instruction counts per work-item (Table 1 features).
  double int_add = 0.0;   ///< integer additions and subtractions
  double int_mul = 0.0;   ///< integer multiplications
  double int_div = 0.0;   ///< integer divisions
  double int_bw = 0.0;    ///< integer bitwise operations
  double float_add = 0.0; ///< floating point additions and subtractions
  double float_mul = 0.0; ///< floating point multiplications
  double float_div = 0.0; ///< floating point divisions
  double special_fn = 0.0; ///< special functions (sin, cos, exp, sqrt, ...)

  // Memory traffic per work-item, in bytes.
  double global_bytes = 0.0; ///< DRAM traffic (f_{gl_access})
  double local_bytes = 0.0;  ///< on-chip shared/local traffic (f_{loc_access})

  /// How many independent sub-tasks one work-item decomposes into on the
  /// device (>= 1). Bounds the dependent-chain length that sets the
  /// latency floor of undersubscribed launches: a stencil cell is one
  /// chain, but one "ligand" work-item fans out over restarts x atoms.
  /// Not a Table 1 feature (it is not visible to static analysis).
  double intra_item_parallelism = 1.0;

  /// Static feature vector in Table 1 order. Memory features are reported
  /// as access counts (4-byte words) as in the original feature set.
  std::array<double, kNumStaticFeatures> static_features() const noexcept;

  /// Total arithmetic operations per work-item.
  double total_ops() const noexcept;

  /// Floating point operations per work-item.
  double flops() const noexcept;

  /// Arithmetic intensity: flops per global byte (inf if no global bytes).
  double arithmetic_intensity() const noexcept;

  /// Element-wise accumulation (weighted), used to aggregate an
  /// application's kernels into one profile for the general-purpose model.
  KernelProfile& accumulate(const KernelProfile& other, double weight = 1.0);

  /// Element-wise scaling of all per-item quantities.
  KernelProfile scaled(double factor) const;
};

/// Throws dsem::contract_error unless all per-item quantities are finite
/// and non-negative.
void validate(const KernelProfile& profile);

} // namespace dsem::sim
