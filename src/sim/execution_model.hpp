// Roofline-style kernel execution model.
//
// A kernel's runtime at core frequency f is the max of a compute term
// (instruction work / effective issue rate, scaling 1/f) and a memory term
// (DRAM traffic / bandwidth, f-independent because the memory clock is
// fixed), each with a latency floor for undersubscribed launches, plus a
// constant launch overhead. This structure is what produces the paper's
// phenomenology: compute-bound kernels speed up with f, memory-bound ones
// don't, and small workloads are overhead-bound and barely react to f.
#pragma once

#include <cstddef>

#include "sim/device_spec.hpp"
#include "sim/kernel_profile.hpp"

namespace dsem::sim {

struct ExecutionBreakdown {
  double launch_s = 0.0;      ///< constant driver/runtime overhead
  double compute_tp_s = 0.0;  ///< throughput-limited compute time
  double compute_s = 0.0;     ///< max(throughput, latency floor)
  double mem_bw_s = 0.0;      ///< bandwidth-limited memory time
  double mem_s = 0.0;         ///< max(bandwidth, latency floor)
  double exec_s = 0.0;        ///< max(compute, mem): pipelines overlap
  double total_s = 0.0;       ///< launch + exec

  /// Fraction of exec time the compute pipes do throughput work (<= 1).
  double compute_utilization() const noexcept;
  /// Fraction of exec time the DRAM interface is saturated (<= 1).
  double memory_utilization() const noexcept;
};

/// Lane-cycles of issue work per work-item for this kernel on this device.
double cycles_per_item(const DeviceSpec& spec, const KernelProfile& kernel);

/// Time breakdown for launching `work_items` items at `core_mhz`.
/// Preconditions: work_items > 0, core_mhz > 0.
ExecutionBreakdown execute(const DeviceSpec& spec, const KernelProfile& kernel,
                           std::size_t work_items, double core_mhz);

} // namespace dsem::sim
