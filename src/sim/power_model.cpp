#include "sim/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsem::sim {

double voltage(const VoltageCurve& curve, double core_mhz, double f_max_mhz) {
  DSEM_ENSURE(f_max_mhz > curve.knee_mhz,
              "voltage curve knee must lie below f_max");
  if (core_mhz <= curve.knee_mhz) {
    return curve.v_min;
  }
  const double x =
      std::min(1.0, (core_mhz - curve.knee_mhz) / (f_max_mhz - curve.knee_mhz));
  return curve.v_min + (curve.v_max - curve.v_min) * std::pow(x, curve.exponent);
}

namespace {

/// f*V^2 scaling factor relative to (f_max, v_max).
double dvfs_factor(const DeviceSpec& spec, double core_mhz) {
  const double f_max = spec.core_frequencies.max();
  const double v = voltage(spec.power.voltage, core_mhz, f_max);
  const double v_max = spec.power.voltage.v_max;
  return (core_mhz / f_max) * (v / v_max) * (v / v_max);
}

} // namespace

EnergyBreakdown energy(const DeviceSpec& spec, const ExecutionBreakdown& exec,
                       double core_mhz) {
  DSEM_ENSURE(core_mhz > 0.0, "core frequency must be positive");
  const double dvfs = dvfs_factor(spec, core_mhz);

  EnergyBreakdown e;
  e.static_j = spec.power.static_w * exec.total_s;
  // Clock-tree power is partially gated when the pipelines idle (modern
  // GPUs clock-gate inactive partitions); 40% is the ungated floor.
  const double activity =
      std::max(exec.compute_utilization(), exec.memory_utilization());
  const double clock_gate = 0.4 + 0.6 * activity;
  e.clock_j = spec.power.clock_max_w * dvfs * clock_gate * exec.total_s;
  // Gating by throughput time (not wall time) makes per-op energy ~ V^2:
  // compute_j = P_max * dvfs * W*cpi/(lanes*f) ∝ V(f)^2 per unit of work.
  e.compute_j = spec.power.compute_max_w * dvfs * exec.compute_tp_s;
  e.mem_j = spec.power.mem_max_w * exec.mem_bw_s;
  e.total_j = e.static_j + e.clock_j + e.compute_j + e.mem_j;
  e.avg_power_w = exec.total_s > 0.0 ? e.total_j / exec.total_s : 0.0;
  return e;
}

double idle_power_w(const DeviceSpec& spec, double core_mhz) {
  return spec.power.static_w + spec.power.clock_max_w * dvfs_factor(spec, core_mhz);
}

} // namespace dsem::sim
