#include "sim/execution_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsem::sim {

double ExecutionBreakdown::compute_utilization() const noexcept {
  return exec_s > 0.0 ? std::min(1.0, compute_tp_s / exec_s) : 0.0;
}

double ExecutionBreakdown::memory_utilization() const noexcept {
  return exec_s > 0.0 ? std::min(1.0, mem_bw_s / exec_s) : 0.0;
}

double cycles_per_item(const DeviceSpec& spec, const KernelProfile& kernel) {
  const OpCosts& c = spec.op_costs;
  return kernel.int_add * c.int_add + kernel.int_mul * c.int_mul +
         kernel.int_div * c.int_div + kernel.int_bw * c.int_bw +
         kernel.float_add * c.float_add + kernel.float_mul * c.float_mul +
         kernel.float_div * c.float_div + kernel.special_fn * c.special_fn +
         kernel.local_bytes * c.local_byte;
}

ExecutionBreakdown execute(const DeviceSpec& spec, const KernelProfile& kernel,
                           std::size_t work_items, double core_mhz) {
  DSEM_ENSURE(work_items > 0, "kernel launch with zero work items");
  DSEM_ENSURE(core_mhz > 0.0, "core frequency must be positive");
  validate(kernel);

  const double f_hz = core_mhz * 1e6;
  const double w = static_cast<double>(work_items);

  ExecutionBreakdown b;
  b.launch_s = spec.launch_overhead_us * 1e-6;

  const double cpi = cycles_per_item(spec, kernel);
  if (cpi > 0.0) {
    const double lanes_eff =
        static_cast<double>(spec.total_lanes()) * spec.compute_efficiency;
    b.compute_tp_s = w * cpi / (lanes_eff * f_hz);
    // The floor is one dependent chain's length: a work-item's cycles
    // divided by its internal parallelism, stall-inflated. The blend with
    // the throughput term is a smooth p-norm rather than a hard max —
    // occupancy ramps gradually on real devices, and the smoothness keeps
    // the runtime a continuous family over workload size (which the
    // modeling layer interpolates across).
    const double chain_cycles = cpi / kernel.intra_item_parallelism;
    const double latency_floor = chain_cycles * spec.latency_factor / f_hz;
    b.compute_s = std::hypot(b.compute_tp_s, latency_floor);
  }

  if (kernel.global_bytes > 0.0) {
    const double bytes = w * kernel.global_bytes;
    b.mem_bw_s = bytes / (spec.mem_bandwidth_gbs * 1e9);
    const double latency_floor = spec.mem_latency_us * 1e-6;
    b.mem_s = std::max(b.mem_bw_s, latency_floor);
  }

  b.exec_s = std::max(b.compute_s, b.mem_s);
  b.total_s = b.launch_s + b.exec_s;
  return b;
}

} // namespace dsem::sim
