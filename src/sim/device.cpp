#include "sim/device.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "sim/profile_cache.hpp"

namespace dsem::sim {

Device::Device(DeviceSpec spec, NoiseConfig noise, std::uint64_t seed)
    : spec_(std::move(spec)), noise_(noise), seed_(seed), rng_(seed) {
  validate(spec_);
  DSEM_ENSURE(noise_.time_sigma >= 0.0 && noise_.energy_sigma >= 0.0,
              "noise sigmas must be non-negative");
  reset_frequency();
}

double Device::set_core_frequency(double mhz) {
  if (faults_.should_fail_set_frequency()) {
    throw TransientFault(FaultKind::kSetFrequency,
                         "set_core_frequency(" + std::to_string(mhz) +
                             ") rejected by " + spec_.name);
  }
  const double snapped = spec_.core_frequencies.snap(mhz);
  pinned_mhz_ = snapped;
  return snapped;
}

void Device::set_auto_frequency() {
  DSEM_ENSURE(spec_.auto_frequency_mhz > 0.0,
              "device has no auto governor: " + spec_.name);
  pinned_mhz_.reset();
}

void Device::reset_frequency() {
  if (spec_.has_fixed_default()) {
    pinned_mhz_ = spec_.core_frequencies.snap(spec_.default_core_frequency_mhz);
  } else {
    pinned_mhz_.reset();
  }
}

double Device::current_frequency() const {
  if (pinned_mhz_) {
    return *pinned_mhz_;
  }
  return spec_.core_frequencies.snap(spec_.auto_frequency_mhz);
}

double Device::default_frequency() const {
  if (spec_.has_fixed_default()) {
    return spec_.core_frequencies.snap(spec_.default_core_frequency_mhz);
  }
  return spec_.core_frequencies.snap(spec_.auto_frequency_mhz);
}

LaunchResult Device::launch(const KernelProfile& kernel,
                            std::size_t work_items, ProfileCache* cache) {
  if (faults_.should_fail_launch()) {
    throw TransientFault(FaultKind::kKernelLaunch,
                         "kernel launch aborted: " + kernel.name + " on " +
                             spec_.name);
  }
  const double f = current_frequency();
  ProfileCache::Cost cost;
  if (cache != nullptr) {
    cost = cache->lookup(spec_, kernel, work_items, f);
  } else {
    const ExecutionBreakdown exec = execute(spec_, kernel, work_items, f);
    cost = {exec.total_s, energy(spec_, exec, f).total_j};
  }

  LaunchResult out;
  out.frequency_mhz = f;
  out.time_s = apply_noise(cost.time_s, noise_.time_sigma);
  out.energy_j = apply_noise(cost.energy_j, noise_.energy_sigma);

  // Counters accumulate the true reading even when the *read* below
  // fails: the device consumed that energy whether or not we saw it.
  energy_j_ += out.energy_j;
  busy_s_ += out.time_s;
  ++launches_;

  // Simulated seconds/joules, not wall time: deterministic per replica
  // seed, so the merged histograms are stable across DSEM_THREADS.
  if (metrics::enabled()) {
    metrics::counter("sim.launches");
    metrics::histogram("sim.launch_time_s", out.time_s);
    metrics::histogram("sim.launch_energy_j", out.energy_j);
  }

  switch (faults_.energy_read_fault()) {
  case FaultInjector::EnergyFault::kNone:
    break;
  case FaultInjector::EnergyFault::kDropped:
    throw TransientFault(FaultKind::kEnergyRead,
                         "energy counter read failed on " + spec_.name);
  case FaultInjector::EnergyFault::kGarbage:
    out.energy_j = faults_.garbage_energy(out.energy_j);
    break;
  }
  out.avg_power_w = out.time_s > 0.0 ? out.energy_j / out.time_s : 0.0;
  return out;
}

ExecutionBreakdown Device::analyze(const KernelProfile& kernel,
                                   std::size_t work_items) const {
  return execute(spec_, kernel, work_items, current_frequency());
}

void Device::reset_counters() noexcept {
  energy_j_ = 0.0;
  busy_s_ = 0.0;
  launches_ = 0;
}

double Device::apply_noise(double value, double sigma) noexcept {
  if (sigma <= 0.0) {
    return value;
  }
  // Clamp at 4 sigma so a tail draw can never produce a negative reading.
  const double n = std::clamp(rng_.normal(0.0, sigma), -4.0 * sigma, 4.0 * sigma);
  return value * (1.0 + n);
}

} // namespace dsem::sim
