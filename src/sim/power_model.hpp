// CMOS DVFS power/energy model.
//
// Power splits into four structurally different terms:
//   static     — leakage/board, independent of f (cost of *time*)
//   clock tree — ~ f * V(f)^2, paid whenever the device is clocked, even
//                when pipelines idle (why up-clocking an overhead-bound
//                kernel still wastes energy)
//   compute    — ~ f * V(f)^2 gated by compute-pipe utilization; per-op
//                energy therefore scales with V(f)^2 only
//   memory     — gated by DRAM utilization, insensitive to the core clock
// The piecewise V(f) curve makes the top of the frequency range markedly
// energy-inefficient, reproducing the paper's super-linear energy cost of
// boosting.
#pragma once

#include "sim/device_spec.hpp"
#include "sim/execution_model.hpp"

namespace dsem::sim {

/// Operating voltage at `core_mhz` given the curve and the device maximum
/// frequency. Flat at v_min below the knee, power-law rise to v_max at
/// f_max, clamped outside the range.
double voltage(const VoltageCurve& curve, double core_mhz, double f_max_mhz);

struct EnergyBreakdown {
  double static_j = 0.0;
  double clock_j = 0.0;
  double compute_j = 0.0;
  double mem_j = 0.0;
  double total_j = 0.0;
  double avg_power_w = 0.0; ///< total_j / wall time
};

/// Energy of one kernel launch whose timing is `exec`, at `core_mhz`.
EnergyBreakdown energy(const DeviceSpec& spec, const ExecutionBreakdown& exec,
                       double core_mhz);

/// Instantaneous power draw while the device idles (clocked, no work).
double idle_power_w(const DeviceSpec& spec, double core_mhz);

} // namespace dsem::sim
