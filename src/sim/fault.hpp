// Deterministic fault injection for the simulated DVFS stack.
//
// Real DVFS hardware fails transiently: frequency-set requests are
// rejected under driver contention, energy-counter reads return garbage
// when an accumulator wraps or the SMI bus drops a transaction, and
// kernel launches abort on ECC or scheduler hiccups (Calore et al. and
// Ilager et al. both report noisy/failed sensor reads as a practical
// obstacle to collecting DVFS training sweeps). The injector reproduces
// those failure modes over the simulator at configurable rates.
//
// Determinism contract: an injector draws from its own xoshiro stream,
// seeded as derive_seed(device_seed, kFaultStreamSalt) — disjoint from
// the measurement-noise stream, so enabling faults never perturbs the
// noise a successful launch observes, and a zero-rate injector is
// bit-identical to no injector at all. Replica devices (parallel sweeps)
// derive their injector from the replica seed, making the fault schedule
// a pure function of grid coordinates: the same faults fire at the same
// grid points for any thread count.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace dsem::sim {

/// Per-operation fault probabilities; all zero (the default) disables
/// injection entirely.
struct FaultConfig {
  double set_frequency_rate = 0.0;      ///< set_core_frequency rejected
  double energy_read_drop_rate = 0.0;   ///< energy counter read unavailable
  double energy_read_garbage_rate = 0.0;///< energy counter returns garbage
  double launch_rate = 0.0;             ///< kernel launch aborts

  bool any() const noexcept {
    return set_frequency_rate > 0.0 || energy_read_drop_rate > 0.0 ||
           energy_read_garbage_rate > 0.0 || launch_rate > 0.0;
  }
  /// Sets every rate to `rate` except garbage reads, which get rate / 2
  /// (the rarer, nastier flavour). Convenience for one-knob CLIs.
  static FaultConfig uniform(double rate) noexcept {
    return {rate, rate, rate / 2.0, rate};
  }

  bool operator==(const FaultConfig&) const = default;
};

/// What failed, as the recovery layer sees it.
enum class FaultKind { kSetFrequency, kEnergyRead, kKernelLaunch };

const char* to_string(FaultKind kind) noexcept;

/// Thrown by the simulated device (and the queue's counter validation)
/// when an injected transient fault fires. Retryable by design: the
/// operation may be reissued and will redraw the fault schedule.
class TransientFault : public std::runtime_error {
public:
  TransientFault(FaultKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  FaultKind kind() const noexcept { return kind_; }

private:
  FaultKind kind_;
};

/// Salt separating the fault stream from the measurement-noise stream of
/// the same device seed.
inline constexpr std::uint64_t kFaultStreamSalt = 0xFA017D1CE;

/// Draws the fault schedule. Each should_* consumes one uniform draw only
/// when its rate is positive, so unused fault classes leave the stream
/// untouched.
class FaultInjector {
public:
  /// Inert injector: zero rates, never draws, never fires.
  FaultInjector() = default;

  FaultInjector(const FaultConfig& config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  const FaultConfig& config() const noexcept { return config_; }

  void reseed(std::uint64_t seed) noexcept { rng_.reseed(seed); }

  bool should_fail_set_frequency() noexcept {
    return fire(config_.set_frequency_rate);
  }

  bool should_fail_launch() noexcept { return fire(config_.launch_rate); }

  enum class EnergyFault { kNone, kDropped, kGarbage };

  /// One decision per energy-counter read; dropped and garbage reads are
  /// independent draws (dropped wins when both fire).
  EnergyFault energy_read_fault() noexcept {
    const bool dropped = fire(config_.energy_read_drop_rate);
    const bool garbage = fire(config_.energy_read_garbage_rate);
    if (dropped) {
      return EnergyFault::kDropped;
    }
    return garbage ? EnergyFault::kGarbage : EnergyFault::kNone;
  }

  /// A corrupted counter reading for a launch that truly consumed
  /// `true_energy_j`: a negative delta, as seen when a hardware energy
  /// accumulator resets mid-measurement.
  double garbage_energy(double true_energy_j) noexcept {
    return -(true_energy_j + 1.0) * rng_.uniform(1.0, 1000.0);
  }

  /// Faults fired so far (all kinds).
  std::uint64_t faults_injected() const noexcept { return injected_; }

private:
  bool fire(double rate) noexcept {
    if (rate <= 0.0) {
      return false;
    }
    if (rng_.uniform() < rate) {
      ++injected_;
      return true;
    }
    return false;
  }

  FaultConfig config_;
  Rng rng_{0};
  std::uint64_t injected_ = 0;
};

} // namespace dsem::sim
