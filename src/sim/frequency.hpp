// Core-clock frequency schedules for simulated devices.
//
// Mirrors what NVML / ROCm SMI expose: a finite, sorted list of supported
// core frequencies. The V100 in the paper exposes 196 core frequencies in
// [135, 1597] MHz and a single memory frequency (1107 MHz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsem::sim {

class FrequencySchedule {
public:
  FrequencySchedule() = default;

  /// Takes ownership of an arbitrary list; sorted ascending, deduplicated.
  explicit FrequencySchedule(std::vector<double> frequencies_mhz);

  /// Evenly spaced schedule of `count` frequencies spanning [lo, hi] MHz.
  static FrequencySchedule linear(double lo_mhz, double hi_mhz,
                                  std::size_t count);

  std::span<const double> frequencies() const noexcept { return freqs_; }
  std::size_t size() const noexcept { return freqs_.size(); }
  bool empty() const noexcept { return freqs_.empty(); }

  double min() const;
  double max() const;

  /// Closest supported frequency to the request (ties resolve downward).
  double snap(double mhz) const;

  /// Index of the closest supported frequency.
  std::size_t index_of(double mhz) const;

  bool contains(double mhz, double tol_mhz = 1e-9) const;

private:
  std::vector<double> freqs_;
};

} // namespace dsem::sim
