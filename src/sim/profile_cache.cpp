#include "sim/profile_cache.hpp"

#include <bit>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "sim/execution_model.hpp"
#include "sim/power_model.hpp"

namespace dsem::sim {

namespace {

ProfileCache::Cost compute_cost(const DeviceSpec& spec,
                                const KernelProfile& kernel,
                                std::size_t work_items, double core_mhz) {
  const ExecutionBreakdown exec = execute(spec, kernel, work_items, core_mhz);
  const EnergyBreakdown e = energy(spec, exec, core_mhz);
  return {exec.total_s, e.total_j};
}

} // namespace

std::size_t ProfileCache::KeyHash::operator()(const Key& key) const noexcept {
  // FNV-1a over the name bytes and the bit patterns of the doubles.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
  };
  for (char c : key.name) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  for (double v : key.values) {
    mix(std::bit_cast<std::uint64_t>(v));
  }
  return static_cast<std::size_t>(h);
}

ProfileCache::Cost ProfileCache::lookup(const DeviceSpec& spec,
                                        const KernelProfile& kernel,
                                        std::size_t work_items,
                                        double core_mhz) {
  Key key;
  key.name = spec.name + '\0' + kernel.name;
  key.values = {kernel.int_add,      kernel.int_mul,
                kernel.int_div,      kernel.int_bw,
                kernel.float_add,    kernel.float_mul,
                kernel.float_div,    kernel.special_fn,
                kernel.global_bytes, kernel.local_bytes,
                kernel.intra_item_parallelism,
                static_cast<double>(work_items), core_mhz};
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      // Which concurrent first lookup wins is a scheduling accident, so
      // the hit/miss split is timing-dependent (report-only), matching
      // the SweepReport determinism contract.
      trace::counter("cache.hits", 1.0,
                     trace::Reliability::kTimingDependent);
      metrics::counter("cache.hits", 1, metrics::Reliability::kWallClock);
      return it->second;
    }
    ++misses_;
    trace::counter("cache.misses", 1.0,
                   trace::Reliability::kTimingDependent);
    metrics::counter("cache.misses", 1, metrics::Reliability::kWallClock);
  }
  // Compute outside the lock; a concurrent miss for the same key derives
  // the identical value, so whichever insert wins is correct.
  const Cost cost = compute_cost(spec, kernel, work_items, core_mhz);
  std::lock_guard lock(mutex_);
  entries_.try_emplace(std::move(key), cost);
  return cost;
}

std::size_t ProfileCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::uint64_t ProfileCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ProfileCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

} // namespace dsem::sim
