#include "sim/kernel_ir.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dsem::sim {

std::string to_string(Op op) {
  switch (op) {
  case Op::kIAdd:
    return "iadd";
  case Op::kISub:
    return "isub";
  case Op::kIMul:
    return "imul";
  case Op::kIDiv:
    return "idiv";
  case Op::kAnd:
    return "and";
  case Op::kOr:
    return "or";
  case Op::kXor:
    return "xor";
  case Op::kShl:
    return "shl";
  case Op::kShr:
    return "shr";
  case Op::kFAdd:
    return "fadd";
  case Op::kFSub:
    return "fsub";
  case Op::kFMul:
    return "fmul";
  case Op::kFDiv:
    return "fdiv";
  case Op::kFma:
    return "fma";
  case Op::kSin:
    return "sin";
  case Op::kCos:
    return "cos";
  case Op::kTan:
    return "tan";
  case Op::kExp:
    return "exp";
  case Op::kLog:
    return "log";
  case Op::kSqrt:
    return "sqrt";
  case Op::kRsqrt:
    return "rsqrt";
  case Op::kPow:
    return "pow";
  case Op::kLoadGlobal:
    return "ld.global";
  case Op::kStoreGlobal:
    return "st.global";
  case Op::kLoadLocal:
    return "ld.local";
  case Op::kStoreLocal:
    return "st.local";
  }
  return "?";
}

bool is_memory_op(Op op) noexcept {
  switch (op) {
  case Op::kLoadGlobal:
  case Op::kStoreGlobal:
  case Op::kLoadLocal:
  case Op::kStoreLocal:
    return true;
  default:
    return false;
  }
}

KernelIr::KernelIr(std::string name) : name_(std::move(name)) {
  DSEM_ENSURE(!name_.empty(), "kernel IR needs a name");
}

KernelIr& KernelIr::emit(Op op, double count) {
  DSEM_ENSURE(!is_memory_op(op), "memory op requires emit_memory");
  DSEM_ENSURE(std::isfinite(count) && count >= 0.0,
              "instruction count must be finite and non-negative");
  body_.push_back(Instruction{op, count, 0.0});
  return *this;
}

KernelIr& KernelIr::emit_memory(Op op, double bytes, double count) {
  DSEM_ENSURE(is_memory_op(op), "emit_memory requires a memory op");
  DSEM_ENSURE(std::isfinite(bytes) && bytes > 0.0,
              "memory op needs positive bytes");
  DSEM_ENSURE(std::isfinite(count) && count >= 0.0,
              "instruction count must be finite and non-negative");
  body_.push_back(Instruction{op, count, bytes});
  return *this;
}

KernelIr& KernelIr::parallelism(double intra_item) {
  DSEM_ENSURE(intra_item >= 1.0, "intra-item parallelism must be >= 1");
  intra_item_parallelism_ = intra_item;
  return *this;
}

KernelProfile analyze(const KernelIr& ir) {
  KernelProfile p;
  p.name = ir.name();
  p.intra_item_parallelism = ir.intra_item_parallelism_;
  for (const Instruction& inst : ir.body()) {
    const double n = inst.count;
    switch (inst.op) {
    case Op::kIAdd:
    case Op::kISub:
      p.int_add += n;
      break;
    case Op::kIMul:
      p.int_mul += n;
      break;
    case Op::kIDiv:
      p.int_div += n;
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
      p.int_bw += n;
      break;
    case Op::kFAdd:
    case Op::kFSub:
      p.float_add += n;
      break;
    case Op::kFMul:
      p.float_mul += n;
      break;
    case Op::kFDiv:
      p.float_div += n;
      break;
    case Op::kFma:
      p.float_mul += n;
      p.float_add += n;
      break;
    case Op::kSin:
    case Op::kCos:
    case Op::kTan:
    case Op::kExp:
    case Op::kLog:
    case Op::kSqrt:
    case Op::kRsqrt:
    case Op::kPow:
      p.special_fn += n;
      break;
    case Op::kLoadGlobal:
    case Op::kStoreGlobal:
      p.global_bytes += n * inst.bytes;
      break;
    case Op::kLoadLocal:
    case Op::kStoreLocal:
      p.local_bytes += n * inst.bytes;
      break;
    }
  }
  validate(p);
  return p;
}

} // namespace dsem::sim
