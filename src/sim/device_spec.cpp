#include "sim/device_spec.hpp"

#include "common/error.hpp"

namespace dsem::sim {

std::string to_string(Vendor vendor) {
  switch (vendor) {
  case Vendor::kNvidia:
    return "NVIDIA";
  case Vendor::kAmd:
    return "AMD";
  case Vendor::kIntel:
    return "Intel";
  }
  return "unknown";
}

double DeviceSpec::peak_gflops(double core_mhz) const noexcept {
  // FMA issues one multiply-add per lane-cycle => 2 FLOP.
  return 2.0 * static_cast<double>(total_lanes()) * core_mhz * 1e-3;
}

void validate(const DeviceSpec& spec) {
  DSEM_ENSURE(!spec.name.empty(), "device needs a name");
  DSEM_ENSURE(spec.compute_units > 0, "compute_units must be positive");
  DSEM_ENSURE(spec.lanes_per_cu > 0, "lanes_per_cu must be positive");
  DSEM_ENSURE(spec.compute_efficiency > 0.0 && spec.compute_efficiency <= 1.0,
              "compute_efficiency must be in (0, 1]");
  DSEM_ENSURE(spec.mem_bandwidth_gbs > 0.0, "bandwidth must be positive");
  DSEM_ENSURE(spec.mem_latency_us >= 0.0, "latency must be non-negative");
  DSEM_ENSURE(spec.launch_overhead_us >= 0.0,
              "launch overhead must be non-negative");
  DSEM_ENSURE(spec.latency_factor >= 1.0, "latency_factor must be >= 1");
  DSEM_ENSURE(!spec.core_frequencies.empty(), "needs a frequency schedule");
  if (spec.has_fixed_default()) {
    DSEM_ENSURE(spec.core_frequencies.contains(
                    spec.core_frequencies.snap(spec.default_core_frequency_mhz)),
                "default frequency must snap into the schedule");
  } else {
    DSEM_ENSURE(spec.auto_frequency_mhz > 0.0,
                "auto-governed device needs auto_frequency_mhz");
  }
  const auto& v = spec.power.voltage;
  DSEM_ENSURE(v.v_min > 0.0 && v.v_max >= v.v_min, "invalid voltage curve");
  DSEM_ENSURE(v.knee_mhz >= 0.0 && v.exponent > 0.0, "invalid voltage curve");
  DSEM_ENSURE(spec.power.static_w >= 0.0 && spec.power.clock_max_w >= 0.0 &&
                  spec.power.compute_max_w >= 0.0 && spec.power.mem_max_w >= 0.0,
              "power terms must be non-negative");
}

DeviceSpec v100() {
  DeviceSpec spec;
  spec.name = "NVIDIA V100-SXM2-32GB (simulated)";
  spec.vendor = Vendor::kNvidia;
  spec.compute_units = 80;
  spec.lanes_per_cu = 64;
  spec.compute_efficiency = 0.75; // mature CUDA/SYCL stack, high occupancy
  spec.mem_bandwidth_gbs = 900.0;
  spec.mem_frequency_mhz = 1107.0;
  spec.mem_latency_us = 1.2;
  spec.launch_overhead_us = 8.0;
  spec.latency_factor = 10.0;
  // The paper's V100 exposes 196 core frequencies in [135, 1597] MHz.
  spec.core_frequencies = FrequencySchedule::linear(135.0, 1597.0, 196);
  spec.default_core_frequency_mhz = 1312.0; // default application clock
  spec.auto_frequency_mhz = 0.0;
  spec.power.static_w = 35.0;
  spec.power.clock_max_w = 60.0;
  spec.power.compute_max_w = 170.0;
  spec.power.mem_max_w = 55.0;
  // Steep tail: max boost sits far past the efficiency knee, which is what
  // makes the top of the range energy-expensive (paper Fig. 10b).
  spec.power.voltage = VoltageCurve{0.72, 1.25, 900.0, 2.0};
  validate(spec);
  return spec;
}

DeviceSpec mi100() {
  DeviceSpec spec;
  spec.name = "AMD MI100 (simulated)";
  spec.vendor = Vendor::kAmd;
  spec.compute_units = 120;
  spec.lanes_per_cu = 64;
  // The SYCL-on-ROCm stack achieves a substantially lower fraction of peak
  // than CUDA on V100 (the paper's Figs. 6-9 show ~3x longer runtimes);
  // modelled as a lower achievable-issue efficiency.
  spec.compute_efficiency = 0.18;
  spec.mem_bandwidth_gbs = 1228.0;
  spec.mem_frequency_mhz = 1200.0;
  spec.mem_latency_us = 1.6;
  spec.launch_overhead_us = 16.0;
  spec.latency_factor = 14.0;
  spec.core_frequencies = FrequencySchedule::linear(200.0, 1502.0, 151);
  spec.default_core_frequency_mhz = 0.0; // no fixed default on AMD
  // The "auto" performance level chases maximum clocks under load, which
  // is why the paper's AMD baselines sit at the top of the speedup range
  // (Fig. 10c/d: "this frequency always performs better").
  spec.auto_frequency_mhz = 1502.0;
  spec.power.static_w = 40.0;
  spec.power.clock_max_w = 60.0;
  spec.power.compute_max_w = 170.0;
  spec.power.mem_max_w = 60.0;
  spec.power.voltage = VoltageCurve{0.73, 1.22, 800.0, 1.8};
  validate(spec);
  return spec;
}

DeviceSpec intel_max1100() {
  DeviceSpec spec;
  spec.name = "Intel Data Center GPU Max 1100 (simulated)";
  spec.vendor = Vendor::kIntel;
  spec.compute_units = 56;   // Xe cores
  spec.lanes_per_cu = 128;   // 8 vector engines x 16 lanes
  spec.compute_efficiency = 0.40; // oneAPI/SYCL stack maturity
  spec.mem_bandwidth_gbs = 1229.0;
  spec.mem_frequency_mhz = 3200.0;
  spec.mem_latency_us = 1.4;
  spec.launch_overhead_us = 10.0;
  spec.latency_factor = 12.0;
  spec.core_frequencies = FrequencySchedule::linear(300.0, 1550.0, 126);
  spec.default_core_frequency_mhz = 900.0; // default GPU min/base clock
  spec.auto_frequency_mhz = 0.0;
  spec.power.static_w = 40.0;
  spec.power.clock_max_w = 55.0;
  spec.power.compute_max_w = 175.0;
  spec.power.mem_max_w = 60.0;
  spec.power.voltage = VoltageCurve{0.70, 1.15, 850.0, 1.9};
  validate(spec);
  return spec;
}

DeviceSpec preset_by_name(const std::string& name) {
  if (name == "v100") {
    return v100();
  }
  if (name == "mi100") {
    return mi100();
  }
  if (name == "max1100") {
    return intel_max1100();
  }
  DSEM_ENSURE(false, "unknown device preset: \"" + name + "\"");
  return {}; // unreachable
}

} // namespace dsem::sim
