#include "sim/frequency.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsem::sim {

FrequencySchedule::FrequencySchedule(std::vector<double> frequencies_mhz)
    : freqs_(std::move(frequencies_mhz)) {
  DSEM_ENSURE(!freqs_.empty(), "empty frequency schedule");
  for (double f : freqs_) {
    DSEM_ENSURE(f > 0.0, "frequencies must be positive");
  }
  std::sort(freqs_.begin(), freqs_.end());
  freqs_.erase(std::unique(freqs_.begin(), freqs_.end()), freqs_.end());
}

FrequencySchedule FrequencySchedule::linear(double lo_mhz, double hi_mhz,
                                            std::size_t count) {
  DSEM_ENSURE(count >= 2, "linear schedule needs at least two points");
  DSEM_ENSURE(lo_mhz > 0.0 && hi_mhz > lo_mhz, "invalid frequency range");
  std::vector<double> freqs(count);
  const double step = (hi_mhz - lo_mhz) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    freqs[i] = lo_mhz + step * static_cast<double>(i);
  }
  return FrequencySchedule(std::move(freqs));
}

double FrequencySchedule::min() const {
  DSEM_ENSURE(!freqs_.empty(), "empty schedule");
  return freqs_.front();
}

double FrequencySchedule::max() const {
  DSEM_ENSURE(!freqs_.empty(), "empty schedule");
  return freqs_.back();
}

std::size_t FrequencySchedule::index_of(double mhz) const {
  DSEM_ENSURE(!freqs_.empty(), "empty schedule");
  const auto it = std::lower_bound(freqs_.begin(), freqs_.end(), mhz);
  if (it == freqs_.begin()) {
    return 0;
  }
  if (it == freqs_.end()) {
    return freqs_.size() - 1;
  }
  const auto hi = static_cast<std::size_t>(it - freqs_.begin());
  const std::size_t lo = hi - 1;
  // Ties resolve downward: strict '<' keeps the lower frequency.
  return (mhz - freqs_[lo]) < (freqs_[hi] - mhz) ? lo : hi;
}

double FrequencySchedule::snap(double mhz) const {
  const std::size_t idx = index_of(mhz);
  // index_of resolves exact midpoints to the higher index; prefer lower.
  if (idx > 0 && std::abs(freqs_[idx - 1] - mhz) <= std::abs(freqs_[idx] - mhz)) {
    return freqs_[idx - 1];
  }
  return freqs_[idx];
}

bool FrequencySchedule::contains(double mhz, double tol_mhz) const {
  if (freqs_.empty()) {
    return false;
  }
  return std::abs(snap(mhz) - mhz) <= tol_mhz;
}

} // namespace dsem::sim
