// User-pluggable conservation laws.
//
// The Cronos design point the paper highlights: the solver is generic over
// a system of hyperbolic conservation laws  u_t + div F(u) = 0  supplied
// by the user. A law provides its flux per direction and the largest local
// signal speed; the solver supplies reconstruction, Riemann fluxes, time
// integration and boundaries.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>

namespace dsem::cronos {

/// Coordinate directions; also used as flux/stencil axis indices.
enum class Axis : int { kX = 0, kY = 1, kZ = 2 };

class ConservationLaw {
public:
  virtual ~ConservationLaw() = default;

  virtual std::string name() const = 0;
  virtual int num_vars() const = 0;

  /// Physical flux along `axis` for conserved state `u` (both num_vars wide).
  virtual void flux(Axis axis, std::span<const double> u,
                    std::span<double> out) const = 0;

  /// Largest |characteristic speed| along `axis` at state `u`.
  virtual double max_wavespeed(Axis axis, std::span<const double> u) const = 0;

  /// Throws dsem::contract_error for physically inadmissible states
  /// (negative density/pressure, ...). Default: everything admissible.
  virtual void validate_state(std::span<const double> u) const;

  /// Mirror a state across a wall normal to `axis` (used by reflecting
  /// boundaries): flip the components that are odd under the reflection.
  /// Default: no components to flip (scalar laws).
  virtual void reflect(Axis axis, std::span<double> u) const;
};

/// Linear advection of a scalar with constant velocity.
class AdvectionLaw final : public ConservationLaw {
public:
  explicit AdvectionLaw(std::array<double, 3> velocity);

  std::string name() const override { return "advection"; }
  int num_vars() const override { return 1; }
  void flux(Axis axis, std::span<const double> u,
            std::span<double> out) const override;
  double max_wavespeed(Axis axis, std::span<const double> u) const override;

  const std::array<double, 3>& velocity() const noexcept { return velocity_; }

private:
  std::array<double, 3> velocity_;
};

/// Multi-dimensional Burgers' equation: u_t + div(u²/2 · 1⃗) = 0.
class BurgersLaw final : public ConservationLaw {
public:
  std::string name() const override { return "burgers"; }
  int num_vars() const override { return 1; }
  void flux(Axis axis, std::span<const double> u,
            std::span<double> out) const override;
  double max_wavespeed(Axis axis, std::span<const double> u) const override;
};

/// Compressible Euler equations. Variables: [rho, mx, my, mz, E].
class EulerLaw final : public ConservationLaw {
public:
  explicit EulerLaw(double gamma = 5.0 / 3.0);

  std::string name() const override { return "euler"; }
  int num_vars() const override { return 5; }
  void flux(Axis axis, std::span<const double> u,
            std::span<double> out) const override;
  double max_wavespeed(Axis axis, std::span<const double> u) const override;
  void validate_state(std::span<const double> u) const override;
  void reflect(Axis axis, std::span<double> u) const override;

  double gamma() const noexcept { return gamma_; }
  double pressure(std::span<const double> u) const;
  double sound_speed(std::span<const double> u) const;

  /// Conserved state from primitives (rho, velocity, pressure).
  static std::array<double, 5> conserved(double rho,
                                         std::array<double, 3> vel,
                                         double pressure, double gamma);

private:
  double gamma_;
};

/// Ideal magnetohydrodynamics. Variables: [rho, mx, my, mz, E, Bx, By, Bz].
/// The finite-volume update does not enforce div B = 0 exactly (no
/// constrained transport); suitable for the 1-D and smooth test problems
/// used here, where div B stays at round-off.
class IdealMhdLaw final : public ConservationLaw {
public:
  explicit IdealMhdLaw(double gamma = 5.0 / 3.0);

  std::string name() const override { return "ideal_mhd"; }
  int num_vars() const override { return 8; }
  void flux(Axis axis, std::span<const double> u,
            std::span<double> out) const override;
  double max_wavespeed(Axis axis, std::span<const double> u) const override;
  void validate_state(std::span<const double> u) const override;
  void reflect(Axis axis, std::span<double> u) const override;

  double gamma() const noexcept { return gamma_; }
  double gas_pressure(std::span<const double> u) const;
  double fast_speed(Axis axis, std::span<const double> u) const;

  /// Conserved state from primitives (rho, velocity, pressure, B).
  static std::array<double, 8> conserved(double rho,
                                         std::array<double, 3> vel,
                                         double pressure,
                                         std::array<double, 3> b,
                                         double gamma);

private:
  double gamma_;
};

} // namespace dsem::cronos
