#include "cronos/grid.hpp"

#include <cmath>

namespace dsem::cronos {

std::string GridDims::to_string() const {
  return std::to_string(nx) + "x" + std::to_string(ny) + "x" +
         std::to_string(nz);
}

Field3D::Field3D(GridDims dims, double fill) : dims_(dims) {
  DSEM_ENSURE(dims.nx >= 1 && dims.ny >= 1 && dims.nz >= 1,
              "grid dimensions must be >= 1");
  const auto sx = static_cast<std::size_t>(dims.nx + 2 * kGhost);
  const auto sy = static_cast<std::size_t>(dims.ny + 2 * kGhost);
  const auto sz = static_cast<std::size_t>(dims.nz + 2 * kGhost);
  data_.assign(sx * sy * sz, fill);
}

void Field3D::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Field3D::interior_sum() const {
  double acc = 0.0;
  double comp = 0.0;
  for (int z = 0; z < dims_.nz; ++z) {
    for (int y = 0; y < dims_.ny; ++y) {
      for (int x = 0; x < dims_.nx; ++x) {
        const double v = at(z, y, x) - comp;
        const double t = acc + v;
        comp = (t - acc) - v;
        acc = t;
      }
    }
  }
  return acc;
}

double Field3D::interior_max_abs() const {
  double m = 0.0;
  for (int z = 0; z < dims_.nz; ++z) {
    for (int y = 0; y < dims_.ny; ++y) {
      for (int x = 0; x < dims_.nx; ++x) {
        m = std::max(m, std::abs(at(z, y, x)));
      }
    }
  }
  return m;
}

State::State(GridDims dims, int num_vars) : dims_(dims) {
  DSEM_ENSURE(num_vars >= 1, "State needs at least one variable");
  fields_.reserve(static_cast<std::size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) {
    fields_.emplace_back(dims);
  }
}

void State::cell(int z, int y, int x, std::span<double> out) const {
  DSEM_ASSERT(out.size() == fields_.size(), "cell: span width mismatch");
  for (std::size_t v = 0; v < fields_.size(); ++v) {
    out[v] = fields_[v].at(z, y, x);
  }
}

void State::set_cell(int z, int y, int x, std::span<const double> values) {
  DSEM_ASSERT(values.size() == fields_.size(), "set_cell: width mismatch");
  for (std::size_t v = 0; v < fields_.size(); ++v) {
    fields_[v].at(z, y, x) = values[v];
  }
}

} // namespace dsem::cronos
