// Finite-volume solver implementing the paper's Algorithm 1.
//
// Per timestep:  3 SSP-RK substeps, each = computeChanges (13-point
// MUSCL/Rusanov stencil + per-cell CFL rate) -> max-reduction of the CFL
// buffer -> integrateTime (RK combination) -> applyBoundary; then the
// timestep delta for the *next* step is adjusted from the reduced CFL,
// exactly as the pseudocode does.
//
// Every kernel is submitted through a synergy::Queue: in Validate mode the
// real numerics run on the host thread pool and the simulated device is
// charged the kernel's cost; in SimOnly mode only the device advances
// (state is frozen), which is what the frequency sweeps use.
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "cronos/grid.hpp"
#include "cronos/law.hpp"
#include "synergy/queue.hpp"

namespace dsem::cronos {

/// Largest variable count supported without heap-allocating in the inner
/// stencil loops (ideal MHD has 8).
inline constexpr int kMaxVars = 8;

enum class BoundaryKind { kPeriodic, kOutflow, kReflecting };

struct SolverConfig {
  GridDims dims;
  std::array<double, 3> domain_size = {1.0, 1.0, 1.0};
  double cfl_number = 0.4;
  std::array<BoundaryKind, 3> boundaries = {
      BoundaryKind::kPeriodic, BoundaryKind::kPeriodic,
      BoundaryKind::kPeriodic};
  double max_dt = 1e30; ///< cap when wavespeeds vanish
};

struct StepStats {
  double dt = 0.0;       ///< timestep advanced by this step
  double time = 0.0;     ///< simulation time after the step
  double max_rate = 0.0; ///< reduced CFL rate (1/s) driving the next dt
};

struct RunStats {
  int steps = 0;
  double simulated_time = 0.0;
};

class Solver {
public:
  Solver(std::shared_ptr<const ConservationLaw> law, SolverConfig config);

  const ConservationLaw& law() const noexcept { return *law_; }
  const SolverConfig& config() const noexcept { return config_; }
  State& state() noexcept { return u_; }
  const State& state() const noexcept { return u_; }

  double time() const noexcept { return time_; }
  double dt() const noexcept { return dt_; }
  double last_max_rate() const noexcept { return max_rate_; }

  std::array<double, 3> cell_size() const noexcept;
  /// Coordinates of the centre of interior cell (z, y, x).
  std::array<double, 3> cell_center(int z, int y, int x) const noexcept;

  /// Sets the interior from an initial condition sampled at cell centres
  /// (callback receives x, y, z and writes the conserved state), fills the
  /// halos, and primes the first timestep from the initial CFL rate.
  void initialize(
      const std::function<void(double, double, double, std::span<double>)>& ic);

  /// One full timestep (Algorithm 1 loop body) through the queue.
  StepStats step(synergy::Queue& queue);

  /// Fixed number of steps (used by the energy experiments).
  RunStats run(synergy::Queue& queue, int steps);

  /// Advance until `end_time` (Validate-mode only: needs real numerics).
  RunStats run_until(synergy::Queue& queue, double end_time,
                     int max_steps = 1000000);

  // Direct numeric entry points (host execution, no device accounting);
  // used by unit tests and by the step kernels' host implementations.
  void compute_changes(const State& u, State& dudt, Field3D& cfl) const;
  double reduce_max_rate(const Field3D& cfl) const;
  void apply_boundary();

private:
  void integrate_substep(int substep);
  void fill_axis_boundary(int axis);
  std::size_t ghost_cell_count() const noexcept;

  std::shared_ptr<const ConservationLaw> law_;
  SolverConfig config_;
  State u_;      ///< current state
  State u0_;     ///< state at the start of the RK step
  State dudt_;   ///< change buffer
  Field3D cfl_;  ///< per-cell CFL rate buffer
  double time_ = 0.0;
  double dt_ = 0.0;
  double max_rate_ = 0.0;
  bool initialized_ = false;
};

} // namespace dsem::cronos
