#include "cronos/kernels.hpp"

#include "common/error.hpp"

namespace dsem::cronos {

sim::KernelProfile compute_changes_profile(int num_vars) {
  const auto nv = static_cast<double>(num_vars);
  sim::KernelProfile p;
  p.name = "cronos::computeChanges";
  // Per axis: 4 face reconstructions (minmod: ~6 add-class ops per var),
  // 2 Rusanov fluxes (2 physical flux evaluations each; ~6 mul + 4 add per
  // var for MHD-class fluxes), plus the per-cell CFL rate (sqrt-heavy).
  p.float_add = 3.0 * (4.0 * 6.0 + 2.0 * 4.0) * nv + 6.0;
  p.float_mul = 3.0 * (2.0 * 6.0 + 4.0) * nv + 8.0;
  p.float_div = 2.0 * 3.0 + 2.0; // velocity = momentum / rho per axis pair
  p.special_fn = 3.0 + 1.0;      // sqrt in wavespeeds per axis + CFL
  p.int_add = 24.0;              // index arithmetic for the 13-pt gather
  p.int_mul = 12.0;
  // Effective DRAM traffic: the 13-point gather hits mostly cached lines;
  // ~5 unique state loads + dudt and cfl stores per cell.
  p.global_bytes = (5.0 * nv + nv + 1.0) * 8.0;
  p.local_bytes = 2.0 * nv * 8.0; // staged stencil values
  return p;
}

sim::KernelProfile cfl_reduce_profile() {
  sim::KernelProfile p;
  p.name = "cronos::cflReduce";
  p.float_add = 1.0; // compare-max
  p.int_add = 2.0;
  p.global_bytes = 8.0;
  p.local_bytes = 8.0; // tree reduction through shared memory
  return p;
}

sim::KernelProfile integrate_time_profile(int num_vars) {
  const auto nv = static_cast<double>(num_vars);
  sim::KernelProfile p;
  p.name = "cronos::integrateTime";
  p.float_add = 2.0 * nv; // axpy-style RK combination
  p.float_mul = 2.0 * nv;
  p.int_add = 6.0;
  p.global_bytes = 3.0 * nv * 8.0; // read u0 + dudt, write u
  return p;
}

sim::KernelProfile apply_boundary_profile(int num_vars) {
  const auto nv = static_cast<double>(num_vars);
  sim::KernelProfile p;
  p.name = "cronos::applyBoundary";
  p.float_add = 1.0;
  p.int_add = 10.0; // ghost index remapping
  p.int_mul = 4.0;
  p.global_bytes = 2.0 * nv * 8.0; // copy one cell per ghost cell
  return p;
}

std::size_t ghost_cell_count(const GridDims& dims) {
  const auto ext = [](int n) {
    return static_cast<std::size_t>(n + 2 * kGhost);
  };
  return ext(dims.nx) * ext(dims.ny) * ext(dims.nz) - dims.cell_count();
}

void submit_step_kernels(synergy::Queue& queue, const GridDims& dims,
                         int num_vars, int steps) {
  DSEM_ENSURE(steps >= 1, "steps must be >= 1");
  const std::size_t cells = dims.cell_count();
  const std::size_t ghosts = ghost_cell_count(dims);
  for (int step = 0; step < steps; ++step) {
    for (int substep = 0; substep < 3; ++substep) {
      queue.submit({compute_changes_profile(num_vars), cells, {}});
      queue.submit({cfl_reduce_profile(), cells, {}});
      queue.submit({integrate_time_profile(num_vars), cells, {}});
      queue.submit({apply_boundary_profile(num_vars), ghosts, {}});
    }
  }
}

} // namespace dsem::cronos
