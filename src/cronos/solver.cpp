#include "cronos/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"
#include "cronos/kernels.hpp"

namespace dsem::cronos {

namespace {

double minmod(double a, double b) noexcept {
  if (a * b <= 0.0) {
    return 0.0;
  }
  return std::abs(a) < std::abs(b) ? a : b;
}

} // namespace

Solver::Solver(std::shared_ptr<const ConservationLaw> law, SolverConfig config)
    : law_(std::move(law)), config_(config) {
  DSEM_ENSURE(law_ != nullptr, "Solver needs a conservation law");
  DSEM_ENSURE(law_->num_vars() >= 1 && law_->num_vars() <= kMaxVars,
              "unsupported variable count");
  DSEM_ENSURE(config_.cfl_number > 0.0 && config_.cfl_number < 1.0,
              "CFL number must be in (0, 1)");
  for (double s : config_.domain_size) {
    DSEM_ENSURE(s > 0.0, "domain size must be positive");
  }
  const int nv = law_->num_vars();
  u_ = State(config_.dims, nv);
  u0_ = State(config_.dims, nv);
  dudt_ = State(config_.dims, nv);
  cfl_ = Field3D(config_.dims);
}

std::array<double, 3> Solver::cell_size() const noexcept {
  return {config_.domain_size[0] / config_.dims.nx,
          config_.domain_size[1] / config_.dims.ny,
          config_.domain_size[2] / config_.dims.nz};
}

std::array<double, 3> Solver::cell_center(int z, int y, int x) const noexcept {
  const auto h = cell_size();
  return {(x + 0.5) * h[0], (y + 0.5) * h[1], (z + 0.5) * h[2]};
}

void Solver::initialize(
    const std::function<void(double, double, double, std::span<double>)>& ic) {
  const int nv = law_->num_vars();
  std::vector<double> cell(static_cast<std::size_t>(nv));
  for (int z = 0; z < config_.dims.nz; ++z) {
    for (int y = 0; y < config_.dims.ny; ++y) {
      for (int x = 0; x < config_.dims.nx; ++x) {
        const auto c = cell_center(z, y, x);
        ic(c[0], c[1], c[2], cell);
        law_->validate_state(cell);
        u_.set_cell(z, y, x, cell);
      }
    }
  }
  apply_boundary();
  // Prime the first timestep from the initial CFL rate (the pseudocode's
  // adjustTimestepDelta has no prior step to draw on).
  compute_changes(u_, dudt_, cfl_);
  max_rate_ = reduce_max_rate(cfl_);
  dt_ = max_rate_ > 0.0 ? std::min(config_.cfl_number / max_rate_,
                                   config_.max_dt)
                        : config_.max_dt;
  time_ = 0.0;
  initialized_ = true;
}

void Solver::compute_changes(const State& u, State& dudt, Field3D& cfl) const {
  const int nv = law_->num_vars();
  const auto h = cell_size();
  const GridDims dims = config_.dims;
  const auto rows = static_cast<std::size_t>(dims.nz) *
                    static_cast<std::size_t>(dims.ny);

  parallel_for(0, rows, [&](std::size_t row) {
    const int z = static_cast<int>(row) / dims.ny;
    const int y = static_cast<int>(row) % dims.ny;

    // Fixed-size scratch: states at the five stencil points of one axis,
    // the two reconstructed face states, and flux accumulators.
    std::array<std::array<double, kMaxVars>, 5> s{};
    std::array<double, kMaxVars> ul{};
    std::array<double, kMaxVars> ur{};
    std::array<double, kMaxVars> fl{};
    std::array<double, kMaxVars> fr{};
    std::array<double, kMaxVars> face_lo{};
    std::array<double, kMaxVars> face_hi{};
    std::array<double, kMaxVars> du{};
    std::array<double, kMaxVars> center{};

    const auto nvs = static_cast<std::size_t>(nv);
    const auto face_flux = [&](Axis axis,
                               const std::array<double, kMaxVars>& um1,
                               const std::array<double, kMaxVars>& u0c,
                               const std::array<double, kMaxVars>& up1,
                               const std::array<double, kMaxVars>& up2,
                               std::array<double, kMaxVars>& out) {
      for (std::size_t v = 0; v < nvs; ++v) {
        ul[v] = u0c[v] + 0.5 * minmod(u0c[v] - um1[v], up1[v] - u0c[v]);
        ur[v] = up1[v] - 0.5 * minmod(up1[v] - u0c[v], up2[v] - up1[v]);
      }
      const std::span<const double> ul_s(ul.data(), nvs);
      const std::span<const double> ur_s(ur.data(), nvs);
      law_->flux(axis, ul_s, std::span<double>(fl.data(), nvs));
      law_->flux(axis, ur_s, std::span<double>(fr.data(), nvs));
      const double speed = std::max(law_->max_wavespeed(axis, ul_s),
                                    law_->max_wavespeed(axis, ur_s));
      for (std::size_t v = 0; v < nvs; ++v) {
        out[v] = 0.5 * (fl[v] + fr[v]) - 0.5 * speed * (ur[v] - ul[v]);
      }
    };

    for (int x = 0; x < dims.nx; ++x) {
      du.fill(0.0);
      for (int axis_i = 0; axis_i < 3; ++axis_i) {
        const auto axis = static_cast<Axis>(axis_i);
        for (int o = -2; o <= 2; ++o) {
          auto& dst = s[static_cast<std::size_t>(o + 2)];
          const int xx = x + (axis_i == 0 ? o : 0);
          const int yy = y + (axis_i == 1 ? o : 0);
          const int zz = z + (axis_i == 2 ? o : 0);
          for (std::size_t v = 0; v < nvs; ++v) {
            dst[v] = u.var(static_cast<int>(v)).at(zz, yy, xx);
          }
        }
        face_flux(axis, s[0], s[1], s[2], s[3], face_lo);
        face_flux(axis, s[1], s[2], s[3], s[4], face_hi);
        const double inv_h = 1.0 / h[static_cast<std::size_t>(axis_i)];
        for (std::size_t v = 0; v < nvs; ++v) {
          du[v] -= (face_hi[v] - face_lo[v]) * inv_h;
        }
      }
      for (std::size_t v = 0; v < nvs; ++v) {
        dudt.var(static_cast<int>(v)).at(z, y, x) = du[v];
      }
      // Per-cell CFL rate: sum over axes of wavespeed / cell size.
      for (std::size_t v = 0; v < nvs; ++v) {
        center[v] = u.var(static_cast<int>(v)).at(z, y, x);
      }
      const std::span<const double> c_s(center.data(), nvs);
      double rate = 0.0;
      for (int axis_i = 0; axis_i < 3; ++axis_i) {
        rate += law_->max_wavespeed(static_cast<Axis>(axis_i), c_s) /
                h[static_cast<std::size_t>(axis_i)];
      }
      cfl.at(z, y, x) = rate;
    }
  });
}

double Solver::reduce_max_rate(const Field3D& cfl) const {
  const GridDims dims = config_.dims;
  const auto rows = static_cast<std::size_t>(dims.nz) *
                    static_cast<std::size_t>(dims.ny);
  return parallel_reduce(
      ThreadPool::global(), 0, rows, 0.0,
      [&](std::size_t row) {
        const int z = static_cast<int>(row) / dims.ny;
        const int y = static_cast<int>(row) % dims.ny;
        double m = 0.0;
        for (int x = 0; x < dims.nx; ++x) {
          m = std::max(m, cfl.at(z, y, x));
        }
        return m;
      },
      [](double a, double b) { return std::max(a, b); });
}

void Solver::integrate_substep(int substep) {
  const int nv = law_->num_vars();
  const GridDims dims = config_.dims;
  const auto rows = static_cast<std::size_t>(dims.nz) *
                    static_cast<std::size_t>(dims.ny);
  const double dt = dt_;

  // SSP-RK3 (Shu-Osher):  u1 = u0 + dt L(u0)
  //                       u2 = 3/4 u0 + 1/4 (u1 + dt L(u1))
  //                       u  = 1/3 u0 + 2/3 (u2 + dt L(u2))
  double a0 = 0.0;
  double a1 = 1.0;
  switch (substep) {
  case 0:
    a0 = 0.0;
    a1 = 1.0;
    break;
  case 1:
    a0 = 0.75;
    a1 = 0.25;
    break;
  case 2:
    a0 = 1.0 / 3.0;
    a1 = 2.0 / 3.0;
    break;
  default:
    DSEM_ENSURE(false, "substep must be 0, 1, or 2");
  }

  parallel_for(0, rows, [&](std::size_t row) {
    const int z = static_cast<int>(row) / dims.ny;
    const int y = static_cast<int>(row) % dims.ny;
    for (int v = 0; v < nv; ++v) {
      const Field3D& prev = u0_.var(v);
      const Field3D& ddt = dudt_.var(v);
      Field3D& cur = u_.var(v);
      for (int x = 0; x < dims.nx; ++x) {
        cur.at(z, y, x) = a0 * prev.at(z, y, x) +
                          a1 * (cur.at(z, y, x) + dt * ddt.at(z, y, x));
      }
    }
  });
}

void Solver::fill_axis_boundary(int axis) {
  const GridDims dims = config_.dims;
  const int nv = law_->num_vars();
  const BoundaryKind kind = config_.boundaries[static_cast<std::size_t>(axis)];
  const int n = axis == 0 ? dims.nx : (axis == 1 ? dims.ny : dims.nz);

  // When filling ghosts along `axis`, span the full halo extent of the
  // axes already processed (x before y before z) so corners are coherent.
  const int ex_lo = axis > 0 ? -kGhost : 0;
  const int ex_hi = axis > 0 ? dims.nx + kGhost : dims.nx;
  const int ey_lo = axis > 1 ? -kGhost : 0;
  const int ey_hi = axis > 1 ? dims.ny + kGhost : dims.ny;

  std::array<double, kMaxVars> cell{};
  const auto nvs = static_cast<std::size_t>(nv);

  const auto fill_cell = [&](int gz, int gy, int gx, int sz2, int sy2, int sx2,
                             bool reflect) {
    for (std::size_t v = 0; v < nvs; ++v) {
      cell[v] = u_.var(static_cast<int>(v)).at(sz2, sy2, sx2);
    }
    if (reflect) {
      law_->reflect(static_cast<Axis>(axis), std::span<double>(cell.data(), nvs));
    }
    for (std::size_t v = 0; v < nvs; ++v) {
      u_.var(static_cast<int>(v)).at(gz, gy, gx) = cell[v];
    }
  };

  const auto others_z = [&](int a_coord, int b, int c) {
    // Maps (axis coordinate, other coords) to (z, y, x).
    switch (axis) {
    case 0:
      return std::array<int, 3>{c, b, a_coord};
    case 1:
      return std::array<int, 3>{c, a_coord, b};
    default:
      return std::array<int, 3>{a_coord, c, b};
    }
  };

  // `b` iterates the first already-filled axis, `c` the second.
  const int b_lo = axis == 0 ? 0 : ex_lo;
  const int b_hi = axis == 0 ? dims.ny : ex_hi;
  const int c_lo = axis == 2 ? ey_lo : (axis == 1 ? 0 : 0);
  const int c_hi = axis == 2 ? ey_hi : (axis == 1 ? dims.nz : dims.nz);

  for (int c = c_lo; c < c_hi; ++c) {
    for (int b = b_lo; b < b_hi; ++b) {
      for (int g = 1; g <= kGhost; ++g) {
        int src_lo = 0;
        int src_hi = 0;
        bool reflect = false;
        switch (kind) {
        case BoundaryKind::kPeriodic:
          src_lo = n - g;
          src_hi = g - 1;
          break;
        case BoundaryKind::kOutflow:
          src_lo = 0;
          src_hi = n - 1;
          break;
        case BoundaryKind::kReflecting:
          src_lo = g - 1;
          src_hi = n - g;
          reflect = true;
          break;
        }
        const auto lo_dst = others_z(-g, b, c);
        const auto lo_src = others_z(src_lo, b, c);
        fill_cell(lo_dst[0], lo_dst[1], lo_dst[2], lo_src[0], lo_src[1],
                  lo_src[2], reflect);
        const auto hi_dst = others_z(n - 1 + g, b, c);
        const auto hi_src = others_z(src_hi, b, c);
        fill_cell(hi_dst[0], hi_dst[1], hi_dst[2], hi_src[0], hi_src[1],
                  hi_src[2], reflect);
      }
    }
  }
}

void Solver::apply_boundary() {
  for (int axis = 0; axis < 3; ++axis) {
    fill_axis_boundary(axis);
  }
}

std::size_t Solver::ghost_cell_count() const noexcept {
  const GridDims d = config_.dims;
  const auto ext = [&](int n) {
    return static_cast<std::size_t>(n + 2 * kGhost);
  };
  return ext(d.nx) * ext(d.ny) * ext(d.nz) - d.cell_count();
}

StepStats Solver::step(synergy::Queue& queue) {
  DSEM_ENSURE(initialized_, "Solver::step before initialize");
  const int nv = law_->num_vars();
  const std::size_t cells = config_.dims.cell_count();
  const std::size_t ghosts = ghost_cell_count();

  // Save the RK base state (only needed when the numerics actually run).
  if (queue.mode() == synergy::ExecMode::kValidate) {
    u0_ = u_;
  }

  for (int substep = 0; substep < 3; ++substep) {
    queue.submit({compute_changes_profile(nv), cells,
                  [this] { compute_changes(u_, dudt_, cfl_); }});
    queue.submit({cfl_reduce_profile(), cells,
                  [this] { max_rate_ = reduce_max_rate(cfl_); }});
    queue.submit({integrate_time_profile(nv), cells,
                  [this, substep] { integrate_substep(substep); }});
    queue.submit({apply_boundary_profile(nv), ghosts,
                  [this] { apply_boundary(); }});
  }

  StepStats stats;
  stats.dt = dt_;
  time_ += dt_;
  stats.time = time_;
  stats.max_rate = max_rate_;
  // adjustTimestepDelta: next step's dt from this step's reduced CFL.
  if (max_rate_ > 0.0) {
    dt_ = std::min(config_.cfl_number / max_rate_, config_.max_dt);
  }
  return stats;
}

RunStats Solver::run(synergy::Queue& queue, int steps) {
  DSEM_ENSURE(steps > 0, "run needs a positive step count");
  RunStats stats;
  for (int i = 0; i < steps; ++i) {
    const StepStats s = step(queue);
    ++stats.steps;
    stats.simulated_time = s.time;
  }
  return stats;
}

RunStats Solver::run_until(synergy::Queue& queue, double end_time,
                           int max_steps) {
  DSEM_ENSURE(queue.mode() == synergy::ExecMode::kValidate,
              "run_until needs Validate mode (real numerics drive time)");
  DSEM_ENSURE(end_time > time_, "end_time must lie in the future");
  RunStats stats;
  while (time_ < end_time && stats.steps < max_steps) {
    // Clip the final step onto end_time exactly.
    dt_ = std::min(dt_, end_time - time_);
    const StepStats s = step(queue);
    ++stats.steps;
    stats.simulated_time = s.time;
  }
  DSEM_ENSURE(time_ >= end_time, "run_until: max_steps hit before end_time");
  return stats;
}

} // namespace dsem::cronos
