// Static kernel profiles (Table 1 features) of the Cronos solver steps.
//
// Each of Algorithm 1's four kernels gets a per-cell operation/traffic
// estimate, parameterised by the law's variable count. The counts are
// derived from the solver's inner loops (reconstruction + two Rusanov
// fluxes per axis for computeChanges, etc.); what matters downstream is
// their *structure* — computeChanges has low arithmetic intensity, which
// is what makes Cronos memory-bound and down-clock-friendly on large grids.
#pragma once

#include "cronos/grid.hpp"
#include "sim/kernel_profile.hpp"
#include "synergy/queue.hpp"

namespace dsem::cronos {

/// 13-point stencil flux computation + per-cell CFL rate.
sim::KernelProfile compute_changes_profile(int num_vars);

/// Parallel max-reduction over the per-cell CFL buffer.
sim::KernelProfile cfl_reduce_profile();

/// One SSP-RK substep state update.
sim::KernelProfile integrate_time_profile(int num_vars);

/// Halo exchange / boundary fill (runs over surface cells only).
sim::KernelProfile apply_boundary_profile(int num_vars);

/// Ghost cells around an interior of `dims` with the solver's halo depth.
std::size_t ghost_cell_count(const GridDims& dims);

/// Submits the kernel sequence of one Solver::step (3 substeps x
/// {computeChanges, cflReduce, integrateTime, applyBoundary}) without any
/// host-side numerics — the fast path for frequency sweeps. A unit test
/// pins this sequence against the one Solver::step itself submits.
void submit_step_kernels(synergy::Queue& queue, const GridDims& dims,
                         int num_vars, int steps = 1);

} // namespace dsem::cronos
