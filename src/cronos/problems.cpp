#include "cronos/problems.hpp"

#include <cmath>
#include <numbers>

#include "cronos/law.hpp"

namespace dsem::cronos {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

double wrap(double v, double period) {
  const double r = std::fmod(v, period);
  return r < 0.0 ? r + period : r;
}
} // namespace

InitialCondition advection_gaussian(std::array<double, 3> center, double width,
                                    double amplitude, double background) {
  return [=](double x, double y, double z, std::span<double> u) {
    const double dx = x - center[0];
    const double dy = y - center[1];
    const double dz = z - center[2];
    const double r2 = dx * dx + dy * dy + dz * dz;
    u[0] = background + amplitude * std::exp(-r2 / (2.0 * width * width));
  };
}

double advected_gaussian_value(std::array<double, 3> pos,
                               std::array<double, 3> center, double width,
                               double amplitude, double background,
                               std::array<double, 3> velocity, double t,
                               std::array<double, 3> domain) {
  double r2 = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    // Minimum-image distance to the advected centre on the torus.
    const double c = wrap(center[d] + velocity[d] * t, domain[d]);
    double delta = std::abs(wrap(pos[d], domain[d]) - c);
    delta = std::min(delta, domain[d] - delta);
    r2 += delta * delta;
  }
  return background + amplitude * std::exp(-r2 / (2.0 * width * width));
}

InitialCondition burgers_sine(double amplitude, double mean) {
  return [=](double x, double /*y*/, double /*z*/, std::span<double> u) {
    u[0] = mean + amplitude * std::sin(kTwoPi * x);
  };
}

InitialCondition sod_shock_tube(double gamma) {
  return [=](double x, double /*y*/, double /*z*/, std::span<double> u) {
    const bool left = x < 0.5;
    const auto state = EulerLaw::conserved(left ? 1.0 : 0.125, {0.0, 0.0, 0.0},
                                           left ? 1.0 : 0.1, gamma);
    std::copy(state.begin(), state.end(), u.begin());
  };
}

InitialCondition euler_uniform(double rho, std::array<double, 3> vel,
                               double pressure, double gamma) {
  return [=](double /*x*/, double /*y*/, double /*z*/, std::span<double> u) {
    const auto state = EulerLaw::conserved(rho, vel, pressure, gamma);
    std::copy(state.begin(), state.end(), u.begin());
  };
}

InitialCondition brio_wu(double gamma) {
  return [=](double x, double /*y*/, double /*z*/, std::span<double> u) {
    const bool left = x < 0.5;
    const auto state = IdealMhdLaw::conserved(
        left ? 1.0 : 0.125, {0.0, 0.0, 0.0}, left ? 1.0 : 0.1,
        {0.75, left ? 1.0 : -1.0, 0.0}, gamma);
    std::copy(state.begin(), state.end(), u.begin());
  };
}

InitialCondition orszag_tang(double gamma) {
  return [=](double x, double y, double /*z*/, std::span<double> u) {
    const double rho = gamma * gamma;
    const double p = gamma;
    const std::array<double, 3> vel = {-std::sin(kTwoPi * y),
                                       std::sin(kTwoPi * x), 0.0};
    const std::array<double, 3> b = {-std::sin(kTwoPi * y),
                                     std::sin(2.0 * kTwoPi * x), 0.0};
    const auto state = IdealMhdLaw::conserved(rho, vel, p, b, gamma);
    std::copy(state.begin(), state.end(), u.begin());
  };
}

InitialCondition mhd_turbulence_ic(double gamma, double mach) {
  return [=](double x, double y, double z, std::span<double> u) {
    const double rho = 1.0;
    const double p = 1.0;
    const double cs = std::sqrt(gamma * p / rho);
    const double v0 = mach * cs;
    const std::array<double, 3> vel = {
        v0 * std::sin(kTwoPi * y) * std::cos(kTwoPi * z),
        v0 * std::sin(kTwoPi * z) * std::cos(kTwoPi * x),
        v0 * std::sin(kTwoPi * x) * std::cos(kTwoPi * y)};
    const double b0 = 0.2;
    const std::array<double, 3> b = {b0 * std::sin(kTwoPi * z),
                                     b0 * std::sin(kTwoPi * x),
                                     b0 * std::sin(kTwoPi * y)};
    const auto state = IdealMhdLaw::conserved(rho, vel, p, b, gamma);
    std::copy(state.begin(), state.end(), u.begin());
  };
}

} // namespace dsem::cronos
