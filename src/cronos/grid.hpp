// 3-D structured grid storage with ghost (halo) cells.
//
// Cronos is a finite-volume code: every interior cell needs access to a
// 2-cell neighbourhood in each direction (the paper's 13-point stencil),
// provided here as a fixed 2-deep halo. Indexing follows the paper's
// grid[Z][Y][X] convention; X is the fastest-varying (contiguous) axis.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dsem::cronos {

inline constexpr int kGhost = 2; ///< halo depth required by the stencil

struct GridDims {
  int nx = 1;
  int ny = 1;
  int nz = 1;

  std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
  std::string to_string() const;
  bool operator==(const GridDims&) const = default;
};

/// One scalar field over the grid including halos.
class Field3D {
public:
  Field3D() = default;
  explicit Field3D(GridDims dims, double fill = 0.0);

  const GridDims& dims() const noexcept { return dims_; }

  /// Interior indices run [0, n); halos extend [-kGhost, n + kGhost).
  double& at(int z, int y, int x) noexcept {
    return data_[index(z, y, x)];
  }
  double at(int z, int y, int x) const noexcept {
    return data_[index(z, y, x)];
  }

  std::span<double> raw() noexcept { return data_; }
  std::span<const double> raw() const noexcept { return data_; }

  void fill(double value);

  /// Sum over interior cells only (conservation checks).
  double interior_sum() const;

  /// Max |value| over interior cells.
  double interior_max_abs() const;

private:
  std::size_t index(int z, int y, int x) const noexcept {
    DSEM_ASSERT(x >= -kGhost && x < dims_.nx + kGhost, "x out of halo range");
    DSEM_ASSERT(y >= -kGhost && y < dims_.ny + kGhost, "y out of halo range");
    DSEM_ASSERT(z >= -kGhost && z < dims_.nz + kGhost, "z out of halo range");
    const auto sx = static_cast<std::size_t>(dims_.nx + 2 * kGhost);
    const auto sy = static_cast<std::size_t>(dims_.ny + 2 * kGhost);
    return (static_cast<std::size_t>(z + kGhost) * sy +
            static_cast<std::size_t>(y + kGhost)) *
               sx +
           static_cast<std::size_t>(x + kGhost);
  }

  GridDims dims_;
  std::vector<double> data_;
};

/// A set of conserved-variable fields over one grid.
class State {
public:
  State() = default;
  State(GridDims dims, int num_vars);

  const GridDims& dims() const noexcept { return dims_; }
  int num_vars() const noexcept { return static_cast<int>(fields_.size()); }

  Field3D& var(int v) { return fields_[static_cast<std::size_t>(v)]; }
  const Field3D& var(int v) const {
    return fields_[static_cast<std::size_t>(v)];
  }

  /// Gathers all variables of one cell into `out` (size num_vars).
  void cell(int z, int y, int x, std::span<double> out) const;
  /// Scatters `values` into all variables of one cell.
  void set_cell(int z, int y, int x, std::span<const double> values);

private:
  GridDims dims_;
  std::vector<Field3D> fields_;
};

} // namespace dsem::cronos
