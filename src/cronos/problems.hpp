// Canonical test problems and their reference solutions.
//
// Used three ways: unit tests validate the solver against analytic
// solutions (advection), classic references (Sod, Brio-Wu), and physical
// invariants; the examples run the showcase setups (Orszag-Tang, blast
// wave); the energy experiments just need *a* well-posed MHD workload per
// grid size, for which mhd_turbulence_ic is the default.
#pragma once

#include <array>
#include <functional>
#include <span>

namespace dsem::cronos {

using InitialCondition =
    std::function<void(double x, double y, double z, std::span<double> u)>;

/// Scalar Gaussian bump for the advection law; exactly translates with the
/// advection velocity under periodic boundaries.
InitialCondition advection_gaussian(std::array<double, 3> center,
                                    double width, double amplitude,
                                    double background = 0.0);

/// The analytic advection solution at time t (periodic unit cube).
double advected_gaussian_value(std::array<double, 3> pos,
                               std::array<double, 3> center, double width,
                               double amplitude, double background,
                               std::array<double, 3> velocity, double t,
                               std::array<double, 3> domain);

/// Scalar sine along x for Burgers (steepens into a shock at t = 1/(2*pi*a)).
InitialCondition burgers_sine(double amplitude, double mean = 0.0);

/// Sod shock tube along x for the Euler law (gamma typically 1.4):
/// (rho, p) = (1, 1) on the left, (0.125, 0.1) on the right of x = 0.5.
InitialCondition sod_shock_tube(double gamma);

/// Uniform Euler state moving with `vel` (exact solution: itself).
InitialCondition euler_uniform(double rho, std::array<double, 3> vel,
                               double pressure, double gamma);

/// Brio-Wu MHD shock tube along x (gamma = 2 in the original paper).
InitialCondition brio_wu(double gamma);

/// Orszag-Tang vortex in the x-y plane (classic 2-D MHD benchmark).
InitialCondition orszag_tang(double gamma);

/// Smooth, fully 3-D MHD "turbulence" seed: sinusoidal velocity and
/// magnetic perturbations over a uniform background. Well-posed at any
/// grid size; the default workload of the energy characterization.
InitialCondition mhd_turbulence_ic(double gamma, double mach = 0.5);

} // namespace dsem::cronos
