#include "cronos/law.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dsem::cronos {

void ConservationLaw::validate_state(std::span<const double> u) const {
  for (double v : u) {
    DSEM_ENSURE(std::isfinite(v), "non-finite state in " + name());
  }
}

void ConservationLaw::reflect(Axis /*axis*/, std::span<double> /*u*/) const {}

// --- Advection ---------------------------------------------------------------

AdvectionLaw::AdvectionLaw(std::array<double, 3> velocity)
    : velocity_(velocity) {}

void AdvectionLaw::flux(Axis axis, std::span<const double> u,
                        std::span<double> out) const {
  out[0] = velocity_[static_cast<std::size_t>(axis)] * u[0];
}

double AdvectionLaw::max_wavespeed(Axis axis,
                                   std::span<const double> /*u*/) const {
  return std::abs(velocity_[static_cast<std::size_t>(axis)]);
}

// --- Burgers -----------------------------------------------------------------

void BurgersLaw::flux(Axis /*axis*/, std::span<const double> u,
                      std::span<double> out) const {
  out[0] = 0.5 * u[0] * u[0];
}

double BurgersLaw::max_wavespeed(Axis /*axis*/,
                                 std::span<const double> u) const {
  return std::abs(u[0]);
}

// --- Euler -------------------------------------------------------------------

namespace {
constexpr double kDensityFloor = 1e-12;
} // namespace

EulerLaw::EulerLaw(double gamma) : gamma_(gamma) {
  DSEM_ENSURE(gamma > 1.0, "Euler gamma must exceed 1");
}

double EulerLaw::pressure(std::span<const double> u) const {
  const double rho = u[0];
  const double kinetic =
      0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
  return (gamma_ - 1.0) * (u[4] - kinetic);
}

double EulerLaw::sound_speed(std::span<const double> u) const {
  return std::sqrt(gamma_ * std::max(pressure(u), 0.0) /
                   std::max(u[0], kDensityFloor));
}

void EulerLaw::flux(Axis axis, std::span<const double> u,
                    std::span<double> out) const {
  const auto d = static_cast<std::size_t>(axis);
  const double rho = std::max(u[0], kDensityFloor);
  const double vd = u[1 + d] / rho;
  const double p = pressure(u);
  out[0] = u[1 + d];
  out[1] = u[1] * vd;
  out[2] = u[2] * vd;
  out[3] = u[3] * vd;
  out[1 + d] += p;
  out[4] = (u[4] + p) * vd;
}

double EulerLaw::max_wavespeed(Axis axis, std::span<const double> u) const {
  const auto d = static_cast<std::size_t>(axis);
  const double rho = std::max(u[0], kDensityFloor);
  return std::abs(u[1 + d] / rho) + sound_speed(u);
}

void EulerLaw::validate_state(std::span<const double> u) const {
  ConservationLaw::validate_state(u);
  DSEM_ENSURE(u[0] > 0.0, "Euler: non-positive density");
  DSEM_ENSURE(pressure(u) > 0.0, "Euler: non-positive pressure");
}

void EulerLaw::reflect(Axis axis, std::span<double> u) const {
  u[1 + static_cast<std::size_t>(axis)] *= -1.0;
}

std::array<double, 5> EulerLaw::conserved(double rho,
                                          std::array<double, 3> vel,
                                          double pressure, double gamma) {
  const double kinetic =
      0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
  return {rho, rho * vel[0], rho * vel[1], rho * vel[2],
          pressure / (gamma - 1.0) + kinetic};
}

// --- Ideal MHD ----------------------------------------------------------------

IdealMhdLaw::IdealMhdLaw(double gamma) : gamma_(gamma) {
  DSEM_ENSURE(gamma > 1.0, "MHD gamma must exceed 1");
}

double IdealMhdLaw::gas_pressure(std::span<const double> u) const {
  const double rho = std::max(u[0], kDensityFloor);
  const double kinetic =
      0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
  const double magnetic =
      0.5 * (u[5] * u[5] + u[6] * u[6] + u[7] * u[7]);
  return (gamma_ - 1.0) * (u[4] - kinetic - magnetic);
}

void IdealMhdLaw::flux(Axis axis, std::span<const double> u,
                       std::span<double> out) const {
  const auto d = static_cast<std::size_t>(axis);
  const double rho = std::max(u[0], kDensityFloor);
  const std::array<double, 3> v = {u[1] / rho, u[2] / rho, u[3] / rho};
  const std::array<double, 3> b = {u[5], u[6], u[7]};
  const double p_gas = gas_pressure(u);
  const double b_sq = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
  const double p_total = p_gas + 0.5 * b_sq;
  const double vb = v[0] * b[0] + v[1] * b[1] + v[2] * b[2];
  const double vd = v[d];
  const double bd = b[d];

  out[0] = u[1 + d];
  for (std::size_t i = 0; i < 3; ++i) {
    out[1 + i] = u[1 + i] * vd - bd * b[i];
  }
  out[1 + d] += p_total;
  out[4] = (u[4] + p_total) * vd - bd * vb;
  for (std::size_t i = 0; i < 3; ++i) {
    out[5 + i] = b[i] * vd - bd * v[i];
  }
  out[5 + d] = 0.0; // B_d is advected by the transverse terms only
}

double IdealMhdLaw::fast_speed(Axis axis, std::span<const double> u) const {
  const auto d = static_cast<std::size_t>(axis);
  const double rho = std::max(u[0], kDensityFloor);
  const double a_sq = gamma_ * std::max(gas_pressure(u), 0.0) / rho;
  const double b_sq = (u[5] * u[5] + u[6] * u[6] + u[7] * u[7]) / rho;
  const double bd_sq = u[5 + d] * u[5 + d] / rho;
  const double sum = a_sq + b_sq;
  const double disc =
      std::max(sum * sum - 4.0 * a_sq * bd_sq, 0.0);
  return std::sqrt(0.5 * (sum + std::sqrt(disc)));
}

double IdealMhdLaw::max_wavespeed(Axis axis, std::span<const double> u) const {
  const auto d = static_cast<std::size_t>(axis);
  const double rho = std::max(u[0], kDensityFloor);
  return std::abs(u[1 + d] / rho) + fast_speed(axis, u);
}

void IdealMhdLaw::validate_state(std::span<const double> u) const {
  ConservationLaw::validate_state(u);
  DSEM_ENSURE(u[0] > 0.0, "MHD: non-positive density");
  DSEM_ENSURE(gas_pressure(u) > 0.0, "MHD: non-positive gas pressure");
}

void IdealMhdLaw::reflect(Axis axis, std::span<double> u) const {
  const auto d = static_cast<std::size_t>(axis);
  u[1 + d] *= -1.0; // normal momentum
  u[5 + d] *= -1.0; // normal magnetic field component
}

std::array<double, 8> IdealMhdLaw::conserved(double rho,
                                             std::array<double, 3> vel,
                                             double pressure,
                                             std::array<double, 3> b,
                                             double gamma) {
  const double kinetic =
      0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
  const double magnetic = 0.5 * (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
  return {rho,
          rho * vel[0],
          rho * vel[1],
          rho * vel[2],
          pressure / (gamma - 1.0) + kinetic + magnetic,
          b[0],
          b[1],
          b[2]};
}

} // namespace dsem::cronos
