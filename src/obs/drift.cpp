#include "obs/drift.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace dsem::obs {

DriftMonitor::DriftMonitor(DriftConfig config) : config_(config) {
  DSEM_ENSURE(config_.window > 0, "drift: window must be > 0");
  DSEM_ENSURE(config_.quantile >= 0.0 && config_.quantile <= 1.0,
              "drift: quantile must be in [0, 1]");
  DSEM_ENSURE(config_.threshold > 0.0, "drift: threshold must be > 0");
  DSEM_ENSURE(config_.min_samples > 0, "drift: min_samples must be > 0");
}

void DriftMonitor::observe(const std::string& model, double time_residual,
                           double energy_residual) {
  DSEM_ENSURE(!model.empty(), "drift: empty model name");
  Entry& entry = entries_[model];
  entry.time_hist.observe(time_residual);
  entry.energy_hist.observe(energy_residual);
  entry.window_time.push_back(time_residual);
  entry.window_energy.push_back(energy_residual);
  if (entry.window_time.size() > config_.window) {
    entry.window_time.pop_front();
    entry.window_energy.pop_front();
  }
}

std::vector<ArtifactDrift> DriftMonitor::report() const {
  std::vector<ArtifactDrift> out;
  out.reserve(entries_.size());
  for (const auto& [model, entry] : entries_) {
    ArtifactDrift drift;
    drift.model = model;
    drift.samples = entry.time_hist.count;
    drift.time_residual = entry.time_hist;
    drift.energy_residual = entry.energy_hist;
    const std::vector<double> window_time(entry.window_time.begin(),
                                          entry.window_time.end());
    const std::vector<double> window_energy(entry.window_energy.begin(),
                                            entry.window_energy.end());
    drift.window_time_quantile = stats::quantile(window_time,
                                                 config_.quantile);
    drift.window_energy_quantile =
        stats::quantile(window_energy, config_.quantile);
    drift.drifted = window_time.size() >= config_.min_samples &&
                    (drift.window_time_quantile > config_.threshold ||
                     drift.window_energy_quantile > config_.threshold);
    out.push_back(std::move(drift));
  }
  return out;
}

json::Value DriftMonitor::to_json() const {
  const auto residual_json = [](const metrics::HistogramSnapshot& hist) {
    auto out = json::Value::object();
    out.set("count", hist.count);
    out.set("min", hist.min);
    out.set("max", hist.max);
    out.set("p50", hist.quantile(0.5));
    out.set("p90", hist.quantile(0.9));
    out.set("p99", hist.quantile(0.99));
    return out;
  };
  auto artifacts = json::Value::array();
  for (const ArtifactDrift& drift : report()) {
    auto obj = json::Value::object();
    obj.set("model", drift.model);
    obj.set("samples", drift.samples);
    obj.set("time_residual", residual_json(drift.time_residual));
    obj.set("energy_residual", residual_json(drift.energy_residual));
    obj.set("window_time_quantile", drift.window_time_quantile);
    obj.set("window_energy_quantile", drift.window_energy_quantile);
    obj.set("drifted", drift.drifted);
    artifacts.push_back(std::move(obj));
  }
  return artifacts;
}

} // namespace dsem::obs
