#include "obs/slo.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dsem::obs {

json::Value SloReport::to_json() const {
  auto out = json::Value::object();
  out.set("events", events);
  out.set("violations", violations);
  out.set("budget", budget);
  out.set("violation_rate", violation_rate);
  out.set("total_burn", total_burn);
  out.set("peak_window_rate", peak_window_rate);
  out.set("peak_burn", peak_burn);
  out.set("peak_window_end_s", peak_window_end_s);
  out.set("exhausted", exhausted);
  return out;
}

SloTracker::SloTracker(double budget, double window_s)
    : budget_(budget), window_s_(window_s) {
  DSEM_ENSURE(budget_ > 0.0 && budget_ <= 1.0,
              "slo: budget must be a fraction in (0, 1]");
  DSEM_ENSURE(window_s_ > 0.0, "slo: window must be > 0");
}

void SloTracker::add(double time_s, bool violation) {
  events_.push_back({time_s, violation});
}

SloReport SloTracker::report() const {
  SloReport out;
  out.budget = budget_;
  out.events = static_cast<std::uint64_t>(events_.size());
  if (events_.empty()) {
    return out;
  }

  // Sort by time; stable so same-time events keep insertion order and
  // the sweep below is a pure function of the event multiset.
  std::vector<Event> sorted(events_);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     return a.time_s < b.time_s;
                   });

  for (const Event& event : sorted) {
    if (event.violation) {
      ++out.violations;
    }
  }
  out.violation_rate = static_cast<double>(out.violations) /
                       static_cast<double>(out.events);
  out.total_burn = out.violation_rate / budget_;
  out.exhausted = out.total_burn > 1.0;

  // Exact trailing-window sweep: for every event, the window (end -
  // window_s, end] ending at it. Two pointers, O(n) after the sort.
  std::size_t begin = 0;
  std::uint64_t window_violations = 0;
  std::uint64_t window_events = 0;
  for (std::size_t end = 0; end < sorted.size(); ++end) {
    ++window_events;
    if (sorted[end].violation) {
      ++window_violations;
    }
    while (sorted[begin].time_s <= sorted[end].time_s - window_s_) {
      --window_events;
      if (sorted[begin].violation) {
        --window_violations;
      }
      ++begin;
    }
    const double rate = static_cast<double>(window_violations) /
                        static_cast<double>(window_events);
    if (rate > out.peak_window_rate) {
      out.peak_window_rate = rate;
      out.peak_window_end_s = sorted[end].time_s;
    }
  }
  out.peak_burn = out.peak_window_rate / budget_;
  return out;
}

} // namespace dsem::obs
