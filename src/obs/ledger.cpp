#include "obs/ledger.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dsem::obs {

namespace {

std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t h = 0xcbf29ce484222325ULL) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

json::Value to_json(const RequestRecord& r) {
  auto out = json::Value::object();
  out.set("index", r.index);
  out.set("id", r.id);
  out.set("application", r.application);
  out.set("model", r.model);
  out.set("arrival_s", r.arrival_s);
  out.set("queue_wait_s", r.queue_wait_s);
  out.set("service_s", r.service_s);
  out.set("completion_s", r.completion_s);
  out.set("latency_s", r.latency_s);
  out.set("cache_hit", r.cache_hit);
  out.set("shed", r.shed);
  out.set("batch", r.batch);
  out.set("freq_mhz", r.freq_mhz);
  out.set("predicted_time_s", r.predicted_time_s);
  out.set("predicted_energy_j", r.predicted_energy_j);
  out.set("max_slowdown", r.max_slowdown);
  out.set("budget_infeasible", r.budget_infeasible);
  out.set("cause", to_string(r.cause));
  return out;
}

json::Value to_json(const JobRecord& j) {
  auto out = json::Value::object();
  out.set("index", j.index);
  out.set("id", j.id);
  out.set("application", j.application);
  out.set("model", j.model);
  out.set("rank", j.rank);
  out.set("freq_mhz", j.freq_mhz);
  out.set("arrival_s", j.arrival_s);
  out.set("start_s", j.start_s);
  out.set("finish_s", j.finish_s);
  out.set("deadline_s", j.deadline_s);
  out.set("queue_wait_s", j.queue_wait_s);
  out.set("predicted_time_s", j.predicted_time_s);
  out.set("predicted_energy_j", j.predicted_energy_j);
  out.set("true_time_s", j.true_time_s);
  out.set("true_energy_j", j.true_energy_j);
  out.set("time_residual", j.time_residual);
  out.set("energy_residual", j.energy_residual);
  out.set("slack_consumed", j.slack_consumed);
  out.set("infeasible", j.infeasible);
  out.set("rejected", j.rejected);
  out.set("missed", j.missed);
  out.set("cause", to_string(j.cause));
  return out;
}

/// Miss-cause tally with every taxonomy key present (stable field set for
/// goldens and dsem_inspect even when a cause never occurs).
template <typename Record>
json::Value tally_causes(const std::vector<Record>& records) {
  std::uint64_t counts[5] = {};
  for (const Record& record : records) {
    ++counts[static_cast<std::size_t>(record.cause)];
  }
  auto out = json::Value::object();
  out.set("none", counts[0]);
  out.set("shed", counts[1]);
  out.set("infeasible", counts[2]);
  out.set("model_error", counts[3]);
  out.set("placement", counts[4]);
  return out;
}

json::Value energy_map_json(const std::map<std::string, double>& by_app) {
  auto out = json::Value::object();
  for (const auto& [app, joules] : by_app) {
    out.set(app, joules);
  }
  return out;
}

} // namespace

const char* to_string(MissCause cause) noexcept {
  switch (cause) {
  case MissCause::kNone:
    return "none";
  case MissCause::kShed:
    return "shed";
  case MissCause::kInfeasible:
    return "infeasible";
  case MissCause::kModelError:
    return "model_error";
  case MissCause::kPlacement:
    return "placement";
  }
  return "unknown";
}

std::string derive_record_id(const char* kind, std::uint64_t index) {
  return std::string(kind) + "-" + hex16(derive_seed(fnv1a64(kind), index));
}

Ledger::Ledger(LedgerConfig config) : config_(std::move(config)) {}

void Ledger::add(RequestRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  requests_.push_back(std::move(record));
}

void Ledger::add(JobRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  jobs_.push_back(std::move(record));
}

void Ledger::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  requests_.clear();
  jobs_.clear();
}

json::Value Ledger::to_json(bool summary_only) const {
  const std::lock_guard<std::mutex> lock(mutex_);

  auto doc = json::Value::object();
  doc.set("schema", kLedgerSchema);
  doc.set("program", config_.program);

  auto config = json::Value::object();
  auto drift_cfg = json::Value::object();
  drift_cfg.set("window", config_.drift.window);
  drift_cfg.set("quantile", config_.drift.quantile);
  drift_cfg.set("threshold", config_.drift.threshold);
  drift_cfg.set("min_samples", config_.drift.min_samples);
  config.set("drift", std::move(drift_cfg));
  auto slo_cfg = json::Value::object();
  slo_cfg.set("latency_objective_s", config_.slo.latency_objective_s);
  slo_cfg.set("latency_budget", config_.slo.latency_budget);
  slo_cfg.set("miss_budget", config_.slo.miss_budget);
  slo_cfg.set("window_s", config_.slo.window_s);
  config.set("slo", std::move(slo_cfg));
  doc.set("config", std::move(config));

  // Request-stream summary: everything accumulates in record-append
  // order so the energy sums reconcile bit-exactly with ServeStats.
  std::uint64_t served = 0, shed = 0, cache_hits = 0, cache_misses = 0;
  double request_energy = 0.0;
  std::map<std::string, double> request_energy_by_app;
  SloTracker latency_slo(config_.slo.latency_budget, config_.slo.window_s);
  for (const RequestRecord& r : requests_) {
    if (r.shed) {
      ++shed;
    } else {
      ++served;
      if (r.cache_hit) {
        ++cache_hits;
      } else {
        ++cache_misses;
      }
      request_energy += r.predicted_energy_j;
      request_energy_by_app[r.application] += r.predicted_energy_j;
    }
    latency_slo.add(r.completion_s,
                    r.shed || r.latency_s > config_.slo.latency_objective_s);
  }

  // Job-stream summary (same record-order discipline vs SchedStats).
  std::uint64_t completed = 0, rejected = 0, infeasible = 0, missed = 0;
  double predicted_energy = 0.0, true_energy = 0.0;
  std::map<std::string, double> job_energy_by_app;
  SloTracker deadline_slo(config_.slo.miss_budget, config_.slo.window_s);
  DriftMonitor drift(config_.drift);
  for (const JobRecord& j : jobs_) {
    if (j.missed) {
      ++missed; // rejected jobs count too (SchedStats::misses semantics)
    }
    if (j.rejected) {
      ++rejected;
    } else {
      ++completed;
      predicted_energy += j.predicted_energy_j;
      true_energy += j.true_energy_j;
      job_energy_by_app[j.application] += j.true_energy_j;
      if (!j.model.empty()) {
        drift.observe(j.model, j.time_residual, j.energy_residual);
      }
    }
    if (j.infeasible) {
      ++infeasible;
    }
    deadline_slo.add(j.rejected ? j.arrival_s : j.finish_s,
                     j.rejected || j.missed);
  }

  auto summary = json::Value::object();
  auto requests = json::Value::object();
  requests.set("count", requests_.size());
  requests.set("served", served);
  requests.set("shed", shed);
  requests.set("cache_hits", cache_hits);
  requests.set("cache_misses", cache_misses);
  requests.set("predicted_energy_j", request_energy);
  requests.set("energy_by_application", energy_map_json(request_energy_by_app));
  requests.set("miss_causes", tally_causes(requests_));
  requests.set("slo", latency_slo.report().to_json());
  summary.set("requests", std::move(requests));

  auto jobs = json::Value::object();
  jobs.set("count", jobs_.size());
  jobs.set("completed", completed);
  jobs.set("rejected", rejected);
  jobs.set("infeasible", infeasible);
  jobs.set("missed", missed);
  jobs.set("predicted_energy_j", predicted_energy);
  jobs.set("true_energy_j", true_energy);
  jobs.set("energy_by_application", energy_map_json(job_energy_by_app));
  jobs.set("miss_causes", tally_causes(jobs_));
  jobs.set("slo", deadline_slo.report().to_json());
  summary.set("jobs", std::move(jobs));

  summary.set("drift", drift.to_json());

  // Digest of the full record arrays: the committed summary-view goldens
  // pin every record byte-for-byte without storing them.
  auto request_array = json::Value::array();
  for (const RequestRecord& r : requests_) {
    request_array.push_back(obs::to_json(r));
  }
  auto job_array = json::Value::array();
  for (const JobRecord& j : jobs_) {
    job_array.push_back(obs::to_json(j));
  }
  summary.set("records_digest",
              hex16(fnv1a64(job_array.dump(),
                            fnv1a64(request_array.dump()))));
  doc.set("summary", std::move(summary));

  if (!summary_only) {
    doc.set("requests", std::move(request_array));
    doc.set("jobs", std::move(job_array));
  }
  return doc;
}

void Ledger::write_file(const std::string& path) const {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open ledger output file: " + path);
  to_json(false).write(out, 2);
  out << "\n";
  DSEM_ENSURE(out.good(), "failed writing ledger output file: " + path);
}

Ledger& Ledger::global() {
  static Ledger* ledger = new Ledger;
  return *ledger;
}

namespace detail {

std::atomic<bool> g_enabled{false};

} // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void write_json_file(const std::string& path) {
  Ledger::global().write_file(path);
}

namespace {

/// DSEM_LEDGER=path: enable at load time, write the JSON at exit
/// (mirrors the DSEM_METRICS / DSEM_TRACE plumbing).
std::string& env_ledger_path() {
  static std::string* path = new std::string;
  return *path;
}

void write_env_ledger() {
  const std::string& path = env_ledger_path();
  if (!path.empty()) {
    write_json_file(path);
  }
}

bool init_from_env() {
  const char* env = std::getenv("DSEM_LEDGER");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  env_ledger_path() = env;
  set_enabled(true);
  std::atexit(write_env_ledger);
  return true;
}

[[maybe_unused]] const bool g_env_initialized = init_from_env();

} // namespace

} // namespace dsem::obs
