// SLO tracking in simulated time: objective budgets and sliding-window
// burn rates (DESIGN.md §7.14).
//
// An SLO here is "at most `budget` of events may violate the objective".
// The tracker consumes (simulated time, violated?) events — served
// latencies against a latency objective, job completions against their
// deadlines — and reports two burn rates:
//  - total burn: overall violation fraction / budget (1.0 = the error
//    budget is exactly spent);
//  - peak window burn: the worst violation fraction over any trailing
//    `window_s`-second window, again normalized by the budget — the
//    standard multi-window burn-rate alerting signal, except computed
//    exactly over the whole run because time is simulated.
//
// Deterministic: events are sorted by (time, insertion order) before the
// exact two-pointer window sweep, so the report is a pure function of
// the event multiset.
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.hpp"

namespace dsem::obs {

struct SloConfig {
  /// Served-latency objective for request streams, simulated seconds.
  double latency_objective_s = 0.005;
  /// Fraction of requests allowed to violate it (shed counts as a
  /// violation: a shed request got no answer at all).
  double latency_budget = 0.02;
  /// Fraction of jobs allowed to miss their deadline.
  double miss_budget = 0.05;
  /// Trailing window width for the peak burn rate, simulated seconds.
  double window_s = 10.0;

  bool operator==(const SloConfig&) const = default;
};

/// Burn-rate report for one objective.
struct SloReport {
  std::uint64_t events = 0;
  std::uint64_t violations = 0;
  double budget = 0.0;
  double violation_rate = 0.0;    ///< violations / events
  double total_burn = 0.0;        ///< violation_rate / budget
  double peak_window_rate = 0.0;  ///< worst trailing-window fraction
  double peak_burn = 0.0;         ///< peak_window_rate / budget
  double peak_window_end_s = 0.0; ///< when the worst window ended
  bool exhausted = false;         ///< total_burn > 1

  json::Value to_json() const;
};

class SloTracker {
public:
  /// `budget` is the allowed violation fraction; `window_s` the trailing
  /// window width (simulated seconds, > 0).
  SloTracker(double budget, double window_s);

  /// Adds one event at simulated time `time_s`. Order-insensitive up to
  /// ties (the report sorts), so the loops add in accounting order.
  void add(double time_s, bool violation);

  std::uint64_t events() const noexcept {
    return static_cast<std::uint64_t>(events_.size());
  }

  SloReport report() const;

private:
  struct Event {
    double time_s = 0.0;
    bool violation = false;
  };

  double budget_;
  double window_s_;
  std::vector<Event> events_;
};

} // namespace dsem::obs
