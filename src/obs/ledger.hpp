// End-to-end attribution ledger: per-request / per-job energy and
// latency accounting (DESIGN.md §7.14).
//
// The serve loop and the cluster scheduler report only aggregates
// (p50/p99, shed, misses, cluster energy); the ledger is the record
// layer underneath them — one entry per serve::ServeLoop request and one
// per sched::ClusterScheduler job, each with a stable id and the full
// attribution of where its latency and energy went: queue wait, cache
// hit/miss, service cost, chosen clock, predicted vs simulated-observed
// runtime/energy, deadline slack consumed, and a miss cause from the
// taxonomy below. The "dsem-ledger-v1" JSON export is the drill-down
// input of examples/dsem_inspect.
//
// Determinism contract (same discipline as trace/metrics, §7.8):
//  - Every recorded field is simulated time/energy or a pure function of
//    the trace — never wall clock. Records are appended by the serial
//    accounting phases of the serve loop and the scheduler, so record
//    order, every field, and the serialized document are bit-identical
//    for any DSEM_THREADS (LedgerDeterminism goldens, pools 1/2/8).
//  - Stable ids derive from the record's stream kind and trace index
//    alone: id = "<req|job>-" + 16 hex digits of
//    derive_seed(fnv1a64(kind), index). The same trace position gets the
//    same id under every policy, pool size, and run.
//  - The disabled path is one relaxed-atomic load and branch per call
//    site, like trace and metrics (overhead regression test < 1 µs/op).
//
// Enabling: set the DSEM_LEDGER environment variable to a path (the JSON
// ledger is written there at process exit), pass --ledger-out to the CLI
// binaries, or hand the loops an explicit sink (ServeConfig::ledger /
// SchedConfig::ledger) — an explicit sink records regardless of the
// global switch, which is what the tests use.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/drift.hpp"
#include "obs/slo.hpp"

namespace dsem::obs {

inline constexpr const char* kLedgerSchema = "dsem-ledger-v1";

/// Why an entry missed its objective. One taxonomy for both streams:
/// requests only ever miss by being shed; jobs miss for one of three
/// attributable reasons, decided in this precedence order:
///  - kInfeasible: no candidate clock was *predicted* to meet the
///    deadline (the scheduler fell back to run-at-max or rejected).
///  - kModelError: the chosen clock was predicted feasible, and the job
///    would have missed even starting at arrival (true runtime alone
///    exceeds the deadline window) — the prediction was wrong.
///  - kPlacement: the job would have met its deadline starting at
///    arrival; queue wait on the chosen rank pushed it past — the
///    placement, not the model, caused the miss.
enum class MissCause : std::uint8_t {
  kNone,       ///< met its objective (or a request that was served)
  kShed,       ///< request dropped by admission control
  kInfeasible, ///< no predicted-feasible clock (fallback or rejection)
  kModelError, ///< predicted feasible, but the prediction was wrong
  kPlacement,  ///< feasible at arrival, late because of queue wait
};

const char* to_string(MissCause cause) noexcept;

/// One serve::ServeLoop request. All times are simulated seconds;
/// energy is the model's predicted joules for the advised answer (the
/// serve loop never executes the workload).
struct RequestRecord {
  std::uint64_t index = 0; ///< trace position
  std::string id;          ///< stable: see derive_record_id
  std::string application;
  std::string model; ///< "app/device@origin"; "" when shed
  double arrival_s = 0.0;
  double queue_wait_s = 0.0; ///< admission to service start (shed: to shed)
  double service_s = 0.0;    ///< hit or miss service cost; 0 when shed
  double completion_s = 0.0; ///< shed time for shed requests
  double latency_s = 0.0;    ///< completion - arrival
  bool cache_hit = false;
  bool shed = false;
  std::uint64_t batch = 0; ///< 1-based dispatch index; 0 when shed
  double freq_mhz = 0.0;   ///< advised clock; 0 when shed
  double predicted_time_s = 0.0;
  double predicted_energy_j = 0.0;
  double max_slowdown = 0.0;
  bool budget_infeasible = false;
  MissCause cause = MissCause::kNone; ///< kShed or kNone

  bool operator==(const RequestRecord&) const = default;
};

/// One sched::ClusterScheduler job. Predicted values are the model's
/// anchored estimates at the executed clock (0 for the baselines, which
/// never consult a model); true values come from the job's replica run.
struct JobRecord {
  std::uint64_t index = 0; ///< trace position
  std::string id;          ///< stable: see derive_record_id
  std::string application;
  std::string model; ///< "app/device@origin"; "" for the baselines
  int rank = -1;     ///< -1 when rejected
  double freq_mhz = 0.0;
  double arrival_s = 0.0;
  double start_s = 0.0;
  double finish_s = 0.0;
  double deadline_s = 0.0;
  double queue_wait_s = 0.0; ///< start - arrival
  double predicted_time_s = 0.0;
  double predicted_energy_j = 0.0;
  double true_time_s = 0.0;
  double true_energy_j = 0.0;
  /// Relative prediction residuals |predicted - true| / true; 0 when no
  /// model was consulted (these records are excluded from drift folds).
  double time_residual = 0.0;
  double energy_residual = 0.0;
  /// Fraction of the deadline window the job consumed:
  /// (finish - arrival) / (deadline - arrival). > 1 means missed.
  double slack_consumed = 0.0;
  bool infeasible = false;
  bool rejected = false;
  bool missed = false;
  MissCause cause = MissCause::kNone;

  bool operator==(const JobRecord&) const = default;
};

/// Stable record id: kind ("req" | "job") + "-" + 16 hex digits of
/// derive_seed(fnv1a64(kind), index). Pure function of its arguments.
std::string derive_record_id(const char* kind, std::uint64_t index);

struct LedgerConfig {
  std::string program; ///< provenance stamped into the document
  DriftConfig drift;
  /// Served-latency objective (requests: violation = shed or latency
  /// above latency_objective_s, budgeted by latency_budget) and the
  /// deadline-miss objective (jobs: violation = missed, budgeted by
  /// miss_budget) share the sliding window width.
  SloConfig slo;
};

/// The record collector. Thread-safe (mutex-guarded appends), but the
/// determinism contract assumes records arrive from the loops' serial
/// accounting phases; to_json is a pure function of the records and the
/// config.
class Ledger {
public:
  explicit Ledger(LedgerConfig config = {});

  void add(RequestRecord record);
  void add(JobRecord record);

  const std::vector<RequestRecord>& requests() const noexcept {
    return requests_;
  }
  const std::vector<JobRecord>& jobs() const noexcept { return jobs_; }
  LedgerConfig& config() noexcept { return config_; }
  const LedgerConfig& config() const noexcept { return config_; }

  void clear();

  /// "dsem-ledger-v1" document: config, a summary (per-stream counts and
  /// energy totals, miss-cause breakdown, per-artifact drift report, SLO
  /// burn, and an FNV-1a digest of the full record arrays), and — unless
  /// `summary_only` — the record arrays themselves. Deterministic: byte-
  /// identical for any DSEM_THREADS on a deterministic pipeline. The
  /// committed goldens pin the summary view; its digest field extends
  /// byte-identity to every record.
  json::Value to_json(bool summary_only = false) const;

  /// Pretty-printed to_json(false) with a trailing newline.
  void write_file(const std::string& path) const;

  /// The process-wide ledger the --ledger-out / DSEM_LEDGER plumbing
  /// records into. Never destroyed.
  static Ledger& global();

private:
  mutable std::mutex mutex_;
  LedgerConfig config_;
  std::vector<RequestRecord> requests_;
  std::vector<JobRecord> jobs_;
};

namespace detail {

extern std::atomic<bool> g_enabled;

} // namespace detail

/// True when the global ledger is recording. The only cost the loops pay
/// when the ledger is off: one relaxed atomic load and a branch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns global recording on or off (DSEM_LEDGER and --ledger-out call
/// this).
void set_enabled(bool on) noexcept;

/// Record into the global ledger when enabled (the loops' call sites).
inline void record(RequestRecord record) {
  if (enabled()) {
    Ledger::global().add(std::move(record));
  }
}
inline void record(JobRecord record) {
  if (enabled()) {
    Ledger::global().add(std::move(record));
  }
}

/// Writes the global ledger as pretty-printed JSON to `path` (throws on
/// I/O error).
void write_json_file(const std::string& path);

} // namespace dsem::obs
