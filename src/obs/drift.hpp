// Model-drift monitor: per-artifact prediction-residual tracking
// (DESIGN.md §7.14).
//
// DSO-style deployments retrain on the signal the ledger's job records
// carry anyway: the relative residual between what the deployed model
// predicted and what execution observed. The monitor folds those
// residuals per artifact into two views:
//  - an all-time histogram on the common/metrics log-bucket geometry
//    (8 buckets/octave), compact enough to live inside the ledger JSON;
//  - a sliding window of the most recent `window` residuals, whose exact
//    quantile (common/statistics semantics) drives the drift flag —
//    drifted when the windowed quantile of either the time or the energy
//    residual exceeds `threshold` with at least `min_samples` in the
//    window.
//
// Deterministic: folds happen in record order (the loops' serial
// accounting phases) and every statistic is a pure function of the folded
// sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace dsem::obs {

struct DriftConfig {
  /// Residual samples per artifact in the sliding window.
  std::size_t window = 256;
  /// Windowed quantile compared against the threshold (0.9 = p90).
  double quantile = 0.9;
  /// Relative-residual level that flags drift (0.25 = 25% error).
  double threshold = 0.25;
  /// Minimum window occupancy before the flag can raise (early traffic
  /// should not trip it on a handful of unlucky jobs).
  std::size_t min_samples = 32;

  bool operator==(const DriftConfig&) const = default;
};

/// One artifact's drift report.
struct ArtifactDrift {
  std::string model; ///< "app/device@origin"
  std::uint64_t samples = 0;
  /// All-time residual distributions (metrics log-bucket geometry).
  metrics::HistogramSnapshot time_residual;
  metrics::HistogramSnapshot energy_residual;
  /// Exact quantiles over the current window (common/statistics).
  double window_time_quantile = 0.0;
  double window_energy_quantile = 0.0;
  bool drifted = false;
};

class DriftMonitor {
public:
  explicit DriftMonitor(DriftConfig config = {});

  /// Folds one job's residuals for `model`. Call in record order.
  void observe(const std::string& model, double time_residual,
               double energy_residual);

  /// Per-artifact reports, sorted by model name (map order).
  std::vector<ArtifactDrift> report() const;

  /// JSON fragment used by the ledger summary: one object per artifact
  /// with residual quantiles and the drift flag.
  json::Value to_json() const;

private:
  struct Entry {
    metrics::HistogramSnapshot time_hist;
    metrics::HistogramSnapshot energy_hist;
    std::deque<double> window_time;
    std::deque<double> window_energy;
  };

  DriftConfig config_;
  std::map<std::string, Entry> entries_;
};

} // namespace dsem::obs
