// Distributed Cronos execution over a cluster (1-D domain decomposition).
//
// The global grid is split into contiguous Z-slabs, one per rank; every
// substep each rank runs the usual kernel sequence on its slab and then
// exchanges two-cell-deep halos with its neighbours (the Celerity runtime
// would generate exactly these transfers from the 13-point stencil's range
// mappers). The step makespan is the slowest rank's compute plus the halo
// exchange; cluster energy adds NIC draw during communication.
#pragma once

#include "celerity/cluster.hpp"
#include "cronos/grid.hpp"

namespace dsem::celerity {

struct Partition {
  std::vector<int> z_cells; ///< interior Z-extent per rank (sums to nz)

  int ranks() const noexcept { return static_cast<int>(z_cells.size()); }
};

/// Near-even contiguous split of `nz` planes over `ranks`.
Partition partition_z(int nz, int ranks);

/// Bytes one rank sends per halo exchange (both directions, all
/// variables, 2-deep halos; boundary ranks send one direction less).
double halo_bytes_per_exchange(const cronos::GridDims& global, int num_vars,
                               bool has_lower_neighbor,
                               bool has_upper_neighbor);

struct DistributedRunStats {
  int steps = 0;
  double makespan_s = 0.0;      ///< wall time of the whole run
  double compute_time_s = 0.0;  ///< slowest-rank kernel time, accumulated
  double comm_time_s = 0.0;     ///< halo-exchange time, accumulated
  double device_energy_j = 0.0; ///< sum over ranks
  double network_energy_j = 0.0;
  double total_energy_j() const noexcept {
    return device_energy_j + network_energy_j;
  }
};

/// Runs `steps` Cronos timesteps of an MHD-sized problem (num_vars
/// conserved variables) on the cluster, device-cost simulation only.
DistributedRunStats run_distributed_cronos(Cluster& cluster,
                                           const cronos::GridDims& global,
                                           int num_vars, int steps);

} // namespace dsem::celerity
