#include "celerity/cluster.hpp"

#include "common/error.hpp"

namespace dsem::celerity {

double transfer_time_s(const InterconnectSpec& net, double bytes) {
  DSEM_ENSURE(bytes >= 0.0, "negative transfer size");
  if (bytes == 0.0) {
    return 0.0;
  }
  return net.latency_us * 1e-6 + bytes / (net.bandwidth_gbs * 1e9);
}

Cluster::Cluster(const sim::DeviceSpec& spec, ClusterConfig config,
                 sim::NoiseConfig noise, std::uint64_t seed)
    : config_(config) {
  DSEM_ENSURE(config.nodes >= 1, "cluster needs at least one node");
  DSEM_ENSURE(config.network.bandwidth_gbs > 0.0,
              "network bandwidth must be positive");
  DSEM_ENSURE(config.network.latency_us >= 0.0,
              "network latency must be non-negative");
  sim_devices_.reserve(static_cast<std::size_t>(config.nodes));
  devices_.reserve(static_cast<std::size_t>(config.nodes));
  for (int rank = 0; rank < config.nodes; ++rank) {
    sim_devices_.push_back(std::make_unique<sim::Device>(
        spec, noise, seed + static_cast<std::uint64_t>(rank) * 0x9e37u));
    devices_.push_back(
        std::make_unique<synergy::Device>(*sim_devices_.back()));
  }
}

synergy::Device& Cluster::device(int rank) {
  DSEM_ENSURE(rank >= 0 && rank < size(), "rank out of range");
  return *devices_[static_cast<std::size_t>(rank)];
}

const synergy::Device& Cluster::device(int rank) const {
  DSEM_ENSURE(rank >= 0 && rank < size(), "rank out of range");
  return *devices_[static_cast<std::size_t>(rank)];
}

namespace {

/// Applies `request` to one rank, translating a transient rejection into
/// a recorded outcome instead of unwinding the broadcast mid-cluster.
template <typename Request>
Cluster::RankClockResult apply_clock_request(synergy::Device& device,
                                             int rank,
                                             const Request& request) {
  Cluster::RankClockResult result;
  result.rank = rank;
  try {
    request(device);
  } catch (const sim::TransientFault& fault) {
    result.ok = false;
    result.error = fault.what();
  }
  result.actual_mhz = device.current_frequency();
  return result;
}

} // namespace

std::vector<Cluster::RankClockResult> Cluster::set_frequency_all(double mhz) {
  std::vector<RankClockResult> results;
  results.reserve(devices_.size());
  for (int rank = 0; rank < size(); ++rank) {
    results.push_back(apply_clock_request(
        *devices_[static_cast<std::size_t>(rank)], rank,
        [mhz](synergy::Device& device) { device.set_frequency(mhz); }));
  }
  return results;
}

std::vector<Cluster::RankClockResult> Cluster::reset_frequency_all() {
  std::vector<RankClockResult> results;
  results.reserve(devices_.size());
  for (int rank = 0; rank < size(); ++rank) {
    results.push_back(apply_clock_request(
        *devices_[static_cast<std::size_t>(rank)], rank,
        [](synergy::Device& device) { device.reset_frequency(); }));
  }
  return results;
}

double Cluster::total_device_energy_j() const {
  double acc = 0.0;
  for (const auto& device : devices_) {
    acc += device->energy_joules();
  }
  return acc;
}

} // namespace dsem::celerity
