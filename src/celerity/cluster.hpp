// Celerity-style distributed execution substrate.
//
// The Cronos code of the paper was ported to SYCL for single-node runs and
// to Celerity for distributed-memory clusters (§6). This module models the
// cluster: N identical simulated GPUs (one per rank) behind per-rank
// SYnergy devices, plus an interconnect cost model for halo exchanges.
// Energy accounting is cluster-wide: device energy + NIC energy during
// communication.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "synergy/device.hpp"

namespace dsem::celerity {

struct InterconnectSpec {
  double bandwidth_gbs = 12.5; ///< per-link payload bandwidth (100 Gb/s)
  double latency_us = 2.0;     ///< per-message latency
  double nic_power_w = 18.0;   ///< draw while a rank communicates
};

struct ClusterConfig {
  int nodes = 4;
  InterconnectSpec network;
};

/// Time to move one message of `bytes` across one link.
double transfer_time_s(const InterconnectSpec& net, double bytes);

class Cluster {
public:
  /// Builds `config.nodes` ranks, each owning an independent simulated
  /// device of the given spec (noise streams are per-rank seeded).
  Cluster(const sim::DeviceSpec& spec, ClusterConfig config,
          sim::NoiseConfig noise = {}, std::uint64_t seed = 0xC1u);

  int size() const noexcept { return static_cast<int>(devices_.size()); }
  const ClusterConfig& config() const noexcept { return config_; }

  synergy::Device& device(int rank);
  const synergy::Device& device(int rank) const;

  /// One rank's result of a broadcast clock request. Under fault
  /// injection a rank may reject set_core_frequency transiently; the
  /// broadcast keeps going and reports every rank, so a caller (e.g. the
  /// scheduler) never assumes a clock it did not get.
  struct RankClockResult {
    int rank = 0;
    bool ok = true;
    double actual_mhz = 0.0; ///< clock the rank runs at now
    std::string error;       ///< rejection reason when !ok

    bool operator==(const RankClockResult&) const = default;
  };

  /// Broadcast clock control (what a cluster-wide SYnergy policy does).
  /// Every rank is attempted; per-rank rejections are surfaced in the
  /// returned vector (indexed by rank) instead of aborting the broadcast
  /// or being swallowed.
  std::vector<RankClockResult> set_frequency_all(double mhz);
  std::vector<RankClockResult> reset_frequency_all();

  /// Sum of all ranks' device energy counters.
  double total_device_energy_j() const;

private:
  ClusterConfig config_;
  // Stable addresses: devices are referenced by the synergy wrappers.
  std::vector<std::unique_ptr<sim::Device>> sim_devices_;
  std::vector<std::unique_ptr<synergy::Device>> devices_;
};

} // namespace dsem::celerity
