#include "celerity/distributed.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "cronos/kernels.hpp"
#include "synergy/queue.hpp"

namespace dsem::celerity {

Partition partition_z(int nz, int ranks) {
  DSEM_ENSURE(nz >= 1, "nz must be positive");
  DSEM_ENSURE(ranks >= 1, "ranks must be positive");
  DSEM_ENSURE(ranks <= nz, "more ranks than Z planes");
  Partition part;
  part.z_cells.resize(static_cast<std::size_t>(ranks));
  const int base = nz / ranks;
  const int extra = nz % ranks;
  for (int r = 0; r < ranks; ++r) {
    part.z_cells[static_cast<std::size_t>(r)] = base + (r < extra ? 1 : 0);
  }
  return part;
}

double halo_bytes_per_exchange(const cronos::GridDims& global, int num_vars,
                               bool has_lower_neighbor,
                               bool has_upper_neighbor) {
  const double plane = static_cast<double>(global.nx) *
                       static_cast<double>(global.ny) * 8.0 *
                       static_cast<double>(num_vars);
  const double per_direction = 2.0 * plane; // two-cell-deep halo
  double bytes = 0.0;
  if (has_lower_neighbor) {
    bytes += per_direction;
  }
  if (has_upper_neighbor) {
    bytes += per_direction;
  }
  return bytes;
}

DistributedRunStats run_distributed_cronos(Cluster& cluster,
                                           const cronos::GridDims& global,
                                           int num_vars, int steps) {
  DSEM_ENSURE(steps >= 1, "steps must be positive");
  const int ranks = cluster.size();
  const Partition part = partition_z(global.nz, ranks);
  const auto& net = cluster.config().network;

  // Per-rank queues live across the whole run (per-kernel records drive
  // the makespan computation per substep).
  std::vector<synergy::Queue> queues;
  queues.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    queues.emplace_back(cluster.device(r), synergy::ExecMode::kSimOnly);
  }

  DistributedRunStats stats;
  stats.steps = steps;
  const double baseline_energy = cluster.total_device_energy_j();

  for (int step = 0; step < steps; ++step) {
    for (int substep = 0; substep < 3; ++substep) {
      // Compute phase: every rank runs one substep on its slab.
      double slowest = 0.0;
      for (int r = 0; r < ranks; ++r) {
        const cronos::GridDims local{global.nx, global.ny,
                                     part.z_cells[static_cast<std::size_t>(r)]};
        const std::size_t before = queues[static_cast<std::size_t>(r)]
                                       .records()
                                       .size();
        // One substep = the first 4 kernels of a step submission.
        const std::size_t cells = local.cell_count();
        const std::size_t ghosts = cronos::ghost_cell_count(local);
        auto& queue = queues[static_cast<std::size_t>(r)];
        queue.submit({cronos::compute_changes_profile(num_vars), cells, {}});
        queue.submit({cronos::cfl_reduce_profile(), cells, {}});
        queue.submit({cronos::integrate_time_profile(num_vars), cells, {}});
        queue.submit({cronos::apply_boundary_profile(num_vars), ghosts, {}});
        double rank_time = 0.0;
        for (std::size_t i = before; i < queue.records().size(); ++i) {
          rank_time += queue.records()[i].time_s;
        }
        slowest = std::max(slowest, rank_time);
      }
      stats.compute_time_s += slowest;

      // Halo exchange: neighbours swap 2-deep Z-faces; exchanges proceed
      // in parallel across disjoint links, so the phase costs one
      // bidirectional exchange (interior ranks' worst case).
      if (ranks > 1) {
        const double interior_bytes =
            halo_bytes_per_exchange(global, num_vars, true, true);
        const double exchange_s = transfer_time_s(net, interior_bytes);
        stats.comm_time_s += exchange_s;
        stats.network_energy_j +=
            exchange_s * net.nic_power_w * static_cast<double>(ranks);
      }
    }
    // The CFL all-reduce per step: one small message per rank (tree
    // reduction folded into a single latency-dominated phase).
    if (ranks > 1) {
      const double reduce_s = transfer_time_s(net, 8.0) *
                              std::max(1.0, std::log2(ranks));
      stats.comm_time_s += reduce_s;
      stats.network_energy_j +=
          reduce_s * net.nic_power_w * static_cast<double>(ranks);
    }
  }

  stats.makespan_s = stats.compute_time_s + stats.comm_time_s;
  stats.device_energy_j = cluster.total_device_energy_j() - baseline_energy;
  return stats;
}

} // namespace dsem::celerity
