// Kernel submission queue with per-kernel energy profiling.
//
// Applications describe each kernel launch as a KernelLaunch: the kernel's
// static profile (Table 1 features), the work-item count, and an optional
// host implementation that performs the real numerics. The queue always
// advances the simulated device's time/energy; in Validate mode it also
// runs the host implementation so correctness tests exercise the same code
// path the energy experiments measure (DESIGN.md decision 1).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "synergy/device.hpp"

namespace dsem::synergy {

enum class ExecMode {
  kSimOnly,  ///< advance simulated counters only (fast frequency sweeps)
  kValidate, ///< additionally run the host implementation (real numerics)
};

struct KernelLaunch {
  sim::KernelProfile profile;
  std::size_t work_items = 0;
  /// Host-side implementation of the kernel; may be empty in sweeps.
  std::function<void()> host_impl;
};

struct LaunchRecord {
  std::string kernel_name;
  std::size_t work_items = 0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double frequency_mhz = 0.0;
};

class Queue {
public:
  explicit Queue(Device& device, ExecMode mode = ExecMode::kSimOnly);

  Device& device() noexcept { return *device_; }
  ExecMode mode() const noexcept { return mode_; }

  /// Pin the device clock for subsequent submissions.
  void set_target_frequency(double mhz) { device_->set_frequency(mhz); }
  void use_default_frequency() { device_->reset_frequency(); }

  /// Per-kernel DVFS (the paper's §7 future work, via SYnergy's per-kernel
  /// frequency support): before each submission, the queue retargets the
  /// clock to the plan entry matching the kernel's name; kernels not in
  /// the plan run at `fallback_mhz` (0 = device default). The simulated
  /// device charges a switch penalty whenever the clock actually changes.
  void set_kernel_frequency_plan(std::map<std::string, double> plan,
                                 double fallback_mhz = 0.0);
  void clear_kernel_frequency_plan();
  bool has_kernel_frequency_plan() const noexcept { return !plan_.empty(); }

  /// Memoize noise-free launch costs in `cache` (nullptr disables). The
  /// sweep engine shares one cache across all grid points so repeated
  /// (device, kernel, input) profiles are computed once per frequency.
  void set_profile_cache(sim::ProfileCache* cache) noexcept {
    profile_cache_ = cache;
  }

  /// Simulate (and in Validate mode execute) one kernel launch. Returns a
  /// copy of the record (the internal log may reallocate on later submits).
  LaunchRecord submit(const KernelLaunch& launch);

  const std::vector<LaunchRecord>& records() const noexcept {
    return records_;
  }

  /// Sum of recorded kernel times / energies since the last reset.
  double total_time_s() const noexcept { return total_time_s_; }
  double total_energy_j() const noexcept { return total_energy_j_; }

  /// Aggregate per-kernel-name energy/time (profiling report).
  struct KernelSummary {
    std::string name;
    std::size_t launches = 0;
    double time_s = 0.0;
    double energy_j = 0.0;
  };
  std::vector<KernelSummary> kernel_summaries() const;

  void reset();

private:
  Device* device_; // non-owning; device outlives the queue
  ExecMode mode_;
  std::vector<LaunchRecord> records_;
  double total_time_s_ = 0.0;
  double total_energy_j_ = 0.0;
  std::map<std::string, double> plan_; ///< per-kernel target frequencies
  double plan_fallback_mhz_ = 0.0;
  sim::ProfileCache* profile_cache_ = nullptr; // non-owning

  double last_freq_mhz_ = 0.0; ///< switch-penalty tracking (queue-local)
};

} // namespace dsem::synergy
