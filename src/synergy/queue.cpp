#include "synergy/queue.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "sim/fault.hpp"
#include "sim/power_model.hpp"

namespace dsem::synergy {

Queue::Queue(Device& device, ExecMode mode) : device_(&device), mode_(mode) {}

void Queue::set_kernel_frequency_plan(std::map<std::string, double> plan,
                                      double fallback_mhz) {
  DSEM_ENSURE(!plan.empty(), "empty kernel frequency plan");
  for (const auto& [name, mhz] : plan) {
    DSEM_ENSURE(mhz > 0.0, "plan frequency must be positive: " + name);
  }
  plan_ = std::move(plan);
  plan_fallback_mhz_ = fallback_mhz;
}

void Queue::clear_kernel_frequency_plan() {
  plan_.clear();
  plan_fallback_mhz_ = 0.0;
}

LaunchRecord Queue::submit(const KernelLaunch& launch) {
  DSEM_ENSURE(launch.work_items > 0, "kernel launch with zero work items");
  trace::Span span("queue.submit", trace::cat::kQueue);
  span.arg(launch.profile.name);
  if (!plan_.empty()) {
    const auto it = plan_.find(launch.profile.name);
    if (it != plan_.end()) {
      device_->set_frequency(it->second);
    } else if (plan_fallback_mhz_ > 0.0) {
      device_->set_frequency(plan_fallback_mhz_);
    } else {
      device_->reset_frequency();
    }
  }
  if (mode_ == ExecMode::kValidate && launch.host_impl) {
    launch.host_impl();
  }
  const sim::LaunchResult result =
      device_->backend().launch(launch.profile, launch.work_items,
                                profile_cache_);

  LaunchRecord record;
  record.kernel_name = launch.profile.name;
  record.work_items = launch.work_items;
  record.time_s = result.time_s;
  record.energy_j = result.energy_j;
  record.frequency_mhz = result.frequency_mhz;

  // A mid-stream clock retarget (per-kernel DVFS) stalls this launch for
  // the switch latency, during which the device idles at the new clock.
  if (last_freq_mhz_ > 0.0 && last_freq_mhz_ != result.frequency_mhz) {
    const auto& spec = device_->spec();
    const double switch_s = spec.freq_switch_overhead_us * 1e-6;
    record.time_s += switch_s;
    record.energy_j += switch_s * sim::idle_power_w(spec, result.frequency_mhz);
  }
  last_freq_mhz_ = result.frequency_mhz;

  // Sanity-check the vendor counter readings before they enter the log: a
  // garbage read (negative delta from a wrapped accumulator, NaN from a
  // dropped transaction) must surface as a retryable fault, never corrupt
  // the measurement silently. Thrown before the totals advance.
  if (!(std::isfinite(record.time_s) && record.time_s >= 0.0 &&
        std::isfinite(record.energy_j) && record.energy_j >= 0.0)) {
    throw sim::TransientFault(
        sim::FaultKind::kEnergyRead,
        "garbage counter reading for " + record.kernel_name +
            ": time=" + std::to_string(record.time_s) +
            " s, energy=" + std::to_string(record.energy_j) + " J");
  }

  span.value(record.energy_j);
  trace::counter("queue.launches", 1.0);
  // record.time_s/energy_j are simulated quantities (replica-seeded):
  // deterministic across pool sizes, unlike the wall time of this call.
  if (metrics::enabled()) {
    metrics::counter("queue.launches");
    metrics::histogram("queue.launch_time_s", record.time_s);
    metrics::histogram("queue.launch_energy_j", record.energy_j);
  }
  total_time_s_ += record.time_s;
  total_energy_j_ += record.energy_j;
  records_.push_back(record);
  return record;
}

std::vector<Queue::KernelSummary> Queue::kernel_summaries() const {
  std::map<std::string, KernelSummary> by_name;
  for (const auto& r : records_) {
    auto& s = by_name[r.kernel_name];
    s.name = r.kernel_name;
    ++s.launches;
    s.time_s += r.time_s;
    s.energy_j += r.energy_j;
  }
  std::vector<KernelSummary> out;
  out.reserve(by_name.size());
  for (auto& [_, summary] : by_name) {
    out.push_back(std::move(summary));
  }
  return out;
}

void Queue::reset() {
  records_.clear();
  total_time_s_ = 0.0;
  total_energy_j_ = 0.0;
  last_freq_mhz_ = 0.0;
}

} // namespace dsem::synergy
