// Vendor-specific management backends (the NVML / ROCm SMI of the paper).
//
// Real DVFS is only reachable through per-vendor libraries with different
// units and semantics: NVML exposes a fixed default application clock and
// millijoule energy counters; ROCm SMI exposes performance levels with an
// "auto" governor and a fixed-resolution energy accumulator. Each backend
// here reproduces those vendor quirks over a simulated device, so the
// portable layer above has something real to abstract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/device.hpp"

namespace dsem::synergy {

class Backend {
public:
  virtual ~Backend() = default;

  virtual std::string api_name() const = 0;
  virtual const sim::DeviceSpec& spec() const = 0;

  /// The simulated device this backend manages (every backend wraps one).
  /// Lets sweep engines derive deterministic replica devices.
  virtual sim::Device& simulated() const = 0;

  virtual std::vector<double> supported_core_frequencies() const = 0;
  virtual void set_core_frequency(double mhz) = 0;
  /// Return to the vendor's default clocking behaviour.
  virtual void reset_core_frequency() = 0;
  /// Clock used as the speedup / normalized-energy baseline.
  virtual double default_core_frequency() const = 0;
  virtual double current_core_frequency() const = 0;

  /// Raw vendor energy counter and its resolution in joules.
  virtual std::uint64_t energy_counter() const = 0;
  virtual double energy_unit_joules() const = 0;

  /// `cache` (optional) memoizes noise-free launch costs across launches.
  virtual sim::LaunchResult launch(const sim::KernelProfile& kernel,
                                   std::size_t work_items,
                                   sim::ProfileCache* cache) = 0;
};

/// NVML-flavoured backend: fixed default application clock, energy counter
/// in millijoules (nvmlDeviceGetTotalEnergyConsumption semantics).
class NvmlBackend final : public Backend {
public:
  explicit NvmlBackend(sim::Device& device);

  std::string api_name() const override { return "NVML"; }
  const sim::DeviceSpec& spec() const override { return device_->spec(); }
  std::vector<double> supported_core_frequencies() const override;
  void set_core_frequency(double mhz) override;
  void reset_core_frequency() override;
  double default_core_frequency() const override;
  double current_core_frequency() const override;
  std::uint64_t energy_counter() const override;
  double energy_unit_joules() const override { return 1e-3; }
  sim::Device& simulated() const override { return *device_; }
  sim::LaunchResult launch(const sim::KernelProfile& kernel,
                           std::size_t work_items,
                           sim::ProfileCache* cache) override;

private:
  sim::Device* device_; // non-owning; device outlives the backend
};

/// ROCm-SMI-flavoured backend: "auto" performance level instead of a fixed
/// default clock; energy accumulator with 15.3 uJ resolution.
class RocmSmiBackend final : public Backend {
public:
  explicit RocmSmiBackend(sim::Device& device);

  std::string api_name() const override { return "ROCm SMI"; }
  const sim::DeviceSpec& spec() const override { return device_->spec(); }
  std::vector<double> supported_core_frequencies() const override;
  void set_core_frequency(double mhz) override;
  void reset_core_frequency() override; ///< returns to the auto governor
  double default_core_frequency() const override;
  double current_core_frequency() const override;
  std::uint64_t energy_counter() const override;
  double energy_unit_joules() const override { return 15.3e-6; }
  sim::Device& simulated() const override { return *device_; }
  sim::LaunchResult launch(const sim::KernelProfile& kernel,
                           std::size_t work_items,
                           sim::ProfileCache* cache) override;

private:
  sim::Device* device_; // non-owning; device outlives the backend
};

/// Level-Zero-flavoured backend (Intel): fixed default clock via
/// zesFrequencySetRange semantics; energy counter in microjoules
/// (zes_power_energy_counter_t).
class LevelZeroBackend final : public Backend {
public:
  explicit LevelZeroBackend(sim::Device& device);

  std::string api_name() const override { return "Level Zero"; }
  const sim::DeviceSpec& spec() const override { return device_->spec(); }
  std::vector<double> supported_core_frequencies() const override;
  void set_core_frequency(double mhz) override;
  void reset_core_frequency() override;
  double default_core_frequency() const override;
  double current_core_frequency() const override;
  std::uint64_t energy_counter() const override;
  double energy_unit_joules() const override { return 1e-6; }
  sim::Device& simulated() const override { return *device_; }
  sim::LaunchResult launch(const sim::KernelProfile& kernel,
                           std::size_t work_items,
                           sim::ProfileCache* cache) override;

private:
  sim::Device* device_; // non-owning; device outlives the backend
};

/// Picks the matching vendor backend for a simulated device.
std::unique_ptr<Backend> make_backend(sim::Device& device);

} // namespace dsem::synergy
