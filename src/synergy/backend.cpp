#include "synergy/backend.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dsem::synergy {

namespace {

std::vector<double> schedule_to_vector(const sim::DeviceSpec& spec) {
  const auto freqs = spec.core_frequencies.frequencies();
  return {freqs.begin(), freqs.end()};
}

std::uint64_t to_counter(double joules, double unit) {
  return static_cast<std::uint64_t>(std::llround(joules / unit));
}

} // namespace

// --- NVML ------------------------------------------------------------------

NvmlBackend::NvmlBackend(sim::Device& device) : device_(&device) {
  DSEM_ENSURE(device.spec().vendor == sim::Vendor::kNvidia,
              "NvmlBackend requires an NVIDIA device");
}

std::vector<double> NvmlBackend::supported_core_frequencies() const {
  return schedule_to_vector(device_->spec());
}

void NvmlBackend::set_core_frequency(double mhz) {
  device_->set_core_frequency(mhz);
}

void NvmlBackend::reset_core_frequency() { device_->reset_frequency(); }

double NvmlBackend::default_core_frequency() const {
  return device_->default_frequency();
}

double NvmlBackend::current_core_frequency() const {
  return device_->current_frequency();
}

std::uint64_t NvmlBackend::energy_counter() const {
  return to_counter(device_->energy_joules(), energy_unit_joules());
}

sim::LaunchResult NvmlBackend::launch(const sim::KernelProfile& kernel,
                                      std::size_t work_items,
                                      sim::ProfileCache* cache) {
  return device_->launch(kernel, work_items, cache);
}

// --- ROCm SMI ----------------------------------------------------------------

RocmSmiBackend::RocmSmiBackend(sim::Device& device) : device_(&device) {
  DSEM_ENSURE(device.spec().vendor == sim::Vendor::kAmd,
              "RocmSmiBackend requires an AMD device");
}

std::vector<double> RocmSmiBackend::supported_core_frequencies() const {
  return schedule_to_vector(device_->spec());
}

void RocmSmiBackend::set_core_frequency(double mhz) {
  device_->set_core_frequency(mhz);
}

void RocmSmiBackend::reset_core_frequency() { device_->set_auto_frequency(); }

double RocmSmiBackend::default_core_frequency() const {
  // No fixed default clock on AMD: the baseline is the governor's pick.
  return device_->default_frequency();
}

double RocmSmiBackend::current_core_frequency() const {
  return device_->current_frequency();
}

std::uint64_t RocmSmiBackend::energy_counter() const {
  return to_counter(device_->energy_joules(), energy_unit_joules());
}

sim::LaunchResult RocmSmiBackend::launch(const sim::KernelProfile& kernel,
                                         std::size_t work_items,
                                         sim::ProfileCache* cache) {
  return device_->launch(kernel, work_items, cache);
}

// --- Level Zero ---------------------------------------------------------------

LevelZeroBackend::LevelZeroBackend(sim::Device& device) : device_(&device) {
  DSEM_ENSURE(device.spec().vendor == sim::Vendor::kIntel,
              "LevelZeroBackend requires an Intel device");
}

std::vector<double> LevelZeroBackend::supported_core_frequencies() const {
  return schedule_to_vector(device_->spec());
}

void LevelZeroBackend::set_core_frequency(double mhz) {
  device_->set_core_frequency(mhz);
}

void LevelZeroBackend::reset_core_frequency() { device_->reset_frequency(); }

double LevelZeroBackend::default_core_frequency() const {
  return device_->default_frequency();
}

double LevelZeroBackend::current_core_frequency() const {
  return device_->current_frequency();
}

std::uint64_t LevelZeroBackend::energy_counter() const {
  return to_counter(device_->energy_joules(), energy_unit_joules());
}

sim::LaunchResult LevelZeroBackend::launch(const sim::KernelProfile& kernel,
                                           std::size_t work_items,
                                           sim::ProfileCache* cache) {
  return device_->launch(kernel, work_items, cache);
}

std::unique_ptr<Backend> make_backend(sim::Device& device) {
  switch (device.spec().vendor) {
  case sim::Vendor::kNvidia:
    return std::make_unique<NvmlBackend>(device);
  case sim::Vendor::kAmd:
    return std::make_unique<RocmSmiBackend>(device);
  case sim::Vendor::kIntel:
    return std::make_unique<LevelZeroBackend>(device);
  }
  DSEM_ENSURE(false, "no backend for vendor: " + to_string(device.spec().vendor));
  return nullptr; // unreachable
}

} // namespace dsem::synergy
