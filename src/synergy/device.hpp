// Portable device handle (the SYnergy API role of the paper).
//
// One vendor-neutral interface for frequency control and energy readout,
// backed by whichever vendor backend matches the hardware. Energy is always
// reported in joules regardless of the vendor counter's native unit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "synergy/backend.hpp"

namespace dsem::synergy {

class Device {
public:
  explicit Device(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {}

  /// Convenience: wraps a simulated device with its matching backend.
  explicit Device(sim::Device& simulated) : Device(make_backend(simulated)) {}

  Device(Device&&) noexcept = default;
  Device& operator=(Device&&) noexcept = default;

  std::string name() const { return backend_->spec().name; }
  std::string vendor_api() const { return backend_->api_name(); }
  const sim::DeviceSpec& spec() const { return backend_->spec(); }

  std::vector<double> supported_frequencies() const {
    return backend_->supported_core_frequencies();
  }
  double default_frequency() const {
    return backend_->default_core_frequency();
  }
  double current_frequency() const {
    return backend_->current_core_frequency();
  }

  void set_frequency(double mhz) { backend_->set_core_frequency(mhz); }
  void reset_frequency() { backend_->reset_core_frequency(); }

  /// Cumulative device energy in joules (vendor counter, unit-converted).
  double energy_joules() const {
    return static_cast<double>(backend_->energy_counter()) *
           backend_->energy_unit_joules();
  }

  Backend& backend() { return *backend_; }

  /// The simulated device behind the vendor backend — the seed source for
  /// deterministic replica devices in parallel sweeps.
  sim::Device& simulated() const { return backend_->simulated(); }

private:
  std::unique_ptr<Backend> backend_;
};

} // namespace dsem::synergy
