#include "ml/lasso.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsem::ml {

LassoRegressor::LassoRegressor(double alpha, int max_iter, double tol)
    : alpha_(alpha), max_iter_(max_iter), tol_(tol) {
  DSEM_ENSURE(alpha >= 0.0, "Lasso alpha must be non-negative");
  DSEM_ENSURE(max_iter > 0, "Lasso max_iter must be positive");
}

namespace {

double soft_threshold(double value, double threshold) noexcept {
  if (value > threshold) {
    return value - threshold;
  }
  if (value < -threshold) {
    return value + threshold;
  }
  return 0.0;
}

} // namespace

void LassoRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();

  StandardScaler scaler;
  scaler.fit(x);
  const Matrix xs = scaler.transform(x);

  double y_mean = 0.0;
  for (double v : y) {
    y_mean += v;
  }
  y_mean /= static_cast<double>(n);

  std::vector<double> w(k, 0.0);
  std::vector<double> residual(n); // r = yc - Xs w, with w = 0 initially
  for (std::size_t i = 0; i < n; ++i) {
    residual[i] = y[i] - y_mean;
  }

  // Column squared norms (constant across iterations).
  std::vector<double> col_sq(k, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = xs.row(r);
    for (std::size_t j = 0; j < k; ++j) {
      col_sq[j] += row[j] * row[j];
    }
  }

  const double thresh = alpha_ * static_cast<double>(n);
  iterations_ = 0;
  for (int it = 0; it < max_iter_; ++it) {
    ++iterations_;
    double max_delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (col_sq[j] == 0.0) {
        continue; // constant column: handled by the intercept
      }
      // rho = x_j . (r + w_j x_j)
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        rho += xs(r, j) * residual[r];
      }
      rho += w[j] * col_sq[j];
      const double w_new = soft_threshold(rho, thresh) / col_sq[j];
      const double delta = w_new - w[j];
      if (delta != 0.0) {
        for (std::size_t r = 0; r < n; ++r) {
          residual[r] -= delta * xs(r, j);
        }
        w[j] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol_) {
      break;
    }
  }

  // Map back to the original feature space:
  //   y = y_mean + sum_j w_j (x_j - mu_j)/s_j
  coef_.assign(k, 0.0);
  intercept_ = y_mean;
  const auto mean = scaler.mean();
  const auto scale = scaler.scale();
  for (std::size_t j = 0; j < k; ++j) {
    coef_[j] = w[j] / scale[j];
    intercept_ -= coef_[j] * mean[j];
  }
}

double LassoRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!coef_.empty(), "predict on unfitted LassoRegressor");
  DSEM_ENSURE(x.size() == coef_.size(), "predict: feature width mismatch");
  return dot(x, coef_) + intercept_;
}

} // namespace dsem::ml
