#include "ml/model_selection.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dsem::ml {

std::vector<Split> kfold(std::size_t n, std::size_t folds,
                         std::uint64_t seed) {
  DSEM_ENSURE(folds >= 2, "kfold needs at least 2 folds");
  DSEM_ENSURE(n >= folds, "kfold: more folds than samples");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(order[i], order[rng.uniform_int(i + 1)]);
  }
  std::vector<Split> splits(folds);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % folds;
    splits[fold].test.push_back(order[i]);
  }
  for (std::size_t f = 0; f < folds; ++f) {
    for (std::size_t g = 0; g < folds; ++g) {
      if (g == f) {
        continue;
      }
      splits[f].train.insert(splits[f].train.end(), splits[g].test.begin(),
                             splits[g].test.end());
    }
    std::sort(splits[f].test.begin(), splits[f].test.end());
    std::sort(splits[f].train.begin(), splits[f].train.end());
  }
  return splits;
}

std::vector<Split> leave_one_group_out(std::span<const int> groups) {
  DSEM_ENSURE(!groups.empty(), "leave_one_group_out: empty groups");
  std::vector<int> labels(groups.begin(), groups.end());
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  DSEM_ENSURE(labels.size() >= 2,
              "leave_one_group_out needs at least 2 distinct groups");

  std::vector<Split> splits;
  splits.reserve(labels.size());
  for (int held_out : labels) {
    Split split;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      (groups[i] == held_out ? split.test : split.train).push_back(i);
    }
    splits.push_back(std::move(split));
  }
  return splits;
}

double cross_val_score(
    const Regressor& proto, const Matrix& x, std::span<const double> y,
    std::span<const Split> splits,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& score) {
  DSEM_ENSURE(!splits.empty(), "cross_val_score: no splits");
  double acc = 0.0;
  for (const Split& split : splits) {
    DSEM_ENSURE(!split.train.empty() && !split.test.empty(),
                "cross_val_score: degenerate split");
    const Matrix x_train = x.gather_rows(split.train);
    std::vector<double> y_train(split.train.size());
    for (std::size_t i = 0; i < split.train.size(); ++i) {
      y_train[i] = y[split.train[i]];
    }
    auto model = proto.clone();
    model->fit(x_train, y_train);

    std::vector<double> truth(split.test.size());
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      truth[i] = y[split.test[i]];
    }
    const std::vector<double> pred =
        model->predict_many(x.gather_rows(split.test));
    acc += score(truth, pred);
  }
  return acc / static_cast<double>(splits.size());
}

namespace {

void enumerate(const std::map<std::string, std::vector<double>>& grid,
               std::map<std::string, std::vector<double>>::const_iterator it,
               std::map<std::string, double>& current,
               const std::function<void(const std::map<std::string, double>&)>&
                   visit) {
  if (it == grid.end()) {
    visit(current);
    return;
  }
  auto next = it;
  ++next;
  for (double v : it->second) {
    current[it->first] = v;
    enumerate(grid, next, current, visit);
  }
}

} // namespace

GridSearchResult grid_search(
    const std::map<std::string, std::vector<double>>& grid,
    const std::function<std::unique_ptr<Regressor>(
        const std::map<std::string, double>&)>& factory,
    const Matrix& x, std::span<const double> y, std::span<const Split> splits,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& score) {
  DSEM_ENSURE(!grid.empty(), "grid_search: empty grid");
  for (const auto& [name, values] : grid) {
    DSEM_ENSURE(!values.empty(), "grid_search: no values for " + name);
  }

  GridSearchResult result;
  result.best_score = std::numeric_limits<double>::infinity();
  std::map<std::string, double> current;
  enumerate(grid, grid.begin(), current,
            [&](const std::map<std::string, double>& params) {
              const auto model = factory(params);
              const double s = cross_val_score(*model, x, y, splits, score);
              ++result.evaluated;
              if (s < result.best_score) {
                result.best_score = s;
                result.best_params = params;
              }
            });
  return result;
}

} // namespace dsem::ml
