// Random forest regressor: bagged CART trees with per-node feature
// subsampling, fitted in parallel (each tree owns an independent RNG
// stream, so fitting is deterministic regardless of scheduling).
#pragma once

#include "common/thread_pool.hpp"
#include "ml/tree.hpp"

namespace dsem::ml {

struct ForestParams {
  int n_estimators = 100;
  int max_depth = 0;         ///< 0 = unlimited
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  int max_features = 0;      ///< 0 = all features (sklearn regressor default)
  bool bootstrap = true;
  std::uint64_t seed = 42;
  /// Pool for tree fitting and batch prediction; nullptr = the global
  /// pool. Pool size never affects the fitted forest or its predictions.
  ThreadPool* pool = nullptr;
};

class RandomForestRegressor final : public Regressor {
public:
  explicit RandomForestRegressor(ForestParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  /// Rebuilds a fitted forest from restored trees — the deserialization
  /// path (ml/serialize.hpp). `trees` must hold exactly
  /// params.n_estimators fitted trees.
  static RandomForestRegressor from_trees(ForestParams params,
                                          std::vector<DecisionTreeRegressor> trees);
  double predict_one(std::span<const double> x) const override;
  /// Batch prediction in tree-outer order: each chunk of rows walks one
  /// tree's (hot) node array at a time instead of streaming the whole
  /// forest per row. Same sums as predict_one, row by row.
  std::vector<double> predict_many(const Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<RandomForestRegressor>(params_);
  }
  std::string name() const override { return "RandomForest"; }

  const ForestParams& params() const noexcept { return params_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }
  const DecisionTreeRegressor& tree(std::size_t i) const { return trees_[i]; }

private:
  ForestParams params_;
  std::vector<DecisionTreeRegressor> trees_;
};

} // namespace dsem::ml
