// Ordinary least squares with a tiny ridge term for numerical stability,
// solved via the normal equations (features here are at most a dozen wide).
#pragma once

#include "ml/regressor.hpp"

namespace dsem::ml {

class LinearRegressor final : public Regressor {
public:
  explicit LinearRegressor(double ridge = 1e-8) : ridge_(ridge) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<LinearRegressor>(ridge_);
  }
  std::string name() const override { return "Linear"; }

  std::span<const double> coefficients() const noexcept { return coef_; }
  double intercept() const noexcept { return intercept_; }

private:
  double ridge_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

} // namespace dsem::ml
