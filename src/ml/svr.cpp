#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"

namespace dsem::ml {

SvrRbf::SvrRbf(double c, double epsilon, double gamma, int max_iter,
               double tol, ThreadPool* pool)
    : c_(c), epsilon_(epsilon), gamma_(gamma), max_iter_(max_iter), tol_(tol),
      pool_(pool) {
  DSEM_ENSURE(c > 0.0, "SVR C must be positive");
  DSEM_ENSURE(epsilon >= 0.0, "SVR epsilon must be non-negative");
  DSEM_ENSURE(gamma > 0.0, "SVR gamma must be positive");
  DSEM_ENSURE(max_iter > 0, "SVR max_iter must be positive");
}

double SvrRbf::kernel(std::span<const double> a,
                      std::span<const double> b) const {
  double sq = 0.0;
  const std::size_t k = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  // Contiguous pointer walk: both spans are Matrix rows, so the compiler
  // can vectorize without reassociating the accumulation.
  for (std::size_t j = 0; j < k; ++j) {
    const double d = pa[j] - pb[j];
    sq += d * d;
  }
  // +1 absorbs the bias term into the kernel.
  return std::exp(-gamma_ * sq) + 1.0;
}

void SvrRbf::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  metrics::ScopedTimer timer("ml.svr.fit_s");
  const std::size_t n = x.rows();

  scaler_.fit(x);
  support_ = scaler_.transform(x);

  // Dense kernel matrix, upper triangle + mirror, rows fanned across the
  // pool. Each row's entry set {k(i, j≥i), k(j≥i, i)} is disjoint from
  // every other row's, each entry is one scalar kernel() call, and the
  // triangle keeps the total work equal to the serial build — bit-identical
  // values for any pool size, no extra flops on small machines.
  Matrix k(n, n);
  parallel_for_chunks(
      pool_ != nullptr ? *pool_ : ThreadPool::global(), 0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto ri = support_.row(i);
          for (std::size_t j = i; j < n; ++j) {
            const double v = kernel(ri, support_.row(j));
            k(i, j) = v;
            k(j, i) = v;
          }
        }
      });

  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0); // f_i = sum_j K_ij beta_j
  for (int it = 0; it < max_iter_; ++it) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* krow = k.row(i).data();
      const double kii = krow[i];
      const double eik = epsilon_ / kii; // loop-invariant per coordinate
      // Unregularized optimum for this coordinate, then soft-threshold for
      // the eps-insensitive term and clip to the box.
      const double raw = beta_[i] + (y[i] - f[i]) / kii;
      double b = 0.0;
      if (raw > eik) {
        b = raw - eik;
      } else if (raw < -eik) {
        b = raw + eik;
      }
      b = std::clamp(b, -c_, c_);
      const double delta = b - beta_[i];
      if (delta != 0.0) {
        double* pf = f.data();
        for (std::size_t j = 0; j < n; ++j) {
          pf[j] += delta * krow[j];
        }
        beta_[i] = b;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol_) {
      break;
    }
  }

  // How sparse the dual solution came out; scheduling-independent in
  // value, but gauges are last-write-wins so concurrent fits (e.g. inside
  // a parallel CV fold) make the survivor a scheduling observation.
  metrics::gauge("ml.svr.support_vectors",
                 static_cast<double>(support_vector_count()));
}

double SvrRbf::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!beta_.empty(), "predict on unfitted SvrRbf");
  const std::vector<double> xs = scaler_.transform_one(x);
  double out = 0.0;
  for (std::size_t i = 0; i < beta_.size(); ++i) {
    if (beta_[i] != 0.0) {
      out += beta_[i] * kernel(xs, support_.row(i));
    }
  }
  return out;
}

std::size_t SvrRbf::support_vector_count() const noexcept {
  std::size_t count = 0;
  for (double b : beta_) {
    if (b != 0.0) {
      ++count;
    }
  }
  return count;
}

} // namespace dsem::ml
