#include "ml/regressor.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace dsem::ml {

namespace {
// Batches below this stay serial: the values are identical either way,
// and tiny batches (the LOOCV inner loop) don't amortize task dispatch.
constexpr std::size_t kParallelPredictMinRows = 256;
} // namespace

std::vector<double> Regressor::predict_many(const Matrix& x) const {
  std::vector<double> out(x.rows());
  const auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = predict_one(x.row(r));
    }
  };
  if (x.rows() >= kParallelPredictMinRows) {
    parallel_for_chunks(ThreadPool::global(), 0, x.rows(), run);
  } else {
    run(0, x.rows());
  }
  return out;
}

void StandardScaler::fit(const Matrix& x) {
  DSEM_ENSURE(x.rows() > 0, "StandardScaler: empty dataset");
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  mean_.assign(k, 0.0);
  scale_.assign(k, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < k; ++j) {
      mean_[j] += row[j];
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    mean_[j] /= static_cast<double>(n);
  }
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < k; ++j) {
      const double d = row[j] - mean_[j];
      scale_[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    scale_[j] = std::sqrt(scale_[j] / static_cast<double>(n));
    if (scale_[j] == 0.0) {
      scale_[j] = 1.0; // constant feature: leave untouched
    }
  }
}

std::vector<double>
StandardScaler::transform_one(std::span<const double> x) const {
  DSEM_ENSURE(fitted(), "StandardScaler used before fit");
  DSEM_ENSURE(x.size() == mean_.size(), "transform: width mismatch");
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) / scale_[j];
  }
  return out;
}

Matrix StandardScaler::transform(const Matrix& x) const {
  DSEM_ENSURE(fitted(), "StandardScaler used before fit");
  DSEM_ENSURE(x.cols() == mean_.size(), "transform: width mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      dst[j] = (src[j] - mean_[j]) / scale_[j];
    }
  }
  return out;
}

} // namespace dsem::ml
