#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace dsem::ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params)
    : params_(params) {
  DSEM_ENSURE(params.max_depth >= 0, "max_depth must be >= 0");
  DSEM_ENSURE(params.min_samples_split >= 2, "min_samples_split must be >= 2");
  DSEM_ENSURE(params.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  DSEM_ENSURE(params.max_features >= 0, "max_features must be >= 0");
}

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(params_.seed);
  build(x, y, indices, 0, indices.size(), 0, rng);
}

std::int32_t DecisionTreeRegressor::build(const Matrix& x,
                                          std::span<const double> y,
                                          std::vector<std::size_t>& indices,
                                          std::size_t begin, std::size_t end,
                                          int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double v = y[indices[i]];
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sum_sq - sum * mean; // total squared error around mean

  const auto make_leaf = [&] {
    nodes_.push_back(Node{-1, 0.0, -1, -1, mean});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool depth_capped = params_.max_depth > 0 && depth >= params_.max_depth;
  if (n < static_cast<std::size_t>(params_.min_samples_split) ||
      depth_capped || sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset without replacement.
  const std::size_t k = x.cols();
  std::vector<std::size_t> features(k);
  std::iota(features.begin(), features.end(), 0);
  std::size_t tries = k;
  if (params_.max_features > 0 &&
      static_cast<std::size_t>(params_.max_features) < k) {
    tries = static_cast<std::size_t>(params_.max_features);
    for (std::size_t i = 0; i < tries; ++i) {
      const std::size_t j = i + rng.uniform_int(k - i);
      std::swap(features[i], features[j]);
    }
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = sse; // must strictly improve on no-split
  const auto min_leaf = static_cast<std::size_t>(params_.min_samples_leaf);

  std::vector<std::pair<double, double>> column(n); // (feature value, target)
  for (std::size_t fi = 0; fi < tries; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = indices[begin + i];
      column[i] = {x(idx, f), y[idx]};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) {
      continue; // constant feature in this node
    }
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += column[i].second;
      left_sq += column[i].second * column[i].second;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_leaf || nr < min_leaf) {
        continue;
      }
      if (column[i].first == column[i + 1].first) {
        continue; // cannot split between equal values
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double sse_left =
          left_sq - left_sum * left_sum / static_cast<double>(nl);
      const double sse_right =
          right_sq - right_sum * right_sum / static_cast<double>(nr);
      const double score = sse_left + sse_right;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  // Partition [begin, end) by the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return x(idx, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  DSEM_ASSERT(mid > begin && mid < end, "degenerate partition");

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{best_feature, best_threshold, -1, -1, mean});
  const std::int32_t left = build(x, y, indices, begin, mid, depth + 1, rng);
  const std::int32_t right = build(x, y, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTreeRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!nodes_.empty(), "predict on unfitted DecisionTreeRegressor");
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) {
      return n.value;
    }
    DSEM_ASSERT(static_cast<std::size_t>(n.feature) < x.size(),
                "feature index out of range");
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                              : n.right);
  }
}

} // namespace dsem::ml
