#include "ml/tree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"

namespace dsem::ml {

namespace {

// Nodes at least this large fan their candidate-feature scan and their
// order-maintenance partition across the pool; smaller nodes stay serial.
// The cut is on node size only — never pool size — so the set of parallel
// units (and their per-slot outputs) is the same for every pool.
constexpr std::size_t kParallelNodeMinSamples = 4096;

// A candidate split for one feature: the best (score, threshold) found by
// scanning that feature's sorted stream, chained from the node SSE with
// the same strict `score < best - 1e-12` improvement rule the reduce step
// applies across features.
struct Candidate {
  double score = 0.0;
  double threshold = 0.0;
  bool valid = false;
};

// Scans one feature's sorted stream for the best split of a node holding
// entries [0, n). The stream carries values and row ids; targets are
// gathered through the row id (`targets[rows[i]]` is the very double a
// dedicated target stream would hold, so dropping that stream changes no
// bit — it only saves 16 bytes per entry per level of partition traffic).
// Prefix sums accumulate targets in stream order — sorted by
// (value, target) exactly like the seed's per-node `std::sort` of
// (value, target) pairs, so every candidate's left/right SSE is
// bit-identical to the seed's.
//
// Two shapes of the same arithmetic: small nodes run the seed's fused
// loop; larger nodes run it in L1-resident blocks of three passes — a
// scalar prefix chain, a branchless score pass the compiler vectorizes
// (packed divisions are the expensive op here, and SIMD retires several
// per cycle-group where the fused loop serializes them), and a scalar
// selection chain. Every candidate's score is computed by the exact same
// IEEE operations in both shapes (tie positions compute a score the
// selection chain never consults, exactly as the fused loop's `continue`
// never consults one), so the cutover size is a pure performance knob.
//
// The cutover is the row-count cutoff below which a node skips the
// blocked presorted-stream machinery entirely. Small trees are made
// almost entirely of small nodes, so the knob matters most for small
// forests: the blocked shape pays a fixed cost (three passes plus the
// packed filter's group logic) that only amortizes once a node spans a
// few cache lines. Sweeping the knob on BM_ForestFit found 48 fastest
// for /1000 and /5000 and indistinguishable from 16 at /20000, where
// nearly all entries sit in nodes far above either value.
constexpr std::size_t kBlockScanMinSamples = 48;
constexpr std::size_t kScanBlock = 512;

// 0, 1, 2, ... as doubles: lets the score pass form nl/nr by exact
// integer-valued double adds instead of a per-lane int->double convert
// the vectorizer refuses.
constexpr auto kIotaD = [] {
  std::array<double, kScanBlock> a{};
  for (std::size_t j = 0; j < kScanBlock; ++j) {
    a[j] = static_cast<double>(j);
  }
  return a;
}();

// The branchless middle pass of the blocked scan: candidate scores from
// the prefix sums. Cloned for AVX2 (runtime-dispatched, so the baseline
// build still runs everywhere): the packed divisions bound this loop and
// wider vectors retire more of them per dispatch. Safe to widen because
// every lane is the same IEEE expression — and no product here feeds an
// add, so no FMA contraction can exist in any clone.
__attribute__((target_clones("default", "avx2")))
void score_block(const double* ls, const double* lq, double* sc,
                 std::size_t bn, double nl0, double nr0, double sum,
                 double sum_sq) {
  for (std::size_t j = 0; j < bn; ++j) {
    const double nl = nl0 + kIotaD[j];
    const double nr = nr0 - kIotaD[j];
    const double right_sum = sum - ls[j];
    const double right_sq = sum_sq - lq[j];
    const double sse_left = lq[j] - ls[j] * ls[j] / nl;
    const double sse_right = right_sq - right_sum * right_sum / nr;
    sc[j] = sse_left + sse_right;
  }
}

Candidate scan_feature(const double* value, const std::uint32_t* rows,
                       const double* targets, std::size_t n,
                       std::size_t min_leaf, double sum, double sum_sq,
                       double node_sse) {
  Candidate out;
  if (n < 2 * min_leaf || value[0] == value[n - 1]) {
    return out; // no admissible split / constant feature in this node
  }

  double left_sum = 0.0;
  double left_sq = 0.0;
  double best_score = node_sse; // must strictly improve on no-split
  std::size_t i = 0;
  for (; i + 1 < min_leaf; ++i) { // too few on the left to be a candidate
    const double t = targets[rows[i]];
    left_sum += t;
    left_sq += t * t;
  }
  const std::size_t last = n - min_leaf; // i >= last starves the right side

  if (n < kBlockScanMinSamples) {
    for (; i < last; ++i) {
      const double t = targets[rows[i]];
      left_sum += t;
      left_sq += t * t;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double sse_left =
          left_sq - left_sum * left_sum / static_cast<double>(nl);
      const double sse_right =
          right_sq - right_sum * right_sum / static_cast<double>(nr);
      const double score = sse_left + sse_right;
      // Tie entries (equal adjacent values cannot be split) compute a
      // score the select never consults — the same branch-free fold as
      // the blocked path's selection chain, for the same reason.
      const bool improve =
          (score < best_score - 1e-12) & (value[i] != value[i + 1]);
      const double thr = 0.5 * (value[i] + value[i + 1]);
      best_score = improve ? score : best_score;
      out.threshold = improve ? thr : out.threshold;
      out.valid = out.valid | improve;
    }
    out.score = best_score;
    return out;
  }

  alignas(64) double ls[kScanBlock];
  alignas(64) double lq[kScanBlock];
  alignas(64) double sc[kScanBlock];
  for (std::size_t b = i; b < last; b += kScanBlock) {
    const std::size_t bn = std::min(kScanBlock, last - b);
    for (std::size_t j = 0; j < bn; ++j) { // the serial prefix chain
      const double t = targets[rows[b + j]];
      left_sum += t;
      left_sq += t * t;
      ls[j] = left_sum;
      lq[j] = left_sq;
    }
    // nl = b+j+1 and nr = n-(b+j+1) exactly (all integers below 2^53).
    score_block(ls, lq, sc, bn, static_cast<double>(b + 1),
                static_cast<double>(n - b - 1), sum, sum_sq);
    // The seed's selection chain, split into a packed candidate filter and
    // a sparse exact walk. "Beats the best score seen before this block"
    // is a necessary condition for acceptance (the running best only
    // tightens within the block), and the tie test (cannot split between
    // equal values) is exact either way — so a packed compare against the
    // block-entry best yields a bitmask that provably contains every entry
    // the sequential chain would accept. Walking only the set bits then
    // applies the seed's strict `< best - 1e-12` test in stream order,
    // byte-identical to running the chain over all bn entries, but the
    // dense pass is branch-free and the sparse pass's accept branch is
    // predictable because ties (the random ~1/3 of a bootstrap stream that
    // made the fused chain mispredict) never reach it.
#if defined(__SSE2__)
    const __m128d entry_limit = _mm_set1_pd(best_score - 1e-12);
    for (std::size_t g = 0; g < bn; g += 64) {
      const std::size_t gn = std::min<std::size_t>(64, bn - g);
      std::uint64_t word = 0;
      std::size_t j = 0;
      for (; j + 2 <= gn; j += 2) {
        const __m128d s = _mm_load_pd(sc + g + j);
        const __m128d v0 = _mm_loadu_pd(value + b + g + j);
        const __m128d v1 = _mm_loadu_pd(value + b + g + j + 1);
        const __m128d hit = _mm_and_pd(_mm_cmplt_pd(s, entry_limit),
                                       _mm_cmpneq_pd(v0, v1));
        word |= static_cast<std::uint64_t>(_mm_movemask_pd(hit)) << j;
      }
      if (j < gn) { // odd tail of the final group
        const bool hit = (sc[g + j] < _mm_cvtsd_f64(entry_limit)) &
                         (value[b + g + j] != value[b + g + j + 1]);
        word |= static_cast<std::uint64_t>(hit) << j;
      }
      while (word != 0) {
        const auto t = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        const std::size_t jj = g + t;
        if (sc[jj] < best_score - 1e-12) {
          best_score = sc[jj];
          out.threshold = 0.5 * (value[b + jj] + value[b + jj + 1]);
          out.valid = true;
        }
      }
    }
#else
    for (std::size_t j = 0; j < bn; ++j) {
      const bool improve =
          (sc[j] < best_score - 1e-12) & (value[b + j] != value[b + j + 1]);
      const double thr = 0.5 * (value[b + j] + value[b + j + 1]);
      best_score = improve ? sc[j] : best_score;
      out.threshold = improve ? thr : out.threshold;
      out.valid = out.valid | improve;
    }
#endif
  }
  out.score = best_score;
  return out;
}

} // namespace

namespace detail {

Presorted Presorted::build(const Matrix& x, std::span<const double> y,
                           ThreadPool* pool) {
  DSEM_ENSURE(x.rows() == y.size(), "Presorted: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "Presorted: empty dataset");
  Presorted ps;
  ps.n = x.rows();
  ps.k = x.cols();
  ps.value.resize(ps.n * ps.k);
  ps.row.resize(ps.n * ps.k);

  const FeatureMajor fm(x); // contiguous sort keys per feature
  const auto sort_one = [&](std::size_t f) {
    const auto col = fm.col(f);
    std::uint32_t* rows = ps.row.data() + f * ps.n;
    double* values = ps.value.data() + f * ps.n;
    std::iota(rows, rows + ps.n, std::uint32_t{0});
    std::sort(rows, rows + ps.n, [&](std::uint32_t a, std::uint32_t b) {
      if (col[a] != col[b]) {
        return col[a] < col[b];
      }
      if (y[a] != y[b]) {
        return y[a] < y[b];
      }
      return a < b;
    });
    for (std::size_t i = 0; i < ps.n; ++i) {
      values[i] = col[rows[i]];
    }
  };

  if (ps.n >= kParallelNodeMinSamples && ps.k >= 2) {
    parallel_for(pool != nullptr ? *pool : ThreadPool::global(), 0, ps.k,
                 sort_one);
  } else {
    for (std::size_t f = 0; f < ps.k; ++f) {
      sort_one(f);
    }
  }
  return ps;
}

} // namespace detail

// Per-fit scratch arena: every buffer build() touches is sized once here,
// so the recursion allocates nothing per node.
//
// The k per-feature streams are structure-of-arrays (separate value and
// row-index arrays; targets are gathered through the row index) and
// double-buffered: a node at depth d reads its streams from buffer d & 1
// and partitions both children into the other buffer, so stream
// maintenance writes each entry exactly once per level with no copy-back.
struct DecisionTreeRegressor::Workspace {
  std::size_t m = 0; ///< training samples
  std::size_t k = 0; ///< features
  std::size_t min_leaf = 1;
  ThreadPool* pool = nullptr;

  std::vector<double> value[2];        ///< k streams × m entries, per buffer
  std::vector<std::uint32_t> index[2]; ///< training row of each entry
  std::vector<std::uint32_t> indices; ///< the seed's node sample ordering
  std::vector<std::uint8_t> go_left; ///< split side per sample row
  std::vector<double> targets; ///< y gathered onto training rows
  std::vector<std::size_t> features; ///< candidate buffer (re-iota'd per node)
  std::vector<Candidate> cand; ///< one slot per candidate feature
  std::vector<std::uint32_t> swap_l; ///< misfit positions, ascending
  std::vector<std::uint32_t> swap_r; ///< fit positions, descending
  std::vector<std::size_t> boot_offset; ///< bootstrap replay: bucket bounds
  std::vector<std::uint32_t> boot_bucket; ///< sample slots grouped by row
  std::vector<std::size_t> boot_cursor; ///< per-row fill cursor

  double* stream_value(int buf, std::size_t f) noexcept {
    return value[buf].data() + f * m;
  }
  std::uint32_t* stream_index(int buf, std::size_t f) noexcept {
    return index[buf].data() + f * m;
  }

  /// Borrow a retired workspace (or make a fresh one) / retire it again.
  /// A forest fits hundreds of trees back to back; without recycling each
  /// fit would mmap, fault in, and zero a few MB of streams only to free
  /// them milliseconds later. Recycling is invisible to results because
  /// every buffer is resized and fully rewritten before any read.
  static std::unique_ptr<Workspace> acquire();
  static void retire(std::unique_ptr<Workspace> ws);

private:
  struct Arena {
    std::mutex mutex;
    std::vector<std::unique_ptr<Workspace>> retired;
  };
  static Arena& arena();
};

DecisionTreeRegressor::Workspace::Arena& DecisionTreeRegressor::Workspace::arena() {
  static Arena a;
  return a;
}

std::unique_ptr<DecisionTreeRegressor::Workspace>
DecisionTreeRegressor::Workspace::acquire() {
  Arena& a = arena();
  std::lock_guard lock(a.mutex);
  if (!a.retired.empty()) {
    auto ws = std::move(a.retired.back());
    a.retired.pop_back();
    return ws;
  }
  return std::make_unique<Workspace>();
}

void DecisionTreeRegressor::Workspace::retire(std::unique_ptr<Workspace> ws) {
  Arena& a = arena();
  std::lock_guard lock(a.mutex);
  a.retired.push_back(std::move(ws));
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params)
    : params_(params) {
  DSEM_ENSURE(params.max_depth >= 0, "max_depth must be >= 0");
  DSEM_ENSURE(params.min_samples_split >= 2, "min_samples_split must be >= 2");
  DSEM_ENSURE(params.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  DSEM_ENSURE(params.max_features >= 0, "max_features must be >= 0");
}

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  const auto ps = detail::Presorted::build(x, y, params_.pool);
  fit_presorted(ps, y, {});
}

void DecisionTreeRegressor::fit_presorted(const detail::Presorted& ps,
                                          std::span<const double> y,
                                          std::span<const std::size_t> sample) {
  DSEM_ENSURE(ps.n == y.size(), "fit_presorted: presort/y size mismatch");
  DSEM_ENSURE(ps.n > 0, "fit_presorted: empty dataset");
  const std::size_t m = sample.empty() ? ps.n : sample.size();
  DSEM_ENSURE(m <= std::numeric_limits<std::uint32_t>::max(),
              "fit_presorted: too many samples");

  nodes_.clear();
  nodes_.reserve(2 * m); // a binary tree over m samples never exceeds 2m-1
  depth_ = 0;

  auto ws_owner = Workspace::acquire();
  Workspace& ws = *ws_owner;
  ws.m = m;
  ws.k = ps.k;
  ws.min_leaf = static_cast<std::size_t>(params_.min_samples_leaf);
  ws.pool = params_.pool;
  for (int buf = 0; buf < 2; ++buf) {
    ws.value[buf].resize(ps.k * m);
    ws.index[buf].resize(ps.k * m);
  }
  ws.indices.resize(m);
  ws.go_left.resize(m);
  ws.targets.resize(m);
  ws.features.resize(ps.k);
  ws.cand.resize(ps.k);
  ws.swap_l.resize(m);
  ws.swap_r.resize(m);
  std::iota(ws.indices.begin(), ws.indices.end(), std::uint32_t{0});

  if (sample.empty()) {
    std::copy(y.begin(), y.end(), ws.targets.begin());
    for (std::size_t f = 0; f < ps.k; ++f) {
      const double* values = ps.value.data() + f * ps.n;
      const std::uint32_t* rows = ps.row.data() + f * ps.n;
      double* sv = ws.stream_value(0, f);
      std::uint32_t* si = ws.stream_index(0, f);
      for (std::size_t j = 0; j < ps.n; ++j) {
        sv[j] = values[j];
        si[j] = rows[j];
      }
    }
  } else {
    // Bootstrap expansion: bucket the sample by source row, then emit each
    // feature's stream by walking the source order once and replaying each
    // source row `multiplicity` times — O(k·m) instead of k sorts. Within
    // equal (value, target) the emitted row order is bucket order, which
    // prefix sums cannot distinguish. The scratch lives in the recycled
    // workspace: a forest runs this expansion once per tree, and per-fit
    // heap churn for three small arrays is measurable on small fits.
    std::vector<std::size_t>& offset = ws.boot_offset;
    offset.assign(ps.n + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      DSEM_ENSURE(sample[i] < ps.n, "fit_presorted: sample row out of range");
      ++offset[sample[i] + 1];
      ws.targets[i] = y[sample[i]];
    }
    for (std::size_t r = 0; r < ps.n; ++r) {
      offset[r + 1] += offset[r];
    }
    std::vector<std::uint32_t>& bucket = ws.boot_bucket;
    bucket.resize(m);
    {
      std::vector<std::size_t>& cursor = ws.boot_cursor;
      cursor.assign(offset.begin(), offset.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        bucket[cursor[sample[i]]++] = static_cast<std::uint32_t>(i);
      }
    }
    for (std::size_t f = 0; f < ps.k; ++f) {
      const double* values = ps.value.data() + f * ps.n;
      const std::uint32_t* rows = ps.row.data() + f * ps.n;
      double* sv = ws.stream_value(0, f);
      std::uint32_t* si = ws.stream_index(0, f);
      std::size_t out = 0;
      for (std::size_t j = 0; j < ps.n; ++j) {
        const std::uint32_t src = rows[j];
        const double v = values[j];
        for (std::size_t b = offset[src]; b < offset[src + 1]; ++b) {
          sv[out] = v;
          si[out] = bucket[b];
          ++out;
        }
      }
      DSEM_ASSERT(out == m, "bootstrap expansion lost samples");
    }
  }

  Rng rng(params_.seed);
  build(ws, 0, m, 0, rng);
  Workspace::retire(std::move(ws_owner));

  metrics::histogram("ml.tree.nodes", static_cast<double>(nodes_.size()));
  metrics::histogram("ml.tree.depth", static_cast<double>(depth_));
}

std::int32_t DecisionTreeRegressor::build(Workspace& ws, std::size_t begin,
                                          std::size_t end, int depth,
                                          Rng& rng) {
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);
  const int buf = depth & 1; // which stream buffer holds this node

  // Node statistics accumulate over ws.indices order — the same
  // std::partition-produced ordering the seed iterates — so leaf means are
  // bit-identical even though split scanning runs on the sorted streams.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double v = ws.targets[ws.indices[i]];
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sum_sq - sum * mean; // total squared error around mean

  const auto make_leaf = [&] {
    nodes_.push_back(TreeNode{-1, 0.0, -1, -1, mean});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool depth_capped = params_.max_depth > 0 && depth >= params_.max_depth;
  if (n < static_cast<std::size_t>(params_.min_samples_split) ||
      depth_capped || sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset without replacement.
  const std::size_t k = ws.k;
  std::iota(ws.features.begin(), ws.features.end(), std::size_t{0});
  std::size_t tries = k;
  if (params_.max_features > 0 &&
      static_cast<std::size_t>(params_.max_features) < k) {
    tries = static_cast<std::size_t>(params_.max_features);
    for (std::size_t i = 0; i < tries; ++i) {
      const std::size_t j = i + rng.uniform_int(k - i);
      std::swap(ws.features[i], ws.features[j]);
    }
  }

  // Scan candidates into per-feature slots, then reduce in candidate
  // order — identical results whether the scans ran serially or fanned
  // out across the pool.
  const bool parallel = n >= kParallelNodeMinSamples && tries >= 2;
  const auto scan_one = [&](std::size_t fi) {
    const std::size_t f = ws.features[fi];
    ws.cand[fi] =
        scan_feature(ws.stream_value(buf, f) + begin,
                     ws.stream_index(buf, f) + begin, ws.targets.data(), n,
                     ws.min_leaf, sum, sum_sq, sse);
  };
  if (parallel) {
    parallel_for(ws.pool != nullptr ? *ws.pool : ThreadPool::global(), 0,
                 tries, scan_one);
  } else {
    for (std::size_t fi = 0; fi < tries; ++fi) {
      scan_one(fi);
    }
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = sse; // must strictly improve on no-split
  for (std::size_t fi = 0; fi < tries; ++fi) {
    const Candidate& c = ws.cand[fi];
    if (c.valid && c.score < best_score - 1e-12) {
      best_score = c.score;
      best_feature = static_cast<int>(ws.features[fi]);
      best_threshold = c.threshold;
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  // Mark each sample's side from the winning stream (its `value` is the
  // same double the seed's predicate read from the matrix), then keep both
  // orderings consistent: std::partition on `indices` reproduces the
  // seed's node ordering, and a stable partition of every sorted stream
  // into the other buffer preserves (value, target, row) order within
  // each child.
  const double* chosen_value =
      ws.stream_value(buf, static_cast<std::size_t>(best_feature));
  const std::uint32_t* chosen_index =
      ws.stream_index(buf, static_cast<std::size_t>(best_feature));
  std::size_t nl = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const bool left = chosen_value[i] <= best_threshold;
    ws.go_left[chosen_index[i]] = left ? 1 : 0;
    nl += left ? 1 : 0;
  }
  DSEM_ASSERT(nl > 0 && nl < n, "degenerate partition");
  const std::size_t mid = begin + nl;

  const int other = buf ^ 1;
  const auto partition_stream = [&](std::size_t f) {
    const double* sv = ws.stream_value(buf, f);
    const std::uint32_t* si = ws.stream_index(buf, f);
    double* lv = ws.stream_value(other, f);
    std::uint32_t* li = ws.stream_index(other, f);
    std::size_t wl = begin;
    std::size_t wr = mid;
    for (std::size_t i = begin; i < end; ++i) {
      // Branchless cursor pick: which side an entry lands on is random
      // enough that a conditional branch here mispredicts about half the
      // time, which dominates the copy itself.
      const std::size_t left = ws.go_left[si[i]];
      const std::size_t w = left != 0 ? wl : wr;
      lv[w] = sv[i];
      li[w] = si[i];
      wl += left;
      wr += std::size_t{1} - left;
    }
    DSEM_ASSERT(wl == mid && wr == end, "stream partition mismatch");
  };
  if (n >= kParallelNodeMinSamples && k >= 2) {
    parallel_for(ws.pool != nullptr ? *ws.pool : ThreadPool::global(), 0, k,
                 partition_stream);
  } else {
    for (std::size_t f = 0; f < k; ++f) {
      partition_stream(f);
    }
  }

  // Partition `indices` exactly as std::partition would — its (unspecified
  // but deterministic) two-pointer pairing is this tree's node ordering,
  // inherited from the seed. That loop swaps the i-th wrong-side entry
  // found scanning forward through what becomes the left span with the
  // i-th wrong-side entry found scanning backward through what becomes the
  // right span; every pair straddles `mid` and both scans find the same
  // number of them. Collecting the two position lists with branchless
  // compactions and then swapping pairwise reproduces that output
  // byte-for-byte while replacing two find loops that mispredict on every
  // coin-flip element with straight-line stores.
  {
    std::uint32_t* idx = ws.indices.data();
    std::size_t nmis = 0;
    for (std::size_t i = begin; i < mid; ++i) {
      ws.swap_l[nmis] = static_cast<std::uint32_t>(i);
      nmis += std::size_t{1} - ws.go_left[idx[i]];
    }
    std::size_t nfit = 0;
    for (std::size_t i = end; i-- > mid;) {
      ws.swap_r[nfit] = static_cast<std::uint32_t>(i);
      nfit += ws.go_left[idx[i]];
    }
    DSEM_ASSERT(nmis == nfit, "stream/index partition mismatch");
    for (std::size_t s = 0; s < nmis; ++s) {
      std::swap(idx[ws.swap_l[s]], idx[ws.swap_r[s]]);
    }
  }

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(TreeNode{best_feature, best_threshold, -1, -1, mean});
  const std::int32_t left = build(ws, begin, mid, depth + 1, rng);
  const std::int32_t right = build(ws, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

DecisionTreeRegressor
DecisionTreeRegressor::from_nodes(TreeParams params,
                                  std::vector<TreeNode> nodes) {
  DSEM_ENSURE(!nodes.empty(), "from_nodes: empty node array");
  const auto n = static_cast<std::int32_t>(nodes.size());
  // Walk from the root, checking shape as we go: every index must be
  // visited exactly once (no orphans, no diamonds, no cycles).
  std::vector<bool> visited(nodes.size(), false);
  std::vector<std::int32_t> stack{0};
  std::size_t reached = 0;
  int depth = 0;
  std::vector<int> depth_of(nodes.size(), 0);
  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    DSEM_ENSURE(id >= 0 && id < n, "from_nodes: child index out of range");
    const auto uid = static_cast<std::size_t>(id);
    DSEM_ENSURE(!visited[uid], "from_nodes: node reached twice");
    visited[uid] = true;
    ++reached;
    depth = std::max(depth, depth_of[uid]);
    const TreeNode& node = nodes[uid];
    if (node.feature < 0) {
      DSEM_ENSURE(node.left == -1 && node.right == -1,
                  "from_nodes: leaf with children");
      continue;
    }
    DSEM_ENSURE(node.left != -1 && node.right != -1,
                "from_nodes: interior node missing a child");
    for (const std::int32_t child : {node.left, node.right}) {
      DSEM_ENSURE(child >= 0 && child < n,
                  "from_nodes: child index out of range");
      depth_of[static_cast<std::size_t>(child)] = depth_of[uid] + 1;
      stack.push_back(child);
    }
  }
  DSEM_ENSURE(reached == nodes.size(), "from_nodes: unreachable nodes");
  DecisionTreeRegressor tree(params);
  tree.nodes_ = std::move(nodes);
  tree.depth_ = depth;
  return tree;
}

double DecisionTreeRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!nodes_.empty(), "predict on unfitted DecisionTreeRegressor");
  std::size_t node = 0;
  for (;;) {
    const TreeNode& n = nodes_[node];
    if (n.feature < 0) {
      return n.value;
    }
    DSEM_ASSERT(static_cast<std::size_t>(n.feature) < x.size(),
                "feature index out of range");
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                              : n.right);
  }
}

} // namespace dsem::ml
