#include "ml/linear.hpp"

#include "common/error.hpp"

namespace dsem::ml {

void LinearRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");

  // Augment with a bias column.
  Matrix xb(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = xb.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    dst[x.cols()] = 1.0;
  }

  Matrix g = gram(xb);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    g(i, i) += ridge_;
  }
  const std::vector<double> w = solve_spd(std::move(g), at_y(xb, y));
  coef_.assign(w.begin(), w.end() - 1);
  intercept_ = w.back();
}

double LinearRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!coef_.empty(), "predict on unfitted LinearRegressor");
  DSEM_ENSURE(x.size() == coef_.size(), "predict: feature width mismatch");
  return dot(x, coef_) + intercept_;
}

} // namespace dsem::ml
