// Epsilon-insensitive support vector regression with an RBF kernel.
//
// Solved by cyclic coordinate descent on the bias-free dual (a constant
// term added to the kernel absorbs the bias):
//   min_beta  1/2 betaᵀK beta - betaᵀy + eps * ||beta||₁,  |beta_i| <= C
// Each coordinate has the closed-form soft-threshold/clip update, which is
// simple, deterministic, and convergent. Features are standardized
// internally (RBF distances are scale-sensitive).
#pragma once

#include "ml/regressor.hpp"

namespace dsem {
class ThreadPool;
}

namespace dsem::ml {

class SvrRbf final : public Regressor {
public:
  /// `pool` parallelizes the kernel-matrix build during fit (each entry is
  /// the same scalar formula → bit-identical for any pool size); nullptr =
  /// the global pool.
  explicit SvrRbf(double c = 10.0, double epsilon = 0.01, double gamma = 1.0,
                  int max_iter = 300, double tol = 1e-5,
                  ThreadPool* pool = nullptr);

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<SvrRbf>(c_, epsilon_, gamma_, max_iter_, tol_,
                                    pool_);
  }
  std::string name() const override { return "SVR_RBF"; }

  std::size_t support_vector_count() const noexcept;

private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  double c_;
  double epsilon_;
  double gamma_;
  int max_iter_;
  double tol_;
  ThreadPool* pool_;

  StandardScaler scaler_;
  Matrix support_; // standardized training samples
  std::vector<double> beta_;
};

} // namespace dsem::ml
