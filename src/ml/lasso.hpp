// L1-regularized least squares via cyclic coordinate descent on
// standardized features (the scikit-learn Lasso formulation:
// (1/2n)||y - Xw||² + alpha * ||w||₁).
#pragma once

#include "ml/regressor.hpp"

namespace dsem::ml {

class LassoRegressor final : public Regressor {
public:
  explicit LassoRegressor(double alpha = 1.0, int max_iter = 1000,
                          double tol = 1e-6);

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<LassoRegressor>(alpha_, max_iter_, tol_);
  }
  std::string name() const override { return "Lasso"; }

  /// Coefficients in the *original* (unstandardized) feature space.
  std::span<const double> coefficients() const noexcept { return coef_; }
  double intercept() const noexcept { return intercept_; }
  int iterations_run() const noexcept { return iterations_; }

private:
  double alpha_;
  int max_iter_;
  double tol_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  int iterations_ = 0;
};

} // namespace dsem::ml
