// Common interface for all regression models.
//
// fit() consumes a feature matrix X (one sample per row) and targets y;
// clone() returns an *unfitted* copy carrying the same hyperparameters so
// that cross-validation and grid search can refit fresh instances per fold.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace dsem::ml {

class Regressor {
public:
  virtual ~Regressor() = default;

  virtual void fit(const Matrix& x, std::span<const double> y) = 0;
  virtual double predict_one(std::span<const double> x) const = 0;
  virtual std::unique_ptr<Regressor> clone() const = 0;
  virtual std::string name() const = 0;

  /// Predicts every row of `x`. out[r] is exactly predict_one(x.row(r)) —
  /// rows are independent, so the base implementation fans large batches
  /// across the global pool with each row writing its own slot (the output
  /// never depends on scheduling). Models override this when a batch can
  /// be evaluated in a more cache-friendly order than row-by-row.
  virtual std::vector<double> predict_many(const Matrix& x) const;

  std::vector<double> predict(const Matrix& x) const {
    return predict_many(x);
  }
};

/// Per-feature standardization (zero mean, unit variance). Constant
/// features get scale 1 so transform is a no-op on them.
class StandardScaler {
public:
  void fit(const Matrix& x);
  std::vector<double> transform_one(std::span<const double> x) const;
  Matrix transform(const Matrix& x) const;
  bool fitted() const noexcept { return !mean_.empty(); }
  std::span<const double> mean() const noexcept { return mean_; }
  std::span<const double> scale() const noexcept { return scale_; }

private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

} // namespace dsem::ml
