// Dense row-major matrix with just enough linear algebra for the
// regressors: products, transpose-products, and an SPD Cholesky solve for
// ridge-stabilized normal equations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace dsem::ml {

class Matrix {
public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> data() const noexcept { return data_; }

  /// Select a subset of rows (by index, duplicates allowed — used for
  /// bootstrap resampling).
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  Matrix transposed() const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Feature-major (column-major) copy of a Matrix for the training hot
/// paths: col(f) is one contiguous span per feature, so per-feature sorts
/// and scans touch sequential memory instead of striding across rows.
/// A copy, not a view — it does not track later writes to the source.
class FeatureMajor {
public:
  FeatureMajor() = default;
  explicit FeatureMajor(const Matrix& m);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::span<const double> col(std::size_t c) const noexcept {
    return {data_.data() + c * rows_, rows_};
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Throws on dimension mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Aᵀ * A (k x k for an n x k A).
Matrix gram(const Matrix& a);

/// Aᵀ * y.
std::vector<double> at_y(const Matrix& a, std::span<const double> y);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Adds `jitter` * I on breakdown (retries a few times) before throwing.
std::vector<double> solve_spd(Matrix a, std::vector<double> b,
                              double jitter = 1e-10);

/// Dot product of equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

} // namespace dsem::ml
