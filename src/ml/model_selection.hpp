// Cross-validation and hyperparameter grid search.
//
// The paper validates its domain-specific models with leave-one-out
// cross-validation *over input feature vectors* (all frequency samples of
// one input form one held-out group), and tunes the Random Forest with a
// grid search — both provided here.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/regressor.hpp"

namespace dsem::ml {

/// One train/test split, as index lists into the dataset.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// K-fold splits of n samples (deterministically shuffled by seed).
std::vector<Split> kfold(std::size_t n, std::size_t folds,
                         std::uint64_t seed = 0);

/// Leave-one-group-out: one split per distinct group label; samples of the
/// held-out group form the test set. This is the paper's LOOCV over inputs.
std::vector<Split> leave_one_group_out(std::span<const int> groups);

/// Fits a clone of `proto` on each split's training rows and scores on the
/// test rows with `score(truth, pred)` (lower = better, e.g. MAPE).
/// Returns the mean score across splits.
double cross_val_score(
    const Regressor& proto, const Matrix& x, std::span<const double> y,
    std::span<const Split> splits,
    const std::function<double(std::span<const double>, std::span<const double>)>&
        score);

/// Hyperparameter grid search (lower score = better).
struct GridSearchResult {
  std::map<std::string, double> best_params;
  double best_score = 0.0;
  std::size_t evaluated = 0;
};

/// `grid` maps parameter name to candidate values; `factory` builds an
/// unfitted regressor from one full assignment. All combinations are
/// evaluated by cross_val_score over `splits`.
GridSearchResult grid_search(
    const std::map<std::string, std::vector<double>>& grid,
    const std::function<std::unique_ptr<Regressor>(
        const std::map<std::string, double>&)>& factory,
    const Matrix& x, std::span<const double> y, std::span<const Split> splits,
    const std::function<double(std::span<const double>, std::span<const double>)>&
        score);

} // namespace dsem::ml
