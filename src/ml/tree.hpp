// CART regression tree: greedy variance-reduction splits, optional
// per-node feature subsampling (the randomness random forests need).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/regressor.hpp"

namespace dsem::ml {

struct TreeParams {
  int max_depth = 0;          ///< 0 = unlimited
  int min_samples_split = 2;  ///< fewer samples => leaf
  int min_samples_leaf = 1;   ///< each side of a split keeps at least this
  int max_features = 0;       ///< features tried per node; 0 = all
  std::uint64_t seed = 17;    ///< for feature subsampling
};

class DecisionTreeRegressor final : public Regressor {
public:
  explicit DecisionTreeRegressor(TreeParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<DecisionTreeRegressor>(params_);
  }
  std::string name() const override { return "DecisionTree"; }

  const TreeParams& params() const noexcept { return params_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }

private:
  struct Node {
    // Leaves have feature == -1 and carry `value`.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
  };

  std::int32_t build(const Matrix& x, std::span<const double> y,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth, Rng& rng);

  TreeParams params_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

} // namespace dsem::ml
