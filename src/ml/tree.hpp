// CART regression tree: greedy variance-reduction splits, optional
// per-node feature subsampling (the randomness random forests need).
//
// Split finding runs on pre-sorted feature order (DESIGN.md §7.10): fit()
// sorts every feature once by (value, target, row) and the recursion
// maintains that order down both children with a stable partition, so no
// node ever sorts. Candidate-feature scans are independent and reduce in
// candidate order, which lets large nodes fan the scan out across the
// ThreadPool without changing a single chosen split.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/regressor.hpp"

namespace dsem {
class ThreadPool;
}

namespace dsem::ml {

struct TreeParams {
  int max_depth = 0;          ///< 0 = unlimited
  int min_samples_split = 2;  ///< fewer samples => leaf
  int min_samples_leaf = 1;   ///< each side of a split keeps at least this
  int max_features = 0;       ///< features tried per node; 0 = all
  std::uint64_t seed = 17;    ///< for feature subsampling
  /// Pool for the candidate-feature scan and order maintenance at large
  /// nodes; nullptr = the global pool. Pool size never affects the fitted
  /// tree (every parallel unit writes its own pre-sized slot).
  ThreadPool* pool = nullptr;
};

/// One node of a fitted tree. Leaves have feature == -1 and carry `value`;
/// interior nodes route x[feature] <= threshold left, else right.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;
};

namespace detail {

/// Per-feature sort of a training set by (value, target, row), stored
/// feature-major: order[f*n + i] is the row holding the i-th smallest
/// value of feature f, value[f*n + i] that value. Built once per dataset;
/// a forest shares one Presorted across all of its trees, turning each
/// bootstrap re-sort into an O(n) multiplicity expansion of this order.
struct Presorted {
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<double> value;
  std::vector<std::uint32_t> row;

  static Presorted build(const Matrix& x, std::span<const double> y,
                         ThreadPool* pool);
};

} // namespace detail

class DecisionTreeRegressor final : public Regressor {
public:
  explicit DecisionTreeRegressor(TreeParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<DecisionTreeRegressor>(params_);
  }
  std::string name() const override { return "DecisionTree"; }

  /// Fits on a resample of a pre-sorted dataset — the random-forest fast
  /// path. `sample` lists source rows (duplicates allowed, as bootstrap
  /// resampling produces); empty means the identity sample. Equivalent to
  /// fit(x.gather_rows(sample), y[sample]) but re-sorts each feature in
  /// O(n) from `ps` instead of O(n log n) from scratch.
  void fit_presorted(const detail::Presorted& ps, std::span<const double> y,
                     std::span<const std::size_t> sample);

  /// Rebuilds a fitted tree from a node array — the deserialization path
  /// (ml/serialize.hpp). Validates the array is one well-formed tree
  /// rooted at index 0 (children in range, interior nodes have both
  /// children, leaves neither, every node reachable exactly once) and
  /// recomputes the depth; throws contract_error otherwise.
  static DecisionTreeRegressor from_nodes(TreeParams params,
                                          std::vector<TreeNode> nodes);

  const TreeParams& params() const noexcept { return params_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }
  /// The fitted node array (preorder; index 0 is the root).
  std::span<const TreeNode> nodes() const noexcept { return nodes_; }

private:
  struct Workspace;

  std::int32_t build(Workspace& ws, std::size_t begin, std::size_t end,
                     int depth, Rng& rng);

  TreeParams params_;
  std::vector<TreeNode> nodes_;
  int depth_ = 0;
};

} // namespace dsem::ml
