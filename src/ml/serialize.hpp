// Regressor serialization for model artifacts (DESIGN.md §7.11).
//
// A fitted regressor round-trips through json::Value bit-identically:
// every double serializes with "%.17g" (round-trip exact), 64-bit seeds
// as decimal strings (a JSON number would truncate past 2^53), and key
// order is fixed — so serialize → parse → re-serialize is byte-equal and
// the restored model's predictions match the original bit for bit.
//
// Supported families: RandomForest and DecisionTree (the paper's selected
// regressor and its building block). Other families raise a clean
// contract_error naming the type rather than silently degrading.
#pragma once

#include <memory>

#include "common/json.hpp"
#include "ml/forest.hpp"

namespace dsem::ml {

/// Serializes a fitted regressor. Throws contract_error for unfitted
/// models and for families without a serialization (SVR, Linear, Lasso).
json::Value regressor_to_json(const Regressor& regressor);

/// Rebuilds a regressor from regressor_to_json output. Validates the tree
/// structure (child indices in range, leaf/interior consistency) before
/// accepting it.
std::unique_ptr<Regressor> regressor_from_json(const json::Value& value);

} // namespace dsem::ml
