#include "ml/forest.hpp"

#include <numeric>

#include "common/error.hpp"

namespace dsem::ml {

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  DSEM_ENSURE(params.n_estimators > 0, "n_estimators must be positive");
}

void RandomForestRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  const std::size_t n = x.rows();
  const auto n_trees = static_cast<std::size_t>(params_.n_estimators);

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.min_samples_split = params_.min_samples_split;
  tp.min_samples_leaf = params_.min_samples_leaf;
  tp.max_features = params_.max_features;

  trees_.assign(n_trees, DecisionTreeRegressor(tp));

  // Derive one independent seed per tree up front so results do not depend
  // on scheduling order (CP.2: no shared mutable RNG across tasks).
  SplitMix64 seeder(params_.seed);
  std::vector<std::uint64_t> seeds(n_trees);
  for (auto& s : seeds) {
    s = seeder.next();
  }

  parallel_for(0, n_trees, [&](std::size_t t) {
    Rng rng(seeds[t]);
    TreeParams tree_params = tp;
    tree_params.seed = rng();

    std::vector<std::size_t> sample(n);
    if (params_.bootstrap) {
      for (auto& idx : sample) {
        idx = rng.uniform_int(n);
      }
    } else {
      std::iota(sample.begin(), sample.end(), 0);
    }
    const Matrix xb = x.gather_rows(sample);
    std::vector<double> yb(n);
    for (std::size_t i = 0; i < n; ++i) {
      yb[i] = y[sample[i]];
    }
    DecisionTreeRegressor tree(tree_params);
    tree.fit(xb, yb);
    trees_[t] = std::move(tree);
  });
}

double RandomForestRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!trees_.empty(), "predict on unfitted RandomForestRegressor");
  double acc = 0.0;
  for (const auto& tree : trees_) {
    acc += tree.predict_one(x);
  }
  return acc / static_cast<double>(trees_.size());
}

} // namespace dsem::ml
