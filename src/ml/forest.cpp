#include "ml/forest.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace dsem::ml {

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  DSEM_ENSURE(params.n_estimators > 0, "n_estimators must be positive");
}

void RandomForestRegressor::fit(const Matrix& x, std::span<const double> y) {
  DSEM_ENSURE(x.rows() == y.size(), "fit: X/y size mismatch");
  DSEM_ENSURE(x.rows() > 0, "fit: empty dataset");
  metrics::ScopedTimer timer("ml.forest.fit_s");
  const std::size_t n = x.rows();
  const auto n_trees = static_cast<std::size_t>(params_.n_estimators);
  ThreadPool& pool =
      params_.pool != nullptr ? *params_.pool : ThreadPool::global();

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.min_samples_split = params_.min_samples_split;
  tp.min_samples_leaf = params_.min_samples_leaf;
  tp.max_features = params_.max_features;
  tp.pool = params_.pool;

  trees_.assign(n_trees, DecisionTreeRegressor(tp));

  // Sort every feature once and share the result: each tree re-sorts its
  // bootstrap in O(k·n) from this order instead of O(k·n log n) from
  // scratch (DESIGN.md §7.10).
  const auto presorted = detail::Presorted::build(x, y, params_.pool);

  // Derive one independent seed per tree up front so results do not depend
  // on scheduling order (CP.2: no shared mutable RNG across tasks).
  SplitMix64 seeder(params_.seed);
  std::vector<std::uint64_t> seeds(n_trees);
  for (auto& s : seeds) {
    s = seeder.next();
  }

  parallel_for(pool, 0, n_trees, [&](std::size_t t) {
    Rng rng(seeds[t]);
    TreeParams tree_params = tp;
    tree_params.seed = rng();

    // One bootstrap buffer per worker thread, fully rewritten per tree:
    // a forest draws hundreds of samples back to back, and the per-tree
    // allocation shows up on small fits where the draw itself is cheap.
    static thread_local std::vector<std::size_t> sample;
    sample.resize(n);
    if (params_.bootstrap) {
      for (auto& idx : sample) {
        idx = rng.uniform_int(n);
      }
    } else {
      std::iota(sample.begin(), sample.end(), 0);
    }
    DecisionTreeRegressor tree(tree_params);
    tree.fit_presorted(presorted, y, sample);
    trees_[t] = std::move(tree);
  });
}

RandomForestRegressor
RandomForestRegressor::from_trees(ForestParams params,
                                  std::vector<DecisionTreeRegressor> trees) {
  DSEM_ENSURE(trees.size() == static_cast<std::size_t>(params.n_estimators),
              "from_trees: tree count does not match n_estimators");
  for (const DecisionTreeRegressor& tree : trees) {
    DSEM_ENSURE(tree.node_count() > 0, "from_trees: unfitted tree");
  }
  RandomForestRegressor forest(params);
  forest.trees_ = std::move(trees);
  return forest;
}

double RandomForestRegressor::predict_one(std::span<const double> x) const {
  DSEM_ENSURE(!trees_.empty(), "predict on unfitted RandomForestRegressor");
  double acc = 0.0;
  for (const auto& tree : trees_) {
    acc += tree.predict_one(x);
  }
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::predict_many(const Matrix& x) const {
  DSEM_ENSURE(!trees_.empty(), "predict on unfitted RandomForestRegressor");
  std::vector<double> out(x.rows(), 0.0);
  const auto run = [&](std::size_t lo, std::size_t hi) {
    // Tree-outer: one tree's node array stays hot across the whole chunk.
    // Each row still sums trees in ascending order — the predict_one sum.
    for (const auto& tree : trees_) {
      for (std::size_t r = lo; r < hi; ++r) {
        out[r] += tree.predict_one(x.row(r));
      }
    }
    const auto scale = static_cast<double>(trees_.size());
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] /= scale;
    }
  };
  if (x.rows() >= 256) {
    ThreadPool& pool =
        params_.pool != nullptr ? *params_.pool : ThreadPool::global();
    parallel_for_chunks(pool, 0, x.rows(), run);
  } else {
    run(0, x.rows());
  }
  return out;
}

} // namespace dsem::ml
