#include "ml/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dsem::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  DSEM_ENSURE(!rows.empty(), "from_rows: no rows");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    DSEM_ENSURE(rows[r].size() == m.cols_, "from_rows: ragged input");
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t r = 0; r < indices.size(); ++r) {
    DSEM_ENSURE(indices[r] < rows_, "gather_rows: index out of range");
    const auto src = row(indices[r]);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

FeatureMajor::FeatureMajor(const Matrix& m)
    : rows_(m.rows()), cols_(m.cols()), data_(m.rows() * m.cols()) {
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = m.row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      data_[c * rows_ + r] = src[c];
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  DSEM_ENSURE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double v = row[i];
      if (v == 0.0) {
        continue;
      }
      for (std::size_t j = i; j < a.cols(); ++j) {
        g(i, j) += v * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

std::vector<double> at_y(const Matrix& a, std::span<const double> y) {
  DSEM_ENSURE(a.rows() == y.size(), "at_y: dimension mismatch");
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out[c] += row[c] * y[r];
    }
  }
  return out;
}

std::vector<double> solve_spd(Matrix a, std::vector<double> b, double jitter) {
  DSEM_ENSURE(a.rows() == a.cols(), "solve_spd: matrix must be square");
  DSEM_ENSURE(a.rows() == b.size(), "solve_spd: rhs size mismatch");
  const std::size_t n = a.rows();

  // Cholesky with escalating diagonal jitter on breakdown.
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix l(n, n);
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a(i, j);
        for (std::size_t k = 0; k < j; ++k) {
          sum -= l(i, k) * l(j, k);
        }
        if (i == j) {
          if (sum <= 0.0 || !std::isfinite(sum)) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (ok) {
      // Forward then backward substitution.
      std::vector<double> y(n);
      for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k) {
          sum -= l(i, k) * y[k];
        }
        y[i] = sum / l(i, i);
      }
      std::vector<double> x(n);
      for (std::size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) {
          sum -= l(k, ii) * x[k];
        }
        x[ii] = sum / l(ii, ii);
      }
      return x;
    }
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += jitter;
    }
    jitter *= 100.0;
  }
  DSEM_ENSURE(false, "solve_spd: matrix is not positive definite");
  return {};
}

double dot(std::span<const double> a, std::span<const double> b) {
  DSEM_ENSURE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

} // namespace dsem::ml
