#include "ml/serialize.hpp"

#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace dsem::ml {

namespace {

// 64-bit seeds as decimal strings: a JSON number is a double, which only
// holds integers exactly up to 2^53 — derived per-tree seeds use all 64
// bits.
json::Value seed_to_json(std::uint64_t seed) {
  return json::Value(std::to_string(seed));
}

std::uint64_t seed_from_json(const json::Value& value) {
  const std::string& s = value.as_string();
  std::uint64_t seed = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), seed, 10);
  DSEM_ENSURE(ec == std::errc() && ptr == s.data() + s.size(),
              "model artifact: malformed seed: " + s);
  return seed;
}

std::int32_t int32_field(const json::Value& value) {
  const double d = value.as_number();
  DSEM_ENSURE(std::nearbyint(d) == d, "model artifact: non-integral field");
  return static_cast<std::int32_t>(d);
}

json::Value tree_to_json(const DecisionTreeRegressor& tree) {
  auto nodes = json::Value::array();
  for (const TreeNode& node : tree.nodes()) {
    auto row = json::Value::array();
    row.push_back(node.feature);
    row.push_back(node.threshold);
    row.push_back(node.left);
    row.push_back(node.right);
    row.push_back(node.value);
    nodes.push_back(std::move(row));
  }
  auto out = json::Value::object();
  out.set("nodes", std::move(nodes));
  return out;
}

DecisionTreeRegressor tree_from_json(TreeParams params,
                                     const json::Value& value) {
  const json::Value::Array& rows = value.at("nodes").as_array();
  std::vector<TreeNode> nodes;
  nodes.reserve(rows.size());
  for (const json::Value& row : rows) {
    const json::Value::Array& cells = row.as_array();
    DSEM_ENSURE(cells.size() == 5,
                "model artifact: tree node is not a 5-tuple");
    TreeNode node;
    node.feature = int32_field(cells[0]);
    node.threshold = cells[1].as_number();
    node.left = int32_field(cells[2]);
    node.right = int32_field(cells[3]);
    node.value = cells[4].as_number();
    DSEM_ENSURE(node.feature >= -1, "model artifact: bad feature index");
    nodes.push_back(node);
  }
  return DecisionTreeRegressor::from_nodes(params, std::move(nodes));
}

json::Value tree_params_to_json(const TreeParams& params) {
  auto out = json::Value::object();
  out.set("max_depth", params.max_depth);
  out.set("min_samples_split", params.min_samples_split);
  out.set("min_samples_leaf", params.min_samples_leaf);
  out.set("max_features", params.max_features);
  out.set("seed", seed_to_json(params.seed));
  return out;
}

TreeParams tree_params_from_json(const json::Value& value) {
  TreeParams params;
  params.max_depth = int32_field(value.at("max_depth"));
  params.min_samples_split = int32_field(value.at("min_samples_split"));
  params.min_samples_leaf = int32_field(value.at("min_samples_leaf"));
  params.max_features = int32_field(value.at("max_features"));
  params.seed = seed_from_json(value.at("seed"));
  return params;
}

json::Value forest_to_json(const RandomForestRegressor& forest) {
  DSEM_ENSURE(forest.tree_count() > 0,
              "cannot serialize an unfitted RandomForestRegressor");
  const ForestParams& params = forest.params();
  auto params_json = json::Value::object();
  params_json.set("n_estimators", params.n_estimators);
  params_json.set("max_depth", params.max_depth);
  params_json.set("min_samples_split", params.min_samples_split);
  params_json.set("min_samples_leaf", params.min_samples_leaf);
  params_json.set("max_features", params.max_features);
  params_json.set("bootstrap", params.bootstrap);
  params_json.set("seed", seed_to_json(params.seed));

  auto trees = json::Value::array();
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    trees.push_back(tree_to_json(forest.tree(t)));
  }

  auto out = json::Value::object();
  out.set("type", "RandomForest");
  out.set("params", std::move(params_json));
  out.set("trees", std::move(trees));
  return out;
}

std::unique_ptr<Regressor> forest_from_json(const json::Value& value) {
  const json::Value& params_json = value.at("params");
  ForestParams params;
  params.n_estimators = int32_field(params_json.at("n_estimators"));
  params.max_depth = int32_field(params_json.at("max_depth"));
  params.min_samples_split = int32_field(params_json.at("min_samples_split"));
  params.min_samples_leaf = int32_field(params_json.at("min_samples_leaf"));
  params.max_features = int32_field(params_json.at("max_features"));
  params.bootstrap = params_json.at("bootstrap").as_bool();
  params.seed = seed_from_json(params_json.at("seed"));

  // Restored trees carry the forest-level hyperparameters, like fit()
  // hands out; the fit-time per-tree RNG seeds are not part of the fitted
  // model, so the forest round-trips without them.
  TreeParams tp;
  tp.max_depth = params.max_depth;
  tp.min_samples_split = params.min_samples_split;
  tp.min_samples_leaf = params.min_samples_leaf;
  tp.max_features = params.max_features;

  const json::Value::Array& trees_json = value.at("trees").as_array();
  std::vector<DecisionTreeRegressor> trees;
  trees.reserve(trees_json.size());
  for (const json::Value& tree : trees_json) {
    trees.push_back(tree_from_json(tp, tree));
  }
  return std::make_unique<RandomForestRegressor>(
      RandomForestRegressor::from_trees(params, std::move(trees)));
}

} // namespace

json::Value regressor_to_json(const Regressor& regressor) {
  if (const auto* forest =
          dynamic_cast<const RandomForestRegressor*>(&regressor)) {
    return forest_to_json(*forest);
  }
  if (const auto* tree =
          dynamic_cast<const DecisionTreeRegressor*>(&regressor)) {
    DSEM_ENSURE(tree->node_count() > 0,
                "cannot serialize an unfitted DecisionTreeRegressor");
    auto out = json::Value::object();
    out.set("type", "DecisionTree");
    out.set("params", tree_params_to_json(tree->params()));
    out.set("tree", tree_to_json(*tree));
    return out;
  }
  throw contract_error("no serialization for regressor family: " +
                       regressor.name());
}

std::unique_ptr<Regressor> regressor_from_json(const json::Value& value) {
  const std::string& type = value.at("type").as_string();
  if (type == "RandomForest") {
    return forest_from_json(value);
  }
  if (type == "DecisionTree") {
    return std::make_unique<DecisionTreeRegressor>(tree_from_json(
        tree_params_from_json(value.at("params")), value.at("tree")));
  }
  throw contract_error("unknown serialized regressor type: " + type);
}

} // namespace dsem::ml
