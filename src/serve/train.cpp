#include "serve/train.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/ds_model.hpp"

namespace dsem::serve {

std::vector<std::unique_ptr<core::Workload>>
training_set(const std::string& app, bool compact) {
  std::vector<std::unique_ptr<core::Workload>> out;
  if (app == "cronos") {
    const std::vector<int> sizes = compact
                                       ? std::vector<int>{10, 40, 160}
                                       : std::vector<int>{10, 20, 40, 80,
                                                          120, 160};
    for (const int n : sizes) {
      const int side = std::max(4, n * 2 / 5);
      out.push_back(std::make_unique<core::CronosWorkload>(
          cronos::GridDims{n, side, side}, 10));
    }
    return out;
  }
  DSEM_ENSURE(app == "ligen", "no training set for app: " + app);
  const std::vector<int> ligands = compact
                                       ? std::vector<int>{16, 1024, 10000}
                                       : std::vector<int>{16, 256, 1024,
                                                          4096, 10000};
  const std::vector<int> atoms =
      compact ? std::vector<int>{31, 89} : std::vector<int>{31, 63, 89};
  const std::vector<int> frags =
      compact ? std::vector<int>{4, 20} : std::vector<int>{4, 8, 20};
  for (const int l : ligands) {
    for (const int a : atoms) {
      for (const int f : frags) {
        out.push_back(std::make_unique<core::LigenWorkload>(l, a, f));
      }
    }
  }
  return out;
}

namespace {

/// The shared "profile the training grid" half of both train entry
/// points: strided training frequencies, one sweep, and the artifact
/// shell (key, provenance, full frequency grid, default clock).
struct TrainingSweep {
  std::vector<std::unique_ptr<core::Workload>> workloads;
  core::Dataset dataset;
  ModelArtifact artifact;
};

TrainingSweep run_training_sweep(synergy::Device& device, const ModelKey& key,
                                 const TrainConfig& config) {
  DSEM_ENSURE(config.freq_stride > 0, "train: frequency stride must be > 0");
  TrainingSweep out;
  out.workloads = training_set(key.application, config.compact);

  const std::vector<double> all_freqs = device.supported_frequencies();
  std::vector<double> train_freqs;
  for (std::size_t i = 0; i < all_freqs.size(); i += config.freq_stride) {
    train_freqs.push_back(all_freqs[i]);
  }

  out.dataset =
      core::build_dataset(device, out.workloads, config.sweep, train_freqs);

  out.artifact.key = key;
  out.artifact.origin = config.origin;
  out.artifact.feature_names = out.workloads.front()->feature_names();
  out.artifact.freqs_mhz = all_freqs;
  out.artifact.default_freq_mhz = device.default_frequency();
  return out;
}

} // namespace

ModelArtifact train_domain_specific(synergy::Device& device,
                                    const ModelKey& key,
                                    const TrainConfig& config) {
  TrainingSweep sweep = run_training_sweep(device, key, config);

  auto model = config.prototype != nullptr
                   ? std::make_shared<core::DomainSpecificModel>(
                         *config.prototype)
                   : std::make_shared<core::DomainSpecificModel>();
  model->train(sweep.dataset);
  sweep.artifact.ds = std::move(model);
  return std::move(sweep.artifact);
}

ModelArtifact train_hybrid(synergy::Device& device, const ModelKey& key,
                           const TrainConfig& config) {
  TrainingSweep sweep = run_training_sweep(device, key, config);

  auto model = config.prototype != nullptr
                   ? std::make_shared<core::HybridModel>(*config.prototype)
                   : std::make_shared<core::HybridModel>();
  model->train(sweep.dataset, sweep.workloads, device.spec());
  sweep.artifact.hybrid = std::move(model);
  return std::move(sweep.artifact);
}

} // namespace dsem::serve
