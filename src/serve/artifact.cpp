#include "serve/artifact.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dsem::serve {

json::Value ModelArtifact::to_json() const {
  const int kinds = static_cast<int>(ds != nullptr) +
                    static_cast<int>(gp != nullptr) +
                    static_cast<int>(hybrid != nullptr);
  DSEM_ENSURE(kinds == 1, "artifact must hold exactly one model");
  DSEM_ENSURE(!key.application.empty() && !key.device.empty(),
              "artifact key must name an application and a device");
  DSEM_ENSURE(!freqs_mhz.empty(), "artifact without a frequency schedule");
  DSEM_ENSURE(default_freq_mhz > 0.0, "artifact without a default clock");

  auto out = json::Value::object();
  out.set("schema", kModelSchema);
  out.set("kind", ds      ? "domain-specific"
                  : gp    ? "general-purpose"
                          : "hybrid");
  out.set("application", key.application);
  out.set("device", key.device);
  out.set("origin", origin);
  auto names = json::Value::array();
  for (const std::string& name : feature_names) {
    names.push_back(name);
  }
  out.set("feature_names", std::move(names));
  auto freqs = json::Value::array();
  for (const double f : freqs_mhz) {
    freqs.push_back(f);
  }
  out.set("freqs_mhz", std::move(freqs));
  out.set("default_freq_mhz", default_freq_mhz);
  out.set("model", ds      ? ds->to_json()
                   : gp    ? gp->to_json()
                           : hybrid->to_json());
  return out;
}

ModelArtifact ModelArtifact::from_json(const json::Value& value) {
  DSEM_ENSURE(value.is_object(), "model artifact: not a JSON object");
  const json::Value* schema = value.find("schema");
  DSEM_ENSURE(schema != nullptr && schema->is_string(),
              "model artifact: missing schema tag");
  DSEM_ENSURE(schema->as_string() == kModelSchema,
              "model artifact: unsupported schema \"" + schema->as_string() +
                  "\" (this build reads " + kModelSchema + ")");

  ModelArtifact artifact;
  artifact.key.application = value.at("application").as_string();
  artifact.key.device = value.at("device").as_string();
  artifact.origin = value.at("origin").as_string();
  for (const json::Value& name : value.at("feature_names").as_array()) {
    artifact.feature_names.push_back(name.as_string());
  }
  for (const json::Value& f : value.at("freqs_mhz").as_array()) {
    artifact.freqs_mhz.push_back(f.as_number());
  }
  artifact.default_freq_mhz = value.at("default_freq_mhz").as_number();
  DSEM_ENSURE(!artifact.freqs_mhz.empty(),
              "model artifact: empty frequency schedule");
  DSEM_ENSURE(artifact.default_freq_mhz > 0.0,
              "model artifact: non-positive default clock");

  const std::string& kind = value.at("kind").as_string();
  if (kind == "domain-specific") {
    artifact.ds = std::make_shared<core::DomainSpecificModel>(
        core::DomainSpecificModel::from_json(value.at("model")));
  } else if (kind == "general-purpose") {
    artifact.gp = std::make_shared<core::GeneralPurposeModel>(
        core::GeneralPurposeModel::from_json(value.at("model")));
  } else if (kind == "hybrid") {
    artifact.hybrid = std::make_shared<core::HybridModel>(
        core::HybridModel::from_json(value.at("model")));
  } else {
    throw contract_error("model artifact: unknown kind \"" + kind + "\"");
  }
  return artifact;
}

void ModelArtifact::save_file(const std::string& path) const {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open model artifact for writing: " + path);
  to_json().write(out, 2);
  out << "\n";
  DSEM_ENSURE(out.good(), "failed writing model artifact: " + path);
}

ModelArtifact ModelArtifact::load_file(const std::string& path) {
  std::ifstream in(path);
  DSEM_ENSURE(in.good(), "cannot open model artifact: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  DSEM_ENSURE(!in.bad(), "failed reading model artifact: " + path);
  // Origin is kept exactly as stored so save → load → save is byte-equal.
  return from_json(json::Value::parse(buffer.str()));
}

} // namespace dsem::serve
