// Serialized model artifacts: the "dsem-model-v1" schema (DESIGN.md §7.11).
//
// The serving layer's unit of deployment: one trained model — the paper's
// domain-specific family or the general-purpose baseline — bundled with
// everything a server needs to answer queries without re-profiling the
// device: the (application, device) key, the frequency schedule it was
// trained over, the default clock used as the speedup/energy baseline,
// and the domain feature names (doubling as the input-width contract).
//
// Artifacts round-trip bit-identically: to_json uses the deterministic
// common/json writer ("%.17g" doubles, insertion-ordered keys), so
// serialize → parse → re-serialize is byte-equal and a loaded model
// answers every query bit-identically to the in-process original
// (property-tested in tests/serve/serialization_test.cpp). Train once
// with `frequency_advisor --train-out`, load anywhere with `--model-in`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/ds_model.hpp"
#include "core/gp_model.hpp"
#include "core/hybrid_model.hpp"

namespace dsem::serve {

inline constexpr const char* kModelSchema = "dsem-model-v1";

/// Registry key: which application's queries a model answers, measured on
/// which device.
struct ModelKey {
  std::string application; ///< "cronos" | "ligen" | ...
  std::string device;      ///< e.g. "v100", "mi100"

  auto operator<=>(const ModelKey&) const = default;
  std::string to_string() const { return application + "/" + device; }
};

/// One deployable model. Exactly one of `ds` / `gp` / `hybrid` is set (the
/// artifact kind); the serving loop accepts `ds` and `hybrid` — both
/// families answer per-input frequency queries, hybrid ones recomputing
/// their fused features from the request's domain features via
/// core::workload_from_features and the key's device preset.
struct ModelArtifact {
  ModelKey key;
  std::string origin; ///< provenance, e.g. "trained-in-process" or a path
  std::vector<std::string> feature_names; ///< domain features, in order
  std::vector<double> freqs_mhz;          ///< prediction frequency schedule
  double default_freq_mhz = 0.0;          ///< baseline clock
  std::shared_ptr<const core::DomainSpecificModel> ds;
  std::shared_ptr<const core::GeneralPurposeModel> gp;
  std::shared_ptr<const core::HybridModel> hybrid;

  bool is_domain_specific() const noexcept { return ds != nullptr; }
  bool is_hybrid() const noexcept { return hybrid != nullptr; }
  /// True for the kinds that can answer advisor queries (per-input
  /// time/energy curves): domain-specific and hybrid.
  bool is_advisable() const noexcept { return ds != nullptr || hybrid != nullptr; }

  /// "dsem-model-v1" document. Deterministic: calling it twice on the
  /// same artifact yields byte-identical dumps.
  json::Value to_json() const;

  /// Parses a "dsem-model-v1" document. Schema-tag mismatches, unknown
  /// kinds, and malformed payloads raise contract_error (version drift is
  /// a clean error, never a crash or a silently wrong model).
  static ModelArtifact from_json(const json::Value& value);

  /// File variants: pretty-printed JSON with a trailing newline (the repo
  /// convention), parsed back with full validation.
  void save_file(const std::string& path) const;
  static ModelArtifact load_file(const std::string& path);
};

} // namespace dsem::serve
