// The Advisor serving loop: admission control, answer cache, batched
// model evaluation, and deterministic latency accounting.
//
// The loop replays a timestamped request trace against a single logical
// server in *simulated* time: per-request service cost is a fixed
// hit_cost_s or miss_cost_s, so queueing delays, shed decisions, and
// latency percentiles are a pure function of the trace and the config —
// bit-identical for any DSEM_THREADS. Real model inference still runs
// (batched, on the thread pool) to produce the answers and the
// wall-clock throughput number; only the *reported latencies* come from
// the simulated clock. Determinism rules:
//
//  - Admission and shedding happen in arrival order. When the waiting
//    queue is at admission_bound, the OLDEST waiting request is shed to
//    admit the newcomer (shed-oldest: the newest request has the best
//    chance of meeting its deadline).
//  - Each batch's cache lookups see the cache as of batch start; the
//    batch's answers are then inserted in logical request order. Cache
//    content is therefore a function of the request sequence and the
//    registration sequence alone.
//  - Model artifacts are re-resolved from the registry at every batch
//    start, BEFORE the cache lookups. When the resolved snapshot differs
//    from the one that produced the cached answers (a put() replaced the
//    model), every cached answer of that (application, device) key is
//    invalidated first — a re-registration mid-trace (or between run()
//    calls; the cache persists) flips answers immediately instead of
//    serving the old model's cached picks.
//  - Responses are returned indexed by trace position (pre-sized slots).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/lru_cache.hpp"
#include "serve/registry.hpp"
#include "serve/traffic.hpp"

namespace dsem::obs {
class Ledger;
} // namespace dsem::obs

namespace dsem::serve {

struct ServeConfig {
  /// Device half of the registry key for every request.
  std::string device = "v100";
  /// Max requests answered per server dispatch.
  std::size_t batch_size = 64;
  /// Waiting-queue bound for admission control; 0 = unbounded.
  std::size_t admission_bound = 1024;
  /// LRU answer-cache capacity; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Feature quantization step for cache keys (serve/advisor.hpp).
  double cache_quant_step = 1.0;
  /// Simulated service cost of a cache hit / miss, seconds.
  double hit_cost_s = 2e-6;
  double miss_cost_s = 2e-4;
  /// Pool for batched inference; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Explicit attribution-ledger sink: when set, every request is
  /// recorded here regardless of obs::enabled(). When null, records go
  /// to obs::Ledger::global() iff the global switch is on (--ledger-out /
  /// DSEM_LEDGER). See obs/ledger.hpp.
  obs::Ledger* ledger = nullptr;
};

/// Outcome of one request. All times are simulated seconds.
struct AdviseResponse {
  bool shed = false;
  bool cache_hit = false;
  AdviseAnswer answer;       ///< zeroed when shed
  std::string model;         ///< provenance "app/device@origin"; "" when shed
  double arrival_s = 0.0;
  double completion_s = 0.0; ///< shed time for shed requests
  double latency_s = 0.0;    ///< completion - arrival

  bool operator==(const AdviseResponse&) const = default;
};

/// Aggregates over one run() call. Everything except wall_s and
/// throughput_rps() is deterministic.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Cached answers dropped because their model was re-registered.
  std::uint64_t cache_invalidations = 0;
  std::uint64_t batches = 0;
  double p50_latency_s = 0.0; ///< served requests only
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  double sim_duration_s = 0.0; ///< last completion in simulated time
  double wall_s = 0.0;         ///< wall-clock run time (report only)
  /// Predicted joules of the advised answers, summed over served
  /// requests in trace order (shed requests consume no energy budget).
  double predicted_energy_j = 0.0;
  /// The same total split per application, map-ordered.
  std::map<std::string, double> energy_by_application;

  double hit_rate() const noexcept {
    return served > 0 ? static_cast<double>(cache_hits) /
                            static_cast<double>(served)
                      : 0.0;
  }
  double shed_rate() const noexcept {
    return requests > 0 ? static_cast<double>(shed) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  /// Served requests per wall-clock second (not simulated time).
  double throughput_rps() const noexcept {
    return wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0;
  }
};

class ServeLoop {
public:
  /// The registry must outlive the loop and hold a domain-specific model
  /// for every (application, config.device) the traffic can name.
  ServeLoop(const ModelRegistry& registry, ServeConfig config);

  /// Replays `trace` (ascending arrival_s) to completion. Responses are
  /// indexed by trace position. The cache persists across run() calls;
  /// stats are per call.
  std::vector<AdviseResponse> run(std::span<const TimedRequest> trace);

  const ServeStats& stats() const noexcept { return stats_; }
  const LruCache& cache() const noexcept { return cache_; }
  LruCache& cache() noexcept { return cache_; }

private:
  /// Resolves the artifact serving `app` right now, invalidating the
  /// cached answers of a replaced snapshot (counted in the per-run stats).
  std::shared_ptr<const ModelArtifact> resolve_artifact(
      const std::string& app);

  const ModelRegistry& registry_;
  ServeConfig config_;
  Advisor advisor_;
  LruCache cache_;
  ServeStats stats_;
  /// Last-served artifact per application: the snapshot the cache's
  /// answers were computed with. Persists across run() calls, like the
  /// cache itself.
  std::map<std::string, std::shared_ptr<const ModelArtifact>> artifacts_;
};

} // namespace dsem::serve
