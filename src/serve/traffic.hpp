// Deterministic synthetic request traffic for the serving loop.
//
// Generates a Poisson-arrival stream of AdviseRequests drawn from finite
// LiGen / Cronos input populations, entirely from a seeded RNG: the same
// TrafficConfig always yields the same trace, byte for byte, which is
// what makes the serving benchmarks and golden determinism tests
// reproducible. Feature vectors come from the real Workload classes
// (core/workload.hpp), so traced inputs are exactly what training saw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/advisor.hpp"

namespace dsem::serve {

/// One request stamped with its (simulated) arrival time.
struct TimedRequest {
  double arrival_s = 0.0;
  AdviseRequest request;

  bool operator==(const TimedRequest&) const = default;
};

struct TrafficConfig {
  std::size_t requests = 100000;
  /// Mean Poisson arrival rate (exponential interarrival times).
  double arrival_rate_hz = 2000.0;
  /// Fraction of requests targeting LiGen; the rest target Cronos.
  double ligen_fraction = 0.5;
  /// Distinct inputs per application. The trace samples uniformly from
  /// this population, so it bounds the number of distinct cache keys.
  std::size_t population = 512;
  std::uint64_t seed = 0x5EedF00dULL;
  /// Slowdown budgets sampled uniformly per request.
  std::vector<double> slowdown_budgets = {0.01, 0.03, 0.05, 0.10};
};

/// Builds the request trace for `config`. Pure function of the config.
std::vector<TimedRequest> generate_trace(const TrafficConfig& config);

} // namespace dsem::serve
