// Deterministic synthetic request traffic for the serving loop.
//
// Generates a Poisson-arrival stream of AdviseRequests drawn from finite
// LiGen / Cronos input populations, entirely from a seeded RNG: the same
// TrafficConfig always yields the same trace, byte for byte, which is
// what makes the serving benchmarks and golden determinism tests
// reproducible. Feature vectors come from the real Workload classes
// (core/workload.hpp), so traced inputs are exactly what training saw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/workload.hpp"
#include "serve/advisor.hpp"

namespace dsem::serve {

/// One request stamped with its (simulated) arrival time.
struct TimedRequest {
  double arrival_s = 0.0;
  AdviseRequest request;

  bool operator==(const TimedRequest&) const = default;
};

/// Concrete workload parameters behind one sampled input — enough to
/// rebuild the core::Workload, not just its feature vector. The job
/// trace carries these so the cluster scheduler can *execute* a job, not
/// only ask the model about it.
struct WorkloadSpec {
  std::string application; ///< "cronos" | "ligen"
  // Cronos: grid dims and step count.
  cronos::GridDims dims{};
  int steps = 10;
  // LiGen: screening shape.
  int ligands = 0;
  int atoms = 0;
  int fragments = 0;

  bool operator==(const WorkloadSpec&) const = default;
};

/// Instantiates the workload a spec describes.
std::unique_ptr<core::Workload> make_workload(const WorkloadSpec& spec);

/// One schedulable job: a timed request plus its workload spec and a
/// sampled deadline slack. The scheduler turns the slack into an absolute
/// deadline: arrival_s + slack * (reference runtime at the default
/// clock), so slack 1.5 means "50% headroom over an unloaded rank".
struct TimedJob {
  double arrival_s = 0.0;
  double deadline_slack = 1.0;
  WorkloadSpec spec;
  AdviseRequest request;

  bool operator==(const TimedJob&) const = default;
};

struct TrafficConfig {
  std::size_t requests = 100000;
  /// Mean Poisson arrival rate (exponential interarrival times).
  double arrival_rate_hz = 2000.0;
  /// Fraction of requests targeting LiGen; the rest target Cronos.
  double ligen_fraction = 0.5;
  /// Distinct inputs per application. The trace samples uniformly from
  /// this population, so it bounds the number of distinct cache keys.
  std::size_t population = 512;
  std::uint64_t seed = 0x5EedF00dULL;
  /// Slowdown budgets sampled uniformly per request.
  std::vector<double> slowdown_budgets = {0.01, 0.03, 0.05, 0.10};
  /// Deadline slack multipliers sampled uniformly per *job* (job traces
  /// only). Drawn from an independent seed stream, so request traces and
  /// job traces of the same config share arrivals and inputs byte for
  /// byte.
  std::vector<double> deadline_slacks = {1.25, 1.5, 2.0, 3.0};
};

/// Builds the request trace for `config`. Pure function of the config.
std::vector<TimedRequest> generate_trace(const TrafficConfig& config);

/// Builds the job trace for `config`: the same arrivals, inputs, and
/// budgets as generate_trace (same seed streams), each carrying its
/// workload spec and a deadline slack sampled from `deadline_slacks`.
std::vector<TimedJob> generate_job_trace(const TrafficConfig& config);

} // namespace dsem::serve
