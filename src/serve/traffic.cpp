#include "serve/traffic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dsem::serve {

namespace {

/// Integer in [lo, hi], uniform.
int uniform_between(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(rng.uniform_int(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Integer log-uniform in [lo, hi]: problem sizes that span decades
/// (ligand counts) should populate every decade, not cluster at the top.
int log_uniform_between(Rng& rng, int lo, int hi) {
  const double x =
      rng.uniform(std::log(static_cast<double>(lo)),
                  std::log(static_cast<double>(hi) + 1.0));
  const int value = static_cast<int>(std::exp(x));
  return std::min(std::max(value, lo), hi);
}

/// Distinct LiGen inputs, spanning the ranges the training grids cover.
std::vector<WorkloadSpec> ligen_population(Rng& rng, std::size_t count) {
  std::vector<WorkloadSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WorkloadSpec spec;
    spec.application = "ligen";
    spec.ligands = log_uniform_between(rng, 16, 10000);
    spec.atoms = uniform_between(rng, 16, 96);
    spec.fragments = uniform_between(rng, 2, 24);
    out.push_back(std::move(spec));
  }
  return out;
}

/// Distinct Cronos inputs (grid shapes; 10-step runs like training).
std::vector<WorkloadSpec> cronos_population(Rng& rng, std::size_t count) {
  std::vector<WorkloadSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WorkloadSpec spec;
    spec.application = "cronos";
    spec.dims.nx = uniform_between(rng, 8, 160);
    spec.dims.ny = uniform_between(rng, 8, 160);
    spec.dims.nz = uniform_between(rng, 8, 160);
    spec.steps = 10;
    out.push_back(std::move(spec));
  }
  return out;
}

void check_config(const TrafficConfig& config) {
  DSEM_ENSURE(config.arrival_rate_hz > 0.0,
              "traffic: arrival rate must be > 0");
  DSEM_ENSURE(config.ligen_fraction >= 0.0 && config.ligen_fraction <= 1.0,
              "traffic: ligen fraction must be in [0, 1]");
  DSEM_ENSURE(config.population > 0, "traffic: empty input population");
  DSEM_ENSURE(!config.slowdown_budgets.empty(),
              "traffic: no slowdown budgets");
}

/// The shared sampling core: arrivals, application mix, input picks, and
/// budgets come from the same two seed streams for request and job
/// traces, so both trace flavours of one config describe the same load.
template <typename Emit>
void sample_trace(const TrafficConfig& config, const Emit& emit) {
  // Independent streams for population construction and arrivals, so
  // changing the population size does not reshuffle arrival times.
  Rng population_rng(derive_seed(config.seed, 0));
  Rng arrival_rng(derive_seed(config.seed, 1));

  const auto ligen = ligen_population(population_rng, config.population);
  const auto cronos = cronos_population(population_rng, config.population);

  double now = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    now += -std::log(1.0 - arrival_rng.uniform()) / config.arrival_rate_hz;
    const bool is_ligen = arrival_rng.uniform() < config.ligen_fraction;
    const auto& population = is_ligen ? ligen : cronos;
    const std::size_t input = arrival_rng.uniform_int(population.size());
    const std::size_t budget =
        arrival_rng.uniform_int(config.slowdown_budgets.size());
    emit(now, population[input], config.slowdown_budgets[budget]);
  }
}

AdviseRequest request_for(const WorkloadSpec& spec, double max_slowdown) {
  AdviseRequest request;
  request.application = spec.application;
  request.features = make_workload(spec)->domain_features();
  request.max_slowdown = max_slowdown;
  return request;
}

} // namespace

std::unique_ptr<core::Workload> make_workload(const WorkloadSpec& spec) {
  if (spec.application == "cronos") {
    return std::make_unique<core::CronosWorkload>(spec.dims, spec.steps);
  }
  DSEM_ENSURE(spec.application == "ligen",
              "traffic: unknown application \"" + spec.application + "\"");
  return std::make_unique<core::LigenWorkload>(spec.ligands, spec.atoms,
                                               spec.fragments);
}

std::vector<TimedRequest> generate_trace(const TrafficConfig& config) {
  check_config(config);
  std::vector<TimedRequest> trace;
  trace.reserve(config.requests);
  sample_trace(config, [&](double arrival_s, const WorkloadSpec& spec,
                           double max_slowdown) {
    TimedRequest timed;
    timed.arrival_s = arrival_s;
    timed.request = request_for(spec, max_slowdown);
    trace.push_back(std::move(timed));
  });
  return trace;
}

std::vector<TimedJob> generate_job_trace(const TrafficConfig& config) {
  check_config(config);
  DSEM_ENSURE(!config.deadline_slacks.empty(),
              "traffic: no deadline slacks");
  for (const double slack : config.deadline_slacks) {
    DSEM_ENSURE(slack > 0.0, "traffic: deadline slack must be > 0");
  }
  // Slacks draw from their own stream: job traces keep the arrivals and
  // inputs of the plain request trace byte for byte.
  Rng deadline_rng(derive_seed(config.seed, 2));
  std::vector<TimedJob> jobs;
  jobs.reserve(config.requests);
  sample_trace(config, [&](double arrival_s, const WorkloadSpec& spec,
                           double max_slowdown) {
    TimedJob job;
    job.arrival_s = arrival_s;
    job.deadline_slack = config.deadline_slacks[deadline_rng.uniform_int(
        config.deadline_slacks.size())];
    job.spec = spec;
    job.request = request_for(spec, max_slowdown);
    jobs.push_back(std::move(job));
  });
  return jobs;
}

} // namespace dsem::serve
