#include "serve/traffic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/workload.hpp"

namespace dsem::serve {

namespace {

/// Integer in [lo, hi], uniform.
int uniform_between(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(rng.uniform_int(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Integer log-uniform in [lo, hi]: problem sizes that span decades
/// (ligand counts) should populate every decade, not cluster at the top.
int log_uniform_between(Rng& rng, int lo, int hi) {
  const double x =
      rng.uniform(std::log(static_cast<double>(lo)),
                  std::log(static_cast<double>(hi) + 1.0));
  const int value = static_cast<int>(std::exp(x));
  return std::min(std::max(value, lo), hi);
}

/// Distinct LiGen inputs, spanning the ranges the training grids cover.
std::vector<std::vector<double>> ligen_population(Rng& rng,
                                                  std::size_t count) {
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int ligands = log_uniform_between(rng, 16, 10000);
    const int atoms = uniform_between(rng, 16, 96);
    const int fragments = uniform_between(rng, 2, 24);
    out.push_back(
        core::LigenWorkload(ligands, atoms, fragments).domain_features());
  }
  return out;
}

/// Distinct Cronos inputs (grid shapes; 10-step runs like training).
std::vector<std::vector<double>> cronos_population(Rng& rng,
                                                   std::size_t count) {
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    cronos::GridDims dims;
    dims.nx = uniform_between(rng, 8, 160);
    dims.ny = uniform_between(rng, 8, 160);
    dims.nz = uniform_between(rng, 8, 160);
    out.push_back(core::CronosWorkload(dims, 10).domain_features());
  }
  return out;
}

} // namespace

std::vector<TimedRequest> generate_trace(const TrafficConfig& config) {
  DSEM_ENSURE(config.arrival_rate_hz > 0.0,
              "traffic: arrival rate must be > 0");
  DSEM_ENSURE(config.ligen_fraction >= 0.0 && config.ligen_fraction <= 1.0,
              "traffic: ligen fraction must be in [0, 1]");
  DSEM_ENSURE(config.population > 0, "traffic: empty input population");
  DSEM_ENSURE(!config.slowdown_budgets.empty(),
              "traffic: no slowdown budgets");

  // Independent streams for population construction and arrivals, so
  // changing the population size does not reshuffle arrival times.
  Rng population_rng(derive_seed(config.seed, 0));
  Rng arrival_rng(derive_seed(config.seed, 1));

  const auto ligen = ligen_population(population_rng, config.population);
  const auto cronos = cronos_population(population_rng, config.population);

  std::vector<TimedRequest> trace;
  trace.reserve(config.requests);
  double now = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    now += -std::log(1.0 - arrival_rng.uniform()) / config.arrival_rate_hz;
    const bool is_ligen = arrival_rng.uniform() < config.ligen_fraction;
    const auto& population = is_ligen ? ligen : cronos;
    const std::size_t input = arrival_rng.uniform_int(population.size());
    const std::size_t budget =
        arrival_rng.uniform_int(config.slowdown_budgets.size());

    TimedRequest timed;
    timed.arrival_s = now;
    timed.request.application = is_ligen ? "ligen" : "cronos";
    timed.request.features = population[input];
    timed.request.max_slowdown = config.slowdown_budgets[budget];
    trace.push_back(std::move(timed));
  }
  return trace;
}

} // namespace dsem::serve
