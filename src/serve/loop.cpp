#include "serve/loop.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/statistics.hpp"
#include "obs/ledger.hpp"

namespace dsem::serve {

ServeLoop::ServeLoop(const ModelRegistry& registry, ServeConfig config)
    : registry_(registry), config_(config), advisor_(config.pool),
      cache_(config.cache_capacity) {
  DSEM_ENSURE(config_.batch_size > 0, "serve: batch size must be > 0");
  DSEM_ENSURE(config_.hit_cost_s > 0.0 && config_.miss_cost_s > 0.0,
              "serve: service costs must be > 0");
  DSEM_ENSURE(!config_.device.empty(), "serve: empty device name");
}

std::shared_ptr<const ModelArtifact>
ServeLoop::resolve_artifact(const std::string& app) {
  auto artifact = registry_.require(ModelKey{app, config_.device});
  auto& last = artifacts_[app];
  if (last != nullptr && last != artifact) {
    // The registry swapped the snapshot behind this key: every cached
    // answer computed with the old model is stale. Cache keys start with
    // "app/device|", so one prefix sweep drops exactly this model's
    // entries.
    const std::size_t dropped =
        cache_.erase_prefix(artifact->key.to_string() + "|");
    if (dropped > 0) {
      stats_.cache_invalidations += dropped;
      metrics::counter("serve.cache.invalidations", dropped);
    }
  }
  last = artifact;
  return artifact;
}

std::vector<AdviseResponse>
ServeLoop::run(std::span<const TimedRequest> trace) {
  for (std::size_t i = 1; i < trace.size(); ++i) {
    DSEM_ENSURE(trace[i - 1].arrival_s <= trace[i].arrival_s,
                "serve: trace arrivals must be ascending");
  }
  const auto wall_start = std::chrono::steady_clock::now();

  // Attribution-ledger sink, resolved once per run: the explicit config
  // sink wins; otherwise the global ledger when obs is enabled. The
  // per-request cost when off is this null check.
  obs::Ledger* const ledger =
      config_.ledger != nullptr
          ? config_.ledger
          : (obs::enabled() ? &obs::Ledger::global() : nullptr);

  stats_ = ServeStats{};
  stats_.requests = trace.size();
  std::vector<AdviseResponse> responses(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    responses[i].arrival_s = trace[i].arrival_s;
  }

  std::deque<std::size_t> waiting;
  std::size_t next_arrival = 0;
  double server_free_s = 0.0;
  double last_completion_s = 0.0;

  const auto shed = [&](std::size_t index, double when_s) {
    AdviseResponse& response = responses[index];
    response.shed = true;
    response.completion_s = when_s;
    response.latency_s = when_s - response.arrival_s;
    last_completion_s = std::max(last_completion_s, when_s);
    ++stats_.shed;
    if (ledger != nullptr) {
      // Shed requests must appear in the ledger too — otherwise its
      // totals cannot reconcile with ServeStats. A shed request spent its
      // whole latency waiting and was never dispatched (batch 0).
      obs::RequestRecord record;
      record.index = static_cast<std::uint64_t>(index);
      record.id = obs::derive_record_id("req", record.index);
      record.application = trace[index].request.application;
      record.arrival_s = response.arrival_s;
      record.queue_wait_s = response.latency_s;
      record.completion_s = when_s;
      record.latency_s = response.latency_s;
      record.shed = true;
      record.max_slowdown = trace[index].request.max_slowdown;
      record.cause = obs::MissCause::kShed;
      ledger->add(std::move(record));
    }
  };

  while (next_arrival < trace.size() || !waiting.empty()) {
    // The server dispatches its next batch at `horizon`: when it frees
    // up, or — if idle with an empty queue — when the next request lands.
    double horizon_s = server_free_s;
    if (waiting.empty() && trace[next_arrival].arrival_s > horizon_s) {
      horizon_s = trace[next_arrival].arrival_s;
    }
    // Admit everything that has arrived by then, in arrival order,
    // shedding the oldest waiter whenever the queue is at its bound.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= horizon_s) {
      if (config_.admission_bound > 0 &&
          waiting.size() == config_.admission_bound) {
        shed(waiting.front(), trace[next_arrival].arrival_s);
        waiting.pop_front();
      }
      waiting.push_back(next_arrival);
      ++next_arrival;
    }

    const std::size_t batch_count =
        std::min(config_.batch_size, waiting.size());
    std::vector<std::size_t> batch(waiting.begin(),
                                   waiting.begin() + batch_count);
    waiting.erase(waiting.begin(), waiting.begin() + batch_count);
    ++stats_.batches;

    // Resolve the batch's artifacts from the registry FIRST: a replaced
    // snapshot invalidates its cached answers before any lookup below can
    // serve them (the re-registration staleness bug, ROADMAP item 1).
    std::map<std::string, std::shared_ptr<const ModelArtifact>> artifacts;
    for (const std::size_t index : batch) {
      const std::string& app = trace[index].request.application;
      if (!artifacts.contains(app)) {
        artifacts[app] = resolve_artifact(app);
      }
    }

    // Cache lookups see the cache as of batch start (no insertions
    // happen until the whole batch is answered); hits refresh recency in
    // logical request order. Identical keys that miss together are
    // computed together — the answer is the same, so the later insert is
    // a refresh.
    std::vector<std::string> keys(batch.size());
    std::vector<bool> hit(batch.size(), false);
    std::map<std::string, std::vector<std::size_t>> misses_by_app;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const AdviseRequest& request = trace[batch[b]].request;
      keys[b] = cache_key({request.application, config_.device}, request,
                          config_.cache_quant_step);
      AdviseResponse& response = responses[batch[b]];
      if (cache_.get(keys[b], response.answer)) {
        hit[b] = true;
        ++stats_.cache_hits;
      } else {
        misses_by_app[request.application].push_back(b);
        ++stats_.cache_misses;
      }
    }

    // Batched inference for the misses, against the snapshots resolved at
    // batch start. Answers land in slots indexed by batch position.
    for (const auto& [app, positions] : misses_by_app) {
      const auto& artifact = artifacts.at(app);
      std::vector<AdviseRequest> requests;
      requests.reserve(positions.size());
      for (const std::size_t b : positions) {
        requests.push_back(trace[batch[b]].request);
      }
      const std::vector<AdviseAnswer> answers =
          advisor_.advise_batch(*artifact, requests);
      for (std::size_t k = 0; k < positions.size(); ++k) {
        responses[batch[positions[k]]].answer = answers[k];
      }
    }

    // Sequential service in simulated time, then cache insertions in
    // logical request order.
    double now_s =
        std::max(server_free_s, responses[batch.front()].arrival_s);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      AdviseResponse& response = responses[batch[b]];
      const double service_start_s = now_s;
      now_s += hit[b] ? config_.hit_cost_s : config_.miss_cost_s;
      response.cache_hit = hit[b];
      response.completion_s = now_s;
      response.latency_s = now_s - response.arrival_s;
      const std::string& app = trace[batch[b]].request.application;
      const auto& artifact = artifacts.at(app);
      response.model = artifact->key.to_string() + "@" + artifact->origin;
      if (!hit[b]) {
        cache_.put(keys[b], response.answer);
      }
      ++stats_.served;
      stats_.predicted_energy_j += response.answer.predicted_energy_j;
      stats_.energy_by_application[app] +=
          response.answer.predicted_energy_j;
      if (ledger != nullptr) {
        obs::RequestRecord record;
        record.index = static_cast<std::uint64_t>(batch[b]);
        record.id = obs::derive_record_id("req", record.index);
        record.application = app;
        record.model = response.model;
        record.arrival_s = response.arrival_s;
        record.queue_wait_s = service_start_s - response.arrival_s;
        record.service_s = now_s - service_start_s;
        record.completion_s = now_s;
        record.latency_s = response.latency_s;
        record.cache_hit = hit[b];
        record.batch = stats_.batches; // 1-based: incremented at dispatch
        record.freq_mhz = response.answer.freq_mhz;
        record.predicted_time_s = response.answer.predicted_time_s;
        record.predicted_energy_j = response.answer.predicted_energy_j;
        record.max_slowdown = trace[batch[b]].request.max_slowdown;
        record.budget_infeasible = response.answer.budget_infeasible;
        ledger->add(std::move(record));
      }
    }
    server_free_s = now_s;
    last_completion_s = std::max(last_completion_s, now_s);
  }

  // Deterministic accounting: latencies are simulated, so the histogram
  // and percentiles are safe across pool sizes.
  std::vector<double> latencies;
  latencies.reserve(stats_.served);
  for (const AdviseResponse& response : responses) {
    if (!response.shed) {
      latencies.push_back(response.latency_s);
      metrics::histogram("serve.latency_s", response.latency_s);
    }
  }
  if (!latencies.empty()) {
    stats_.p50_latency_s = stats::quantile(latencies, 0.50);
    stats_.p99_latency_s = stats::quantile(latencies, 0.99);
    stats_.max_latency_s = *std::max_element(latencies.begin(),
                                             latencies.end());
  }
  stats_.sim_duration_s = last_completion_s;
  stats_.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  // Every request is either served or shed — the ledger's reconciliation
  // guarantee starts here.
  DSEM_ENSURE(stats_.served + stats_.shed == stats_.requests,
              "serve: served + shed must equal requests");

  metrics::counter("serve.requests", stats_.requests);
  metrics::counter("serve.served", stats_.served);
  metrics::counter("serve.shed", stats_.shed);
  metrics::counter("serve.cache.hits", stats_.cache_hits);
  metrics::counter("serve.cache.misses", stats_.cache_misses);
  metrics::counter("serve.batches", stats_.batches);
  // Driver-thread gauges: deterministic because run() is serial here.
  metrics::gauge("serve.predicted_energy_j", stats_.predicted_energy_j,
                 metrics::Reliability::kDeterministic);
  metrics::gauge("serve.sim_duration_s", stats_.sim_duration_s,
                 metrics::Reliability::kDeterministic);
  metrics::gauge("serve.wall_s", stats_.wall_s);
  return responses;
}

} // namespace dsem::serve
