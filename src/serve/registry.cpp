#include "serve/registry.hpp"

#include "common/error.hpp"

namespace dsem::serve {

void ModelRegistry::put(ModelArtifact artifact) {
  const int kinds = static_cast<int>(artifact.ds != nullptr) +
                    static_cast<int>(artifact.gp != nullptr) +
                    static_cast<int>(artifact.hybrid != nullptr);
  DSEM_ENSURE(kinds == 1, "registry: artifact must hold exactly one model");
  DSEM_ENSURE(artifact.ds == nullptr || artifact.ds->trained(),
              "registry: untrained domain-specific model");
  DSEM_ENSURE(artifact.gp == nullptr || artifact.gp->trained(),
              "registry: untrained general-purpose model");
  DSEM_ENSURE(artifact.hybrid == nullptr || artifact.hybrid->trained(),
              "registry: untrained hybrid model");
  auto entry = std::make_shared<const ModelArtifact>(std::move(artifact));
  std::lock_guard lock(mutex_);
  entries_[entry->key] = std::move(entry);
}

std::shared_ptr<const ModelArtifact>
ModelRegistry::get(const ModelKey& key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const ModelArtifact>
ModelRegistry::require(const ModelKey& key) const {
  auto entry = get(key);
  DSEM_ENSURE(entry != nullptr,
              "registry: no model for " + key.to_string());
  return entry;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<ModelKey> ModelRegistry::keys() const {
  std::lock_guard lock(mutex_);
  std::vector<ModelKey> out;
  out.reserve(entries_.size());
  for (const auto& [key, _] : entries_) {
    out.push_back(key);
  }
  return out;
}

} // namespace dsem::serve
