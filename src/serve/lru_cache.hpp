// Deterministic LRU answer cache for the serving loop.
//
// Maps a quantized query key (serve/advisor.hpp builds it) to a computed
// answer. Eviction order depends only on the logical sequence of
// get/put calls — never on hashing or scheduling — so the cache contents
// after any request prefix are a pure function of that prefix (golden
// eviction-order tests pin this). Capacity 0 disables the cache: every
// lookup misses and put() is a no-op, bit-identical to a cache that never
// hits.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace dsem::serve {

/// The cached payload: the advisor's answer for one (model, input,
/// budget) query.
struct AdviseAnswer {
  double freq_mhz = 0.0;
  double predicted_time_s = 0.0;
  double predicted_energy_j = 0.0;
  double predicted_speedup = 0.0;
  double predicted_norm_energy = 0.0;
  /// True when the slowdown budget admitted no Pareto point, so the
  /// answer is the fastest front point rather than a within-budget one.
  bool budget_infeasible = false;

  bool operator==(const AdviseAnswer&) const = default;
};

class LruCache {
public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }

  /// Looks `key` up; a hit refreshes its recency and writes the answer.
  bool get(const std::string& key, AdviseAnswer& out);

  /// Inserts (or refreshes) `key`. Evicts the least-recently-used entry
  /// when at capacity. No-op when capacity is 0.
  void put(const std::string& key, const AdviseAnswer& answer);

  void clear();

  /// Drops every entry whose key starts with `prefix`; returns the count.
  /// The serving loop uses this to invalidate one model's answers when a
  /// re-registration swaps the artifact behind its (app, device) key.
  std::size_t erase_prefix(const std::string& prefix);

  /// Keys from most- to least-recently used (golden eviction tests).
  std::vector<std::string> keys_mru() const;

private:
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::string, AdviseAnswer>> order_;
  std::unordered_map<std::string, decltype(order_)::iterator> map_;
};

} // namespace dsem::serve
