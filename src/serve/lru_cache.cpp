#include "serve/lru_cache.hpp"

namespace dsem::serve {

bool LruCache::get(const std::string& key, AdviseAnswer& out) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  out = it->second->second;
  return true;
}

void LruCache::put(const std::string& key, const AdviseAnswer& answer) {
  if (capacity_ == 0) {
    return;
  }
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second->second = answer;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() == capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
  order_.emplace_front(key, answer);
  map_.emplace(key, order_.begin());
}

std::size_t LruCache::erase_prefix(const std::string& prefix) {
  std::size_t erased = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      map_.erase(it->first);
      it = order_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

void LruCache::clear() {
  map_.clear();
  order_.clear();
}

std::vector<std::string> LruCache::keys_mru() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const auto& [key, _] : order_) {
    out.push_back(key);
  }
  return out;
}

} // namespace dsem::serve
