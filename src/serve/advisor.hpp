// Frequency advice as a service: request/response types and the batched
// model evaluator behind the serving loop.
//
// An AdviseRequest asks "for this input, which core frequency minimizes
// energy while staying within my slowdown budget?". The Advisor answers
// it from a trained artifact exactly the way the one-shot
// frequency_advisor example does: predict the full frequency curve,
// extract the predicted Pareto front, pick the lowest-energy front point
// within the budget. Batching fans independent requests across a thread
// pool; each request's frequency grid is one ml::Regressor::predict_many
// batch, and every answer is bit-identical to the serial single-request
// path for any pool size.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/ds_model.hpp"
#include "serve/artifact.hpp"
#include "serve/lru_cache.hpp"

namespace dsem::serve {

/// One advice query. `features` must match the artifact's feature_names
/// (Table 2 order for the application).
struct AdviseRequest {
  std::string application;
  std::vector<double> features;
  /// Tolerated slowdown vs the default clock, e.g. 0.03 = up to 3%.
  double max_slowdown = 0.03;

  bool operator==(const AdviseRequest&) const = default;
};

/// Index into `pred` of the advised frequency: the lowest predicted
/// normalized energy among Pareto-front points within the slowdown
/// budget. When the budget is tighter than every front point, the answer
/// is the highest-speedup (fastest) front point and `*budget_infeasible`
/// (when non-null) is set — callers must see the miss explicitly instead
/// of mistaking the fallback for a within-budget pick.
std::size_t pick_within_slowdown(const core::Prediction& pred,
                                 double max_slowdown,
                                 bool* budget_infeasible = nullptr);

/// Deterministic cache key for a query against a given model.
///
/// Features are quantized to multiples of `quant_step` (llround(f/step)),
/// so near-identical inputs share an answer; the slowdown budget is kept
/// exact (%.17g) because it changes which answer is *correct*, not just
/// how precise it is. `quant_step` itself is part of the key.
std::string cache_key(const ModelKey& key, const AdviseRequest& request,
                      double quant_step);

class Advisor {
public:
  /// `pool` runs batched requests; nullptr = ThreadPool::global().
  explicit Advisor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Answers one request from a domain-specific or hybrid artifact.
  /// Hybrid artifacts recompute their fused feature block from the
  /// request's domain features (core::workload_from_features) on the
  /// device preset named by the artifact key.
  AdviseAnswer advise(const ModelArtifact& artifact,
                      const AdviseRequest& request) const;

  /// Answers a batch of requests against one artifact. Requests are
  /// independent; results land in pre-sized slots indexed by request, so
  /// the output is bit-identical to calling advise() per request in
  /// order, for any pool size.
  std::vector<AdviseAnswer>
  advise_batch(const ModelArtifact& artifact,
               std::span<const AdviseRequest> requests) const;

private:
  ThreadPool* pool_;
};

} // namespace dsem::serve
