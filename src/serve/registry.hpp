// Thread-safe model registry keyed on (application, device).
//
// The serving loop's source of truth for which trained model answers
// which query population. Artifacts are immutable once registered
// (shared_ptr<const>), so a reader that looked one up keeps a consistent
// model even while a writer swaps in a replacement under the same key —
// there are no torn reads, only the old artifact or the new one
// (stress-tested in tests/serve/concurrency_test.cpp).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/artifact.hpp"

namespace dsem::serve {

class ModelRegistry {
public:
  /// Registers (or replaces) the artifact under its own key. The artifact
  /// must hold a trained model.
  void put(ModelArtifact artifact);

  /// The artifact under `key`, or nullptr when absent. The returned
  /// pointer stays valid after a concurrent put() replaces the entry.
  std::shared_ptr<const ModelArtifact> get(const ModelKey& key) const;

  /// get() that throws contract_error naming the missing key.
  std::shared_ptr<const ModelArtifact> require(const ModelKey& key) const;

  std::size_t size() const;
  std::vector<ModelKey> keys() const; ///< sorted (map order)

private:
  mutable std::mutex mutex_;
  std::map<ModelKey, std::shared_ptr<const ModelArtifact>> entries_;
};

} // namespace dsem::serve
