// Training entry point for serving artifacts: profile an application's
// training sweep on a device, fit the domain-specific model, and wrap it
// as a registrable / serializable ModelArtifact.
//
// This is the "train once" half of the train-once / load-anywhere
// contract: the frequency_advisor example (--train-out), the serving
// benchmark, and the tests all train through this one path, so a model
// loaded from disk answers queries bit-identically to one trained in
// process.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/sweep.hpp"
#include "serve/artifact.hpp"
#include "synergy/device.hpp"

namespace dsem::serve {

struct TrainConfig {
  /// Train on every `freq_stride`-th supported frequency (the example's
  /// cheap-sweep default). The artifact still predicts over the full
  /// supported grid.
  std::size_t freq_stride = 4;
  /// Smaller training grids (fewer workloads) for tests and smoke runs.
  bool compact = false;
  /// Sweep knobs: repetitions, pool, profile cache, retry, report.
  core::SweepOptions sweep;
  /// Regressor prototype to clone; nullptr = paper-default Random Forest.
  const ml::Regressor* prototype = nullptr;
  /// Recorded in the artifact as provenance.
  std::string origin = "trained-in-process";
};

/// The training workload grids of the frequency_advisor example
/// ("cronos" / "ligen"); `compact` shrinks them for tests.
std::vector<std::unique_ptr<core::Workload>>
training_set(const std::string& app, bool compact = false);

/// Profiles training_set(key.application) on `device` at strided
/// frequencies, fits a DomainSpecificModel, and returns the artifact
/// (full frequency grid, device default clock, feature names).
ModelArtifact train_domain_specific(synergy::Device& device,
                                    const ModelKey& key,
                                    const TrainConfig& config = {});

/// Same sweep, but fits a core::HybridModel: fused static+dynamic features
/// per input (core/kernel_features.hpp) computed on `device`'s spec at the
/// default clock. The artifact's feature_names stay the *domain* names —
/// hybrid queries carry domain features only and the advisor recomputes
/// the fused block — so a hybrid artifact is a drop-in for a DS one.
ModelArtifact train_hybrid(synergy::Device& device, const ModelKey& key,
                           const TrainConfig& config = {});

} // namespace dsem::serve
