#include "serve/advisor.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "core/workload.hpp"
#include "sim/device_spec.hpp"

namespace dsem::serve {

namespace {

/// %.17g: shortest text that round-trips an IEEE double exactly.
std::string exact(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Requests below this count run serially; the pool fan-out overhead is
/// not worth it for a handful of forest evaluations.
constexpr std::size_t kParallelMinRequests = 4;

} // namespace

std::size_t pick_within_slowdown(const core::Prediction& pred,
                                 double max_slowdown,
                                 bool* budget_infeasible) {
  const std::vector<std::size_t> front = pred.pareto_indices();
  DSEM_ENSURE(!front.empty(), "advisor: empty Pareto front");
  // Fallback: the highest-speedup front point (front is sorted by
  // ascending speedup).
  std::size_t pick = front.back();
  bool found = false;
  for (const std::size_t i : front) {
    if (1.0 - pred.speedup[i] <= max_slowdown &&
        (!found || pred.norm_energy[i] < pred.norm_energy[pick])) {
      pick = i;
      found = true;
    }
  }
  if (budget_infeasible != nullptr) {
    *budget_infeasible = !found;
  }
  return pick;
}

std::string cache_key(const ModelKey& key, const AdviseRequest& request,
                      double quant_step) {
  DSEM_ENSURE(quant_step > 0.0, "advisor: quantization step must be > 0");
  std::string out = key.to_string();
  out += "|b";
  out += exact(request.max_slowdown);
  out += "|q";
  out += exact(quant_step);
  for (const double f : request.features) {
    out += '|';
    out += std::to_string(std::llround(f / quant_step));
  }
  return out;
}

AdviseAnswer Advisor::advise(const ModelArtifact& artifact,
                             const AdviseRequest& request) const {
  DSEM_ENSURE(artifact.is_advisable(),
              "advisor: serving needs a domain-specific or hybrid artifact");
  DSEM_ENSURE(request.application == artifact.key.application,
              "advisor: request for \"" + request.application +
                  "\" routed to model " + artifact.key.to_string());
  DSEM_ENSURE(request.features.size() == artifact.feature_names.size(),
              "advisor: feature count mismatch for " +
                  artifact.key.to_string());
  DSEM_ENSURE(request.max_slowdown >= 0.0,
              "advisor: negative slowdown budget");

  core::Prediction pred;
  if (artifact.is_hybrid()) {
    // Hybrid queries carry only domain features; the fused block is
    // recomputed from the canonical workload those features describe, on
    // the device preset the artifact key names — the same construction
    // the training run used, so serving stays bit-identical to it.
    const auto workload =
        core::workload_from_features(request.application, request.features);
    const sim::DeviceSpec spec = sim::preset_by_name(artifact.key.device);
    pred = artifact.hybrid->predict(*workload, spec, artifact.freqs_mhz,
                                    artifact.default_freq_mhz);
  } else {
    pred = artifact.ds->predict(request.features, artifact.freqs_mhz,
                                artifact.default_freq_mhz);
  }
  bool infeasible = false;
  const std::size_t pick =
      pick_within_slowdown(pred, request.max_slowdown, &infeasible);

  AdviseAnswer answer;
  answer.freq_mhz = pred.freqs_mhz[pick];
  answer.predicted_time_s = pred.time_s[pick];
  answer.predicted_energy_j = pred.energy_j[pick];
  answer.predicted_speedup = pred.speedup[pick];
  answer.predicted_norm_energy = pred.norm_energy[pick];
  answer.budget_infeasible = infeasible;
  return answer;
}

std::vector<AdviseAnswer>
Advisor::advise_batch(const ModelArtifact& artifact,
                      std::span<const AdviseRequest> requests) const {
  std::vector<AdviseAnswer> out(requests.size());
  if (requests.size() < kParallelMinRequests) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out[i] = advise(artifact, requests[i]);
    }
    return out;
  }
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::global();
  parallel_for(pool, 0, requests.size(),
               [&](std::size_t i) { out[i] = advise(artifact, requests[i]); });
  return out;
}

} // namespace dsem::serve
