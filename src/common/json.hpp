// Minimal JSON document model: parse, build, serialize.
//
// Exists so the observability layer (metrics snapshots, run manifests,
// BENCH_*.json perf reports) can speak one machine-readable format without
// an external dependency. Deliberately small: the six JSON types, a
// recursive-descent parser, and a writer with deterministic formatting —
// object keys keep insertion order, integral numbers print without a
// decimal point, and non-integral doubles print with "%.17g" (round-trip
// exact), so semantically identical documents serialize byte-identically.
// That determinism is load-bearing: golden-snapshot tests compare metrics
// JSON across DSEM_THREADS settings as strings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace dsem::json {

class Value {
public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Value>;
  /// Insertion-ordered (not sorted): writers control field order, and the
  /// serialized form stays stable across parse/serialize round trips.
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default; // null
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), number_(n) {}
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Value(T n) : Value(static_cast<double>(n)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; DSEM_ENSURE on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Array append (value must be an array).
  void push_back(Value v);

  /// Object field set: overwrites an existing key in place, appends
  /// otherwise. Value must be an object.
  void set(std::string key, Value v);

  /// Object lookup: nullptr when absent (value must be an object).
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);
  /// Object lookup; DSEM_ENSURE when absent.
  const Value& at(std::string_view key) const;
  Value& at(std::string_view key);

  /// Serializes. indent < 0 emits the compact single-line form; indent
  /// >= 0 pretty-prints with that many spaces per nesting level.
  void write(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

  /// Parses one JSON document (throws dsem::contract_error with position
  /// info on malformed input; trailing non-whitespace is an error).
  static Value parse(std::string_view text);

  bool operator==(const Value&) const = default;

private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Appends the JSON string-escape of `s` (no surrounding quotes) to `os`.
void escape(std::ostream& os, std::string_view s);

} // namespace dsem::json
