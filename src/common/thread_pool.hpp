// Task-based parallelism (Core Guidelines CP.4: think in terms of tasks).
//
// A fixed-size worker pool with a shared queue, plus structured
// parallel_for / parallel_reduce helpers that block until completion so
// callers never observe partially-applied parallel updates. Tasks must not
// share mutable state (CP.2/CP.3); the helpers hand each task a disjoint
// index range, which makes that property easy to uphold.
//
// Blocked waiters help: while a parallel_for / parallel_reduce waits for
// its chunks it executes queued tasks on the calling thread, so nested
// parallel sections (e.g. a forest fit inside a cross-validation fold)
// cannot deadlock the pool and idle no worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace dsem {

class ThreadPool {
public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Drains outstanding tasks and joins all workers. Safe to call more
  /// than once; submit() on a stopped pool fails.
  void stop();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; the future rethrows task exceptions.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      DSEM_ENSURE(!stopping_, "submit() on a stopped ThreadPool");
      tasks_.emplace([task] { (*task)(); });
      // How deep the queue gets is a scheduling observation, not a
      // property of the run: wall-clock reliability.
      metrics::gauge("pool.queue_depth", static_cast<double>(tasks_.size()));
    }
    cv_.notify_one();
    return result;
  }

  /// Runs one queued task on the calling thread, if one is pending.
  /// Returns false when the queue is empty.
  bool try_run_one();

  /// Waits for `future` to become ready, executing queued tasks on the
  /// calling thread in the meantime (deadlock-free nested parallelism).
  template <typename T>
  void help_while_waiting(std::future<T>& future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) {
        // Nothing left to steal: the awaited chunk is running on another
        // thread; block until it finishes.
        future.wait();
        return;
      }
    }
  }

  /// Singleton pool shared across the library. Sized once on first use:
  /// the DSEM_THREADS environment variable when set to a positive integer
  /// (1 forces exact serial execution), hardware_concurrency otherwise.
  static ThreadPool& global();

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Invoke fn(i) for each i in [begin, end), partitioned into contiguous
/// chunks across the pool. Blocks until all iterations complete. The first
/// exception thrown by any chunk is rethrown in the caller.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// Chunked variant: fn(chunk_begin, chunk_end) — lets the caller hoist
/// per-chunk setup out of the element loop.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 0);

/// Parallel reduction: combines fn(i) over [begin, end) with `combine`,
/// starting from `init`. `combine` must be associative and commutative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T init, Map&& map_fn, Combine&& combine) {
  if (begin >= end) {
    return init;
  }
  if (pool.thread_count() <= 1) {
    // Single worker: run the one chunk inline (see parallel_for_chunks),
    // combining exactly as the submitted path would so results stay
    // bit-identical: a chunk accumulator seeded with init, then folded
    // into the outer accumulator.
    T chunk_acc = init;
    for (std::size_t i = begin; i < end; ++i) {
      chunk_acc = combine(chunk_acc, map_fn(i));
    }
    return combine(init, chunk_acc);
  }
  const std::size_t n = end - begin;
  const std::size_t chunks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, pool.thread_count()));
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<T>> partials;
  partials.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    partials.push_back(pool.submit([lo, hi, init, &map_fn, &combine] {
      T acc = init;
      for (std::size_t i = lo; i < hi; ++i) {
        acc = combine(acc, map_fn(i));
      }
      return acc;
    }));
  }
  T acc = init;
  for (auto& p : partials) {
    pool.help_while_waiting(p);
    acc = combine(acc, p.get());
  }
  return acc;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, Map&& map_fn,
                  Combine&& combine) {
  return parallel_reduce(ThreadPool::global(), begin, end, init,
                         std::forward<Map>(map_fn),
                         std::forward<Combine>(combine));
}

} // namespace dsem
