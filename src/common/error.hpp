// Contract checking and error reporting helpers.
//
// Following the C++ Core Guidelines (I.6/I.8, E.x) we express preconditions
// and invariants as runtime checks that throw; hot inner loops use
// DSEM_ASSERT which compiles out in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dsem {

/// Thrown when a precondition or invariant expressed with DSEM_ENSURE fails.
class contract_error : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_contract_failure(std::string_view expr,
                                                std::string_view message,
                                                const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": contract violated: (" << expr << ')';
  if (!message.empty()) {
    os << " — " << message;
  }
  throw contract_error(os.str());
}

} // namespace detail

} // namespace dsem

/// Always-on contract check: throws dsem::contract_error on failure.
#define DSEM_ENSURE(cond, msg)                                                 \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::dsem::detail::throw_contract_failure(#cond, (msg),                     \
                                             std::source_location::current()); \
    }                                                                          \
  } while (false)

/// Debug-only assertion for hot paths; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define DSEM_ASSERT(cond, msg) ((void)0)
#else
#define DSEM_ASSERT(cond, msg) DSEM_ENSURE(cond, msg)
#endif
