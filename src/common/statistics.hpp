// Descriptive statistics and regression-quality metrics shared by the
// measurement layer (repetition averaging) and the ML evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsem::stats {

double sum(std::span<const double> xs);
double mean(std::span<const double> xs);

/// Sample variance (divides by n-1); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Mean absolute error.
double mae(std::span<const double> truth, std::span<const double> pred);

/// Root mean squared error.
double rmse(std::span<const double> truth, std::span<const double> pred);

/// Mean absolute percentage error expressed as a fraction (0.1 == 10 %).
/// Entries with |truth| < eps are skipped to avoid division blow-up.
double mape(std::span<const double> truth, std::span<const double> pred,
            double eps = 1e-12);

/// Coefficient of determination R^2 (1 = perfect; can be negative).
double r2(std::span<const double> truth, std::span<const double> pred);

/// Pearson correlation coefficient.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Running accumulator for streaming mean/variance (Welford).
class Accumulator {
public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept; // sample variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

} // namespace dsem::stats
