// Deterministic, splittable pseudo-random number generation.
//
// Everything stochastic in the library (measurement noise, ligand
// generation, bootstrap sampling, ...) flows from an explicit seed so that
// experiments are reproducible run-to-run. We provide xoshiro256** — a
// small, fast generator of high statistical quality — plus a SplitMix64
// seeder as recommended by its authors, and the usual distribution helpers.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace dsem {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Derives the seed of stream `stream` from a base seed. A pure function
/// of its arguments: parallel grids that seed task k with
/// derive_seed(base, k) produce bit-identical results no matter how tasks
/// are scheduled across threads. Consecutive streams are decorrelated by
/// the SplitMix64 finalizer.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t stream) noexcept {
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method, bias-free.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent child generator (for per-task streams).
  Rng split() noexcept {
    return Rng((*this)() ^ 0xdeadbeefcafef00dULL);
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

} // namespace dsem
