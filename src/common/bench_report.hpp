// BENCH_<date>.json perf reports: build, merge, and compare.
//
// The perf trajectory of this repo is a sequence of BENCH_*.json files
// (schema "dsem-bench-v1"), one per measured revision, produced by
// bench/perf_report. Each file merges the Google Benchmark JSON output of
// the perf_* micro-benchmark binaries with an instrumented end-to-end
// pipeline run (wall time plus its "dsem-run-v1" manifest). The compare
// half diffs two such files and flags entries whose real time regressed
// beyond a tolerance — bench/perf_compare wraps it as the CI gate.
//
// Document shape:
//   {
//     "schema": "dsem-bench-v1",
//     "date": "YYYY-MM-DD",
//     "mode": "smoke" | "full",
//     "benchmarks": [
//       {"name": "perf_sim/BM_DeviceLaunch", "real_time_ns": ...,
//        "cpu_time_ns": ..., "iterations": ...}, ...
//     ],
//     "pipeline": null | {"name": ..., "wall_s": ..., "run_manifest": ...}
//   }
// Benchmark names are "<binary>/<benchmark>" so entries from different
// binaries cannot collide; the pipeline run also appears in "benchmarks"
// as "pipeline/<name>" so the compare tool sees it like any other entry.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace dsem::benchreport {

inline constexpr const char* kBenchSchema = "dsem-bench-v1";

/// Empty report skeleton (no benchmarks, null pipeline).
json::Value make_report(const std::string& date, const std::string& mode);

/// Throws contract_error unless `report` structurally conforms to
/// "dsem-bench-v1" (schema tag, benchmark entry fields).
void validate(const json::Value& report);

/// Appends one benchmark entry (name must be unique within the report).
void add_entry(json::Value& report, const std::string& name,
               double real_time_ns, double cpu_time_ns, double iterations);

/// Merges one Google Benchmark `--benchmark_out_format=json` document,
/// prefixing entry names with "<binary>/". Aggregate rows (mean/median/
/// stddev re-runs) are skipped; per-iteration rows are normalized to
/// nanoseconds from the entry's time_unit. User counters whose names end
/// in "_ns" (already-nanosecond latencies like the serving percentiles)
/// become standalone entries "<binary>/<benchmark>:<counter>" so the
/// compare gate sees them individually; other counters stay embedded in
/// the Google Benchmark file only. Returns the number of entries merged.
std::size_t merge_google_benchmark(json::Value& report,
                                   const std::string& binary,
                                   const json::Value& gbench);

/// Attaches the instrumented end-to-end run: records the pipeline object
/// and appends a "pipeline/<name>" benchmark entry with the wall time so
/// regressions in the full pipeline are flagged like any micro-benchmark.
void set_pipeline(json::Value& report, const std::string& name, double wall_s,
                  json::Value run_manifest);

struct CompareOptions {
  /// Flag a regression when current > baseline * (1 + tolerance). Generous
  /// by default: micro-benchmarks on shared CI hardware are noisy.
  double tolerance = 0.25;
  /// Ignore entries whose baseline real time is below this (too fast to
  /// compare meaningfully).
  double min_time_ns = 100.0;
};

struct Delta {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0; ///< current / baseline
};

struct CompareResult {
  std::vector<Delta> regressions;  ///< beyond tolerance, slower
  std::vector<Delta> improvements; ///< beyond tolerance, faster
  std::vector<std::string> missing; ///< in baseline, absent from current
  std::vector<std::string> added;   ///< in current, absent from baseline
  bool ok() const noexcept { return regressions.empty(); }
};

/// Diffs two validated reports entry-by-entry on real time.
CompareResult compare(const json::Value& baseline, const json::Value& current,
                      const CompareOptions& options = {});

/// Deltas whose name starts with `prefix`, in input order. An empty prefix
/// matches nothing (a gate that strictens "" would silently strict-gate
/// every benchmark). Backs perf_compare --strict-prefix.
std::vector<Delta> match_prefix(const std::vector<Delta>& deltas,
                                const std::string& prefix);

/// Human-readable rendering of a comparison (table of deltas plus
/// missing/added lists).
void print_compare(std::ostream& os, const CompareResult& result,
                   const CompareOptions& options = {});

/// Reads and parses a JSON document (throws contract_error on I/O or
/// parse failure).
json::Value load_file(const std::string& path);

/// Pretty-prints `value` to `path` with a trailing newline.
void write_file(const std::string& path, const json::Value& value);

} // namespace dsem::benchreport
