// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags raise errors so typos never silently change an experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsem {

class CliParser {
public:
  CliParser(std::string program, std::string description);

  /// Register options before parse(). `help` is shown by --help.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false if --help was requested (usage printed).
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string option(const std::string& name) const;
  std::int64_t option_int(const std::string& name) const;
  double option_double(const std::string& name) const;

  /// Positional arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void print_usage(std::ostream& os) const;

private:
  struct Entry {
    std::string help;
    std::string value;   // current (default until parse overrides)
    bool is_flag = false;
    bool set = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

} // namespace dsem
