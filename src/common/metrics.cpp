#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace dsem::metrics {

namespace detail {

std::atomic<bool> g_enabled{false};

} // namespace detail

std::size_t bucket_index(double value) noexcept {
  if (!(value > kHistogramMin)) {
    return 0; // <= min, zero, negative, NaN
  }
  const double scaled =
      std::log2(value / kHistogramMin) * kBucketsPerOctave;
  if (scaled >= static_cast<double>(kHistogramBuckets - 2)) {
    return kHistogramBuckets - 1;
  }
  return 1 + static_cast<std::size_t>(scaled);
}

double bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) {
    return kHistogramMin;
  }
  return kHistogramMin *
         std::exp2(static_cast<double>(index) /
                   static_cast<double>(kBucketsPerOctave));
}

namespace {

/// One instrument's per-shard state. Which fields are live depends on
/// `kind`; keeping one struct makes the name -> instrument map simple.
struct Instrument {
  Kind kind = Kind::kCounter;
  Reliability reliability = Reliability::kDeterministic;
  std::uint64_t count = 0;       ///< increments / samples / updates
  std::uint64_t total = 0;       ///< counter: sum of deltas
  double value = 0.0;            ///< gauge: last value written
  std::uint64_t last_update = 0; ///< gauge: global write order
  double sum = 0.0;              ///< histogram
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets; ///< histogram; sized on first sample
};

/// Per-thread instrument sink. Owned by the registry state, never freed: a
/// thread may record until process exit. The per-shard mutex is
/// uncontended in steady state (only its thread writes) and exists so
/// snapshot() can merge consistently while recording continues.
struct Shard {
  std::mutex mutex;
  std::map<std::string, Instrument, std::less<>> instruments;
};

struct State {
  mutable std::mutex mutex;
  std::deque<std::unique_ptr<Shard>> shards;
};

State& state() {
  static State* s = new State; // leaked: see Registry doc comment
  return *s;
}

/// Global gauge-write ordering: last-write-wins across shards needs a
/// total order that does not depend on which shard the write landed in.
std::atomic<std::uint64_t> g_gauge_order{0};

thread_local Shard* tl_shard = nullptr;

Shard& local_shard() {
  if (tl_shard == nullptr) {
    State& s = state();
    std::lock_guard lock(s.mutex);
    s.shards.push_back(std::make_unique<Shard>());
    tl_shard = s.shards.back().get();
  }
  return *tl_shard;
}

Instrument& instrument(Shard& shard, std::string_view name, Kind kind,
                       Reliability r) {
  const auto it = shard.instruments.find(name);
  if (it != shard.instruments.end()) {
    DSEM_ENSURE(it->second.kind == kind,
                "metrics: instrument re-used with a different kind: " +
                    it->first);
    DSEM_ENSURE(it->second.reliability == r,
                "metrics: instrument re-used with a different reliability: " +
                    it->first);
    return it->second;
  }
  Instrument inst;
  inst.kind = kind;
  inst.reliability = r;
  return shard.instruments.emplace(std::string(name), std::move(inst))
      .first->second;
}

/// DSEM_METRICS=path: enable at load time, write the JSON at exit.
std::string& env_metrics_path() {
  static std::string* path = new std::string;
  return *path;
}

void write_env_metrics() {
  const std::string& path = env_metrics_path();
  if (!path.empty()) {
    write_json_file(path);
  }
}

bool init_from_env() {
  const char* env = std::getenv("DSEM_METRICS");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  env_metrics_path() = env;
  set_enabled(true);
  std::atexit(write_env_metrics);
  return true;
}

[[maybe_unused]] const bool g_env_initialized = init_from_env();

} // namespace

namespace detail {

void record_counter(std::string_view name, std::uint64_t delta,
                    Reliability r) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  Instrument& inst = instrument(shard, name, Kind::kCounter, r);
  ++inst.count;
  inst.total += delta;
}

void record_gauge(std::string_view name, double value, Reliability r) {
  const std::uint64_t order =
      1 + g_gauge_order.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  Instrument& inst = instrument(shard, name, Kind::kGauge, r);
  ++inst.count;
  inst.value = value;
  inst.last_update = order;
}

void record_histogram(std::string_view name, double value, Reliability r) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  Instrument& inst = instrument(shard, name, Kind::kHistogram, r);
  if (inst.count == 0) {
    inst.min = inst.max = value;
    inst.buckets.assign(kHistogramBuckets, 0);
  } else {
    inst.min = std::min(inst.min, value);
    inst.max = std::max(inst.max, value);
  }
  ++inst.count;
  inst.sum += value;
  ++inst.buckets[bucket_index(value)];
}

} // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  DSEM_ENSURE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (count == 0) {
    return 0.0;
  }
  // A sample is attributed its bucket's upper boundary, clamped to the
  // observed range (exact for the extreme ranks and single samples).
  const auto value_at_rank = [this](std::uint64_t rank) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      cumulative += buckets[b];
      if (rank < cumulative) {
        return std::clamp(bucket_upper_bound(b), min, max);
      }
    }
    return max;
  };
  const double pos = q * static_cast<double>(count - 1);
  const auto lo = static_cast<std::uint64_t>(pos);
  const std::uint64_t hi = std::min<std::uint64_t>(lo + 1, count - 1);
  const double frac = pos - static_cast<double>(lo);
  return value_at_rank(lo) * (1.0 - frac) + value_at_rank(hi) * frac;
}

double HistogramSnapshot::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

void HistogramSnapshot::observe(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  const std::size_t index = bucket_index(value);
  if (buckets.size() <= index) {
    buckets.resize(index + 1, 0);
  }
  ++buckets[index];
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  DSEM_ENSURE(name.empty() || other.name.empty() || name == other.name,
              "metrics: merging histograms of different names: " + name +
                  " vs " + other.name);
  if (count == 0) {
    // An empty snapshot adopts the other side wholesale (its default
    // reliability tag carries no information yet); only the name, when
    // already set, survives.
    const std::string kept_name = name;
    *this = other;
    if (!kept_name.empty()) {
      name = kept_name;
    }
    return;
  }
  DSEM_ENSURE(reliability == other.reliability,
              "metrics: merging histograms of different reliability: " +
                  (name.empty() ? other.name : name));
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
}

Registry& Registry::global() {
  static Registry* registry = new Registry; // leaked: threads record to exit
  return *registry;
}

Snapshot Registry::snapshot() const {
  // Merge shard-by-shard into name-keyed maps (std::map iteration gives
  // the sorted order the snapshot promises). All merges except the
  // histogram double-sum are order-independent.
  std::map<std::string, CounterSnapshot> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  struct GaugeOrder {
    std::uint64_t last_update = 0;
  };
  std::map<std::string, GaugeOrder> gauge_order;
  std::map<std::string, HistogramSnapshot> histograms;

  State& s = state();
  std::lock_guard lock(s.mutex);
  for (const auto& shard : s.shards) {
    std::lock_guard shard_lock(shard->mutex);
    for (const auto& [name, inst] : shard->instruments) {
      switch (inst.kind) {
      case Kind::kCounter: {
        CounterSnapshot& out = counters[name];
        if (out.name.empty()) {
          out.name = name;
          out.reliability = inst.reliability;
        } else {
          DSEM_ENSURE(out.reliability == inst.reliability,
                      "metrics: reliability mismatch across shards: " + name);
        }
        out.count += inst.count;
        out.total += inst.total;
        break;
      }
      case Kind::kGauge: {
        GaugeSnapshot& out = gauges[name];
        GaugeOrder& order = gauge_order[name];
        if (out.name.empty()) {
          out.name = name;
          out.reliability = inst.reliability;
        } else {
          DSEM_ENSURE(out.reliability == inst.reliability,
                      "metrics: reliability mismatch across shards: " + name);
        }
        out.updates += inst.count;
        if (inst.last_update >= order.last_update) {
          order.last_update = inst.last_update;
          out.value = inst.value;
        }
        break;
      }
      case Kind::kHistogram: {
        HistogramSnapshot& out = histograms[name];
        if (out.name.empty()) {
          out.name = name;
          out.reliability = inst.reliability;
          out.min = inst.min;
          out.max = inst.max;
          out.buckets.assign(kHistogramBuckets, 0);
        } else {
          DSEM_ENSURE(out.reliability == inst.reliability,
                      "metrics: reliability mismatch across shards: " + name);
          out.min = std::min(out.min, inst.min);
          out.max = std::max(out.max, inst.max);
        }
        out.count += inst.count;
        out.sum += inst.sum;
        for (std::size_t b = 0; b < inst.buckets.size(); ++b) {
          out.buckets[b] += inst.buckets[b];
        }
        break;
      }
      }
    }
  }

  Snapshot out;
  out.counters.reserve(counters.size());
  for (auto& [_, c] : counters) {
    out.counters.push_back(std::move(c));
  }
  out.gauges.reserve(gauges.size());
  for (auto& [_, g] : gauges) {
    out.gauges.push_back(std::move(g));
  }
  out.histograms.reserve(histograms.size());
  for (auto& [_, h] : histograms) {
    // Trim trailing empty buckets: snapshots travel into JSON-adjacent
    // code and tests; no reason to carry hundreds of zeros.
    while (!h.buckets.empty() && h.buckets.back() == 0) {
      h.buckets.pop_back();
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::clear() {
  State& s = state();
  std::lock_guard lock(s.mutex);
  for (const auto& shard : s.shards) {
    std::lock_guard shard_lock(shard->mutex);
    shard->instruments.clear();
  }
  g_gauge_order.store(0, std::memory_order_relaxed);
}

json::Value Snapshot::to_json(bool deterministic_only) const {
  auto root = json::Value::object();
  root.set("schema", kMetricsSchema);
  root.set("view", deterministic_only ? "deterministic" : "full");

  auto counters_json = json::Value::array();
  for (const CounterSnapshot& c : counters) {
    const bool det = c.reliability == Reliability::kDeterministic;
    if (deterministic_only && !det) {
      continue;
    }
    auto obj = json::Value::object();
    obj.set("name", c.name);
    obj.set("deterministic", det);
    obj.set("count", c.count);
    obj.set("total", c.total);
    counters_json.push_back(std::move(obj));
  }
  root.set("counters", std::move(counters_json));

  auto gauges_json = json::Value::array();
  for (const GaugeSnapshot& g : gauges) {
    const bool det = g.reliability == Reliability::kDeterministic;
    if (deterministic_only && !det) {
      continue;
    }
    auto obj = json::Value::object();
    obj.set("name", g.name);
    obj.set("deterministic", det);
    obj.set("value", g.value);
    obj.set("updates", g.updates);
    gauges_json.push_back(std::move(obj));
  }
  root.set("gauges", std::move(gauges_json));

  auto histograms_json = json::Value::array();
  for (const HistogramSnapshot& h : histograms) {
    const bool det = h.reliability == Reliability::kDeterministic;
    if (deterministic_only && !det) {
      continue;
    }
    auto obj = json::Value::object();
    obj.set("name", h.name);
    obj.set("deterministic", det);
    obj.set("count", h.count);
    obj.set("min", h.min);
    obj.set("max", h.max);
    obj.set("p50", h.quantile(0.5));
    obj.set("p90", h.quantile(0.9));
    obj.set("p99", h.quantile(0.99));
    if (!deterministic_only) {
      // The floating-point sum (and therefore the mean) depends on how
      // samples were partitioned across shards: full view only.
      obj.set("sum", h.sum);
      obj.set("mean", h.mean());
    }
    histograms_json.push_back(std::move(obj));
  }
  root.set("histograms", std::move(histograms_json));
  return root;
}

void Snapshot::write_table(std::ostream& os) const {
  InstrumentTable table({"p50", "p90", "p99"});
  const auto kind_cell = [](const char* kind, Reliability r) {
    return r == Reliability::kWallClock ? std::string(kind) + "~"
                                        : std::string(kind);
  };
  for (const HistogramSnapshot& h : histograms) {
    table.add_distribution(kind_cell("histogram", h.reliability), h.name,
                           h.count, fmt_g(h.sum), fmt_g(h.mean()),
                           fmt_g(h.min), fmt_g(h.max),
                           {fmt_g(h.quantile(0.5)), fmt_g(h.quantile(0.9)),
                            fmt_g(h.quantile(0.99))});
  }
  for (const CounterSnapshot& c : counters) {
    table.add_value(kind_cell("counter", c.reliability), c.name, c.count,
                    fmt(static_cast<std::size_t>(c.total)));
  }
  for (const GaugeSnapshot& g : gauges) {
    table.add_value(kind_cell("gauge", g.reliability), g.name, g.updates,
                    fmt_g(g.value));
  }
  os << "metrics snapshot ("
     << counters.size() + gauges.size() + histograms.size()
     << " instruments; ~ = wall-clock, report-only)\n";
  table.print(os);
}

void write_json_file(const std::string& path) {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open metrics output file: " + path);
  Registry::global().snapshot().to_json(false).write(out, 2);
  out << "\n";
  DSEM_ENSURE(out.good(), "failed writing metrics output file: " + path);
}

} // namespace dsem::metrics
