#include "common/bench_report.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace dsem::benchreport {

json::Value make_report(const std::string& date, const std::string& mode) {
  auto report = json::Value::object();
  report.set("schema", kBenchSchema);
  report.set("date", date);
  report.set("mode", mode);
  report.set("benchmarks", json::Value::array());
  report.set("pipeline", json::Value());
  return report;
}

void validate(const json::Value& report) {
  DSEM_ENSURE(report.is_object(), "bench report: not a JSON object");
  DSEM_ENSURE(report.at("schema").as_string() == kBenchSchema,
              "bench report: schema is not " + std::string(kBenchSchema));
  report.at("date").as_string();
  report.at("mode").as_string();
  for (const json::Value& entry : report.at("benchmarks").as_array()) {
    DSEM_ENSURE(entry.is_object(), "bench report: entry is not an object");
    entry.at("name").as_string();
    entry.at("real_time_ns").as_number();
    entry.at("cpu_time_ns").as_number();
    entry.at("iterations").as_number();
  }
  const json::Value& pipeline = report.at("pipeline");
  if (!pipeline.is_null()) {
    pipeline.at("name").as_string();
    pipeline.at("wall_s").as_number();
  }
}

void add_entry(json::Value& report, const std::string& name,
               double real_time_ns, double cpu_time_ns, double iterations) {
  json::Value& benchmarks = report.at("benchmarks");
  for (const json::Value& existing : benchmarks.as_array()) {
    DSEM_ENSURE(existing.at("name").as_string() != name,
                "bench report: duplicate benchmark entry: " + name);
  }
  auto entry = json::Value::object();
  entry.set("name", name);
  entry.set("real_time_ns", real_time_ns);
  entry.set("cpu_time_ns", cpu_time_ns);
  entry.set("iterations", iterations);
  benchmarks.push_back(std::move(entry));
}

namespace {

double time_unit_to_ns(const std::string& unit) {
  if (unit == "ns") {
    return 1.0;
  }
  if (unit == "us") {
    return 1e3;
  }
  if (unit == "ms") {
    return 1e6;
  }
  if (unit == "s") {
    return 1e9;
  }
  throw contract_error("bench report: unknown Google Benchmark time_unit: " +
                       unit);
}

} // namespace

std::size_t merge_google_benchmark(json::Value& report,
                                   const std::string& binary,
                                   const json::Value& gbench) {
  std::size_t merged = 0;
  for (const json::Value& bm : gbench.at("benchmarks").as_array()) {
    // Aggregate rows (mean/median/stddev from --benchmark_repetitions)
    // duplicate the iteration rows; keep only the raw measurements.
    if (const json::Value* run_type = bm.find("run_type");
        run_type != nullptr && run_type->as_string() != "iteration") {
      continue;
    }
    const double to_ns = time_unit_to_ns(bm.at("time_unit").as_string());
    const std::string name = binary + "/" + bm.at("name").as_string();
    const double iterations = bm.at("iterations").as_number();
    add_entry(report, name, bm.at("real_time").as_number() * to_ns,
              bm.at("cpu_time").as_number() * to_ns, iterations);
    ++merged;
    // Lift *_ns user counters (already in nanoseconds by convention) into
    // entries of their own so the compare gate tracks them individually.
    for (const auto& [field, value] : bm.as_object()) {
      if (field.size() > 3 && field.ends_with("_ns") && value.is_number()) {
        add_entry(report, name + ":" + field, value.as_number(),
                  value.as_number(), iterations);
        ++merged;
      }
    }
  }
  return merged;
}

void set_pipeline(json::Value& report, const std::string& name, double wall_s,
                  json::Value run_manifest) {
  auto pipeline = json::Value::object();
  pipeline.set("name", name);
  pipeline.set("wall_s", wall_s);
  pipeline.set("run_manifest", std::move(run_manifest));
  report.set("pipeline", std::move(pipeline));
  add_entry(report, "pipeline/" + name, wall_s * 1e9, wall_s * 1e9, 1.0);
}

CompareResult compare(const json::Value& baseline, const json::Value& current,
                      const CompareOptions& options) {
  validate(baseline);
  validate(current);
  // std::map keys both sides by name: deltas and the missing/added lists
  // come out name-sorted regardless of entry order in the files.
  const auto index = [](const json::Value& report) {
    std::map<std::string, double> times;
    for (const json::Value& entry : report.at("benchmarks").as_array()) {
      times[entry.at("name").as_string()] =
          entry.at("real_time_ns").as_number();
    }
    return times;
  };
  const std::map<std::string, double> base = index(baseline);
  const std::map<std::string, double> cur = index(current);

  CompareResult result;
  for (const auto& [name, base_ns] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      result.missing.push_back(name);
      continue;
    }
    if (base_ns < options.min_time_ns) {
      continue;
    }
    const double ratio = it->second / base_ns;
    const Delta delta{name, base_ns, it->second, ratio};
    if (ratio > 1.0 + options.tolerance) {
      result.regressions.push_back(delta);
    } else if (ratio < 1.0 - options.tolerance) {
      result.improvements.push_back(delta);
    }
  }
  for (const auto& [name, _] : cur) {
    if (base.find(name) == base.end()) {
      result.added.push_back(name);
    }
  }
  return result;
}

std::vector<Delta> match_prefix(const std::vector<Delta>& deltas,
                                const std::string& prefix) {
  std::vector<Delta> out;
  if (prefix.empty()) {
    return out;
  }
  for (const Delta& d : deltas) {
    if (d.name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(d);
    }
  }
  return out;
}

void print_compare(std::ostream& os, const CompareResult& result,
                   const CompareOptions& options) {
  os << "perf compare (tolerance " << fmt(options.tolerance * 100.0, 0)
     << "%, entries under " << fmt(options.min_time_ns, 0)
     << " ns ignored)\n";
  if (result.regressions.empty() && result.improvements.empty()) {
    os << "no changes beyond tolerance\n";
  } else {
    Table table({"status", "name", "baseline_ns", "current_ns", "ratio"});
    for (const Delta& d : result.regressions) {
      table.add_row({"REGRESSED", d.name, fmt_g(d.baseline_ns),
                     fmt_g(d.current_ns), fmt(d.ratio, 3)});
    }
    for (const Delta& d : result.improvements) {
      table.add_row({"improved", d.name, fmt_g(d.baseline_ns),
                     fmt_g(d.current_ns), fmt(d.ratio, 3)});
    }
    table.print(os);
  }
  for (const std::string& name : result.missing) {
    os << "missing from current: " << name << "\n";
  }
  for (const std::string& name : result.added) {
    os << "new in current: " << name << "\n";
  }
  os << (result.ok() ? "PASS" : "FAIL") << ": " << result.regressions.size()
     << " regression(s), " << result.improvements.size()
     << " improvement(s), " << result.missing.size() << " missing, "
     << result.added.size() << " added\n";
}

json::Value load_file(const std::string& path) {
  std::ifstream in(path);
  DSEM_ENSURE(in.good(), "cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  DSEM_ENSURE(!in.bad(), "failed reading JSON file: " + path);
  return json::Value::parse(buffer.str());
}

void write_file(const std::string& path, const json::Value& value) {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open output file: " + path);
  value.write(out, 2);
  out << "\n";
  DSEM_ENSURE(out.good(), "failed writing output file: " + path);
}

} // namespace dsem::benchreport
